/**
 * @file
 * Command-line driver: run any workload under any technique and
 * configuration and dump the full statistics. The Swiss-army knife
 * for exploring the simulator outside the fixed figure benches.
 *
 *   dvr_run --workload bfs --input KR --technique dvr
 *   dvr_run -w hj8 -t vr --insts 2000000 --rob 512
 *   dvr_run -w camel -t dvr --set dvr.lanes=256 --stats
 *   dvr_run -w sssp --disasm
 *   dvr_run -w bfs -t base,vr,dvr,oracle --jobs 4   # parallel sweep
 *   dvr_run --set core.robSize=512 --dump-config > cfg.json
 *   dvr_run -w bfs --config cfg.json
 *
 * Configuration precedence: CLI (--set and the sugar flags, in
 * command-line order) > env (DVR_INSTS) > --config files (in
 * command-line order) > Table-1 defaults.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "graph/edge_list_io.hh"
#include "sim/config_schema.hh"
#include "sim/env.hh"
#include "sim/manifest.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"
#include "sim/trace.hh"
#include "workloads/gap_common.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: dvr_run [options]\n"
        "  -w, --workload NAME   bfs|bc|cc|pr|sssp|camel|graph500|\n"
        "                        hj2|hj8|kangaroo|nas_cg|nas_is|\n"
        "                        random_access        (default bfs)\n"
        "  -i, --input NAME      KR|LJN|ORK|TW|UR (GAP kernels only)\n"
        "      --graph FILE      run bfs on an edge-list file\n"
        "                        (SNAP format; overrides -w/-i)\n"
        "  -t, --technique NAME  base|pre|imp|vr|dvr|dvr-offload|\n"
        "                        dvr-discovery|oracle (default dvr);\n"
        "                        a comma-separated list sweeps them\n"
        "                        in parallel through the job runner\n"
        "  -j, --jobs N          runner threads for technique sweeps\n"
        "                        (default: DVR_JOBS or all cores)\n"
        "      --set KEY=VALUE   set any config key (repeatable;\n"
        "                        see --list-keys)\n"
        "      --config FILE     load a JSON config (repeatable;\n"
        "                        as written by --dump-config)\n"
        "      --dump-config     print the resolved config as JSON\n"
        "                        and exit\n"
        "      --list-keys       print the config key schema and exit\n"
        "  -n, --insts N         dynamic instruction budget\n"
        "      --rob N           ROB size (scales queues)\n"
        "      --lanes N         DVR scalar-equivalent lanes\n"
        "      --mshrs N         L1-D MSHR count\n"
        "      --scale-shift N   halve data sets N times\n"
        "      --predictor NAME  tage|gshare|taken\n"
        "      --no-reconv       VR-style lane invalidation in DVR\n"
        "      --trace CATS      enable event tracing: 'all' or a\n"
        "                        comma list (discovery,spawn,\n"
        "                        divergence,reconvergence,ndm,\n"
        "                        mshr-stall); writes a JSONL + binary\n"
        "                        trace and a run manifest\n"
        "      --trace-file PATH JSONL sink (default dvr_trace.jsonl;\n"
        "                        binary twin at PATH.bin)\n"
        "      --sample          interval-sampled simulation: if\n"
        "                        sim.sample.interval is 0, derive it\n"
        "                        from the budget (max(50k, n/200));\n"
        "                        prints the sample.* summary line\n"
        "      --stats           dump every statistic\n"
        "      --json            dump statistics as JSON\n"
        "      --disasm          print the kernel and exit\n"
        "      --verify          run to completion, check golden\n"
        "  -h, --help\n");
}

const char *
arg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        const size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
printSummary(const std::string &workload, const dvr::WorkloadParams &wp,
             dvr::Technique t, const dvr::SimResult &r)
{
    std::printf("%s%s%s under %s: IPC %.3f, %llu cycles, "
                "%llu instructions%s\n",
                workload.c_str(), wp.input.empty() ? "" : "_",
                wp.input.c_str(), dvr::techniqueName(t), r.ipc(),
                (unsigned long long)r.core.cycles,
                (unsigned long long)r.core.instructions,
                r.halted ? " (completed)" : "");
    std::printf("LLC MPKI %.1f, MSHR occupancy %.2f, "
                "mispredict rate %.2f%%\n",
                r.llcMpki(), r.mshrOccupancy(),
                100.0 * static_cast<double>(r.core.mispredicts) /
                    static_cast<double>(
                        std::max<uint64_t>(1, r.core.branches)));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dvr;

    std::string workload = "bfs";
    WorkloadParams wp;
    wp.scaleShift = SimConfig::defaultScaleShift();
    bool dump_stats = false;
    bool sample = false;
    bool json = false;
    bool disasm = false;
    bool verify = false;
    bool dump_config = false;
    std::string technique;      // empty: -t not given
    std::string graph_file;
    unsigned njobs = Runner::defaultJobs();

    // CLI config operations (--set and the sugar flags), applied in
    // command-line order on top of files + env.
    std::vector<std::function<void(SimConfig &)>> cli_ops;
    std::vector<std::string> config_files;
    const ConfigSchema &schema = ConfigSchema::instance();

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto is = [a](const char *s, const char *l) {
            return std::strcmp(a, s) == 0 || std::strcmp(a, l) == 0;
        };
        if (is("-w", "--workload")) {
            workload = arg(argc, argv, i);
        } else if (is("-i", "--input")) {
            wp.input = arg(argc, argv, i);
        } else if (is("--graph", "--graph")) {
            graph_file = arg(argc, argv, i);
        } else if (is("-t", "--technique")) {
            technique = arg(argc, argv, i);
        } else if (is("-j", "--jobs")) {
            njobs = unsigned(
                std::strtoul(arg(argc, argv, i), nullptr, 10));
        } else if (is("--set", "--set")) {
            const std::string kv = arg(argc, argv, i);
            cli_ops.push_back([&schema, kv](SimConfig &c) {
                schema.setFromArg(c, kv);
            });
        } else if (is("--config", "--config")) {
            config_files.push_back(arg(argc, argv, i));
        } else if (is("--dump-config", "--dump-config")) {
            dump_config = true;
        } else if (is("--list-keys", "--list-keys")) {
            for (const auto &k : schema.keys()) {
                std::printf("%-24s %-7s %s\n", k.name.c_str(), k.type,
                            k.describe.c_str());
            }
            return 0;
        } else if (is("-n", "--insts")) {
            const uint64_t v =
                std::strtoull(arg(argc, argv, i), nullptr, 10);
            cli_ops.push_back(
                [v](SimConfig &c) { c.maxInstructions = v; });
        } else if (is("--rob", "--rob")) {
            const unsigned v = unsigned(
                std::strtoul(arg(argc, argv, i), nullptr, 10));
            cli_ops.push_back([v](SimConfig &c) {
                c.core = CoreConfig::withRob(v, true);
            });
        } else if (is("--lanes", "--lanes")) {
            const unsigned lanes = unsigned(
                std::strtoul(arg(argc, argv, i), nullptr, 10));
            cli_ops.push_back([lanes](SimConfig &c) {
                c.dvr.subthread.maxLanes = lanes;
                c.dvr.subthread.vecPhysFree = lanes;
            });
        } else if (is("--mshrs", "--mshrs")) {
            const unsigned v = unsigned(
                std::strtoul(arg(argc, argv, i), nullptr, 10));
            cli_ops.push_back([v](SimConfig &c) { c.mem.mshrs = v; });
        } else if (is("--scale-shift", "--scale-shift")) {
            wp.scaleShift = unsigned(
                std::strtoul(arg(argc, argv, i), nullptr, 10));
        } else if (is("--predictor", "--predictor")) {
            const std::string p = arg(argc, argv, i);
            cli_ops.push_back(
                [p](SimConfig &c) { c.core.predictor = p; });
        } else if (is("--no-reconv", "--no-reconv")) {
            cli_ops.push_back([](SimConfig &c) {
                c.dvr.subthread.gpuReconvergence = false;
            });
        } else if (is("--trace", "--trace")) {
            const std::string v = arg(argc, argv, i);
            cli_ops.push_back([v](SimConfig &c) { c.trace = v; });
        } else if (is("--trace-file", "--trace-file")) {
            const std::string v = arg(argc, argv, i);
            cli_ops.push_back([v](SimConfig &c) { c.traceFile = v; });
        } else if (is("--sample", "--sample")) {
            sample = true;
        } else if (is("--stats", "--stats")) {
            dump_stats = true;
        } else if (is("--json", "--json")) {
            json = true;
        } else if (is("--disasm", "--disasm")) {
            disasm = true;
        } else if (is("--verify", "--verify")) {
            verify = true;
        } else if (is("-h", "--help")) {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a);
            usage();
            return 2;
        }
    }

    try {
        // Resolve: defaults -> config files -> env -> CLI ops.
        // Techniques are stamped per job below and runOn derives the
        // technique-specific knobs through the registry's prepare
        // hooks, so the shared base stays technique-neutral ("dvr"
        // has no prepare hook; it is also the default technique).
        SimConfig cfg = SimConfig::baseline(Technique::kDvr);
        for (const std::string &f : config_files)
            schema.applyFile(cfg, f);
        if (const auto insts = env::maxInstructions())
            cfg.maxInstructions = *insts;
        for (const auto &op : cli_ops)
            op(cfg);

        // -t wins; else sim.technique from --config/--set; else dvr.
        if (technique.empty())
            technique = techniqueName(cfg.technique);
        std::vector<Technique> techs;
        for (const auto &name : splitList(technique)) {
            const auto t = tryParseTechnique(name);
            if (!t) {
                std::fprintf(stderr,
                             "unknown technique '%s' (valid: %s)\n",
                             name.c_str(),
                             techniqueNameList().c_str());
                return 2;
            }
            techs.push_back(*t);
        }
        cfg.technique = techs.front();

        // --sample turns sampling on; an explicit sim.sample.interval
        // (via --set/--config) is honoured, otherwise the interval is
        // derived from the budget (defaultSampleInterval: ~200
        // intervals per run, floored at 50k).
        if (sample && cfg.sample.interval == 0)
            cfg.sample.interval = defaultSampleInterval(cfg.maxInstructions);

        if (dump_config) {
            std::fputs(schema.toJson(cfg).c_str(), stdout);
            return 0;
        }

        SimMemory mem(cfg.memoryBytes);
        Workload w;
        if (!graph_file.empty()) {
            const LoadedEdgeList l = readEdgeListFile(graph_file);
            CsrGraph g = buildCsr(mem, l.numNodes, l.edges);
            w = makeBfsWorkload(mem, std::move(g), "bfs",
                                "BFS on " + graph_file);
            workload = "bfs(" + graph_file + ")";
            wp.input.clear();
        } else {
            w = workloadFactory(workload)(mem, wp);
        }
        mem.compact();

        if (disasm) {
            std::printf("%s (%s)\n%s", w.name.c_str(),
                        w.description.c_str(),
                        w.program.disassemble().c_str());
            return 0;
        }
        if (verify)
            cfg.maxInstructions = w.fullRunInsts * 2 + 1'000'000;

        // All techniques run against the same prepared data set,
        // in parallel through the runner; results come back in
        // submission order so the output is stable.
        const PreparedWorkload pw(workload, std::move(mem),
                                  std::move(w));
        std::vector<SimJob> jobs;
        for (Technique t : techs) {
            SimConfig c = cfg;
            c.technique = t;
            jobs.push_back({&pw, c,
                            workload + std::string("/") +
                                techniqueName(t)});
        }

        // Tracing is configured before the runner threads start (the
        // mask and sinks are process-wide); events from parallel jobs
        // interleave in the shared ring.
        const bool tracing = !cfg.trace.empty();
        std::string trace_path;
        if (tracing) {
            Trace::configure(cfg.trace);
            trace_path = cfg.traceFile.empty() ? "dvr_trace.jsonl"
                                               : cfg.traceFile;
            Trace::setJsonlSink(trace_path);
            Trace::setBinarySink(trace_path + ".bin");
        }

        // dvr-lint: allow(wall-clock) CLI wall-time footer; results are unaffected
        const auto wall_start = std::chrono::steady_clock::now();
        Runner runner(std::min<unsigned>(std::max(1u, njobs),
                                         unsigned(jobs.size())));
        const std::vector<SimResult> results = runner.runAll(jobs);
        const double wall_seconds =
            std::chrono::duration<double>(
                // dvr-lint: allow(wall-clock) CLI wall-time footer; results are unaffected
                std::chrono::steady_clock::now() - wall_start)
                .count();

        int rc = 0;
        if (tracing) {
            const uint64_t events = Trace::emitted();
            Trace::shutdown();
            RunManifest manifest("dvr_run");
            manifest.setConfig(cfg);
            for (size_t i = 0; i < results.size(); ++i)
                manifest.addRun(jobs[i].label, results[i].stats);
            manifest.addWallSegment(wall_seconds);
            const std::string mpath =
                manifest.write(env::benchDir().value_or("."));
            if (mpath.empty())
                rc = 1;  // write() already warned with the path
            std::printf("[trace] %llu events -> %s (+%s.bin), "
                        "manifest %s\n",
                        (unsigned long long)events, trace_path.c_str(),
                        trace_path.c_str(),
                        mpath.empty() ? "(write failed)" : mpath.c_str());
        }

        for (size_t i = 0; i < results.size(); ++i) {
            const SimResult &r = results[i];
            printSummary(workload, wp, techs[i], r);
            if (cfg.sample.interval > 0) {
                std::printf(
                    "sampled: %.0f windows, CPI %.3f +/- %.3f "
                    "(95%% CI), %.0f/%.0f insts functional "
                    "(%.0f MIPS functional)\n",
                    r.stats.get("sample.windows"),
                    r.stats.get("sample.cpi"),
                    r.stats.get("sample.cpi_ci95"),
                    r.stats.get("sample.insts_functional"),
                    r.stats.get("sample.insts_total"),
                    r.stats.get("sample.functional_mips"));
            }
            if (verify) {
                std::printf("golden model: %s\n",
                            r.verified ? "MATCH" : "MISMATCH");
                if (!r.verified)
                    rc = 1;
            }
            if (json) {
                std::fputs(r.stats.toJson().c_str(), stdout);
            } else if (dump_stats) {
                for (const auto &[k, v] : r.stats.all())
                    std::printf("  %-34s %18.2f\n", k.c_str(), v);
            }
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
