#!/usr/bin/env python3
"""CI throughput smoke: compare a BENCH_<figure>.json against the
checked-in floor (tests/throughput_floor.json) and fail when
wall_seconds regresses more than the allowed slack (default 30%).

The floor file also carries an optional min_copy_reduction per figure:
the copy-on-write memory model must keep per-run image-copy traffic
at least that factor below what flat per-run copies would cost (the
"cow" block written by BenchReport).

Usage:
    tools/check_throughput.py bench-out/BENCH_fig02.json \
        --floor tests/throughput_floor.json
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="BENCH_<figure>.json to check")
    ap.add_argument("--floor", default="tests/throughput_floor.json",
                    help="checked-in floor file")
    ap.add_argument("--slack", type=float, default=0.30,
                    help="allowed fractional regression over the floor")
    args = ap.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)
    with open(args.floor) as f:
        floors = json.load(f)

    figure = bench["figure"]
    entry = floors["figures"].get(figure)
    if entry is None:
        sys.exit(f"error: no floor entry for figure '{figure}' in "
                 f"{args.floor}")

    wall = float(bench["wall_seconds"])
    floor = float(entry["wall_seconds"])
    limit = floor * (1.0 + args.slack)
    print(f"[throughput] {figure}: wall {wall:.1f} s, floor "
          f"{floor:.1f} s, limit {limit:.1f} s "
          f"({bench['simulated_mips']:.1f} simulated MIPS)")
    failed = False
    if wall > limit:
        print(f"FAIL: wall_seconds {wall:.1f} exceeds the floor "
              f"{floor:.1f} by more than {args.slack:.0%} — either fix "
              f"the regression or deliberately re-baseline "
              f"{args.floor}", file=sys.stderr)
        failed = True

    # Arena cost accounting: the per-thread bump arena must keep heap
    # traffic near zero per simulated kilo-instruction (the "arena"
    # block written by BenchReport). A budget violation means per-run
    # state slipped off the arena and back onto the heap.
    max_apk = entry.get("max_allocs_per_kinst")
    if max_apk is not None:
        apk = float(bench["arena"]["allocs_per_kinst"])
        print(f"[throughput] {figure}: arena {apk:.3f} allocs/kinst "
              f"(budget <= {float(max_apk):.3f})")
        if apk > float(max_apk):
            print(f"FAIL: arena allocs_per_kinst {apk:.3f} exceeds the "
                  f"{float(max_apk):.3f} budget — per-run allocations "
                  f"regressed off the arena", file=sys.stderr)
            failed = True

    min_red = entry.get("min_copy_reduction")
    if min_red is not None:
        red = float(bench["cow"]["copy_reduction"])
        print(f"[throughput] {figure}: CoW copy reduction {red:.1f}x "
              f"(required >= {float(min_red):.1f}x)")
        if red < float(min_red):
            print(f"FAIL: CoW copy_reduction {red:.1f} fell below "
                  f"{float(min_red):.1f} — per-run image-copy traffic "
                  f"regressed", file=sys.stderr)
            failed = True

    # Sampled-run leg: the interval-sampling bench writes a "sampling"
    # block (bench/sampling_accuracy.cc); the floor entry's "sampling"
    # object pins the functional-interpreter gain, the sampled CPI
    # error, and the end-to-end sampled-vs-exact wall-clock speedup.
    floors_s = entry.get("sampling")
    if floors_s is not None:
        blk = bench.get("sampling")
        if blk is None:
            sys.exit(f"error: floor for '{figure}' requires a "
                     f"'sampling' block the bench json lacks")
        checks = [
            # (bench key, floor key, must_be_at_least)
            ("functional_gain", "min_functional_gain", True),
            ("cpi_error_max", "max_cpi_error", False),
            ("speedup_mean", "min_speedup_mean", True),
        ]
        for bkey, fkey, at_least in checks:
            bound = floors_s.get(fkey)
            if bound is None:
                continue
            val = float(blk[bkey])
            rel = ">=" if at_least else "<="
            ok = val >= float(bound) if at_least else val <= float(bound)
            print(f"[throughput] {figure}: sampling {bkey} "
                  f"{val:.3f} (required {rel} {float(bound):.3f})")
            if not ok:
                print(f"FAIL: sampling {bkey} {val:.3f} violates the "
                      f"{fkey} {float(bound):.3f} floor — the sampled "
                      f"engine regressed in speed or accuracy",
                      file=sys.stderr)
                failed = True

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
