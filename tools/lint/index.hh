/**
 * @file
 * The dvr-lint project index: a lightweight declaration/scope parser
 * over the token stream (tokenizer.hh) that recovers, per file,
 *
 *  - classes and their member fields (with flattened type text,
 *    container kind/key type, and `// dvr-guarded-by(<mutex>)`
 *    annotations),
 *  - function definitions (free and member, inline and out-of-line)
 *    with the calls, lock acquisitions, allocation sites, range-for
 *    iteration sites, and stat/trace/output touches in their bodies,
 *
 * and, across files, an approximate call graph keyed by (class,
 * name). It is deliberately not a C++ front end: overload sets
 * collapse to one node, virtual calls fan out to every definition
 * with the callee's name, and template machinery is skipped. For the
 * reachability-style rules built on it (hot-path allocation,
 * determinism sinks) over-approximation is the safe direction, and
 * waivers absorb the residue.
 */

#ifndef DVR_TOOLS_LINT_INDEX_HH
#define DVR_TOOLS_LINT_INDEX_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tokenizer.hh"

namespace dvr::lint {

/** A class member field. */
struct MemberDecl
{
    std::string cls;
    std::string name;
    std::string typeText;   ///< flattened declaration-type tokens
    uint32_t line = 0;
    std::string guardedBy;  ///< mutex named by dvr-guarded-by(), or ""
    bool unordered = false; ///< unordered_map / unordered_set
    bool ordered = false;   ///< std::map / std::set (+multi variants)
    std::string keyType;    ///< first template argument, flattened
};

/** A container-typed local or file-scope variable. */
struct ContainerVar
{
    std::string name;
    uint32_t line = 0;
    bool unordered = false;
    std::string keyType;
};

struct AllocSite
{
    uint32_t line = 0;
    size_t tok = 0;         ///< index into FileIndex::code
    std::string what;       ///< "new", "make_unique", "std::string"...
};

struct IterSite
{
    uint32_t line = 0;
    std::string container;  ///< last identifier of the range expr
};

struct FunctionDef
{
    std::string file;       ///< root-relative path
    std::string cls;        ///< "" for free functions
    std::string name;
    uint32_t line = 0;
    bool ctorDtor = false;
    bool hotPathRoot = false;       ///< // dvr-hot-path annotation
    size_t tokBegin = 0;    ///< body range in FileIndex::code
    size_t tokEnd = 0;
    std::vector<std::string> calls;         ///< "name" or "Cls::name"
    /** Member calls `recv.m(...)` / `recv->m(...)` as (recv, m);
     *  resolved against the receiver's declared type when the class
     *  is known, falling back to short-name fan-out otherwise. */
    std::vector<std::pair<std::string, std::string>> recvCalls;
    std::vector<std::string> locks;         ///< mutexes locked in body
    std::vector<AllocSite> allocs;
    std::vector<IterSite> rangeFors;
    std::vector<ContainerVar> locals;
    bool statTouch = false;     ///< .set("...")/.add("...") idiom
    bool traceTouch = false;    ///< Trace::emit
    bool outputTouch = false;   ///< printf-family / printers / os <<

    std::string qual() const
    {
        return cls.empty() ? name : cls + "::" + name;
    }
};

struct FileIndex
{
    std::string rel;
    std::vector<Token> code;    ///< comment-free token stream
    std::vector<MemberDecl> members;
    std::vector<FunctionDef> functions;
    std::vector<ContainerVar> fileScope;
    /** Namespace-scope variable name -> flattened declared type, for
     *  call-receiver resolution (e.g. a file-static std::ofstream). */
    std::map<std::string, std::string> fileVarTypes;
    /** File-scope variables carrying dvr-guarded-by annotations
     *  (cls empty); checked against functions in the same file. */
    std::vector<MemberDecl> fileGuarded;
    /** Stat names registered via .set("x")/.add("x"): name -> line. */
    std::vector<std::pair<std::string, uint32_t>> statRegs;
};

/** Parse one tokenized file. */
FileIndex indexFile(const std::string &rel, const TokenizedFile &tf);

/** The cross-file index plus the approximate call graph. */
struct ProjectIndex
{
    std::vector<FileIndex> files;

    /** (file, function) ids in deterministic order. */
    struct FnRef
    {
        size_t file;
        size_t fn;
    };
    std::vector<FnRef> fns;
    /** short function name -> fn ids defining it. */
    std::map<std::string, std::vector<size_t>> byName;
    /** "Cls::name" -> fn ids. */
    std::map<std::string, std::vector<size_t>> byQual;
    /** fn id -> callee fn ids (deduped, sorted). */
    std::vector<std::vector<size_t>> callees;

    const FunctionDef &fn(size_t id) const
    {
        return files[fns[id].file].functions[fns[id].fn];
    }

    /**
     * Forward reachability over the call graph from `roots`,
     * returning for every reached fn id the id of the caller it was
     * first reached through (roots map to themselves). Deterministic:
     * BFS in sorted id order.
     */
    std::map<size_t, size_t> reachableFrom(
        const std::vector<size_t> &roots) const;
};

/** Build the call graph over already-indexed files. */
ProjectIndex buildProjectIndex(std::vector<FileIndex> files);

} // namespace dvr::lint

#endif // DVR_TOOLS_LINT_INDEX_HH
