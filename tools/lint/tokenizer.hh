/**
 * @file
 * The dvr-lint C++ tokenizer. One linear scan classifies every byte
 * of a source file as code, comment, string/char literal, or raw
 * string — with full cross-line state (block comments, raw strings,
 * and backslash-continued `//` comments all span lines) — and emits:
 *
 *  - a token stream (identifiers, numbers, literals, punctuation,
 *    comments) the declaration/scope parser (index.hh) and the
 *    semantic rules consume, and
 *  - the two scrubbed renderings the line-oriented rules match
 *    against: `scrub` (comments AND literal contents blanked) and
 *    `scrubKeepStrings` (comments blanked, literals kept — for files
 *    like config_fields.def whose payload lives in quoted macro
 *    arguments).
 *
 * Both renderings preserve line structure and column positions
 * exactly, so findings keep pointing at real source coordinates.
 */

#ifndef DVR_TOOLS_LINT_TOKENIZER_HH
#define DVR_TOOLS_LINT_TOKENIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dvr::lint {

enum class Tok : uint8_t {
    kIdent,     ///< identifier or keyword
    kNumber,    ///< numeric literal (handles 1'000 separators)
    kString,    ///< string literal; text is the *inner* content
    kChar,      ///< character literal; text is the inner content
    kPunct,     ///< operator/punctuation (::, ->, +=, etc. combined)
    kComment,   ///< one comment chunk per line it covers
};

struct Token
{
    Tok kind;
    uint32_t line;      ///< 1-based
    uint32_t col;       ///< 0-based column of the first character
    std::string text;
};

struct TokenizedFile
{
    std::vector<Token> tokens;
    /** Comments and literal contents blanked (line rules). */
    std::vector<std::string> scrub;
    /** Comments blanked, literals kept (.def-style payloads). */
    std::vector<std::string> scrubKeepStrings;
};

TokenizedFile tokenizeFile(const std::vector<std::string> &lines);

} // namespace dvr::lint

#endif // DVR_TOOLS_LINT_TOKENIZER_HH
