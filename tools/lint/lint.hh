/**
 * @file
 * dvr-lint: project-specific static analysis for the DVR tree.
 *
 * A deliberately small, dependency-free linter that enforces the
 * invariants this simulator's correctness depends on but a compiler
 * cannot see: schema completeness, stat-registration discipline,
 * cycle-type hygiene, and a handful of banned constructs. Rules are
 * line-oriented (comments and string literals are scrubbed before
 * matching) except `schema-drift`, which cross-checks the config
 * structs, `src/sim/config_fields.def`, and the registered
 * `config_schema.cc` keys as a unit.
 *
 * Any finding can be waived in place with
 *
 *     // dvr-lint: allow(<rule>)
 *
 * on the offending line or the line directly above it, which keeps
 * every exception visible and greppable.
 */

#ifndef DVR_TOOLS_LINT_LINT_HH
#define DVR_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dvr::lint {

/** One rule violation (or linter-level error) at a source location. */
struct Finding
{
    std::string file;       ///< path relative to the lint root
    size_t line = 0;        ///< 1-based; 0 for file-level findings
    std::string rule;       ///< rule identifier, e.g. "naked-new"
    std::string message;

    /** "file:line: [rule] message" (the format tools expect). */
    std::string toString() const;
};

/** A rule's identifier and one-line description (--list-rules). */
struct RuleInfo
{
    const char *id;
    const char *describe;
};

/** All rules, in report order. */
const std::vector<RuleInfo> &rules();

/** True when `id` names a known rule. */
bool isRule(const std::string &id);

struct Options
{
    /** Tree root; findings are reported relative to it. */
    std::string root = ".";

    /**
     * Explicit root-relative files to lint. Empty: walk src/,
     * tools/, bench/, and tests/ under the root (skipping
     * lint_fixtures and build directories).
     */
    std::vector<std::string> files;
};

/**
 * Run every rule over the tree (or file list) and return the
 * unsuppressed findings, sorted by file then line.
 */
std::vector<Finding> runLint(const Options &opts);

/**
 * Replace comment bodies and string/character-literal contents with
 * spaces, preserving line structure, so token rules cannot match
 * prose. Exposed for the linter's own tests.
 */
std::vector<std::string> scrubSource(const std::vector<std::string> &lines);

} // namespace dvr::lint

#endif // DVR_TOOLS_LINT_LINT_HH
