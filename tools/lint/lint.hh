/**
 * @file
 * dvr-lint: project-specific static analysis for the DVR tree.
 *
 * A deliberately small, dependency-free linter built on a real
 * analysis core: a C++ tokenizer (tokenizer.hh) plus a lightweight
 * declaration/scope parser (index.hh) that recovers classes, member
 * fields, function definitions, and an approximate cross-file call
 * graph. On top of that sit the rule families a compiler cannot
 * check:
 *
 *  - schema closure: schema-drift (config structs <->
 *    config_fields.def <-> config_schema.cc) and stat-schema
 *    (registered stat names <-> tests/stats_schema.inc),
 *  - stat-registration discipline: stat-dup, stat-name,
 *  - determinism: no-rand, unordered-iteration, wall-clock,
 *    pointer-key,
 *  - concurrency: guarded-by (`// dvr-guarded-by(<mutex>)` member
 *    contracts), relaxed-atomic,
 *  - hot paths: hot-map, hot-alloc (call-graph reachability from the
 *    per-cycle roots to allocating constructs),
 *  - hygiene: naked-new, cycle-type, no-float-timing,
 *    using-namespace-header, include-guard, bad-waiver.
 *
 * Any finding can be waived in place with
 *
 *     // dvr-lint: allow(<rule>)
 *
 * on the offending line or the line directly above it, which keeps
 * every exception visible and greppable. A waiver that suppresses
 * nothing is itself a `bad-waiver` finding, so dead waivers cannot
 * accumulate.
 *
 * Pre-existing debt lives in a checked-in baseline
 * (tools/lint/baseline.json): baselined findings pass, new findings
 * fail, and a baseline entry whose finding has been fixed fails as
 * `stale-baseline` until it is removed — the ratchet only tightens.
 *
 * Per-file analysis runs in parallel on sim/task_pool.hh (the same
 * pool the experiment Runner uses); cross-file rules and reporting
 * are serial, so output is byte-identical at any --jobs value.
 */

#ifndef DVR_TOOLS_LINT_LINT_HH
#define DVR_TOOLS_LINT_LINT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace dvr::lint {

/** One rule violation (or linter-level error) at a source location. */
struct Finding
{
    std::string file;       ///< path relative to the lint root
    size_t line = 0;        ///< 1-based; 0 for file-level findings
    std::string rule;       ///< rule identifier, e.g. "naked-new"
    std::string message;

    /** "file:line: [rule] message" (the format tools expect). */
    std::string toString() const;
};

/** A rule's identifier and one-line description (--list-rules). */
struct RuleInfo
{
    const char *id;
    const char *describe;
};

/** All rules, in report order. */
const std::vector<RuleInfo> &rules();

/** True when `id` names a known rule. */
bool isRule(const std::string &id);

struct Options
{
    /** Tree root; findings are reported relative to it. */
    std::string root = ".";

    /**
     * Explicit root-relative files to lint. Empty: walk src/,
     * tools/, bench/, and tests/ under the root (skipping
     * lint_fixtures and build directories). The whole-program rules
     * (stat-schema, hot-alloc reachability, unused-waiver detection)
     * only run in full-tree mode — a partial file list cannot prove
     * a waiver dead or a schema complete.
     */
    std::vector<std::string> files;

    /** Worker threads for per-file analysis; 0 = hardware default.
     *  Output is byte-identical for every value. */
    unsigned jobs = 0;

    /**
     * Baseline file to ratchet against ("" = none). Findings whose
     * (file, rule, message) match a baseline entry are suppressed;
     * baseline entries matching no finding are reported as
     * `stale-baseline`.
     */
    std::string baselinePath;
};

/**
 * Run every rule over the tree (or file list) and return the
 * unsuppressed findings, sorted by (file, line, rule, message).
 */
std::vector<Finding> runLint(const Options &opts);

/** One ratchet entry; line-insensitive so edits above a baselined
 *  finding do not churn the file. */
struct BaselineEntry
{
    std::string file;
    std::string rule;
    std::string message;
};

/** Parse a baseline.json. A missing file is an empty baseline;
 *  malformed JSON throws. */
std::vector<BaselineEntry> loadBaseline(const std::string &path);

/** Serialize findings as a baseline.json payload (sorted, deduped,
 *  line-insensitive). */
std::string baselineJson(const std::vector<Finding> &findings);

/** Serialize findings as a JSON array (--format=json). */
std::string toJson(const std::vector<Finding> &findings);

/**
 * Replace comment bodies and string/character-literal contents with
 * spaces, preserving line structure, so token rules cannot match
 * prose. Exposed for the linter's own tests.
 */
std::vector<std::string> scrubSource(const std::vector<std::string> &lines);

} // namespace dvr::lint

#endif // DVR_TOOLS_LINT_LINT_HH
