#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "sim/task_pool.hh"

#include "index.hh"
#include "semantic.hh"
#include "tokenizer.hh"

namespace fs = std::filesystem;

namespace dvr::lint {

namespace {

// ---------------------------------------------------------------------
// Rule identifiers. Order here is the --list-rules / report order.
// ---------------------------------------------------------------------

constexpr const char *kSchemaDrift = "schema-drift";
constexpr const char *kStatDup = "stat-dup";
constexpr const char *kStatName = "stat-name";
constexpr const char *kNakedNew = "naked-new";
constexpr const char *kHotMap = "hot-map";
constexpr const char *kCycleType = "cycle-type";
constexpr const char *kNoRand = "no-rand";
constexpr const char *kNoFloat = "no-float-timing";
constexpr const char *kUsingNamespace = "using-namespace-header";
constexpr const char *kIncludeGuard = "include-guard";
constexpr const char *kBadWaiver = "bad-waiver";
constexpr const char *kUnorderedIter = "unordered-iteration";
constexpr const char *kWallClock = "wall-clock";
constexpr const char *kPointerKey = "pointer-key";
constexpr const char *kGuardedBy = "guarded-by";
constexpr const char *kRelaxedAtomic = "relaxed-atomic";
constexpr const char *kHotAlloc = "hot-alloc";
constexpr const char *kStatSchema = "stat-schema";
constexpr const char *kStaleBaseline = "stale-baseline";

const std::vector<RuleInfo> kRules = {
    {kSchemaDrift,
     "config structs, config_fields.def, and config_schema.cc keys "
     "must agree field-for-field"},
    {kStatDup,
     "a stat name may be registered (set/add) only once per file"},
    {kStatName,
     "stat names must be lower_snake_case (dots as separators); "
     "cpi.* / timeliness.* / sample.* / serve.* must use the closed "
     "component vocabulary"},
    {kNakedNew,
     "no naked new/delete; use std::unique_ptr or containers"},
    {kHotMap,
     "no std::unordered_map/set on hot paths (src/core, src/mem)"},
    {kCycleType,
     "cycle counts and latencies must use dvr::Cycle, not narrow ints"},
    {kNoRand,
     "no rand()/srand(); use common/rng.hh (deterministic runs)"},
    {kNoFloat,
     "no float in timing code (src/core|mem|runahead|sim); use "
     "double or integers"},
    {kUsingNamespace, "no using-namespace directives in headers"},
    {kIncludeGuard,
     "header guards must be DVR_<PATH>_HH derived from the file path"},
    {kBadWaiver,
     "a waiver must name an existing rule and suppress at least one "
     "finding"},
    {kUnorderedIter,
     "no iterating an unordered container on a path that feeds "
     "stats, traces, or output (nondeterministic element order)"},
    {kWallClock,
     "no host-time reads (time(), chrono system/steady clocks) "
     "outside bench/ and src/sim/runner.cc"},
    {kPointerKey,
     "no associative containers keyed by pointers (iteration order "
     "follows allocation addresses)"},
    {kGuardedBy,
     "members annotated // dvr-guarded-by(<mutex>) must be used "
     "under a lock of that mutex"},
    {kRelaxedAtomic,
     "memory_order_relaxed only in the audited stat-counter files"},
    {kHotAlloc,
     "no allocation reachable from the per-cycle roots (OooCore / "
     "MemorySystem tick paths, FunctionalCore dispatch, "
     "// dvr-hot-path)"},
    {kStatSchema,
     "stat registrations in src/ and tests/stats_schema.inc "
     "kRegisteredStatNames must agree whole-program"},
    {kStaleBaseline,
     "a baseline entry whose finding has been fixed must be removed "
     "(the ratchet only tightens)"},
};

// ---------------------------------------------------------------------
// Source loading and scrubbing.
// ---------------------------------------------------------------------

std::vector<std::string>
readLines(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("dvr-lint: cannot read " +
                                 path.string());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    return lines;
}

/**
 * Comment-only scrub: blanks // and block comments but keeps string
 * literals, for files (config_fields.def) whose payload lives in
 * quoted macro arguments.
 */
std::vector<std::string>
scrubComments(const std::vector<std::string> &lines)
{
    return tokenizeFile(lines).scrubKeepStrings;
}

} // namespace

std::vector<std::string>
scrubSource(const std::vector<std::string> &lines)
{
    return tokenizeFile(lines).scrub;
}

namespace {

// ---------------------------------------------------------------------
// Waivers: `// dvr-lint: allow(<rule>)` on the line or the line above.
// Waivers live in comments, so they are collected from the comment
// tokens; each one tracks whether it suppressed anything (a dead
// waiver is itself a finding).
// ---------------------------------------------------------------------

const std::regex kWaiverRe(R"(dvr-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\))");

struct Waiver
{
    size_t line = 0;        ///< 1-based line of the waiver comment
    std::string rule;
    bool used = false;
};

std::vector<Waiver>
collectWaivers(const TokenizedFile &tf)
{
    std::vector<Waiver> out;
    for (const Token &t : tf.tokens) {
        if (t.kind != Tok::kComment)
            continue;
        auto begin = std::sregex_iterator(t.text.begin(), t.text.end(),
                                          kWaiverRe);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            out.push_back({t.line, (*it)[1].str(), false});
    }
    return out;
}

/**
 * True when a waiver for `rule` sits on `line` or the line above;
 * every matching waiver is marked used.
 */
bool
waiverHit(std::vector<Waiver> &ws, size_t line, const std::string &rule)
{
    bool hit = false;
    for (Waiver &w : ws) {
        if (w.rule == rule && (w.line == line || w.line + 1 == line)) {
            w.used = true;
            hit = true;
        }
    }
    return hit;
}

bool
startsWith(const std::string &s, const std::string &pfx)
{
    return s.rfind(pfx, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &sfx)
{
    return s.size() >= sfx.size() &&
           s.compare(s.size() - sfx.size(), sfx.size(), sfx) == 0;
}

bool
isHeader(const std::string &rel)
{
    return endsWith(rel, ".hh");
}

bool
inDirs(const std::string &rel,
       std::initializer_list<const char *> dirs)
{
    for (const char *d : dirs) {
        if (startsWith(rel, d))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Token rules (the former line-regex rules, re-hosted on the token
// stream so string literals and comments can never match).
// ---------------------------------------------------------------------

void
checkTokens(const std::string &rel, const std::vector<Token> &code,
            const std::vector<std::string> &scrub,
            std::vector<Finding> &out)
{
    const bool hotPath = inDirs(rel, {"src/core/", "src/mem/"});
    const bool timing = inDirs(
        rel, {"src/core/", "src/mem/", "src/runahead/", "src/sim/"});
    const bool header = isHeader(rel);

    auto preproc = [&](uint32_t line) {
        if (line == 0 || line > scrub.size())
            return false;
        const std::string &s = scrub[line - 1];
        const size_t first = s.find_first_not_of(" \t");
        return first != std::string::npos && s[first] == '#';
    };

    // One finding per construct per line (multiple hits on one line
    // collapse, matching the old per-line reports).
    uint32_t lastNew = 0, lastDelete = 0, lastRand = 0, lastFloat = 0,
             lastMap = 0, lastUsing = 0;

    for (size_t i = 0; i < code.size(); ++i) {
        const Token &t = code[i];
        if (t.kind != Tok::kIdent)
            continue;
        const Token *next = i + 1 < code.size() ? &code[i + 1] : nullptr;
        const Token *prev = i > 0 ? &code[i - 1] : nullptr;

        if (t.text == "new" && next &&
            (next->kind == Tok::kIdent ||
             (next->kind == Tok::kPunct && next->text == "(")) &&
            !(prev && prev->kind == Tok::kIdent &&
              prev->text == "operator")) {
            if (t.line != lastNew) {
                lastNew = t.line;
                out.push_back({rel, t.line, kNakedNew,
                               "naked 'new'; own it with "
                               "std::unique_ptr / std::make_unique or "
                               "a container"});
            }
        } else if (t.text == "delete") {
            // `= delete;` (deleted functions) is not a deallocation.
            if (prev && prev->kind == Tok::kPunct && prev->text == "=")
                continue;
            if (prev && prev->kind == Tok::kIdent &&
                prev->text == "operator") {
                continue;
            }
            if (t.line != lastDelete) {
                lastDelete = t.line;
                out.push_back({rel, t.line, kNakedNew,
                               "naked 'delete'; owning pointers must "
                               "be RAII-managed"});
            }
        } else if ((t.text == "rand" || t.text == "srand") && next &&
                   next->kind == Tok::kPunct && next->text == "(") {
            if (t.line != lastRand) {
                lastRand = t.line;
                out.push_back({rel, t.line, kNoRand,
                               "rand()/srand() breaks run "
                               "determinism; use dvr::Rng "
                               "(common/rng.hh)"});
            }
        } else if (t.text == "float" && timing && !preproc(t.line)) {
            if (t.line != lastFloat) {
                lastFloat = t.line;
                out.push_back({rel, t.line, kNoFloat,
                               "float in timing code loses cycle "
                               "precision; use double or integers"});
            }
        } else if ((t.text == "unordered_map" ||
                    t.text == "unordered_set") &&
                   hotPath && !preproc(t.line) && next &&
                   next->kind == Tok::kPunct && next->text == "<") {
            if (t.line != lastMap) {
                lastMap = t.line;
                out.push_back({rel, t.line, kHotMap,
                               "std::unordered_map/set on a hot path; "
                               "use a direct-mapped table or a sorted "
                               "vector, or waive with a "
                               "justification"});
            }
        } else if (t.text == "using" && header && next &&
                   next->kind == Tok::kIdent &&
                   next->text == "namespace") {
            if (t.line != lastUsing) {
                lastUsing = t.line;
                out.push_back({rel, t.line, kUsingNamespace,
                               "using-namespace in a header leaks "
                               "into every includer"});
            }
        }
    }
}

void
checkCycleType(const std::string &rel,
               const std::vector<std::string> &scrub,
               std::vector<Finding> &out)
{
    // Narrow-integer declarations whose name says "cycle count" or
    // "latency". `Cycle` (uint64_t) is the only sanctioned carrier.
    static const std::regex declRe(
        R"(\b(?:int|unsigned|short|u?int(?:8|16|32)_t)\s+)"
        R"((\w*(?:[Cc]ycles|[Ll]atency|Lat|_lat)_?)\s*[=;,)\{])");

    for (size_t l = 0; l < scrub.size(); ++l) {
        std::smatch m;
        if (std::regex_search(scrub[l], m, declRe)) {
            out.push_back({rel, l + 1, kCycleType,
                           "'" + m[1].str() +
                               "' holds cycles/latency but is not "
                               "dvr::Cycle (common/types.hh)"});
        }
    }
}

// The observability namespaces are closed vocabularies: downstream
// consumers (docs/OBSERVABILITY.md, the CPI-invariant tests, bench
// post-processing) key on exact component names, so a typo'd
// `cpi.l4` must fail lint rather than silently export a stat nobody
// reads. `ra_hidden_hist_` with no digit is allowed because the
// histogram index is appended via std::to_string at the call site.
std::string
observabilityNameError(const std::string &name)
{
    static const std::regex cpiRe(
        R"((core\.)?cpi\.)"
        R"((base|branch_redirect|l1|l2|l3|dram|full_rob|full_iq_lsq))");
    static const std::regex tlRe(
        R"((mem\.)?timeliness\.)"
        R"(((ra|hw)_(fully_hidden|partial|full_latency|evicted|useless))"
        R"(|ra_hidden_hist_[0-7]?))");
    static const std::regex sampleRe(
        R"(sample\.)"
        R"((windows|cpi|cpi_var|cpi_ci95|cpi_rel_ci95|insts_total)"
        R"(|insts_functional|insts_warmup|insts_measured)"
        R"(|measured_cycles|functional_mips))");
    static const std::regex serveRe(
        R"(serve\.)"
        R"((points_total|points_run|points_deduped|cache_hits)"
        R"(|cache_misses|journal_resumed|retries))");

    if (name.rfind("cpi.", 0) == 0 || name.rfind("core.cpi.", 0) == 0) {
        if (!std::regex_match(name, cpiRe))
            return "stat '" + name +
                   "' is not a known core.cpi.* stack component";
    } else if (name.rfind("timeliness.", 0) == 0 ||
               name.rfind("mem.timeliness.", 0) == 0) {
        if (!std::regex_match(name, tlRe))
            return "stat '" + name +
                   "' is not a known mem.timeliness.* class";
    } else if (name.rfind("sample.", 0) == 0) {
        if (!std::regex_match(name, sampleRe))
            return "stat '" + name +
                   "' is not a known sample.* sampling stat "
                   "(tests/stats_schema.inc kSampleStatKeys)";
    } else if (name.rfind("serve.", 0) == 0) {
        if (!std::regex_match(name, serveRe))
            return "stat '" + name +
                   "' is not a known serve.* scheduling counter "
                   "(src/serve/daemon.hh ServeCounters)";
    }
    return "";
}

void
checkStats(const std::string &rel, const std::vector<Token> &code,
           std::vector<Finding> &out)
{
    // `.set("name"` / `.add("name"` on the token stream (the name is
    // the string token's content, so escapes and multi-line calls
    // just work). `.add` is accumulate-or-create, so only `.set`
    // counts as registration for the duplicate check.
    static const std::regex nameRe(
        R"([a-z][a-z0-9_]*(\.[a-z0-9_]+)*)");

    std::map<std::string, size_t> firstLine;
    for (size_t i = 3; i < code.size(); ++i) {
        if (code[i].kind != Tok::kString)
            continue;
        if (!(code[i - 1].kind == Tok::kPunct &&
              code[i - 1].text == "(")) {
            continue;
        }
        const Token &callee = code[i - 2];
        if (callee.kind != Tok::kIdent ||
            (callee.text != "set" && callee.text != "add")) {
            continue;
        }
        if (!(code[i - 3].kind == Tok::kPunct &&
              code[i - 3].text == ".")) {
            continue;
        }
        const std::string &name = code[i].text;
        const size_t line = code[i].line;
        if (!std::regex_match(name, nameRe)) {
            out.push_back({rel, line, kStatName,
                           "stat '" + name +
                               "' is not lower_snake_case"});
        } else if (const std::string ns_err =
                       observabilityNameError(name);
                   !ns_err.empty()) {
            out.push_back({rel, line, kStatName, ns_err});
        }
        if (callee.text != "set")
            continue;
        auto [pos, inserted] = firstLine.emplace(name, line);
        if (!inserted) {
            out.push_back(
                {rel, line, kStatDup,
                 "stat '" + name + "' already registered at line " +
                     std::to_string(pos->second)});
        }
    }
}

void
checkIncludeGuard(const std::string &rel,
                  const std::vector<std::string> &scrub,
                  std::vector<Finding> &out)
{
    if (!isHeader(rel))
        return;

    // src/common/types.hh -> DVR_COMMON_TYPES_HH;
    // tools/lint/lint.hh  -> DVR_TOOLS_LINT_LINT_HH.
    std::string tail = rel;
    if (startsWith(tail, "src/"))
        tail = tail.substr(4);
    std::string expect = "DVR_";
    for (char c : tail) {
        expect += std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(
                            std::toupper(static_cast<unsigned char>(c)))
                      : '_';
    }

    static const std::regex ifndefRe(R"(^\s*#ifndef\s+(\w+))");
    static const std::regex defineRe(R"(^\s*#define\s+(\w+))");
    for (size_t l = 0; l < scrub.size(); ++l) {
        std::smatch m;
        if (!std::regex_search(scrub[l], m, ifndefRe))
            continue;
        if (m[1].str() != expect) {
            out.push_back({rel, l + 1, kIncludeGuard,
                           "guard '" + m[1].str() + "' should be '" +
                               expect + "'"});
            return;
        }
        // The matching #define must follow on the next code line.
        for (size_t d = l + 1; d < scrub.size(); ++d) {
            if (scrub[d].find_first_not_of(" \t") ==
                std::string::npos) {
                continue;
            }
            std::smatch dm;
            if (!std::regex_search(scrub[d], dm, defineRe) ||
                dm[1].str() != expect) {
                out.push_back({rel, d + 1, kIncludeGuard,
                               "#ifndef " + expect +
                                   " must be followed by its "
                                   "#define"});
            }
            return;
        }
        return;
    }
    out.push_back({rel, 1, kIncludeGuard,
                   "missing include guard '" + expect + "'"});
}

// ---------------------------------------------------------------------
// schema-drift: config structs <-> config_fields.def <-> schema keys.
// ---------------------------------------------------------------------

struct DefEntry
{
    std::string field;
    std::string key;        ///< "-" for composite fields with no key
    size_t line;            ///< in config_fields.def
};

struct DefStruct
{
    std::string section;    ///< e.g. "CORE" in DVR_CORE_FIELD
    std::string name;       ///< e.g. "CoreConfig"
    std::string header;     ///< root-relative path of the definition
    size_t line;
    std::vector<DefEntry> fields;
};

/** Depth-1 field declarations of `struct name { ... }` in a header. */
std::vector<std::pair<std::string, size_t>>
structFields(const std::vector<std::string> &scrub,
             const std::string &name, bool &found)
{
    const std::regex headRe("^\\s*struct\\s+" + name + "\\b(.*)$");
    static const std::regex fieldRe(
        R"(^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;>]*>)?)"
        R"((?:\s*[&*])?\s+(\w+)\s*(?:=[^;]*|\{[^;}]*\})?\s*;)");

    std::vector<std::pair<std::string, size_t>> out;
    found = false;
    int depth = 0;
    bool inBody = false;
    for (size_t l = 0; l < scrub.size(); ++l) {
        const std::string &s = scrub[l];
        std::smatch m;
        if (!inBody && !found && std::regex_search(s, m, headRe) &&
            m[1].str().find(';') == std::string::npos) {
            found = true;
            depth = 0;
        }
        if (!found || (inBody && depth == 0))
            continue;
        for (char c : s) {
            if (c == '{') {
                ++depth;
                inBody = true;
            } else if (c == '}') {
                --depth;
            }
        }
        if (!inBody)
            continue;
        if (depth == 1) {
            const std::string trimmed =
                s.substr(std::min(s.find_first_not_of(" \t"), s.size()));
            if (startsWith(trimmed, "static ") ||
                startsWith(trimmed, "using ") ||
                startsWith(trimmed, "friend ")) {
                continue;
            }
            if (std::regex_search(s, m, fieldRe))
                out.emplace_back(m[1].str(), l + 1);
        }
        if (depth == 0)
            break;      // closed the struct
    }
    return out;
}

void
checkSchemaDrift(const fs::path &root, std::vector<Finding> &out)
{
    const std::string defRel = "src/sim/config_fields.def";
    const fs::path defPath = root / defRel;
    if (!fs::exists(defPath))
        return;     // tree without a schema (e.g. a fixture root)

    const auto defRaw = readLines(defPath);
    // Comment-scrubbed so the doc header's example entry is inert; the
    // quoted macro arguments (header paths, keys) must survive.
    const auto defScrub = scrubComments(defRaw);

    static const std::regex structRe(
        R"re(DVR_CONFIG_STRUCT\(\s*(\w+)\s*,\s*(\w+)\s*,\s*"([^"]+)"\s*\))re");
    static const std::regex fieldRe(
        R"re(DVR_(\w+)_FIELD\(\s*(\w+)\s*,\s*[^,]+,\s*"([^"]+)"\s*\))re");

    std::vector<DefStruct> structs;
    for (size_t l = 0; l < defScrub.size(); ++l) {
        std::smatch m;
        if (std::regex_search(defScrub[l], m, structRe))
            structs.push_back({m[1].str(), m[2].str(), m[3].str(),
                               l + 1, {}});
    }
    for (size_t l = 0; l < defScrub.size(); ++l) {
        std::smatch m;
        if (!std::regex_search(defScrub[l], m, fieldRe))
            continue;
        bool known = false;
        for (DefStruct &ds : structs) {
            if (ds.section == m[1].str()) {
                ds.fields.push_back({m[2].str(), m[3].str(), l + 1});
                known = true;
            }
        }
        if (!known) {
            out.push_back({defRel, l + 1, kSchemaDrift,
                           "DVR_" + m[1].str() +
                               "_FIELD has no DVR_CONFIG_STRUCT "
                               "declaring its section"});
        }
    }

    // Keys registered in config_schema.cc: every string literal.
    std::set<std::string> schemaKeys;
    const std::string schemaRel = "src/sim/config_schema.cc";
    const fs::path schemaPath = root / schemaRel;
    const bool haveSchema = fs::exists(schemaPath);
    if (haveSchema) {
        static const std::regex litRe(R"re("((?:[^"\\]|\\.)*)")re");
        // Comment-scrubbed: a key mentioned in a comment is not
        // registered.
        for (const std::string &line :
             scrubComments(readLines(schemaPath))) {
            for (auto it = std::sregex_iterator(line.begin(),
                                                line.end(), litRe);
                 it != std::sregex_iterator(); ++it) {
                schemaKeys.insert((*it)[1].str());
            }
        }
    }

    for (const DefStruct &ds : structs) {
        const fs::path hdr = root / ds.header;
        if (!fs::exists(hdr)) {
            out.push_back({defRel, ds.line, kSchemaDrift,
                           "header '" + ds.header + "' for struct " +
                               ds.name + " not found"});
            continue;
        }
        const auto scrub = scrubSource(readLines(hdr));
        bool found = false;
        const auto fields = structFields(scrub, ds.name, found);
        if (!found) {
            out.push_back({defRel, ds.line, kSchemaDrift,
                           "struct " + ds.name + " not found in " +
                               ds.header});
            continue;
        }
        for (const auto &[fname, fline] : fields) {
            const bool listed = std::any_of(
                ds.fields.begin(), ds.fields.end(),
                [&](const DefEntry &e) { return e.field == fname; });
            if (!listed) {
                out.push_back(
                    {ds.header, fline, kSchemaDrift,
                     ds.name + "::" + fname +
                         " is not listed in config_fields.def (add a "
                         "DVR_" +
                         ds.section + "_FIELD entry and a schema key)"});
            }
        }
        for (const DefEntry &e : ds.fields) {
            const bool present = std::any_of(
                fields.begin(), fields.end(),
                [&](const auto &f) { return f.first == e.field; });
            if (!present) {
                out.push_back({defRel, e.line, kSchemaDrift,
                               "stale entry: " + ds.name +
                                   " has no field '" + e.field + "'"});
            }
            if (haveSchema && e.key != "-" &&
                schemaKeys.count(e.key) == 0) {
                out.push_back({defRel, e.line, kSchemaDrift,
                               "key \"" + e.key +
                                   "\" is not registered in "
                                   "config_schema.cc"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// JSON (output and the baseline ratchet). Hand-rolled: the linter is
// dependency-free, and the subset needed — flat arrays of string
// objects — is small.
// ---------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Minimal parser for the baseline's own format: an array of flat
 *  objects with string or number values. */
class JsonScanner
{
  public:
    JsonScanner(const std::string &text, const std::string &what)
        : s_(text), what_(what)
    {}

    void
    parseArrayOfObjects(
        const std::function<void(
            const std::map<std::string, std::string> &)> &emit)
    {
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++i_;
            return;
        }
        for (;;) {
            std::map<std::string, std::string> obj;
            expect('{');
            skipWs();
            if (peek() != '}') {
                for (;;) {
                    const std::string key = parseString();
                    expect(':');
                    skipWs();
                    obj[key] = parseValue();
                    skipWs();
                    if (peek() == ',') {
                        ++i_;
                        skipWs();
                        continue;
                    }
                    break;
                }
            }
            expect('}');
            emit(obj);
            skipWs();
            if (peek() == ',') {
                ++i_;
                skipWs();
                continue;
            }
            break;
        }
        expect(']');
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("dvr-lint: malformed " + what_ +
                                 ": " + why);
    }

    char
    peek() const
    {
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_]))) {
            ++i_;
        }
    }

    void
    expect(char c)
    {
        skipWs();
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++i_;
    }

    std::string
    parseString()
    {
        skipWs();
        if (peek() != '"')
            fail("expected a string");
        ++i_;
        std::string out;
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (i_ >= s_.size())
                fail("truncated escape");
            const char e = s_[i_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (i_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned v = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = s_[i_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v += unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v += unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v += unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                out += v < 0x80 ? static_cast<char>(v) : '?';
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        if (i_ >= s_.size())
            fail("unterminated string");
        ++i_;   // closing quote
        return out;
    }

    std::string
    parseValue()
    {
        skipWs();
        if (peek() == '"')
            return parseString();
        // Number / true / false / null: consumed, returned verbatim.
        const size_t start = i_;
        while (i_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.')) {
            ++i_;
        }
        if (i_ == start)
            fail("expected a value");
        return s_.substr(start, i_ - start);
    }

    const std::string &s_;
    std::string what_;
    size_t i_ = 0;
};

// ---------------------------------------------------------------------
// Tree walking and the driver.
// ---------------------------------------------------------------------

bool
lintable(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

bool
skippedDir(const std::string &name)
{
    return name == "lint_fixtures" || startsWith(name, "build") ||
           name == ".git";
}

std::vector<std::string>
walkTree(const fs::path &root)
{
    std::vector<std::string> files;
    for (const char *top : {"src", "tools", "bench", "tests"}) {
        const fs::path dir = root / top;
        if (!fs::is_directory(dir))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                skippedDir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(
                    fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** Report `path` relative to the root when it lives under it. */
std::string
relToRoot(const fs::path &root, const std::string &path)
{
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    if (ec || rel.empty() || rel.generic_string().rfind("..", 0) == 0)
        return path;
    return rel.generic_string();
}

} // namespace

std::string
Finding::toString() const
{
    return file + ":" + std::to_string(line) + ": [" + rule + "] " +
           message;
}

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

bool
isRule(const std::string &id)
{
    return std::any_of(kRules.begin(), kRules.end(),
                       [&](const RuleInfo &r) { return id == r.id; });
}

std::vector<BaselineEntry>
loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};      // no baseline yet: an empty ratchet
    std::ostringstream text;
    text << in.rdbuf();
    const std::string s = text.str();

    std::vector<BaselineEntry> entries;
    JsonScanner scanner(s, "baseline " + path);
    scanner.parseArrayOfObjects(
        [&](const std::map<std::string, std::string> &obj) {
            BaselineEntry e;
            if (auto it = obj.find("file"); it != obj.end())
                e.file = it->second;
            if (auto it = obj.find("rule"); it != obj.end())
                e.rule = it->second;
            if (auto it = obj.find("message"); it != obj.end())
                e.message = it->second;
            if (e.file.empty() || e.rule.empty())
                throw std::runtime_error(
                    "dvr-lint: baseline entry without file/rule in " +
                    path);
            entries.push_back(std::move(e));
        });
    return entries;
}

std::string
baselineJson(const std::vector<Finding> &findings)
{
    std::vector<std::tuple<std::string, std::string, std::string>> keys;
    keys.reserve(findings.size());
    for (const Finding &f : findings)
        keys.emplace_back(f.file, f.rule, f.message);
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::string out = "[";
    bool first = true;
    for (const auto &[file, rule, message] : keys) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"file\": \"" + jsonEscape(file) +
               "\", \"rule\": \"" + jsonEscape(rule) +
               "\", \"message\": \"" + jsonEscape(message) + "\"}";
    }
    out += first ? "]\n" : "\n]\n";
    return out;
}

std::string
toJson(const std::vector<Finding> &findings)
{
    std::string out = "[";
    bool first = true;
    for (const Finding &f : findings) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"message\": \"" + jsonEscape(f.message) + "\"}";
    }
    out += first ? "]\n" : "\n]\n";
    return out;
}

std::vector<Finding>
runLint(const Options &opts)
{
    const fs::path root = opts.root;
    const bool wholeTree = opts.files.empty();
    const std::vector<std::string> files =
        wholeTree ? walkTree(root) : opts.files;

    struct FileAnalysis
    {
        std::vector<Finding> findings;
        FileIndex index;
        std::vector<Waiver> waivers;
    };
    std::vector<FileAnalysis> fa(files.size());
    std::vector<std::exception_ptr> errors(files.size());

    // Per-file analysis is embarrassingly parallel; every result
    // lands in its own index slot and the merge below is serial, so
    // the report is byte-identical at any job count.
    unsigned jobs =
        opts.jobs ? opts.jobs : std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    {
        TaskPool pool(jobs);
        pool.run(files.size(), [&](size_t i) {
            try {
                const std::string &rel = files[i];
                const TokenizedFile tf =
                    tokenizeFile(readLines(root / rel));
                FileAnalysis &a = fa[i];
                a.index = indexFile(rel, tf);
                a.waivers = collectWaivers(tf);
                checkTokens(rel, a.index.code, tf.scrub, a.findings);
                checkCycleType(rel, tf.scrub, a.findings);
                checkStats(rel, a.index.code, a.findings);
                checkIncludeGuard(rel, tf.scrub, a.findings);
                checkFileSemantics(a.index, a.findings);
                // Waivers naming a rule that does not exist are
                // themselves findings: a typo'd waiver must not
                // silently suppress nothing.
                for (const Waiver &w : a.waivers) {
                    if (!isRule(w.rule)) {
                        a.findings.push_back(
                            {rel, w.line, kBadWaiver,
                             "waiver names unknown rule '" + w.rule +
                                 "'"});
                    }
                }
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }

    std::vector<Finding> found;
    for (FileAnalysis &a : fa) {
        found.insert(found.end(), a.findings.begin(),
                     a.findings.end());
        a.findings.clear();
    }

    // Whole-program rules need the whole program: with an explicit
    // file list a missing finding could mean "clean" or "not
    // linted", so reachability, schema closure, and dead-waiver
    // detection only run over the full tree walk.
    if (wholeTree) {
        std::vector<FileIndex> indices;
        indices.reserve(fa.size());
        for (FileAnalysis &a : fa)
            indices.push_back(std::move(a.index));
        const ProjectIndex pi = buildProjectIndex(std::move(indices));
        checkProjectSemantics(pi, root.string(), found);
    }

    checkSchemaDrift(root, found);

    // Apply waivers (line or line-above), tracking which ones fire.
    std::map<std::string, std::vector<Waiver> *> byFile;
    for (size_t i = 0; i < files.size(); ++i)
        byFile[files[i]] = &fa[i].waivers;
    std::map<std::string, std::vector<Waiver>> extra;
    auto waiversFor =
        [&](const std::string &file) -> std::vector<Waiver> & {
        if (auto it = byFile.find(file); it != byFile.end())
            return *it->second;
        auto [it, fresh] = extra.try_emplace(file);
        if (fresh) {
            try {
                it->second =
                    collectWaivers(tokenizeFile(readLines(root / file)));
            } catch (...) {
                // Findings can point at unreadable/virtual locations;
                // those simply have no waivers.
            }
        }
        return it->second;
    };

    std::vector<Finding> kept;
    for (const Finding &f : found) {
        if (!waiverHit(waiversFor(f.file), f.line, f.rule))
            kept.push_back(f);
    }

    // A waiver that suppressed nothing is dead weight — or a typo
    // hiding a real suppression intent — and is flagged. Waiving the
    // flag itself (`allow(bad-waiver)`) is honored but not chased
    // further, so the check cannot recurse.
    if (wholeTree) {
        for (size_t i = 0; i < files.size(); ++i) {
            for (const Waiver &w : fa[i].waivers) {
                if (w.used || !isRule(w.rule) || w.rule == kBadWaiver)
                    continue;
                if (waiverHit(fa[i].waivers, w.line, kBadWaiver))
                    continue;
                kept.push_back({files[i], w.line, kBadWaiver,
                                "waiver for '" + w.rule +
                                    "' suppresses no finding; "
                                    "remove it"});
            }
        }
    }

    // The baseline ratchet: matching findings (file + rule +
    // message, line-insensitive) are pre-existing debt and pass;
    // entries matching nothing mean the debt was paid and the entry
    // must go.
    if (!opts.baselinePath.empty()) {
        const auto entries = loadBaseline(opts.baselinePath);
        std::map<std::tuple<std::string, std::string, std::string>,
                 bool>
            hit;
        for (const BaselineEntry &e : entries)
            hit[{e.file, e.rule, e.message}] = false;
        std::vector<Finding> after;
        after.reserve(kept.size());
        for (Finding &f : kept) {
            auto it = hit.find({f.file, f.rule, f.message});
            if (it != hit.end())
                it->second = true;
            else
                after.push_back(std::move(f));
        }
        const std::string baseRel =
            relToRoot(root, opts.baselinePath);
        for (const auto &[key, used] : hit) {
            if (used)
                continue;
            const auto &[file, rule, message] = key;
            after.push_back(
                {baseRel, 0, kStaleBaseline,
                 "stale entry for " + file + " [" + rule +
                     "]: the finding no longer occurs — remove the "
                     "entry"});
        }
        kept = std::move(after);
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    return kept;
}

} // namespace dvr::lint
