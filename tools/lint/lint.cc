#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fs = std::filesystem;

namespace dvr::lint {

namespace {

// ---------------------------------------------------------------------
// Rule identifiers. Order here is the --list-rules / report order.
// ---------------------------------------------------------------------

constexpr const char *kSchemaDrift = "schema-drift";
constexpr const char *kStatDup = "stat-dup";
constexpr const char *kStatName = "stat-name";
constexpr const char *kNakedNew = "naked-new";
constexpr const char *kHotMap = "hot-map";
constexpr const char *kCycleType = "cycle-type";
constexpr const char *kNoRand = "no-rand";
constexpr const char *kNoFloat = "no-float-timing";
constexpr const char *kUsingNamespace = "using-namespace-header";
constexpr const char *kIncludeGuard = "include-guard";
constexpr const char *kBadWaiver = "bad-waiver";

const std::vector<RuleInfo> kRules = {
    {kSchemaDrift,
     "config structs, config_fields.def, and config_schema.cc keys "
     "must agree field-for-field"},
    {kStatDup,
     "a stat name may be registered (set/add) only once per file"},
    {kStatName,
     "stat names must be lower_snake_case (dots as separators); "
     "cpi.* / timeliness.* / sample.* must use the closed component "
     "vocabulary"},
    {kNakedNew,
     "no naked new/delete; use std::unique_ptr or containers"},
    {kHotMap,
     "no std::unordered_map/set on hot paths (src/core, src/mem)"},
    {kCycleType,
     "cycle counts and latencies must use dvr::Cycle, not narrow ints"},
    {kNoRand,
     "no rand()/srand(); use common/rng.hh (deterministic runs)"},
    {kNoFloat,
     "no float in timing code (src/core|mem|runahead|sim); use "
     "double or integers"},
    {kUsingNamespace, "no using-namespace directives in headers"},
    {kIncludeGuard,
     "header guards must be DVR_<PATH>_HH derived from the file path"},
    {kBadWaiver, "a waiver must name an existing rule"},
};

// ---------------------------------------------------------------------
// Source loading and scrubbing.
// ---------------------------------------------------------------------

std::vector<std::string>
readLines(const fs::path &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("dvr-lint: cannot read " +
                                 path.string());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    return lines;
}

/** One loaded source file plus its comment/string-scrubbed shadow. */
struct Source
{
    std::string rel;                ///< root-relative path
    std::vector<std::string> raw;
    std::vector<std::string> scrub;
};

} // namespace

static std::vector<std::string>
scrubImpl(const std::vector<std::string> &lines, bool blankStrings);

std::vector<std::string>
scrubSource(const std::vector<std::string> &lines)
{
    return scrubImpl(lines, true);
}

/**
 * Comment-only scrub: blanks // and block comments but keeps string
 * literals, for files (config_fields.def) whose payload lives in
 * quoted macro arguments.
 */
static std::vector<std::string>
scrubComments(const std::vector<std::string> &lines)
{
    return scrubImpl(lines, false);
}

static std::vector<std::string>
scrubImpl(const std::vector<std::string> &lines, bool blankStrings)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    enum class St { kCode, kBlockComment, kRawString };
    St st = St::kCode;
    std::string rawEnd;     // ")delim\"" terminator of a raw string

    for (const std::string &line : lines) {
        std::string o(line.size(), ' ');
        size_t i = 0;
        while (i < line.size()) {
            if (st == St::kBlockComment) {
                const size_t e = line.find("*/", i);
                if (e == std::string::npos) {
                    i = line.size();
                } else {
                    i = e + 2;
                    st = St::kCode;
                }
                continue;
            }
            if (st == St::kRawString) {
                const size_t e = line.find(rawEnd, i);
                const size_t stop = e == std::string::npos
                                        ? line.size()
                                        : e + rawEnd.size();
                if (!blankStrings) {
                    for (size_t k = i; k < stop; ++k)
                        o[k] = line[k];
                }
                i = stop;
                if (e != std::string::npos)
                    st = St::kCode;
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    i = line.size();    // rest is a line comment
                    continue;
                }
                if (line[i + 1] == '*') {
                    st = St::kBlockComment;
                    i += 2;
                    continue;
                }
            }
            if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"') {
                const size_t paren = line.find('(', i + 2);
                if (paren != std::string::npos) {
                    rawEnd = ")" + line.substr(i + 2, paren - i - 2) +
                             "\"";
                    st = St::kRawString;
                    i = paren + 1;
                    continue;
                }
            }
            if (c == '\'' && i > 0 &&
                std::isalnum(static_cast<unsigned char>(line[i - 1]))) {
                ++i;    // digit separator (1'000), not a char literal
                continue;
            }
            if (c == '"' || c == '\'') {
                const char q = c;
                const size_t start = i;
                ++i;
                while (i < line.size() && line[i] != q) {
                    if (line[i] == '\\')
                        ++i;
                    ++i;
                }
                if (i < line.size())
                    ++i;    // closing quote
                if (!blankStrings) {
                    for (size_t k = start; k < i && k < line.size();
                         ++k) {
                        o[k] = line[k];
                    }
                }
                continue;
            }
            o[i] = c;
            ++i;
        }
        out.push_back(std::move(o));
    }
    return out;
}

namespace {

// ---------------------------------------------------------------------
// Waivers: `// dvr-lint: allow(<rule>)` on the line or the line above.
// ---------------------------------------------------------------------

const std::regex kWaiverRe(R"(dvr-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\))");

std::vector<std::string>
waiversOn(const std::string &line)
{
    std::vector<std::string> ids;
    auto begin = std::sregex_iterator(line.begin(), line.end(),
                                      kWaiverRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        ids.push_back((*it)[1].str());
    return ids;
}

/** True when `rule` is waived at 1-based `line` of `raw`. */
bool
waived(const std::vector<std::string> &raw, size_t line,
       const std::string &rule)
{
    for (size_t l = (line > 1 ? line - 1 : 1); l <= line; ++l) {
        if (l == 0 || l > raw.size())
            continue;
        for (const std::string &id : waiversOn(raw[l - 1])) {
            if (id == rule)
                return true;
        }
    }
    return false;
}

bool
startsWith(const std::string &s, const std::string &pfx)
{
    return s.rfind(pfx, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &sfx)
{
    return s.size() >= sfx.size() &&
           s.compare(s.size() - sfx.size(), sfx.size(), sfx) == 0;
}

bool
isHeader(const std::string &rel)
{
    return endsWith(rel, ".hh");
}

bool
inDirs(const std::string &rel,
       std::initializer_list<const char *> dirs)
{
    for (const char *d : dirs) {
        if (startsWith(rel, d))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Line rules.
// ---------------------------------------------------------------------

void
checkBannedTokens(const Source &src, std::vector<Finding> &out)
{
    static const std::regex newRe(R"(\bnew\s+[A-Za-z_(])");
    static const std::regex deleteRe(R"(\bdelete\b)");
    static const std::regex randRe(R"(\bs?rand\s*\()");
    static const std::regex floatRe(R"(\bfloat\b)");
    static const std::regex mapRe(R"(\bunordered_(map|set)\s*<)");
    static const std::regex usingNsRe(R"(\busing\s+namespace\b)");

    const bool hotPath = inDirs(src.rel, {"src/core/", "src/mem/"});
    const bool timing = inDirs(
        src.rel, {"src/core/", "src/mem/", "src/runahead/", "src/sim/"});

    for (size_t l = 0; l < src.scrub.size(); ++l) {
        const std::string &s = src.scrub[l];
        const size_t first = s.find_first_not_of(" \t");
        if (first == std::string::npos)
            continue;
        const bool preproc = s[first] == '#';

        if (std::regex_search(s, newRe)) {
            out.push_back({src.rel, l + 1, kNakedNew,
                           "naked 'new'; own it with std::unique_ptr "
                           "/ std::make_unique or a container"});
        }
        for (auto it = std::sregex_iterator(s.begin(), s.end(),
                                            deleteRe);
             it != std::sregex_iterator(); ++it) {
            // `= delete;` (deleted functions) is not a deallocation.
            size_t p = static_cast<size_t>(it->position());
            while (p > 0 && std::isspace(
                                static_cast<unsigned char>(s[p - 1]))) {
                --p;
            }
            if (p > 0 && s[p - 1] == '=')
                continue;
            out.push_back({src.rel, l + 1, kNakedNew,
                           "naked 'delete'; owning pointers must be "
                           "RAII-managed"});
            break;
        }
        if (std::regex_search(s, randRe)) {
            out.push_back({src.rel, l + 1, kNoRand,
                           "rand()/srand() breaks run determinism; "
                           "use dvr::Rng (common/rng.hh)"});
        }
        if (timing && !preproc && std::regex_search(s, floatRe)) {
            out.push_back({src.rel, l + 1, kNoFloat,
                           "float in timing code loses cycle "
                           "precision; use double or integers"});
        }
        if (hotPath && !preproc && std::regex_search(s, mapRe)) {
            out.push_back({src.rel, l + 1, kHotMap,
                           "std::unordered_map/set on a hot path; use "
                           "a direct-mapped table or a sorted vector, "
                           "or waive with a justification"});
        }
        if (isHeader(src.rel) && std::regex_search(s, usingNsRe)) {
            out.push_back({src.rel, l + 1, kUsingNamespace,
                           "using-namespace in a header leaks into "
                           "every includer"});
        }
    }
}

void
checkCycleType(const Source &src, std::vector<Finding> &out)
{
    // Narrow-integer declarations whose name says "cycle count" or
    // "latency". `Cycle` (uint64_t) is the only sanctioned carrier.
    static const std::regex declRe(
        R"(\b(?:int|unsigned|short|u?int(?:8|16|32)_t)\s+)"
        R"((\w*(?:[Cc]ycles|[Ll]atency|Lat|_lat)_?)\s*[=;,)\{])");

    for (size_t l = 0; l < src.scrub.size(); ++l) {
        std::smatch m;
        if (std::regex_search(src.scrub[l], m, declRe)) {
            out.push_back({src.rel, l + 1, kCycleType,
                           "'" + m[1].str() +
                               "' holds cycles/latency but is not "
                               "dvr::Cycle (common/types.hh)"});
        }
    }
}

// The observability namespaces are closed vocabularies: downstream
// consumers (docs/OBSERVABILITY.md, the CPI-invariant tests, bench
// post-processing) key on exact component names, so a typo'd
// `cpi.l4` must fail lint rather than silently export a stat nobody
// reads. `ra_hidden_hist_` with no digit is allowed because the
// histogram index is appended via std::to_string at the call site.
std::string
observabilityNameError(const std::string &name)
{
    static const std::regex cpiRe(
        R"((core\.)?cpi\.)"
        R"((base|branch_redirect|l1|l2|l3|dram|full_rob|full_iq_lsq))");
    static const std::regex tlRe(
        R"((mem\.)?timeliness\.)"
        R"(((ra|hw)_(fully_hidden|partial|full_latency|evicted|useless))"
        R"(|ra_hidden_hist_[0-7]?))");
    static const std::regex sampleRe(
        R"(sample\.)"
        R"((windows|cpi|cpi_var|cpi_ci95|cpi_rel_ci95|insts_total)"
        R"(|insts_functional|insts_warmup|insts_measured)"
        R"(|measured_cycles|functional_mips))");

    if (name.rfind("cpi.", 0) == 0 || name.rfind("core.cpi.", 0) == 0) {
        if (!std::regex_match(name, cpiRe))
            return "stat '" + name +
                   "' is not a known core.cpi.* stack component";
    } else if (name.rfind("timeliness.", 0) == 0 ||
               name.rfind("mem.timeliness.", 0) == 0) {
        if (!std::regex_match(name, tlRe))
            return "stat '" + name +
                   "' is not a known mem.timeliness.* class";
    } else if (name.rfind("sample.", 0) == 0) {
        if (!std::regex_match(name, sampleRe))
            return "stat '" + name +
                   "' is not a known sample.* sampling stat "
                   "(tests/stats_schema.inc kSampleStatKeys)";
    }
    return "";
}

void
checkStats(const Source &src, std::vector<Finding> &out)
{
    // Raw lines: the stat name lives inside a string literal. `.add`
    // is accumulate-or-create, so only `.set` counts as registration.
    static const std::regex statRe(
        R"re(\.(set|add)\s*\(\s*"([^"]+)")re");
    static const std::regex nameRe(
        R"([a-z][a-z0-9_]*(\.[a-z0-9_]+)*)");

    std::map<std::string, size_t> firstLine;
    for (size_t l = 0; l < src.raw.size(); ++l) {
        const std::string &s = src.raw[l];
        for (auto it = std::sregex_iterator(s.begin(), s.end(), statRe);
             it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[2].str();
            if (!std::regex_match(name, nameRe)) {
                out.push_back({src.rel, l + 1, kStatName,
                               "stat '" + name +
                                   "' is not lower_snake_case"});
            } else if (const std::string ns_err =
                           observabilityNameError(name);
                       !ns_err.empty()) {
                out.push_back({src.rel, l + 1, kStatName, ns_err});
            }
            if ((*it)[1].str() != "set")
                continue;
            auto [pos, inserted] = firstLine.emplace(name, l + 1);
            if (!inserted) {
                out.push_back(
                    {src.rel, l + 1, kStatDup,
                     "stat '" + name + "' already registered at line " +
                         std::to_string(pos->second)});
            }
        }
    }
}

void
checkIncludeGuard(const Source &src, std::vector<Finding> &out)
{
    if (!isHeader(src.rel))
        return;

    // src/common/types.hh -> DVR_COMMON_TYPES_HH;
    // tools/lint/lint.hh  -> DVR_TOOLS_LINT_LINT_HH.
    std::string tail = src.rel;
    if (startsWith(tail, "src/"))
        tail = tail.substr(4);
    std::string expect = "DVR_";
    for (char c : tail) {
        expect += std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(
                            std::toupper(static_cast<unsigned char>(c)))
                      : '_';
    }

    static const std::regex ifndefRe(R"(^\s*#ifndef\s+(\w+))");
    static const std::regex defineRe(R"(^\s*#define\s+(\w+))");
    for (size_t l = 0; l < src.scrub.size(); ++l) {
        std::smatch m;
        if (!std::regex_search(src.scrub[l], m, ifndefRe))
            continue;
        if (m[1].str() != expect) {
            out.push_back({src.rel, l + 1, kIncludeGuard,
                           "guard '" + m[1].str() + "' should be '" +
                               expect + "'"});
            return;
        }
        // The matching #define must follow on the next code line.
        for (size_t d = l + 1; d < src.scrub.size(); ++d) {
            if (src.scrub[d].find_first_not_of(" \t") ==
                std::string::npos) {
                continue;
            }
            std::smatch dm;
            if (!std::regex_search(src.scrub[d], dm, defineRe) ||
                dm[1].str() != expect) {
                out.push_back({src.rel, d + 1, kIncludeGuard,
                               "#ifndef " + expect +
                                   " must be followed by its "
                                   "#define"});
            }
            return;
        }
        return;
    }
    out.push_back({src.rel, 1, kIncludeGuard,
                   "missing include guard '" + expect + "'"});
}

// ---------------------------------------------------------------------
// schema-drift: config structs <-> config_fields.def <-> schema keys.
// ---------------------------------------------------------------------

struct DefEntry
{
    std::string field;
    std::string key;        ///< "-" for composite fields with no key
    size_t line;            ///< in config_fields.def
};

struct DefStruct
{
    std::string section;    ///< e.g. "CORE" in DVR_CORE_FIELD
    std::string name;       ///< e.g. "CoreConfig"
    std::string header;     ///< root-relative path of the definition
    size_t line;
    std::vector<DefEntry> fields;
};

/** Depth-1 field declarations of `struct name { ... }` in a header. */
std::vector<std::pair<std::string, size_t>>
structFields(const std::vector<std::string> &scrub,
             const std::string &name, bool &found)
{
    const std::regex headRe("^\\s*struct\\s+" + name + "\\b(.*)$");
    static const std::regex fieldRe(
        R"(^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;>]*>)?)"
        R"((?:\s*[&*])?\s+(\w+)\s*(?:=[^;]*|\{[^;}]*\})?\s*;)");

    std::vector<std::pair<std::string, size_t>> out;
    found = false;
    int depth = 0;
    bool inBody = false;
    for (size_t l = 0; l < scrub.size(); ++l) {
        const std::string &s = scrub[l];
        std::smatch m;
        if (!inBody && !found && std::regex_search(s, m, headRe) &&
            m[1].str().find(';') == std::string::npos) {
            found = true;
            depth = 0;
        }
        if (!found || (inBody && depth == 0))
            continue;
        for (char c : s) {
            if (c == '{') {
                ++depth;
                inBody = true;
            } else if (c == '}') {
                --depth;
            }
        }
        if (!inBody)
            continue;
        if (depth == 1) {
            const std::string trimmed =
                s.substr(std::min(s.find_first_not_of(" \t"), s.size()));
            if (startsWith(trimmed, "static ") ||
                startsWith(trimmed, "using ") ||
                startsWith(trimmed, "friend ")) {
                continue;
            }
            if (std::regex_search(s, m, fieldRe))
                out.emplace_back(m[1].str(), l + 1);
        }
        if (depth == 0)
            break;      // closed the struct
    }
    return out;
}

void
checkSchemaDrift(const fs::path &root, std::vector<Finding> &out)
{
    const std::string defRel = "src/sim/config_fields.def";
    const fs::path defPath = root / defRel;
    if (!fs::exists(defPath))
        return;     // tree without a schema (e.g. a fixture root)

    const auto defRaw = readLines(defPath);
    // Comment-scrubbed so the doc header's example entry is inert; the
    // quoted macro arguments (header paths, keys) must survive.
    const auto defScrub = scrubComments(defRaw);

    static const std::regex structRe(
        R"re(DVR_CONFIG_STRUCT\(\s*(\w+)\s*,\s*(\w+)\s*,\s*"([^"]+)"\s*\))re");
    static const std::regex fieldRe(
        R"re(DVR_(\w+)_FIELD\(\s*(\w+)\s*,\s*[^,]+,\s*"([^"]+)"\s*\))re");

    std::vector<DefStruct> structs;
    for (size_t l = 0; l < defScrub.size(); ++l) {
        std::smatch m;
        if (std::regex_search(defScrub[l], m, structRe))
            structs.push_back({m[1].str(), m[2].str(), m[3].str(),
                               l + 1, {}});
    }
    for (size_t l = 0; l < defScrub.size(); ++l) {
        std::smatch m;
        if (!std::regex_search(defScrub[l], m, fieldRe))
            continue;
        bool known = false;
        for (DefStruct &ds : structs) {
            if (ds.section == m[1].str()) {
                ds.fields.push_back({m[2].str(), m[3].str(), l + 1});
                known = true;
            }
        }
        if (!known) {
            out.push_back({defRel, l + 1, kSchemaDrift,
                           "DVR_" + m[1].str() +
                               "_FIELD has no DVR_CONFIG_STRUCT "
                               "declaring its section"});
        }
    }

    // Keys registered in config_schema.cc: every string literal.
    std::set<std::string> schemaKeys;
    const std::string schemaRel = "src/sim/config_schema.cc";
    const fs::path schemaPath = root / schemaRel;
    const bool haveSchema = fs::exists(schemaPath);
    if (haveSchema) {
        static const std::regex litRe(R"re("((?:[^"\\]|\\.)*)")re");
        // Comment-scrubbed: a key mentioned in a comment is not
        // registered.
        for (const std::string &line :
             scrubComments(readLines(schemaPath))) {
            for (auto it = std::sregex_iterator(line.begin(),
                                                line.end(), litRe);
                 it != std::sregex_iterator(); ++it) {
                schemaKeys.insert((*it)[1].str());
            }
        }
    }

    for (const DefStruct &ds : structs) {
        const fs::path hdr = root / ds.header;
        if (!fs::exists(hdr)) {
            out.push_back({defRel, ds.line, kSchemaDrift,
                           "header '" + ds.header + "' for struct " +
                               ds.name + " not found"});
            continue;
        }
        const auto scrub = scrubSource(readLines(hdr));
        bool found = false;
        const auto fields = structFields(scrub, ds.name, found);
        if (!found) {
            out.push_back({defRel, ds.line, kSchemaDrift,
                           "struct " + ds.name + " not found in " +
                               ds.header});
            continue;
        }
        for (const auto &[fname, fline] : fields) {
            const bool listed = std::any_of(
                ds.fields.begin(), ds.fields.end(),
                [&](const DefEntry &e) { return e.field == fname; });
            if (!listed) {
                out.push_back(
                    {ds.header, fline, kSchemaDrift,
                     ds.name + "::" + fname +
                         " is not listed in config_fields.def (add a "
                         "DVR_" +
                         ds.section + "_FIELD entry and a schema key)"});
            }
        }
        for (const DefEntry &e : ds.fields) {
            const bool present = std::any_of(
                fields.begin(), fields.end(),
                [&](const auto &f) { return f.first == e.field; });
            if (!present) {
                out.push_back({defRel, e.line, kSchemaDrift,
                               "stale entry: " + ds.name +
                                   " has no field '" + e.field + "'"});
            }
            if (haveSchema && e.key != "-" &&
                schemaKeys.count(e.key) == 0) {
                out.push_back({defRel, e.line, kSchemaDrift,
                               "key \"" + e.key +
                                   "\" is not registered in "
                                   "config_schema.cc"});
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tree walking and the driver.
// ---------------------------------------------------------------------

bool
lintable(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

bool
skippedDir(const std::string &name)
{
    return name == "lint_fixtures" || startsWith(name, "build") ||
           name == ".git";
}

std::vector<std::string>
walkTree(const fs::path &root)
{
    std::vector<std::string> files;
    for (const char *top : {"src", "tools", "bench", "tests"}) {
        const fs::path dir = root / top;
        if (!fs::is_directory(dir))
            continue;
        for (auto it = fs::recursive_directory_iterator(dir);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                skippedDir(it->path().filename().string())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path()))
                files.push_back(
                    fs::relative(it->path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

std::string
Finding::toString() const
{
    return file + ":" + std::to_string(line) + ": [" + rule + "] " +
           message;
}

const std::vector<RuleInfo> &
rules()
{
    return kRules;
}

bool
isRule(const std::string &id)
{
    return std::any_of(kRules.begin(), kRules.end(),
                       [&](const RuleInfo &r) { return id == r.id; });
}

std::vector<Finding>
runLint(const Options &opts)
{
    const fs::path root = opts.root;
    std::vector<std::string> files =
        opts.files.empty() ? walkTree(root) : opts.files;

    std::vector<Finding> found;
    std::map<std::string, std::vector<std::string>> rawByFile;

    for (const std::string &rel : files) {
        Source src;
        src.rel = rel;
        src.raw = readLines(root / rel);
        src.scrub = scrubSource(src.raw);
        rawByFile[rel] = src.raw;

        checkBannedTokens(src, found);
        checkCycleType(src, found);
        checkStats(src, found);
        checkIncludeGuard(src, found);

        // Waivers naming a rule that does not exist are themselves
        // findings: a typo'd waiver must not silently suppress nothing.
        for (size_t l = 0; l < src.raw.size(); ++l) {
            for (const std::string &id : waiversOn(src.raw[l])) {
                if (!isRule(id)) {
                    found.push_back({rel, l + 1, kBadWaiver,
                                     "waiver names unknown rule '" +
                                         id + "'"});
                }
            }
        }
    }

    checkSchemaDrift(root, found);

    // Apply waivers (line or line-above) to every finding.
    std::vector<Finding> out;
    for (const Finding &f : found) {
        auto it = rawByFile.find(f.file);
        if (it == rawByFile.end()) {
            it = rawByFile.emplace(f.file, readLines(root / f.file))
                     .first;
        }
        if (!waived(it->second, f.line, f.rule))
            out.push_back(f);
    }

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return out;
}

} // namespace dvr::lint
