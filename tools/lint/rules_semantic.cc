#include "semantic.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

namespace fs = std::filesystem;

namespace dvr::lint {

namespace {

// Rule ids (must match the registry in lint.cc).
constexpr const char *kUnorderedIter = "unordered-iteration";
constexpr const char *kWallClock = "wall-clock";
constexpr const char *kPointerKey = "pointer-key";
constexpr const char *kGuardedBy = "guarded-by";
constexpr const char *kRelaxedAtomic = "relaxed-atomic";
constexpr const char *kHotAlloc = "hot-alloc";
constexpr const char *kStatSchema = "stat-schema";

bool
startsWith(const std::string &s, const std::string &pfx)
{
    return s.rfind(pfx, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &sfx)
{
    return s.size() >= sfx.size() &&
           s.compare(s.size() - sfx.size(), sfx.size(), sfx) == 0;
}

// ---------------------------------------------------------------------
// wall-clock: host-time reads are nondeterministic inputs. Only the
// wall-clock reporting layer (bench/) and the thread-pool plumbing
// (src/sim/runner.cc) may read them freely; anything else needs a
// justified waiver so timing diagnostics never leak into results.
// ---------------------------------------------------------------------

void
checkWallClock(const FileIndex &fi, std::vector<Finding> &out)
{
    if (startsWith(fi.rel, "bench/") || fi.rel == "src/sim/runner.cc")
        return;

    static const std::set<std::string> kClockTypes = {
        "system_clock", "steady_clock", "high_resolution_clock",
    };
    static const std::set<std::string> kClockCalls = {
        "time",         "clock",    "gettimeofday",
        "clock_gettime", "localtime", "gmtime",
    };
    for (size_t i = 0; i < fi.code.size(); ++i) {
        const Token &t = fi.code[i];
        if (t.kind != Tok::kIdent)
            continue;
        const bool clockType = kClockTypes.count(t.text) != 0;
        const bool clockCall =
            kClockCalls.count(t.text) != 0 && i + 1 < fi.code.size() &&
            fi.code[i + 1].kind == Tok::kPunct &&
            fi.code[i + 1].text == "(" &&
            // `x.time()` member calls are not <ctime>.
            !(i >= 1 && fi.code[i - 1].kind == Tok::kPunct &&
              (fi.code[i - 1].text == "." ||
               fi.code[i - 1].text == "->"));
        if (!clockType && !clockCall)
            continue;
        out.push_back({fi.rel, t.line, kWallClock,
                       "'" + t.text +
                           "' reads host time outside bench/ and "
                           "runner.cc; wall-clock input breaks run "
                           "determinism (waive for diagnostics-only "
                           "use)"});
    }
}

// ---------------------------------------------------------------------
// relaxed-atomic: memory_order_relaxed gives no ordering at all, so
// it is restricted to the audited monotonic stat counters. Everything
// else must use a stronger order or carry a waiver.
// ---------------------------------------------------------------------

void
checkRelaxedAtomic(const FileIndex &fi, std::vector<Finding> &out)
{
    // The audited whitelist: process-wide relaxed counters whose only
    // consumer tolerates racy reads (CowMemStats, StatSet strict
    // flag, the trace-mask hot-path gate, the arena's process-wide
    // allocation accounting).
    static const std::set<std::string> kWhitelist = {
        "src/mem/sim_memory.cc",
        "src/common/stats.cc",
        "src/common/arena.cc",
        "src/sim/trace.cc",
        "src/sim/trace.hh",
    };
    if (kWhitelist.count(fi.rel) != 0)
        return;
    for (const Token &t : fi.code) {
        if (t.kind == Tok::kIdent && t.text == "memory_order_relaxed") {
            out.push_back(
                {fi.rel, t.line, kRelaxedAtomic,
                 "memory_order_relaxed outside the audited "
                 "stat-counter whitelist; use acquire/release or "
                 "seq_cst, or waive with the racy-reader argument"});
        }
    }
}

// ---------------------------------------------------------------------
// pointer-key: a map/set keyed by pointer iterates in allocation-
// address order, which differs run to run. Any downstream consumer
// of that order (stats, traces, output, even tie-breaks) goes
// nondeterministic silently.
// ---------------------------------------------------------------------

void
pointerKeyFinding(const FileIndex &fi, const std::string &name,
                  const std::string &keyType, uint32_t line,
                  std::vector<Finding> &out)
{
    if (!endsWith(keyType, "*"))
        return;
    out.push_back({fi.rel, line, kPointerKey,
                   "'" + name + "' is keyed by pointer (" + keyType +
                       "); iteration order follows allocation "
                       "addresses and is not reproducible — key by a "
                       "stable id instead"});
}

void
checkPointerKey(const FileIndex &fi, std::vector<Finding> &out)
{
    for (const MemberDecl &m : fi.members)
        pointerKeyFinding(fi, m.name, m.keyType, m.line, out);
    for (const ContainerVar &v : fi.fileScope)
        pointerKeyFinding(fi, v.name, v.keyType, v.line, out);
    for (const FunctionDef &fn : fi.functions) {
        for (const ContainerVar &v : fn.locals)
            pointerKeyFinding(fi, v.name, v.keyType, v.line, out);
    }
}

// ---------------------------------------------------------------------
// guarded-by: `// dvr-guarded-by(<mutex>)` on a member is a checked
// contract — every use site in a member function must hold a lock of
// the named mutex (ctors/dtors are exempt: no concurrent access
// before/after the object's lifetime).
// ---------------------------------------------------------------------

void
checkGuardedBy(const ProjectIndex &pi, std::vector<Finding> &out)
{
    // class -> annotated members.
    std::map<std::string, std::vector<const MemberDecl *>> guarded;
    for (const FileIndex &fi : pi.files) {
        for (const MemberDecl &m : fi.members) {
            if (!m.guardedBy.empty())
                guarded[m.cls].push_back(&m);
        }
    }
    if (guarded.empty())
        return;

    for (const FileIndex &fi : pi.files) {
        for (const FunctionDef &fn : fi.functions) {
            if (fn.cls.empty() || fn.ctorDtor)
                continue;
            auto it = guarded.find(fn.cls);
            if (it == guarded.end())
                continue;
            const std::set<std::string> locks(fn.locks.begin(),
                                              fn.locks.end());
            for (const MemberDecl *m : it->second) {
                if (locks.count(m->guardedBy) != 0)
                    continue;
                // Scan the body for bare uses of the member.
                for (size_t k = fn.tokBegin;
                     k < fn.tokEnd && k < fi.code.size(); ++k) {
                    const Token &t = fi.code[k];
                    if (t.kind != Tok::kIdent || t.text != m->name)
                        continue;
                    if (k > fn.tokBegin &&
                        fi.code[k - 1].kind == Tok::kPunct) {
                        const std::string &p = fi.code[k - 1].text;
                        const bool viaThis =
                            k >= 2 &&
                            fi.code[k - 2].text == "this";
                        if ((p == "." || p == "->" || p == "::") &&
                            !viaThis) {
                            continue;   // someone else's member
                        }
                    }
                    out.push_back(
                        {fi.rel, t.line, kGuardedBy,
                         fn.qual() + " uses '" + m->name +
                             "' without holding '" + m->guardedBy +
                             "' (declared dvr-guarded-by at " +
                             m->cls + ")"});
                    break;  // one finding per (function, member)
                }
            }
        }
    }

    // File-scope state (e.g. the trace ring) has internal visibility,
    // so the contract binds every function defined in the same file —
    // member or free, since both can see the variable.
    for (const FileIndex &fi : pi.files) {
        if (fi.fileGuarded.empty())
            continue;
        for (const FunctionDef &fn : fi.functions) {
            const std::set<std::string> locks(fn.locks.begin(),
                                              fn.locks.end());
            for (const MemberDecl &m : fi.fileGuarded) {
                if (locks.count(m.guardedBy) != 0)
                    continue;
                for (size_t k = fn.tokBegin;
                     k < fn.tokEnd && k < fi.code.size(); ++k) {
                    const Token &t = fi.code[k];
                    if (t.kind != Tok::kIdent || t.text != m.name)
                        continue;
                    if (k > fn.tokBegin &&
                        fi.code[k - 1].kind == Tok::kPunct) {
                        const std::string &p = fi.code[k - 1].text;
                        if (p == "." || p == "->" || p == "::")
                            continue;   // someone else's member
                    }
                    out.push_back(
                        {fi.rel, t.line, kGuardedBy,
                         fn.qual() + " uses '" + m.name +
                             "' without holding '" + m.guardedBy +
                             "' (declared dvr-guarded-by at file "
                             "scope)"});
                    break;  // one finding per (function, variable)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// hot-alloc: nothing reachable from the per-cycle roots may allocate.
// The roots are the detailed core's cycle loop, the memory system's
// access/prefetch tick paths, and the functional core's dispatch
// loop, plus anything annotated `// dvr-hot-path`.
// ---------------------------------------------------------------------

const std::set<std::string> kHotRoots = {
    "OooCore::run",
    "OooCore::resumeWarm",
    "MemorySystem::access",
    "MemorySystem::prefetchLine",
    "FunctionalCore::run",
};

/** True when the statement around code[tok] is an error path. */
bool
onErrorPath(const FileIndex &fi, const FunctionDef &fn, size_t tok)
{
    static const std::set<std::string> kErr = {
        "fatal", "panic", "panicIf", "throw", "unreachable", "abort",
        "assert", "what",
    };
    size_t b = tok;
    while (b > fn.tokBegin) {
        const Token &t = fi.code[b - 1];
        if (t.kind == Tok::kPunct &&
            (t.text == ";" || t.text == "{" || t.text == "}")) {
            break;
        }
        --b;
    }
    for (size_t k = b; k < fi.code.size() && k < fn.tokEnd; ++k) {
        const Token &t = fi.code[k];
        if (t.kind == Tok::kPunct && t.text == ";" && k > tok)
            break;
        if (t.kind == Tok::kIdent && kErr.count(t.text) != 0)
            return true;
    }
    return false;
}

std::string
chainTo(const ProjectIndex &pi, const std::map<size_t, size_t> &via,
        size_t id)
{
    std::vector<std::string> names;
    size_t cur = id;
    for (int hops = 0; hops < 8; ++hops) {
        names.push_back(pi.fn(cur).qual());
        const size_t parent = via.at(cur);
        if (parent == cur)
            break;
        cur = parent;
    }
    std::string s;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
        if (!s.empty())
            s += " -> ";
        s += *it;
    }
    return s;
}

void
checkHotAlloc(const ProjectIndex &pi, std::vector<Finding> &out)
{
    std::vector<size_t> roots;
    for (size_t id = 0; id < pi.fns.size(); ++id) {
        const FunctionDef &fn = pi.fn(id);
        if (fn.hotPathRoot || kHotRoots.count(fn.qual()) != 0)
            roots.push_back(id);
    }
    if (roots.empty())
        return;
    const auto via = pi.reachableFrom(roots);
    for (const auto &[id, parent] : via) {
        (void)parent;
        const FunctionDef &fn = pi.fn(id);
        if (!startsWith(fn.file, "src/"))
            continue;   // only simulator code is cycle-critical
        // The per-thread bump arena IS the sanctioned hot-path
        // allocator: its out-of-block growth reaches the heap, but
        // blocks are recycled across runs so that path amortizes to
        // zero per sweep point.
        if (fn.cls == "Arena")
            continue;
        const FileIndex &fi = pi.files[pi.fns[id].file];
        for (const AllocSite &a : fn.allocs) {
            if (onErrorPath(fi, fn, a.tok))
                continue;
            out.push_back(
                {fn.file, a.line, kHotAlloc,
                 "allocating construct (" + a.what +
                     ") on a per-cycle path: " +
                     chainTo(pi, via, id) +
                     " — grab the storage up front from "
                     "Arena::forCurrentThread(), hoist it out of the "
                     "cycle loop, or waive with a rate argument"});
        }
    }
}

// ---------------------------------------------------------------------
// unordered-iteration: iterating a hash container yields a
// nondeterministic element order; if that order can reach stats,
// traces, or printed output, figures stop being reproducible.
// ---------------------------------------------------------------------

bool
touchesSink(const FunctionDef &fn)
{
    return fn.statTouch || fn.traceTouch || fn.outputTouch;
}

void
checkUnorderedIteration(const ProjectIndex &pi,
                        std::vector<Finding> &out)
{
    // class -> unordered members, file -> unordered globals.
    std::map<std::string, std::set<std::string>> unorderedMembers;
    std::map<std::string, std::set<std::string>> unorderedGlobals;
    for (const FileIndex &fi : pi.files) {
        for (const MemberDecl &m : fi.members) {
            if (m.unordered)
                unorderedMembers[m.cls].insert(m.name);
        }
        for (const ContainerVar &v : fi.fileScope) {
            if (v.unordered)
                unorderedGlobals[fi.rel].insert(v.name);
        }
    }

    for (size_t id = 0; id < pi.fns.size(); ++id) {
        const FunctionDef &fn = pi.fn(id);
        if (fn.rangeFors.empty())
            continue;
        std::vector<const IterSite *> unorderedIters;
        for (const IterSite &is : fn.rangeFors) {
            bool unordered = false;
            for (const ContainerVar &v : fn.locals) {
                if (v.name == is.container && v.unordered)
                    unordered = true;
            }
            if (auto it = unorderedMembers.find(fn.cls);
                it != unorderedMembers.end() &&
                it->second.count(is.container) != 0) {
                unordered = true;
            }
            if (auto it = unorderedGlobals.find(fn.file);
                it != unorderedGlobals.end() &&
                it->second.count(is.container) != 0) {
                unordered = true;
            }
            if (unordered)
                unorderedIters.push_back(&is);
        }
        if (unorderedIters.empty())
            continue;
        // Does anything downstream of this function feed a sink?
        const auto via = pi.reachableFrom({id});
        bool feeds = false;
        for (const auto &[reached, parent] : via) {
            (void)parent;
            if (touchesSink(pi.fn(reached))) {
                feeds = true;
                break;
            }
        }
        if (!feeds)
            continue;
        for (const IterSite *is : unorderedIters) {
            out.push_back(
                {fn.file, is->line, kUnorderedIter,
                 fn.qual() + " iterates unordered container '" +
                     is->container +
                     "' on a path that feeds stats/trace/output; "
                     "iterate a sorted copy or switch containers"});
        }
    }
}

// ---------------------------------------------------------------------
// stat-schema: whole-program closure between the stat names
// registered in src/ and the checked-in schema
// (tests/stats_schema.inc). Names ending in '_' are dynamic-suffix
// families (histograms) and match by prefix.
// ---------------------------------------------------------------------

struct SchemaInc
{
    bool present = false;
    /** array name -> (literal, 1-based line). */
    std::map<std::string, std::vector<std::pair<std::string, uint32_t>>>
        arrays;
};

SchemaInc
readSchemaInc(const std::string &root)
{
    SchemaInc inc;
    const fs::path path =
        fs::path(root) / "tests" / "stats_schema.inc";
    std::ifstream in(path);
    if (!in)
        return inc;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    inc.present = true;
    const TokenizedFile tf = tokenizeFile(lines);
    std::string current;
    for (const Token &t : tf.tokens) {
        if (t.kind == Tok::kIdent && startsWith(t.text, "k") &&
            t.text.size() > 1) {
            current = t.text;
        } else if (t.kind == Tok::kPunct && t.text == ";") {
            current.clear();
        } else if (t.kind == Tok::kString && !current.empty()) {
            inc.arrays[current].emplace_back(t.text, t.line);
        }
    }
    return inc;
}

/** Registered literal stat names in src/: name -> first site. */
std::map<std::string, std::pair<std::string, uint32_t>>
registeredStats(const ProjectIndex &pi)
{
    std::map<std::string, std::pair<std::string, uint32_t>> regs;
    for (const FileIndex &fi : pi.files) {
        if (!startsWith(fi.rel, "src/"))
            continue;
        for (size_t i = 2; i < fi.code.size(); ++i) {
            // obj.set("name"  /  obj->add("name"
            if (fi.code[i].kind != Tok::kString)
                continue;
            if (!(fi.code[i - 1].kind == Tok::kPunct &&
                  fi.code[i - 1].text == "(")) {
                continue;
            }
            const Token &callee = fi.code[i - 2];
            if (callee.kind != Tok::kIdent ||
                (callee.text != "set" && callee.text != "add")) {
                continue;
            }
            if (i < 3 || fi.code[i - 3].kind != Tok::kPunct ||
                (fi.code[i - 3].text != "." &&
                 fi.code[i - 3].text != "->")) {
                continue;
            }
            regs.emplace(fi.code[i].text,
                         std::make_pair(fi.rel, fi.code[i].line));
        }
    }
    return regs;
}

bool
coveredBy(const std::string &name,
          const std::set<std::string> &registry)
{
    if (registry.count(name) != 0)
        return true;
    // Dynamic-suffix families: "x_hist_" covers "x_hist_3".
    for (const std::string &r : registry) {
        if (endsWith(r, "_") && startsWith(name, r))
            return true;
    }
    return false;
}

void
checkStatSchema(const ProjectIndex &pi, const std::string &root,
                std::vector<Finding> &out)
{
    const SchemaInc inc = readSchemaInc(root);
    if (!inc.present)
        return;     // tree without a schema (e.g. a fixture root)
    const std::string incRel = "tests/stats_schema.inc";

    auto it = inc.arrays.find("kRegisteredStatNames");
    const std::vector<std::pair<std::string, uint32_t>> empty;
    const auto &registryList =
        it == inc.arrays.end() ? empty : it->second;
    std::set<std::string> registry;
    for (const auto &[name, line] : registryList) {
        (void)line;
        registry.insert(name);
    }

    const auto regs = registeredStats(pi);
    std::set<std::string> regNames;
    for (const auto &[name, site] : regs) {
        (void)site;
        regNames.insert(name);
    }

    // (a) Everything registered in src/ is in the schema registry.
    for (const auto &[name, site] : regs) {
        if (!coveredBy(name, registry)) {
            out.push_back(
                {site.first, site.second, kStatSchema,
                 "stat '" + name + "' is registered but missing "
                 "from tests/stats_schema.inc kRegisteredStatNames"});
        }
    }
    // (b) Every registry entry corresponds to a live registration.
    for (const auto &[name, line] : registryList) {
        const bool live =
            regNames.count(name) != 0 ||
            (endsWith(name, "_") &&
             std::any_of(regNames.begin(), regNames.end(),
                         [&](const std::string &r) {
                             return startsWith(r, name) || r == name;
                         }));
        if (!live) {
            out.push_back({incRel, line, kStatSchema,
                           "stale kRegisteredStatNames entry '" +
                               name +
                               "': nothing in src/ registers it"});
        }
    }
    // (c) Required/sample keys name stats something actually exports.
    for (const char *arr : {"kRequiredStatKeys", "kSampleStatKeys"}) {
        auto ai = inc.arrays.find(arr);
        if (ai == inc.arrays.end())
            continue;
        for (const auto &[key, line] : ai->second) {
            std::string suffix = key;
            for (const char *pfx :
                 {"core.", "mem.", "bpred.", "sample."}) {
                if (startsWith(key, pfx)) {
                    suffix = key.substr(
                        std::char_traits<char>::length(pfx));
                    break;
                }
            }
            if (!coveredBy(suffix, regNames)) {
                out.push_back({incRel, line, kStatSchema,
                               "schema key '" + key +
                                   "' matches no registered stat "
                                   "name in src/"});
            }
        }
    }
}

} // namespace

void
checkFileSemantics(const FileIndex &fi, std::vector<Finding> &out)
{
    checkWallClock(fi, out);
    checkRelaxedAtomic(fi, out);
    checkPointerKey(fi, out);
}

void
checkProjectSemantics(const ProjectIndex &pi, const std::string &root,
                      std::vector<Finding> &out)
{
    checkGuardedBy(pi, out);
    checkHotAlloc(pi, out);
    checkUnorderedIteration(pi, out);
    checkStatSchema(pi, root, out);
}

} // namespace dvr::lint
