/**
 * @file
 * dvr-lint command-line driver.
 *
 *     dvr-lint [--root DIR] [--compile-commands FILE] [--jobs N]
 *              [--format text|json] [--baseline FILE] [--no-baseline]
 *              [--write-baseline] [--list-rules] [FILE...]
 *
 * FILEs are root-relative; with none given the whole tree is walked.
 * With --compile-commands, the translation units listed in the
 * compilation database are linted (plus every header the tree walk
 * finds), so the lint set tracks what actually builds.
 *
 * The ratchet: findings listed in the baseline (default
 * <root>/tools/lint/baseline.json when it exists) are pre-existing
 * debt and pass; new findings fail; baseline entries whose finding
 * has been fixed fail as stale until removed. --write-baseline
 * regenerates the file from the current findings (shrinking it only,
 * in spirit — review additions). --no-baseline reports everything.
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;

namespace {

/** Pull the "file" entries out of a compile_commands.json. */
std::vector<std::string>
compileCommandFiles(const std::string &path, const std::string &root)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("dvr-lint: cannot read " + path);
    std::ostringstream text;
    text << in.rdbuf();

    static const std::regex fileRe(R"re("file"\s*:\s*"([^"]+)")re");
    std::set<std::string> rels;
    const std::string s = text.str();
    for (auto it = std::sregex_iterator(s.begin(), s.end(), fileRe);
         it != std::sregex_iterator(); ++it) {
        const fs::path p((*it)[1].str());
        std::error_code ec;
        const fs::path rel = fs::relative(p, root, ec);
        if (ec || rel.empty() || rel.generic_string().rfind("..", 0) == 0)
            continue;       // outside the tree (system TU)
        rels.insert(rel.generic_string());
    }
    return {rels.begin(), rels.end()};
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--compile-commands FILE] "
                 "[--jobs N] [--format text|json] [--baseline FILE] "
                 "[--no-baseline] [--write-baseline] [--list-rules] "
                 "[FILE...]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    dvr::lint::Options opts;
    std::string compileCommands;
    std::string baseline;
    bool noBaseline = false;
    bool writeBaseline = false;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *opt) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "dvr-lint: %s needs a value\n",
                             opt);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--root") {
            opts.root = value("--root");
        } else if (a == "--compile-commands") {
            compileCommands = value("--compile-commands");
        } else if (a == "--jobs") {
            opts.jobs = unsigned(std::strtoul(
                value("--jobs").c_str(), nullptr, 10));
        } else if (a == "--format") {
            const std::string f = value("--format");
            if (f == "json") {
                json = true;
            } else if (f != "text") {
                std::fprintf(stderr,
                             "dvr-lint: unknown format '%s'\n",
                             f.c_str());
                return 2;
            }
        } else if (a.rfind("--format=", 0) == 0) {
            const std::string f = a.substr(9);
            if (f == "json") {
                json = true;
            } else if (f != "text") {
                std::fprintf(stderr,
                             "dvr-lint: unknown format '%s'\n",
                             f.c_str());
                return 2;
            }
        } else if (a == "--baseline") {
            baseline = value("--baseline");
        } else if (a == "--no-baseline") {
            noBaseline = true;
        } else if (a == "--write-baseline") {
            writeBaseline = true;
        } else if (a == "--list-rules") {
            for (const auto &r : dvr::lint::rules())
                std::printf("%-24s %s\n", r.id, r.describe);
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            return usage(argv[0]);
        } else {
            opts.files.push_back(a);
        }
    }

    try {
        if (!compileCommands.empty()) {
            // The database only lists translation units; pass headers
            // explicitly (or use the default walk) to lint them too.
            auto fromDb =
                compileCommandFiles(compileCommands, opts.root);
            opts.files.insert(opts.files.end(), fromDb.begin(),
                              fromDb.end());
            std::sort(opts.files.begin(), opts.files.end());
            opts.files.erase(std::unique(opts.files.begin(),
                                         opts.files.end()),
                             opts.files.end());
        }

        // Default ratchet file: tools/lint/baseline.json under the
        // root, when present.
        if (baseline.empty() && !noBaseline) {
            const fs::path def =
                fs::path(opts.root) / "tools" / "lint" /
                "baseline.json";
            if (fs::exists(def))
                baseline = def.string();
        }
        if (!noBaseline && !writeBaseline)
            opts.baselinePath = baseline;

        const auto findings = dvr::lint::runLint(opts);

        if (writeBaseline) {
            const std::string path =
                !baseline.empty()
                    ? baseline
                    : (fs::path(opts.root) / "tools" / "lint" /
                       "baseline.json")
                          .string();
            std::ofstream out(path);
            if (!out) {
                std::fprintf(stderr, "dvr-lint: cannot write %s\n",
                             path.c_str());
                return 2;
            }
            out << dvr::lint::baselineJson(findings);
            std::fprintf(stderr,
                         "dvr-lint: wrote %zu baseline entr%s to %s\n",
                         findings.size(),
                         findings.size() == 1 ? "y" : "ies",
                         path.c_str());
            return 0;
        }

        if (json) {
            std::fputs(dvr::lint::toJson(findings).c_str(), stdout);
        } else {
            for (const auto &f : findings)
                std::printf("%s\n", f.toString().c_str());
        }
        if (!findings.empty()) {
            std::fprintf(stderr,
                         "dvr-lint: %zu finding%s (waive with "
                         "// dvr-lint: allow(<rule>), or baseline "
                         "pre-existing debt)\n",
                         findings.size(),
                         findings.size() == 1 ? "" : "s");
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
