/**
 * @file
 * dvr-lint's semantic rule families, built on the project index:
 *
 *  - determinism: unordered-iteration (iterating an unordered
 *    container on a path that feeds stats/trace/output), wall-clock
 *    (host-time reads outside bench/ and runner.cc), pointer-key
 *    (associative containers keyed by pointers iterate in address
 *    order),
 *  - concurrency: guarded-by (`// dvr-guarded-by(<mutex>)` members
 *    must be used under a lock of that mutex), relaxed-atomic
 *    (memory_order_relaxed only in the audited stat-counter files),
 *  - hot-path allocation: hot-alloc (call-graph reachability from
 *    the per-cycle roots to allocating constructs),
 *  - schema closure: stat-schema (registered stat names and
 *    tests/stats_schema.inc agree whole-program).
 *
 * File-local rules run per file (parallelizable); the cross-file
 * rules run once over the merged ProjectIndex.
 */

#ifndef DVR_TOOLS_LINT_SEMANTIC_HH
#define DVR_TOOLS_LINT_SEMANTIC_HH

#include <string>
#include <vector>

#include "index.hh"
#include "lint.hh"

namespace dvr::lint {

/** Rules needing only one file: wall-clock, relaxed-atomic,
 *  pointer-key. */
void checkFileSemantics(const FileIndex &fi,
                        std::vector<Finding> &out);

/** Cross-file rules: guarded-by, hot-alloc, unordered-iteration,
 *  stat-schema. `root` locates tests/stats_schema.inc. */
void checkProjectSemantics(const ProjectIndex &pi,
                           const std::string &root,
                           std::vector<Finding> &out);

} // namespace dvr::lint

#endif // DVR_TOOLS_LINT_SEMANTIC_HH
