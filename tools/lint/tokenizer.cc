#include "tokenizer.hh"

#include <cctype>

namespace dvr::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when the line's last non-padding character is a backslash. */
bool
continuesNextLine(const std::string &line)
{
    return !line.empty() && line.back() == '\\';
}

/**
 * Multi-character operators the parser cares about. Longest match
 * first; everything else is emitted one character at a time. `>>` is
 * deliberately split into two `>` so nested template argument lists
 * close one level per token.
 */
const char *const kMultiPunct[] = {
    "->*", "...", "::", "->", "<<=", ">>=", "<<", "+=", "-=", "*=",
    "/=",  "%=",  "&=", "|=", "^=",  "==",  "!=", "<=", ">=", "&&",
    "||",  "++",  "--",
};

} // namespace

TokenizedFile
tokenizeFile(const std::vector<std::string> &lines)
{
    TokenizedFile out;
    out.scrub.reserve(lines.size());
    out.scrubKeepStrings.reserve(lines.size());

    enum class St {
        kCode,
        kBlockComment,
        kLineComment,   ///< backslash-continued // comment
        kRawString,
    };
    St st = St::kCode;
    std::string rawEnd;     // ")delim\"" terminator of a raw string
    std::string rawText;    // accumulated raw-string content
    uint32_t rawLine = 0, rawCol = 0;

    for (size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string &line = lines[ln];
        const uint32_t lno = uint32_t(ln + 1);
        std::string blank(line.size(), ' ');
        std::string keep(line.size(), ' ');
        size_t i = 0;

        if (st == St::kLineComment) {
            // The previous line's // comment ended in a backslash:
            // this whole physical line is still comment text.
            out.tokens.push_back({Tok::kComment, lno, 0, line});
            if (!continuesNextLine(line))
                st = St::kCode;
            out.scrub.push_back(std::move(blank));
            out.scrubKeepStrings.push_back(std::move(keep));
            continue;
        }

        while (i < line.size()) {
            if (st == St::kBlockComment) {
                const size_t e = line.find("*/", i);
                const size_t stop =
                    e == std::string::npos ? line.size() : e + 2;
                out.tokens.push_back({Tok::kComment, lno, uint32_t(i),
                                      line.substr(i, stop - i)});
                i = stop;
                if (e != std::string::npos)
                    st = St::kCode;
                continue;
            }
            if (st == St::kRawString) {
                const size_t e = line.find(rawEnd, i);
                const size_t stop = e == std::string::npos
                                        ? line.size()
                                        : e + rawEnd.size();
                for (size_t k = i; k < stop; ++k)
                    keep[k] = line[k];
                rawText.append(line, i,
                               (e == std::string::npos ? stop : e) - i);
                if (e == std::string::npos)
                    rawText += '\n';
                i = stop;
                if (e != std::string::npos) {
                    out.tokens.push_back({Tok::kString, rawLine, rawCol,
                                          std::move(rawText)});
                    rawText.clear();
                    st = St::kCode;
                }
                continue;
            }

            const char c = line[i];
            if (c == ' ' || c == '\t') {
                blank[i] = c;
                keep[i] = c;
                ++i;
                continue;
            }
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    out.tokens.push_back({Tok::kComment, lno,
                                          uint32_t(i), line.substr(i)});
                    if (continuesNextLine(line))
                        st = St::kLineComment;
                    i = line.size();
                    continue;
                }
                if (line[i + 1] == '*') {
                    // Search past the opener so "/*/" stays open.
                    const size_t e = line.find("*/", i + 2);
                    const size_t stop =
                        e == std::string::npos ? line.size() : e + 2;
                    out.tokens.push_back({Tok::kComment, lno,
                                          uint32_t(i),
                                          line.substr(i, stop - i)});
                    i = stop;
                    if (e == std::string::npos)
                        st = St::kBlockComment;
                    continue;
                }
            }
            if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"') {
                const size_t paren = line.find('(', i + 2);
                if (paren != std::string::npos) {
                    rawEnd = ")" + line.substr(i + 2, paren - i - 2) +
                             "\"";
                    for (size_t k = i; k <= paren; ++k)
                        keep[k] = line[k];
                    rawLine = lno;
                    rawCol = uint32_t(i);
                    rawText.clear();
                    st = St::kRawString;
                    i = paren + 1;
                    continue;
                }
            }
            if (c == '\'' && i > 0 &&
                std::isalnum(static_cast<unsigned char>(line[i - 1]))) {
                // Digit separator (1'000), not a char literal. The
                // number token already consumed it; stray case.
                blank[i] = c;
                keep[i] = c;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                const char q = c;
                const size_t start = i;
                ++i;
                while (i < line.size() && line[i] != q) {
                    if (line[i] == '\\')
                        ++i;
                    ++i;
                }
                const size_t close = i < line.size() ? i : line.size();
                if (i < line.size())
                    ++i;    // closing quote
                for (size_t k = start; k < i && k < line.size(); ++k)
                    keep[k] = line[k];
                out.tokens.push_back(
                    {q == '"' ? Tok::kString : Tok::kChar, lno,
                     uint32_t(start),
                     line.substr(start + 1,
                                 close > start + 1 ? close - start - 1
                                                   : 0)});
                continue;
            }
            if (identStart(c)) {
                const size_t start = i;
                while (i < line.size() && identChar(line[i]))
                    ++i;
                for (size_t k = start; k < i; ++k) {
                    blank[k] = line[k];
                    keep[k] = line[k];
                }
                out.tokens.push_back({Tok::kIdent, lno, uint32_t(start),
                                      line.substr(start, i - start)});
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                const size_t start = i;
                while (i < line.size() &&
                       (identChar(line[i]) || line[i] == '\'' ||
                        ((line[i] == '+' || line[i] == '-') && i > 0 &&
                         (line[i - 1] == 'e' || line[i - 1] == 'E' ||
                          line[i - 1] == 'p' || line[i - 1] == 'P')) ||
                        (line[i] == '.' && i + 1 < line.size() &&
                         std::isdigit(static_cast<unsigned char>(
                             line[i + 1]))))) {
                    ++i;
                }
                for (size_t k = start; k < i; ++k) {
                    blank[k] = line[k];
                    keep[k] = line[k];
                }
                out.tokens.push_back({Tok::kNumber, lno, uint32_t(start),
                                      line.substr(start, i - start)});
                continue;
            }
            // Punctuation: longest multi-char operator first.
            size_t len = 1;
            for (const char *op : kMultiPunct) {
                const size_t n = std::char_traits<char>::length(op);
                if (line.compare(i, n, op) == 0) {
                    len = n;
                    break;
                }
            }
            for (size_t k = i; k < i + len; ++k) {
                blank[k] = line[k];
                keep[k] = line[k];
            }
            out.tokens.push_back({Tok::kPunct, lno, uint32_t(i),
                                  line.substr(i, len)});
            i += len;
        }

        out.scrub.push_back(std::move(blank));
        out.scrubKeepStrings.push_back(std::move(keep));
    }
    return out;
}

} // namespace dvr::lint
