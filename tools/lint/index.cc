#include "index.hh"

#include <algorithm>
#include <deque>

namespace dvr::lint {

namespace {

bool
isKeywordNoCall(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",       "for",      "while",   "switch", "return",
        "sizeof",   "alignof",  "catch",   "new",    "delete",
        "decltype", "noexcept", "alignas", "assert", "case",
        "throw",    "co_await", "co_return",
    };
    return kw.count(s) != 0;
}

/** Flatten token texts into a type string ("std::map<Foo*,int>"). */
std::string
joinTokens(const std::vector<Token> &toks, size_t b, size_t e)
{
    std::string out;
    for (size_t i = b; i < e && i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == Tok::kString || t.kind == Tok::kChar)
            continue;
        if (!out.empty() && t.kind == Tok::kIdent &&
            std::isalnum(static_cast<unsigned char>(out.back()))) {
            out += ' ';
        }
        out += t.text;
    }
    return out;
}

/**
 * At toks[i] == "<": return the index one past the matching ">".
 * `>>` is two tokens, so depth bookkeeping is per-`>`.
 */
size_t
skipAngles(const std::vector<Token> &toks, size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (toks[i].kind != Tok::kPunct)
            continue;
        if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0)
                return i + 1;
        } else if (t == ";" || t == "{") {
            break;      // not a template argument list after all
        }
    }
    return i;
}

/** First template argument ("Foo*" of "map<Foo*, int>"), or "". */
std::string
firstTemplateArg(const std::vector<Token> &toks, size_t lt)
{
    if (lt >= toks.size() || toks[lt].text != "<")
        return "";
    int depth = 0;
    const size_t b = lt + 1;
    for (size_t i = lt; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (toks[i].kind != Tok::kPunct) {
            continue;
        } else if (t == "<") {
            ++depth;
        } else if (t == ">") {
            if (--depth == 0)
                return joinTokens(toks, b, i);
        } else if (t == "," && depth == 1) {
            return joinTokens(toks, b, i);
        } else if (t == ";" || t == "{") {
            break;
        }
    }
    return "";
}

/** Names whose template instantiations are associative containers. */
bool
containerName(const std::string &s, bool &unordered)
{
    if (s == "unordered_map" || s == "unordered_set" ||
        s == "unordered_multimap" || s == "unordered_multiset") {
        unordered = true;
        return true;
    }
    if (s == "map" || s == "set" || s == "multimap" ||
        s == "multiset") {
        unordered = false;
        return true;
    }
    return false;
}

struct Scope
{
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
    std::string name;       ///< class name for kClass
    int fnIndex = -1;       ///< functions[] slot for kFunction
};

/** Comment lookup: line -> concatenated comment text on that line. */
std::map<uint32_t, std::string>
commentsByLine(const TokenizedFile &tf)
{
    std::map<uint32_t, std::string> out;
    for (const Token &t : tf.tokens) {
        if (t.kind == Tok::kComment)
            out[t.line] += t.text;
    }
    return out;
}

std::string
annotationOn(const std::map<uint32_t, std::string> &comments,
             uint32_t line, const std::string &tag)
{
    for (uint32_t l : {line, line > 1 ? line - 1 : line}) {
        auto it = comments.find(l);
        if (it == comments.end())
            continue;
        const size_t p = it->second.find(tag);
        if (p == std::string::npos)
            continue;
        const size_t open = it->second.find('(', p);
        if (open == std::string::npos)
            return tag;     // tag with no argument
        const size_t close = it->second.find(')', open);
        if (close == std::string::npos)
            return tag;
        std::string arg =
            it->second.substr(open + 1, close - open - 1);
        // Trim whitespace.
        const size_t b = arg.find_first_not_of(" \t");
        const size_t e = arg.find_last_not_of(" \t");
        return b == std::string::npos
                   ? std::string()
                   : arg.substr(b, e - b + 1);
    }
    return "";
}

bool
hasAnnotation(const std::map<uint32_t, std::string> &comments,
              uint32_t line, const std::string &tag)
{
    for (uint32_t l : {line, line > 1 ? line - 1 : line}) {
        auto it = comments.find(l);
        if (it != comments.end() &&
            it->second.find(tag) != std::string::npos) {
            return true;
        }
    }
    return false;
}

class Parser
{
  public:
    Parser(const std::string &rel, const TokenizedFile &tf)
        : comments_(commentsByLine(tf))
    {
        out_.rel = rel;
        for (const Token &t : tf.tokens) {
            if (t.kind != Tok::kComment)
                out_.code.push_back(t);
        }
    }

    FileIndex run();

  private:
    const std::vector<Token> &c() const { return out_.code; }
    const std::string &txt(size_t i) const { return c()[i].text; }
    bool punct(size_t i, const char *p) const
    {
        return i < c().size() && c()[i].kind == Tok::kPunct &&
               c()[i].text == p;
    }
    bool ident(size_t i) const
    {
        return i < c().size() && c()[i].kind == Tok::kIdent;
    }

    Scope::Kind topKind() const
    {
        return scopes_.empty() ? Scope::kNamespace
                               : scopes_.back().kind;
    }
    /** Innermost enclosing class name, if the top scope is a class. */
    std::string currentClass() const
    {
        return (!scopes_.empty() &&
                scopes_.back().kind == Scope::kClass)
                   ? scopes_.back().name
                   : "";
    }
    FunctionDef *currentFn()
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (it->kind == Scope::kFunction)
                return &out_.functions[size_t(it->fnIndex)];
            if (it->kind == Scope::kClass)
                return nullptr;     // local class: leave its scope
        }
        return nullptr;
    }

    size_t matchParen(size_t open) const;
    size_t tryFunction(size_t open, FunctionDef &fn) const;
    void classMember(size_t stmtBegin, size_t semi);
    void fileVar(size_t stmtBegin, size_t semi);
    void containerDecl(size_t i, FunctionDef *fn);
    void bodyToken(size_t i, FunctionDef &fn);

    FileIndex out_;
    std::map<uint32_t, std::string> comments_;
    std::vector<Scope> scopes_;
};

size_t
Parser::matchParen(size_t open) const
{
    int depth = 0;
    for (size_t i = open; i < c().size(); ++i) {
        if (punct(i, "("))
            ++depth;
        else if (punct(i, ")") && --depth == 0)
            return i;
    }
    return c().size();
}

/**
 * toks[open] is "(" and the previous token is a plausible function
 * name at declaration scope. Returns the index of the body "{" if
 * this is a function definition, or 0 if it is not.
 */
size_t
Parser::tryFunction(size_t open, FunctionDef &fn) const
{
    const size_t nameIdx = open - 1;
    fn.name = txt(nameIdx);
    fn.line = c()[nameIdx].line;
    // Qualified name: A::name( — and ~A for destructors.
    size_t back = nameIdx;
    if (back >= 1 && punct(back - 1, "~")) {
        fn.name = "~" + fn.name;
        back -= 1;
    }
    if (back >= 2 && punct(back - 1, "::") && ident(back - 2))
        fn.cls = txt(back - 2);

    size_t i = matchParen(open);
    if (i >= c().size())
        return 0;
    ++i;
    // Trailer: cv/ref/noexcept/override/final/trailing return, until
    // the body "{", a ";"/"=" (declaration), or a ctor init list.
    while (i < c().size()) {
        if (punct(i, "{"))
            return i;
        if (punct(i, ";") || punct(i, "=") || punct(i, ",") ||
            punct(i, ")")) {
            return 0;
        }
        if (punct(i, ":")) {
            // Ctor init list: members with balanced (…) or {…}
            // initializers, then the body "{".
            ++i;
            while (i < c().size()) {
                // Skip the member path (idents, ::, template args).
                while (i < c().size() &&
                       (ident(i) || punct(i, "::"))) {
                    ++i;
                }
                if (punct(i, "<"))
                    i = skipAngles(c(), i);
                if (punct(i, "(")) {
                    i = matchParen(i) + 1;
                } else if (punct(i, "{")) {
                    int d = 0;
                    for (; i < c().size(); ++i) {
                        if (punct(i, "{"))
                            ++d;
                        else if (punct(i, "}") && --d == 0)
                            break;
                    }
                    ++i;
                } else {
                    return 0;   // not an initializer after all
                }
                if (punct(i, ",")) {
                    ++i;
                    continue;
                }
                return punct(i, "{") ? i : 0;
            }
            return 0;
        }
        if (punct(i, "(")) {
            i = matchParen(i) + 1;  // noexcept(...), attributes
            continue;
        }
        if (punct(i, "<")) {
            i = skipAngles(c(), i);
            continue;
        }
        ++i;
    }
    return 0;
}

/** A class-scope statement ending in ";" that is not a function. */
void
Parser::classMember(size_t stmtBegin, size_t semi)
{
    size_t b = stmtBegin;
    // Skip access specifiers and storage words that precede the type.
    while (b < semi && ident(b) &&
           (txt(b) == "public" || txt(b) == "private" ||
            txt(b) == "protected" || txt(b) == "mutable")) {
        ++b;
        if (punct(b, ":"))
            ++b;
    }
    if (b >= semi || !ident(b))
        return;
    const std::string &first = txt(b);
    if (first == "using" || first == "static" || first == "friend" ||
        first == "typedef" || first == "enum" || first == "class" ||
        first == "struct" || first == "template" ||
        first == "static_assert" || first == "operator" ||
        first == "virtual" || first == "explicit") {
        return;
    }
    // A "(" at angle-depth 0 means a method declaration, not a field.
    int angle = 0;
    size_t nameIdx = 0, typeEnd = semi;
    for (size_t i = b; i < semi; ++i) {
        if (c()[i].kind != Tok::kPunct) {
            if (ident(i))
                nameIdx = i;
            continue;
        }
        const std::string &p = txt(i);
        if (p == "<") {
            ++angle;
        } else if (p == ">") {
            --angle;
        } else if (p == "(" && angle == 0) {
            return;
        } else if ((p == "=" || p == "{" || p == "[") && angle == 0) {
            typeEnd = i;
            break;
        }
    }
    // The field name is the last identifier before the initializer.
    nameIdx = 0;
    for (size_t i = b; i < typeEnd; ++i) {
        if (ident(i))
            nameIdx = i;
    }
    if (nameIdx == 0 || nameIdx == b)
        return;     // no (type, name) pair
    MemberDecl m;
    m.cls = currentClass();
    m.name = txt(nameIdx);
    m.line = c()[nameIdx].line;
    m.typeText = joinTokens(c(), b, nameIdx);
    m.guardedBy =
        annotationOn(comments_, m.line, "dvr-guarded-by");
    for (size_t i = b; i < nameIdx; ++i) {
        bool unordered = false;
        if (ident(i) && containerName(txt(i), unordered) &&
            punct(i + 1, "<")) {
            m.unordered = unordered;
            m.ordered = !unordered;
            m.keyType = firstTemplateArg(c(), i + 1);
            break;
        }
    }
    out_.members.push_back(std::move(m));
}

/**
 * A namespace-scope statement ending in ";": record simple variable
 * declarations so call receivers like `g_binary.write(...)` resolve
 * to their declared — possibly non-project — type instead of fanning
 * out to every same-named method in the project.
 */
void
Parser::fileVar(size_t stmtBegin, size_t semi)
{
    size_t b = stmtBegin;
    while (b < semi && ident(b) &&
           (txt(b) == "static" || txt(b) == "const" ||
            txt(b) == "constexpr" || txt(b) == "inline" ||
            txt(b) == "extern" || txt(b) == "thread_local")) {
        ++b;
    }
    if (b >= semi || !ident(b))
        return;
    const std::string &first = txt(b);
    if (first == "using" || first == "typedef" || first == "enum" ||
        first == "class" || first == "struct" ||
        first == "template" || first == "friend" ||
        first == "namespace" || first == "operator" ||
        first == "return" || first == "static_assert") {
        return;
    }
    int angle = 0;
    size_t typeEnd = semi;
    for (size_t i = b; i < semi; ++i) {
        if (c()[i].kind != Tok::kPunct)
            continue;
        const std::string &p = txt(i);
        if (p == "<") {
            ++angle;
        } else if (p == ">") {
            --angle;
        } else if (p == "(" && angle == 0) {
            return;     // a function declaration, not a variable
        } else if ((p == "=" || p == "{" || p == "[") && angle == 0) {
            typeEnd = i;
            break;
        }
    }
    size_t nameIdx = 0;
    for (size_t i = b; i < typeEnd; ++i) {
        if (ident(i))
            nameIdx = i;
    }
    if (nameIdx == 0 || nameIdx == b)
        return;     // no (type, name) pair
    out_.fileVarTypes.emplace(txt(nameIdx),
                              joinTokens(c(), b, nameIdx));
    const std::string guard =
        annotationOn(comments_, c()[nameIdx].line, "dvr-guarded-by");
    if (!guard.empty()) {
        MemberDecl m;
        m.name = txt(nameIdx);
        m.line = c()[nameIdx].line;
        m.typeText = joinTokens(c(), b, nameIdx);
        m.guardedBy = guard;
        out_.fileGuarded.push_back(std::move(m));
    }
}

/** Container-typed local / file-scope variable declarations. */
void
Parser::containerDecl(size_t i, FunctionDef *fn)
{
    bool unordered = false;
    if (!ident(i) || !containerName(txt(i), unordered) ||
        !punct(i + 1, "<")) {
        return;
    }
    // Ordered map/set must be std::-qualified to avoid plain idents.
    if (!unordered &&
        !(i >= 2 && punct(i - 1, "::") && txt(i - 2) == "std")) {
        return;
    }
    const size_t after = skipAngles(c(), i + 1);
    if (!ident(after))
        return;
    // Declaration, not use: the variable name is followed by ; = { (
    if (!(punct(after + 1, ";") || punct(after + 1, "=") ||
          punct(after + 1, "{") || punct(after + 1, "("))) {
        return;
    }
    ContainerVar v;
    v.name = txt(after);
    v.line = c()[after].line;
    v.unordered = unordered;
    v.keyType = firstTemplateArg(c(), i + 1);
    if (fn)
        fn->locals.push_back(std::move(v));
    else if (currentClass().empty())
        out_.fileScope.push_back(std::move(v));
}

/** Per-token extraction inside a function body. */
void
Parser::bodyToken(size_t i, FunctionDef &fn)
{
    if (!ident(i))
        return;
    const std::string &t = txt(i);
    const uint32_t line = c()[i].line;

    // Allocating constructs.
    if (t == "new" && !(i >= 1 && punct(i - 1, "="))) {
        if (ident(i + 1) || punct(i + 1, "("))
            fn.allocs.push_back({line, i, "new"});
    } else if (t == "make_unique" || t == "make_shared") {
        fn.allocs.push_back({line, i, t});
    } else if (t == "to_string") {
        fn.allocs.push_back({line, i, "std::to_string"});
    } else if (t == "function" && i >= 2 && punct(i - 1, "::") &&
               txt(i - 2) == "std" && punct(i + 1, "<")) {
        fn.allocs.push_back({line, i, "std::function"});
    } else if (t == "string" && i >= 2 && punct(i - 1, "::") &&
               txt(i - 2) == "std" &&
               (ident(i + 1) || punct(i + 1, "(") ||
                punct(i + 1, "{"))) {
        fn.allocs.push_back({line, i, "std::string"});
    } else if (t == "append" && i >= 1 &&
               (punct(i - 1, ".") || punct(i - 1, "->")) &&
               punct(i + 1, "(")) {
        fn.allocs.push_back({line, i, ".append"});
    }

    // Locks in scope: std::lock_guard/unique_lock/scoped_lock
    // constructions and explicit .lock() calls.
    if (t == "lock_guard" || t == "unique_lock" ||
        t == "scoped_lock") {
        size_t j = i + 1;
        if (punct(j, "<"))
            j = skipAngles(c(), j);
        if (ident(j) && punct(j + 1, "(")) {
            const size_t close = matchParen(j + 1);
            for (size_t k = j + 2; k < close; ++k) {
                if (ident(k) && txt(k) != "std" &&
                    txt(k) != "mutex" && txt(k) != "this" &&
                    txt(k) != "adopt_lock" &&
                    txt(k) != "defer_lock") {
                    fn.locks.push_back(txt(k));
                }
            }
        }
    }
    if (t == "lock" && i >= 2 && punct(i - 1, ".") && ident(i - 2) &&
        punct(i + 1, "(")) {
        fn.locks.push_back(txt(i - 2));
    }

    // Range-based for: record the last identifier of the range expr.
    if (t == "for" && punct(i + 1, "(")) {
        const size_t close = matchParen(i + 1);
        int depth = 0;
        size_t colon = 0;
        for (size_t k = i + 1; k < close; ++k) {
            if (punct(k, "("))
                ++depth;
            else if (punct(k, ")"))
                --depth;
            else if (punct(k, ":") && depth == 1) {
                colon = k;
                break;
            }
        }
        if (colon != 0) {
            std::string last;
            for (size_t k = colon + 1; k < close; ++k) {
                if (ident(k))
                    last = txt(k);
            }
            if (!last.empty())
                fn.rangeFors.push_back({c()[i].line, last});
        }
    }

    // Calls.
    if (punct(i + 1, "(") && !isKeywordNoCall(t)) {
        const bool memberCall =
            i >= 1 && (punct(i - 1, ".") || punct(i - 1, "->"));
        if (i >= 2 && punct(i - 1, "::") && ident(i - 2)) {
            fn.calls.push_back(txt(i - 2) + "::" + t);
            if (txt(i - 2) == "Trace" && t == "emit")
                fn.traceTouch = true;
        } else if (memberCall && i >= 2 && ident(i - 2)) {
            // Keep the receiver: `mem_.write(...)` resolves through
            // OooCore's member table to SimMemory::write instead of
            // fanning out to every `write` in the project.
            fn.recvCalls.emplace_back(txt(i - 2), t);
        } else {
            fn.calls.push_back(t);
        }
        if (memberCall && (t == "set" || t == "add") &&
            i + 2 < c().size() && c()[i + 2].kind == Tok::kString) {
            fn.statTouch = true;
            out_.statRegs.emplace_back(txt(i + 2), c()[i + 2].line);
        }
        static const std::set<std::string> kPrinters = {
            "printf",  "fprintf", "puts",       "fputs",
            "toString", "toJson",  "toCsv",     "printTable",
        };
        if (kPrinters.count(t) != 0)
            fn.outputTouch = true;
    }

    // Stream output: "os << ..." style.
    if (punct(i + 1, "<<")) {
        static const std::set<std::string> kStreams = {
            "os", "out", "oss", "ss", "cout", "cerr", "echo",
            "stream",
        };
        if (kStreams.count(t) != 0)
            fn.outputTouch = true;
    }

    containerDecl(i, &fn);
}

FileIndex
Parser::run()
{
    // Pending context consumed by the next "{".
    enum class Pending { kNone, kNamespace, kClass, kFunction };
    Pending pending = Pending::kNone;
    std::string pendingClass;
    FunctionDef pendingFn;
    size_t stmtBegin = 0;

    for (size_t i = 0; i < c().size(); ++i) {
        const Token &tk = c()[i];

        if (tk.kind == Tok::kPunct) {
            if (tk.text == "{") {
                Scope s;
                if (pending == Pending::kNamespace) {
                    s.kind = Scope::kNamespace;
                } else if (pending == Pending::kClass) {
                    s.kind = Scope::kClass;
                    s.name = pendingClass;
                } else if (pending == Pending::kFunction) {
                    s.kind = Scope::kFunction;
                    pendingFn.tokBegin = i + 1;
                    out_.functions.push_back(pendingFn);
                    s.fnIndex = int(out_.functions.size()) - 1;
                } else {
                    s.kind = Scope::kBlock;
                }
                pending = Pending::kNone;
                scopes_.push_back(std::move(s));
                stmtBegin = i + 1;
                continue;
            }
            if (tk.text == "}") {
                if (!scopes_.empty()) {
                    if (scopes_.back().kind == Scope::kFunction) {
                        out_.functions[size_t(
                                           scopes_.back().fnIndex)]
                            .tokEnd = i;
                    }
                    scopes_.pop_back();
                }
                stmtBegin = i + 1;
                continue;
            }
            if (tk.text == ";") {
                if (topKind() == Scope::kClass && i > stmtBegin)
                    classMember(stmtBegin, i);
                else if (topKind() == Scope::kNamespace &&
                         !currentFn() && i > stmtBegin)
                    fileVar(stmtBegin, i);
                pending = Pending::kNone;   // "struct X;" fwd decl
                stmtBegin = i + 1;
                continue;
            }
        }

        // Inside a function body: extract, and also recognize nested
        // local classes (rare) by falling through to scope tracking.
        if (FunctionDef *fn = currentFn()) {
            bodyToken(i, *fn);
            continue;
        }

        if (tk.kind != Tok::kIdent) {
            continue;
        }
        if (tk.text == "namespace") {
            pending = Pending::kNamespace;
            continue;
        }
        if ((tk.text == "class" || tk.text == "struct") &&
            !(i >= 1 && ident(i - 1) && txt(i - 1) == "enum")) {
            // Last identifier before ":" / "{" is the class name.
            std::string name;
            for (size_t j = i + 1; j < c().size(); ++j) {
                if (ident(j)) {
                    name = txt(j);
                } else if (punct(j, "<")) {
                    j = skipAngles(c(), j) - 1;
                } else if (punct(j, ":") || punct(j, "{")) {
                    break;
                } else if (punct(j, ";") || punct(j, "(")) {
                    name.clear();   // fwd decl or macro arg
                    break;
                }
            }
            if (!name.empty()) {
                pending = Pending::kClass;
                pendingClass = name;
            }
            continue;
        }
        // Function definition: ident "(" at declaration scope.
        if (punct(i + 1, "(") && !isKeywordNoCall(tk.text) &&
            tk.text != "operator") {
            FunctionDef fn;
            const size_t body = tryFunction(i + 1, fn);
            if (body != 0) {
                fn.file = out_.rel;
                if (fn.cls.empty())
                    fn.cls = currentClass();
                fn.ctorDtor = fn.name == fn.cls ||
                              fn.name == "~" + fn.cls;
                fn.hotPathRoot =
                    hasAnnotation(comments_, fn.line, "dvr-hot-path");
                pending = Pending::kFunction;
                pendingFn = std::move(fn);
                i = body - 1;   // next token is the body "{"
                continue;
            }
        }
        containerDecl(i, nullptr);
    }
    return out_;
}

} // namespace

FileIndex
indexFile(const std::string &rel, const TokenizedFile &tf)
{
    return Parser(rel, tf).run();
}

ProjectIndex
buildProjectIndex(std::vector<FileIndex> files)
{
    ProjectIndex pi;
    pi.files = std::move(files);
    for (size_t f = 0; f < pi.files.size(); ++f) {
        for (size_t k = 0; k < pi.files[f].functions.size(); ++k) {
            const size_t id = pi.fns.size();
            pi.fns.push_back({f, k});
            const FunctionDef &fn = pi.files[f].functions[k];
            pi.byName[fn.name].push_back(id);
            if (!fn.cls.empty())
                pi.byQual[fn.qual()].push_back(id);
        }
    }
    // Member tables for receiver-type resolution: class -> member ->
    // declared type text, plus the set of class names with any
    // definition in the project.
    std::map<std::string, std::map<std::string, std::string>> memberTypes;
    std::set<std::string> classNames;
    for (const FileIndex &fi : pi.files) {
        for (const MemberDecl &m : fi.members) {
            memberTypes[m.cls].emplace(m.name, m.typeText);
            classNames.insert(m.cls);
        }
        for (const FunctionDef &fn : fi.functions) {
            if (!fn.cls.empty())
                classNames.insert(fn.cls);
        }
    }
    // First project-known class name appearing in a declared type
    // ("std::unique_ptr < MemorySystem >" -> "MemorySystem").
    auto classOfType = [&](const std::string &typeText) {
        std::string word;
        for (size_t i = 0; i <= typeText.size(); ++i) {
            const char ch = i < typeText.size() ? typeText[i] : ' ';
            if (std::isalnum(static_cast<unsigned char>(ch)) ||
                ch == '_') {
                word += ch;
                continue;
            }
            if (!word.empty() && classNames.count(word) != 0)
                return word;
            word.clear();
        }
        return std::string();
    };

    pi.callees.resize(pi.fns.size());
    for (size_t id = 0; id < pi.fns.size(); ++id) {
        std::set<size_t> outs;
        std::vector<std::string> resolved = pi.fn(id).calls;
        for (const auto &[recv, method] : pi.fn(id).recvCalls) {
            std::string cls;
            bool typeKnown = false;
            if (recv == "this") {
                cls = pi.fn(id).cls;
                typeKnown = !cls.empty();
            } else {
                if (!pi.fn(id).cls.empty()) {
                    auto ct = memberTypes.find(pi.fn(id).cls);
                    if (ct != memberTypes.end()) {
                        auto mt = ct->second.find(recv);
                        if (mt != ct->second.end()) {
                            cls = classOfType(mt->second);
                            typeKnown = true;
                        }
                    }
                }
                if (!typeKnown) {
                    const auto &fv =
                        pi.files[pi.fns[id].file].fileVarTypes;
                    auto vt = fv.find(recv);
                    if (vt != fv.end()) {
                        cls = classOfType(vt->second);
                        typeKnown = true;
                    }
                }
            }
            if (!cls.empty() &&
                pi.byQual.count(cls + "::" + method) != 0) {
                // Exact edge only: the receiver's type is known and
                // the method is defined on it.
                auto &ids = pi.byQual[cls + "::" + method];
                outs.insert(ids.begin(), ids.end());
            } else if (typeKnown && cls.empty()) {
                // The declared type is not a project class (a std::
                // stream, a container, ...): the call leaves the
                // project and contributes no edge.
            } else {
                resolved.push_back(method);
            }
        }
        for (const std::string &callee : resolved) {
            const size_t sep = callee.find("::");
            if (sep != std::string::npos) {
                auto it = pi.byQual.find(callee);
                if (it != pi.byQual.end()) {
                    outs.insert(it->second.begin(),
                                it->second.end());
                }
                // Also fall back to the short name so calls through
                // a base-class qualifier still reach overriders.
                auto sh = pi.byName.find(callee.substr(sep + 2));
                if (sh != pi.byName.end())
                    outs.insert(sh->second.begin(), sh->second.end());
            } else {
                auto it = pi.byName.find(callee);
                if (it != pi.byName.end()) {
                    outs.insert(it->second.begin(),
                                it->second.end());
                }
            }
        }
        outs.erase(id);     // self edges add nothing
        pi.callees[id].assign(outs.begin(), outs.end());
    }
    return pi;
}

std::map<size_t, size_t>
ProjectIndex::reachableFrom(const std::vector<size_t> &roots) const
{
    std::map<size_t, size_t> via;
    std::deque<size_t> queue;
    std::vector<size_t> sortedRoots = roots;
    std::sort(sortedRoots.begin(), sortedRoots.end());
    for (size_t r : sortedRoots) {
        if (via.emplace(r, r).second)
            queue.push_back(r);
    }
    while (!queue.empty()) {
        const size_t cur = queue.front();
        queue.pop_front();
        for (size_t next : callees[cur]) {
            if (via.emplace(next, cur).second)
                queue.push_back(next);
        }
    }
    return via;
}

} // namespace dvr::lint
