/**
 * @file
 * dvr_serve: sweep-as-a-service client and daemon.
 *
 *     dvr_serve submit --spool DIR JOB.json [--name NAME]
 *     dvr_serve start  --spool DIR [--once] [--set serve.workers=N]
 *     dvr_serve status --spool DIR
 *     dvr_serve drain  --spool DIR
 *
 * `submit` validates the job file and atomically enqueues it.
 * `start` runs the daemon: with --once it drains the current queue
 * (adopting any jobs a killed daemon left running) and exits; without
 * it, it polls until `drain` is requested and the queue is empty.
 * `status` prints the spool state and each finished job's serve
 * counters. serve.* knobs resolve exactly like simulator config:
 * --set / --config / DVR_* env.
 *
 * The hidden `--worker` mode is the daemon's fork/exec target; it is
 * not part of the CLI surface (see serve/daemon.hh).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/daemon.hh"
#include "serve/journal.hh"
#include "serve/spool.hh"
#include "sim/config_schema.hh"

using namespace dvr;
using namespace dvr::serve;

namespace {

void
usage()
{
    std::fputs(
        "usage: dvr_serve <submit|start|status|drain> --spool DIR\n"
        "  submit --spool DIR JOB.json [--name NAME]\n"
        "  start  --spool DIR [--once] [--set serve.workers=N] ...\n"
        "  status --spool DIR\n"
        "  drain  --spool DIR\n",
        stderr);
}

std::string
argValue(int argc, char **argv, const char *name)
{
    const std::string eq = std::string(name) + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
            return argv[i + 1];
        if (std::strncmp(argv[i], eq.c_str(), eq.size()) == 0)
            return argv[i] + eq.size();
    }
    return "";
}

bool
hasFlag(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

int
cmdSubmit(const Spool &spool, int argc, char **argv)
{
    std::string jobFile;
    for (int i = 2; i < argc; ++i) {
        if (argv[i][0] != '-' &&
            (i == 2 || std::strcmp(argv[i - 1], "--spool") != 0) &&
            (i == 2 || std::strcmp(argv[i - 1], "--name") != 0)) {
            jobFile = argv[i];
            break;
        }
    }
    if (jobFile.empty()) {
        std::fputs("dvr_serve submit: missing JOB.json\n", stderr);
        return 2;
    }
    std::string text;
    if (!Spool::readFile(jobFile, text)) {
        std::fprintf(stderr, "dvr_serve submit: cannot read %s\n",
                     jobFile.c_str());
        return 1;
    }
    std::string name = argValue(argc, argv, "--name");
    if (name.empty())
        name = Spool::jobNameOf(jobFile);

    // Reject malformed jobs at submit time, not at run time.
    JobSpec job;
    std::string err;
    if (!JobSpec::parse(name, text, job, &err)) {
        std::fprintf(stderr, "dvr_serve submit: invalid job: %s\n",
                     err.c_str());
        return 1;
    }
    if (!spool.init())
        return 1;
    const std::string queued = spool.submit(name, text);
    if (queued.empty())
        return 1;
    std::printf("queued %s (%zu points)\n", queued.c_str(),
                job.points.size());
    return 0;
}

int
cmdStart(const std::string &spoolRoot, int argc, char **argv)
{
    SimConfig cfg;
    try {
        cfg = resolveConfig("base", argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "dvr_serve: %s\n", e.what());
        return 2;
    }
    Daemon::Options opt;
    opt.spoolRoot = spoolRoot;
    opt.serve = cfg.serve;
    Daemon daemon(opt);
    if (!daemon.init())
        return 1;
    const int failed = hasFlag(argc, argv, "--once")
                           ? daemon.runOnce()
                           : daemon.serveLoop();
    const ServeCounters &c = daemon.totals();
    std::printf("serve: %llu/%llu points run, %llu deduped, "
                "%llu cache hits, %llu journal-resumed, %llu "
                "retries, %d job(s) failed\n",
                (unsigned long long)c.pointsRun,
                (unsigned long long)c.pointsTotal,
                (unsigned long long)c.pointsDeduped,
                (unsigned long long)c.cacheHits,
                (unsigned long long)c.journalResumed,
                (unsigned long long)c.retries, failed);
    return failed == 0 ? 0 : 1;
}

int
cmdStatus(const Spool &spool)
{
    const struct
    {
        const char *title;
        std::string dir;
    } states[] = {
        {"queued", spool.queueDir()},
        {"running", spool.runningDir()},
        {"done", spool.doneDir()},
        {"failed", spool.failedDir()},
    };
    for (const auto &[title, dir] : states) {
        std::vector<std::string> names = spool.list(dir);
        // The ".serve" counter sidecars are not jobs.
        names.erase(std::remove_if(names.begin(), names.end(),
                                   [](const std::string &n) {
                                       return n.size() > 6 &&
                                              n.compare(n.size() - 6,
                                                        6,
                                                        ".serve") == 0;
                                   }),
                    names.end());
        std::printf("%-8s %zu\n", title, names.size());
        for (const std::string &name : names) {
            std::printf("  %s\n", name.c_str());
            std::string counters;
            if (Spool::readFile(dir + "/" + name + ".serve.json",
                                counters))
                std::fputs(counters.c_str(), stdout);
        }
    }
    if (spool.drainRequested())
        std::puts("drain requested");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Hidden worker mode: spawned by the daemon via /proc/self/exe.
    if (hasFlag(argc, argv, "--worker")) {
        return Daemon::workerMain(argValue(argc, argv, "--spool"),
                                  argValue(argc, argv, "--job"),
                                  argValue(argc, argv, "--points"));
    }
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const std::string spoolRoot = argValue(argc, argv, "--spool");
    if (spoolRoot.empty()) {
        std::fputs("dvr_serve: --spool DIR is required\n", stderr);
        usage();
        return 2;
    }
    const Spool spool(spoolRoot);
    if (cmd == "submit")
        return cmdSubmit(spool, argc, argv);
    if (cmd == "start")
        return cmdStart(spoolRoot, argc, argv);
    if (cmd == "status")
        return cmdStatus(spool);
    if (cmd == "drain") {
        if (!spool.init())
            return 1;
        spool.requestDrain();
        std::puts("drain requested");
        return 0;
    }
    usage();
    return 2;
}
