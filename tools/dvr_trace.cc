/**
 * @file
 * Trace and manifest inspector.
 *
 *   dvr_trace FILE.bin            pretty-print a binary event trace
 *   dvr_trace --check FILE.json   validate a run manifest — the
 *                                 whole-document shape or dvr_serve's
 *                                 journal-append variant (or, with
 *                                 --json-only, any JSON document)
 *
 * The binary format is the raw TraceEvent ring (src/sim/trace.hh)
 * behind an 8-byte magic; the pretty-printer decodes each category's
 * payload fields into the same vocabulary the docs use.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/manifest.hh"
#include "sim/trace.hh"

namespace {

void
usage()
{
    std::printf(
        "usage: dvr_trace [options] FILE\n"
        "  FILE                a binary trace (dvr_trace FILE.bin)\n"
        "      --check FILE    validate a MANIFEST_*.json document\n"
        "                      (whole-document or journal-append)\n"
        "      --json-only     with --check: only require valid JSON\n"
        "                      (for BENCH_*.json / --json stat dumps)\n"
        "  -h, --help\n");
}

/** Decode one event into a human line. */
std::string
describe(const dvr::TraceEvent &e)
{
    using dvr::TraceCat;
    std::ostringstream os;
    os << "cycle " << e.cycle << "  pc " << e.pc << "  ";
    const auto cat = static_cast<TraceCat>(e.cat);
    switch (cat) {
      case TraceCat::kDiscovery: {
        static const char *kWhat[] = {"begin", "done", "switched",
                                      "aborted", "no-chain-skip"};
        os << "discovery "
           << (e.a < 5 ? kWhat[e.a] : "?");
        if (e.a == 1)
            os << " flr=" << e.b;
        break;
      }
      case TraceCat::kSpawn:
        os << "spawn lanes=" << e.a
           << (e.b ? " (nested)" : " (vectorized)");
        break;
      case TraceCat::kDivergence:
        os << "divergence lanes=" << e.a
           << (e.b == 2 ? " invalidated"
                        : (e.b == 1 ? " dropped (stack full)"
                                    : " deferred"));
        break;
      case TraceCat::kReconvergence:
        os << "reconvergence lanes=" << e.a;
        break;
      case TraceCat::kNdm:
        os << "ndm phase=" << e.a;
        if (e.b)
            os << " lanes=" << e.b;
        break;
      case TraceCat::kMshrStall:
        os << "mshr-stall wait=" << e.a << " requester=" << e.b;
        break;
      default:
        os << "unknown-category " << unsigned(e.cat);
        break;
    }
    return os.str();
}

int
printTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "dvr_trace: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, "DVRTRC01", 8) != 0) {
        std::fprintf(stderr,
                     "dvr_trace: %s is not a DVRTRC01 binary trace "
                     "(pass the .bin twin, not the JSONL)\n",
                     path.c_str());
        return 1;
    }
    uint64_t n = 0;
    dvr::TraceEvent e;
    while (in.read(reinterpret_cast<char *>(&e), sizeof(e))) {
        std::printf("%s\n", describe(e).c_str());
        ++n;
    }
    if (in.gcount() != 0) {
        std::fprintf(stderr,
                     "dvr_trace: warning: %lld trailing bytes "
                     "(truncated write?)\n",
                     static_cast<long long>(in.gcount()));
    }
    std::printf("-- %llu events\n", (unsigned long long)n);
    return 0;
}

int
checkFile(const std::string &path, bool json_only)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "dvr_trace: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string err =
        json_only ? dvr::validateJsonSyntax(text.str())
                  : dvr::validateManifestJson(text.str());
    if (!err.empty()) {
        std::fprintf(stderr, "dvr_trace: %s: %s\n", path.c_str(),
                     err.c_str());
        return 1;
    }
    std::printf("%s: OK\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> checks;
    std::vector<std::string> traces;
    bool json_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-h" || a == "--help") {
            usage();
            return 0;
        } else if (a == "--json-only") {
            json_only = true;
        } else if (a == "--check") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --check\n");
                return 2;
            }
            checks.push_back(argv[++i]);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            usage();
            return 2;
        } else {
            traces.push_back(a);
        }
    }
    if (checks.empty() && traces.empty()) {
        usage();
        return 2;
    }

    int rc = 0;
    for (const std::string &p : checks)
        rc |= checkFile(p, json_only);
    for (const std::string &p : traces)
        rc |= printTrace(p);
    return rc;
}
