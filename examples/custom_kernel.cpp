/**
 * @file
 * Authoring a new workload against the public API: builds a custom
 * two-level indirect kernel (a histogram over pointer-chased keys)
 * with the ProgramBuilder, runs it under the baseline and DVR, and
 * validates the architectural result against a native golden model.
 *
 * This is the template to follow when adding a benchmark: data set in
 * SimMemory, kernel via ProgramBuilder (bottom-tested loops so the
 * loop-bound detector can see the compare/backward-branch pair), and
 * a golden model for verification.
 */

#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "sim/simulator.hh"
#include "workloads/dataset.hh"

int
main()
{
    using namespace dvr;

    // --- data set ----------------------------------------------------
    SimMemory mem(64ULL << 20);
    const uint64_t slots = 1 << 15;
    const uint64_t mask = slots - 1;
    const uint64_t n = slots * 4;
    SimArray keys = makeArray(mem, randomValues(n, 0, 7));
    SimArray index = makeArray(mem, randomValues(slots, slots, 8));
    const Addr hist = mem.alloc(slots << 6);    // 64 B slots

    // --- the kernel, in the micro-op ISA -----------------------------
    // for i in 0..n: k = keys[i]; j = index[k & mask]; hist[j]++
    // Registers: r0 keys, r1 index, r2 hist, r3 i, r4 n, r6 k,
    //            r7 j, r10 t, r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(keys.base)).li(1, int64_t(index.base))
        .li(2, int64_t(hist)).li(3, 0).li(4, int64_t(n));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11)                      // k = keys[i]   (strider)
        .andi(6, 6, int64_t(mask))
        .shli(11, 6, 3).add(11, 1, 11)
        .ld(7, 11)                      // j = index[k]
        .shli(11, 7, 6).add(11, 2, 11)
        .ld(10, 11)                     // hist[j]       (FLR)
        .addi(10, 10, 1)
        .st(11, 0, 10)
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .halt();

    // --- golden model -------------------------------------------------
    std::vector<uint64_t> gold(slots, 0);
    for (uint64_t i = 0; i < n; ++i)
        ++gold[index.host[keys.host[i] & mask]];

    Workload w;
    w.name = "histogram";
    w.program = b.build();
    w.verify = [&](const SimMemory &m) {
        for (uint64_t i = 0; i < slots; ++i) {
            if (m.read(hist + (i << 6), 8) != gold[i])
                return false;
        }
        return true;
    };

    std::printf("custom kernel: %u static instructions\n%s\n",
                w.program.size(), w.program.disassemble().c_str());

    for (const char *t : {"base", "dvr"}) {
        SimConfig cfg = SimConfig::baseline(t);
        cfg.maxInstructions = 4'000'000;    // run to completion
        const SimResult r = Simulator::runOn(cfg, w, mem);
        std::printf("%-5s IPC %.3f  cycles %llu  halted=%d  "
                    "golden-match=%s\n",
                    t, r.ipc(),
                    (unsigned long long)r.core.cycles, r.halted,
                    r.verified ? "yes" : "NO");
    }
    return 0;
}
