/**
 * @file
 * Database-probe walkthrough: hash-join chains of increasing depth.
 * Shows how the baseline core collapses as the dependent chain
 * deepens while DVR sustains throughput by overlapping 128 future
 * probes -- and prints the memory-side evidence (MLP, DRAM split,
 * timeliness).
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    using namespace dvr;
    WorkloadParams wp;
    wp.scaleShift = 2;  // quick demo size

    std::printf("hash-join probe: dependent chain depth 2 vs 8\n\n");
    std::printf("%-6s %10s %10s %10s %8s %8s\n", "bench", "base-IPC",
                "DVR-IPC", "speedup", "baseMLP", "dvrMLP");
    for (const char *kernel : {"hj2", "hj8"}) {
        PreparedWorkload pw(kernel, "", wp, 192ULL << 20);
        SimConfig base = SimConfig::baseline("base");
        base.maxInstructions = 300'000;
        SimConfig dvr_cfg = SimConfig::baseline("dvr");
        dvr_cfg.maxInstructions = base.maxInstructions;
        const SimResult rb = pw.run(base);
        const SimResult rd = pw.run(dvr_cfg);
        std::printf("%-6s %10.3f %10.3f %9.2fx %8.2f %8.2f\n", kernel,
                    rb.ipc(), rd.ipc(), rd.ipc() / rb.ipc(),
                    rb.mshrOccupancy(), rd.mshrOccupancy());
    }

    // Deep dive on hj8's memory behaviour under DVR.
    PreparedWorkload pw("hj8", "", wp, 192ULL << 20);
    SimConfig cfg = SimConfig::baseline("dvr");
    cfg.maxInstructions = 300'000;
    const SimResult r = pw.run(cfg);
    const double l1 = r.stats.get("mem.ra_found_l1");
    const double l2 = r.stats.get("mem.ra_found_l2");
    const double l3 = r.stats.get("mem.ra_found_l3");
    const double late = r.stats.get("mem.ra_found_late");
    std::printf("\nhj8 under DVR:\n");
    std::printf("  demand loads served by DRAM: %.0f (baseline had "
                "every probe miss)\n",
                r.stats.get("mem.demand_dram"));
    std::printf("  prefetched lines found at L1/L2/L3/late: "
                "%.0f/%.0f/%.0f/%.0f\n", l1, l2, l3, late);
    std::printf("  runahead DRAM fetches: %.0f, episodes: %.0f\n",
                r.stats.get("mem.dram_runahead"),
                r.stats.get("dvr.episodes"));
    return 0;
}
