/**
 * @file
 * Graph-analytics walkthrough: runs BFS over each of the five Table-2
 * graph inputs under every technique and prints a speedup matrix,
 * plus DVR's internal behaviour (episodes, discovery, divergence).
 *
 *   ./example_graph_analytics [kernel]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;
    const std::string kernel = argc > 1 ? argv[1] : "bfs";

    WorkloadParams wp;
    wp.scaleShift = 2;  // quick demo size
    const std::vector<std::string> techs = {"pre", "imp", "vr", "dvr",
                                            "oracle"};

    std::printf("%s across the five graph inputs "
                "(speedup over baseline OoO):\n\n",
                kernel.c_str());
    std::printf("%-8s %10s", "input", "base-IPC");
    for (const std::string &t : techs)
        std::printf(" %10s", t.c_str());
    std::printf("\n");

    for (const auto &spec : graphInputs()) {
        PreparedWorkload pw(kernel, spec.name, wp, 192ULL << 20);
        SimConfig base = SimConfig::baseline("base");
        base.maxInstructions = 300'000;
        const SimResult rb = pw.run(base);
        std::printf("%-8s %10.3f", spec.name.c_str(), rb.ipc());
        for (const std::string &t : techs) {
            SimConfig cfg = SimConfig::baseline(t);
            cfg.maxInstructions = base.maxInstructions;
            std::printf(" %9.2fx", pw.run(cfg).ipc() / rb.ipc());
        }
        std::printf("\n");
    }

    // Peek inside DVR on the power-law KR graph.
    PreparedWorkload pw(kernel, "KR", wp, 192ULL << 20);
    SimConfig cfg = SimConfig::baseline("dvr");
    cfg.maxInstructions = 300'000;
    const SimResult r = pw.run(cfg);
    std::printf("\nDVR internals on %s_KR:\n", kernel.c_str());
    for (const char *k :
         {"dvr.discoveries", "dvr.episodes", "dvr.nested_episodes",
          "dvr.avg_lanes", "dvr.lane_loads", "dvr.reconv_pushes",
          "mem.ra_found_l1", "mem.ra_found_late", "mem.ra_unused"}) {
        std::printf("  %-22s %12.0f\n", k, r.stats.get(k));
    }
    return 0;
}
