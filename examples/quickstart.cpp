/**
 * @file
 * Quickstart: run one benchmark under the baseline out-of-order core
 * and under Decoupled Vector Runahead, and print the speedup.
 *
 *   ./example_quickstart [kernel] [graph-input]
 */

#include <cstdio>
#include <string>

#include "sim/simulator.hh"

int
main(int argc, char **argv)
{
    using namespace dvr;

    const std::string kernel = argc > 1 ? argv[1] : "bfs";
    WorkloadParams wp;
    wp.input = argc > 2 ? argv[2] : "KR";
    wp.scaleShift = 2;  // quick demo: quarter-size data set

    std::printf("building %s (%s input)...\n", kernel.c_str(),
                wp.input.c_str());
    SimMemory mem(SimConfig().memoryBytes);
    Workload w = workloadFactory(kernel)(mem, wp);
    std::printf("program: %u static instructions\n", w.program.size());

    SimConfig base = SimConfig::baseline("base");
    base.maxInstructions = 400'000;
    SimConfig dvr_cfg = SimConfig::baseline("dvr");
    dvr_cfg.maxInstructions = base.maxInstructions;

    std::printf("running baseline out-of-order core...\n");
    SimResult rb = Simulator::runOn(base, w, mem);
    std::printf("  IPC %.3f, %llu cycles, LLC MPKI %.1f\n", rb.ipc(),
                (unsigned long long)rb.core.cycles, rb.llcMpki());

    std::printf("running Decoupled Vector Runahead...\n");
    SimResult rd = Simulator::runOn(dvr_cfg, w, mem);
    std::printf("  IPC %.3f, %llu cycles, LLC MPKI %.1f\n", rd.ipc(),
                (unsigned long long)rd.core.cycles, rd.llcMpki());
    std::printf("  episodes %.0f (nested %.0f), lane loads %.0f\n",
                rd.stats.get("dvr.episodes"),
                rd.stats.get("dvr.nested_episodes"),
                rd.stats.get("dvr.lane_loads"));

    std::printf("\nDVR speedup over baseline: %.2fx\n",
                rd.ipc() / rb.ipc());
    return 0;
}
