/**
 * @file
 * Differential fuzzing: generate random (but well-formed, always
 * terminating) programs and check that
 *   (a) the out-of-order core's architectural results match an
 *       independent straight-line reference interpreter, and
 *   (b) every runahead technique leaves architectural state (final
 *       registers and memory) bit-identical to the baseline --
 *       runahead is speculative and must be invisible.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "common/rng.hh"
#include "core/ooo_core.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "sim/config.hh"

namespace dvr {
namespace {

constexpr uint64_t kElems = 1 << 14;    // data array elements
constexpr uint64_t kMask = kElems - 1;
constexpr uint64_t kTrips = 300;

/**
 * Random structured program: a counted loop whose body mixes ALU ops,
 * masked loads/stores into a data array, hashes, compares, and short
 * forward-branch diamonds. Registers: r0 data base, r1 loop counter,
 * r2 trip count, r3-r9 scratch, r10 branch temp, r11 address temp.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b;
    b.li(1, 0).li(2, int64_t(kTrips));
    for (RegId r = 3; r <= 9; ++r)
        b.li(r, int64_t(rng.nextBelow(1 << 20)));
    // r0 is patched with the data base by the caller via li at pc 9.
    b.li(0, 0);

    b.label("loop");
    const unsigned body = 6 + unsigned(rng.nextBelow(10));
    int pending = -1;       // body slots until an open diamond closes
    unsigned label_id = 0;
    std::string open_label;
    auto maybe_close = [&] {
        if (pending == 0) {
            b.label(open_label);
            pending = -1;
            open_label.clear();
        }
    };
    for (unsigned i = 0; i < body; ++i) {
        if (pending > 0)
            --pending;
        maybe_close();
        const auto scratch = [&] {
            return RegId(3 + rng.nextBelow(7));
        };
        switch (rng.nextBelow(8)) {
          case 0:
            b.add(scratch(), scratch(), scratch());
            break;
          case 1:
            b.sub(scratch(), scratch(), scratch());
            break;
          case 2:
            b.xori(scratch(), scratch(),
                   int64_t(rng.nextBelow(1 << 12)));
            break;
          case 3:
            b.hash(scratch(), scratch());
            break;
          case 4: {
            // Masked load: r11 = base + (reg & mask) * 8.
            b.andi(11, scratch(), int64_t(kMask))
                .shli(11, 11, 3)
                .add(11, 0, 11)
                .ld(scratch(), 11);
            break;
          }
          case 5: {
            b.andi(11, scratch(), int64_t(kMask))
                .shli(11, 11, 3)
                .add(11, 0, 11)
                .st(11, 0, scratch());
            break;
          }
          case 6:
            b.cmpltu(10, scratch(), scratch());
            b.muli(scratch(), scratch(),
                   int64_t(1 + rng.nextBelow(7)));
            break;
          default: {
            // Forward diamond: skip the next 1..3 body slots.
            if (pending < 0) {
                open_label = "skip" + std::to_string(label_id++);
                b.cmpltu(10, scratch(), scratch());
                b.beqz(10, open_label);
                pending = int(1 + rng.nextBelow(3));
            }
            break;
          }
        }
    }
    // Close any diamond still open past the body.
    while (pending > 0) {
        b.nop();
        --pending;
    }
    maybe_close();
    b.addi(1, 1, 1)
        .cmpltu(10, 1, 2)
        .bnez(10, "loop")
        .halt();
    return b.build();
}

/** Independent reference interpreter (no timing, no sharing). */
struct Reference
{
    std::array<uint64_t, kNumArchRegs> regs{};
    uint64_t steps = 0;

    void
    run(const Program &p, SimMemory &mem, uint64_t max_steps)
    {
        InstPc pc = 0;
        while (p.valid(pc) && steps < max_steps) {
            const Instruction &inst = p.at(pc);
            if (inst.op == Opcode::kHalt)
                return;
            ++steps;
            InstPc next = pc + 1;
            if (inst.isLoad()) {
                regs[inst.rd] = mem.read(
                    regs[inst.rs1] + Addr(inst.imm), inst.memBytes());
            } else if (inst.isStore()) {
                mem.write(regs[inst.rs1] + Addr(inst.imm),
                          inst.memBytes(), regs[inst.rs2]);
            } else if (inst.isBranch()) {
                if (branchTaken(inst.op, regs[inst.rs1]))
                    next = inst.target;
            } else if (inst.hasDest()) {
                regs[inst.rd] = evalOp(inst.op, regs[inst.rs1],
                                       regs[inst.rs2], inst.imm);
            }
            pc = next;
        }
        FAIL() << "reference interpreter did not halt";
    }
};

class Differential : public testing::TestWithParam<uint64_t>
{
};

TEST_P(Differential, CoreMatchesReferenceAndRunaheadIsInvisible)
{
    const uint64_t seed = GetParam();

    // Build the program and a data image.
    Program p = randomProgram(seed);
    SimMemory pristine(16ULL << 20);
    const Addr data = pristine.alloc(kElems * 8);
    Rng fill(seed ^ 0xF1);
    for (uint64_t i = 0; i < kElems; ++i)
        pristine.write64(data, i, fill.next());
    // The generator emitted `li r0, 0`; rebuild the instruction list
    // with the real data base patched in.
    struct Patcher
    {
        static Program
        withBase(uint64_t seed, Addr base)
        {
            Program p = randomProgram(seed);
            // Replace the single `li r0, 0` with `li r0, base`.
            std::vector<Instruction> insts;
            std::map<std::string, InstPc> labels;
            for (InstPc pc = 0; pc < p.size(); ++pc) {
                Instruction i = p.at(pc);
                if (i.op == Opcode::kLoadImm && i.rd == 0 &&
                    i.imm == 0) {
                    i.imm = int64_t(base);
                }
                insts.push_back(i);
            }
            return Program(std::move(insts), std::move(labels));
        }
    };
    p = Patcher::withBase(seed, data);

    // Reference execution.
    SimMemory ref_mem = pristine;
    Reference ref;
    ref.run(p, ref_mem, 5'000'000);

    // Baseline core.
    auto run_core = [&](Technique t) {
        SimMemory m = pristine;
        MemorySystem ms(SimConfig::baseline(t).mem, m);
        std::unique_ptr<DvrController> dvr;
        std::unique_ptr<VrController> vr;
        std::unique_ptr<PreController> pre;
        CoreClient *client = nullptr;
        SimConfig cfg = SimConfig::baseline(t);
        if (t == Technique::kDvr) {
            dvr = std::make_unique<DvrController>(cfg.dvr, p, m, ms);
            client = dvr.get();
        } else if (t == Technique::kVr) {
            vr = std::make_unique<VrController>(cfg.vr, p, m, ms);
            client = vr.get();
        } else if (t == Technique::kPre) {
            pre = std::make_unique<PreController>(cfg.pre, p, m, ms);
            client = pre.get();
        }
        OooCore core(cfg.core, p, m, ms, client);
        if (dvr)
            dvr->attachCore(core);
        if (vr)
            vr->attachCore(core);
        if (pre)
            pre->attachCore(core);
        core.run(6'000'000);
        EXPECT_TRUE(core.stats().halted);
        return std::make_pair(core.regs().value, std::move(m));
    };

    auto [base_regs, base_mem] = run_core(Technique::kBase);

    // (a) core vs reference.
    for (int r = 0; r < kNumArchRegs; ++r)
        ASSERT_EQ(base_regs[r], ref.regs[r]) << "r" << r;
    for (uint64_t i = 0; i < kElems; i += 97)
        ASSERT_EQ(base_mem.read64(data, i), ref_mem.read64(data, i));

    // (b) runahead invisibility.
    for (Technique t :
         {Technique::kDvr, Technique::kVr, Technique::kPre}) {
        auto [regs, m] = run_core(t);
        for (int r = 0; r < kNumArchRegs; ++r)
            ASSERT_EQ(regs[r], base_regs[r])
                << techniqueName(t) << " r" << r;
        for (uint64_t i = 0; i < kElems; i += 97) {
            ASSERT_EQ(m.read64(data, i), base_mem.read64(data, i))
                << techniqueName(t) << " elem " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         testing::Range<uint64_t>(0, 16));

} // namespace
} // namespace dvr
