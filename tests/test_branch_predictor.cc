/** @file Branch predictor behaviour tests (TAGE, gshare, static). */

#include <gtest/gtest.h>

#include "core/branch_predictor.hh"

namespace dvr {
namespace {

double
mispredictRate(BranchPredictor &bp, unsigned n,
               const std::function<bool(unsigned)> &pattern,
               InstPc pc = 100)
{
    unsigned miss = 0;
    for (unsigned i = 0; i < n; ++i) {
        const bool taken = pattern(i);
        const bool pred = bp.predict(pc);
        if (pred != taken)
            ++miss;
        bp.update(pc, taken);
    }
    return double(miss) / n;
}

TEST(Tage, LearnsAlwaysTaken)
{
    TagePredictor bp;
    EXPECT_LT(mispredictRate(bp, 2000, [](unsigned) { return true; }),
              0.01);
}

TEST(Tage, LearnsAlternation)
{
    TagePredictor bp;
    // Warm up, then measure: the history tables resolve T/N/T/N.
    mispredictRate(bp, 500, [](unsigned i) { return i % 2 == 0; });
    EXPECT_LT(mispredictRate(bp, 2000,
                             [](unsigned i) { return i % 2 == 0; }),
              0.05);
}

TEST(Tage, LearnsShortLoopExit)
{
    TagePredictor bp;
    // Loop of 7 iterations: taken 6x, not-taken once. TAGE should
    // learn the exit from history.
    mispredictRate(bp, 700, [](unsigned i) { return i % 7 != 6; });
    EXPECT_LT(mispredictRate(bp, 7000,
                             [](unsigned i) { return i % 7 != 6; }),
              0.05);
}

TEST(Tage, RandomIsHard)
{
    TagePredictor bp;
    uint64_t x = 12345;
    const double r = mispredictRate(bp, 4000, [&x](unsigned) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return (x >> 62) & 1;
    });
    EXPECT_GT(r, 0.35);     // near coin-flip
}

TEST(Tage, BeatsGshareOnLongPatterns)
{
    TagePredictor tage;
    GsharePredictor gshare;
    auto pattern = [](unsigned i) { return (i % 23) < 17; };
    mispredictRate(tage, 2000, pattern);
    mispredictRate(gshare, 2000, pattern);
    const double rt = mispredictRate(tage, 8000, pattern);
    const double rg = mispredictRate(gshare, 8000, pattern);
    EXPECT_LE(rt, rg + 0.01);
}

TEST(Gshare, LearnsBias)
{
    GsharePredictor bp;
    EXPECT_LT(mispredictRate(bp, 2000, [](unsigned) { return true; }),
              0.02);
}

TEST(Static, TakenCountsMispredicts)
{
    TakenPredictor bp;
    EXPECT_TRUE(bp.predict(1));
    bp.update(1, false);
    bp.update(1, true);
    EXPECT_EQ(bp.mispredicts, 1u);
}

TEST(Factory, MakesAllKindsAndRejectsUnknown)
{
    EXPECT_NE(makePredictor("tage"), nullptr);
    EXPECT_NE(makePredictor("gshare"), nullptr);
    EXPECT_NE(makePredictor("taken"), nullptr);
    EXPECT_THROW(makePredictor("nonsense"), std::runtime_error);
}

} // namespace
} // namespace dvr
