/**
 * @file
 * DVR_* environment knob validation (src/sim/env.cc): malformed or
 * out-of-range values must never be silently coerced. Unparseable and
 * below-minimum values warn once and are ignored (the default
 * applies); above-maximum values warn once and clamp; the warning
 * names the variable and the offending text exactly once no matter
 * how many times the knob is read.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/env.hh"

namespace {

using namespace dvr;

/** setenv/unsetenv for one test, restoring the old value on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            saved_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
        env::resetWarnings();
    }

    ~ScopedEnv()
    {
        if (saved_)
            ::setenv(name_, saved_->c_str(), 1);
        else
            ::unsetenv(name_);
        env::resetWarnings();
    }

  private:
    const char *name_;
    std::optional<std::string> saved_;
};

TEST(Env, UnsetVariablesReturnNullopt)
{
    ScopedEnv i("DVR_INSTS", nullptr);
    ScopedEnv s("DVR_SCALE_SHIFT", nullptr);
    ScopedEnv j("DVR_JOBS", nullptr);
    ScopedEnv d("DVR_BENCH_DIR", nullptr);
    EXPECT_FALSE(env::maxInstructions().has_value());
    EXPECT_FALSE(env::scaleShift().has_value());
    EXPECT_FALSE(env::jobs().has_value());
    EXPECT_FALSE(env::benchDir().has_value());
}

TEST(Env, ValidValuesParse)
{
    ScopedEnv i("DVR_INSTS", "500000");
    ScopedEnv s("DVR_SCALE_SHIFT", "7");
    ScopedEnv j("DVR_JOBS", "16");
    ScopedEnv d("DVR_BENCH_DIR", "/tmp/bench");
    EXPECT_EQ(500000u, env::maxInstructions().value());
    EXPECT_EQ(7u, env::scaleShift().value());
    EXPECT_EQ(16u, env::jobs().value());
    EXPECT_EQ("/tmp/bench", env::benchDir().value());
}

TEST(Env, InstsRejectsGarbageZeroAndSigns)
{
    for (const char *bad :
         {"", "0", "abc", "12x", "-1", "+5", " 8", "1e6",
          "99999999999999999999999999"}) {
        ScopedEnv e("DVR_INSTS", bad);
        EXPECT_FALSE(env::maxInstructions().has_value())
            << "DVR_INSTS=\"" << bad << "\" must be ignored";
    }
}

TEST(Env, ScaleShiftValidatesAndClamps)
{
    {
        // strtoull would wrap "-1" to UINT64_MAX — the exact silent
        // coercion this module exists to prevent.
        ScopedEnv e("DVR_SCALE_SHIFT", "-1");
        EXPECT_FALSE(env::scaleShift().has_value());
    }
    {
        ScopedEnv e("DVR_SCALE_SHIFT", "nope");
        EXPECT_FALSE(env::scaleShift().has_value());
    }
    {
        ScopedEnv e("DVR_SCALE_SHIFT", "0");
        EXPECT_EQ(0u, env::scaleShift().value());   // 0 is in range
    }
    {
        // A shift past the word width is UB downstream: clamp to 30.
        ScopedEnv e("DVR_SCALE_SHIFT", "64");
        EXPECT_EQ(30u, env::scaleShift().value());
    }
}

TEST(Env, JobsRejectsZeroAndClampsTypos)
{
    {
        ScopedEnv e("DVR_JOBS", "0");   // 0 threads cannot progress
        EXPECT_FALSE(env::jobs().has_value());
    }
    {
        ScopedEnv e("DVR_JOBS", "8cores");
        EXPECT_FALSE(env::jobs().has_value());
    }
    {
        ScopedEnv e("DVR_JOBS", "4096");
        EXPECT_EQ(1024u, env::jobs().value());
    }
    {
        ScopedEnv e("DVR_JOBS", "1024");
        EXPECT_EQ(1024u, env::jobs().value());   // max itself is fine
    }
}

TEST(Env, BenchDirRejectsEmpty)
{
    ScopedEnv e("DVR_BENCH_DIR", "");
    EXPECT_FALSE(env::benchDir().has_value());
}

TEST(Env, BadValueWarnsOnceNamingTheOffender)
{
    ScopedEnv e("DVR_JOBS", "banana");

    testing::internal::CaptureStderr();
    EXPECT_FALSE(env::jobs().has_value());
    EXPECT_FALSE(env::jobs().has_value());   // second read: no re-warn
    const std::string err = testing::internal::GetCapturedStderr();

    EXPECT_NE(std::string::npos, err.find("DVR_JOBS"));
    EXPECT_NE(std::string::npos, err.find("banana"));
    EXPECT_EQ(err.find("DVR_JOBS"), err.rfind("DVR_JOBS"))
        << "warning must be emitted exactly once:\n"
        << err;

    // resetWarnings re-arms the warning (what this fixture relies on).
    env::resetWarnings();
    testing::internal::CaptureStderr();
    EXPECT_FALSE(env::jobs().has_value());
    EXPECT_NE(std::string::npos,
              testing::internal::GetCapturedStderr().find("DVR_JOBS"));
}

TEST(Env, ClampWarnsWithTheOffendingValue)
{
    ScopedEnv e("DVR_SCALE_SHIFT", "31");
    testing::internal::CaptureStderr();
    EXPECT_EQ(30u, env::scaleShift().value());
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(std::string::npos, err.find("DVR_SCALE_SHIFT"));
    EXPECT_NE(std::string::npos, err.find("31"));
    EXPECT_NE(std::string::npos, err.find("30"));
}

} // namespace
