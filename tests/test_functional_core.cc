/**
 * @file
 * FunctionalCore differential tests: the pre-decoded fast interpreter
 * (dense switch or computed goto) must be bit-identical to the legacy
 * Program-stepping loop (referenceFunctionalRun) — final registers,
 * PC, memory image, executed-instruction count, and the halt/budget
 * edge cases. Also pins the checkpoint-equality contract: the
 * PredecodedProgram and Program overloads of makeCheckpoint snapshot
 * identical architectural state.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/memory_system.hh"
#include "mem/sim_memory.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/functional_core.hh"

namespace dvr {
namespace {

constexpr uint64_t kDataBytes = 8192;
constexpr int64_t kDataBase = 64;
constexpr int64_t kAddrMask = 4088;     // 8-aligned offsets in-bounds

/**
 * A deterministic loop whose body visits every ProgramBuilder opcode
 * at least once: full RRR/RRI ALU set, hash, the float ops, every
 * compare, all three load/store widths, mov, nop, both conditional
 * branches (taken and fall-through), and jmp. Divisors come from r13
 * (loop counter + 1), never zero. r11 is the address temp, masked
 * into the allocated scratch region.
 */
Program
opcodeTourProgram(uint64_t trips)
{
    ProgramBuilder b;
    b.li(1, 0).li(2, int64_t(trips)).li(0, kDataBase);
    for (RegId r = 3; r <= 9; ++r)
        b.li(r, int64_t(0x1234 + 31 * int64_t(r)));

    b.label("loop");
    b.addi(13, 1, 1);                       // nonzero divisor
    b.add(3, 3, 4).sub(4, 4, 5).mul(5, 5, 6);
    b.divu(6, 6, 13).remu(7, 7, 13);
    b.and_(8, 8, 3).or_(9, 9, 4).xor_(3, 3, 9);
    b.andi(14, 1, 7).shl(4, 4, 14).shr(5, 5, 14);
    b.min(6, 6, 3).max(7, 7, 4);
    b.addi(8, 8, 11).muli(9, 9, 3).andi(3, 3, 0xFFFF);
    b.ori(4, 4, 5).xori(5, 5, 0x55).shli(6, 6, 2).shri(7, 7, 3);
    b.hash(8, 8).mov(12, 8);
    b.i2f(9, 1).fadd(9, 9, 9).fsub(9, 9, 9).fmul(9, 9, 9);
    b.i2f(10, 13).fdiv(9, 10, 10).f2i(9, 9).fcmplt(10, 9, 10);
    b.cmplt(10, 3, 4).cmpltu(10, 4, 5).cmpeq(10, 5, 6);
    b.cmpne(10, 6, 7).cmplti(10, 7, 100).cmpltui(10, 8, 100);
    b.cmpeqi(10, 9, 0);
    b.andi(11, 8, kAddrMask).add(11, 11, 0);
    b.st(11, 0, 3).stw(11, 8, 4).stb(11, 12, 5);
    b.ld(12, 11).ldw(13, 11, 8).ldb(14, 11, 12);
    b.add(3, 3, 12).add(4, 4, 13).add(5, 5, 14);
    b.nop();
    b.cmpeqi(10, 1, 0).beqz(10, "skip1");   // taken after trip 0
    b.addi(3, 3, 7);
    b.label("skip1");
    b.bnez(10, "skip2");                    // taken only on trip 0
    b.addi(4, 4, 9).jmp("skip3");
    b.label("skip2");
    b.addi(5, 5, 13);
    b.label("skip3");
    b.addi(1, 1, 1).cmplt(10, 1, 2).bnez(10, "loop");
    b.halt();
    return b.build();
}

/**
 * Random structured program in the test_differential.cc style: a
 * counted loop mixing ALU ops, masked loads/stores, and short forward
 * branch diamonds. Always terminates (the back branch is the only
 * backward edge and the trip count is fixed).
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b;
    const uint64_t trips = 40 + rng.nextBelow(60);
    b.li(1, 0).li(2, int64_t(trips)).li(0, kDataBase);
    for (RegId r = 3; r <= 9; ++r)
        b.li(r, int64_t(rng.nextBelow(1 << 20)));

    b.label("loop");
    const unsigned body = 8 + unsigned(rng.nextBelow(12));
    unsigned label_id = 0;
    for (unsigned i = 0; i < body; ++i) {
        const RegId rd = RegId(3 + rng.nextBelow(7));
        const RegId ra = RegId(3 + rng.nextBelow(7));
        const RegId rb = RegId(3 + rng.nextBelow(7));
        switch (rng.nextBelow(8)) {
        case 0: b.add(rd, ra, rb); break;
        case 1: b.xor_(rd, ra, rb); break;
        case 2: b.muli(rd, ra, int64_t(1 + rng.nextBelow(13))); break;
        case 3: b.hash(rd, ra); break;
        case 4:
            b.andi(11, ra, kAddrMask).add(11, 11, 0);
            b.ld(rd, 11);
            break;
        case 5:
            b.andi(11, ra, kAddrMask).add(11, 11, 0);
            b.st(11, 0, rb);
            break;
        case 6: b.cmplt(rd, ra, rb); break;
        default: {
            // Forward diamond: skip one add on a data-dependent test.
            const std::string l =
                "d" + std::to_string(seed) + "_" +
                std::to_string(label_id++);
            b.cmplti(10, ra, int64_t(rng.nextBelow(1 << 19)));
            b.beqz(10, l);
            b.addi(rd, ra, int64_t(rng.nextBelow(64)));
            b.label(l);
            break;
        }
        }
    }
    b.addi(1, 1, 1).cmplt(10, 1, 2).bnez(10, "loop");
    b.halt();
    return b.build();
}

SimMemory
scratchImage()
{
    SimMemory image(1 << 20);
    image.alloc(kDataBytes);
    return image;
}

/** Run both interpreters on private CoW copies; assert bit-equality. */
void
expectInterpretersAgree(const Program &prog, uint64_t budget)
{
    const SimMemory image = scratchImage();
    const PredecodedProgram pre(prog);

    SimMemory mem_fast(image);
    SimMemory mem_ref(image);
    FunctionalState st_fast, st_ref;
    const FunctionalCore fc(pre, mem_fast);
    const uint64_t n_fast = fc.run(st_fast, budget);
    const uint64_t n_ref =
        referenceFunctionalRun(prog, mem_ref, st_ref, budget);

    EXPECT_EQ(n_fast, n_ref);
    EXPECT_EQ(st_fast.pc, st_ref.pc);
    EXPECT_EQ(st_fast.halted, st_ref.halted);
    EXPECT_EQ(st_fast.regs, st_ref.regs);
    EXPECT_TRUE(mem_fast.sameContent(mem_ref));
}

TEST(FunctionalCore, OpcodeTourMatchesReference)
{
    expectInterpretersAgree(opcodeTourProgram(200), 1'000'000);
}

TEST(FunctionalCore, OpcodeTourMatchesReferenceUnderTightBudgets)
{
    // Budgets that cut the run mid-loop exercise the resume-at-pc
    // contract, not just the final state.
    const Program prog = opcodeTourProgram(50);
    for (uint64_t budget : {1u, 7u, 63u, 500u, 1771u})
        expectInterpretersAgree(prog, budget);
}

TEST(FunctionalCore, RandomProgramsMatchReference)
{
    for (uint64_t seed = 0; seed < 12; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        expectInterpretersAgree(randomProgram(seed), 1'000'000);
        expectInterpretersAgree(randomProgram(seed),
                                37 + seed * 101);
    }
}

TEST(FunctionalCore, DispatchMicrobenchMatchesReference)
{
    // The bench program CI floors functional throughput on must mean
    // the same thing to both interpreters.
    const DispatchMicrobench mb = makeDispatchMicrobench();
    const PredecodedProgram pre(mb.program);
    SimMemory mem_fast(mb.image);
    SimMemory mem_ref(mb.image);
    FunctionalState st_fast, st_ref;
    const FunctionalCore fc(pre, mem_fast);
    EXPECT_EQ(fc.run(st_fast, 100'000), 100'000u);
    EXPECT_EQ(referenceFunctionalRun(mb.program, mem_ref, st_ref,
                                     100'000),
              100'000u);
    EXPECT_EQ(st_fast.regs, st_ref.regs);
    EXPECT_EQ(st_fast.pc, st_ref.pc);
    EXPECT_TRUE(mem_fast.sameContent(mem_ref));
}

TEST(FunctionalCore, HaltIsNotConsumedAndResumesIdle)
{
    ProgramBuilder b;
    b.li(3, 1).addi(3, 3, 1).halt();
    const Program prog = b.build();
    const PredecodedProgram pre(prog);
    SimMemory mem = scratchImage();
    const FunctionalCore fc(pre, mem);

    FunctionalState st;
    EXPECT_EQ(fc.run(st, 100), 2u);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.pc, 2u);       // parked on the halt
    EXPECT_EQ(st.regs[3], 2u);

    // Further budget on a halted state executes nothing.
    EXPECT_EQ(fc.run(st, 100), 0u);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.pc, 2u);
}

TEST(FunctionalCore, FallingOffTheEndHalts)
{
    // No explicit halt: the pre-decode sentinel (and the reference
    // loop's bounds check) must stop execution identically.
    ProgramBuilder b;
    b.li(3, 5).addi(3, 3, 37);
    expectInterpretersAgree(b.build(), 1'000);
}

TEST(FunctionalCore, WarmingDoesNotChangeArchitecturalState)
{
    // Cache warming (setWarming) is a timing-model side channel: the
    // architectural results must be bit-identical with it on or off.
    const Program prog = opcodeTourProgram(200);
    const SimMemory image = scratchImage();
    const PredecodedProgram pre(prog);
    const SimConfig cfg = SimConfig::baseline(Technique::kBase);

    SimMemory mem_plain(image);
    SimMemory mem_warm(image);
    MemorySystem ms(cfg.mem, mem_warm);
    const FunctionalCore plain(pre, mem_plain);
    FunctionalCore warming(pre, mem_warm);
    warming.setWarming(&ms);

    FunctionalState st_plain, st_warm;
    const uint64_t n_plain = plain.run(st_plain, 1'000'000);
    const uint64_t n_warm = warming.run(st_warm, 1'000'000);

    EXPECT_EQ(n_plain, n_warm);
    EXPECT_EQ(st_plain.regs, st_warm.regs);
    EXPECT_EQ(st_plain.pc, st_warm.pc);
    EXPECT_TRUE(mem_plain.sameContent(mem_warm));
}

TEST(FunctionalCore, CheckpointOverloadsAreEquivalent)
{
    // makeCheckpoint(PredecodedProgram, ...) and
    // makeCheckpoint(Program, ...) must snapshot identical state: the
    // Program overload just decodes first.
    const Program prog = opcodeTourProgram(400);
    const SimMemory image = scratchImage();
    const PredecodedProgram pre(prog);

    for (uint64_t warmup : {0u, 1'000u, 5'000u}) {
        SCOPED_TRACE("warmup " + std::to_string(warmup));
        const Checkpoint a = makeCheckpoint(pre, image, warmup);
        const Checkpoint b = makeCheckpoint(prog, image, warmup);
        EXPECT_EQ(a.insts, b.insts);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.halted, b.halted);
        EXPECT_EQ(a.regs.value, b.regs.value);
        EXPECT_TRUE(a.memory.sameContent(b.memory));
    }
}

TEST(FunctionalCore, CheckpointMatchesReferenceInterpreter)
{
    // The checkpoint fast-forward runs on the fast core; its snapshot
    // must equal a reference-interpreter replay of the same warmup.
    const Program prog = opcodeTourProgram(400);
    const SimMemory image = scratchImage();
    const uint64_t warmup = 7'500;

    const Checkpoint ckpt = makeCheckpoint(prog, image, warmup);
    SimMemory mem_ref(image);
    FunctionalState st;
    const uint64_t n =
        referenceFunctionalRun(prog, mem_ref, st, warmup);

    EXPECT_EQ(ckpt.insts, n);
    EXPECT_EQ(ckpt.pc, st.pc);
    EXPECT_EQ(ckpt.halted, st.halted);
    EXPECT_EQ(ckpt.regs.value, st.regs);
    EXPECT_TRUE(ckpt.memory.sameContent(mem_ref));
}

} // namespace
} // namespace dvr
