/**
 * @file
 * Vector-runahead subthread tests on hand-built chains: vectorized
 * prefetch generation, divergence/reconvergence, VRAT exhaustion,
 * timeouts, nested mode, VR-style episodes, and coverage cursors.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "mem/memory_system.hh"
#include "mem/sim_memory.hh"
#include "runahead/subthread.hh"

namespace dvr {
namespace {

/** Camel-like chain: A[i] strided -> B[A[i]] indirect. */
class SubthreadRig : public testing::Test
{
  protected:
    SubthreadRig() : mem(64 << 20)
    {
        a_base = mem.alloc(4096 * 8);
        b_base = mem.alloc(4096 << 6);
        for (uint64_t i = 0; i < 4096; ++i)
            mem.write64(a_base, i, (i * 97) % 4096);

        // loop: ld r6=[r0]; shli r7,r6,6; add r7,r1,r7; ld r8=[r7];
        //       addi r3,r3,1; cmpltu r10,r3,r4; bnez loop; halt
        ProgramBuilder b;
        b.label("loop")
            .ld(6, 0)
            .shli(7, 6, 6)
            .add(7, 1, 7)
            .ld(8, 7)
            .addi(3, 3, 1)
            .cmpltu(10, 3, 4)
            .bnez(10, "loop")
            .halt();
        prog = b.build();

        mcfg.stridePrefetcher = false;
        memsys = std::make_unique<MemorySystem>(mcfg, mem);

        d.stridePc = 0;
        d.stride = 8;
        d.strideDest = 6;
        d.strideBytes = 8;
        d.spawnAddr = a_base;
        d.flr = 3;
        d.bound.valid = true;
        d.bound.remaining = 64;
        d.bound.increment = 1;

        regs.value[0] = a_base;
        regs.value[1] = b_base;
        regs.value[3] = 0;
        regs.value[4] = 4096;
    }

    SimMemory mem;
    MemConfig mcfg;
    std::unique_ptr<MemorySystem> memsys;
    Program prog;
    DiscoveryResult d;
    RegState regs;
    SubthreadConfig cfg;
    Addr a_base = 0, b_base = 0;
};

TEST_F(SubthreadRig, VectorizesChainAndPrefetchesBothLevels)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 64);
    EXPECT_TRUE(ep.ran);
    EXPECT_EQ(ep.lanesSpawned, 64u);
    // 64 A-loads + 64 B-loads.
    EXPECT_EQ(ep.laneLoads, 128u);
    EXPECT_FALSE(ep.timedOut);
    EXPECT_GT(ep.issueEnd, 100u);

    // The B lines for lanes 0..63 must now be present.
    for (unsigned k = 0; k < 64; ++k) {
        const uint64_t idx = mem.read64(a_base, k);
        EXPECT_TRUE(memsys->present(b_base + (idx << 6)))
            << "lane " << k;
    }
    // And beyond the lane count, not prefetched.
    const uint64_t idx64 = mem.read64(a_base, 64);
    EXPECT_FALSE(memsys->present(b_base + (idx64 << 6)));
}

TEST_F(SubthreadRig, StopsAtFlrNotWholeLoop)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 8);
    // Chain is 4 instructions (ld, shli, add, ld); the loop tail
    // (addi/cmp/branch) must not run.
    EXPECT_EQ(ep.instructions, 4u);
}

TEST_F(SubthreadRig, LaneCountClampedToConfig)
{
    cfg.maxLanes = 16;
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 999);
    EXPECT_EQ(ep.lanesSpawned, 16u);
}

TEST_F(SubthreadRig, FaultingLanesAreMasked)
{
    // Start lanes near the end of allocated memory so later lanes
    // run off the edge and fault.
    d.spawnAddr = mem.brk() - 4 * 8;
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 32);
    EXPECT_EQ(ep.lanesFaulted, 28u);
    EXPECT_EQ(ep.laneLoads, 4u + 4u);   // only valid lanes load
}

TEST_F(SubthreadRig, VratExhaustionTerminatesEpisode)
{
    cfg.vecPhysFree = 16;   // room for a single vectorized register
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 64);
    EXPECT_TRUE(ep.vratExhausted);
}

TEST_F(SubthreadRig, CoverageCursorSkipsCoveredLanes)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    CoverageCursor cur;
    EpisodeStats e1 = sub.runVectorized(d, regs, 100, 64, &cur);
    EXPECT_EQ(e1.lanesSpawned, 64u);
    EXPECT_TRUE(cur.valid);

    // Re-spawn slightly later: only the uncovered tail runs.
    DiscoveryResult d2 = d;
    d2.spawnAddr = a_base + 10 * 8;
    d2.bound.remaining = 128;
    EpisodeStats e2 = sub.runVectorized(d2, regs, 200, 128, &cur);
    EXPECT_EQ(e2.lanesSpawned, 74u);    // 128 - (64 - 10)

    // Fully covered window: the episode is skipped.
    DiscoveryResult d3 = d;
    d3.spawnAddr = a_base + 20 * 8;
    d3.bound.remaining = 16;
    EpisodeStats e3 = sub.runVectorized(d3, regs, 300, 16, &cur);
    EXPECT_FALSE(e3.ran);

    // A jump outside the window resets the cursor.
    DiscoveryResult d4 = d;
    d4.spawnAddr = a_base + 3000 * 8;
    EpisodeStats e4 = sub.runVectorized(d4, regs, 400, 32, &cur);
    EXPECT_EQ(e4.lanesSpawned, 32u);
}

TEST_F(SubthreadRig, TimeoutBoundsRunawayEpisodes)
{
    // No FLR, and the loop never returns to the stride PC, so only
    // the 200-instruction timeout can end the episode.
    ProgramBuilder b;
    b.ld(6, 0);
    b.label("spin").addi(0, 0, 8).jmp("spin");
    Program spin = b.build();
    DiscoveryResult ds;
    ds.stridePc = 0;
    ds.stride = 8;
    ds.strideDest = 6;
    ds.spawnAddr = a_base;
    ds.flr = kInvalidPc;
    VectorSubthread sub(cfg, spin, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(ds, regs, 100, 8);
    EXPECT_TRUE(ep.timedOut);
    EXPECT_LE(ep.instructions, cfg.timeoutInsts);
}

/** Divergent chain: odd B values take an extra D load. */
class DivergeRig : public testing::Test
{
  protected:
    DivergeRig() : mem(64 << 20)
    {
        a_base = mem.alloc(1024 * 8);
        b_base = mem.alloc(1024 << 6);
        d_base = mem.alloc(1024 << 6);
        for (uint64_t i = 0; i < 1024; ++i) {
            mem.write64(a_base, i, i);
            mem.write(b_base + (i << 6), 8, i);     // B[i] = i
        }
        // loop: ld r6=[r0]; shli r7,r6,6; add r7,r1,r7; ld r8=[r7];
        //       andi r9,r8,1; beqz r9,even;
        //       shli r9,r8,6; add r9,r2,r9; ld r9=[r9];   (odd hop)
        // even: addi r3,r3,1; cmpltu r10,r3,r4; bnez loop; halt
        ProgramBuilder b;
        b.label("loop")
            .ld(6, 0)
            .shli(7, 6, 6)
            .add(7, 1, 7)
            .ld(8, 7)
            .andi(9, 8, 1)
            .beqz(9, "even")
            .shli(9, 8, 6)
            .add(9, 2, 9)
            .ld(9, 9);
        b.label("even")
            .addi(3, 3, 1)
            .cmpltu(10, 3, 4)
            .bnez(10, "loop")
            .halt();
        prog = b.build();
        mcfg.stridePrefetcher = false;
        memsys = std::make_unique<MemorySystem>(mcfg, mem);

        d.stridePc = 0;
        d.stride = 8;
        d.strideDest = 6;
        d.spawnAddr = a_base;
        d.flr = kInvalidPc;         // divergent: run to stride pc
        d.divergentChain = true;

        regs.value[0] = a_base;
        regs.value[1] = b_base;
        regs.value[2] = d_base;
        regs.value[3] = 0;
        regs.value[4] = 1024;
    }

    SimMemory mem;
    MemConfig mcfg;
    std::unique_ptr<MemorySystem> memsys;
    Program prog;
    DiscoveryResult d;
    RegState regs;
    SubthreadConfig cfg;
    Addr a_base = 0, b_base = 0, d_base = 0;
};

TEST_F(DivergeRig, ReconvergenceCoversBothPaths)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 32);
    EXPECT_GT(ep.reconvPushes, 0u);
    EXPECT_EQ(ep.lanesInvalidated, 0u);
    // Odd lanes must have their D line prefetched (B[i]=i, so odd
    // lanes are exactly the odd indices).
    for (unsigned k = 1; k < 32; k += 2)
        EXPECT_TRUE(memsys->present(d_base + (uint64_t(k) << 6)))
            << "odd lane " << k;
}

TEST_F(DivergeRig, VrStyleInvalidatesDivergentLanes)
{
    cfg.gpuReconvergence = false;
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runVectorized(d, regs, 100, 32);
    EXPECT_EQ(ep.reconvPushes, 0u);
    EXPECT_GT(ep.lanesInvalidated, 0u);
}

TEST_F(DivergeRig, VrEpisodeFromStallPoint)
{
    // Train a detector so the VR-style hunt can find the strider.
    StrideDetector det;
    for (int i = 0; i < 6; ++i)
        det.observe(0, a_base + i * 8);

    cfg.gpuReconvergence = false;
    VectorSubthread sub(cfg, prog, mem, *memsys);
    // Stall point mid-loop: the walk wraps around to the strider.
    regs.value[0] = a_base + 6 * 8;
    regs.value[3] = 6;
    EpisodeStats ep = sub.runVrStyle(/*start=*/4, regs, 1000, det, 64);
    EXPECT_EQ(ep.huntExit, EpisodeStats::HuntExit::kFound);
    EXPECT_EQ(ep.lanesSpawned, cfg.maxLanes);
    EXPECT_GT(ep.laneLoads, cfg.maxLanes);
}

} // namespace
} // namespace dvr
