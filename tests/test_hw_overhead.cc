/** @file Hardware-overhead accounting (paper Section 4.4). */

#include <gtest/gtest.h>

#include "runahead/hw_overhead.hh"

namespace dvr {
namespace {

TEST(HwOverhead, TotalMatchesPaper)
{
    EXPECT_EQ(totalHwOverheadBytes(), 1139u);
}

TEST(HwOverhead, PerStructureValuesMatchPaper)
{
    const auto items = computeHwOverhead();
    auto find = [&](const std::string &n) -> unsigned {
        for (const auto &i : items) {
            if (i.name == n)
                return i.bytes;
        }
        ADD_FAILURE() << "missing structure " << n;
        return 0;
    };
    EXPECT_EQ(find("stride_detector"), 460u);
    EXPECT_EQ(find("vrat"), 288u);
    EXPECT_EQ(find("vir"), 86u);
    EXPECT_EQ(find("frontend_buffer"), 64u);
    EXPECT_EQ(find("reconvergence_stack"), 176u);
    EXPECT_EQ(find("flr"), 6u);
    EXPECT_EQ(find("lcr"), 2u);
    EXPECT_EQ(find("loop_bound_detector"), 48u);
    EXPECT_EQ(find("taint_tracker"), 2u);
    EXPECT_EQ(find("ndm_ilr"), 6u);
}

TEST(HwOverhead, ScalesWithParameters)
{
    HwOverheadParams wide;
    wide.lanes = 256;
    wide.vratCopies = 32;
    wide.virCopies = 32;
    EXPECT_GT(totalHwOverheadBytes(wide), 1139u);

    HwOverheadParams narrow;
    narrow.strideEntries = 16;
    EXPECT_LT(totalHwOverheadBytes(narrow), 1139u);
}

} // namespace
} // namespace dvr
