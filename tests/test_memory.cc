/** @file SimMemory, Cache, MshrTracker, and DramModel unit tests. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "mem/sim_memory.hh"

namespace dvr {
namespace {

TEST(SimMemory, AllocAlignsAndAdvances)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(100);
    EXPECT_EQ(a % kLineBytes, 0u);
    const Addr b = m.alloc(8, 8);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(b % 8, 0u);
}

TEST(SimMemory, ReadWriteRoundTripAllWidths)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(64);
    m.write(a, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.read(a, 4), 0x55667788ULL);
    EXPECT_EQ(m.read(a, 1), 0x88ULL);
    m.write(a + 4, 4, 0xdeadbeef);
    EXPECT_EQ(m.read(a, 8), 0xdeadbeef55667788ULL);
}

TEST(SimMemory, BoundsChecking)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(64);
    EXPECT_TRUE(m.validRange(a, 64));
    EXPECT_FALSE(m.validRange(0, 1));           // null page unmapped
    EXPECT_FALSE(m.validRange(a + 64, 1));      // past brk
    uint64_t v;
    EXPECT_FALSE(m.tryRead(a + 64, 8, v));
    EXPECT_TRUE(m.tryRead(a, 8, v));
}

TEST(SimMemory, CompactPreservesContentAndCopies)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(64);
    m.write(a, 8, 42);
    m.compact();
    EXPECT_EQ(m.read(a, 8), 42u);
    SimMemory copy = m;     // pristine copies for reruns
    copy.write(a, 8, 43);
    EXPECT_EQ(m.read(a, 8), 42u);
    EXPECT_EQ(copy.read(a, 8), 43u);
}

TEST(Cache, HitAfterInsertMissBefore)
{
    Cache c("t", 4 * 1024, 4);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    c.insert(0x1000, 100, Requester::kMain, false);
    CacheLine *l = c.lookup(0x1000);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->fillTime, 100u);
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c("t", 2 * kLineBytes, 2);    // 1 set, 2 ways
    c.insert(0 * kLineBytes, 0, Requester::kMain, false);
    c.insert(1 * kLineBytes, 0, Requester::kMain, false);
    ASSERT_NE(c.lookup(0), nullptr);    // touch line 0: 1 becomes LRU
    auto v = c.insert(2 * kLineBytes, 0, Requester::kMain, false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 1 * kLineBytes);
    EXPECT_NE(c.peek(0), nullptr);
    EXPECT_EQ(c.peek(1 * kLineBytes), nullptr);
}

TEST(Cache, DirtyVictimReported)
{
    Cache c("t", 2 * kLineBytes, 2);
    c.insert(0, 0, Requester::kMain, true);
    c.insert(1 * kLineBytes, 0, Requester::kMain, false);
    auto v = c.insert(2 * kLineBytes, 0, Requester::kMain, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, RefillKeepsDirtyBit)
{
    Cache c("t", 4 * 1024, 4);
    c.insert(0x40, 0, Requester::kMain, true);
    c.insert(0x40, 10, Requester::kHwPrefetch, false);
    const CacheLine *l = c.peek(0x40);
    ASSERT_NE(l, nullptr);
    EXPECT_TRUE(l->dirty);
}

TEST(Cache, InvalidateRemoves)
{
    Cache c("t", 4 * 1024, 4);
    c.insert(0x80, 0, Requester::kMain, false);
    c.invalidate(0x80);
    EXPECT_EQ(c.peek(0x80), nullptr);
}

TEST(Mshr, NoDelayBelowCapacity)
{
    MshrTracker m(4);
    for (int i = 0; i < 4; ++i) {
        const Cycle s = m.acquire(100);
        EXPECT_EQ(s, 100u);
        m.commit(s, 300);
    }
}

TEST(Mshr, DelaysWhenFull)
{
    MshrTracker m(2);
    for (const Cycle end : {Cycle(300), Cycle(400)}) {
        const Cycle s = m.acquire(100);
        m.commit(s, end);
    }
    const Cycle s = m.acquire(150);     // both busy until 300/400
    EXPECT_EQ(s, 300u);
    m.commit(s, 500);
}

TEST(Mshr, ExpiredEntriesFree)
{
    MshrTracker m(1);
    const Cycle s = m.acquire(0);
    m.commit(s, 50);
    EXPECT_EQ(m.acquire(100), 100u);    // old miss long done
}

TEST(Mshr, LowPriorityLeavesReserve)
{
    MshrTracker m(8);   // low-priority cap = 8 - 4 = 4
    for (int i = 0; i < 4; ++i) {
        const Cycle s = m.acquire(0);
        m.commit(s, 1000);
    }
    // Low-priority must wait; a demand request still fits.
    const Cycle low = m.acquire(10, true);
    EXPECT_EQ(low, 1000u);
    m.commit(low, 1100);
    const Cycle demand = m.acquire(10, false);
    EXPECT_EQ(demand, 10u);
    m.commit(demand, 1100);
}

TEST(Mshr, OccupancyIntegral)
{
    MshrTracker m(4);
    for (int i = 0; i < 2; ++i) {
        const Cycle s = m.acquire(0);
        m.commit(s, 100);
    }
    EXPECT_DOUBLE_EQ(m.busyIntegral(), 200.0);
    EXPECT_DOUBLE_EQ(m.avgOccupancy(100), 2.0);
}

TEST(Mshr, TryAcquireDropsWhenFull)
{
    MshrTracker m(1);
    const Cycle s = m.acquire(0);
    m.commit(s, 1000);
    EXPECT_FALSE(m.tryAcquire(10));
    EXPECT_EQ(m.prefetchDrops(), 1u);
    EXPECT_TRUE(m.tryAcquire(2000));
    m.commit(2000, 3000);
}

TEST(Dram, MinLatencyAndBandwidthSerialization)
{
    DramModel d(200, 5);
    EXPECT_EQ(d.access(0, Requester::kMain), 200u);
    // Second access queues behind the first transfer slot.
    EXPECT_EQ(d.access(0, Requester::kMain), 205u);
    EXPECT_EQ(d.access(0, Requester::kRunahead), 210u);
    EXPECT_EQ(d.accesses(Requester::kMain), 2u);
    EXPECT_EQ(d.accesses(Requester::kRunahead), 1u);
    EXPECT_EQ(d.totalAccesses(), 3u);
}

TEST(Dram, IdleChannelNoQueueing)
{
    DramModel d(200, 5);
    d.access(0, Requester::kMain);
    EXPECT_EQ(d.access(1000, Requester::kMain), 1200u);
}

} // namespace
} // namespace dvr
