/**
 * @file
 * Unit tests for DVR's hardware analyses: the RPT stride detector,
 * the Vector Taint Tracker, the loop-bound detector (FLR/LCR/SBB),
 * Discovery Mode, the VRAT, and the reconvergence stack.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "runahead/discovery.hh"
#include "runahead/loop_bound.hh"
#include "runahead/reconvergence_stack.hh"
#include "runahead/stride_detector.hh"
#include "runahead/taint_tracker.hh"
#include "runahead/vrat.hh"

namespace dvr {
namespace {

// --- stride detector ---------------------------------------------------

TEST(StrideDetect, ConfidentAfterRepeatedStride)
{
    StrideDetector d;
    const StrideEntry *e = nullptr;
    for (int i = 0; i < 6; ++i)
        e = d.observe(7, 0x1000 + i * 8);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->confident());
    EXPECT_EQ(e->stride, 8);
}

TEST(StrideDetect, RandomNeverConfident)
{
    StrideDetector d;
    const Addr seq[] = {0x10, 0x9999, 0x40, 0xbeef, 0x1234, 0x8};
    const StrideEntry *e = nullptr;
    for (Addr a : seq)
        e = d.observe(7, a);
    EXPECT_EQ(e, nullptr);
}

TEST(StrideDetect, StrideChangeDropsConfidence)
{
    StrideDetector d;
    for (int i = 0; i < 6; ++i)
        d.observe(7, 0x1000 + i * 8);
    // One outlier: confidence dips but the learned stride survives.
    const StrideEntry *e = d.observe(7, 0x9000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->stride, 8);
    // Persistent irregularity kills confidence.
    EXPECT_EQ(d.observe(7, 0x5000), nullptr);
    EXPECT_EQ(d.observe(7, 0xa000), nullptr);
    EXPECT_FALSE(d.find(7)->confident());
}

TEST(StrideDetect, LruReplacementUnderPressure)
{
    StrideDetector d(4);
    for (InstPc pc = 0; pc < 8; ++pc)
        d.observe(pc, pc * 0x1000);
    // Early PCs were evicted by later ones.
    EXPECT_EQ(d.find(0), nullptr);
    EXPECT_NE(d.find(7), nullptr);
}

TEST(StrideDetect, SeenInDiscoveryBits)
{
    StrideDetector d;
    for (int i = 0; i < 6; ++i)
        d.observe(9, 0x1000 + i * 8);
    d.clearDiscoveryBits();
    EXPECT_FALSE(d.markSeenInDiscovery(9));     // first time
    EXPECT_TRUE(d.markSeenInDiscovery(9));      // second: more inner
    d.clearDiscoveryBits();
    EXPECT_FALSE(d.markSeenInDiscovery(9));
}

// --- taint tracker ------------------------------------------------------

TEST(Taint, SeedsAndPropagates)
{
    TaintTracker t;
    t.reset(3);
    EXPECT_TRUE(t.isTainted(3));
    EXPECT_EQ(t.mask(), 1u << 3);

    // r5 = r3 + r4 -> r5 tainted, source was tainted.
    Instruction add{.op = Opcode::kAdd, .rd = 5, .rs1 = 3, .rs2 = 4};
    EXPECT_TRUE(t.observe(add));
    EXPECT_TRUE(t.isTainted(5));

    // r6 = hash(r5) -> transitive.
    Instruction h{.op = Opcode::kHash, .rd = 6, .rs1 = 5};
    EXPECT_TRUE(t.observe(h));
    EXPECT_TRUE(t.isTainted(6));
}

TEST(Taint, OverwriteFromUntaintedKills)
{
    TaintTracker t;
    t.reset(3);
    Instruction mv{.op = Opcode::kMov, .rd = 3, .rs1 = 1};
    EXPECT_FALSE(t.observe(mv));
    EXPECT_FALSE(t.isTainted(3));
    EXPECT_EQ(t.mask(), 0u);
}

TEST(Taint, LoadsPropagateThroughAddress)
{
    TaintTracker t;
    t.reset(2);
    Instruction ld{.op = Opcode::kLoad, .rd = 7, .rs1 = 2};
    EXPECT_TRUE(t.observe(ld));
    EXPECT_TRUE(t.isTainted(7));
}

TEST(Taint, StoresAndBranchesReadOnly)
{
    TaintTracker t;
    t.reset(2);
    Instruction st{.op = Opcode::kStore, .rs1 = 1, .rs2 = 2};
    EXPECT_TRUE(t.observe(st));     // data source tainted
    Instruction br{.op = Opcode::kBnez, .rs1 = 2};
    EXPECT_TRUE(t.observe(br));
    EXPECT_EQ(t.mask(), 1u << 2);   // no dest changes
}

// --- loop bound ---------------------------------------------------------

/**
 * Build the canonical loop tail (cmpltu i, n; bnez -> stride pc) and
 * run it through the detector.
 */
TEST(LoopBound, InfersRemainingIterations)
{
    LoopBoundDetector lb;
    RegState entry;
    entry.value[1] = 10;        // i
    entry.value[2] = 100;       // n (constant)
    lb.begin(/*stride_pc=*/20, entry);
    lb.noteFinalLoad(24);

    Instruction cmp{.op = Opcode::kCmpLtU, .rd = 5, .rs1 = 1,
                    .rs2 = 2};
    lb.observe(30, cmp);
    Instruction br{.op = Opcode::kBnez, .rs1 = 5, .target = 20};
    br.op = Opcode::kBnez;
    lb.observe(31, br);
    EXPECT_TRUE(lb.seenBackwardBranch());
    EXPECT_EQ(lb.backwardBranchPc(), 31u);
    EXPECT_FALSE(lb.divergentChain());

    RegState exit = entry;
    exit.value[1] = 11;         // i advanced by 1
    const LoopBoundResult r = lb.finish(exit);
    ASSERT_TRUE(r.valid);
    EXPECT_EQ(r.remaining, 89);
    EXPECT_EQ(r.increment, 1);
    EXPECT_EQ(r.inductionReg, 1);
    EXPECT_EQ(r.boundValue, 100u);
}

TEST(LoopBound, FlrUpdateResetsLcrAndSbb)
{
    LoopBoundDetector lb;
    RegState entry;
    lb.begin(20, entry);
    Instruction cmp{.op = Opcode::kCmpLtU, .rd = 5, .rs1 = 1,
                    .rs2 = 2};
    lb.observe(30, cmp);
    Instruction br{.op = Opcode::kBnez, .rs1 = 5, .target = 20};
    lb.observe(31, br);
    EXPECT_TRUE(lb.seenBackwardBranch());
    lb.noteFinalLoad(25);       // a deeper dependent load appears
    EXPECT_FALSE(lb.seenBackwardBranch());
    EXPECT_EQ(lb.flr(), 25u);
}

TEST(LoopBound, DivergentChainFlagged)
{
    LoopBoundDetector lb;
    RegState entry;
    lb.begin(20, entry);
    lb.noteFinalLoad(24);
    // A forward branch between the FLR and the loop branch.
    Instruction fwd{.op = Opcode::kBeqz, .rs1 = 9, .target = 40};
    lb.observe(26, fwd);
    Instruction cmp{.op = Opcode::kCmpLtU, .rd = 5, .rs1 = 1,
                    .rs2 = 2};
    lb.observe(30, cmp);
    Instruction br{.op = Opcode::kBnez, .rs1 = 5, .target = 20};
    lb.observe(31, br);
    EXPECT_TRUE(lb.divergentChain());
}

TEST(LoopBound, NoMatchWhenBothInputsMove)
{
    LoopBoundDetector lb;
    RegState entry;
    entry.value[1] = 10;
    entry.value[2] = 100;
    lb.begin(20, entry);
    Instruction cmp{.op = Opcode::kCmpLtU, .rd = 5, .rs1 = 1,
                    .rs2 = 2};
    lb.observe(30, cmp);
    Instruction br{.op = Opcode::kBnez, .rs1 = 5, .target = 20};
    lb.observe(31, br);
    RegState exit = entry;
    exit.value[1] = 11;
    exit.value[2] = 99;
    EXPECT_FALSE(lb.finish(exit).valid);
}

TEST(LoopBound, RemainingIterationsShapes)
{
    LcrInfo lcr;
    lcr.valid = true;
    lcr.cmpOp = Opcode::kCmpLtU;
    lcr.branchOp = Opcode::kBnez;
    EXPECT_EQ(remainingIterations(lcr, 10, 100, 1), 90);
    EXPECT_EQ(remainingIterations(lcr, 10, 100, 3), 30);
    EXPECT_EQ(remainingIterations(lcr, 100, 100, 1), 0);
    EXPECT_EQ(remainingIterations(lcr, 10, 100, 0), -1);

    lcr.cmpOp = Opcode::kCmpNe;
    EXPECT_EQ(remainingIterations(lcr, 10, 20, 2), 5);
    EXPECT_EQ(remainingIterations(lcr, 10, 21, 2), -1);  // never hits

    lcr.cmpOp = Opcode::kCmpEq;
    lcr.branchOp = Opcode::kBeqz;   // loop while i != n
    EXPECT_EQ(remainingIterations(lcr, 10, 14, 1), 4);
}

// --- VRAT ----------------------------------------------------------------

TEST(VratTest, VectorizeAllocatesGroups)
{
    Vrat v(64, 64, 16);
    EXPECT_TRUE(v.vectorize(1));
    EXPECT_EQ(v.vecInUse(), 16u);
    EXPECT_TRUE(v.vectorize(1));    // idempotent (in-order reuse)
    EXPECT_EQ(v.vecInUse(), 16u);
    EXPECT_TRUE(v.vectorize(2));
    EXPECT_TRUE(v.vectorize(3));
    EXPECT_TRUE(v.vectorize(4));
    EXPECT_EQ(v.vecInUse(), 64u);
    EXPECT_FALSE(v.vectorize(5));   // free list exhausted
    EXPECT_EQ(v.peakVecInUse(), 64u);
}

TEST(VratTest, ScalarizeFreesVectorGroup)
{
    Vrat v(32, 64, 16);
    EXPECT_TRUE(v.vectorize(1));
    EXPECT_TRUE(v.vectorize(2));
    EXPECT_FALSE(v.vectorize(3));
    EXPECT_TRUE(v.scalarize(1));    // WAW overwrite by a scalar
    EXPECT_FALSE(v.isVector(1));
    EXPECT_TRUE(v.vectorize(3));    // freed group is reusable
}

TEST(VratTest, ResetRestoresScalarMappings)
{
    Vrat v(128, 64, 16);
    v.vectorize(1);
    v.reset();
    EXPECT_EQ(v.vecInUse(), 0u);
    EXPECT_FALSE(v.isVector(1));
    EXPECT_EQ(v.intInUse(), unsigned(kNumArchRegs));
}

// --- reconvergence stack --------------------------------------------------

TEST(ReconvStack, PushPopLifo)
{
    ReconvergenceStack s(8);
    LaneMask a, b;
    a.set(1);
    b.set(2);
    EXPECT_TRUE(s.push(100, a));
    EXPECT_TRUE(s.push(200, b));
    EXPECT_EQ(s.size(), 2u);
    auto e = s.pop();
    EXPECT_EQ(e.pc, 200u);
    EXPECT_TRUE(e.mask.test(2));
    e = s.pop();
    EXPECT_EQ(e.pc, 100u);
    EXPECT_TRUE(s.empty());
}

TEST(ReconvStack, OverflowDropsGroup)
{
    ReconvergenceStack s(2);
    LaneMask m;
    m.set(0);
    EXPECT_TRUE(s.push(1, m));
    EXPECT_TRUE(s.push(2, m));
    EXPECT_FALSE(s.push(3, m));
    EXPECT_EQ(s.overflowDrops, 1u);
    EXPECT_EQ(s.pushes, 2u);
}

// --- discovery mode --------------------------------------------------------

/** Build the Figure-1 style camel loop and drive discovery by hand. */
class DiscoveryRig : public testing::Test
{
  protected:
    DiscoveryRig()
    {
        // loop: ld r6=[r0]; hash r7,r6; shli r11,r7,6; add r11,r1,r11;
        //       ld r8=[r11]; addi r0,r0,8; cmpltu r10,r3,r4;
        //       bnez r10,loop; halt
        ProgramBuilder b;
        b.label("loop")
            .ld(6, 0)
            .hash(7, 6)
            .shli(11, 7, 6)
            .add(11, 1, 11)
            .ld(8, 11)
            .addi(3, 3, 1)
            .cmpltu(10, 3, 4)
            .bnez(10, "loop")
            .halt();
        prog = b.build();
    }

    RetireInfo info(InstPc pc, uint64_t seq)
    {
        RetireInfo ri;
        ri.pc = pc;
        ri.seq = seq;
        ri.inst = &prog.at(pc);
        return ri;
    }

    Program prog;
    StrideDetector det;
    RegState regs;
};

TEST_F(DiscoveryRig, FindsChainAndBound)
{
    DiscoveryMode disc(det);
    // Make the striding load confident.
    const StrideEntry *e = nullptr;
    for (int i = 0; i < 6; ++i)
        e = det.observe(0, 0x4000 + i * 8);
    ASSERT_NE(e, nullptr);

    regs.value[3] = 90;     // i
    regs.value[4] = 100;    // n
    disc.begin(*e, prog.at(0), regs);
    ASSERT_TRUE(disc.active());

    // One loop iteration of retires.
    uint64_t seq = 0;
    for (InstPc pc = 1; pc < 8; ++pc) {
        auto st = disc.observe(info(pc, seq++), regs);
        ASSERT_EQ(st, DiscoveryMode::Status::kRunning);
    }
    regs.value[3] = 91;     // induction moved
    RetireInfo back = info(0, seq);
    back.effAddr = 0x4000 + 6 * 8;
    const auto st = disc.observe(back, regs);
    ASSERT_EQ(st, DiscoveryMode::Status::kDone);

    const DiscoveryResult &d = disc.result();
    EXPECT_EQ(d.stridePc, 0u);
    EXPECT_EQ(d.stride, 8);
    EXPECT_EQ(d.flr, 4u);               // ld r8=[r11]
    EXPECT_FALSE(d.divergentChain);
    EXPECT_EQ(d.spawnAddr, 0x4000u + 48u);
    ASSERT_TRUE(d.bound.valid);
    EXPECT_EQ(d.bound.remaining, 9);
    EXPECT_EQ(d.backwardBranchPc, 7u);
    // r6 (load), r7 (hash), r11 (addr), r8 (value) tainted.
    EXPECT_TRUE(d.taintMask & (1u << 6));
    EXPECT_TRUE(d.taintMask & (1u << 8));
    EXPECT_TRUE(d.taintMask & (1u << 11));
}

TEST_F(DiscoveryRig, AbortsOnTimeout)
{
    DiscoveryMode disc(det);
    const StrideEntry *e = nullptr;
    for (int i = 0; i < 6; ++i)
        e = det.observe(0, 0x4000 + i * 8);
    disc.begin(*e, prog.at(0), regs);
    // Never return to the striding load.
    uint64_t seq = 0;
    DiscoveryMode::Status st = DiscoveryMode::Status::kRunning;
    for (unsigned i = 0; i <= DiscoveryMode::kTimeout; ++i)
        st = disc.observe(info(5, seq++), regs);
    EXPECT_EQ(st, DiscoveryMode::Status::kAborted);
    EXPECT_FALSE(disc.active());
}

TEST_F(DiscoveryRig, SwitchesToInnerStride)
{
    DiscoveryMode disc(det);
    const StrideEntry *outer = nullptr;
    for (int i = 0; i < 6; ++i)
        outer = det.observe(0, 0x4000 + i * 8);
    // Make a second (more inner) strider at pc 4.
    for (int i = 0; i < 6; ++i)
        det.observe(4, 0x9000 + i * 8);

    disc.begin(*outer, prog.at(0), regs);
    uint64_t seq = 0;
    // pc4 seen twice before pc0 returns -> switch.
    RetireInfo r4 = info(4, seq++);
    EXPECT_EQ(disc.observe(r4, regs), DiscoveryMode::Status::kRunning);
    RetireInfo r4b = info(4, seq++);
    EXPECT_EQ(disc.observe(r4b, regs),
              DiscoveryMode::Status::kSwitched);
    EXPECT_EQ(disc.result().stridePc, 4u);
}

} // namespace
} // namespace dvr
