/**
 * @file
 * Property-style parameterized sweeps over the model's invariants:
 * cache geometry, issue-port subscription, in-order commit limits,
 * subthread lane scaling, and memory-level latency ordering.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/ooo_core.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "runahead/subthread.hh"

namespace dvr {
namespace {

// --- cache geometry -----------------------------------------------------

struct CacheGeom
{
    uint32_t size;
    uint32_t assoc;
};

class CacheGeometry : public testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometry, WorkingSetWithinCapacityAlwaysHits)
{
    const auto [size, assoc] = GetParam();
    Cache c("t", size, assoc);
    const uint32_t lines = size / kLineBytes;
    // Fill the whole capacity once, then touch it again: no line may
    // have been evicted (LRU with exact-capacity working set).
    for (uint32_t i = 0; i < lines; ++i)
        c.insert(Addr(i) * kLineBytes, 0, Requester::kMain, false);
    for (uint32_t i = 0; i < lines; ++i) {
        EXPECT_NE(c.lookup(Addr(i) * kLineBytes), nullptr)
            << "line " << i;
    }
}

TEST_P(CacheGeometry, OverCapacityEvictsExactlyTheOverflow)
{
    const auto [size, assoc] = GetParam();
    Cache c("t", size, assoc);
    const uint32_t lines = size / kLineBytes;
    unsigned evictions = 0;
    for (uint32_t i = 0; i < 2 * lines; ++i) {
        if (c.insert(Addr(i) * kLineBytes, 0, Requester::kMain, false)
                .valid) {
            ++evictions;
        }
    }
    EXPECT_EQ(evictions, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    testing::Values(CacheGeom{4 * 1024, 1}, CacheGeom{4 * 1024, 4},
                    CacheGeom{32 * 1024, 8}, CacheGeom{256 * 1024, 8},
                    CacheGeom{1 * 1024 * 1024, 16}),
    [](const testing::TestParamInfo<CacheGeom> &i) {
        return std::to_string(i.param.size / 1024) + "K_w" +
               std::to_string(i.param.assoc);
    });

// --- issue ports ---------------------------------------------------------

TEST(PortTracker, NeverOverSubscribesASlot)
{
    OooCore::PortTracker pt(Arena::forCurrentThread(), 2, 1);
    std::map<Cycle, int> per_cycle;
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
        const Cycle want = rng.nextBelow(2000);
        ++per_cycle[pt.reserve(want)];
    }
    for (const auto &[cycle, count] : per_cycle)
        EXPECT_LE(count, 2) << "cycle " << cycle;
}

TEST(PortTracker, GrantsAtOrAfterRequest)
{
    OooCore::PortTracker pt(Arena::forCurrentThread(), 1, 1);
    Rng rng(23);
    Cycle horizon = 0;
    for (int i = 0; i < 2000; ++i) {
        const Cycle want = horizon > 500 ? horizon - 500 : 0;
        const Cycle got = pt.reserve(want + rng.nextBelow(100));
        horizon = std::max(horizon, got);
    }
    SUCCEED();
}

TEST(PortTracker, UnpipelinedOccupiesLatency)
{
    OooCore::PortTracker pt(Arena::forCurrentThread(), 1, 18);     // divider-like
    EXPECT_EQ(pt.reserve(100), 100u);
    // Slot busy for 18 cycles.
    EXPECT_EQ(pt.reserve(101), 118u);
}

// --- in-order commit ------------------------------------------------------

TEST(CommitInvariant, WidthLimitedAndMonotone)
{
    struct Observer : public CoreClient
    {
        void onRetire(const RetireInfo &ri) override
        {
            EXPECT_GE(ri.commitCycle, last);
            EXPECT_GT(ri.commitCycle, ri.completeCycle);
            EXPECT_GE(ri.completeCycle, ri.issueCycle);
            EXPECT_GT(ri.issueCycle, ri.dispatchCycle);
            ++per_cycle[ri.commitCycle];
            last = ri.commitCycle;
        }
        Cycle last = 0;
        std::map<Cycle, unsigned> per_cycle;
    };

    SimMemory mem(1 << 22);
    const Addr arr = mem.alloc(1 << 16);
    ProgramBuilder b;
    b.li(0, int64_t(arr)).li(1, 0).li(2, 2048);
    b.label("loop")
        .shli(3, 1, 3)
        .add(3, 0, 3)
        .ld(4, 3)
        .add(5, 5, 4)
        .addi(1, 1, 1)
        .andi(6, 1, 2047)
        .cmpltu(7, 1, 2)
        .bnez(7, "loop")
        .halt();
    Program p = b.build();
    Observer obs;
    MemorySystem ms(MemConfig(), mem);
    OooCore core(CoreConfig(), p, mem, ms, &obs);
    core.run(10'000);
    for (const auto &[cycle, n] : obs.per_cycle)
        EXPECT_LE(n, core.config().width) << "cycle " << cycle;
}

// --- subthread lane scaling -------------------------------------------------

class LaneSweep : public testing::TestWithParam<unsigned>
{
};

TEST_P(LaneSweep, LaneLoadsScaleWithLanes)
{
    const unsigned lanes = GetParam();
    SimMemory mem(64 << 20);
    const Addr a_base = mem.alloc(4096 * 8);
    const Addr b_base = mem.alloc(4096 << 6);
    for (uint64_t i = 0; i < 4096; ++i)
        mem.write64(a_base, i, (i * 13) % 4096);
    ProgramBuilder b;
    b.label("loop")
        .ld(6, 0)
        .shli(7, 6, 6)
        .add(7, 1, 7)
        .ld(8, 7)
        .addi(0, 0, 8)
        .jmp("loop");
    Program prog = b.build();
    MemConfig mc;
    mc.stridePrefetcher = false;
    MemorySystem ms(mc, mem);

    SubthreadConfig cfg;
    cfg.maxLanes = 256;
    cfg.vecPhysFree = 256;
    DiscoveryResult d;
    d.stridePc = 0;
    d.stride = 8;
    d.strideDest = 6;
    d.spawnAddr = a_base;
    d.flr = 3;
    RegState regs;
    regs.value[0] = a_base;
    regs.value[1] = b_base;

    VectorSubthread sub(cfg, prog, mem, ms);
    const EpisodeStats ep = sub.runVectorized(d, regs, 10, lanes);
    EXPECT_EQ(ep.lanesSpawned, lanes);
    EXPECT_EQ(ep.laneLoads, 2u * lanes);
    // More lanes -> strictly more distinct lines prefetched.
    unsigned present = 0;
    for (unsigned k = 0; k < lanes; ++k) {
        const uint64_t idx = mem.read64(a_base, k);
        present += ms.present(b_base + (idx << 6));
    }
    EXPECT_EQ(present, lanes);
}

INSTANTIATE_TEST_SUITE_P(Lanes, LaneSweep,
                         testing::Values(1u, 8u, 32u, 128u, 256u));

// --- memory latency ordering --------------------------------------------------

TEST(LatencyOrdering, DeeperLevelsAreSlower)
{
    SimMemory mem(64 << 20);
    MemConfig mc;
    mc.stridePrefetcher = false;
    MemorySystem ms(mc, mem);
    const Addr a = mem.alloc(1 << 20);

    const MemAccess dram = ms.access(a, 8, 0, false, Requester::kMain,
                                     1, 0);
    Cycle t = dram.done;
    const MemAccess l1 = ms.access(a, 8, t, false, Requester::kMain,
                                   1, 0);
    // Evict from L1 only (fill one L1 set's worth of conflicting
    // lines); the line stays in L2.
    const unsigned l1_sets = mc.l1Size / (mc.l1Assoc * kLineBytes);
    for (unsigned w = 1; w <= mc.l1Assoc; ++w) {
        t = ms.access(a + Addr(w) * l1_sets * kLineBytes, 8, t, false,
                      Requester::kMain, 1, 0)
                .done;
    }
    const MemAccess l2 = ms.access(a, 8, t, false, Requester::kMain,
                                   1, 0);
    EXPECT_LT(l1.done - dram.done, l2.done - t);
    EXPECT_LT(l2.done - t, dram.done);
    EXPECT_EQ(l1.level, HitLevel::kL1);
    EXPECT_EQ(l2.level, HitLevel::kL2);
}

} // namespace
} // namespace dvr
