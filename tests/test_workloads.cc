/**
 * @file
 * Workload-level tests: every kernel, at test scale, must run to
 * completion and match its natively computed golden model -- under the
 * baseline core AND under every runahead technique (runahead is
 * speculative and must never corrupt architectural state).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace dvr {
namespace {

struct WorkloadCase
{
    const char *kernel;
    const char *input;      // empty: kernel default
    unsigned scaleShift;
};

std::string
caseName(const testing::TestParamInfo<WorkloadCase> &info)
{
    std::string n = info.param.kernel;
    if (info.param.input[0])
        n += std::string("_") + info.param.input;
    return n;
}

class WorkloadGolden : public testing::TestWithParam<WorkloadCase>
{
};

SimConfig
testConfig(Technique t)
{
    SimConfig cfg = SimConfig::baseline(t);
    cfg.maxInstructions = 40'000'000;   // enough to finish
    cfg.memoryBytes = 64ULL << 20;
    return cfg;
}

TEST_P(WorkloadGolden, BaselineMatchesGoldenModel)
{
    const auto &c = GetParam();
    WorkloadParams wp;
    wp.scaleShift = c.scaleShift;
    if (c.input[0])
        wp.input = c.input;
    SimResult r = Simulator::run(testConfig(Technique::kBase),
                                 c.kernel, wp);
    ASSERT_TRUE(r.halted) << "did not finish in budget";
    EXPECT_TRUE(r.verified) << "golden-model mismatch";
}

TEST_P(WorkloadGolden, DvrPreservesArchitecturalState)
{
    const auto &c = GetParam();
    WorkloadParams wp;
    wp.scaleShift = c.scaleShift;
    if (c.input[0])
        wp.input = c.input;
    SimResult r = Simulator::run(testConfig(Technique::kDvr),
                                 c.kernel, wp);
    ASSERT_TRUE(r.halted);
    EXPECT_TRUE(r.verified) << "DVR corrupted architectural results";
}

TEST_P(WorkloadGolden, OtherTechniquesPreserveState)
{
    const auto &c = GetParam();
    WorkloadParams wp;
    wp.scaleShift = c.scaleShift;
    if (c.input[0])
        wp.input = c.input;
    for (Technique t : {Technique::kPre, Technique::kImp,
                        Technique::kVr, Technique::kDvrOffload,
                        Technique::kDvrDiscovery, Technique::kOracle}) {
        SimResult r = Simulator::run(testConfig(t), c.kernel, wp);
        ASSERT_TRUE(r.halted) << techniqueName(t);
        EXPECT_TRUE(r.verified) << techniqueName(t);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadGolden,
    testing::Values(WorkloadCase{"bfs", "KR", 7},
                    WorkloadCase{"bfs", "UR", 7},
                    WorkloadCase{"bc", "KR", 7},
                    WorkloadCase{"cc", "TW", 7},
                    WorkloadCase{"pr", "ORK", 7},
                    WorkloadCase{"sssp", "LJN", 7},
                    WorkloadCase{"camel", "", 7},
                    WorkloadCase{"graph500", "", 7},
                    WorkloadCase{"hj2", "", 7},
                    WorkloadCase{"hj8", "", 7},
                    WorkloadCase{"kangaroo", "", 7},
                    WorkloadCase{"nas_cg", "", 7},
                    WorkloadCase{"nas_is", "", 7},
                    WorkloadCase{"random_access", "", 7}),
    caseName);

// Cross-input and cross-scale sweep: the golden model must hold for
// every graph shape (power-law and uniform) and for more than one
// data-set scale (catches size-dependent kernel bugs).
INSTANTIATE_TEST_SUITE_P(
    InputSweep, WorkloadGolden,
    testing::Values(WorkloadCase{"bfs", "LJN", 7},
                    WorkloadCase{"bfs", "ORK", 7},
                    WorkloadCase{"bfs", "TW", 7},
                    WorkloadCase{"cc", "KR", 7},
                    WorkloadCase{"cc", "UR", 7},
                    WorkloadCase{"sssp", "UR", 7},
                    WorkloadCase{"pr", "UR", 7},
                    WorkloadCase{"bc", "UR", 7},
                    WorkloadCase{"bfs", "KR", 5},
                    WorkloadCase{"camel", "", 5},
                    WorkloadCase{"nas_cg", "", 5}),
    caseName);

} // namespace
} // namespace dvr
