/**
 * @file
 * Parallel experiment runner: determinism across thread counts
 * (results must be bit-identical however many workers execute the
 * batch), submission-order results, deterministic exception
 * propagation, and edge cases.
 */

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace dvr {
namespace {

WorkloadParams
smallParams()
{
    WorkloadParams wp;
    wp.scaleShift = 6;      // tiny data sets: tests stay fast
    return wp;
}

SimConfig
smallConfig(Technique t)
{
    SimConfig cfg = SimConfig::baseline(t);
    cfg.maxInstructions = 60'000;
    return cfg;
}

TEST(Runner, BitIdenticalAcrossThreadCounts)
{
    const PreparedWorkload pw("bfs", "KR", smallParams(),
                              SimConfig().memoryBytes);
    const SimConfig cfg = smallConfig(Technique::kDvr);

    // Serial reference, no runner involved.
    const SimResult serial = pw.run(cfg);
    ASSERT_GT(serial.core.instructions, 0u);

    std::vector<SimJob> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back({&pw, cfg, "dvr#" + std::to_string(i)});

    for (unsigned threads : {1u, 4u}) {
        Runner runner(threads);
        EXPECT_EQ(runner.threads(), threads);
        const std::vector<SimResult> results = runner.runAll(jobs);
        ASSERT_EQ(results.size(), jobs.size());
        for (const SimResult &r : results) {
            // Full StatSet equality: every named stat, every double
            // bit pattern, must match the serial run.
            EXPECT_EQ(r.stats.all(), serial.stats.all())
                << "threads=" << threads;
            EXPECT_EQ(r.core.instructions, serial.core.instructions);
            EXPECT_EQ(r.core.cycles, serial.core.cycles);
        }
    }
}

TEST(Runner, ResultsInSubmissionOrder)
{
    const PreparedWorkload pw("camel", "", smallParams(),
                              SimConfig().memoryBytes);
    // Distinct budgets make each job's result identifiable.
    const std::vector<uint64_t> budgets = {2'000, 8'000, 4'000,
                                           16'000, 1'000, 12'000};
    std::vector<SimJob> jobs;
    std::vector<SimResult> expected;
    for (uint64_t b : budgets) {
        SimConfig cfg = smallConfig(Technique::kBase);
        cfg.maxInstructions = b;
        expected.push_back(pw.run(cfg));
        jobs.push_back({&pw, cfg, "budget" + std::to_string(b)});
    }

    Runner runner(3);
    const std::vector<SimResult> results = runner.runAll(jobs);
    ASSERT_EQ(results.size(), budgets.size());
    for (size_t i = 0; i < budgets.size(); ++i) {
        EXPECT_EQ(results[i].core.instructions,
                  expected[i].core.instructions)
            << "index " << i;
        EXPECT_EQ(results[i].stats.all(), expected[i].stats.all())
            << "index " << i;
    }
}

TEST(Runner, PropagatesFirstExceptionBySubmissionOrder)
{
    const PreparedWorkload pw("camel", "", smallParams(),
                              SimConfig().memoryBytes);
    const SimConfig cfg = smallConfig(Technique::kBase);

    std::vector<SimJob> jobs;
    jobs.push_back({&pw, cfg, "ok"});
    jobs.push_back({nullptr, cfg, "first-bad"});
    jobs.push_back({nullptr, cfg, "second-bad"});
    jobs.push_back({&pw, cfg, "ok2"});

    Runner runner(4);
    try {
        runner.runAll(jobs);
        FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error &e) {
        // Always the earliest failed job, whatever thread ran it.
        EXPECT_NE(std::string(e.what()).find("first-bad"),
                  std::string::npos)
            << e.what();
    }

    // The pool survives a failed batch.
    const std::vector<SimJob> retry = {{&pw, cfg, "ok"}};
    EXPECT_EQ(runner.runAll(retry).size(), 1u);
}

TEST(Runner, ZeroJobsReturnsEmpty)
{
    Runner runner(2);
    EXPECT_TRUE(runner.runAll({}).empty());
}

TEST(Runner, ZeroThreadsClampsToOne)
{
    Runner runner(0);
    EXPECT_EQ(runner.threads(), 1u);
}

TEST(Runner, DefaultJobsHonorsEnv)
{
    ::setenv("DVR_JOBS", "3", 1);
    EXPECT_EQ(Runner::defaultJobs(), 3u);
    ::unsetenv("DVR_JOBS");
    EXPECT_GE(Runner::defaultJobs(), 1u);
}

TEST(Runner, JobsFromArgsParsesFlag)
{
    const char *argv1[] = {"bench", "--jobs", "5"};
    EXPECT_EQ(Runner::jobsFromArgs(3, const_cast<char **>(argv1)), 5u);
    const char *argv2[] = {"bench", "--jobs=7"};
    EXPECT_EQ(Runner::jobsFromArgs(2, const_cast<char **>(argv2)), 7u);
}

} // namespace
} // namespace dvr
