#!/usr/bin/env bash
# Crash-resume proof for dvr_serve (the ISSUE's acceptance check):
# run the same sweep twice — once uninterrupted, once SIGKILLed
# mid-flight and restarted — and assert that
#
#   1. the restart never re-executes journaled points (the serve
#      counters prove it: journal_resumed > 0, and points_run over
#      both segments sums to at most the point count),
#   2. the final MANIFEST contains every point exactly once (no
#      duplicate labels), and
#   3. the interrupted-and-resumed manifest is byte-identical to the
#      uninterrupted one modulo the wall_seconds / wall_segments /
#      host lines.
#
# Usage: serve_crash_resume.sh <dvr_serve-binary> <work-dir>

set -u

DVR_SERVE="$1"
WORK="$2"

# Big enough per-point budget that the SIGKILL below reliably lands
# mid-sweep (~0.5 s/point); identical for all three daemon runs, since
# the budget is part of the resolved config and thus the cache key.
export DVR_INSTS="${DVR_INSTS:-2000000}"
export DVR_SCALE_SHIFT="${DVR_SCALE_SHIFT:-6}"

fail() {
    echo "serve_crash_resume: FAIL: $*" >&2
    exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK"

# A sweep wide enough that a mid-flight kill reliably lands between
# journal appends: 2 techniques x 4 ROB sizes on two kernels.
cat > "$WORK/sweep.json" <<'EOF'
{
  "workload": "bfs", "input": "KR",
  "points": [
    {"label": "bfs/base-128", "set": {"core.robSize": "128"}},
    {"label": "bfs/base-350", "set": {"core.robSize": "350"}},
    {"label": "bfs/vr-128",
     "set": {"sim.technique": "vr", "core.robSize": "128"}},
    {"label": "bfs/vr-350",
     "set": {"sim.technique": "vr", "core.robSize": "350"}},
    {"label": "camel/base-128", "workload": "camel", "input": "",
     "set": {"core.robSize": "128"}},
    {"label": "camel/base-350", "workload": "camel", "input": "",
     "set": {"core.robSize": "350"}},
    {"label": "camel/vr-128", "workload": "camel", "input": "",
     "set": {"sim.technique": "vr", "core.robSize": "128"}},
    {"label": "camel/vr-350", "workload": "camel", "input": "",
     "set": {"sim.technique": "vr", "core.robSize": "350"}}
  ]
}
EOF
POINTS=8

strip_volatile() {
    grep -v -e '"wall_seconds"' -e '"wall_segments"' -e '"host"' "$1"
}

counter() {     # counter <serve.json> <name>
    sed -n 's/^ *"'"$2"'": \([0-9]*\),*$/\1/p' "$1"
}

# --- Reference: the uninterrupted run. --------------------------------
"$DVR_SERVE" submit --spool "$WORK/ref" "$WORK/sweep.json" \
    >/dev/null || fail "submit (ref)"
"$DVR_SERVE" start --spool "$WORK/ref" --once \
    --set serve.workers=2 >/dev/null || fail "uninterrupted run"
[ -f "$WORK/ref/done/MANIFEST_sweep.json" ] \
    || fail "no reference manifest"

# --- Victim: kill -9 mid-flight, then restart. ------------------------
"$DVR_SERVE" submit --spool "$WORK/crash" "$WORK/sweep.json" \
    >/dev/null || fail "submit (crash)"
setsid "$DVR_SERVE" start --spool "$WORK/crash" --once \
    --set serve.workers=1 >/dev/null 2>&1 &
PID=$!

# Wait until some (but not all) points are journaled, then SIGKILL the
# daemon's whole process group — workers included, no clean shutdown.
JOURNAL="$WORK/crash/journal/sweep.manifest.json"
for _ in $(seq 1 3000); do
    RUNS=$(grep -c '"point"' "$JOURNAL" 2>/dev/null || true)
    [ "${RUNS:-0}" -ge 2 ] && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.02
done
kill -0 "$PID" 2>/dev/null \
    || fail "sweep finished before the kill; raise DVR_INSTS"
kill -9 -- -"$PID" 2>/dev/null || kill -9 "$PID"
wait "$PID" 2>/dev/null
KILLED_RUNS=$(grep -c '"point"' "$JOURNAL" 2>/dev/null || echo 0)
[ "$KILLED_RUNS" -ge 1 ] || fail "nothing journaled before the kill"
[ "$KILLED_RUNS" -lt "$POINTS" ] \
    || fail "all points journaled before the kill; raise DVR_INSTS"

# Restart: must adopt the running/ job and finish only what's missing.
"$DVR_SERVE" start --spool "$WORK/crash" --once \
    --set serve.workers=2 >/dev/null || fail "restart run"

MANIFEST="$WORK/crash/done/MANIFEST_sweep.json"
SERVE_JSON="$WORK/crash/done/sweep.serve.json"
[ -f "$MANIFEST" ] || fail "no manifest after restart"
[ -f "$SERVE_JSON" ] || fail "no serve counters after restart"

# 1. The resume/dedup counters prove no journaled point re-executed:
# every point is accounted exactly once, the journaled ones by the
# journal_resumed counter. (cache_hits covers a point whose worker
# finished in the instant between the last journal append and the
# kill: completed, not re-executed.)
RESUMED=$(counter "$SERVE_JSON" journal_resumed)
RERUN=$(counter "$SERVE_JSON" points_run)
HITS=$(counter "$SERVE_JSON" cache_hits)
DEDUP=$(counter "$SERVE_JSON" points_deduped)
[ "${RESUMED:-0}" -eq "$KILLED_RUNS" ] \
    || fail "journal_resumed=$RESUMED, expected $KILLED_RUNS"
[ $((RESUMED + RERUN + HITS + DEDUP)) -eq "$POINTS" ] \
    || fail "counters do not account every point exactly once" \
            "(resumed=$RESUMED run=$RERUN hits=$HITS dedup=$DEDUP)"

# 2. Every point exactly once: no duplicate labels.
LABELS=$(grep -o '"label": "[^"]*"' "$MANIFEST" | sort)
[ "$(echo "$LABELS" | wc -l)" -eq "$POINTS" ] \
    || fail "expected $POINTS runs, got: $LABELS"
DUPES=$(echo "$LABELS" | uniq -d)
[ -z "$DUPES" ] || fail "duplicate labels: $DUPES"

# 3. Byte-identical manifests modulo wall/host lines.
if ! diff <(strip_volatile "$WORK/ref/done/MANIFEST_sweep.json") \
          <(strip_volatile "$MANIFEST") >"$WORK/manifest.diff"; then
    head -40 "$WORK/manifest.diff" >&2
    fail "resumed manifest differs from uninterrupted run"
fi

echo "serve_crash_resume: PASS (killed after $KILLED_RUNS/$POINTS" \
     "points, resumed $RESUMED, re-ran $RERUN)"
