/** @file Edge-list I/O and statistic-export tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"
#include "graph/edge_list_io.hh"
#include "sim/simulator.hh"
#include "workloads/gap_common.hh"

namespace dvr {
namespace {

TEST(EdgeListIo, LoadedGraphRunsBfsAndVerifies)
{
    // The tools/dvr_run --graph path: edge list -> CSR -> BFS
    // workload -> simulate under DVR -> golden check.
    std::istringstream in("0 1\n1 2\n2 3\n3 4\n4 0\n0 2\n1 3\n");
    const LoadedEdgeList l = readEdgeList(in);
    SimMemory mem(16ULL << 20);
    CsrGraph g = buildCsr(mem, l.numNodes, l.edges);
    Workload w = makeBfsWorkload(mem, std::move(g), "bfs", "loaded");
    SimConfig cfg = SimConfig::baseline(Technique::kDvr);
    cfg.maxInstructions = 100'000;
    const SimResult r = Simulator::runOn(cfg, w, mem);
    EXPECT_TRUE(r.halted);
    EXPECT_TRUE(r.verified);
}

TEST(EdgeListIo, ParsesCommentsAndCompactsIds)
{
    std::istringstream in(
        "# SNAP-style comment\n"
        "% matrix-market comment\n"
        "\n"
        "10 20\n"
        "20 30\n"
        "  10   30 \n");
    const LoadedEdgeList l = readEdgeList(in);
    EXPECT_EQ(l.numNodes, 3u);
    ASSERT_EQ(l.edges.size(), 3u);
    // Ids compacted in first-seen order: 10->0, 20->1, 30->2.
    EXPECT_EQ(l.edges[0], (std::pair<uint32_t, uint32_t>{0, 1}));
    EXPECT_EQ(l.edges[1], (std::pair<uint32_t, uint32_t>{1, 2}));
    EXPECT_EQ(l.edges[2], (std::pair<uint32_t, uint32_t>{0, 2}));
}

TEST(EdgeListIo, RejectsMalformedLines)
{
    std::istringstream in("1 2\nnot an edge\n");
    EXPECT_THROW(readEdgeList(in), std::runtime_error);
}

TEST(EdgeListIo, MissingFileFails)
{
    EXPECT_THROW(readEdgeListFile("/nonexistent/graph.el"),
                 std::runtime_error);
}

TEST(EdgeListIo, RoundTrips)
{
    EdgeList edges = {{0, 1}, {2, 1}, {1, 0}};
    std::ostringstream out;
    writeEdgeList(out, edges);
    std::istringstream in(out.str());
    const LoadedEdgeList l = readEdgeList(in);
    EXPECT_EQ(l.edges.size(), edges.size());
    // Round-tripped ids are re-compacted but edge structure holds.
    EXPECT_EQ(l.numNodes, 3u);
}

TEST(StatsExport, JsonIsWellFormedAndSorted)
{
    StatSet s;
    s.set("b.two", 2.5);
    s.set("a.one", 1.0);
    const std::string j = s.toJson();
    EXPECT_NE(j.find("\"a.one\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"b.two\": 2.5"), std::string::npos);
    EXPECT_LT(j.find("a.one"), j.find("b.two"));
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j[j.size() - 2], '}');
}

TEST(StatsExport, CsvHasHeaderAndRows)
{
    StatSet s;
    s.set("x", 7);
    const std::string c = s.toCsv();
    EXPECT_EQ(c.rfind("stat,value\n", 0), 0u);
    EXPECT_NE(c.find("x,7"), std::string::npos);
}

} // namespace
} // namespace dvr
