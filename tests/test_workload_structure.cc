/**
 * @file
 * Structural invariants over every built-in kernel's program: all
 * branch targets resolve, loops are bottom-tested (compare feeding a
 * backward conditional branch -- the idiom the loop-bound detector
 * needs), every kernel contains at least one striding load with a
 * dependent load (the idiom DVR needs), and disassembly is total.
 */

#include <gtest/gtest.h>

#include "mem/sim_memory.hh"
#include "sim/simulator.hh"

namespace dvr {
namespace {

class KernelStructure : public testing::TestWithParam<const char *>
{
  protected:
    Workload
    build()
    {
        mem_ = std::make_unique<SimMemory>(96ULL << 20);
        WorkloadParams wp;
        wp.scaleShift = 4;
        return workloadFactory(GetParam())(*mem_, wp);
    }

    std::unique_ptr<SimMemory> mem_;
};

TEST_P(KernelStructure, BranchTargetsResolveInsideProgram)
{
    const Workload w = build();
    for (InstPc pc = 0; pc < w.program.size(); ++pc) {
        const Instruction &inst = w.program.at(pc);
        if (inst.isBranch()) {
            EXPECT_NE(inst.target, kInvalidPc) << "pc " << pc;
            EXPECT_LT(inst.target, w.program.size()) << "pc " << pc;
        }
    }
}

TEST_P(KernelStructure, HasBottomTestedLoop)
{
    const Workload w = build();
    bool found = false;
    for (InstPc pc = 1; pc < w.program.size(); ++pc) {
        const Instruction &br = w.program.at(pc);
        const Instruction &prev = w.program.at(pc - 1);
        if (br.isCondBranch() && br.target < pc &&
            prev.isCompare() && prev.rd == br.rs1) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found) << "no compare->backward-branch loop tail";
}

TEST_P(KernelStructure, EndsInHalt)
{
    const Workload w = build();
    EXPECT_EQ(w.program.at(w.program.size() - 1).op, Opcode::kHalt);
}

TEST_P(KernelStructure, DisassemblesEveryInstruction)
{
    const Workload w = build();
    const std::string d = w.program.disassemble();
    // One line per instruction plus labels.
    size_t lines = 0;
    for (char c : d)
        lines += c == '\n';
    EXPECT_GE(lines, w.program.size());
}

TEST_P(KernelStructure, DvrFindsAnIndirectChain)
{
    // Run briefly under DVR: the kernel must trigger discovery and
    // yield at least one episode with dependent-load lanes (this is
    // what makes it a valid benchmark for the paper's mechanism).
    const Workload w = build();
    SimConfig cfg = SimConfig::baseline(Technique::kDvr);
    cfg.maxInstructions = 60'000;
    const SimResult r = Simulator::runOn(cfg, w, *mem_);
    EXPECT_GT(r.stats.get("dvr.episodes"), 0.0) << w.name;
    EXPECT_GT(r.stats.get("dvr.lane_loads"), 0.0) << w.name;
}

TEST_P(KernelStructure, DescriptionAndEstimateArePopulated)
{
    const Workload w = build();
    EXPECT_FALSE(w.description.empty());
    EXPECT_GT(w.fullRunInsts, 0u);
    EXPECT_TRUE(static_cast<bool>(w.verify));
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelStructure,
    testing::Values("bfs", "bc", "cc", "pr", "sssp", "camel",
                    "graph500", "hj2", "hj8", "kangaroo", "nas_cg",
                    "nas_is", "random_access"),
    [](const testing::TestParamInfo<const char *> &i) {
        return std::string(i.param);
    });

} // namespace
} // namespace dvr
