/**
 * @file
 * IqCalendar correctness: the calendar ring must reproduce the
 * min-heap of issue times it replaced exactly, under the core's
 * contract (drain horizons are non-decreasing; pushes are at or above
 * the horizon at push). Pinned two ways: structurally against a
 * reference heap model, and end-to-end against frozen core.cpi.*
 * stats from an issue-queue-saturated simulation (captured from the
 * heap implementation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/rng.hh"
#include "core/iq_calendar.hh"
#include "sim/experiment.hh"

namespace dvr {
namespace {

/** The replaced implementation, verbatim: drain, conditional pop-min
 *  of the earliest in-flight issue time, push. */
class HeapRef
{
  public:
    void
    drainThrough(Cycle horizon)
    {
        while (!q_.empty() && q_.top() <= horizon)
            q_.pop();
    }

    size_t size() const { return q_.size(); }

    Cycle
    popMin()
    {
        const Cycle t = q_.top();
        q_.pop();
        return t;
    }

    void push(Cycle t) { q_.push(t); }

  private:
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        q_;
};

TEST(IqCalendar, MatchesHeapUnderCoreContract)
{
    // Drive both structures through the dispatch-loop pattern with a
    // non-decreasing horizon and issue times jittered above it —
    // including far jumps past the calendar window (DRAM-bound
    // dependence chains) and long idle gaps.
    Rng rng(987);
    IqCalendar cal;
    HeapRef ref;
    Cycle horizon = 0;
    const unsigned iq_size = 32;

    for (int step = 0; step < 200000; ++step) {
        switch (rng.next() % 16) {
        case 0:
            horizon += rng.next() % 400;    // DRAM-ish stall
            break;
        case 1:
            horizon += 40000;               // beyond the ring window
            break;
        default:
            horizon += rng.next() % 3;
            break;
        }

        cal.drainThrough(horizon);
        ref.drainThrough(horizon);
        ASSERT_EQ(cal.size(), ref.size()) << "after drain, step " << step;

        Cycle cal_free = 0, ref_free = 0;
        if (ref.size() >= iq_size) {
            cal_free = cal.popMin();
            ref_free = ref.popMin();
        }
        ASSERT_EQ(cal_free, ref_free) << "pop-min, step " << step;

        // Issue at/above the horizon, occasionally far above it. The
        // two structures may disagree on size between a push at the
        // exact horizon and the next drain (the calendar drops what
        // the heap is guaranteed to drain first thing next round);
        // the core never observes that window, and the post-drain
        // assert above pins the observable state every iteration.
        const Cycle issue =
            horizon + (rng.next() % 8 == 0 ? rng.next() % 120000
                                           : rng.next() % 64);
        cal.push(issue);
        ref.push(issue);
    }

    cal.drainThrough(horizon + 1'000'000);
    ref.drainThrough(horizon + 1'000'000);
    EXPECT_EQ(cal.size(), ref.size());
    EXPECT_EQ(cal.size(), 0u);
}

TEST(IqCalendar, CoreCpiStatsMatchHeapImplementation)
{
    // End-to-end pin: an IQ-saturated run (64-entry IQ, camel's
    // DRAM-bound dependent loads) whose every core.cpi.* value was
    // captured from the priority_queue implementation this structure
    // replaced. Any drift in drain/pop/push semantics shows up here
    // as a changed cycle count or CPI split.
    WorkloadParams wp;
    wp.scaleShift = 4;
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    cfg.core.modelIqOccupancy = true;
    cfg.core.iqSize = 64;
    cfg.maxInstructions = 50'000;

    const PreparedWorkload pw("camel", "", wp, cfg.memoryBytes);
    const SimResult r = pw.run(cfg);

    EXPECT_EQ(r.core.instructions, 50'000u);
    EXPECT_EQ(r.core.cycles, 585'476u);
    EXPECT_EQ(r.core.cpi.base, 6'061u);
    EXPECT_EQ(r.core.cpi.branchRedirect, 0u);
    EXPECT_EQ(r.core.cpi.dram, 2'375u);
    EXPECT_EQ(r.core.cpi.fullIqLsq, 577'040u);
    EXPECT_EQ(r.core.cpi.fullRob, 0u);
    EXPECT_EQ(r.core.cpi.l1, 0u);
    EXPECT_EQ(r.core.cpi.l2, 0u);
    EXPECT_EQ(r.core.cpi.l3, 0u);
    EXPECT_EQ(r.core.cpi.total(), r.core.cycles);
}

} // namespace
} // namespace dvr
