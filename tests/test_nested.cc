/**
 * @file
 * Nested Vector Runahead end-to-end unit test on a hand-built
 * CSR-style kernel: NDM must find the outer striding load, vectorize
 * it (and the secondary bound load) by 16, compute per-outer-lane
 * inner trip counts, and prefetch the x[cols[j]] chains of *future*
 * rows the main thread has not reached.
 */

#include <gtest/gtest.h>

#include "isa/program_builder.hh"
#include "mem/memory_system.hh"
#include "mem/sim_memory.hh"
#include "runahead/subthread.hh"

namespace dvr {
namespace {

class NestedRig : public testing::Test
{
  protected:
    static constexpr uint64_t kRows = 64;
    static constexpr uint64_t kRowLen = 5;   // short inner loops

    NestedRig() : mem(64 << 20)
    {
        offs_base = mem.alloc((kRows + 1) * 8);
        cols_base = mem.alloc(kRows * kRowLen * 8);
        x_base = mem.alloc(4096 << 6);
        for (uint64_t r = 0; r <= kRows; ++r)
            mem.write64(offs_base, r, r * kRowLen);
        for (uint64_t j = 0; j < kRows * kRowLen; ++j)
            mem.write64(cols_base, j, (j * 131) % 4096);

        //  0: shli r11, r6, 3
        //  1: add r11, r0, r11
        //  2: ld r7, [r11]        ; j = offs[row]    <- outer stride
        //  3: ld r8, [r11 + 8]    ; jEnd             <- secondary
        //  4: cmpltu r10, r7, r8
        //  5: beqz r10, next
        // inner:
        //  6: shli r11, r7, 3
        //  7: add r11, r1, r11
        //  8: ld r9, [r11]        ; c = cols[j]      <- inner stride
        //  9: shli r11, r9, 6
        // 10: add r11, r2, r11
        // 11: ld r14, [r11]       ; x[c]             <- FLR
        // 12: addi r7, r7, 1
        // 13: cmpltu r10, r7, r8
        // 14: bnez r10, inner     <- backward branch
        // next:
        // 15: addi r6, r6, 1
        // 16: cmpltu r10, r6, r13
        // 17: bnez r10, row
        // 18: halt
        ProgramBuilder b;
        b.label("row")
            .shli(11, 6, 3)
            .add(11, 0, 11)
            .ld(7, 11)
            .ld(8, 11, 8)
            .cmpltu(10, 7, 8)
            .beqz(10, "next");
        b.label("inner")
            .shli(11, 7, 3)
            .add(11, 1, 11)
            .ld(9, 11)
            .shli(11, 9, 6)
            .add(11, 2, 11)
            .ld(14, 11)
            .addi(7, 7, 1)
            .cmpltu(10, 7, 8)
            .bnez(10, "inner");
        b.label("next")
            .addi(6, 6, 1)
            .cmpltu(10, 6, 13)
            .bnez(10, "row")
            .halt();
        prog = b.build();

        mcfg.stridePrefetcher = false;
        memsys = std::make_unique<MemorySystem>(mcfg, mem);

        // Train the detector: offs[row] / offs[row+1] / cols[j] all
        // stride.
        for (int i = 0; i < 6; ++i) {
            det.observe(2, offs_base + i * 8);
            det.observe(3, offs_base + 8 + i * 8);
            det.observe(8, cols_base + i * 8);
        }

        // Discovery output for a trigger inside row `cur_row`.
        cur_row = 4;
        const uint64_t j0 = cur_row * kRowLen;
        d.stridePc = 8;
        d.stride = 8;
        d.strideDest = 9;
        d.strideBytes = 8;
        d.spawnAddr = cols_base + j0 * 8;
        d.flr = 11;
        d.bound.valid = true;
        d.bound.remaining = int64_t(kRowLen);
        d.bound.increment = 1;
        d.bound.inductionReg = 7;
        d.bound.boundValue = j0 + kRowLen;
        d.lcr.valid = true;
        d.lcr.cmpOp = Opcode::kCmpLtU;
        d.lcr.rs1 = 7;
        d.lcr.rs2 = 8;
        d.lcr.rd = 10;
        d.lcr.branchOp = Opcode::kBnez;
        d.backwardBranchPc = 14;

        regs.value[0] = offs_base;
        regs.value[1] = cols_base;
        regs.value[2] = x_base;
        regs.value[6] = cur_row;
        regs.value[7] = j0;
        regs.value[8] = j0 + kRowLen;
        regs.value[13] = kRows;
        regs.value[11] = cols_base + j0 * 8;
    }

    SimMemory mem;
    MemConfig mcfg;
    std::unique_ptr<MemorySystem> memsys;
    Program prog;
    StrideDetector det{32};
    DiscoveryResult d;
    RegState regs;
    SubthreadConfig cfg;
    Addr offs_base = 0, cols_base = 0, x_base = 0;
    uint64_t cur_row = 0;
};

TEST_F(NestedRig, PrefetchesFutureRowsChains)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runNested(d, regs, 100, det);
    ASSERT_TRUE(ep.ran);
    EXPECT_TRUE(ep.nested) << "NDM must reach phase 3";
    // 16 outer lanes x 5 inner each = 80 inner lanes.
    EXPECT_EQ(ep.nestedInnerLanes, 16u * kRowLen);

    // Every x line of rows cur_row+1 .. cur_row+16 must be present.
    for (uint64_t r = cur_row + 1; r <= cur_row + 16; ++r) {
        for (uint64_t j = r * kRowLen; j < (r + 1) * kRowLen; ++j) {
            const uint64_t c = mem.read64(cols_base, j);
            EXPECT_TRUE(memsys->present(x_base + (c << 6)))
                << "row " << r << " nnz " << j;
        }
    }
    // And not beyond the 16-outer-lane window.
    const uint64_t j_beyond = (cur_row + 18) * kRowLen;
    const uint64_t c_beyond = mem.read64(cols_base, j_beyond);
    EXPECT_FALSE(memsys->present(x_base + (c_beyond << 6)));
}

TEST_F(NestedRig, PerLaneTripCountsUseSecondaryStrider)
{
    // Exactly 16 outer x (1 offs pair + 5 cols + 5 x) loads issue if
    // per-lane bounds are right; wrong scalar bounds would collapse
    // most lanes to zero-trip or overrun.
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runNested(d, regs, 100, det);
    ASSERT_TRUE(ep.nested);
    // Phase 2: 16 offs + 16 offs+8; phase 3: 80 cols + 80 x;
    // plus the scalar walk's loads.
    EXPECT_GE(ep.laneLoads, 16u + 16u + 80u + 80u);
    EXPECT_LE(ep.laneLoads, 16u + 16u + 80u + 80u + 20u);
}

TEST_F(NestedRig, OuterCursorPreventsRecoverage)
{
    VectorSubthread sub(cfg, prog, mem, *memsys);
    CoverageCursor cur;
    EpisodeStats e1 = sub.runNested(d, regs, 100, det, &cur);
    ASSERT_TRUE(e1.nested);
    EXPECT_TRUE(cur.valid);

    // Same spawn point again: the outer window is fully covered.
    EpisodeStats e2 = sub.runNested(d, regs, 5000, det, &cur);
    EXPECT_FALSE(e2.ran);
}

TEST_F(NestedRig, FallsBackWithoutBackwardBranch)
{
    d.backwardBranchPc = kInvalidPc;
    VectorSubthread sub(cfg, prog, mem, *memsys);
    EpisodeStats ep = sub.runNested(d, regs, 100, det);
    EXPECT_TRUE(ep.ran);
    EXPECT_FALSE(ep.nested);
    EXPECT_EQ(ep.lanesSpawned, kRowLen);    // bounded plain episode
}

} // namespace
} // namespace dvr
