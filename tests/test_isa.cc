/** @file ISA semantics, classification, and ProgramBuilder tests. */

#include <gtest/gtest.h>

#include <bit>

#include "isa/instruction.hh"
#include "isa/program_builder.hh"

namespace dvr {
namespace {

struct AluCase
{
    Opcode op;
    uint64_t s1, s2;
    int64_t imm;
    uint64_t expect;
};

class EvalOp : public testing::TestWithParam<AluCase>
{
};

TEST_P(EvalOp, Matches)
{
    const auto &c = GetParam();
    EXPECT_EQ(evalOp(c.op, c.s1, c.s2, c.imm), c.expect);
}

constexpr uint64_t kNeg1 = ~0ULL;

INSTANTIATE_TEST_SUITE_P(
    Arith, EvalOp,
    testing::Values(
        AluCase{Opcode::kAdd, 3, 4, 0, 7},
        AluCase{Opcode::kAdd, kNeg1, 1, 0, 0},
        AluCase{Opcode::kSub, 3, 4, 0, kNeg1},
        AluCase{Opcode::kMul, 5, 7, 0, 35},
        AluCase{Opcode::kDivU, 35, 5, 0, 7},
        AluCase{Opcode::kDivU, 35, 0, 0, kNeg1},   // defined on /0
        AluCase{Opcode::kRemU, 35, 4, 0, 3},
        AluCase{Opcode::kRemU, 35, 0, 0, 35},
        AluCase{Opcode::kAnd, 0b1100, 0b1010, 0, 0b1000},
        AluCase{Opcode::kOr, 0b1100, 0b1010, 0, 0b1110},
        AluCase{Opcode::kXor, 0b1100, 0b1010, 0, 0b0110},
        AluCase{Opcode::kShl, 1, 12, 0, 4096},
        AluCase{Opcode::kShr, 4096, 12, 0, 1},
        AluCase{Opcode::kMin, 3, 9, 0, 3},
        AluCase{Opcode::kMax, 3, 9, 0, 9},
        AluCase{Opcode::kAddI, 10, 0, -3, 7},
        AluCase{Opcode::kShlI, 3, 0, 4, 48},
        AluCase{Opcode::kLoadImm, 0, 0, -1,
                static_cast<uint64_t>(-1)},
        AluCase{Opcode::kMov, 99, 0, 0, 99}));

INSTANTIATE_TEST_SUITE_P(
    Compare, EvalOp,
    testing::Values(
        AluCase{Opcode::kCmpLt, kNeg1 /* -1 */, 1, 0, 1},
        AluCase{Opcode::kCmpLtU, kNeg1, 1, 0, 0},
        AluCase{Opcode::kCmpEq, 4, 4, 0, 1},
        AluCase{Opcode::kCmpNe, 4, 4, 0, 0},
        AluCase{Opcode::kCmpLtI, 3, 0, 4, 1},
        AluCase{Opcode::kCmpLtUI, 5, 0, 4, 0},
        AluCase{Opcode::kCmpEqI, 4, 0, 4, 1}));

TEST(EvalOpFp, DoubleBitPatterns)
{
    const auto bits = [](double d) {
        return std::bit_cast<uint64_t>(d);
    };
    EXPECT_EQ(evalOp(Opcode::kFAdd, bits(1.5), bits(2.25), 0),
              bits(3.75));
    EXPECT_EQ(evalOp(Opcode::kFMul, bits(3.0), bits(0.5), 0),
              bits(1.5));
    EXPECT_EQ(evalOp(Opcode::kFDiv, bits(1.0), bits(4.0), 0),
              bits(0.25));
    EXPECT_EQ(evalOp(Opcode::kI2F, 7, 0, 0), bits(7.0));
    EXPECT_EQ(evalOp(Opcode::kF2I, bits(7.9), 0, 0), 7u);
    EXPECT_EQ(evalOp(Opcode::kFCmpLt, bits(1.0), bits(2.0), 0), 1u);
}

TEST(BranchTaken, Semantics)
{
    EXPECT_TRUE(branchTaken(Opcode::kBeqz, 0));
    EXPECT_FALSE(branchTaken(Opcode::kBeqz, 5));
    EXPECT_TRUE(branchTaken(Opcode::kBnez, 5));
    EXPECT_FALSE(branchTaken(Opcode::kBnez, 0));
    EXPECT_TRUE(branchTaken(Opcode::kJmp, 0));
}

TEST(Classify, LoadsStoresBranches)
{
    Instruction ld{.op = Opcode::kLoad, .rd = 1, .rs1 = 2};
    EXPECT_TRUE(ld.isLoad());
    EXPECT_TRUE(ld.isMem());
    EXPECT_TRUE(ld.hasDest());
    EXPECT_EQ(ld.memBytes(), 8u);
    EXPECT_EQ(ld.fuClass(), FuClass::kMem);
    EXPECT_EQ(ld.numSrcs(), 1);

    Instruction st{.op = Opcode::kStore32, .rs1 = 2, .rs2 = 3};
    EXPECT_TRUE(st.isStore());
    EXPECT_FALSE(st.hasDest());
    EXPECT_EQ(st.memBytes(), 4u);
    EXPECT_EQ(st.numSrcs(), 2);

    Instruction br{.op = Opcode::kBnez, .rs1 = 4};
    EXPECT_TRUE(br.isBranch());
    EXPECT_TRUE(br.isCondBranch());
    EXPECT_FALSE(br.hasDest());

    Instruction jmp{.op = Opcode::kJmp};
    EXPECT_TRUE(jmp.isBranch());
    EXPECT_FALSE(jmp.isCondBranch());
    EXPECT_EQ(jmp.numSrcs(), 0);

    Instruction cmp{.op = Opcode::kCmpLt, .rd = 1, .rs1 = 2, .rs2 = 3};
    EXPECT_TRUE(cmp.isCompare());
    EXPECT_TRUE(cmp.hasDest());

    Instruction div{.op = Opcode::kDivU, .rd = 1, .rs1 = 2, .rs2 = 3};
    EXPECT_EQ(div.fuClass(), FuClass::kIntDiv);
    Instruction h{.op = Opcode::kHash, .rd = 1, .rs1 = 2};
    EXPECT_EQ(h.fuClass(), FuClass::kIntMul);
    EXPECT_EQ(h.numSrcs(), 1);
}

TEST(Builder, LabelsAndForwardReferences)
{
    ProgramBuilder b;
    b.li(0, 5);
    b.label("loop").addi(0, 0, -1).bnez(0, "loop").jmp("end");
    b.label("end").halt();
    Program p = b.build();
    ASSERT_EQ(p.size(), 5u);
    EXPECT_EQ(p.label("loop"), 1u);
    EXPECT_EQ(p.label("end"), 4u);
    EXPECT_EQ(p.at(2).target, 1u);  // backward
    EXPECT_EQ(p.at(3).target, 4u);  // forward
}

TEST(Builder, UnresolvedLabelFails)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, DuplicateLabelFails)
{
    ProgramBuilder b;
    b.label("x");
    EXPECT_THROW(b.label("x"), std::runtime_error);
}

TEST(Builder, RegisterRangeChecked)
{
    ProgramBuilder b;
    EXPECT_THROW(b.li(16, 0), std::runtime_error);
}

TEST(Program, DisassembleMentionsLabelsAndOpcodes)
{
    ProgramBuilder b;
    b.label("start").ld(1, 2, 8).st(3, 0, 4).beqz(1, "start").halt();
    Program p = b.build();
    const std::string d = p.disassemble();
    EXPECT_NE(d.find("start:"), std::string::npos);
    EXPECT_NE(d.find("ld r1, [r2 + 8]"), std::string::npos);
    EXPECT_NE(d.find("beqz"), std::string::npos);
}

} // namespace
} // namespace dvr
