/**
 * @file
 * Golden parity: every technique's full statistic set must stay
 * byte-identical to a fixture captured from the pre-registry build
 * (camel, scaleShift 4, 150k instructions). This pins the registry
 * port, the prepare hooks, and the config layer to the exact
 * behaviour of the old technique switch: a refactor that changes any
 * stat -- even in the last printed digit -- fails here.
 *
 * The fixture lives in golden_stats.inc. To regenerate it after an
 * intentional modelling change, run each technique with
 *
 *     dvr_run -w camel --scale-shift 4 -n 150000 -t <name> --json
 *
 * (with DVR_INSTS / DVR_SCALE_SHIFT unset) and paste the JSON.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>

#include "runahead/technique.hh"
#include "sim/config_schema.hh"
#include "sim/runner.hh"

namespace dvr {
namespace {

struct GoldenEntry
{
    const char *technique;
    const char *json;
};

#include "golden_stats.inc"

class GoldenParity : public ::testing::Test
{
  protected:
    // One shared data set for all techniques; built once because the
    // camel build dominates the fixture's runtime.
    static void
    SetUpTestSuite()
    {
        WorkloadParams wp;
        wp.scaleShift = 4;
        prepared_ = std::make_unique<PreparedWorkload>("camel", "", wp,
                                                       96ULL << 20);
    }

    static void
    TearDownTestSuite()
    {
        prepared_.reset();
    }

    static SimResult
    runTechnique(const std::string &name)
    {
        SimConfig cfg = SimConfig::baseline(name);
        // The fixture was captured with the Table-1 defaults and no
        // DVR_* environment; pin the env-sensitive knobs explicitly
        // so the test is immune to the caller's environment.
        cfg.maxInstructions = 150'000;
        return prepared_->run(cfg);
    }

    static std::unique_ptr<PreparedWorkload> prepared_;
};

std::unique_ptr<PreparedWorkload> GoldenParity::prepared_;

TEST_F(GoldenParity, AllTechniquesByteIdentical)
{
    for (const GoldenEntry &g : kGoldenStats) {
        SCOPED_TRACE(g.technique);
        const SimResult r = runTechnique(g.technique);
        EXPECT_EQ(r.stats.toJson(), g.json);
    }
}

TEST_F(GoldenParity, RegistryCoversEveryGoldenTechnique)
{
    const auto names = TechniqueRegistry::instance().names();
    for (const GoldenEntry &g : kGoldenStats) {
        EXPECT_NE(std::find(names.begin(), names.end(), g.technique),
                  names.end())
            << g.technique;
    }
    // ... and nothing registered that the fixture doesn't pin.
    EXPECT_EQ(names.size(), std::size(kGoldenStats));
}

TEST_F(GoldenParity, ConfigRoundTripPreservesStats)
{
    // dump -> applyJson on a fresh config must describe the same run:
    // identical stats, not just identical key strings.
    const ConfigSchema &schema = ConfigSchema::instance();
    const SimConfig direct = SimConfig::baseline("dvr");
    SimConfig loaded = SimConfig::baseline("base");
    schema.applyJson(loaded, schema.toJson(direct));

    SimConfig a = direct;
    SimConfig b = loaded;
    a.maxInstructions = b.maxInstructions = 60'000;
    const SimResult ra = prepared_->run(a);
    const SimResult rb = prepared_->run(b);
    EXPECT_EQ(ra.stats.toJson(), rb.stats.toJson());
}

} // namespace
} // namespace dvr
