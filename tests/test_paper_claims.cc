/**
 * @file
 * End-to-end checks of the paper's headline claims at test scale.
 * These guard the *shape* of the evaluation: relative ordering and
 * direction, never absolute numbers (our substrate is a scaled
 * simulator, not the authors' testbed).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace dvr {
namespace {

/** A small representative suite: one kernel per behaviour class. */
const std::vector<std::pair<std::string, std::string>> &
miniSuite()
{
    static const std::vector<std::pair<std::string, std::string>> s = {
        {"bfs", "KR"},      // divergent graph traversal
        {"cc", "TW"},       // edge sweep, conditional store
        {"camel", ""},      // figure-1 hash chain
        {"hj8", ""},        // deep dependent chain
        {"nas_is", ""},     // simple indirect
    };
    return s;
}

struct SuiteResult
{
    std::vector<double> base_ipc;
    std::map<std::string, std::vector<double>> speedup;
    std::map<std::string, std::vector<SimResult>> results;
};

const SuiteResult &
runSuite()
{
    static const SuiteResult r = [] {
        SuiteResult out;
        for (const auto &[kernel, input] : miniSuite()) {
            WorkloadParams wp;
            wp.scaleShift = 2;
            PreparedWorkload pw(kernel, input, wp, 128ULL << 20);
            SimConfig base = SimConfig::baseline(Technique::kBase);
            base.maxInstructions = 200'000;
            const SimResult rb = pw.run(base);
            out.base_ipc.push_back(rb.ipc());
            out.results["base"].push_back(rb);
            for (Technique t :
                 {Technique::kPre, Technique::kVr, Technique::kDvr,
                  Technique::kOracle}) {
                SimConfig cfg = SimConfig::baseline(t);
                cfg.maxInstructions = 200'000;
                const SimResult res = pw.run(cfg);
                out.speedup[techniqueName(t)].push_back(res.ipc() /
                                                        rb.ipc());
                out.results[techniqueName(t)].push_back(res);
            }
        }
        return out;
    }();
    return r;
}

TEST(PaperClaims, DvrDeliversLargeMeanSpeedup)
{
    // Paper: 2.4x over the baseline OoO core on h-mean.
    const double h = harmonicMean(runSuite().speedup.at("dvr"));
    EXPECT_GT(h, 2.0);
}

TEST(PaperClaims, DvrBeatsVectorRunaheadBySimilarFactor)
{
    // Paper: 2x over VR.
    const auto &s = runSuite();
    const double dvr = harmonicMean(s.speedup.at("dvr"));
    const double vr = harmonicMean(s.speedup.at("vr"));
    EXPECT_GT(dvr, 1.5 * vr);
}

TEST(PaperClaims, PreBarelyHelpsIndirectWorkloads)
{
    // Paper: "PRE rarely yields more than negligible improvements".
    const double pre = harmonicMean(runSuite().speedup.at("pre"));
    EXPECT_LT(pre, 1.3);
    EXPECT_GT(pre, 0.95);
}

TEST(PaperClaims, DvrApproachesOracleOnChains)
{
    const auto &s = runSuite();
    // On the Figure-1 kernel, DVR reaches a large fraction of the
    // perfect-knowledge Oracle.
    const size_t camel = 2;
    EXPECT_GT(s.speedup.at("dvr")[camel],
              0.5 * s.speedup.at("oracle")[camel]);
}

TEST(PaperClaims, DvrTriplesMemoryLevelParallelism)
{
    // Figure 9: OoO < 4 average MSHRs, DVR > 10 (we assert the
    // relative claim at test scale).
    const auto &s = runSuite();
    double base_mlp = 0, dvr_mlp = 0;
    for (size_t i = 0; i < miniSuite().size(); ++i) {
        base_mlp += s.results.at("base")[i].mshrOccupancy();
        dvr_mlp += s.results.at("dvr")[i].mshrOccupancy();
    }
    EXPECT_GT(dvr_mlp, 2.0 * base_mlp);
}

TEST(PaperClaims, DvrPrefetchesAreMostlyOnChip)
{
    // Figure 11: on the graph kernels, the majority of DVR-prefetched
    // lines are found on-chip when the main thread arrives. The paper
    // itself exempts the simple high-bandwidth kernels (NAS-IS, and
    // camel/hj-class chains running at the MSHR throughput ceiling),
    // where "the prefetches are too late" -- the main thread observes
    // residual in-flight latency.
    const auto &s = runSuite();
    for (size_t i = 0; i < miniSuite().size(); ++i) {
        const std::string &k = miniSuite()[i].first;
        if (k != "bfs" && k != "cc")
            continue;
        const SimResult &r = s.results.at("dvr")[i];
        const double on_chip = r.stats.get("mem.ra_found_l1") +
                               r.stats.get("mem.ra_found_l2") +
                               r.stats.get("mem.ra_found_l3");
        const double off = r.stats.get("mem.ra_found_late") +
                           r.stats.get("mem.ra_unused");
        EXPECT_GT(on_chip, off)
            << k << "_" << miniSuite()[i].second;
    }
    // Aggregate: prefetches are nevertheless overwhelmingly useful
    // (touched by the main thread), even when partially in flight.
    double used = 0, unused = 0;
    for (size_t i = 0; i < miniSuite().size(); ++i) {
        const SimResult &r = s.results.at("dvr")[i];
        used += r.stats.get("mem.ra_found_l1") +
                r.stats.get("mem.ra_found_l2") +
                r.stats.get("mem.ra_found_l3") +
                r.stats.get("mem.ra_found_late");
        unused += r.stats.get("mem.ra_unused");
    }
    EXPECT_GT(used, 10.0 * unused);
}

TEST(PaperClaims, DvrShiftsDemandMissesIntoRunahead)
{
    // Figure 10: high coverage -- demand DRAM accesses collapse and
    // reappear as runahead fetches, with bounded over-fetch.
    const auto &s = runSuite();
    for (size_t i = 0; i < miniSuite().size(); ++i) {
        const SimResult &b = s.results.at("base")[i];
        const SimResult &d = s.results.at("dvr")[i];
        EXPECT_LT(d.stats.get("mem.dram_main"),
                  0.6 * b.stats.get("mem.dram_main"))
            << miniSuite()[i].first;
        EXPECT_LT(d.stats.get("mem.dram_total"),
                  2.0 * b.stats.get("mem.dram_total"))
            << miniSuite()[i].first;
    }
}

TEST(PaperClaims, VrDelayedTerminationStallsCommit)
{
    // Section 3 insight #2: delayed termination stalls commit for a
    // measurable fraction of execution under VR.
    const auto &s = runSuite();
    bool any = false;
    for (size_t i = 0; i < miniSuite().size(); ++i) {
        if (s.results.at("vr")[i].stats.get(
                "core.runahead_extra_stall") > 0) {
            any = true;
        }
    }
    EXPECT_TRUE(any);
}

TEST(PaperClaims, DvrGainHoldsWithLargerRob)
{
    // Figure 12 vs Figure 2: VR's edge shrinks with ROB size; DVR's
    // holds. Compare the 128- vs 512-entry speedup ratios on camel.
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw("camel", "", wp, 96ULL << 20);
    auto speedup_at = [&](Technique t, unsigned rob) {
        SimConfig b = SimConfig::baseline(Technique::kBase);
        b.maxInstructions = 150'000;
        b.core = CoreConfig::withRob(rob, true);
        SimConfig c = SimConfig::baseline(t);
        c.maxInstructions = 150'000;
        c.core = CoreConfig::withRob(rob, true);
        return pw.run(c).ipc() / pw.run(b).ipc();
    };
    const double dvr_small = speedup_at(Technique::kDvr, 128);
    const double dvr_big = speedup_at(Technique::kDvr, 512);
    EXPECT_GT(dvr_big, 0.7 * dvr_small);
    EXPECT_GT(dvr_big, 1.5);    // still clearly winning at 512
}

} // namespace
} // namespace dvr
