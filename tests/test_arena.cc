/**
 * @file
 * Unit coverage for the per-thread bump arena (src/common/arena.hh):
 * alignment guarantees, epoch reset-and-reuse without fresh heap
 * blocks, high-water / alloc-count accounting, out-of-block growth,
 * and the LIFO ArenaFrame mark/rewind discipline the simulator's
 * per-run scopes rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/arena.hh"
#include "sim/runner.hh"

namespace dvr {
namespace {

bool
alignedTo(const void *p, std::size_t align)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, AlignmentIsHonored)
{
    Arena a(4096);
    // Deliberately mis-phase the cursor before each aligned request.
    for (std::size_t align : {1UL, 2UL, 8UL, 16UL, 64UL, 128UL}) {
        a.alloc(1, 1);
        void *p = a.alloc(24, align);
        EXPECT_TRUE(alignedTo(p, align)) << "align " << align;
    }
}

TEST(Arena, OverAlignedBeyondMaxAlign)
{
    // Cache-line alignment exceeds what operator new guarantees; the
    // arena must produce it by bumping within the block payload.
    Arena a(256);
    void *p = a.alloc(64, 64);
    EXPECT_TRUE(alignedTo(p, 64));
    // ... and still when the request alone forces a dedicated block.
    void *q = a.alloc(1024, 64);
    EXPECT_TRUE(alignedTo(q, 64));
}

TEST(Arena, AllocArrayZeroes)
{
    Arena a;
    uint64_t *v = a.allocArray<uint64_t>(257);
    for (int i = 0; i < 257; ++i)
        ASSERT_EQ(v[i], 0u) << i;
    // Dirty it, rewind via reset, reallocate: still zeroed.
    for (int i = 0; i < 257; ++i)
        v[i] = ~0ULL;
    a.reset();
    uint64_t *w = a.allocArray<uint64_t>(257);
    EXPECT_EQ(w, v); // same storage, recycled
    for (int i = 0; i < 257; ++i)
        ASSERT_EQ(w[i], 0u) << i;
}

TEST(Arena, OutOfBlockGrowth)
{
    Arena a(1024);
    EXPECT_EQ(a.blockCount(), 0u);
    a.alloc(512, 8);
    EXPECT_EQ(a.blockCount(), 1u);
    // Exceeds what remains of block 1 -> second block.
    a.alloc(768, 8);
    EXPECT_EQ(a.blockCount(), 2u);
    // Exceeds the default block size entirely -> oversized block.
    void *big = a.alloc(16384, 8);
    EXPECT_NE(big, nullptr);
    EXPECT_EQ(a.blockCount(), 3u);
    EXPECT_GE(a.reservedBytes(), 1024u + 1024u + 16384u);
}

TEST(Arena, EpochResetReusesBlocks)
{
    Arena a(1024);
    for (int i = 0; i < 4; ++i)
        a.alloc(900, 8);
    const std::size_t blocks = a.blockCount();
    const std::size_t reserved = a.reservedBytes();
    const uint64_t epoch = a.epoch();

    // Steady state: identical allocation patterns across many epochs
    // must never reserve another heap block.
    for (int e = 0; e < 10; ++e) {
        a.reset();
        for (int i = 0; i < 4; ++i)
            a.alloc(900, 8);
        EXPECT_EQ(a.blockCount(), blocks);
        EXPECT_EQ(a.reservedBytes(), reserved);
    }
    EXPECT_EQ(a.epoch(), epoch + 10);
}

TEST(Arena, AccountingTracksAllocsAndHighWater)
{
    Arena a(4096);
    EXPECT_EQ(a.allocCount(), 0u);
    EXPECT_EQ(a.liveBytes(), 0u);
    EXPECT_EQ(a.highWater(), 0u);

    a.alloc(100, 8);
    a.alloc(50, 8);
    EXPECT_EQ(a.allocCount(), 2u);
    EXPECT_EQ(a.liveBytes(), 150u);
    EXPECT_EQ(a.highWater(), 150u);

    a.reset();
    EXPECT_EQ(a.liveBytes(), 0u);
    EXPECT_EQ(a.highWater(), 150u);  // watermark survives the reset
    EXPECT_EQ(a.allocCount(), 2u);   // lifetime counter, monotone

    a.alloc(200, 8);
    EXPECT_EQ(a.allocCount(), 3u);
    EXPECT_EQ(a.highWater(), 200u);
}

TEST(Arena, FrameRewindsLifo)
{
    Arena a(4096);
    void *outer = a.alloc(64, 8);
    const uint64_t live = a.liveBytes();
    void *inner1 = nullptr;
    {
        ArenaFrame frame(a);
        EXPECT_EQ(a.frameDepth(), 1);
        inner1 = a.alloc(128, 8);
        {
            ArenaFrame nested(a);
            EXPECT_EQ(a.frameDepth(), 2);
            a.alloc(256, 8);
        }
        // Nested frame rewound; the next alloc reuses its storage.
        void *inner2 = a.alloc(256, 8);
        EXPECT_NE(inner2, nullptr);
    }
    EXPECT_EQ(a.frameDepth(), 0);
    EXPECT_EQ(a.liveBytes(), live);
    // Post-frame allocation recycles the frame's storage...
    void *again = a.alloc(128, 8);
    EXPECT_EQ(again, inner1);
    // ...while pre-frame storage was never disturbed.
    EXPECT_NE(outer, nullptr);
}

TEST(Arena, FrameBeforeFirstBlockRewindsToEmpty)
{
    Arena a(4096);
    {
        ArenaFrame frame(a);
        a.alloc(64, 8);
        EXPECT_EQ(a.blockCount(), 1u);
    }
    EXPECT_EQ(a.liveBytes(), 0u);
    EXPECT_EQ(a.blockCount(), 1u); // block retained for reuse
    void *p = a.alloc(64, 8);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(a.blockCount(), 1u);
}

TEST(Arena, ProcessStatsDeltaAccumulates)
{
    const ArenaProcessStats before = Arena::processStats();
    Arena a(2048);
    a.alloc(512, 8);
    a.alloc(512, 8);
    a.reset();
    const ArenaProcessStats d = Arena::processStats().since(before);
    EXPECT_GE(d.allocCalls, 2u);
    EXPECT_GE(d.bytesServed, 1024u);
    EXPECT_GE(d.blocks, 1u);
    EXPECT_GE(d.blockBytes, 2048u);
    EXPECT_GE(d.resets, 1u);
    EXPECT_GE(d.highWater, 1024u);
}

TEST(Arena, PerThreadSingleton)
{
    Arena &a = Arena::forCurrentThread();
    Arena &b = Arena::forCurrentThread();
    EXPECT_EQ(&a, &b);
}

TEST(Arena, RepeatedRunsRecycleBlocksAndReproduceStats)
{
    // End-to-end reuse contract: running the same sweep point twice on
    // one thread must (a) produce byte-identical stats — the arena is
    // a representation change only — and (b) serve the second run
    // entirely from blocks recycled by the first (O(1) heap
    // allocations per point after warmup).
    WorkloadParams wp;
    wp.scaleShift = 4;
    PreparedWorkload prep("camel", "", wp, 96ULL << 20);
    SimConfig cfg = SimConfig::baseline("dvr");
    cfg.maxInstructions = 30'000;

    const SimResult first = prep.run(cfg);
    Arena &arena = Arena::forCurrentThread();
    const size_t blocks = arena.blockCount();
    const ArenaProcessStats before = Arena::processStats();

    const SimResult second = prep.run(cfg);
    EXPECT_EQ(first.stats.toJson(), second.stats.toJson());
    EXPECT_EQ(blocks, arena.blockCount());
    const ArenaProcessStats d = Arena::processStats().since(before);
    EXPECT_EQ(0u, d.blocks);
    EXPECT_EQ(1u, d.resets);
}

} // namespace
} // namespace dvr
