/**
 * @file
 * dvr-lint's own test suite: each fixture tree under
 * tests/lint_fixtures/ seeds exactly one live violation per rule plus
 * one waived violation, so these tests pin both detection and the
 * waiver mechanism. Suite names are lowercase so `ctest -R lint`
 * selects them together with the tree-wide lint.tree check.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

using dvr::lint::Finding;
using dvr::lint::Options;
using dvr::lint::runLint;
using dvr::lint::scrubSource;

std::vector<Finding>
lintFixture(const std::string &name)
{
    Options opts;
    opts.root = std::string(DVR_LINT_FIXTURE_DIR) + "/" + name;
    return runLint(opts);
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];
    return counts;
}

TEST(lint_rules, registry_lists_every_rule_once)
{
    const auto &rs = dvr::lint::rules();
    ASSERT_FALSE(rs.empty());
    for (const auto &r : rs) {
        EXPECT_TRUE(dvr::lint::isRule(r.id));
        EXPECT_EQ(1, std::count_if(rs.begin(), rs.end(),
                                   [&](const auto &o) {
                                       return std::string(o.id) == r.id;
                                   }))
            << r.id;
    }
    EXPECT_FALSE(dvr::lint::isRule("not-a-rule"));
}

TEST(lint_fixtures, tree_seeds_exactly_one_finding_per_line_rule)
{
    const auto findings = lintFixture("tree");
    const auto counts = countByRule(findings);

    // One live violation per rule; the waived twin in each fixture
    // file must not surface. schema-drift is exercised by the `drift`
    // fixture (this tree has no config_fields.def).
    // stat-name seeds two live violations: a casing one and a
    // cpi.* namespace-vocabulary one.
    const std::map<std::string, int> expect = {
        {"stat-dup", 1},      {"stat-name", 2},
        {"naked-new", 1},     {"hot-map", 1},
        {"cycle-type", 1},    {"no-rand", 1},
        {"no-float-timing", 1},
        {"using-namespace-header", 1},
        {"include-guard", 1}, {"bad-waiver", 1},
    };
    EXPECT_EQ(expect, counts) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

TEST(lint_fixtures, tree_findings_name_the_seeded_files)
{
    const auto findings = lintFixture("tree");
    auto fileOf = [&](const std::string &rule) {
        for (const auto &f : findings) {
            if (f.rule == rule)
                return f.file;
        }
        return std::string("<none>");
    };
    EXPECT_EQ("src/sim/stat_dup.cc", fileOf("stat-dup"));
    EXPECT_EQ("src/sim/stat_name.cc", fileOf("stat-name"));
    EXPECT_EQ("src/isa/naked_new.cc", fileOf("naked-new"));
    EXPECT_EQ("src/mem/hot_map.cc", fileOf("hot-map"));
    EXPECT_EQ("src/core/cycle_type.cc", fileOf("cycle-type"));
    EXPECT_EQ("src/core/rand_use.cc", fileOf("no-rand"));
    EXPECT_EQ("src/runahead/float_timing.cc",
              fileOf("no-float-timing"));
    EXPECT_EQ("src/common/using_ns.hh",
              fileOf("using-namespace-header"));
    EXPECT_EQ("src/common/bad_guard.hh", fileOf("include-guard"));
    EXPECT_EQ("src/sim/bad_waiver.cc", fileOf("bad-waiver"));
}

TEST(lint_fixtures, drift_cross_checks_def_header_and_schema)
{
    const auto findings = lintFixture("drift");
    ASSERT_EQ(4u, findings.size()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
    for (const auto &f : findings)
        EXPECT_EQ("schema-drift", f.rule);

    auto has = [&](const std::string &file, const std::string &needle) {
        return std::any_of(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               return f.file == file &&
                                      f.message.find(needle) !=
                                          std::string::npos;
                           });
    };
    // Field in the struct but missing from the .def manifest.
    EXPECT_TRUE(has("src/mini/mini.hh", "depth"));
    // Struct whose defining header is gone.
    EXPECT_TRUE(has("src/sim/config_fields.def", "gone.hh"));
    // Stale manifest entry the struct no longer has (the waived
    // `ghost` twin must not surface).
    EXPECT_TRUE(has("src/sim/config_fields.def", "'stale'"));
    EXPECT_FALSE(has("src/sim/config_fields.def", "'ghost'"));
    // Manifest key never registered with the schema.
    EXPECT_TRUE(has("src/sim/config_fields.def", "mini.height"));
}

TEST(lint_fixtures, clean_tree_has_zero_findings)
{
    const auto findings = lintFixture("clean");
    EXPECT_TRUE(findings.empty()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

TEST(lint_scrub, blanks_comments_and_literal_contents)
{
    const auto out = scrubSource({
        "int x = 0; // new Widget",
        "const char *m = \"rand() inside\";",
        "auto r = R\"(std::unordered_map<int,int>)\";",
        "char q = 'x'; f(y);",
        "/* using namespace std; */ int z;",
    });
    ASSERT_EQ(5u, out.size());
    EXPECT_EQ(std::string::npos, out[0].find("new"));
    EXPECT_NE(std::string::npos, out[0].find("int x = 0;"));
    EXPECT_EQ(std::string::npos, out[1].find("rand"));
    EXPECT_EQ(std::string::npos, out[2].find("unordered_map"));
    EXPECT_EQ(std::string::npos, out[3].find('x'));
    EXPECT_NE(std::string::npos, out[3].find("f(y);"));
    EXPECT_EQ(std::string::npos, out[4].find("using"));
    EXPECT_NE(std::string::npos, out[4].find("int z;"));
}

TEST(lint_scrub, digit_separator_is_not_a_char_literal)
{
    // If 1'000 opened a char literal, everything up to the next quote
    // would be blanked and the trailing call would vanish.
    const auto out = scrubSource({"unsigned k = 1'000; g(h);"});
    ASSERT_EQ(1u, out.size());
    EXPECT_NE(std::string::npos, out[0].find("000"));
    EXPECT_NE(std::string::npos, out[0].find("g(h);"));
}

TEST(lint_scrub, block_comment_spans_lines)
{
    const auto out = scrubSource({
        "int a; /* start",
        "   rand() still comment",
        "end */ int b;",
    });
    ASSERT_EQ(3u, out.size());
    EXPECT_NE(std::string::npos, out[0].find("int a;"));
    EXPECT_EQ(std::string::npos, out[1].find("rand"));
    EXPECT_NE(std::string::npos, out[2].find("int b;"));
}

TEST(lint_tree, real_source_tree_is_clean)
{
    Options opts;
    opts.root = DVR_LINT_SOURCE_ROOT;
    const auto findings = runLint(opts);
    EXPECT_TRUE(findings.empty()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

} // namespace
