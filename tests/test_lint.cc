/**
 * @file
 * dvr-lint's own test suite: each fixture tree under
 * tests/lint_fixtures/ seeds exactly one live violation per rule plus
 * one waived violation, so these tests pin both detection and the
 * waiver mechanism. Suite names are lowercase so `ctest -R lint`
 * selects them together with the tree-wide lint.tree check.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

using dvr::lint::Finding;
using dvr::lint::Options;
using dvr::lint::runLint;
using dvr::lint::scrubSource;

std::vector<Finding>
lintFixture(const std::string &name)
{
    Options opts;
    opts.root = std::string(DVR_LINT_FIXTURE_DIR) + "/" + name;
    return runLint(opts);
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> counts;
    for (const Finding &f : findings)
        ++counts[f.rule];
    return counts;
}

TEST(lint_rules, registry_lists_every_rule_once)
{
    const auto &rs = dvr::lint::rules();
    ASSERT_FALSE(rs.empty());
    for (const auto &r : rs) {
        EXPECT_TRUE(dvr::lint::isRule(r.id));
        EXPECT_EQ(1, std::count_if(rs.begin(), rs.end(),
                                   [&](const auto &o) {
                                       return std::string(o.id) == r.id;
                                   }))
            << r.id;
    }
    EXPECT_FALSE(dvr::lint::isRule("not-a-rule"));
}

TEST(lint_fixtures, tree_seeds_exactly_one_finding_per_line_rule)
{
    const auto findings = lintFixture("tree");
    const auto counts = countByRule(findings);

    // One live violation per rule; the waived twin in each fixture
    // file must not surface. schema-drift is exercised by the `drift`
    // fixture (this tree has no config_fields.def).
    // stat-name seeds three live violations: a casing one and a
    // namespace-vocabulary one each for cpi.* and serve.*.
    const std::map<std::string, int> expect = {
        {"stat-dup", 1},      {"stat-name", 3},
        {"naked-new", 1},     {"hot-map", 1},
        {"cycle-type", 1},    {"no-rand", 1},
        {"no-float-timing", 1},
        {"using-namespace-header", 1},
        {"include-guard", 1}, {"bad-waiver", 1},
    };
    EXPECT_EQ(expect, counts) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

TEST(lint_fixtures, tree_findings_name_the_seeded_files)
{
    const auto findings = lintFixture("tree");
    auto fileOf = [&](const std::string &rule) {
        for (const auto &f : findings) {
            if (f.rule == rule)
                return f.file;
        }
        return std::string("<none>");
    };
    EXPECT_EQ("src/sim/stat_dup.cc", fileOf("stat-dup"));
    EXPECT_EQ("src/sim/stat_name.cc", fileOf("stat-name"));
    EXPECT_EQ("src/isa/naked_new.cc", fileOf("naked-new"));
    EXPECT_EQ("src/mem/hot_map.cc", fileOf("hot-map"));
    EXPECT_EQ("src/core/cycle_type.cc", fileOf("cycle-type"));
    EXPECT_EQ("src/core/rand_use.cc", fileOf("no-rand"));
    EXPECT_EQ("src/runahead/float_timing.cc",
              fileOf("no-float-timing"));
    EXPECT_EQ("src/common/using_ns.hh",
              fileOf("using-namespace-header"));
    EXPECT_EQ("src/common/bad_guard.hh", fileOf("include-guard"));
    EXPECT_EQ("src/sim/bad_waiver.cc", fileOf("bad-waiver"));
}

TEST(lint_fixtures, drift_cross_checks_def_header_and_schema)
{
    const auto findings = lintFixture("drift");
    ASSERT_EQ(4u, findings.size()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
    for (const auto &f : findings)
        EXPECT_EQ("schema-drift", f.rule);

    auto has = [&](const std::string &file, const std::string &needle) {
        return std::any_of(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               return f.file == file &&
                                      f.message.find(needle) !=
                                          std::string::npos;
                           });
    };
    // Field in the struct but missing from the .def manifest.
    EXPECT_TRUE(has("src/mini/mini.hh", "depth"));
    // Struct whose defining header is gone.
    EXPECT_TRUE(has("src/sim/config_fields.def", "gone.hh"));
    // Stale manifest entry the struct no longer has (the waived
    // `ghost` twin must not surface).
    EXPECT_TRUE(has("src/sim/config_fields.def", "'stale'"));
    EXPECT_FALSE(has("src/sim/config_fields.def", "'ghost'"));
    // Manifest key never registered with the schema.
    EXPECT_TRUE(has("src/sim/config_fields.def", "mini.height"));
}

TEST(lint_fixtures, clean_tree_has_zero_findings)
{
    const auto findings = lintFixture("clean");
    EXPECT_TRUE(findings.empty()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

TEST(lint_scrub, blanks_comments_and_literal_contents)
{
    const auto out = scrubSource({
        "int x = 0; // new Widget",
        "const char *m = \"rand() inside\";",
        "auto r = R\"(std::unordered_map<int,int>)\";",
        "char q = 'x'; f(y);",
        "/* using namespace std; */ int z;",
    });
    ASSERT_EQ(5u, out.size());
    EXPECT_EQ(std::string::npos, out[0].find("new"));
    EXPECT_NE(std::string::npos, out[0].find("int x = 0;"));
    EXPECT_EQ(std::string::npos, out[1].find("rand"));
    EXPECT_EQ(std::string::npos, out[2].find("unordered_map"));
    EXPECT_EQ(std::string::npos, out[3].find('x'));
    EXPECT_NE(std::string::npos, out[3].find("f(y);"));
    EXPECT_EQ(std::string::npos, out[4].find("using"));
    EXPECT_NE(std::string::npos, out[4].find("int z;"));
}

TEST(lint_scrub, digit_separator_is_not_a_char_literal)
{
    // If 1'000 opened a char literal, everything up to the next quote
    // would be blanked and the trailing call would vanish.
    const auto out = scrubSource({"unsigned k = 1'000; g(h);"});
    ASSERT_EQ(1u, out.size());
    EXPECT_NE(std::string::npos, out[0].find("000"));
    EXPECT_NE(std::string::npos, out[0].find("g(h);"));
}

TEST(lint_scrub, block_comment_spans_lines)
{
    const auto out = scrubSource({
        "int a; /* start",
        "   rand() still comment",
        "end */ int b;",
    });
    ASSERT_EQ(3u, out.size());
    EXPECT_NE(std::string::npos, out[0].find("int a;"));
    EXPECT_EQ(std::string::npos, out[1].find("rand"));
    EXPECT_NE(std::string::npos, out[2].find("int b;"));
}

std::string
findingsText(const std::vector<Finding> &findings)
{
    std::string all;
    for (const Finding &f : findings)
        all += f.toString() + "\n";
    return all;
}

TEST(lint_fixtures, semantic_tree_seeds_one_finding_per_rule)
{
    const auto findings = lintFixture("semantic");
    const auto counts = countByRule(findings);

    // One live violation per semantic rule; every fixture file also
    // carries a waived twin that must not surface. guarded-by seeds
    // two: a class-member contract and a file-scope one. bad-waiver
    // here is the unused-waiver form: a waiver that suppresses
    // nothing. stat-schema needs a tests/stats_schema.inc and is
    // exercised by the `schema` fixture instead.
    const std::map<std::string, int> expect = {
        {"unordered-iteration", 1}, {"wall-clock", 1},
        {"pointer-key", 1},         {"guarded-by", 2},
        {"relaxed-atomic", 1},      {"hot-alloc", 1},
        {"bad-waiver", 1},
    };
    EXPECT_EQ(expect, counts) << findingsText(findings);
}

TEST(lint_fixtures, semantic_findings_name_the_seeded_files)
{
    const auto findings = lintFixture("semantic");
    auto fileOf = [&](const std::string &rule) {
        for (const auto &f : findings) {
            if (f.rule == rule)
                return f.file;
        }
        return std::string("<none>");
    };
    EXPECT_EQ("src/sim/clock_use.cc", fileOf("wall-clock"));
    EXPECT_EQ("src/core/relaxed.cc", fileOf("relaxed-atomic"));
    EXPECT_EQ("src/mem/ptr_key.cc", fileOf("pointer-key"));
    EXPECT_EQ("src/sim/guarded.cc", fileOf("guarded-by"));
    EXPECT_EQ("src/core/hot.cc", fileOf("hot-alloc"));
    EXPECT_EQ("src/sim/unordered_iter.cc",
              fileOf("unordered-iteration"));
    EXPECT_EQ("src/common/unused_waiver.cc", fileOf("bad-waiver"));
}

TEST(lint_fixtures, hot_alloc_reports_the_reaching_call_chain)
{
    // The finding must say HOW the alloc is hot: the call chain from
    // the dvr-hot-path root down to the allocating function.
    const auto findings = lintFixture("semantic");
    for (const auto &f : findings) {
        if (f.rule != "hot-alloc")
            continue;
        EXPECT_NE(std::string::npos,
                  f.message.find("hotTick -> helperAlloc"))
            << f.message;
        EXPECT_NE(std::string::npos, f.message.find("make_unique"))
            << f.message;
        return;
    }
    FAIL() << "no hot-alloc finding";
}

TEST(lint_fixtures, schema_fixture_closes_the_registry_both_ways)
{
    const auto findings = lintFixture("schema");
    const auto counts = countByRule(findings);
    const std::map<std::string, int> expect = {{"stat-schema", 3}};
    EXPECT_EQ(expect, counts) << findingsText(findings);

    auto has = [&](const std::string &file, const std::string &needle) {
        return std::any_of(findings.begin(), findings.end(),
                           [&](const Finding &f) {
                               return f.file == file &&
                                      f.message.find(needle) !=
                                          std::string::npos;
                           });
    };
    // Registered in src/ but missing from the registry.
    EXPECT_TRUE(has("src/sim/register_stats.cc", "unlisted_stat"));
    // Registry entry nothing registers any more.
    EXPECT_TRUE(has("tests/stats_schema.inc", "ghost_stat"));
    // Required key matching no registered name; the family entry
    // ("family_hist_") must cover the dynamic-suffix registration.
    EXPECT_TRUE(has("tests/stats_schema.inc", "core.missing_stat"));
    EXPECT_FALSE(has("tests/stats_schema.inc", "family_hist_"));
}

TEST(lint_scrub, line_comment_continuation_hides_next_line)
{
    // A `//` comment ending in a backslash continues onto the next
    // physical line; code there must not reach the token rules.
    const auto out = scrubSource({
        "int a; // hidden by continuation \\",
        "rand(); int *p = new int;",
        "int b;",
    });
    ASSERT_EQ(3u, out.size());
    EXPECT_NE(std::string::npos, out[0].find("int a;"));
    EXPECT_EQ(std::string::npos, out[1].find("rand"));
    EXPECT_EQ(std::string::npos, out[1].find("new"));
    EXPECT_NE(std::string::npos, out[2].find("int b;"));
}

TEST(lint_baseline, round_trip_suppresses_then_goes_stale)
{
    const std::string path =
        ::testing::TempDir() + "dvr_lint_baseline_test.json";

    // Ratchet step 1: baseline the fixture's pre-existing findings;
    // the tree then lints clean.
    const auto live = lintFixture("semantic");
    ASSERT_FALSE(live.empty());
    {
        std::ofstream out(path);
        out << dvr::lint::baselineJson(live);
    }
    Options opts;
    opts.root = std::string(DVR_LINT_FIXTURE_DIR) + "/semantic";
    opts.baselinePath = path;
    EXPECT_TRUE(runLint(opts).empty())
        << findingsText(runLint(opts));

    // Ratchet step 2: an entry whose finding has been fixed fails as
    // stale-baseline until it is removed.
    auto withGhost = live;
    withGhost.push_back(
        {"src/core/hot.cc", 1, "no-rand", "a fixed finding"});
    {
        std::ofstream out(path);
        out << dvr::lint::baselineJson(withGhost);
    }
    const auto stale = runLint(opts);
    ASSERT_EQ(1u, stale.size()) << findingsText(stale);
    EXPECT_EQ("stale-baseline", stale[0].rule);
    EXPECT_NE(std::string::npos, stale[0].message.find("no-rand"))
        << stale[0].message;
    std::remove(path.c_str());
}

TEST(lint_baseline, load_parses_what_baseline_json_writes)
{
    const std::string path =
        ::testing::TempDir() + "dvr_lint_baseline_parse.json";
    const std::vector<Finding> findings = {
        {"src/a.cc", 3, "no-rand", "message \"with\" quotes\\slash"},
        {"src/b.hh", 9, "naked-new", "plain"},
    };
    {
        std::ofstream out(path);
        out << dvr::lint::baselineJson(findings);
    }
    const auto entries = dvr::lint::loadBaseline(path);
    ASSERT_EQ(2u, entries.size());
    EXPECT_EQ("src/a.cc", entries[0].file);
    EXPECT_EQ("no-rand", entries[0].rule);
    EXPECT_EQ("message \"with\" quotes\\slash", entries[0].message);
    EXPECT_EQ("src/b.hh", entries[1].file);
    // Missing file = empty baseline, not an error.
    std::remove(path.c_str());
    EXPECT_TRUE(dvr::lint::loadBaseline(path).empty());
}

TEST(lint_parallel, output_is_identical_at_any_job_count)
{
    // Per-file analysis fans out over the task pool, but findings are
    // gathered into per-file slots and sorted, so the report must be
    // byte-identical however many workers run.
    Options serial;
    serial.root = DVR_LINT_SOURCE_ROOT;
    serial.jobs = 1;
    Options parallel = serial;
    parallel.jobs = 8;
    EXPECT_EQ(findingsText(runLint(serial)),
              findingsText(runLint(parallel)));

    Options fixtureSerial;
    fixtureSerial.root =
        std::string(DVR_LINT_FIXTURE_DIR) + "/semantic";
    fixtureSerial.jobs = 1;
    Options fixtureParallel = fixtureSerial;
    fixtureParallel.jobs = 8;
    EXPECT_EQ(findingsText(runLint(fixtureSerial)),
              findingsText(runLint(fixtureParallel)));
}

TEST(lint_tree, real_source_tree_is_clean)
{
    Options opts;
    opts.root = DVR_LINT_SOURCE_ROOT;
    const auto findings = runLint(opts);
    EXPECT_TRUE(findings.empty()) << [&] {
        std::string all;
        for (const auto &f : findings)
            all += f.toString() + "\n";
        return all;
    }();
}

} // namespace
