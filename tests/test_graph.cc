/** @file CSR graphs and synthetic generators. */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "mem/sim_memory.hh"

namespace dvr {
namespace {

TEST(Csr, BuildsCorrectOffsetsAndEdges)
{
    SimMemory mem(1 << 22);
    EdgeList edges = {{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 3}};
    CsrGraph g = buildCsr(mem, 4, edges);
    EXPECT_EQ(g.numNodes, 4u);
    EXPECT_EQ(g.numEdges, 6u);
    EXPECT_EQ(g.hOffsets[0], 0u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 3u);
    EXPECT_EQ(g.degree(3), 0u);
    EXPECT_EQ(g.maxDegree(), 3u);
    // Simulated memory mirrors the host copy exactly.
    for (uint64_t v = 0; v <= g.numNodes; ++v)
        EXPECT_EQ(mem.read64(g.offsets, v), g.hOffsets[v]);
    for (uint64_t e = 0; e < g.numEdges; ++e)
        EXPECT_EQ(mem.read64(g.edges, e), g.hEdges[e]);
}

TEST(Csr, OffsetsAreMonotoneAndSumToEdges)
{
    SimMemory mem(1 << 24);
    auto edges = rmatEdges(10, 8, {}, 1);
    CsrGraph g = buildCsr(mem, 1 << 10, edges);
    for (uint64_t v = 0; v < g.numNodes; ++v)
        EXPECT_LE(g.hOffsets[v], g.hOffsets[v + 1]);
    EXPECT_EQ(g.hOffsets[g.numNodes], g.numEdges);
}

TEST(Generators, Deterministic)
{
    auto a = rmatEdges(8, 4, {}, 99);
    auto b = rmatEdges(8, 4, {}, 99);
    EXPECT_EQ(a, b);
    auto c = uniformEdges(256, 1024, 7);
    auto d = uniformEdges(256, 1024, 7);
    EXPECT_EQ(c, d);
}

TEST(Generators, EndpointsInRange)
{
    for (auto &[u, v] : rmatEdges(8, 4, {}, 3)) {
        EXPECT_LT(u, 256u);
        EXPECT_LT(v, 256u);
    }
    for (auto &[u, v] : uniformEdges(100, 500, 3)) {
        EXPECT_LT(u, 100u);
        EXPECT_LT(v, 100u);
    }
}

TEST(Generators, RmatIsSkewedUniformIsNot)
{
    SimMemory m1(1 << 26), m2(1 << 26);
    const unsigned scale = 12;
    CsrGraph pl = buildCsr(m1, 1ULL << scale,
                           rmatEdges(scale, 16, {0.6, 0.18, 0.18}, 5));
    CsrGraph ur =
        buildCsr(m2, 1ULL << scale,
                 uniformEdges(1ULL << scale, 16ULL << scale, 5));
    // Power-law max degree dwarfs the uniform graph's.
    EXPECT_GT(pl.maxDegree(), 4 * ur.maxDegree());
    EXPECT_NEAR(pl.avgDegree(), 16.0, 0.1);
    EXPECT_NEAR(ur.avgDegree(), 16.0, 0.1);
}

TEST(Inputs, AllFiveSpecsResolve)
{
    EXPECT_EQ(graphInputs().size(), 5u);
    for (const char *n : {"KR", "LJN", "ORK", "TW", "UR"}) {
        const GraphInputSpec &s = graphInput(n);
        EXPECT_EQ(s.name, n);
        EXPECT_GT(inputNodes(s, 0), 0u);
        // Scale shift halves the node count per step.
        EXPECT_EQ(inputNodes(s, 1), inputNodes(s, 0) / 2);
    }
    EXPECT_THROW(graphInput("nope"), std::runtime_error);
}

} // namespace
} // namespace dvr
