/**
 * @file
 * The dvr_serve subsystem (src/serve/): spool lifecycle, the
 * content-addressed result cache, journal replay (including torn
 * tails), job-spec validation, and an end-to-end in-process daemon
 * run with dedup and journal-resume counters.
 */

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "serve/daemon.hh"
#include "serve/journal.hh"
#include "serve/json.hh"
#include "serve/result_cache.hh"
#include "serve/spool.hh"
#include "sim/manifest.hh"

namespace {

using namespace dvr;
namespace fs = std::filesystem;

/** A fresh spool root per test, removed on exit. */
class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        root_ = (fs::temp_directory_path() /
                 ("dvr_serve_test_" +
                  std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
                    .string();
        fs::remove_all(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    static std::string slurp(const std::string &path)
    {
        std::string text;
        serve::Spool::readFile(path, text);
        return text;
    }

    std::string root_;
};

TEST_F(ServeTest, SpoolLifecycleIsRenameDriven)
{
    serve::Spool spool(root_);
    ASSERT_TRUE(spool.init());
    for (const std::string &d :
         {spool.queueDir(), spool.runningDir(), spool.doneDir(),
          spool.failedDir(), spool.journalDir(), spool.cacheDir(),
          spool.tmpDir()}) {
        EXPECT_TRUE(fs::is_directory(d)) << d;
    }

    const std::string queued = spool.submit("jobA", "{\"x\": 1}\n");
    ASSERT_FALSE(queued.empty());
    EXPECT_EQ("{\"x\": 1}\n", slurp(queued));
    EXPECT_EQ(std::vector<std::string>{"jobA"},
              spool.list(spool.queueDir()));
    // tmp/ staging must not leak files once the rename lands.
    EXPECT_TRUE(fs::is_empty(spool.tmpDir()));

    // Same-name resubmission while queued is refused.
    EXPECT_TRUE(spool.submit("jobA", "{}").empty());

    ASSERT_TRUE(spool.claim("jobA"));
    EXPECT_TRUE(spool.list(spool.queueDir()).empty());
    EXPECT_EQ(std::vector<std::string>{"jobA"},
              spool.list(spool.runningDir()));
    // ...and while running, too.
    EXPECT_TRUE(spool.submit("jobA", "{}").empty());
    EXPECT_FALSE(spool.claim("jobA"));   // vanished from queue/

    ASSERT_TRUE(spool.finish("jobA", true));
    EXPECT_EQ(std::vector<std::string>{"jobA"},
              spool.list(spool.doneDir()));

    EXPECT_FALSE(spool.drainRequested());
    spool.requestDrain();
    EXPECT_TRUE(spool.drainRequested());

    EXPECT_EQ("jobA", serve::Spool::jobNameOf("/x/queue/jobA.json"));
}

TEST_F(ServeTest, CacheKeyCoversEveryIdentityField)
{
    const std::string base = serve::ResultCache::makeKey(
        "{\"core.robSize\": \"350\"}", "bfs", "KR", 4, "abc123");
    EXPECT_EQ(base, serve::ResultCache::makeKey(
                        "{ \"core.robSize\":   \"350\" }", "bfs",
                        "KR", 4, "abc123"))
        << "key must canonicalize (minify) the config dump";
    EXPECT_NE(base, serve::ResultCache::makeKey(
                        "{\"core.robSize\": \"512\"}", "bfs", "KR",
                        4, "abc123"));
    EXPECT_NE(base, serve::ResultCache::makeKey(
                        "{\"core.robSize\": \"350\"}", "cc", "KR", 4,
                        "abc123"));
    EXPECT_NE(base, serve::ResultCache::makeKey(
                        "{\"core.robSize\": \"350\"}", "bfs", "UR",
                        4, "abc123"));
    EXPECT_NE(base, serve::ResultCache::makeKey(
                        "{\"core.robSize\": \"350\"}", "bfs", "KR",
                        5, "abc123"));
    EXPECT_NE(base, serve::ResultCache::makeKey(
                        "{\"core.robSize\": \"350\"}", "bfs", "KR",
                        4, "def456"));
}

TEST_F(ServeTest, CacheRoundTripsAndCollisionsDegradeToMisses)
{
    serve::Spool spool(root_);
    ASSERT_TRUE(spool.init());
    serve::ResultCache cache(spool);

    const std::string key = serve::ResultCache::makeKey(
        "{\"a\": \"1\"}", "camel", "", 6, "sha");
    EXPECT_FALSE(cache.lookup(key).has_value());

    ASSERT_TRUE(cache.store(key, "{\n  \"core.ipc\": 1.5\n}"));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ("{\"core.ipc\":1.5}", minifyJson(*hit));

    // Overwrite the entry with one recording a different key: a hash
    // collision must read as a miss, never as a wrong result.
    const std::string name =
        spool.cacheDir() + "/" +
        fs::directory_iterator(spool.cacheDir())
            ->path()
            .filename()
            .string();
    std::ofstream(name) << "{\"key\": \"something else\", "
                           "\"stats\": {\"core.ipc\": 9.9}}\n";
    EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST_F(ServeTest, JournalReplayDropsOnlyTheTornTail)
{
    fs::create_directories(root_);
    const std::string path = root_ + "/j.manifest.json";
    RunManifest header("jobJ");
    {
        serve::Journal j(path);
        ASSERT_TRUE(j.start(header.toJournalHeaderLine()));
        ASSERT_TRUE(
            j.appendRun(0, "p0", "k0", "{\"core.ipc\": 1}", 0.5));
        ASSERT_TRUE(j.appendEvent(
            "{\"event\": \"resume\", \"prior_wall_seconds\": 2.5}"));
        ASSERT_TRUE(
            j.appendRun(2, "p2", "k2", "{\"core.ipc\": 3}", 1.25));
        // appendRun is idempotent per point: a resumed daemon may
        // re-offer a run the journal already has.
        ASSERT_TRUE(
            j.appendRun(0, "p0", "k0", "{\"core.ipc\": 7}", 9.0));
    }
    {
        // Tear the tail, as a kill -9 mid-append would.
        std::ofstream out(path, std::ios::app);
        out << "{\"point\": 3, \"label\": \"p3\", \"t";
    }

    serve::Journal j(path);
    ASSERT_TRUE(j.replay());
    ASSERT_EQ(2u, j.runCount());
    EXPECT_EQ("p0", j.runs()[0].label);
    EXPECT_EQ("k0", j.runs()[0].key);
    EXPECT_EQ(minifyJson("{\"core.ipc\": 1}"), j.runs()[0].statsJson)
        << "the duplicate append must not replace the first run";
    EXPECT_EQ("p2", j.runs()[1].label);
    EXPECT_TRUE(j.hasPoint(0));
    EXPECT_FALSE(j.hasPoint(1));
    EXPECT_TRUE(j.hasPoint(2));
    ASSERT_EQ(1u, j.priorSegments().size());
    EXPECT_DOUBLE_EQ(2.5, j.priorSegments()[0]);
    EXPECT_DOUBLE_EQ(1.25, j.tailSegmentSeconds());

    // Sans the torn tail the journal file is a valid journal-append
    // manifest; with it, the strict validator reports the tear.
    const std::string text = slurp(path);
    EXPECT_EQ("", validateManifestJson(
                      text.substr(0, text.rfind("{\"point\": 3"))));
    EXPECT_NE("", validateManifestJson(text));

    // Damage an *earlier* line: replay must refuse the journal.
    std::string mangled = text;
    mangled[mangled.find("{\"point\": 0")] = 'x';
    std::ofstream(path, std::ios::trunc) << mangled;
    serve::Journal j2(path);
    EXPECT_FALSE(j2.replay());
}

TEST_F(ServeTest, JobSpecParseRejectsBadShapes)
{
    serve::JobSpec job;
    std::string err;

    EXPECT_FALSE(serve::JobSpec::parse("j", "not json", job, &err));

    EXPECT_FALSE(serve::JobSpec::parse(
        "j", "{\"workload\": \"bfs\"}", job, &err));
    EXPECT_NE(std::string::npos, err.find("points"));

    EXPECT_FALSE(serve::JobSpec::parse(
        "j", "{\"points\": [{\"label\": \"a\"}]}", job, &err));
    EXPECT_NE(std::string::npos, err.find("workload"));

    EXPECT_FALSE(serve::JobSpec::parse(
        "j",
        "{\"workload\": \"bfs\", \"input\": \"KR\", \"points\": "
        "[{\"label\": \"a\"}, {\"label\": \"a\"}]}",
        job, &err));
    EXPECT_NE(std::string::npos, err.find("duplicate"));

    // Config values must be strings (they are applied like --set).
    EXPECT_FALSE(serve::JobSpec::parse(
        "j",
        "{\"workload\": \"bfs\", \"config\": {\"core.width\": 5}, "
        "\"points\": [{\"label\": \"a\"}]}",
        job, &err));

    ASSERT_TRUE(serve::JobSpec::parse(
        "j",
        "{\"workload\": \"bfs\", \"input\": \"KR\", \"scale_shift\": "
        "6, \"config\": {\"core.width\": \"5\"}, \"points\": "
        "[{\"label\": \"a\"}, {\"label\": \"b\", \"workload\": "
        "\"camel\", \"input\": \"\", \"set\": {\"sim.technique\": "
        "\"vr\"}}]}",
        job, &err))
        << err;
    EXPECT_EQ(2u, job.points.size());
    EXPECT_EQ(6u, job.scaleShift);
    EXPECT_EQ("camel", job.points[1].workload);

    // toJson round-trips through parse.
    serve::JobSpec again;
    ASSERT_TRUE(
        serve::JobSpec::parse("j", job.toJson(), again, &err))
        << err;
    EXPECT_EQ(job.points[1].sets, again.points[1].sets);
    EXPECT_EQ(job.config, again.config);
}

TEST_F(ServeTest, PointKeyIgnoresServeKeysAndLabels)
{
    serve::JobSpec job;
    std::string err;
    ASSERT_TRUE(serve::JobSpec::parse(
        "j",
        "{\"workload\": \"camel\", \"input\": \"\", \"points\": ["
        "{\"label\": \"one\"},"
        "{\"label\": \"two\", \"set\": {\"serve.workers\": \"7\"}},"
        "{\"label\": \"three\", \"set\": {\"core.robSize\": "
        "\"128\"}}]}",
        job, &err))
        << err;
    // Scheduling knobs never change simulated results, so they must
    // not split the cache; real config keys must.
    EXPECT_EQ(job.pointKey(0), job.pointKey(1));
    EXPECT_NE(job.pointKey(0), job.pointKey(2));
}

TEST_F(ServeTest, InProcessDaemonDedupesJournalsAndResumes)
{
    const std::string jobText =
        "{\"workload\": \"camel\", \"input\": \"\", \"scale_shift\": "
        "8, \"config\": {\"sim.maxInstructions\": \"2000\"}, "
        "\"points\": ["
        "{\"label\": \"camel/ref\"},"
        "{\"label\": \"camel/ref-twin\"},"
        "{\"label\": \"camel/vr\", \"set\": {\"sim.technique\": "
        "\"vr\"}}]}";

    serve::Daemon::Options opt;
    opt.spoolRoot = root_;
    opt.serve.workers = 2;
    opt.inProcess = true;
    serve::Daemon daemon(opt);
    ASSERT_TRUE(daemon.init());
    ASSERT_FALSE(daemon.spool().submit("tiny", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());

    const serve::ServeCounters &first = daemon.lastJob();
    EXPECT_EQ(3u, first.pointsTotal);
    EXPECT_EQ(2u, first.pointsRun);
    EXPECT_EQ(1u, first.pointsDeduped)
        << "ref-twin must be served by ref's cache entry";
    EXPECT_EQ(0u, first.cacheHits);
    EXPECT_EQ(3u, first.cacheMisses);
    EXPECT_EQ(0u, first.journalResumed);
    EXPECT_EQ(0u, first.retries);

    // The finished artifacts: manifest + counters in done/, and a
    // replayable journal that validates as the journal variant.
    const std::string done = daemon.spool().doneDir();
    const std::string manifest =
        slurp(done + "/MANIFEST_tiny.json");
    EXPECT_EQ("", validateManifestJson(manifest)) << manifest;
    const std::string journalText =
        slurp(daemon.spool().journalDir() + "/tiny.manifest.json");
    EXPECT_EQ("", validateManifestJson(journalText));
    EXPECT_NE(std::string::npos, journalText.find("\"key\": "))
        << "run lines must record the cache-key digest for resume "
           "validation";
    serve::JsonValue counters;
    ASSERT_TRUE(
        serve::parseJson(slurp(done + "/tiny.serve.json"), counters));
    const serve::JsonValue *block = counters.find("serve");
    ASSERT_NE(nullptr, block);
    EXPECT_EQ(1.0, block->getNumber("points_deduped", -1.0));

    // Every label exactly once, in point order.
    serve::JsonValue doc;
    ASSERT_TRUE(serve::parseJson(manifest, doc));
    const serve::JsonValue *runs = doc.find("runs");
    ASSERT_NE(nullptr, runs);
    ASSERT_EQ(3u, runs->items.size());
    std::set<std::string> labels;
    for (const serve::JsonValue &run : runs->items)
        labels.insert(run.getString("label"));
    EXPECT_EQ(3u, labels.size());
    // Identical points must journal identical stats.
    EXPECT_EQ(runs->items[0].find("stats")->raw,
              runs->items[1].find("stats")->raw);

    // Resubmit: everything is served from the journal, nothing runs.
    ASSERT_FALSE(daemon.spool().submit("tiny", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());
    const serve::ServeCounters &second = daemon.lastJob();
    EXPECT_EQ(0u, second.pointsRun);
    EXPECT_EQ(3u, second.journalResumed);
    EXPECT_EQ(0u, second.cacheMisses);
    ASSERT_EQ(1u, daemon.lastPriorSegments().size());

    // A different job name with the same points: served entirely from
    // the cross-job result cache.
    ASSERT_FALSE(daemon.spool().submit("tiny2", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());
    EXPECT_EQ(0u, daemon.lastJob().pointsRun);
    EXPECT_EQ(3u, daemon.lastJob().cacheHits);
}

TEST_F(ServeTest, JsonStringEscapesRoundTrip)
{
    serve::JsonValue v;
    ASSERT_TRUE(serve::parseJson(
        "\"a\\nb\\t\\\\\\\"\\u0041\\u00e9\"", v));
    EXPECT_EQ("a\nb\t\\\"A\xc3\xa9", v.str);
    ASSERT_TRUE(serve::parseJson("\"\\ud83d\\ude00\"", v));
    EXPECT_EQ("\xf0\x9f\x98\x80", v.str) << "surrogate pair -> UTF-8";

    // Unsupported or malformed escapes are rejected, never silently
    // mangled (the old decoder turned "a\nb" into "anb").
    EXPECT_FALSE(serve::parseJson("\"\\q\"", v));
    EXPECT_FALSE(serve::parseJson("\"\\ud83d\"", v));
    EXPECT_FALSE(serve::parseJson("\"\\ud83dx\"", v));
    EXPECT_FALSE(serve::parseJson("\"\\u12g4\"", v));
    EXPECT_FALSE(serve::parseJson("\"\\u12\"", v));

    // jsonQuote escapes control characters so that quote -> parse is
    // the identity on any byte string (journal/manifest round trip).
    const std::string label = "a\nb\tc\x01 d\"e\\f";
    EXPECT_EQ("\"a\\nb\\tc\\u0001 d\\\"e\\\\f\"",
              serve::jsonQuote(label));
    ASSERT_TRUE(serve::parseJson(serve::jsonQuote(label), v));
    EXPECT_EQ(label, v.str);
}

TEST_F(ServeTest, ResumeValidatesJournalAgainstCurrentJob)
{
    const std::string jobText =
        "{\"workload\": \"camel\", \"input\": \"\", \"scale_shift\": "
        "8, \"config\": {\"sim.maxInstructions\": \"2000\"}, "
        "\"points\": ["
        "{\"label\": \"camel/ref\"},"
        "{\"label\": \"camel/vr\", \"set\": {\"sim.technique\": "
        "\"vr\"}}]}";
    serve::JobSpec job;
    std::string err;
    ASSERT_TRUE(serve::JobSpec::parse("res", jobText, job, &err))
        << err;

    serve::Daemon::Options opt;
    opt.spoolRoot = root_;
    opt.serve.workers = 2;
    opt.inProcess = true;
    serve::Daemon daemon(opt);
    ASSERT_TRUE(daemon.init());

    const auto seedJournal = [&](const std::string &name,
                                 const std::string &label,
                                 const std::string &digest) {
        serve::Journal j(daemon.spool().journalDir() + "/" + name +
                         ".manifest.json");
        RunManifest header(name);
        ASSERT_TRUE(j.start(header.toJournalHeaderLine()));
        ASSERT_TRUE(j.appendRun(0, label, digest,
                                "{\"core.ipc\": 42.125}", 0.25));
    };

    // A journal a killed daemon would have left: point 0 recorded
    // with the digest of the job's *current* cache key. Resume must
    // adopt it verbatim — the point never re-executes.
    seedJournal("res", job.points[0].label,
                serve::ResultCache::keyDigest(job.pointKey(0)));
    ASSERT_FALSE(daemon.spool().submit("res", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());
    EXPECT_EQ(1u, daemon.lastJob().journalResumed);
    EXPECT_EQ(1u, daemon.lastJob().pointsRun);
    EXPECT_NE(std::string::npos,
              slurp(daemon.spool().doneDir() + "/MANIFEST_res.json")
                  .find("42.125"))
        << "the journaled stats must be adopted, not recomputed";

    // Same journal shape but a key digest that does not match the
    // job as resolved now (an edited job re-submitted under the same
    // name, or a journal from another simulator build): discarded,
    // and the point computes fresh instead of serving stale stats.
    seedJournal("res2", job.points[0].label, "0123456789abcdef");
    ASSERT_FALSE(daemon.spool().submit("res2", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());
    EXPECT_EQ(0u, daemon.lastJob().journalResumed);
    EXPECT_EQ(1u, daemon.lastJob().pointsRun)
        << "point 0 was never truly executed, so it must run now";
    EXPECT_EQ(1u, daemon.lastJob().cacheHits)
        << "point 1 really ran under \"res\", so the cache serves it";
    EXPECT_EQ(std::string::npos,
              slurp(daemon.spool().doneDir() + "/MANIFEST_res2.json")
                  .find("42.125"))
        << "stale journaled stats must not reach the manifest";

    // A matching digest under a renamed label is stale too: labels
    // are manifest identity.
    seedJournal("res3", "renamed",
                serve::ResultCache::keyDigest(job.pointKey(0)));
    ASSERT_FALSE(daemon.spool().submit("res3", jobText).empty());
    ASSERT_EQ(0, daemon.runOnce());
    EXPECT_EQ(0u, daemon.lastJob().journalResumed);
    EXPECT_EQ(2u, daemon.lastJob().cacheHits);
}

TEST_F(ServeTest, ConcurrentDaemonsSkipLockedRunningJobs)
{
    const std::string jobText =
        "{\"workload\": \"camel\", \"input\": \"\", \"scale_shift\": "
        "8, \"config\": {\"sim.maxInstructions\": \"2000\"}, "
        "\"points\": [{\"label\": \"camel/ref\"}]}";
    serve::Daemon::Options opt;
    opt.spoolRoot = root_;
    opt.inProcess = true;
    serve::Daemon daemon(opt);
    ASSERT_TRUE(daemon.init());
    ASSERT_FALSE(daemon.spool().submit("locked", jobText).empty());
    ASSERT_TRUE(daemon.spool().claim("locked"));

    // A rival daemon owns the running/ job: it holds flock(2) on the
    // job file (released by the kernel on any death, kill -9
    // included, so a dead owner can never wedge the job).
    const std::string path = daemon.spool().jobPath(
        daemon.spool().runningDir(), "locked");
    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_LE(0, fd);
    ASSERT_EQ(0, ::flock(fd, LOCK_EX | LOCK_NB));

    // Adoption must skip the held job — no double execution, no
    // concurrent journal writers — and not count it as failed.
    EXPECT_EQ(0, daemon.runOnce());
    EXPECT_EQ(std::vector<std::string>{"locked"},
              daemon.spool().list(daemon.spool().runningDir()));
    EXPECT_TRUE(daemon.spool().list(daemon.spool().doneDir()).empty());

    // Owner gone: the job is adoptable again.
    ASSERT_EQ(0, ::flock(fd, LOCK_UN));
    ::close(fd);
    EXPECT_EQ(0, daemon.runOnce());
    EXPECT_EQ((std::vector<std::string>{"MANIFEST_locked", "locked",
                                        "locked.serve"}),
              daemon.spool().list(daemon.spool().doneDir()));
}

TEST_F(ServeTest, WorkerMainSkipsMalformedPointTokens)
{
    serve::Spool spool(root_);
    ASSERT_TRUE(spool.init());
    const std::string jobText =
        "{\"workload\": \"camel\", \"input\": \"\", \"scale_shift\": "
        "8, \"config\": {\"sim.maxInstructions\": \"2000\"}, "
        "\"points\": [{\"label\": \"camel/ref\"}]}";
    const std::string jobPath = root_ + "/wjob.json";
    {
        std::ofstream out(jobPath);
        out << jobText;
    }
    // Garbage --points tokens (non-numeric, signed, exponent,
    // overflowing, out-of-range index) are skipped with a warning —
    // never an uncaught std::stoull throw.
    EXPECT_EQ(0, serve::Daemon::workerMain(
                     root_, jobPath,
                     "x,-1,1e3,99999999999999999999,7,,0"));
    serve::JobSpec job;
    std::string err;
    ASSERT_TRUE(serve::JobSpec::parse("wjob", jobText, job, &err))
        << err;
    EXPECT_TRUE(
        serve::ResultCache(spool).lookup(job.pointKey(0)).has_value())
        << "the one valid in-range token (0) must still execute";
}

TEST_F(ServeTest, JobWithUnknownConfigKeyFailsCleanly)
{
    serve::Daemon::Options opt;
    opt.spoolRoot = root_;
    opt.inProcess = true;
    serve::Daemon daemon(opt);
    ASSERT_TRUE(daemon.init());
    ASSERT_FALSE(
        daemon.spool()
            .submit("bad", "{\"workload\": \"camel\", \"input\": "
                           "\"\", \"points\": [{\"label\": \"a\", "
                           "\"set\": {\"core.robSizz\": \"1\"}}]}")
            .empty());
    EXPECT_EQ(1, daemon.runOnce());
    EXPECT_EQ((std::vector<std::string>{"bad", "bad.serve"}),
              daemon.spool().list(daemon.spool().failedDir()));
    serve::JsonValue counters;
    ASSERT_TRUE(serve::parseJson(
        slurp(daemon.spool().failedDir() + "/bad.serve.json"),
        counters));
    const serve::JsonValue *failed = counters.find("failed");
    ASSERT_NE(nullptr, failed);
    EXPECT_TRUE(failed->boolean);
    EXPECT_NE("", counters.getString("reason"));
}

} // namespace
