/**
 * @file
 * Interval-sampled simulation tests: the CI math on deterministic
 * fixtures (tCritical95, summarizeWindows), the sampled-run phase
 * accounting, sampled-vs-exact CPI accuracy on a real workload, the
 * sampling-off parity guarantee, and the sim.sample.warm knob's
 * equivalence contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/sampling.hh"

namespace dvr {
namespace {

// ---------------------------------------------------------------------
// Confidence-interval math on deterministic fixtures.
// ---------------------------------------------------------------------

TEST(SampleMath, TCriticalMatchesTable)
{
    // Spot-check the two-sided 95% table at the ends and middle, and
    // the asymptote beyond dof 30.
    EXPECT_DOUBLE_EQ(tCritical95(0), 0.0);
    EXPECT_DOUBLE_EQ(tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(tCritical95(2), 4.303);
    EXPECT_DOUBLE_EQ(tCritical95(10), 2.228);
    EXPECT_DOUBLE_EQ(tCritical95(30), 2.042);
    EXPECT_DOUBLE_EQ(tCritical95(31), 1.960);
    EXPECT_DOUBLE_EQ(tCritical95(1'000'000), 1.960);
}

TEST(SampleMath, TCriticalIsMonotonicallyDecreasing)
{
    for (uint64_t dof = 1; dof < 35; ++dof)
        EXPECT_GE(tCritical95(dof), tCritical95(dof + 1)) << dof;
}

TEST(SampleMath, SummarizeEmptyAndSingleton)
{
    const SampleSummary none = summarizeWindows({});
    EXPECT_EQ(none.windows, 0u);
    EXPECT_DOUBLE_EQ(none.mean, 0.0);

    // One window: the estimate exists but no variance is claimable.
    const SampleSummary one = summarizeWindows({2.5});
    EXPECT_EQ(one.windows, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 2.5);
    EXPECT_DOUBLE_EQ(one.variance, 0.0);
    EXPECT_DOUBLE_EQ(one.ci95, 0.0);
}

TEST(SampleMath, SummarizeKnownFixture)
{
    // mean 3, unbiased variance ((-2)^2+0+2^2)/2 = 4, dof 2.
    const SampleSummary s = summarizeWindows({1.0, 3.0, 5.0});
    EXPECT_EQ(s.windows, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.variance, 4.0);
    EXPECT_DOUBLE_EQ(s.ci95, 4.303 * std::sqrt(4.0 / 3.0));
    EXPECT_DOUBLE_EQ(s.relCi95, s.ci95 / 3.0);
}

TEST(SampleMath, ConstantWindowsHaveZeroWidthInterval)
{
    const SampleSummary s =
        summarizeWindows(std::vector<double>(20, 1.75));
    EXPECT_EQ(s.windows, 20u);
    EXPECT_DOUBLE_EQ(s.mean, 1.75);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.ci95, 0.0);
    EXPECT_DOUBLE_EQ(s.relCi95, 0.0);
}

TEST(SampleMath, DefaultIntervalTargetsTwoHundredWindows)
{
    EXPECT_EQ(defaultSampleInterval(500'000), 50'000u);     // floor
    EXPECT_EQ(defaultSampleInterval(10'000'000), 50'000u);  // exactly
    EXPECT_EQ(defaultSampleInterval(100'000'000), 500'000u);
    EXPECT_EQ(defaultSampleInterval(500'000'000), 2'500'000u);
}

// ---------------------------------------------------------------------
// End-to-end sampled runs on a real workload. One shared prepared
// camel (DRAM-bound pointer chaser) — the build dominates runtime.
// ---------------------------------------------------------------------

class Sampled : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        WorkloadParams wp;
        wp.scaleShift = 4;
        prepared_ = std::make_unique<PreparedWorkload>("camel", "", wp,
                                                       96ULL << 20);
    }

    static void
    TearDownTestSuite()
    {
        prepared_.reset();
    }

    static SimConfig
    baseCfg(uint64_t budget)
    {
        SimConfig cfg = SimConfig::baseline(Technique::kBase);
        cfg.maxInstructions = budget;
        return cfg;
    }

    static std::unique_ptr<PreparedWorkload> prepared_;
};

std::unique_ptr<PreparedWorkload> Sampled::prepared_;

TEST_F(Sampled, PhaseAccountingIsExhaustive)
{
    SimConfig cfg = baseCfg(300'000);
    cfg.sample.interval = 50'000;
    const SimResult r = prepared_->run(cfg);

    const double total = r.stats.get("sample.insts_total");
    const double parts = r.stats.get("sample.insts_functional") +
                         r.stats.get("sample.insts_warmup") +
                         r.stats.get("sample.insts_measured");
    EXPECT_DOUBLE_EQ(total, parts);
    EXPECT_GT(r.stats.get("sample.windows"), 0.0);
    EXPECT_GT(r.stats.get("sample.insts_functional"), 0.0);

    // Extrapolation: core.instructions reports the whole run, not
    // just the measured slice, so downstream figures keep working.
    EXPECT_DOUBLE_EQ(r.stats.get("core.instructions"), total);
    EXPECT_GT(r.stats.get("sample.measured_cycles"), 0.0);
}

TEST_F(Sampled, SampledCpiTracksExactCpi)
{
    // The headline accuracy contract, at CI-affordable scale: the
    // extrapolated CPI of a sampled run stays within 5% of the exact
    // run's CPI (the bench enforces the same bound across the fig02
    // subset at the smoke scale). The tiny test workload is strongly
    // phased, so the interval is set for ~40 windows — the same
    // windows-over-length tradeoff defaultSampleInterval encodes for
    // real budgets (see sampling.hh).
    const uint64_t budget = 400'000;
    const SimResult exact = prepared_->run(baseCfg(budget));

    SimConfig cfg = baseCfg(budget);
    cfg.sample.interval = 10'000;
    const SimResult sampled = prepared_->run(cfg);

    ASSERT_GT(exact.ipc(), 0.0);
    ASSERT_GT(sampled.ipc(), 0.0);
    const double cpi_e = 1.0 / exact.ipc();
    const double cpi_s = 1.0 / sampled.ipc();
    EXPECT_LT(std::abs(cpi_s - cpi_e) / cpi_e, 0.05)
        << "exact CPI " << cpi_e << " vs sampled CPI " << cpi_s;
}

TEST_F(Sampled, AllDetailedSamplingMatchesExactClosely)
{
    // window == interval leaves no functional skip: every instruction
    // runs detailed on the one persistent core (resumeWarm), so the
    // extrapolated CPI must track the exact run tightly — this pins
    // the window bookkeeping and the core's carry-state, with no
    // warming approximation in the loop.
    const uint64_t budget = 200'000;
    const SimResult exact = prepared_->run(baseCfg(budget));

    SimConfig cfg = baseCfg(budget);
    cfg.sample.interval = 20'000;
    cfg.sample.warmup = 0;
    cfg.sample.window = 20'000;
    const SimResult sampled = prepared_->run(cfg);

    EXPECT_DOUBLE_EQ(sampled.stats.get("sample.insts_functional"),
                     0.0);
    ASSERT_GT(exact.ipc(), 0.0);
    const double cpi_e = 1.0 / exact.ipc();
    const double cpi_s = 1.0 / sampled.ipc();
    EXPECT_LT(std::abs(cpi_s - cpi_e) / cpi_e, 0.02)
        << "exact CPI " << cpi_e << " vs sampled CPI " << cpi_s;
}

TEST_F(Sampled, WarmupWindowsAreDiscardedFromTheEstimate)
{
    // Same geometry with and without detailed warmup: the warmup
    // instructions must land in insts_warmup (not the estimate), and
    // both runs still cover the same total.
    SimConfig with = baseCfg(300'000);
    with.sample.interval = 50'000;
    with.sample.warmup = 8'000;
    with.sample.window = 2'000;
    const SimResult rw = prepared_->run(with);

    SimConfig without = with;
    without.sample.warmup = 0;
    const SimResult ro = prepared_->run(without);

    EXPECT_DOUBLE_EQ(rw.stats.get("sample.insts_warmup"),
                     8'000.0 * rw.stats.get("sample.windows"));
    EXPECT_DOUBLE_EQ(ro.stats.get("sample.insts_warmup"), 0.0);
    EXPECT_DOUBLE_EQ(rw.stats.get("sample.insts_total"),
                     ro.stats.get("sample.insts_total"));
    EXPECT_DOUBLE_EQ(rw.stats.get("sample.insts_measured"),
                     2'000.0 * rw.stats.get("sample.windows"));
}

TEST_F(Sampled, SamplingOffIsByteIdenticalRegardlessOfSampleKnobs)
{
    // interval == 0 must take the exact path untouched: every other
    // sample.* knob is inert, and the stats (the golden-parity
    // surface) are byte-identical.
    const SimResult plain = prepared_->run(baseCfg(120'000));

    SimConfig knobs = baseCfg(120'000);
    knobs.sample.warmup = 999;
    knobs.sample.window = 7;
    knobs.sample.warm = 123'456;
    const SimResult r = prepared_->run(knobs);

    EXPECT_EQ(r.stats.toJson(6), plain.stats.toJson(6));
    EXPECT_EQ(r.core.cycles, plain.core.cycles);
    EXPECT_FALSE(r.stats.has("sample.windows"));
}

TEST_F(Sampled, WarmLimitCoveringTheSkipEqualsFullWarming)
{
    // sim.sample.warm bounds warming to the skip's tail; a bound at
    // least as large as any skip is the same computation as warm=0
    // (full warming), so every deterministic stat must match. (Wall-
    // clock stats like sample.functional_mips legitimately differ.)
    SimConfig full = baseCfg(300'000);
    full.sample.interval = 50'000;
    full.sample.warm = 0;
    const SimResult rf = prepared_->run(full);

    SimConfig capped = full;
    capped.sample.warm = full.sample.interval;
    const SimResult rc = prepared_->run(capped);

    for (const char *key :
         {"sample.windows", "sample.cpi", "sample.cpi_var",
          "sample.insts_functional", "sample.measured_cycles",
          "core.cycles", "core.ipc", "mem.llc_misses"}) {
        EXPECT_DOUBLE_EQ(rc.stats.get(key), rf.stats.get(key)) << key;
    }

    // A tight limit changes timing (colder caches) but never the
    // run's coverage or architectural progress.
    SimConfig tight = full;
    tight.sample.warm = 5'000;
    const SimResult rt = prepared_->run(tight);
    EXPECT_DOUBLE_EQ(rt.stats.get("sample.insts_total"),
                     rf.stats.get("sample.insts_total"));
    EXPECT_GT(rt.stats.get("sample.windows"), 0.0);
}

} // namespace
} // namespace dvr
