/** @file Build/link smoke test and basic end-to-end sanity. */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace dvr {
namespace {

TEST(Smoke, BaselineRunsBfs)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.maxInstructions = 50'000;
    WorkloadParams wp;
    wp.scaleShift = 6;
    SimResult r = Simulator::run(cfg, "bfs", wp);
    EXPECT_GT(r.core.instructions, 0u);
    EXPECT_GT(r.ipc(), 0.0);
}

} // namespace
} // namespace dvr
