/**
 * @file
 * Config-layer tests: the key schema over SimConfig, the JSON
 * dump/load fixed point, resolveConfig's documented precedence
 * (CLI > env > file > defaults), and the error paths drivers rely on
 * (unknown keys, malformed values, unknown techniques).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "runahead/technique.hh"
#include "sim/config_schema.hh"
#include "sim/env.hh"
#include "sim/experiment.hh"

namespace dvr {
namespace {

const ConfigSchema &schema = ConfigSchema::instance();

/** RAII: set/unset one environment variable for a test's scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

/** Write text to a temp file and return its path. */
std::string
writeTemp(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << text;
    EXPECT_TRUE(out.good());
    return path;
}

TEST(ConfigSchema, GetSetRoundTripEveryKey)
{
    // Every key's canonical string form must parse back to itself.
    SimConfig cfg = SimConfig::baseline("dvr");
    for (const auto &k : schema.keys()) {
        const std::string v = schema.get(cfg, k.name);
        schema.set(cfg, k.name, v);
        EXPECT_EQ(schema.get(cfg, k.name), v) << k.name;
    }
}

TEST(ConfigSchema, SetChangesTheUnderlyingField)
{
    SimConfig cfg = SimConfig::baseline("base");
    schema.set(cfg, "core.robSize", "512");
    EXPECT_EQ(cfg.core.robSize, 512u);
    schema.set(cfg, "mem.l1dMshrs", "48");
    EXPECT_EQ(cfg.mem.mshrs, 48u);
    schema.set(cfg, "sim.maxInstructions", "123456");
    EXPECT_EQ(cfg.maxInstructions, 123456u);
    schema.set(cfg, "sim.technique", "oracle");
    EXPECT_EQ(cfg.technique, Technique::kOracle);
    schema.set(cfg, "mem.stridePrefetcher", "false");
    EXPECT_FALSE(cfg.mem.stridePrefetcher);
}

TEST(ConfigSchema, DvrLanesScalesVectorRegisters)
{
    // "dvr.lanes" is the user-facing knob: the vector physical
    // register pool follows the lane count unless overridden.
    SimConfig cfg = SimConfig::baseline("dvr");
    schema.set(cfg, "dvr.lanes", "256");
    EXPECT_EQ(cfg.dvr.subthread.maxLanes, 256u);
    EXPECT_EQ(cfg.dvr.subthread.vecPhysFree, 256u);
}

TEST(ConfigSchema, DumpLoadDumpIsAFixedPoint)
{
    for (const char *tech : {"base", "dvr", "oracle"}) {
        SimConfig cfg = SimConfig::baseline(tech);
        const std::string dump1 = schema.toJson(cfg);
        SimConfig loaded;  // deliberately not baseline(tech)
        schema.applyJson(loaded, dump1);
        EXPECT_EQ(schema.toJson(loaded), dump1) << tech;
    }
}

TEST(ConfigSchema, UnknownKeyAndBadValueAreFatal)
{
    SimConfig cfg;
    EXPECT_THROW(schema.set(cfg, "core.l1Size", "1"),
                 std::runtime_error);
    EXPECT_THROW(schema.set(cfg, "core.robSize", "huge"),
                 std::runtime_error);
    EXPECT_THROW(schema.set(cfg, "core.robSize", ""),
                 std::runtime_error);
    EXPECT_THROW(schema.set(cfg, "mem.stridePrefetcher", "maybe"),
                 std::runtime_error);
    EXPECT_THROW(schema.set(cfg, "sim.technique", "dvrr"),
                 std::runtime_error);
    EXPECT_THROW(schema.setFromArg(cfg, "core.robSize"),
                 std::runtime_error);  // missing '='
    EXPECT_THROW(schema.applyJson(cfg, R"({"core.l1Size": 1})"),
                 std::runtime_error);
    EXPECT_THROW(schema.applyJson(cfg, "not json"),
                 std::runtime_error);
    EXPECT_THROW(schema.applyFile(cfg, "/nonexistent/cfg.json"),
                 std::runtime_error);
}

TEST(ConfigSchema, ResolvePrecedenceCliBeatsEnvBeatsFile)
{
    const std::string file = writeTemp(
        "dvr_prec.json",
        R"({"sim.maxInstructions": 111, "core.robSize": 192})");
    const std::string cfg_opt = "--config=" + file;
    const char *argv[] = {"test", cfg_opt.c_str(),
                          "--set=core.robSize=256"};
    const int argc = 3;

    {
        // No env: the file sets both keys; --set overrides the ROB.
        ScopedEnv env("DVR_INSTS", nullptr);
        const SimConfig cfg =
            resolveConfig("base", argc, const_cast<char **>(argv));
        EXPECT_EQ(cfg.maxInstructions, 111u);
        EXPECT_EQ(cfg.core.robSize, 256u);
    }
    {
        // Env beats the file, CLI still beats both.
        ScopedEnv env("DVR_INSTS", "222");
        const SimConfig cfg =
            resolveConfig("base", argc, const_cast<char **>(argv));
        EXPECT_EQ(cfg.maxInstructions, 222u);
        EXPECT_EQ(cfg.core.robSize, 256u);

        const char *argv2[] = {"test", cfg_opt.c_str(),
                               "--set=sim.maxInstructions=333"};
        const SimConfig cfg2 =
            resolveConfig("base", 3, const_cast<char **>(argv2));
        EXPECT_EQ(cfg2.maxInstructions, 333u);
    }
    std::remove(file.c_str());
}

TEST(ConfigSchema, ResolveIgnoresUnrelatedArguments)
{
    ScopedEnv env("DVR_INSTS", nullptr);
    const char *argv[] = {"test", "--jobs", "4", "-w", "bfs",
                          "--set", "dvr.lanes=32"};
    const SimConfig cfg =
        resolveConfig("dvr", 7, const_cast<char **>(argv));
    EXPECT_EQ(cfg.dvr.subthread.maxLanes, 32u);
    EXPECT_EQ(cfg.technique, Technique::kDvr);
}

TEST(ConfigSchema, TryParseTechnique)
{
    EXPECT_EQ(tryParseTechnique("dvr"), Technique::kDvr);
    EXPECT_EQ(tryParseTechnique("dvr-offload"),
              Technique::kDvrOffload);
    EXPECT_EQ(tryParseTechnique("dvrr"), std::nullopt);
    EXPECT_EQ(tryParseTechnique(""), std::nullopt);
    // The error message material drivers print on a typo.
    EXPECT_NE(techniqueNameList().find("dvr-discovery"),
              std::string::npos);
}

TEST(ConfigSchema, RegistryMatchesTechniqueEnum)
{
    // Every enum name resolves in the registry and vice versa, so
    // string-keyed and enum-keyed callers can never disagree.
    const TechniqueRegistry &reg = TechniqueRegistry::instance();
    for (const std::string &name : reg.names())
        EXPECT_TRUE(tryParseTechnique(name).has_value()) << name;
    for (Technique t :
         {Technique::kBase, Technique::kPre, Technique::kImp,
          Technique::kVr, Technique::kDvr, Technique::kDvrOffload,
          Technique::kDvrDiscovery, Technique::kOracle}) {
        EXPECT_NE(reg.find(techniqueName(t)), nullptr)
            << techniqueName(t);
    }
}

TEST(ConfigSchema, BaselineStringOverloadMatchesEnum)
{
    EXPECT_EQ(schema.toJson(SimConfig::baseline("imp")),
              schema.toJson(SimConfig::baseline(Technique::kImp)));
    EXPECT_THROW(SimConfig::baseline("bogus"), std::runtime_error);
}

TEST(ConfigSchema, PrepareHooksAreIdempotent)
{
    // runOn re-applies the technique's prepare hook on an already
    // prepared baseline() config; that second application must be a
    // no-op for every registered technique.
    for (const std::string &name :
         TechniqueRegistry::instance().names()) {
        const TechniqueInfo *info =
            TechniqueRegistry::instance().find(name);
        ASSERT_NE(info, nullptr);
        SimConfig cfg = SimConfig::baseline(name);
        const std::string before = schema.toJson(cfg);
        if (info->prepare)
            info->prepare(cfg);
        EXPECT_EQ(schema.toJson(cfg), before) << name;
    }
}

TEST(ConfigSchema, BenchReportWarnsOnUnwritableDir)
{
    // Satellite: a bad DVR_BENCH_DIR must warn with the failing path,
    // not crash and not silently drop the report.
    ScopedEnv env("DVR_BENCH_DIR", "/nonexistent/bench/dir");
    BenchReport report("schema_test", 1);
    std::ostringstream echo;
    ::testing::internal::CaptureStderr();
    const std::string path = report.write(echo);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("cannot write"), std::string::npos);
    EXPECT_NE(err.find(path), std::string::npos);
    EXPECT_FALSE(std::ifstream(path).good());
}

TEST(ConfigSchema, BenchReportWritesWhenDirExists)
{
    ScopedEnv env("DVR_BENCH_DIR", ::testing::TempDir().c_str());
    BenchReport report("schema_test", 2);
    std::ostringstream echo;
    const std::string path = report.write(echo);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"threads\": 2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ConfigSchema, EnvAccessorsReadLive)
{
    {
        ScopedEnv env("DVR_JOBS", "3");
        EXPECT_EQ(env::jobs(), 3u);
    }
    {
        ScopedEnv env("DVR_JOBS", nullptr);
        EXPECT_EQ(env::jobs(), std::nullopt);
    }
    {
        ScopedEnv env("DVR_INSTS", "0");  // invalid: must be > 0
        EXPECT_EQ(env::maxInstructions(), std::nullopt);
    }
    {
        ScopedEnv env("DVR_BENCH_DIR", "/tmp/x");
        EXPECT_EQ(env::benchDir(), "/tmp/x");
    }
}

} // namespace
} // namespace dvr
