/**
 * @file
 * Observability-layer tests: the CPI-stack sum invariant for every
 * registered technique, the emitted stat-key schema, strict stat
 * reads, the MSHR two-phase reservation and demand-reserve policy,
 * DRAM requester accounting and queue-delay normalization, the event
 * trace (mask gating, sinks, binary format), and the run manifest
 * (schema validation shared with `dvr_trace --check`).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/stats.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "runahead/technique.hh"
#include "sim/config_schema.hh"
#include "sim/manifest.hh"
#include "sim/runner.hh"
#include "sim/trace.hh"

namespace dvr {
namespace {

// The whole test binary reads stats strictly: a misspelled stat name
// in any test (or any code under test) panics instead of reading 0.
const bool g_strict_stats = (StatSet::setStrict(true), true);

#include "stats_schema.inc"

// ---------------------------------------------------------------------
// Strict stat reads (satellite: silent-zero fix).
// ---------------------------------------------------------------------

TEST(StatsStrict, MissingReadPanicsInStrictMode)
{
    StatSet s;
    s.set("present", 1.0);
    StatSet::ScopedStrict strict(true);
    EXPECT_DOUBLE_EQ(s.get("present"), 1.0);
    EXPECT_DEATH(s.get("missnig"), "unregistered stat 'missnig'");
}

TEST(StatsStrict, NonStrictReadReturnsZero)
{
    StatSet s;
    StatSet::ScopedStrict lax(false);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
}

TEST(StatsStrict, GetOrNeverPanics)
{
    StatSet s;
    s.set("optional_stat", 2.0);
    StatSet::ScopedStrict strict(true);
    EXPECT_DOUBLE_EQ(s.getOr("optional_stat", 9.0), 2.0);
    EXPECT_DOUBLE_EQ(s.getOr("missing", 9.0), 9.0);
}

TEST(StatsStrict, ScopedStrictRestoresPreviousMode)
{
    const bool before = StatSet::strict();
    {
        StatSet::ScopedStrict lax(false);
        EXPECT_FALSE(StatSet::strict());
        {
            StatSet::ScopedStrict strict(true);
            EXPECT_TRUE(StatSet::strict());
        }
        EXPECT_FALSE(StatSet::strict());
    }
    EXPECT_EQ(StatSet::strict(), before);
}

// ---------------------------------------------------------------------
// CPI stack: components sum to total cycles for every technique, and
// every run exports the checked-in stat-key schema.
// ---------------------------------------------------------------------

class CpiStack : public ::testing::Test
{
  protected:
    // One shared data set for all techniques; built once because the
    // camel build dominates the suite's runtime.
    static void
    SetUpTestSuite()
    {
        WorkloadParams wp;
        wp.scaleShift = 4;
        prepared_ = std::make_unique<PreparedWorkload>("camel", "", wp,
                                                       96ULL << 20);
    }

    static void
    TearDownTestSuite()
    {
        prepared_.reset();
    }

    static SimResult
    runTechnique(const std::string &name)
    {
        SimConfig cfg = SimConfig::baseline(name);
        cfg.maxInstructions = 40'000;
        return prepared_->run(cfg);
    }

    static std::unique_ptr<PreparedWorkload> prepared_;
};

std::unique_ptr<PreparedWorkload> CpiStack::prepared_;

TEST_F(CpiStack, ComponentsSumToTotalCycles)
{
    for (const std::string &t : TechniqueRegistry::instance().names()) {
        SCOPED_TRACE(t);
        const SimResult r = runTechnique(t);
        ASSERT_GT(r.core.cycles, 0u);

        // Structural form of the invariant ...
        EXPECT_EQ(r.core.cpi.total(), r.core.cycles);

        // ... and the exported form figures actually read. The
        // components are exact integer cycle counts, so the double
        // sum is exact too.
        const double sum = r.stats.get("core.cpi.base") +
                           r.stats.get("core.cpi.branch_redirect") +
                           r.stats.get("core.cpi.l1") +
                           r.stats.get("core.cpi.l2") +
                           r.stats.get("core.cpi.l3") +
                           r.stats.get("core.cpi.dram") +
                           r.stats.get("core.cpi.full_rob") +
                           r.stats.get("core.cpi.full_iq_lsq");
        EXPECT_DOUBLE_EQ(sum, r.stats.get("core.cycles"));
    }
}

TEST_F(CpiStack, EveryTechniqueExportsRequiredStatKeys)
{
    for (const std::string &t : TechniqueRegistry::instance().names()) {
        SCOPED_TRACE(t);
        const SimResult r = runTechnique(t);
        for (const char *key : kRequiredStatKeys)
            EXPECT_TRUE(r.stats.has(key)) << "missing stat " << key;
        EXPECT_EQ("", validateJsonSyntax(r.stats.toJson()));
    }
}

TEST(StatSchema, RegisteredNameRegistryIsSortedAndUnique)
{
    // dvr-lint's stat-schema rule diffs the registrations in src/
    // against this registry; keeping it sorted makes those diffs and
    // the review history readable.
    const size_t n =
        sizeof(kRegisteredStatNames) / sizeof(kRegisteredStatNames[0]);
    ASSERT_GT(n, 0u);
    for (size_t i = 1; i < n; ++i) {
        EXPECT_LT(std::string(kRegisteredStatNames[i - 1]),
                  std::string(kRegisteredStatNames[i]))
            << "out of order or duplicated at index " << i;
    }
}

TEST_F(CpiStack, SampledRunExportsSampleStatSchema)
{
    // Interval-sampled runs additionally export the sample.* schema
    // (extrapolated CPI, CI, phase instruction counts); exact runs
    // must NOT export it — consumers use sample.windows presence to
    // distinguish the two run kinds.
    SimConfig cfg = SimConfig::baseline("base");
    cfg.maxInstructions = 200'000;
    cfg.sample.interval = 50'000;
    const SimResult sampled = prepared_->run(cfg);
    for (const char *key : kSampleStatKeys)
        EXPECT_TRUE(sampled.stats.has(key)) << "missing stat " << key;
    EXPECT_GE(sampled.stats.get("sample.windows"), 2.0);
    EXPECT_EQ("", validateJsonSyntax(sampled.stats.toJson()));

    const SimResult exact = runTechnique("base");
    EXPECT_FALSE(exact.stats.has("sample.windows"));
}

TEST_F(CpiStack, MemoryBoundRunAttributesCyclesBeyondBase)
{
    // camel is a DRAM-bound pointer-chasing kernel: the baseline run
    // must attribute most cycles to backpressure components (the full
    // in-flight window behind off-chip loads, or the loads
    // themselves), not to base, or the engine is mislabelling.
    const SimResult r = runTechnique("base");
    const double cycles = r.stats.get("core.cycles");
    const double stalled = r.stats.get("core.cpi.dram") +
                           r.stats.get("core.cpi.full_rob") +
                           r.stats.get("core.cpi.full_iq_lsq");
    EXPECT_GT(stalled, 0.5 * cycles);
    EXPECT_LT(r.stats.get("core.cpi.base"), 0.5 * cycles);
}

// ---------------------------------------------------------------------
// MSHR reservation policy (satellites: demand reserve + two-phase).
// ---------------------------------------------------------------------

/** Fill `n` MSHRs with misses ending at `end`. */
void
fillMshrs(MshrTracker &m, unsigned n, Cycle end)
{
    for (unsigned i = 0; i < n; ++i) {
        const Cycle start = m.acquire(0);
        m.commit(start, end);
    }
}

TEST(MshrReserve, TryAcquireHonorsDemandReserve)
{
    // capacity 8, reserve 4: low-priority requests saturate at 4.
    MshrTracker m(MshrTracker::kDemandReserve + 4);
    fillMshrs(m, 4, 1000);

    EXPECT_FALSE(m.tryAcquire(10));     // low-priority by default
    EXPECT_EQ(m.prefetchDrops(), 1u);

    // A demand request still fits in the reserved headroom.
    EXPECT_TRUE(m.tryAcquire(10, /*low_priority=*/false));
    m.commit(10, 1000);
}

TEST(MshrReserve, AcquireDelaysLowPriorityAtReserveBoundary)
{
    MshrTracker m(MshrTracker::kDemandReserve + 4);
    fillMshrs(m, 4, 100);

    // Low priority: all non-reserved MSHRs busy until 100.
    const Cycle low = m.acquire(10, /*low_priority=*/true);
    EXPECT_EQ(low, 100u);
    m.commit(low, 200);
}

TEST(MshrReserve, DemandProceedsWhereLowPriorityWaits)
{
    MshrTracker m(MshrTracker::kDemandReserve + 4);
    fillMshrs(m, 4, 100);

    const Cycle demand = m.acquire(10, /*low_priority=*/false);
    EXPECT_EQ(demand, 10u);
    m.commit(demand, 200);
}

TEST(MshrReserve, TinyCapacityKeepsAtLeastOneSlotUsable)
{
    // capacity <= reserve: the reserve cannot apply, or low-priority
    // requests could never be served at all.
    MshrTracker m(2);
    EXPECT_TRUE(m.tryAcquire(0));
    m.commit(0, 50);
    EXPECT_TRUE(m.tryAcquire(0));
    m.commit(0, 50);
    EXPECT_FALSE(m.tryAcquire(0));
    EXPECT_EQ(m.prefetchDrops(), 1u);
}

TEST(MshrTwoPhase, ReservationBalancesAcquireAndCommit)
{
    MshrTracker m(4);
    EXPECT_EQ(m.pendingReservations(), 0u);
    const Cycle start = m.acquire(5);
    EXPECT_EQ(m.pendingReservations(), 1u);
    m.commit(start, 30);
    EXPECT_EQ(m.pendingReservations(), 0u);
    EXPECT_DOUBLE_EQ(m.busyIntegral(), 25.0);
    EXPECT_EQ(m.acquires(), 1u);
}

TEST(MshrTwoPhase, AcquireWaitsWhenAllMshrsBusy)
{
    MshrTracker m(2);
    fillMshrs(m, 2, 80);
    // Demand priority, but both MSHRs are in flight until cycle 80.
    const Cycle start = m.acquire(10, /*low_priority=*/false);
    EXPECT_EQ(start, 80u);
    m.commit(start, 120);
}

TEST(MshrTwoPhaseDeathTest, DoubleAcquirePanics)
{
    MshrTracker m(4);
    m.acquire(0);
    EXPECT_DEATH(m.acquire(1), "uncommitted reservation");
}

TEST(MshrTwoPhaseDeathTest, CommitWithoutAcquirePanics)
{
    MshrTracker m(4);
    EXPECT_DEATH(m.commit(0, 10), "without a matching acquire");
}

TEST(MshrTwoPhaseDeathTest, TryAcquireWithPendingReservationPanics)
{
    MshrTracker m(4);
    m.acquire(0);
    EXPECT_DEATH(m.tryAcquire(1), "uncommitted reservation");
}

// ---------------------------------------------------------------------
// DRAM model accounting (satellite: requester counts + queue delay).
// ---------------------------------------------------------------------

TEST(DramAccounting, CountsPerRequester)
{
    DramModel d(50, 2);
    d.access(0, Requester::kMain);
    d.access(0, Requester::kRunahead);
    d.access(0, Requester::kRunahead);
    d.access(0, Requester::kHwPrefetch);
    d.access(0, Requester::kWriteback);
    EXPECT_EQ(d.accesses(Requester::kMain), 1u);
    EXPECT_EQ(d.accesses(Requester::kRunahead), 2u);
    EXPECT_EQ(d.accesses(Requester::kHwPrefetch), 1u);
    EXPECT_EQ(d.accesses(Requester::kWriteback), 1u);
    EXPECT_EQ(d.totalAccesses(), 5u);
}

TEST(DramAccounting, QueueDelayIsRawSumAndAvgIsPerAccess)
{
    DramModel d(50, 2);
    // Back-to-back requests at cycle 0: starts at 0, 2, 4 with
    // queueing delays 0, 2, 4.
    EXPECT_EQ(d.access(0, Requester::kMain), 50u);
    EXPECT_EQ(d.access(0, Requester::kMain), 52u);
    EXPECT_EQ(d.access(0, Requester::kMain), 54u);
    EXPECT_DOUBLE_EQ(d.totalQueueDelay(), 6.0);
    EXPECT_DOUBLE_EQ(d.avgQueueDelay(), 2.0);
}

TEST(DramAccounting, LateRequestSeesNoQueueDelay)
{
    DramModel d(50, 2);
    d.access(0, Requester::kMain);
    // The channel is free again at cycle 2; a request at 100 starts
    // immediately and adds nothing to the queue-delay sum.
    EXPECT_EQ(d.access(100, Requester::kWriteback), 150u);
    EXPECT_DOUBLE_EQ(d.totalQueueDelay(), 0.0);
    EXPECT_DOUBLE_EQ(d.avgQueueDelay(), 0.0);
}

TEST(DramAccounting, EmptyModelAveragesToZero)
{
    DramModel d(50, 2);
    EXPECT_EQ(d.totalAccesses(), 0u);
    EXPECT_DOUBLE_EQ(d.avgQueueDelay(), 0.0);
}

// ---------------------------------------------------------------------
// Event trace.
// ---------------------------------------------------------------------

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { Trace::reset(); }
    void TearDown() override { Trace::reset(); }

    static std::string
    tmpPath(const std::string &name)
    {
        return ::testing::TempDir() + name;
    }
};

TEST_F(TraceTest, MaskedOffEmitsNothing)
{
    for (unsigned i = 0; i < kNumTraceCats; ++i)
        EXPECT_FALSE(Trace::enabled(static_cast<TraceCat>(i)));
    Trace::emit(TraceCat::kSpawn, 10, 0x40, 4, 0);
    EXPECT_EQ(Trace::emitted(), 0u);
    EXPECT_TRUE(Trace::buffered().empty());
}

TEST_F(TraceTest, ParseCategories)
{
    EXPECT_EQ(Trace::parseCategories(""), 0u);
    EXPECT_EQ(Trace::parseCategories("none"), 0u);
    EXPECT_EQ(Trace::parseCategories("all"),
              (1u << kNumTraceCats) - 1u);
    EXPECT_EQ(Trace::parseCategories("discovery"), 1u);
    EXPECT_EQ(Trace::parseCategories("spawn,ndm"),
              (1u << unsigned(TraceCat::kSpawn)) |
                  (1u << unsigned(TraceCat::kNdm)));
    EXPECT_THROW(Trace::parseCategories("bogus"), std::runtime_error);
}

TEST_F(TraceTest, EmitBuffersOnlyEnabledCategories)
{
    Trace::configure("spawn");
    EXPECT_TRUE(Trace::enabled(TraceCat::kSpawn));
    EXPECT_FALSE(Trace::enabled(TraceCat::kNdm));

    Trace::emit(TraceCat::kSpawn, 42, 0x80, 4, 1);
    Trace::emit(TraceCat::kNdm, 43, 0x84, 1, 0);   // masked off
    EXPECT_EQ(Trace::emitted(), 1u);

    const auto buf = Trace::buffered();
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].cycle, 42u);
    EXPECT_EQ(buf[0].pc, 0x80u);
    EXPECT_EQ(buf[0].a, 4u);
    EXPECT_EQ(buf[0].b, 1u);
    EXPECT_EQ(buf[0].cat, uint8_t(TraceCat::kSpawn));
}

TEST_F(TraceTest, JsonlSinkWritesOneObjectPerEvent)
{
    const std::string path = tmpPath("dvr_trace_test.jsonl");
    Trace::configure("discovery,mshr-stall");
    Trace::setJsonlSink(path);
    Trace::emit(TraceCat::kDiscovery, 5, 0x10, 0, 0);
    Trace::emit(TraceCat::kMshrStall, 9, 0x14, 33, 1);
    Trace::shutdown();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string l1, l2, extra;
    ASSERT_TRUE(static_cast<bool>(std::getline(in, l1)));
    ASSERT_TRUE(static_cast<bool>(std::getline(in, l2)));
    EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
    EXPECT_EQ(l1, "{\"cat\":\"discovery\",\"cycle\":5,\"pc\":16,"
                  "\"a\":0,\"b\":0}");
    EXPECT_EQ(l2, "{\"cat\":\"mshr-stall\",\"cycle\":9,\"pc\":20,"
                  "\"a\":33,\"b\":1}");
    // Each line is itself a valid JSON document.
    EXPECT_EQ("", validateJsonSyntax(l1));
    EXPECT_EQ("", validateJsonSyntax(l2));
}

TEST_F(TraceTest, BinarySinkRoundTrips)
{
    const std::string path = tmpPath("dvr_trace_test.bin");
    Trace::configure("reconvergence");
    Trace::setBinarySink(path);
    Trace::emit(TraceCat::kReconvergence, 77, 0x200, 8, 0);
    Trace::shutdown();

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    ASSERT_EQ(in.gcount(), 8);
    EXPECT_EQ(0, std::memcmp(magic, "DVRTRC01", 8));
    TraceEvent e{};
    in.read(reinterpret_cast<char *>(&e), sizeof(e));
    ASSERT_EQ(in.gcount(), std::streamsize(sizeof(e)));
    EXPECT_EQ(e.cycle, 77u);
    EXPECT_EQ(e.pc, 0x200u);
    EXPECT_EQ(e.a, 8u);
    EXPECT_EQ(e.cat, uint8_t(TraceCat::kReconvergence));
    // Nothing after the single record.
    char rest;
    EXPECT_FALSE(static_cast<bool>(in.read(&rest, 1)));
}

TEST_F(TraceTest, RingDrainsToSinkAtCapacity)
{
    const std::string path = tmpPath("dvr_trace_ring.jsonl");
    Trace::configure("spawn");
    Trace::setJsonlSink(path);
    for (size_t i = 0; i < Trace::kRingSize + 8; ++i)
        Trace::emit(TraceCat::kSpawn, Cycle(i), 0, 0, 0);
    EXPECT_EQ(Trace::emitted(), Trace::kRingSize + 8);
    // The implicit drain fired at capacity, so the buffer holds only
    // the overflow tail.
    EXPECT_EQ(Trace::buffered().size(), 8u);
    Trace::shutdown();
}

TEST_F(TraceTest, ResetClearsMaskCountAndBuffer)
{
    Trace::configure("all");
    Trace::emit(TraceCat::kDivergence, 1, 2, 3, 1);
    EXPECT_EQ(Trace::emitted(), 1u);
    Trace::reset();
    EXPECT_EQ(Trace::mask(), 0u);
    EXPECT_EQ(Trace::emitted(), 0u);
    EXPECT_TRUE(Trace::buffered().empty());
}

TEST_F(TraceTest, CategoryNamesRoundTripThroughParse)
{
    for (unsigned i = 0; i < kNumTraceCats; ++i) {
        const auto c = static_cast<TraceCat>(i);
        EXPECT_EQ(Trace::parseCategories(Trace::categoryName(c)),
                  1u << i);
    }
}

// ---------------------------------------------------------------------
// Run manifest.
// ---------------------------------------------------------------------

TEST(Manifest, ToJsonSatisfiesItsOwnValidator)
{
    RunManifest m("unit");
    m.setConfig(SimConfig::baseline("dvr"));
    StatSet s;
    s.set("alpha", 1.0);
    s.set("beta", 2.5);
    m.addRun("camel/dvr", s);
    m.addRun("camel/base", s);
    EXPECT_EQ(m.runCount(), 2u);

    m.addWallSegment(1.25);
    const std::string doc = m.toJson();
    EXPECT_EQ("", validateManifestJson(doc)) << doc;
    EXPECT_NE(doc.find("\"figure\": \"unit\""), std::string::npos);
    EXPECT_NE(doc.find("camel/dvr"), std::string::npos);
    EXPECT_NE(doc.find("sim.technique"), std::string::npos);
    EXPECT_NE(doc.find("\"wall_segments\": [1.250]"),
              std::string::npos);
}

TEST(Manifest, WallSecondsIsTheSumOfSegments)
{
    // A sweep resumed once carries two wall segments; the headline
    // number must account both, not just the last.
    RunManifest m("unit");
    m.addWallSegment(1.5);
    m.addWallSegment(2.25);
    const std::string doc = m.toJson();
    EXPECT_NE(doc.find("\"wall_seconds\": 3.750"), std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"wall_segments\": [1.500, 2.250]"),
              std::string::npos)
        << doc;
}

TEST(Manifest, EmptyManifestStillValidates)
{
    // tab_hw_overhead runs no simulations; its manifest has zero runs
    // and a default config but must still be a valid document.
    RunManifest m("empty");
    EXPECT_EQ("", validateManifestJson(m.toJson()));
}

TEST(Manifest, ValidatorRejectsMissingKeysAndBadTypes)
{
    EXPECT_NE("", validateManifestJson("{}"));
    EXPECT_NE("", validateManifestJson("not json at all"));
    EXPECT_NE("", validateManifestJson("{\"manifest_version\": 1}"));
    // Right keys, wrong kind: runs must be an array.
    EXPECT_NE("", validateManifestJson(
                      "{\"manifest_version\": 2, \"figure\": \"f\","
                      " \"git_sha\": \"x\", \"host\": \"h\","
                      " \"wall_seconds\": 1.0,"
                      " \"wall_segments\": [1.0], \"config\": {},"
                      " \"runs\": {}}"));
    // A version-1 document without wall_segments is stale.
    EXPECT_NE("", validateManifestJson(
                      "{\"manifest_version\": 1, \"figure\": \"f\","
                      " \"git_sha\": \"x\", \"host\": \"h\","
                      " \"wall_seconds\": 1.0, \"config\": {},"
                      " \"runs\": []}"));
    // Same document with every required key is accepted.
    EXPECT_EQ("", validateManifestJson(
                      "{\"manifest_version\": 2, \"figure\": \"f\","
                      " \"git_sha\": \"x\", \"host\": \"h\","
                      " \"wall_seconds\": 1.0,"
                      " \"wall_segments\": [1.0], \"config\": {},"
                      " \"runs\": []}"));
}

TEST(Manifest, ValidatorAcceptsJournalAppendVariant)
{
    RunManifest m("journal");
    m.setConfig(SimConfig::baseline("base"));
    std::string doc = m.toJournalHeaderLine();
    // The header alone is a valid (empty) journal...
    EXPECT_EQ("", validateManifestJson(doc)) << doc;
    // ...and each appended run/event line keeps it valid.
    doc += "\n{\"point\": 0, \"label\": \"camel/base\","
           " \"stats\": {\"alpha\": 1.0}}\n";
    doc += "{\"event\": \"resume\", \"wall_seconds\": 0.5}\n";
    EXPECT_EQ("", validateManifestJson(doc)) << doc;
    // A run line without stats is rejected.
    EXPECT_NE("", validateManifestJson(
                      doc + "{\"label\": \"camel/vr\"}\n"));
    // A torn tail line (crash mid-append) is rejected, not ignored.
    EXPECT_NE("", validateManifestJson(
                      doc + "{\"label\": \"camel/vr\", \"sta"));
}

TEST(Manifest, JournalHeaderIsOneCompactLine)
{
    RunManifest m("journal");
    m.setConfig(SimConfig::baseline("dvr"));
    const std::string line = m.toJournalHeaderLine();
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("\"runs\":[]"), std::string::npos) << line;
}

TEST(Manifest, AddRunJsonReemitsStatsVerbatim)
{
    RunManifest m("unit");
    m.addRunJson("a", "{\"x\": 1.000, \"y\": 2.000}");
    m.addRunJson("bad", "{not json");  // dropped with a warning
    EXPECT_EQ(m.runCount(), 1u);
    const std::string doc = m.toJson();
    EXPECT_EQ("", validateManifestJson(doc)) << doc;
    EXPECT_NE(doc.find("{\"x\": 1.000, \"y\": 2.000}"),
              std::string::npos)
        << doc;
}

TEST(Manifest, MinifyJsonStripsOnlyOutsideStrings)
{
    EXPECT_EQ(minifyJson("{\n  \"a b\": [1, 2],\n  \"s\": \"x y\"\n}"),
              "{\"a b\":[1,2],\"s\":\"x y\"}");
    EXPECT_EQ(minifyJson("\"esc \\\" quote \""), "\"esc \\\" quote \"");
}

TEST(Manifest, JsonSyntaxValidator)
{
    EXPECT_EQ("", validateJsonSyntax("{\"k\": [1, 2.5, -3e2, true,"
                                     " false, null, \"s\"]}"));
    EXPECT_EQ("", validateJsonSyntax(StatSet().toJson()));
    EXPECT_NE("", validateJsonSyntax("{"));
    EXPECT_NE("", validateJsonSyntax("{\"a\":}"));
    EXPECT_NE("", validateJsonSyntax("{} trailing"));
    EXPECT_NE("", validateJsonSyntax("{\"a\": 1,}"));
}

TEST(Manifest, WriteEmitsCheckableFile)
{
    RunManifest m("write_test");
    m.setConfig(SimConfig::baseline("base"));
    StatSet s;
    s.set("gamma", 3.0);
    m.addRun("run0", s);

    const std::string dir = ::testing::TempDir();
    m.addWallSegment(0.5);
    const std::string path = m.write(dir);
    EXPECT_NE(path.find("MANIFEST_write_test.json"), std::string::npos);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_EQ("", validateManifestJson(text.str()));
}

TEST(Manifest, WriteSurfacesIoFailure)
{
    // Point the manifest at a "directory" that is actually a regular
    // file: the open fails and write() must report it ("" return)
    // instead of silently claiming success. (A chmod-0500 directory
    // would not do here — the tests may run as root.)
    const std::string bogus = ::testing::TempDir() + "/not_a_dir";
    { std::ofstream(bogus) << "occupied"; }
    RunManifest m("io_fail");
    EXPECT_EQ("", m.write(bogus));
}

TEST(Manifest, ProvenanceFieldsAreNonEmpty)
{
    EXPECT_NE(std::string(), RunManifest::gitSha());
    EXPECT_NE(std::string(), RunManifest::hostName());
}

} // namespace
} // namespace dvr
