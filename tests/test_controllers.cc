/**
 * @file
 * Controller-level integration tests: DVR / VR / PRE / Oracle wired
 * onto the core over a real indirect workload, validating triggering,
 * prefetch generation, and the performance relationships the paper's
 * evaluation rests on.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace dvr {
namespace {

SimConfig
cfgFor(Technique t, uint64_t insts = 200'000)
{
    SimConfig c = SimConfig::baseline(t);
    c.maxInstructions = insts;
    c.memoryBytes = 96ULL << 20;
    return c;
}

/** camel (Figure 1 pattern) is the canonical two-level chain. */
WorkloadParams
camelParams()
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    return wp;
}

TEST(DvrControllerTest, TriggersDiscoversAndPrefetches)
{
    SimResult r = Simulator::run(cfgFor(Technique::kDvr), "camel",
                                 camelParams());
    EXPECT_GT(r.stats.get("dvr.discoveries"), 0.0);
    EXPECT_GT(r.stats.get("dvr.episodes"), 0.0);
    EXPECT_GT(r.stats.get("dvr.lane_loads"), 0.0);
    EXPECT_GT(r.stats.get("mem.dram_runahead"), 0.0);
    // Discovery must find the 2-level chain, not skip it.
    EXPECT_EQ(r.stats.get("dvr.no_chain_skips"), 0.0);
}

TEST(DvrControllerTest, SpeedsUpIndirectChains)
{
    const SimResult base =
        Simulator::run(cfgFor(Technique::kBase), "camel",
                       camelParams());
    const SimResult dvr = Simulator::run(cfgFor(Technique::kDvr),
                                         "camel", camelParams());
    EXPECT_GT(dvr.ipc(), 2.0 * base.ipc());
    // Demand DRAM misses collapse: the chain is prefetched.
    EXPECT_LT(dvr.stats.get("mem.demand_dram"),
              0.25 * base.stats.get("mem.demand_dram"));
}

TEST(DvrControllerTest, SkipsPureStrideLoops)
{
    // nas-is-like but with no dependent load: contrib sweep of pr's
    // second loop is closest; use pr and check skips occur for the
    // chain-less striding loads it contains.
    WorkloadParams wp;
    wp.scaleShift = 4;
    wp.input = "ORK";
    SimResult r =
        Simulator::run(cfgFor(Technique::kDvr), "nas_is", wp);
    // nas_is has a chain (count[k]), so it spawns episodes...
    EXPECT_GT(r.stats.get("dvr.episodes"), 0.0);
}

TEST(DvrControllerTest, NestedEngagesOnShortLoops)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    SimResult r =
        Simulator::run(cfgFor(Technique::kDvr), "nas_cg", wp);
    EXPECT_GT(r.stats.get("dvr.nested_episodes"), 0.0);
}

TEST(DvrControllerTest, DivergentKernelsUseReconvergence)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    SimResult r =
        Simulator::run(cfgFor(Technique::kDvr), "kangaroo", wp);
    EXPECT_GT(r.stats.get("dvr.reconv_pushes"), 0.0);
}

TEST(VrControllerTest, TriggersOnFullRobStallsOnly)
{
    const SimResult r = Simulator::run(cfgFor(Technique::kVr),
                                       "camel", camelParams());
    EXPECT_GT(r.stats.get("core.full_rob_stall_events"), 0.0);
    EXPECT_GT(r.stats.get("vr.episodes"), 0.0);
    EXPECT_GT(r.stats.get("vr.lane_loads"), 0.0);
    // Delayed termination stalls commit beyond the blocking load.
    EXPECT_GT(r.stats.get("vr.delayed_termination_cycles"), 0.0);
    EXPECT_GT(r.stats.get("core.runahead_extra_stall"), 0.0);
}

TEST(VrControllerTest, FasterThanBaselineSlowerThanDvrOnChains)
{
    const double base =
        Simulator::run(cfgFor(Technique::kBase), "hj8", camelParams())
            .ipc();
    const double vr =
        Simulator::run(cfgFor(Technique::kVr), "hj8", camelParams())
            .ipc();
    const double dvr =
        Simulator::run(cfgFor(Technique::kDvr), "hj8", camelParams())
            .ipc();
    EXPECT_GT(vr, 1.2 * base);
    EXPECT_GT(dvr, vr);
}

TEST(PreControllerTest, WalksAndPrefetchesFirstLevelOnly)
{
    const SimResult r = Simulator::run(cfgFor(Technique::kPre),
                                       "camel", camelParams());
    EXPECT_GT(r.stats.get("pre.episodes"), 0.0);
    EXPECT_GT(r.stats.get("pre.prefetches"), 0.0);
    // The second level of indirection is out of reach: invalid-input
    // loads are skipped (this is PRE's structural limit).
    EXPECT_GT(r.stats.get("pre.invalid_load_skips"), 0.0);
}

TEST(OracleTest, NearEliminatesDemandMisses)
{
    const SimResult base = Simulator::run(cfgFor(Technique::kBase),
                                          "camel", camelParams());
    const SimResult orc = Simulator::run(cfgFor(Technique::kOracle),
                                         "camel", camelParams());
    EXPECT_GT(orc.ipc(), 2.0 * base.ipc());
    EXPECT_LT(orc.stats.get("mem.demand_dram"),
              0.2 * base.stats.get("mem.demand_dram"));
    EXPECT_GT(orc.stats.get("oracle.prefetches"), 0.0);
}

TEST(OracleTest, RecordLoadTraceMatchesExecution)
{
    SimMemory mem(64ULL << 20);
    WorkloadParams wp = camelParams();
    Workload w = workloadFactory("camel")(mem, wp);
    SimMemory scratch = mem;
    auto trace = recordLoadTrace(w.program, scratch, 10'000);
    EXPECT_FALSE(trace.empty());
    for (Addr a : trace)
        EXPECT_EQ(a, lineAlign(a));
}

TEST(Breakdown, OffloadBeatsVrOnChainsDiscoveryRescuesShortLoops)
{
    // Figure 8's qualitative story: offloading VR to a decoupled
    // subthread is a big win on long-chain kernels; without Discovery
    // Mode the blind 128-lane vectorization over-fetches on
    // short-loop kernels (nas_cg), and Discovery restores it.
    auto speedup = [&](Technique t, const char *k,
                       const char *in) {
        WorkloadParams wp;
        wp.scaleShift = 2;
        if (in[0])
            wp.input = in;
        const double b =
            Simulator::run(cfgFor(Technique::kBase), k, wp).ipc();
        return Simulator::run(cfgFor(t), k, wp).ipc() / b;
    };
    // Long dependent chains: offload >> VR, and full DVR >= VR.
    EXPECT_GT(speedup(Technique::kDvrOffload, "camel", ""),
              speedup(Technique::kVr, "camel", ""));
    EXPECT_GT(speedup(Technique::kDvrOffload, "bfs", "KR"),
              speedup(Technique::kVr, "bfs", "KR"));
    EXPECT_GE(speedup(Technique::kDvr, "camel", ""),
              speedup(Technique::kVr, "camel", ""));
    // Short data-dependent loops: discovery rescues offload's
    // over-fetch (the paper's insight #3).
    EXPECT_GT(speedup(Technique::kDvrDiscovery, "nas_cg", ""),
              speedup(Technique::kDvrOffload, "nas_cg", ""));
}

TEST(Determinism, SameConfigSameCycles)
{
    const SimResult a = Simulator::run(cfgFor(Technique::kDvr),
                                       "camel", camelParams());
    const SimResult b = Simulator::run(cfgFor(Technique::kDvr),
                                       "camel", camelParams());
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.stats.get("dvr.lane_loads"),
              b.stats.get("dvr.lane_loads"));
}

} // namespace
} // namespace dvr
