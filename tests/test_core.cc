/** @file Out-of-order core model: functional and timing properties. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/ooo_core.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"

namespace dvr {
namespace {

struct Rig
{
    explicit Rig(Program p, uint64_t mem_bytes = 1 << 22)
        : prog(std::move(p)), mem(mem_bytes),
          memsys(MemConfig(), mem),
          core(CoreConfig(), prog, mem, memsys)
    {
    }

    Rig(Program p, const CoreConfig &cc, const MemConfig &mc,
        CoreClient *client = nullptr, uint64_t mem_bytes = 1 << 22)
        : prog(std::move(p)), mem(mem_bytes), memsys(mc, mem),
          core(cc, prog, mem, memsys, client)
    {
    }

    Program prog;
    SimMemory mem;
    MemorySystem memsys;
    OooCore core;
};

TEST(CoreFunctional, ArithmeticLoopComputesSum)
{
    // sum(1..100) in a bottom-tested loop.
    ProgramBuilder b;
    b.li(0, 0).li(1, 1).li(2, 101);
    b.label("loop")
        .add(0, 0, 1)
        .addi(1, 1, 1)
        .cmpltu(3, 1, 2)
        .bnez(3, "loop")
        .halt();
    Rig r(b.build());
    r.core.run(100000);
    EXPECT_TRUE(r.core.stats().halted);
    EXPECT_EQ(r.core.regs().value[0], 5050u);
}

TEST(CoreFunctional, StoreLoadRoundTrip)
{
    SimMemory mem(1 << 20);
    const Addr a = mem.alloc(64);
    ProgramBuilder b;
    b.li(0, int64_t(a)).li(1, 0xabcd)
        .st(0, 8, 1)
        .ld(2, 0, 8)
        .halt();
    Program p = b.build();
    MemorySystem ms(MemConfig(), mem);
    OooCore core(CoreConfig(), p, mem, ms);
    core.run(100);
    EXPECT_EQ(core.regs().value[2], 0xabcdu);
    EXPECT_EQ(mem.read(a + 8, 8), 0xabcdu);
}

TEST(CoreFunctional, StoreToLoadDependenceOrdersResults)
{
    // A load after a store to the same address must see the stored
    // value and wait for the store data.
    SimMemory mem(1 << 20);
    const Addr a = mem.alloc(64);
    mem.write(a, 8, 7);
    ProgramBuilder b;
    b.li(0, int64_t(a)).li(1, 99).st(0, 0, 1).ld(2, 0, 0).halt();
    Program p = b.build();
    MemorySystem ms(MemConfig(), mem);
    OooCore core(CoreConfig(), p, mem, ms);
    core.run(100);
    EXPECT_EQ(core.regs().value[2], 99u);
}

TEST(CoreTiming, IpcBoundedByWidth)
{
    ProgramBuilder b;
    b.li(0, 0).li(1, 1).li(2, 2'000'000);
    b.label("loop")
        .addi(0, 0, 1)
        .addi(3, 3, 1)
        .addi(4, 4, 1)
        .cmpltu(5, 0, 2)
        .bnez(5, "loop")
        .halt();
    Rig r(b.build());
    r.core.run(50'000);
    const double ipc = r.core.stats().ipc();
    EXPECT_LE(ipc, 5.0);
    EXPECT_GT(ipc, 1.5);    // independent chains should overlap
}

TEST(CoreTiming, DependentChainRunsAtUnitLatency)
{
    // A pure serial add chain commits ~1 instruction per cycle.
    ProgramBuilder b;
    b.li(0, 0).li(2, 500'000);
    b.label("loop")
        .addi(0, 0, 1)
        .cmplt(1, 0, 2)
        .bnez(1, "loop")
        .halt();
    Rig r(b.build());
    r.core.run(30'000);
    const double ipc = r.core.stats().ipc();
    // 3-instruction loop body with a 2-cycle critical path per trip.
    EXPECT_GT(ipc, 1.0);
    EXPECT_LT(ipc, 3.0);
}

TEST(CoreTiming, UnpipelinedDividerSerializes)
{
    ProgramBuilder b;
    b.li(0, 1000).li(1, 3).li(2, 40'000).li(3, 0);
    b.label("loop")
        .divu(4, 0, 1)      // independent 18-cycle divides
        .divu(5, 0, 1)
        .addi(3, 3, 1)
        .cmpltu(6, 3, 2)
        .bnez(6, "loop")
        .halt();
    Rig r(b.build());
    r.core.run(20'000);
    // One divider at 18 cycles each, 2 divides per 5-inst iteration:
    // IPC can't exceed 5/36.
    EXPECT_LT(r.core.stats().ipc(), 0.2);
}

TEST(CoreTiming, MispredictsCostCycles)
{
    // Data-dependent unpredictable branches vs the same loop with an
    // always-taken pattern.
    auto build = [](bool random) {
        SimMemory mem(1 << 22);
        const uint64_t n = 4096;
        const Addr arr = mem.alloc(n * 8);
        Rng rng(5);
        for (uint64_t i = 0; i < n; ++i)
            mem.write64(arr, i, random ? rng.next() & 1 : 1);
        ProgramBuilder b;
        b.li(0, int64_t(arr)).li(1, 0).li(2, int64_t(n)).li(5, 0);
        b.label("loop")
            .shli(3, 1, 3)
            .add(3, 0, 3)
            .ld(4, 3)
            .beqz(4, "skip")
            .addi(5, 5, 1);
        b.label("skip")
            .addi(1, 1, 1)
            .cmpltu(6, 1, 2)
            .bnez(6, "loop")
            .jmp("reset");
        b.label("reset").li(1, 0).jmp("loop");
        return std::make_pair(b.build(), std::move(mem));
    };

    auto [p1, m1] = build(true);
    MemorySystem ms1(MemConfig(), m1);
    OooCore c1(CoreConfig(), p1, m1, ms1);
    c1.run(100'000);

    auto [p2, m2] = build(false);
    MemorySystem ms2(MemConfig(), m2);
    OooCore c2(CoreConfig(), p2, m2, ms2);
    c2.run(100'000);

    EXPECT_GT(c1.stats().mispredicts, 5 * c2.stats().mispredicts);
    EXPECT_LT(c1.stats().ipc(), c2.stats().ipc());
}

TEST(CoreTiming, DramBoundLoopStallsOnFullRob)
{
    // Pointer-chase over a >LLC working set: the ROB fills behind
    // DRAM loads and the stall hook fires.
    struct Hook : public CoreClient
    {
        Cycle onFullRobStall(const StallInfo &si) override
        {
            ++events;
            EXPECT_GT(si.headLoadDone, si.stallStart);
            return 0;
        }
        unsigned events = 0;
    };

    SimMemory mem(256 << 20);
    const uint64_t slots = 1 << 21;     // 16 MB of 8 B slots
    const Addr t = mem.alloc(slots * 8);
    Rng rng(3);
    for (uint64_t i = 0; i < slots; ++i)
        mem.write64(t, i, rng.nextBelow(slots));
    ProgramBuilder b;
    b.li(0, int64_t(t)).li(1, 0).li(2, 1 << 20).li(3, 0);
    b.label("loop")
        .shli(4, 3, 3)
        .add(4, 0, 4)
        .ld(3, 4)           // dependent random chase
        .addi(1, 1, 1)
        .cmpltu(5, 1, 2)
        .bnez(5, "loop")
        .halt();
    Program p = b.build();
    Hook hook;
    MemorySystem ms(MemConfig(), mem);
    OooCore core(CoreConfig(), p, mem, ms, &hook);
    core.run(40'000);
    EXPECT_GT(core.stats().robStallCycles, 0.0);
    EXPECT_GT(hook.events, 0u);
    EXPECT_GT(core.stats().loadsDram, 1000u);
}

TEST(CoreTiming, HookExtraStallDelaysDispatch)
{
    struct Hook : public CoreClient
    {
        Cycle onFullRobStall(const StallInfo &si) override
        {
            return si.headLoadDone + 5000;  // delayed termination
        }
    };
    SimMemory mem(256 << 20);
    const uint64_t slots = 1 << 21;
    const Addr t = mem.alloc(slots * 8);
    Rng rng(3);
    for (uint64_t i = 0; i < slots; ++i)
        mem.write64(t, i, rng.nextBelow(slots));
    ProgramBuilder b;
    b.li(0, int64_t(t)).li(1, 0).li(2, 1 << 20).li(3, 0);
    b.label("loop")
        .shli(4, 3, 3)
        .add(4, 0, 4)
        .ld(3, 4)
        .addi(1, 1, 1)
        .cmpltu(5, 1, 2)
        .bnez(5, "loop")
        .halt();
    Program p = b.build();

    MemorySystem ms1(MemConfig(), mem);
    OooCore plain(CoreConfig(), p, mem, ms1);
    plain.run(20'000);

    SimMemory mem2 = mem;
    Hook hook;
    MemorySystem ms2(MemConfig(), mem2);
    OooCore stalled(CoreConfig(), p, mem2, ms2, &hook);
    stalled.run(20'000);

    EXPECT_GT(stalled.stats().cycles, plain.stats().cycles);
    EXPECT_GT(stalled.stats().runaheadExtraStall, 0.0);
}

TEST(CoreConfigTest, WithRobScalesQueues)
{
    const CoreConfig c = CoreConfig::withRob(128, true);
    EXPECT_EQ(c.robSize, 128u);
    EXPECT_LT(c.iqSize, 128u);
    EXPECT_LT(c.sqSize, 72u);
    const CoreConfig d = CoreConfig::withRob(512, false);
    EXPECT_EQ(d.robSize, 512u);
    EXPECT_EQ(d.iqSize, 128u);
}

TEST(CoreStatsTest, ExportsNamedValues)
{
    ProgramBuilder b;
    b.li(0, 1).halt();
    Rig r(b.build());
    r.core.run(10);
    const StatSet s = r.core.stats().toStatSet();
    EXPECT_EQ(s.get("instructions"), 1.0);
    EXPECT_TRUE(s.has("ipc"));
    EXPECT_TRUE(s.has("rob_stall_cycles"));
}

} // namespace
} // namespace dvr
