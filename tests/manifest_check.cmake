# End-to-end observability check, run as a ctest leg: drive the real
# dvr_run binary with tracing enabled in a scratch directory, then
# validate every emitted artifact with dvr_trace:
#   - MANIFEST_dvr_run.json must pass the manifest key schema
#   - the binary trace must decode (magic + whole 32-byte records)
#   - the JSONL trace must exist and be non-empty
#
# Invoked with -DDVR_RUN=... -DDVR_TRACE=... -DWORK_DIR=...

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Pin the env-sensitive knobs so a caller's DVR_* environment cannot
# change what this test runs or where it writes.
set(ENV{DVR_BENCH_DIR} "${WORK_DIR}")
unset(ENV{DVR_INSTS})
unset(ENV{DVR_SCALE_SHIFT})

execute_process(
    COMMAND "${DVR_RUN}" -w camel --scale-shift 4 -n 40000
            -t base,dvr --trace all
            --trace-file "${WORK_DIR}/dvr_trace.jsonl"
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "dvr_run failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

set(manifest "${WORK_DIR}/MANIFEST_dvr_run.json")
if(NOT EXISTS "${manifest}")
    message(FATAL_ERROR "dvr_run did not write ${manifest}:\n${run_out}")
endif()

execute_process(
    COMMAND "${DVR_TRACE}" --check "${manifest}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "manifest failed validation:\n${check_out}\n${check_err}")
endif()

execute_process(
    COMMAND "${DVR_TRACE}" "${WORK_DIR}/dvr_trace.jsonl.bin"
    RESULT_VARIABLE decode_rc
    OUTPUT_QUIET
    ERROR_VARIABLE decode_err)
if(NOT decode_rc EQUAL 0)
    message(FATAL_ERROR
        "binary trace failed to decode:\n${decode_err}")
endif()

set(jsonl "${WORK_DIR}/dvr_trace.jsonl")
if(NOT EXISTS "${jsonl}")
    message(FATAL_ERROR "JSONL trace ${jsonl} was not written")
endif()
file(SIZE "${jsonl}" jsonl_size)
if(jsonl_size EQUAL 0)
    message(FATAL_ERROR
        "JSONL trace is empty: dvr under --trace all must emit events")
endif()
