/**
 * @file
 * Simulation-harness tests: configuration plumbing, PreparedWorkload
 * reuse, and the cross-technique performance properties the
 * evaluation depends on.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace dvr {
namespace {

TEST(Config, TechniqueNamesRoundTrip)
{
    for (Technique t :
         {Technique::kBase, Technique::kPre, Technique::kImp,
          Technique::kVr, Technique::kDvr, Technique::kDvrOffload,
          Technique::kDvrDiscovery, Technique::kOracle}) {
        EXPECT_EQ(parseTechnique(techniqueName(t)), t);
    }
    EXPECT_THROW(parseTechnique("bogus"), std::runtime_error);
}

TEST(Config, BaselineWiresTechniqueKnobs)
{
    EXPECT_TRUE(SimConfig::baseline(Technique::kImp)
                    .mem.impPrefetcher);
    EXPECT_FALSE(SimConfig::baseline(Technique::kBase)
                     .mem.impPrefetcher);
    const SimConfig off = SimConfig::baseline(Technique::kDvrOffload);
    EXPECT_FALSE(off.dvr.discoveryEnabled);
    EXPECT_FALSE(off.dvr.nestedEnabled);
    const SimConfig disc =
        SimConfig::baseline(Technique::kDvrDiscovery);
    EXPECT_TRUE(disc.dvr.discoveryEnabled);
    EXPECT_FALSE(disc.dvr.nestedEnabled);
}

TEST(Prepared, ReuseAcrossTechniquesIsPristine)
{
    WorkloadParams wp;
    wp.scaleShift = 4;
    PreparedWorkload pw("nas_is", "", wp, 64ULL << 20);
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    cfg.maxInstructions = 100'000'000;  // run to completion
    const SimResult r1 = pw.run(cfg);
    const SimResult r2 = pw.run(cfg);   // second run: same data set
    ASSERT_TRUE(r1.halted);
    EXPECT_TRUE(r1.verified);
    EXPECT_TRUE(r2.verified);
    EXPECT_EQ(r1.core.cycles, r2.core.cycles);
}

TEST(Prepared, LabelIncludesInput)
{
    WorkloadParams wp;
    wp.scaleShift = 6;
    PreparedWorkload g("bfs", "UR", wp, 64ULL << 20);
    EXPECT_EQ(g.label(), "bfs_UR");
    PreparedWorkload h("camel", "", wp, 64ULL << 20);
    EXPECT_EQ(h.label(), "camel");
}

TEST(Matrix, CoversAllThirtyThreeCombinations)
{
    const auto m = benchmarkMatrix();
    EXPECT_EQ(m.size(), 5u * 5u + 8u);
    EXPECT_EQ(allKernels().size(), 13u);
}

class TechniqueOrdering
    : public testing::TestWithParam<const char *>
{
};

/**
 * The evaluation's load-bearing property, per benchmark: DVR beats
 * the baseline; the Oracle is at least as good as the baseline.
 */
TEST_P(TechniqueOrdering, DvrBeatsBaselineOracleTops)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw(GetParam(), "KR", wp, 128ULL << 20);
    SimConfig c = SimConfig::baseline(Technique::kBase);
    c.maxInstructions = 200'000;
    const double base = pw.run(c).ipc();
    c = SimConfig::baseline(Technique::kDvr);
    c.maxInstructions = 200'000;
    const double dvr = pw.run(c).ipc();
    c = SimConfig::baseline(Technique::kOracle);
    c.maxInstructions = 200'000;
    const double oracle = pw.run(c).ipc();
    EXPECT_GT(dvr, 1.2 * base) << "DVR must clearly beat the OoO core";
    EXPECT_GT(oracle, base);
}

INSTANTIATE_TEST_SUITE_P(IndirectKernels, TechniqueOrdering,
                         testing::Values("bfs", "cc", "camel", "hj2",
                                         "hj8", "kangaroo"));

TEST(RobSweep, BaselinePerformanceGrowsWithRob)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw("camel", "", wp, 96ULL << 20);
    double prev = 0.0;
    for (unsigned rob : {64u, 350u}) {
        SimConfig cfg = SimConfig::baseline(Technique::kBase);
        cfg.maxInstructions = 150'000;
        cfg.core = CoreConfig::withRob(rob);
        const double ipc = pw.run(cfg).ipc();
        EXPECT_GT(ipc, prev);
        prev = ipc;
    }
}

TEST(RobSweep, FullRobStallFractionDropsWithBiggerRob)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw("camel", "", wp, 96ULL << 20);
    auto stall_frac = [&](unsigned rob) {
        SimConfig cfg = SimConfig::baseline(Technique::kBase);
        cfg.maxInstructions = 150'000;
        cfg.core = CoreConfig::withRob(rob);
        const SimResult r = pw.run(cfg);
        return r.stats.get("core.rob_stall_cycles") /
               double(r.core.cycles);
    };
    EXPECT_GT(stall_frac(128), stall_frac(512));
}

TEST(Mlp, DvrSustainsMoreOutstandingMissesThanBaseline)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw("hj8", "", wp, 96ULL << 20);
    SimConfig base = SimConfig::baseline(Technique::kBase);
    base.maxInstructions = 150'000;
    SimConfig dvr_cfg = SimConfig::baseline(Technique::kDvr);
    dvr_cfg.maxInstructions = 150'000;
    EXPECT_GT(pw.run(dvr_cfg).mshrOccupancy(),
              1.5 * pw.run(base).mshrOccupancy());
}

TEST(Accuracy, DvrDramTrafficStaysNearBaseline)
{
    WorkloadParams wp;
    wp.scaleShift = 2;
    PreparedWorkload pw("camel", "", wp, 96ULL << 20);
    SimConfig base = SimConfig::baseline(Technique::kBase);
    base.maxInstructions = 150'000;
    SimConfig dvr_cfg = SimConfig::baseline(Technique::kDvr);
    dvr_cfg.maxInstructions = 150'000;
    const double b = pw.run(base).stats.get("mem.dram_total");
    const double d = pw.run(dvr_cfg).stats.get("mem.dram_total");
    // Discovery-bounded vectorization: no runaway over-fetch.
    EXPECT_LT(d, 1.6 * b);
}

} // namespace
} // namespace dvr
