/** @file Unit tests for the common substrate: RNG, hashes, stats. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "common/stats.hh"

namespace dvr {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Hash, KernelHashIsDeterministicAndSpreads)
{
    EXPECT_EQ(kernelHash(1), kernelHash(1));
    std::set<uint64_t> lows;
    for (uint64_t i = 0; i < 1000; ++i)
        lows.insert(kernelHash(i) & 0xffff);
    EXPECT_GT(lows.size(), 950u);   // few low-bit collisions
}

TEST(Stats, AddSetGetMerge)
{
    StatSet s;
    s.add("a", 1);
    s.add("a", 2);
    EXPECT_DOUBLE_EQ(s.get("a"), 3);
    s.set("a", 5);
    EXPECT_DOUBLE_EQ(s.get("a"), 5);
    // Unregistered reads panic in strict mode (the tests' default);
    // getOr is the sanctioned probe for optional stats.
    EXPECT_DOUBLE_EQ(s.getOr("missing", 0), 0);
    EXPECT_FALSE(s.has("missing"));

    StatSet t;
    t.set("x", 7);
    s.merge("sub.", t);
    EXPECT_DOUBLE_EQ(s.get("sub.x"), 7);
}

TEST(Stats, Means)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1, 1, 1}), 1.0);
    EXPECT_NEAR(harmonicMean({1, 2}), 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(geometricMean({1, 4}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(arithmeticMean({1, 3}), 2.0);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    // Non-positive entries are ignored, not poisonous.
    EXPECT_NEAR(harmonicMean({0.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace dvr
