/**
 * @file
 * Copy-on-write memory and architectural-checkpoint coverage: page
 * sharing across copies and concurrent runs, first-write cloning,
 * accesses straddling a page boundary, and checkpoint-restored runs
 * matching cold runs byte-for-byte and stat-for-stat.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mem/sim_memory.hh"
#include "sim/checkpoint.hh"
#include "sim/experiment.hh"

namespace dvr {
namespace {

TEST(CowMemory, CopySharesAllPagesUntilFirstWrite)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(4 * kPageBytes);
    m.write(a, 8, 0x1111);
    m.write(a + 2 * kPageBytes, 8, 0x2222);
    m.compact();

    const CowMemStats before = SimMemory::cowStats();
    SimMemory copy = m;
    const CowMemStats after_copy = SimMemory::cowStats().since(before);
    EXPECT_EQ(after_copy.imageCopies, 1u);
    EXPECT_EQ(after_copy.pagesShared, m.livePages());
    EXPECT_EQ(after_copy.bytesAvoided, m.brk());
    EXPECT_EQ(after_copy.pagesCloned, 0u);

    EXPECT_EQ(copy.pagesSharedWith(m), m.livePages());
    EXPECT_TRUE(copy.sameContent(m));

    // First write clones exactly the touched page.
    copy.write(a, 8, 0x3333);
    const CowMemStats after_write = SimMemory::cowStats().since(before);
    EXPECT_EQ(after_write.pagesCloned, 1u);
    EXPECT_EQ(after_write.bytesCloned, kPageBytes);
    EXPECT_EQ(copy.pagesSharedWith(m), m.livePages() - 1);

    // Writer sees its write; the origin is untouched; the rest of the
    // cloned page still matches the original byte-for-byte.
    EXPECT_EQ(copy.read(a, 8), 0x3333u);
    EXPECT_EQ(m.read(a, 8), 0x1111u);
    EXPECT_EQ(copy.read(a + 8, 8), m.read(a + 8, 8));
    EXPECT_EQ(copy.read(a + 2 * kPageBytes, 8), 0x2222u);

    // Writing the same page again must not clone again.
    copy.write(a + 16, 8, 0x4444);
    EXPECT_EQ(SimMemory::cowStats().since(before).pagesCloned, 1u);
}

TEST(CowMemory, ConcurrentCopiesAreIsolated)
{
    SimMemory pristine(1 << 20);
    const Addr a = pristine.alloc(8 * kPageBytes);
    for (uint64_t p = 0; p < 8; ++p)
        pristine.write(a + p * kPageBytes, 8, 1000 + p);
    pristine.compact();

    // Every "run" copies the image concurrently, writes its own page,
    // and checks both its write and the pages it left shared.
    std::vector<std::thread> threads;
    std::vector<int> ok(8, 0);
    for (uint64_t t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            SimMemory run = pristine;
            const Addr mine = a + t * kPageBytes;
            run.write(mine, 8, 7000 + t);
            bool good = run.read(mine, 8) == 7000 + t;
            for (uint64_t p = 0; p < 8; ++p) {
                if (p == t)
                    continue;
                good = good &&
                       run.read(a + p * kPageBytes, 8) == 1000 + p;
            }
            ok[t] = good ? 1 : 0;
        });
    }
    for (auto &th : threads)
        th.join();
    for (uint64_t t = 0; t < 8; ++t)
        EXPECT_EQ(ok[t], 1) << "thread " << t;

    // The pristine image never sees any run's writes.
    for (uint64_t p = 0; p < 8; ++p)
        EXPECT_EQ(pristine.read(a + p * kPageBytes, 8), 1000 + p);
}

TEST(CowMemory, AccessesSpanningPageBoundary)
{
    SimMemory m(1 << 20);
    const Addr a = m.alloc(3 * kPageBytes);
    ASSERT_LT(a, kPageBytes);   // region starts inside the first page

    // An 8-byte access laid across the first page boundary.
    const Addr split = kPageBytes - 4;
    ASSERT_GE(split, a);
    m.write(split, 8, 0x8877665544332211ULL);
    EXPECT_EQ(m.read(split, 8), 0x8877665544332211ULL);
    // Byte decomposition across the two pages.
    EXPECT_EQ(m.read(split + 3, 1), 0x44u);
    EXPECT_EQ(m.read(split + 4, 1), 0x55u);

    uint64_t v = 0;
    EXPECT_TRUE(m.tryRead(split, 8, v));
    EXPECT_EQ(v, 0x8877665544332211ULL);

    // A split write into a copy clones both touched pages.
    m.compact();
    const CowMemStats before = SimMemory::cowStats();
    SimMemory copy = m;
    copy.write(split, 8, 0x1020304050607080ULL);
    EXPECT_EQ(SimMemory::cowStats().since(before).pagesCloned, 2u);
    EXPECT_EQ(copy.read(split, 8), 0x1020304050607080ULL);
    EXPECT_EQ(m.read(split, 8), 0x8877665544332211ULL);
}

/** Build camel (scaled down) the way dvr_run does, with direct access
 *  to the pristine image for checkpoint tests. */
struct BuiltWorkload
{
    SimMemory mem;
    Workload w;

    explicit BuiltWorkload(uint64_t memory_bytes) : mem(memory_bytes)
    {
        WorkloadParams wp;
        wp.scaleShift = 6;
        w = workloadFactory("camel")(mem, wp);
        mem.compact();
    }
};

TEST(Checkpoint, ZeroWarmupRestoreMatchesFreshCopyExactly)
{
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    cfg.maxInstructions = 20'000;
    BuiltWorkload b(cfg.memoryBytes);

    const Checkpoint ckpt = makeCheckpoint(b.w.program, b.mem, 0);
    EXPECT_EQ(ckpt.insts, 0u);
    EXPECT_EQ(ckpt.pc, 0u);
    EXPECT_FALSE(ckpt.halted);
    // The snapshot is a pure share: byte-identical, no page cloned.
    EXPECT_TRUE(ckpt.memory.sameContent(b.mem));
    EXPECT_EQ(ckpt.memory.pagesSharedWith(b.mem), b.mem.livePages());
    for (uint64_t r : ckpt.regs.value)
        EXPECT_EQ(r, 0u);

    // A run restored from the empty checkpoint must be stat-identical
    // to a run on a fresh copy of the pristine image.
    const SimResult cold = Simulator::runOn(cfg, b.w, b.mem);
    const SimResult restored = Simulator::runOn(cfg, b.w, ckpt);
    EXPECT_EQ(restored.stats.toJson(6), cold.stats.toJson(6));
    EXPECT_EQ(restored.core.cycles, cold.core.cycles);
}

TEST(Checkpoint, WarmupRunCompletesAndPassesGoldenVerify)
{
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    BuiltWorkload b(cfg.memoryBytes);
    cfg.maxInstructions = b.w.fullRunInsts * 2 + 1000;

    const SimResult cold = Simulator::runOn(cfg, b.w, b.mem);
    ASSERT_TRUE(cold.halted);
    ASSERT_TRUE(cold.verified);

    // Fast-forward part of the run functionally, finish it timed: the
    // final memory image must still satisfy the golden model (the
    // verify lambda byte-compares results), and the timed run retires
    // exactly the dynamic instructions the warmup skipped.
    const uint64_t warmup = b.w.fullRunInsts / 3;
    SimConfig warm_cfg = cfg;
    warm_cfg.warmup.insts = warmup;
    const SimResult warm = Simulator::runOn(warm_cfg, b.w, b.mem);
    EXPECT_TRUE(warm.halted);
    EXPECT_TRUE(warm.verified);
    EXPECT_EQ(warm.core.instructions, cold.core.instructions - warmup);
}

TEST(Checkpoint, CheckpointOwnsOnlyItsDirtyFootprint)
{
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    BuiltWorkload b(cfg.memoryBytes);

    const CowMemStats before = SimMemory::cowStats();
    const Checkpoint ckpt = makeCheckpoint(b.w.program, b.mem, 10'000);
    EXPECT_EQ(ckpt.insts, 10'000u);
    EXPECT_GT(ckpt.pc, 0u);

    // The warmed image still shares every page the warmup did not
    // store to; each unshared page is accounted either as a clone
    // (image data copied) or as a zero-page materialization (fresh
    // zeroed page, nothing copied).
    const size_t shared = ckpt.memory.pagesSharedWith(b.mem);
    const CowMemStats delta = SimMemory::cowStats().since(before);
    EXPECT_EQ(shared + delta.pagesCloned + delta.pagesMaterialized,
              b.mem.livePages());
    EXPECT_LT(delta.pagesCloned + delta.pagesMaterialized,
              b.mem.livePages());
}

TEST(Checkpoint, SharedCheckpointMatchesPerRunFastForward)
{
    SimConfig cfg = SimConfig::baseline(Technique::kBase);
    cfg.maxInstructions = 20'000;
    cfg.warmup.insts = 10'000;

    WorkloadParams wp;
    wp.scaleShift = 6;
    const PreparedWorkload pw("camel", "", wp, cfg.memoryBytes);

    SimConfig shared_cfg = cfg;
    shared_cfg.warmup.share = true;
    SimConfig per_run_cfg = cfg;
    per_run_cfg.warmup.share = false;

    const SimResult a = pw.run(shared_cfg);
    const SimResult a2 = pw.run(shared_cfg);   // cache hit path
    const SimResult c = pw.run(per_run_cfg);
    EXPECT_EQ(a.stats.toJson(6), a2.stats.toJson(6));
    EXPECT_EQ(a.stats.toJson(6), c.stats.toJson(6));
}

} // namespace
} // namespace dvr
