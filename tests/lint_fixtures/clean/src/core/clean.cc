// Fixture: hot-path file every rule stays silent on. The strings and
// comments below would trip naive matchers: "new Widget" in prose,
// rand() in a string literal, and a raw string with an embedded
// unordered_map mention must all be scrubbed before rules run.
#include "common/clean.hh"

namespace fixture {

// Allocating a new Widget here would be a violation; describing one
// is not.
const char *kMessage = "call rand() and new Widget";
const char *kRaw = R"(std::unordered_map<int, int> in a string)";

unsigned
f(unsigned totalInsts)
{
    return totalInsts + 1'000;      // digit separator, not a char
}

} // namespace fixture
