namespace fix {

// The next physical line is still this comment: \
   int *leak = new int; rand(); srand(7);

int
answer()
{
    return 42;
}

} // namespace fix
