// Fixture: a file every rule stays silent on.
#ifndef DVR_COMMON_CLEAN_HH
#define DVR_COMMON_CLEAN_HH

namespace fixture {

struct Widget
{
    unsigned count = 0;
};

} // namespace fixture

#endif // DVR_COMMON_CLEAN_HH
