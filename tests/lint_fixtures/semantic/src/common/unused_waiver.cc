namespace fix {

// dvr-lint: allow(no-rand) live: suppresses nothing in this file
int
liveUnused()
{
    return 1;
}

// dvr-lint: allow(bad-waiver) fixture twin
// dvr-lint: allow(no-float-timing) intentionally dead
int
waivedUnused()
{
    return 2;
}

} // namespace fix
