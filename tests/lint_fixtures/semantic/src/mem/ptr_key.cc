#include <map>

namespace fix {

struct PageTable
{
    std::map<int *, unsigned> live_by_addr_;
    // dvr-lint: allow(pointer-key) fixture twin: never iterated
    std::map<int *, unsigned> waived_by_addr_;
};

} // namespace fix
