#include <memory>

namespace fix {

int
helperAlloc()
{
    auto p = std::make_unique<int>(7);
    return *p;
}

void
waivedAlloc()
{
    // dvr-lint: allow(hot-alloc) fixture twin: once at startup
    auto q = std::make_unique<int>(9);
    (void)q;
}

// dvr-hot-path
void hotTick()
{
    helperAlloc();
    waivedAlloc();
}

} // namespace fix
