#include <atomic>

namespace fix {

std::atomic<unsigned> g_events{0};

unsigned
liveLoad()
{
    return g_events.load(std::memory_order_relaxed);
}

unsigned
waivedLoad()
{
    // dvr-lint: allow(relaxed-atomic) fixture twin: racy reader is fine
    return g_events.load(std::memory_order_relaxed);
}

} // namespace fix
