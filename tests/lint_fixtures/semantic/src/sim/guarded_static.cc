#include <mutex>
#include <vector>

namespace fix {

std::mutex g_mu;
// dvr-guarded-by(g_mu)
std::vector<int> g_ring;

void
liveAppend(int v)
{
    g_ring.push_back(v);
}

void
waivedAppend(int v)
{
    // dvr-lint: allow(guarded-by) fixture twin: caller holds g_mu
    g_ring.push_back(v);
}

void
lockedAppend(int v)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_ring.push_back(v);
}

} // namespace fix
