#include <chrono>

namespace fix {

long
liveElapsed()
{
    const auto t0 = std::chrono::steady_clock::now();
    return t0.time_since_epoch().count();
}

long
waivedElapsed()
{
    // dvr-lint: allow(wall-clock) fixture twin: diagnostics only
    const auto t0 = std::chrono::steady_clock::now();
    return t0.time_since_epoch().count();
}

} // namespace fix
