#include <cstdint>
#include <mutex>

namespace fix {

class Counter
{
  public:
    void liveBump()
    {
        ++hits_;
    }

    void waivedBump()
    {
        // dvr-lint: allow(guarded-by) fixture twin: init-only path
        ++hits_;
    }

    void lockedBump()
    {
        std::lock_guard<std::mutex> g(mu_);
        ++hits_;
    }

  private:
    std::mutex mu_;
    // dvr-guarded-by(mu_)
    uint64_t hits_ = 0;
};

} // namespace fix
