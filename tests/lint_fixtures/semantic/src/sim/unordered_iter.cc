#include <cstdio>
#include <unordered_map>

namespace fix {

class HistDump
{
  public:
    void liveDump()
    {
        for (const auto &kv : counts_)
            std::printf("%u\n", kv.second);
    }

    void waivedDump()
    {
        // dvr-lint: allow(unordered-iteration) fixture twin: sums only
        for (const auto &kv : counts_)
            std::printf("%u\n", kv.second);
    }

  private:
    std::unordered_map<int, unsigned> counts_;
};

} // namespace fix
