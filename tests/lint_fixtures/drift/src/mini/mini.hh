// Fixture: schema-drift target struct.
#ifndef DVR_MINI_MINI_HH
#define DVR_MINI_MINI_HH

namespace dvr {

struct MiniConfig
{
    unsigned width = 1;
    unsigned height = 2;
    unsigned depth = 3;     ///< absent from config_fields.def
};

} // namespace dvr

#endif // DVR_MINI_MINI_HH
