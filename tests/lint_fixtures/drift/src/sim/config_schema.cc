// Fixture: the registered keys the schema-drift rule cross-checks.
// "mini.height" is deliberately absent.
namespace fixture {

const char *kRegisteredKeys[] = {"mini.width", "mini.stale"};

} // namespace fixture
