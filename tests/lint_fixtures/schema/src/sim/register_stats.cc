namespace fix {

struct StatSet
{
    void set(const char *name, double v);
};

void
exportStats(StatSet &s)
{
    s.set("covered_stat", 1.0);
    s.set("family_hist_3", 2.0);
    s.set("unlisted_stat", 3.0);
    // dvr-lint: allow(stat-schema) fixture twin: migration in flight
    s.set("waived_unlisted_stat", 4.0);
}

} // namespace fix
