// Fixture: no-rand. Simulated runs must be deterministic.
#include <cstdlib>

namespace fixture {

int
g()
{
    const int live = std::rand();   // seeded violation
    // dvr-lint: allow(no-rand)
    const int waivedValue = std::rand();
    return live + waivedValue;
}

} // namespace fixture
