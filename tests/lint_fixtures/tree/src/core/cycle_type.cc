// Fixture: cycle-type. Narrow integer declarations must not hold
// cycle counts or latencies; dvr::Cycle is the sanctioned carrier.
namespace fixture {

void
f()
{
    unsigned stallCycles = 0;       // seeded violation
    (void)stallCycles;
    unsigned warmupCycles = 0;      // dvr-lint: allow(cycle-type)
    (void)warmupCycles;
}

} // namespace fixture
