// Fixture: include-guard. The guard must be derived from the path
// (expected here: DVR_COMMON_BAD_GUARD_HH).
#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

namespace fixture {}

#endif // WRONG_GUARD_HH
