// Fixture: include-guard, waived form.
// dvr-lint: allow(include-guard)
#ifndef LEGACY_GUARD_HH
#define LEGACY_GUARD_HH

namespace fixture {}

#endif // LEGACY_GUARD_HH
