// Fixture: using-namespace-header.
#ifndef DVR_COMMON_USING_NS_HH
#define DVR_COMMON_USING_NS_HH

namespace fixture_ns {}

using namespace fixture_ns;     // seeded violation
// dvr-lint: allow(using-namespace-header)
using namespace fixture_ns;

#endif // DVR_COMMON_USING_NS_HH
