// Fixture: naked-new. Owning allocations go through RAII wrappers.
namespace fixture {

void
f()
{
    int *live = new int(3);     // seeded violation
    // dvr-lint: allow(naked-new)
    delete live;
}

} // namespace fixture
