// Fixture: hot-map. No hash maps on the src/core | src/mem hot paths
// without a waiver carrying the justification.
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> live;      // seeded violation
// dvr-lint: allow(hot-map) -- fixture: rarely-touched side table
std::unordered_map<int, int> waived;

} // namespace fixture
