// Fixture: no-float-timing. Timing code keeps cycle math exact.
namespace fixture {

float liveRatio = 0.0F;         // seeded violation
double fineRatio = 0.0;
float waivedRatio = 0.0F;       // dvr-lint: allow(no-float-timing)

} // namespace fixture
