// Fixture: stat-name. Stat names are lower_snake_case.
namespace fixture {

void
exportStats(StatSet &s)
{
    s.set("BadName", 1.0);      // seeded violation
    // dvr-lint: allow(stat-name)
    s.set("AlsoBad", 2.0);
    s.set("fine_name", 3.0);
}

} // namespace fixture
