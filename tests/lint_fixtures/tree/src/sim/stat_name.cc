// Fixture: stat-name. Stat names are lower_snake_case, and the
// cpi.* / timeliness.* / serve.* namespaces only admit their closed
// vocabulary.
namespace fixture {

void
exportStats(StatSet &s)
{
    s.set("BadName", 1.0);      // seeded violation
    // dvr-lint: allow(stat-name)
    s.set("AlsoBad", 2.0);
    s.set("fine_name", 3.0);
    s.set("cpi.bogus_component", 4.0);  // seeded violation (namespace)
    // dvr-lint: allow(stat-name)
    s.set("timeliness.ra_rubbish", 5.0);
    s.set("cpi.full_rob", 6.0);
    s.set("timeliness.ra_hidden_hist_", 7.0);  // index appended at runtime
    s.set("serve.cache_hits", 8.0);
    s.set("serve.warm_hits", 9.0);  // seeded violation (serve namespace)
    // dvr-lint: allow(stat-name)
    s.set("serve.also_not_a_counter", 10.0);
}

} // namespace fixture
