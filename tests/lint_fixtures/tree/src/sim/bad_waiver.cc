// Fixture: bad-waiver. A typo'd waiver must not suppress silently.
namespace fixture {

// dvr-lint: allow(not-a-rule)
int x = 0;

// dvr-lint: allow(bad-waiver) dvr-lint: allow(also-not-a-rule)
int y = 0;

} // namespace fixture
