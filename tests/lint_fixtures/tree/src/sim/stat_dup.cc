// Fixture: stat-dup. A stat name is registered (.set) once per file.
namespace fixture {

void
exportStats(StatSet &s)
{
    s.set("episodes", 1.0);
    s.set("episodes", 2.0);     // seeded violation
    s.set("lane_loads", 1.0);
    // dvr-lint: allow(stat-dup)
    s.set("lane_loads", 2.0);
    s.add("accumulated", 1.0);  // .add accumulates; twice is fine
    s.add("accumulated", 2.0);
}

} // namespace fixture
