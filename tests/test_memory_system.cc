/** @file MemorySystem integration: levels, timing, timeliness. */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "mem/sim_memory.hh"

namespace dvr {
namespace {

class MemSysTest : public testing::Test
{
  protected:
    MemSysTest() : mem_(1 << 24)
    {
        cfg_.stridePrefetcher = false;  // isolate hierarchy behaviour
        ms_ = std::make_unique<MemorySystem>(cfg_, mem_);
        base_ = mem_.alloc(1 << 22);
    }

    MemAccess load(Addr a, Cycle c,
                   Requester who = Requester::kMain)
    {
        return ms_->access(a, 8, c, false, who, 1, 0);
    }

    MemConfig cfg_;
    SimMemory mem_;
    std::unique_ptr<MemorySystem> ms_;
    Addr base_;
};

TEST_F(MemSysTest, ColdMissGoesToDramThenHitsL1)
{
    const MemAccess m1 = load(base_, 0);
    EXPECT_EQ(m1.level, HitLevel::kDram);
    EXPECT_GE(m1.done, cfg_.l3Lat + cfg_.dramLat);

    const MemAccess m2 = load(base_ + 8, m1.done);   // same line
    EXPECT_EQ(m2.level, HitLevel::kL1);
    EXPECT_EQ(m2.done, m1.done + cfg_.l1Lat);
}

TEST_F(MemSysTest, InFlightHitWaitsForFill)
{
    const MemAccess m1 = load(base_, 0);
    const MemAccess m2 = load(base_, 10);   // line still in flight
    EXPECT_EQ(m2.level, HitLevel::kL1);
    EXPECT_TRUE(m2.inFlightHit);
    EXPECT_EQ(m2.done, m1.done + cfg_.l1Lat);
}

TEST_F(MemSysTest, L2HitAfterL1Eviction)
{
    // Fill enough distinct lines mapping to one L1 set to evict the
    // first one from L1; it must still hit in L2.
    const unsigned l1_sets = cfg_.l1Size / (cfg_.l1Assoc * kLineBytes);
    Cycle t = 0;
    for (unsigned w = 0; w <= cfg_.l1Assoc; ++w) {
        const MemAccess m =
            load(base_ + Addr(w) * l1_sets * kLineBytes, t);
        t = m.done;
    }
    const MemAccess m = load(base_, t);
    EXPECT_EQ(m.level, HitLevel::kL2);
    EXPECT_EQ(m.done, t + cfg_.l2Lat);
}

TEST_F(MemSysTest, RunaheadPrefetchTimelinessTracking)
{
    // Runahead fetches a line; the main thread touches it after the
    // fill completes -> found-at-L1.
    const MemAccess p = load(base_, 0, Requester::kRunahead);
    load(base_, p.done + 10);
    EXPECT_EQ(ms_->raFoundL1, 1u);

    // Second line touched while still in flight -> late.
    const MemAccess q = load(base_ + 4096, 0, Requester::kRunahead);
    load(base_ + 4096, q.done - 50);
    EXPECT_EQ(ms_->raFoundLate, 1u);

    // Unused prefetch shows up in the stats as ra_unused.
    load(base_ + 8192, 0, Requester::kRunahead);
    EXPECT_DOUBLE_EQ(ms_->stats().get("ra_unused"), 1.0);
}

TEST_F(MemSysTest, DramTrafficSplitByRequester)
{
    load(base_, 0, Requester::kMain);
    load(base_ + 4096, 0, Requester::kRunahead);
    ms_->prefetchLine(base_ + 8192, 0, Requester::kHwPrefetch);
    EXPECT_EQ(ms_->dram().accesses(Requester::kMain), 1u);
    EXPECT_EQ(ms_->dram().accesses(Requester::kRunahead), 1u);
    EXPECT_EQ(ms_->dram().accesses(Requester::kHwPrefetch), 1u);
}

TEST_F(MemSysTest, PrefetchLineDropsWhenMshrsBusy)
{
    // Saturate the MSHRs with demand misses at cycle 0.
    for (unsigned i = 0; i < cfg_.mshrs; ++i)
        load(base_ + Addr(i) * 4096, 0);
    const Cycle r = ms_->prefetchLine(base_ + (1 << 20), 1,
                                      Requester::kHwPrefetch);
    EXPECT_EQ(r, kCycleNever);
    EXPECT_GT(ms_->mshrs().prefetchDrops(), 0u);
}

TEST_F(MemSysTest, StoresAllocateAndDirtyLines)
{
    ms_->access(base_, 8, 0, true, Requester::kMain, 2, 0);
    const MemAccess m = load(base_, 5000);
    EXPECT_EQ(m.level, HitLevel::kL1);
}

TEST_F(MemSysTest, WritebacksCountOnDirtyL3Eviction)
{
    // Write-allocate far more distinct lines than the L3 holds.
    const uint64_t lines = cfg_.l3Size / kLineBytes + 4096;
    Cycle t = 0;
    SimMemory big(2ULL << 30);
    MemConfig small = cfg_;
    small.l3Size = 1 << 16;     // shrink L3 to make eviction cheap
    small.l2Size = 1 << 14;
    small.l1Size = 1 << 12;
    small.l1Assoc = small.l2Assoc = small.l3Assoc = 4;
    MemorySystem msys(small, big);
    const Addr b = big.alloc(lines * kLineBytes);
    (void)base_;
    for (uint64_t i = 0; i < 4096; ++i) {
        msys.access(b + i * kLineBytes, 8, t, true, Requester::kMain,
                    3, 0);
        t += 1;
    }
    EXPECT_GT(msys.writebacks, 0u);
    EXPECT_GT(msys.dram().accesses(Requester::kWriteback), 0u);
}

TEST_F(MemSysTest, PresentProbesAllLevels)
{
    EXPECT_FALSE(ms_->present(base_));
    load(base_, 0);
    EXPECT_TRUE(ms_->present(base_));
}

} // namespace
} // namespace dvr
