/** @file Stride prefetcher and IMP unit tests. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/imp_prefetcher.hh"
#include "mem/sim_memory.hh"
#include "mem/stride_prefetcher.hh"

namespace dvr {
namespace {

TEST(Stride, DetectsStreamAfterTraining)
{
    StridePrefetcher pf(16, 4);
    std::vector<Addr> out;
    // Training: first touches establish the stride.
    for (int i = 0; i < 3; ++i) {
        out.clear();
        pf.train(10, 0x1000 + i * 64, out);
    }
    out.clear();
    pf.train(10, 0x1000 + 3 * 64, out);
    ASSERT_FALSE(out.empty());
    // Prefetches run ahead of the stream.
    for (Addr a : out)
        EXPECT_GT(a, lineAlign(Addr(0x1000 + 3 * 64)));
}

TEST(Stride, NoPrefetchOnRandomAddresses)
{
    StridePrefetcher pf(16, 4);
    std::vector<Addr> out;
    const Addr seq[] = {0x1000, 0x9040, 0x2280, 0xbad0, 0x4100};
    for (Addr a : seq)
        pf.train(10, a, out);
    EXPECT_TRUE(out.empty());
}

TEST(Stride, TracksMultipleStreams)
{
    StridePrefetcher pf(16, 2);
    std::vector<Addr> out;
    for (int i = 0; i < 6; ++i) {
        pf.train(1, 0x10000 + i * 64, out);
        pf.train(2, 0x80000 + i * 8, out);
    }
    EXPECT_GT(pf.issued(), 0u);
}

TEST(Stride, NegativeStrideSupported)
{
    StridePrefetcher pf(16, 2);
    std::vector<Addr> out;
    for (int i = 0; i < 6; ++i) {
        out.clear();
        pf.train(3, 0x100000 - i * 64, out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out[0], 0x100000u - 5 * 64);
}

class ImpTest : public testing::Test
{
  protected:
    ImpTest() : mem_(1 << 22) {}

    SimMemory mem_;
};

TEST_F(ImpTest, LearnsIndirectPatternAndPrefetches)
{
    // B[A[i]] with 64-byte B records: addr = base + (value << 6).
    const Addr a_base = mem_.alloc(1024 * 8);
    const Addr b_base = mem_.alloc(512 << 6);
    for (uint64_t i = 0; i < 1024; ++i)
        mem_.write64(a_base, i, (i * 37) % 512);

    ImpPrefetcher imp(mem_, 4);
    std::vector<Addr> out;
    for (uint64_t i = 0; i < 24; ++i) {
        const uint64_t v = mem_.read64(a_base, i);
        // The striding index load...
        imp.observe(100, a_base + i * 8, v, 8, false, out);
        // ...followed by the indirect target miss.
        imp.observe(200, b_base + (v << 6), 0, 8, true, out);
    }
    EXPECT_GE(imp.patternsLearned(), 1u);
    ASSERT_FALSE(out.empty());
    // Prefetches must hit future B targets exactly.
    const Addr p = out.back();
    bool matches_future = false;
    for (uint64_t d = 0; d < 32; ++d) {
        const uint64_t fv = mem_.read64(a_base, 20 + d);
        if (lineAlign(b_base + (fv << 6)) == p)
            matches_future = true;
    }
    EXPECT_TRUE(matches_future);
}

TEST_F(ImpTest, DoesNotLearnHashedPatterns)
{
    const Addr a_base = mem_.alloc(1024 * 8);
    const Addr b_base = mem_.alloc(1024 << 6);
    for (uint64_t i = 0; i < 1024; ++i)
        mem_.write64(a_base, i, i);

    ImpPrefetcher imp(mem_, 4);
    std::vector<Addr> out;
    for (uint64_t i = 0; i < 32; ++i) {
        const uint64_t v = mem_.read64(a_base, i);
        imp.observe(100, a_base + i * 8, v, 8, false, out);
        const uint64_t h = kernelHash(v) & 1023;    // camel-style
        imp.observe(200, b_base + (h << 6), 0, 8, true, out);
    }
    // Coincidental base collisions can promote a couple of spurious
    // candidates, but a hashed pattern never becomes a reliable,
    // prefetch-generating rule.
    EXPECT_LE(imp.patternsLearned(), 3u);
    EXPECT_LT(imp.issued(), 64u);
}

} // namespace
} // namespace dvr
