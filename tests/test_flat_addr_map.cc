/**
 * @file
 * FlatAddrMap semantics, pinned against std::unordered_map: the
 * prefetch-timeliness stats it backs are golden-pinned, so the table
 * must be exact — emplace keeps the first record, erase really
 * removes (backward-shift, no tombstone artifacts), and every
 * surviving record stays findable across growth.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "mem/flat_addr_map.hh"

namespace dvr {
namespace {

Addr
lineAddr(uint64_t idx)
{
    return (idx + 1) * kLineBytes;
}

TEST(FlatAddrMap, EmplaceFindErase)
{
    FlatAddrMap<uint64_t> m(16);
    EXPECT_TRUE(m.empty());

    EXPECT_TRUE(m.emplace(lineAddr(1), 100));
    EXPECT_TRUE(m.emplace(lineAddr(2), 200));
    EXPECT_EQ(m.size(), 2u);

    // emplace keeps the original record (re-prefetch of a pending
    // line must not reset its issue time).
    EXPECT_FALSE(m.emplace(lineAddr(1), 999));
    ASSERT_NE(m.find(lineAddr(1)), nullptr);
    EXPECT_EQ(*m.find(lineAddr(1)), 100u);

    EXPECT_EQ(m.find(lineAddr(3)), nullptr);

    EXPECT_TRUE(m.erase(lineAddr(1)));
    EXPECT_FALSE(m.erase(lineAddr(1)));
    EXPECT_EQ(m.find(lineAddr(1)), nullptr);
    ASSERT_NE(m.find(lineAddr(2)), nullptr);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatAddrMap, EraseInProbeChainKeepsLaterEntriesFindable)
{
    // Force one long collision chain in a minimum-size table, then
    // delete from the middle: backward-shift deletion must keep every
    // survivor reachable (a naive "mark empty" would cut the chain).
    FlatAddrMap<uint64_t> m(16);
    std::vector<Addr> keys;
    for (uint64_t i = 0; i < 9; ++i)
        keys.push_back(lineAddr(i * 7 + 3));
    for (size_t i = 0; i < keys.size(); ++i)
        ASSERT_TRUE(m.emplace(keys[i], i));

    for (size_t victim = 0; victim < keys.size(); victim += 2)
        ASSERT_TRUE(m.erase(keys[victim]));

    for (size_t i = 0; i < keys.size(); ++i) {
        const uint64_t *v = m.find(keys[i]);
        if (i % 2 == 0) {
            EXPECT_EQ(v, nullptr) << "erased key " << i << " came back";
        } else {
            ASSERT_NE(v, nullptr) << "survivor key " << i << " lost";
            EXPECT_EQ(*v, i);
        }
    }
}

TEST(FlatAddrMap, MatchesUnorderedMapUnderRandomWorkload)
{
    FlatAddrMap<uint64_t> m(16);    // small: forces several growths
    std::unordered_map<Addr, uint64_t> ref;
    Rng rng(12345);

    for (uint64_t step = 0; step < 20000; ++step) {
        const Addr key = lineAddr(rng.next() % 512);
        switch (rng.next() % 3) {
        case 0: {
            const bool inserted = m.emplace(key, step);
            EXPECT_EQ(inserted, ref.emplace(key, step).second);
            break;
        }
        case 1: {
            EXPECT_EQ(m.erase(key), ref.erase(key) != 0);
            break;
        }
        default: {
            const uint64_t *v = m.find(key);
            const auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end());
            if (v) {
                EXPECT_EQ(*v, it->second);
            }
            break;
        }
        }
        ASSERT_EQ(m.size(), ref.size());
    }

    // Full-content sweep via forEach.
    uint64_t visited = 0;
    m.forEach([&](Addr k, const uint64_t &v) {
        ++visited;
        const auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(v, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

} // namespace
} // namespace dvr
