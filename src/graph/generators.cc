#include "graph/generators.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace dvr {

EdgeList
rmatEdges(unsigned scale, unsigned edge_factor, const RmatParams &p,
          uint64_t seed)
{
    panicIf(scale == 0 || scale > 28, "rmatEdges: bad scale");
    const uint64_t nodes = 1ULL << scale;
    const uint64_t count = nodes * edge_factor;
    EdgeList edges;
    edges.reserve(count);
    Rng rng(seed);
    for (uint64_t e = 0; e < count; ++e) {
        uint64_t u = 0, v = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.nextDouble();
            u <<= 1;
            v <<= 1;
            if (r < p.a) {
                // top-left quadrant
            } else if (r < p.a + p.b) {
                v |= 1;
            } else if (r < p.a + p.b + p.c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.emplace_back(uint32_t(u), uint32_t(v));
    }
    return edges;
}

EdgeList
uniformEdges(uint64_t nodes, uint64_t num_edges, uint64_t seed)
{
    EdgeList edges;
    edges.reserve(num_edges);
    Rng rng(seed);
    for (uint64_t e = 0; e < num_edges; ++e) {
        edges.emplace_back(uint32_t(rng.nextBelow(nodes)),
                           uint32_t(rng.nextBelow(nodes)));
    }
    return edges;
}

const std::vector<GraphInputSpec> &
graphInputs()
{
    // Scaled stand-ins for Table 2. Degrees and skew are chosen to
    // mirror the originals' structure: KR and TW are heavily skewed
    // power-law graphs, ORK is dense, LJN moderate, UR uniform with
    // small per-vertex degree (the paper notes UR vertices are
    // uniformly smaller than DVR's 128-edge target).
    static const std::vector<GraphInputSpec> specs = {
        {"KR", 17, 16, true, {0.57, 0.19, 0.19}, 0x4b52},
        {"LJN", 17, 14, true, {0.52, 0.22, 0.22}, 0x4c4a},
        {"ORK", 15, 48, true, {0.50, 0.23, 0.23}, 0x4f52},
        {"TW", 16, 24, true, {0.60, 0.18, 0.18}, 0x5457},
        {"UR", 17, 16, false, {}, 0x5552},
    };
    return specs;
}

const GraphInputSpec &
graphInput(const std::string &name)
{
    for (const auto &s : graphInputs()) {
        if (s.name == name)
            return s;
    }
    fatal("graphInput: unknown input '" + name + "'");
}

uint64_t
inputNodes(const GraphInputSpec &spec, unsigned scale_shift)
{
    const unsigned s =
        spec.scale > scale_shift ? spec.scale - scale_shift : 4;
    return 1ULL << s;
}

EdgeList
makeInputEdges(const GraphInputSpec &spec, unsigned scale_shift)
{
    const unsigned s =
        spec.scale > scale_shift ? spec.scale - scale_shift : 4;
    if (spec.powerLaw)
        return rmatEdges(s, spec.edgeFactor, spec.rmat, spec.seed);
    return uniformEdges(1ULL << s, (1ULL << s) * spec.edgeFactor,
                        spec.seed);
}

} // namespace dvr
