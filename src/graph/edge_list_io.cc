#include "graph/edge_list_io.hh"

#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/log.hh"

namespace dvr {

LoadedEdgeList
readEdgeList(std::istream &in)
{
    LoadedEdgeList out;
    std::unordered_map<uint64_t, uint32_t> remap;
    auto compact = [&](uint64_t raw) -> uint32_t {
        auto [it, fresh] =
            remap.emplace(raw, uint32_t(remap.size()));
        (void)fresh;
        return it->second;
    };

    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments and blank lines.
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#' ||
            line[first] == '%') {
            continue;
        }
        std::istringstream ls(line);
        uint64_t u, v;
        if (!(ls >> u >> v)) {
            fatal("readEdgeList: malformed edge at line " +
                  std::to_string(lineno) + ": '" + line + "'");
        }
        const uint32_t cu = compact(u);
        const uint32_t cv = compact(v);
        out.edges.emplace_back(cu, cv);
    }
    out.numNodes = remap.size();
    return out;
}

LoadedEdgeList
readEdgeListFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal("readEdgeListFile: cannot open '" + path + "'");
    return readEdgeList(f);
}

void
writeEdgeList(std::ostream &out, const EdgeList &edges)
{
    for (const auto &[u, v] : edges)
        out << u << " " << v << "\n";
}

} // namespace dvr
