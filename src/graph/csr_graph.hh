/**
 * @file
 * Compressed-sparse-row graphs living in simulated memory, plus
 * host-side mirrors for golden-model verification.
 */

#ifndef DVR_GRAPH_CSR_GRAPH_HH
#define DVR_GRAPH_CSR_GRAPH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dvr {

class SimMemory;

using EdgeList = std::vector<std::pair<uint32_t, uint32_t>>;

/**
 * A CSR graph: `offsets` (numNodes+1 u64 entries) and `edges`
 * (numEdges u64 node ids) are addresses in simulated memory; the
 * `h*` vectors are host-side mirrors used by golden models.
 */
struct CsrGraph
{
    uint64_t numNodes = 0;
    uint64_t numEdges = 0;
    Addr offsets = 0;
    Addr edges = 0;
    std::vector<uint64_t> hOffsets;
    std::vector<uint64_t> hEdges;

    uint64_t degree(uint64_t v) const
    {
        return hOffsets[v + 1] - hOffsets[v];
    }
    double avgDegree() const
    {
        return numNodes == 0 ? 0.0
                             : double(numEdges) / double(numNodes);
    }
    uint64_t maxDegree() const;
};

/** Build a CSR graph in simulated memory from an edge list. */
CsrGraph buildCsr(SimMemory &mem, uint64_t num_nodes,
                  const EdgeList &edges);

} // namespace dvr

#endif // DVR_GRAPH_CSR_GRAPH_HH
