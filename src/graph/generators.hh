/**
 * @file
 * Synthetic graph generators standing in for the paper's Table 2
 * inputs: RMAT (Kronecker, power-law degree distribution, like the
 * paper's Kron/Twitter/Orkut/LiveJournal graphs) and uniform-random
 * (like Urand). Scaled down from billions of edges to ~1M edges so a
 * laptop-scale simulation still has a working set far beyond the LLC.
 */

#ifndef DVR_GRAPH_GENERATORS_HH
#define DVR_GRAPH_GENERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hh"

namespace dvr {

/** RMAT partition probabilities. */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
};

/** Generate 2^scale-node RMAT edges (Graph500-style). */
EdgeList rmatEdges(unsigned scale, unsigned edge_factor,
                   const RmatParams &p, uint64_t seed);

/** Uniform-random edges over `nodes` vertices. */
EdgeList uniformEdges(uint64_t nodes, uint64_t num_edges,
                      uint64_t seed);

/** The paper's five GAP inputs, as scaled synthetic stand-ins. */
struct GraphInputSpec
{
    std::string name;       ///< KR, LJN, ORK, TW, UR
    unsigned scale;         ///< log2(number of nodes)
    unsigned edgeFactor;
    bool powerLaw;          ///< RMAT (true) vs uniform (false)
    RmatParams rmat;
    uint64_t seed;
};

/** All five inputs (KR, LJN, ORK, TW, UR). */
const std::vector<GraphInputSpec> &graphInputs();

/** Look up a named input; fatal() on an unknown name. */
const GraphInputSpec &graphInput(const std::string &name);

/**
 * Generate the edge list for an input, scaled by `scale_shift` (the
 * node count is divided by 2^scale_shift for quick tests).
 */
EdgeList makeInputEdges(const GraphInputSpec &spec,
                        unsigned scale_shift = 0);

/** Number of nodes for an input at a scale shift. */
uint64_t inputNodes(const GraphInputSpec &spec,
                    unsigned scale_shift = 0);

} // namespace dvr

#endif // DVR_GRAPH_GENERATORS_HH
