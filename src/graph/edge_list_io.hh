/**
 * @file
 * Edge-list file I/O, so users can run the GAP kernels on real graphs
 * (e.g. SNAP data sets) instead of the synthetic Table-2 stand-ins.
 *
 * Format: whitespace-separated "src dst" pairs, one edge per line;
 * lines starting with '#' or '%' are comments (SNAP/Matrix-Market
 * headers). Node ids are compacted to a dense [0, n) range.
 */

#ifndef DVR_GRAPH_EDGE_LIST_IO_HH
#define DVR_GRAPH_EDGE_LIST_IO_HH

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hh"

namespace dvr {

/** A parsed edge list plus its (compacted) node count. */
struct LoadedEdgeList
{
    uint64_t numNodes = 0;
    EdgeList edges;
};

/** Parse an edge-list stream; fatal() on malformed lines. */
LoadedEdgeList readEdgeList(std::istream &in);

/** Parse an edge-list file; fatal() if it cannot be opened. */
LoadedEdgeList readEdgeListFile(const std::string &path);

/** Write an edge list in the same format (round-trip tested). */
void writeEdgeList(std::ostream &out, const EdgeList &edges);

} // namespace dvr

#endif // DVR_GRAPH_EDGE_LIST_IO_HH
