#include "graph/csr_graph.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/sim_memory.hh"

namespace dvr {

uint64_t
CsrGraph::maxDegree() const
{
    uint64_t m = 0;
    for (uint64_t v = 0; v < numNodes; ++v)
        m = std::max(m, degree(v));
    return m;
}

CsrGraph
buildCsr(SimMemory &mem, uint64_t num_nodes, const EdgeList &edges)
{
    CsrGraph g;
    g.numNodes = num_nodes;
    g.numEdges = edges.size();
    g.hOffsets.assign(num_nodes + 1, 0);
    g.hEdges.resize(edges.size());

    for (const auto &[u, v] : edges) {
        panicIf(u >= num_nodes || v >= num_nodes,
                "buildCsr: edge endpoint out of range");
        ++g.hOffsets[u + 1];
    }
    for (uint64_t i = 0; i < num_nodes; ++i)
        g.hOffsets[i + 1] += g.hOffsets[i];

    std::vector<uint64_t> cursor(g.hOffsets.begin(),
                                 g.hOffsets.end() - 1);
    for (const auto &[u, v] : edges)
        g.hEdges[cursor[u]++] = v;

    g.offsets = mem.alloc((num_nodes + 1) * 8);
    g.edges = mem.alloc(std::max<uint64_t>(edges.size(), 1) * 8);
    for (uint64_t i = 0; i <= num_nodes; ++i)
        mem.write64(g.offsets, i, g.hOffsets[i]);
    for (uint64_t i = 0; i < g.hEdges.size(); ++i)
        mem.write64(g.edges, i, g.hEdges[i]);
    return g;
}

} // namespace dvr
