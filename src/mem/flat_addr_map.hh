/**
 * @file
 * Open-addressed hash table keyed by line address, replacing
 * std::unordered_map on simulator paths that probe per DRAM fill
 * (prefetch-lifetime tracking). Linear probing over one contiguous
 * slot array: no per-node allocation, no pointer chasing, and erase
 * uses backward-shift deletion so lookups never scan tombstones.
 *
 * Semantics are exact (unlike the core's lossy direct-mapped
 * store-forwarding table): every record is kept until erased, because
 * the prefetch-timeliness statistics it backs are pinned byte-identical
 * by the golden-stats tests.
 *
 * Keys are line addresses: 64-byte aligned and non-zero (address 0 is
 * unmapped), so ~Addr(0) — not a multiple of 64 — is a safe empty
 * sentinel.
 */

#ifndef DVR_MEM_FLAT_ADDR_MAP_HH
#define DVR_MEM_FLAT_ADDR_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dvr {

template <typename V>
class FlatAddrMap
{
  public:
    static constexpr Addr kEmptyKey = ~Addr(0);

    explicit FlatAddrMap(size_t initial_slots = 1024)
    {
        size_t n = 16;
        while (n < initial_slots)
            n <<= 1;
        slots_.resize(n, Slot{kEmptyKey, V{}});
        mask_ = n - 1;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value for `key`, or null. Stable until the next emplace. */
    const V *find(Addr key) const
    {
        for (size_t i = home(key);; i = (i + 1) & mask_) {
            if (slots_[i].key == key)
                return &slots_[i].value;
            if (slots_[i].key == kEmptyKey)
                return nullptr;
        }
    }

    V *find(Addr key)
    {
        return const_cast<V *>(std::as_const(*this).find(key));
    }

    /**
     * Insert unless present; an existing record is kept untouched
     * (unordered_map::emplace semantics). Returns true on insert.
     */
    bool emplace(Addr key, const V &value)
    {
        if ((size_ + 1) * 4 > slots_.size() * 3)
            grow();
        for (size_t i = home(key);; i = (i + 1) & mask_) {
            if (slots_[i].key == key)
                return false;
            if (slots_[i].key == kEmptyKey) {
                slots_[i] = Slot{key, value};
                ++size_;
                return true;
            }
        }
    }

    /** Remove `key`; true when it was present. */
    bool erase(Addr key)
    {
        size_t i = home(key);
        for (;; i = (i + 1) & mask_) {
            if (slots_[i].key == key)
                break;
            if (slots_[i].key == kEmptyKey)
                return false;
        }
        // Backward-shift deletion: pull displaced entries of the
        // probe chain into the hole so no tombstones accumulate.
        size_t hole = i;
        for (size_t j = (hole + 1) & mask_; slots_[j].key != kEmptyKey;
             j = (j + 1) & mask_) {
            const size_t h = home(slots_[j].key);
            // Move j into the hole unless j's home lies cyclically
            // after the hole (then j is already as close as allowed).
            const bool home_after_hole =
                (j > hole) ? (h > hole && h <= j)
                           : (h > hole || h <= j);
            if (!home_after_hole) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole].key = kEmptyKey;
        --size_;
        return true;
    }

    /** Visit every (key, value); iteration order is unspecified. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_) {
            if (s.key != kEmptyKey)
                fn(s.key, s.value);
        }
    }

  private:
    struct Slot
    {
        Addr key;
        V value;
    };

    /** Fibonacci hashing over the line index (low 6 bits are zero). */
    size_t home(Addr key) const
    {
        const uint64_t h =
            (key >> 6) * UINT64_C(0x9E3779B97F4A7C15);
        return size_t(h) & mask_;
    }

    void grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{kEmptyKey, V{}});
        mask_ = slots_.size() - 1;
        size_ = 0;
        for (const Slot &s : old) {
            if (s.key != kEmptyKey)
                emplace(s.key, s.value);
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

} // namespace dvr

#endif // DVR_MEM_FLAT_ADDR_MAP_HH
