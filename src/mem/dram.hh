/**
 * @file
 * DRAM channel model: fixed minimum latency plus a request-based
 * bandwidth contention queue, matching the paper's "50 ns min.
 * latency, 51.2 GB/s bandwidth, request-based contention model".
 */

#ifndef DVR_MEM_DRAM_HH
#define DVR_MEM_DRAM_HH

#include <cstdint>

#include "common/types.hh"

namespace dvr {

/** Who generated a DRAM access; drives the Figure 10 split. */
enum class Requester : uint8_t {
    kMain,      ///< demand access from the main thread
    kRunahead,  ///< runahead subthread / runahead-mode prefetch
    kHwPrefetch,///< stride/IMP/oracle hardware prefetcher
    kWriteback, ///< dirty eviction
};
inline constexpr int kNumRequesters = 4;

class DramModel
{
  public:
    /**
     * @param min_latency cycles from channel issue to data return
     * @param cycles_per_line channel occupancy per 64-byte transfer
     */
    DramModel(Cycle min_latency, Cycle cycles_per_line);

    /**
     * Issue a line transfer wanting to start at `want`.
     * @return the completion cycle (queueing delay + fixed latency).
     */
    Cycle access(Cycle want, Requester who);

    uint64_t accesses(Requester who) const
    {
        return count_[static_cast<int>(who)];
    }
    uint64_t totalAccesses() const;
    Cycle minLatency() const { return minLatency_; }
    double totalQueueDelay() const { return queueDelay_; }

    /**
     * Queueing delay per access. totalQueueDelay() is a raw sum over
     * the whole run; reporting it unnormalized made runs of different
     * lengths incomparable, so figures read this instead.
     */
    double avgQueueDelay() const;

  private:
    Cycle minLatency_;
    Cycle cyclesPerLine_;
    Cycle nextFree_ = 0;
    uint64_t count_[kNumRequesters] = {};
    double queueDelay_ = 0.0;
};

} // namespace dvr

#endif // DVR_MEM_DRAM_HH
