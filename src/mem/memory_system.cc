#include "mem/memory_system.hh"

#include "common/log.hh"
#include "mem/sim_memory.hh"
#include "sim/trace.hh"

namespace dvr {

MemorySystem::MemorySystem(const MemConfig &cfg, const SimMemory &mem)
    : cfg_(cfg), mem_(mem),
      l1_("L1D", cfg.l1Size, cfg.l1Assoc),
      l2_("L2", cfg.l2Size, cfg.l2Assoc),
      l3_("L3", cfg.l3Size, cfg.l3Assoc),
      mshrs_(cfg.mshrs),
      dram_(cfg.dramLat, cfg.dramCyclesPerLine)
{
    if (cfg.stridePrefetcher) {
        stride_ = std::make_unique<StridePrefetcher>(cfg.strideStreams,
                                                     cfg.strideDegree);
    }
    if (cfg.impPrefetcher)
        imp_ = std::make_unique<ImpPrefetcher>(mem, cfg.impDistance);
}

void
MemorySystem::notePrefetchIssued(Addr line_addr, Cycle issue,
                                 Cycle fill_time, Requester who)
{
    // emplace: a re-prefetch of a still-pending line keeps the
    // original record (timeliness is measured from the first issue).
    pendingPf_.emplace(line_addr,
                       PendingPrefetch{issue, fill_time,
                                       clsIndex(who) == kClsHw});
}

void
MemorySystem::noteDemandTouch(Addr line_addr, Cycle observed_latency)
{
    const PendingPrefetch *it = pendingPf_.find(line_addr);
    if (!it)
        return;
    const PendingPrefetch rec = *it;
    pendingPf_.erase(line_addr);
    const int cls = rec.hw ? kClsHw : kClsRa;

    // Legacy runahead-only bands (cumulative level latencies).
    if (cls == kClsRa) {
        if (observed_latency <= cfg_.l1Lat)
            ++raFoundL1;
        else if (observed_latency <= cfg_.l2Lat)
            ++raFoundL2;
        else if (observed_latency <= cfg_.l3Lat)
            ++raFoundL3;
        else
            ++raFoundLate;
    }

    // Figure-11 timeliness classes: compare what the main thread
    // observed against the full off-chip miss latency the prefetch was
    // trying to hide.
    const Cycle full_miss = cfg_.l3Lat + cfg_.dramLat;
    if (observed_latency <= cfg_.l1Lat) {
        ++tlFullyHidden_[cls];
    } else if (observed_latency >= full_miss) {
        ++tlFullLatency_[cls];
    } else {
        ++tlPartial_[cls];
        if (cls == kClsRa) {
            const Cycle hidden = full_miss - observed_latency;
            size_t bucket = static_cast<size_t>(
                (hidden * kHiddenHistBuckets) / full_miss);
            if (bucket >= kHiddenHistBuckets)
                bucket = kHiddenHistBuckets - 1;
            ++raHiddenHist_[bucket];
        }
    }
}

void
MemorySystem::noteL3Eviction(Addr line_addr)
{
    const PendingPrefetch *it = pendingPf_.find(line_addr);
    if (!it)
        return;
    // Still resident closer to the core? Then the lifetime is not
    // over (mostly-inclusive, but L1/L2 can outlive an L3 victim).
    if (l1_.peek(line_addr) || l2_.peek(line_addr))
        return;
    const int cls = it->hw ? kClsHw : kClsRa;
    pendingPf_.erase(line_addr);
    ++tlEvicted_[cls];
}

void
MemorySystem::fill(Addr line_addr, Cycle fill_time, Requester who,
                   bool dirty, Cycle now)
{
    // Fill all three levels (mostly-inclusive hierarchy). Dirty
    // victims propagate downward; a dirty L3 victim costs a DRAM
    // writeback transfer.
    auto v3 = l3_.insert(line_addr, fill_time, who, false);
    if (v3.valid) {
        if (v3.dirty) {
            dram_.access(now, Requester::kWriteback);
            ++writebacks;
        }
        noteL3Eviction(v3.lineAddr);
    }
    auto v2 = l2_.insert(line_addr, fill_time, who, false);
    if (v2.valid && v2.dirty) {
        auto *l = l3_.lookup(v2.lineAddr);
        if (l) {
            l->dirty = true;
        } else {
            auto wb = l3_.insert(v2.lineAddr, now, who, true);
            if (wb.valid) {
                if (wb.dirty) {
                    dram_.access(now, Requester::kWriteback);
                    ++writebacks;
                }
                noteL3Eviction(wb.lineAddr);
            }
        }
    }
    auto v1 = l1_.insert(line_addr, fill_time, who, dirty);
    if (v1.valid && v1.dirty) {
        auto *l = l2_.lookup(v1.lineAddr);
        if (l)
            l->dirty = true;
    }
}

MemAccess
MemorySystem::access(Addr addr, uint32_t bytes, Cycle cycle,
                     bool is_store, Requester who, InstPc pc,
                     uint64_t load_value)
{
    const Addr line = lineAlign(addr);
    const bool main_demand = (who == Requester::kMain);
    if (main_demand)
        ++demandAccesses;

    MemAccess res;

    if (CacheLine *l = l1_.lookup(line)) {
        const bool complete = l->fillTime <= cycle;
        res.level = HitLevel::kL1;
        res.inFlightHit = !complete;
        res.done = (complete ? cycle : l->fillTime) + cfg_.l1Lat;
        if (is_store)
            l->dirty = true;
        if (main_demand) {
            ++demandHitsL1;
            noteDemandTouch(line, res.done - cycle);
            l->demandTouched = true;
        }
    } else if (const CacheLine *l2l = l2_.lookup(line)) {
        const bool complete = l2l->fillTime <= cycle;
        res.level = HitLevel::kL2;
        res.inFlightHit = !complete;
        // An L1 miss holds an MSHR even when it hits in L2/L3.
        const Cycle start =
            mshrs_.acquire(complete ? cycle : l2l->fillTime,
                           who == Requester::kRunahead);
        res.done = start + cfg_.l2Lat;
        mshrs_.commit(start, res.done);
        // Promote into L1.
        l1_.insert(line, res.done, who, is_store);
        if (main_demand) {
            ++demandHitsL2;
            noteDemandTouch(line, res.done - cycle);
        }
    } else if (const CacheLine *l3l = l3_.lookup(line)) {
        const bool complete = l3l->fillTime <= cycle;
        res.level = HitLevel::kL3;
        res.inFlightHit = !complete;
        const Cycle start =
            mshrs_.acquire(complete ? cycle : l3l->fillTime,
                           who == Requester::kRunahead);
        res.done = start + cfg_.l3Lat;
        mshrs_.commit(start, res.done);
        l2_.insert(line, res.done, who, false);
        l1_.insert(line, res.done, who, is_store);
        if (main_demand) {
            ++demandHitsL3;
            noteDemandTouch(line, res.done - cycle);
        }
    } else {
        // Full miss: allocate an MSHR (may delay the request when all
        // 24 are busy), then queue on the DRAM channel.
        res.level = HitLevel::kDram;
        const Cycle mshr_start =
            mshrs_.acquire(cycle, who == Requester::kRunahead);
        if (mshr_start > cycle) {
            Trace::emit(TraceCat::kMshrStall, cycle, pc,
                        mshr_start - cycle, uint64_t(who));
        }
        const Cycle done = dram_.access(mshr_start + cfg_.l3Lat, who);
        mshrs_.commit(mshr_start, done);
        res.done = done;
        fill(line, done, who, is_store, cycle);
        if (main_demand) {
            ++demandDram;
            ++llcMisses;
            noteDemandTouch(line, res.done - cycle);
        }
    }

    if (who == Requester::kRunahead && !is_store &&
        res.level == HitLevel::kDram) {
        notePrefetchIssued(line, cycle, res.done, who);
    }


    // Train the L1-D prefetchers on main-thread demand loads only.
    if (main_demand && !is_store) {
        demandLatSum += double(res.done - cycle);
        pfQueue_.clear();
        if (stride_)
            stride_->train(pc, addr, pfQueue_);
        if (imp_) {
            imp_->observe(pc, addr, load_value, bytes,
                          res.level != HitLevel::kL1, pfQueue_);
        }
        for (Addr p : pfQueue_)
            prefetchLine(p, res.done, Requester::kHwPrefetch);
    }

    return res;
}

Cycle
MemorySystem::prefetchLine(Addr line_addr, Cycle cycle, Requester who,
                           bool best_effort)
{
    line_addr = lineAlign(line_addr);
    if (const CacheLine *l = l1_.peek(line_addr))
        return l->fillTime;

    Cycle done;
    if (const CacheLine *l2l = l2_.lookup(line_addr)) {
        const Cycle start = l2l->fillTime > cycle ? l2l->fillTime : cycle;
        done = start + cfg_.l2Lat;
        l1_.insert(line_addr, done, who, false);
    } else if (const CacheLine *l3l = l3_.lookup(line_addr)) {
        const Cycle start = l3l->fillTime > cycle ? l3l->fillTime : cycle;
        done = start + cfg_.l3Lat;
        l2_.insert(line_addr, done, who, false);
        l1_.insert(line_addr, done, who, false);
    } else {
        // Hardware prefetches are best-effort: dropped when the MSHRs
        // are all busy rather than queueing behind demand misses. The
        // Oracle instead waits for an MSHR (it never loses a line).
        Cycle start = cycle;
        if (best_effort) {
            if (!mshrs_.tryAcquire(cycle))
                return kCycleNever;
        } else {
            start = mshrs_.acquire(cycle);
            if (start > cycle) {
                Trace::emit(TraceCat::kMshrStall, cycle, kInvalidPc,
                            start - cycle, uint64_t(who));
            }
        }
        done = dram_.access(start + cfg_.l3Lat, who);
        mshrs_.commit(start, done);
        fill(line_addr, done, who, false, cycle);
        if (who == Requester::kRunahead || who == Requester::kHwPrefetch)
            notePrefetchIssued(line_addr, cycle, done, who);
    }
    return done;
}

void
MemorySystem::warmTouch(Addr addr, bool is_store)
{
    const Addr line = lineAlign(addr);
    if (CacheLine *l1l = l1_.lookup(line)) {
        if (is_store)
            l1l->dirty = true;
        return;
    }
    // Unlike access()/fill(), warming marks a stored line dirty at
    // EVERY level it inserts into, and drops victim-writeback
    // propagation entirely: a warmed line's outer-level copies
    // already carry its dirty bit, so the propagation would mostly
    // re-set bits that are set. This halves the host cost of a full
    // miss (the dirty-victim L3 probe is a second random access over
    // the multi-MB way arrays) at the price of slightly over-marking
    // L3 lines dirty — a writeback-traffic bias the accuracy bench
    // bounds along with every other warming approximation.
    if (CacheLine *l2l = l2_.lookup(line)) {
        if (is_store)
            l2l->dirty = true;
        l1_.insert(line, 0, Requester::kMain, is_store);
        return;
    }
    if (CacheLine *l3l = l3_.lookup(line)) {
        if (is_store)
            l3l->dirty = true;
    } else {
        l3_.insert(line, 0, Requester::kMain, is_store);
    }
    l2_.insert(line, 0, Requester::kMain, is_store);
    l1_.insert(line, 0, Requester::kMain, is_store);
}

void
MemorySystem::warmTouchBatch(const uint64_t *enc, size_t n)
{
    // The L1 way array is small enough to stay host-resident; the
    // L2/L3 arrays are the ones whose random-set probes miss.
    for (size_t i = 0; i < n; ++i) {
        const Addr line = lineAlign(Addr(enc[i] >> 1));
        l2_.prefetchSet(line);
        l3_.prefetchSet(line);
    }
    for (size_t i = 0; i < n; ++i)
        warmTouch(Addr(enc[i] >> 1), (enc[i] & 1) != 0);
}

bool
MemorySystem::present(Addr line_addr) const
{
    line_addr = lineAlign(line_addr);
    return l1_.peek(line_addr) || l2_.peek(line_addr) ||
           l3_.peek(line_addr);
}

StatSet
MemorySystem::stats() const
{
    StatSet s;
    s.set("demand_accesses", double(demandAccesses));
    s.set("demand_lat_sum", demandLatSum);
    s.set("demand_hits_l1", double(demandHitsL1));
    s.set("demand_hits_l2", double(demandHitsL2));
    s.set("demand_hits_l3", double(demandHitsL3));
    s.set("demand_dram", double(demandDram));
    s.set("llc_misses", double(llcMisses));
    s.set("writebacks", double(writebacks));
    s.set("dram_main", double(dram_.accesses(Requester::kMain)));
    s.set("dram_runahead", double(dram_.accesses(Requester::kRunahead)));
    s.set("dram_hw_prefetch",
          double(dram_.accesses(Requester::kHwPrefetch)));
    s.set("dram_writeback",
          double(dram_.accesses(Requester::kWriteback)));
    s.set("dram_total", double(dram_.totalAccesses()));
    s.set("dram_queue_delay_total", dram_.totalQueueDelay());
    s.set("dram_queue_delay_avg", dram_.avgQueueDelay());
    s.set("ra_found_l1", double(raFoundL1));
    s.set("ra_found_l2", double(raFoundL2));
    s.set("ra_found_l3", double(raFoundL3));
    s.set("ra_found_late", double(raFoundLate));
    // Pending records that were never demand-touched, split by class.
    uint64_t useless[2] = {};
    pendingPf_.forEach([&](Addr, const PendingPrefetch &rec) {
        ++useless[rec.hw ? kClsHw : kClsRa];
    });
    // ra_unused keeps its historical meaning: every runahead-prefetched
    // line never used by the main thread, whether still resident or
    // already evicted.
    s.set("ra_unused", double(useless[kClsRa] + tlEvicted_[kClsRa]));
    s.set("timeliness.ra_fully_hidden", double(tlFullyHidden_[kClsRa]));
    s.set("timeliness.ra_partial", double(tlPartial_[kClsRa]));
    s.set("timeliness.ra_full_latency", double(tlFullLatency_[kClsRa]));
    s.set("timeliness.ra_evicted", double(tlEvicted_[kClsRa]));
    s.set("timeliness.ra_useless", double(useless[kClsRa]));
    s.set("timeliness.hw_fully_hidden", double(tlFullyHidden_[kClsHw]));
    s.set("timeliness.hw_partial", double(tlPartial_[kClsHw]));
    s.set("timeliness.hw_full_latency", double(tlFullLatency_[kClsHw]));
    s.set("timeliness.hw_evicted", double(tlEvicted_[kClsHw]));
    s.set("timeliness.hw_useless", double(useless[kClsHw]));
    for (size_t i = 0; i < kHiddenHistBuckets; ++i) {
        s.set("timeliness.ra_hidden_hist_" + std::to_string(i),
              double(raHiddenHist_[i]));
    }
    s.set("mshr_acquires", double(mshrs_.acquires()));
    s.set("mshr_prefetch_drops", double(mshrs_.prefetchDrops()));
    if (stride_)
        s.set("stride_pf_issued", double(stride_->issued()));
    if (imp_) {
        s.set("imp_pf_issued", double(imp_->issued()));
        s.set("imp_patterns", double(imp_->patternsLearned()));
    }
    return s;
}

} // namespace dvr
