/**
 * @file
 * Hardware stride prefetcher at the L1-D level (16 streams), always
 * enabled per the paper's baseline. Trains on demand loads and asks
 * the memory system to prefetch ahead on confident streams.
 */

#ifndef DVR_MEM_STRIDE_PREFETCHER_HH
#define DVR_MEM_STRIDE_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dvr {

class StridePrefetcher
{
  public:
    /**
     * @param streams number of concurrently tracked streams (16)
     * @param degree  lines prefetched ahead per confident access
     */
    StridePrefetcher(unsigned streams, unsigned degree);

    /**
     * Train on a demand load and collect prefetch candidates.
     * @param pc static PC of the load
     * @param addr byte address accessed
     * @param out line-aligned prefetch addresses are appended here
     */
    void train(InstPc pc, Addr addr, std::vector<Addr> &out);

    uint64_t issued() const { return issued_; }

  private:
    struct Stream
    {
        InstPc pc = kInvalidPc;
        Addr lastAddr = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;     // 2-bit saturating
        Addr lastPrefetched = 0;    // furthest line already requested
        uint64_t lruStamp = 0;
    };

    std::vector<Stream> streams_;
    unsigned degree_;
    uint64_t nextStamp_ = 1;
    uint64_t issued_ = 0;
};

} // namespace dvr

#endif // DVR_MEM_STRIDE_PREFETCHER_HH
