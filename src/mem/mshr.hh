/**
 * @file
 * Miss-status-holding-register occupancy model. Limits the number of
 * concurrently outstanding L1-D misses and integrates occupancy over
 * time so the MLP figure (MSHRs used per cycle on average) can be
 * reported directly.
 */

#ifndef DVR_MEM_MSHR_HH
#define DVR_MEM_MSHR_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace dvr {

/**
 * Tracks outstanding miss intervals as a two-phase reservation:
 * acquire() (or tryAcquire()) reserves the register and finds the
 * earliest cycle at or after the requested start at which an MSHR is
 * free; commit() records the miss interval and releases the
 * reservation. Release of the register itself happens implicitly when
 * the committed interval ends. Every successful acquire/tryAcquire
 * must be paired with exactly one commit() before the next
 * reservation; an unbalanced sequence panics instead of silently
 * freeing an in-flight MSHR.
 */
class MshrTracker
{
  public:
    explicit MshrTracker(unsigned capacity);

    /**
     * Reserve an MSHR for a miss wanting to start at `want`.
     * @param low_priority runahead/prefetch requests leave a few
     *        MSHRs free for demand misses (the main thread has
     *        priority on shared resources).
     * @return the actual start cycle (>= want; delayed when all MSHRs
     *         are busy at `want`).
     * The caller must then call commit() with the completion time.
     */
    Cycle acquire(Cycle want, bool low_priority = false);

    /** MSHRs kept free for demand when low-priority requests queue. */
    static constexpr unsigned kDemandReserve = 4;

    /** Record the completion time of the most recent acquire(). */
    void commit(Cycle start, Cycle end);

    /**
     * Best-effort reservation for hardware prefetches: returns false
     * (drop the prefetch) instead of delaying when no MSHR is free.
     * Prefetches are low-priority by default and honor the same
     * kDemandReserve cap as queued low-priority acquire()s.
     */
    bool tryAcquire(Cycle want, bool low_priority = true);

    unsigned capacity() const { return capacity_; }

    /** Reservations acquired but not yet committed (0 or 1). */
    unsigned pendingReservations() const { return pending_; }

    /** Sum over all miss intervals of their length, in cycles. */
    double busyIntegral() const { return busyIntegral_; }

    /** Average occupancy given the total elapsed cycles. */
    double avgOccupancy(Cycle total) const;

    uint64_t acquires() const { return acquires_; }
    uint64_t prefetchDrops() const { return prefetchDrops_; }

  private:
    /** Drop intervals that have completed by `now`. */
    void expire(Cycle now);

    /** One reservation policy for both acquire paths. */
    unsigned effectiveCap(bool low_priority) const;

    unsigned capacity_;
    /** Open reservations awaiting commit(); the model issues one miss
     *  at a time, so anything but 0/1 is a caller bug. */
    unsigned pending_ = 0;
    /** Min-heap of end cycles of in-flight misses. */
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>> ends_;
    double busyIntegral_ = 0.0;
    uint64_t acquires_ = 0;
    uint64_t prefetchDrops_ = 0;
};

} // namespace dvr

#endif // DVR_MEM_MSHR_HH
