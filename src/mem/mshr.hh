/**
 * @file
 * Miss-status-holding-register occupancy model. Limits the number of
 * concurrently outstanding L1-D misses and integrates occupancy over
 * time so the MLP figure (MSHRs used per cycle on average) can be
 * reported directly.
 */

#ifndef DVR_MEM_MSHR_HH
#define DVR_MEM_MSHR_HH

#include <algorithm>
#include <cstdint>

#include "common/log.hh"
#include "common/types.hh"

namespace dvr {

/**
 * Tracks outstanding miss intervals as a two-phase reservation:
 * acquire() (or tryAcquire()) reserves the register and finds the
 * earliest cycle at or after the requested start at which an MSHR is
 * free; commit() records the miss interval and releases the
 * reservation. Release of the register itself happens implicitly when
 * the committed interval ends. Every successful acquire/tryAcquire
 * must be paired with exactly one commit() before the next
 * reservation; an unbalanced sequence panics instead of silently
 * freeing an in-flight MSHR.
 */
class MshrTracker
{
  public:
    explicit MshrTracker(unsigned capacity);

    /**
     * Reserve an MSHR for a miss wanting to start at `want`.
     * @param low_priority runahead/prefetch requests leave a few
     *        MSHRs free for demand misses (the main thread has
     *        priority on shared resources).
     * @return the actual start cycle (>= want; delayed when all MSHRs
     *         are busy at `want`).
     * The caller must then call commit() with the completion time.
     * Inline (with the heap helpers below): the reservation dance runs
     * once per cache miss, millions of times per sweep point.
     */
    Cycle
    acquire(Cycle want, bool low_priority = false)
    {
        panicIf(pending_ != 0,
                "MshrTracker: acquire with an uncommitted reservation "
                "(acquire/commit must balance)");
        expire(want);
        const unsigned cap = effectiveCap(low_priority);
        Cycle start = want;
        while (size_ + pending_ >= cap) {
            // MSHRs busy: wait for the earliest outstanding miss to
            // complete. Requests can arrive slightly out of time order
            // in the dependence-based model, so this is an
            // approximation of a strict per-cycle allocator. Each
            // popped entry ends at or before the final start, so it is
            // expired — not leaked — by the time the reservation
            // begins.
            start = std::max(start, ends_[0]);
            popEnd();
        }
        ++acquires_;
        ++pending_;
        return start;
    }

    /** MSHRs kept free for demand when low-priority requests queue. */
    static constexpr unsigned kDemandReserve = 4;

    /** Record the completion time of the most recent acquire(). */
    void
    commit(Cycle start, Cycle end)
    {
        panicIf(end < start, "MshrTracker: negative interval");
        panicIf(pending_ == 0,
                "MshrTracker: commit without a matching acquire");
        --pending_;
        pushEnd(end);
        busyIntegral_ += static_cast<double>(end - start);
    }

    /**
     * Best-effort reservation for hardware prefetches: returns false
     * (drop the prefetch) instead of delaying when no MSHR is free.
     * Prefetches are low-priority by default and honor the same
     * kDemandReserve cap as queued low-priority acquire()s.
     */
    bool
    tryAcquire(Cycle want, bool low_priority = true)
    {
        panicIf(pending_ != 0,
                "MshrTracker: tryAcquire with an uncommitted "
                "reservation (acquire/commit must balance)");
        expire(want);
        if (size_ + pending_ >= effectiveCap(low_priority)) {
            ++prefetchDrops_;
            return false;
        }
        ++acquires_;
        ++pending_;
        return true;
    }

    unsigned capacity() const { return capacity_; }

    /** Reservations acquired but not yet committed (0 or 1). */
    unsigned pendingReservations() const { return pending_; }

    /** Sum over all miss intervals of their length, in cycles. */
    double busyIntegral() const { return busyIntegral_; }

    /** Average occupancy given the total elapsed cycles. */
    double avgOccupancy(Cycle total) const;

    uint64_t acquires() const { return acquires_; }
    uint64_t prefetchDrops() const { return prefetchDrops_; }

  private:
    /** Drop intervals that have completed by `now`. */
    void
    expire(Cycle now)
    {
        while (size_ != 0 && ends_[0] <= now)
            popEnd();
    }

    /** One reservation policy for both acquire paths. */
    unsigned
    effectiveCap(bool low_priority) const
    {
        return low_priority && capacity_ > kDemandReserve
                   ? capacity_ - kDemandReserve
                   : capacity_;
    }

    /** Binary min-heap ops over ends_ (replaces std::priority_queue). */
    void
    pushEnd(Cycle end)
    {
        panicIf(size_ >= capacity_,
                "MshrTracker: more in-flight misses than MSHRs");
        unsigned i = size_++;
        while (i > 0) {
            const unsigned p = (i - 1) / 2;
            if (ends_[p] <= end)
                break;
            ends_[i] = ends_[p];
            i = p;
        }
        ends_[i] = end;
    }

    void
    popEnd()
    {
        const Cycle last = ends_[--size_];
        unsigned i = 0;
        while (true) {
            unsigned c = 2 * i + 1;
            if (c >= size_)
                break;
            if (c + 1 < size_ && ends_[c + 1] < ends_[c])
                ++c;
            if (ends_[c] >= last)
                break;
            ends_[i] = ends_[c];
            i = c;
        }
        ends_[i] = last;
    }

    unsigned capacity_;
    /** Open reservations awaiting commit(); the model issues one miss
     *  at a time, so anything but 0/1 is a caller bug. */
    unsigned pending_ = 0;
    /**
     * Min-heap of end cycles of in-flight misses, in a fixed arena
     * array: in-flight misses can never exceed capacity_ (acquire
     * drains below the cap before commit pushes), so the heap needs no
     * growth path — and no heap allocation per run.
     */
    Cycle *ends_;
    unsigned size_ = 0;
    double busyIntegral_ = 0.0;
    uint64_t acquires_ = 0;
    uint64_t prefetchDrops_ = 0;
};

} // namespace dvr

#endif // DVR_MEM_MSHR_HH
