/**
 * @file
 * Paged, copy-on-write functional memory backing the simulated
 * workloads, with a bump allocator for data-set construction and
 * bounds-checked access so speculative (runahead) lanes can fault
 * cleanly.
 *
 * The backing store is an array of refcounted pages. Copying a
 * SimMemory copies page *pointers*, not bytes: all copies share every
 * page until one of them writes, and the first write to a shared page
 * clones just that page (copy-on-write). Untouched address space is
 * backed by a single immutable all-zero page, so even a freshly
 * constructed multi-hundred-MB image costs only a pointer table.
 *
 * This makes the per-run `SimMemory mem = pristine;` in the simulator
 * O(pages) pointer work instead of an O(bytes) memcpy, and lets every
 * concurrent runner job share the read-mostly data set byte-for-byte.
 * Sharing is safe across threads: each run mutates only its own page
 * table, and a page is written in place only when its refcount proves
 * the writer is the sole owner.
 */

#ifndef DVR_MEM_SIM_MEMORY_HH
#define DVR_MEM_SIM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dvr {

/** Copy-on-write page granule. 512 B keeps first-write clone traffic
 *  proportional to a run's true dirty footprint even for sparse
 *  random-update kernels (an 8-byte store clones 512 bytes, not
 *  4 KiB) at ~16 B of page-table per granule; accesses are at most
 *  8 bytes so an access spans at most two pages. */
inline constexpr size_t kPageShift = 9;
inline constexpr size_t kPageBytes = size_t(1) << kPageShift;
inline constexpr Addr kPageOffsetMask = Addr(kPageBytes - 1);

/**
 * Process-wide copy-on-write accounting (relaxed atomics internally;
 * read via SimMemory::cowStats). BenchReport snapshots this at
 * construction and reports the delta, so BENCH_*.json shows how much
 * memory-image copy traffic the paged representation avoided.
 */
struct CowMemStats
{
    /** SimMemory copy-constructions/assignments (one per run). */
    uint64_t imageCopies = 0;
    /** Live bytes shared instead of copied (what a flat copy costs). */
    uint64_t bytesAvoided = 0;
    /** Pages shared by reference across those copies. */
    uint64_t pagesShared = 0;
    /** First-write clones of image data in copied images: the bytes a
     *  run actually copies out of the shared image (per-run traffic). */
    uint64_t pagesCloned = 0;
    uint64_t bytesCloned = 0;
    /** Fresh zeroed pages created in place of the shared zero page
     *  (no image bytes copied), plus data-set-build clones in origin
     *  images. */
    uint64_t pagesMaterialized = 0;

    /** Delta against an earlier snapshot of the same counters. */
    CowMemStats since(const CowMemStats &base) const
    {
        return {imageCopies - base.imageCopies,
                bytesAvoided - base.bytesAvoided,
                pagesShared - base.pagesShared,
                pagesCloned - base.pagesCloned,
                bytesCloned - base.bytesCloned,
                pagesMaterialized - base.pagesMaterialized};
    }
};

/**
 * Byte-addressable functional memory. Address 0 is kept unmapped so a
 * null-ish pointer always faults; allocations start at 64 bytes.
 */
class SimMemory
{
    // Page types lead the class so the public FastMem view below can
    // name them.
    struct Page
    {
        uint8_t bytes[kPageBytes];
    };
    using PagePtr = std::shared_ptr<Page>;

  public:
    explicit SimMemory(size_t bytes);

    SimMemory(const SimMemory &o);
    SimMemory &operator=(const SimMemory &o);
    SimMemory(SimMemory &&) = default;
    SimMemory &operator=(SimMemory &&) = default;

    /** Bump-allocate a region; alignment must be a power of two. */
    Addr alloc(size_t bytes, size_t align = kLineBytes);

    /** True when [a, a+n) is inside an allocated region. */
    bool validRange(Addr a, uint32_t n) const
    {
        return a >= kLineBytes && a + n <= brk_ && a + n >= a;
    }

    // read/tryRead/write are defined inline: they are the inner loop
    // of both the functional interpreters (sim/functional_core.hh) and
    // the detailed core's memory ops, and the out-of-line call cost
    // dominated the access itself. Only the page-straddling and
    // page-cloning slow paths stay out of line.

    /**
     * Read `bytes` (1/4/8) zero-extended. Panics on invalid access:
     * the architectural path must never fault.
     */
    uint64_t read(Addr a, uint32_t bytes) const
    {
        panicIf(!validRange(a, bytes), "SimMemory: invalid demand read");
        const Addr off = a & kPageOffsetMask;
        if (off + bytes > kPageBytes)
            return readSplit(a, bytes);
        uint64_t v = 0;
        std::memcpy(&v, raw_[a >> kPageShift] + off, bytes);
        return v;
    }

    /**
     * Speculative read for runahead lanes: returns false instead of
     * panicking when the range is invalid.
     */
    bool tryRead(Addr a, uint32_t bytes, uint64_t &out) const
    {
        if (!validRange(a, bytes))
            return false;
        const Addr off = a & kPageOffsetMask;
        if (off + bytes > kPageBytes) {
            out = readSplit(a, bytes);
            return true;
        }
        out = 0;
        std::memcpy(&out, raw_[a >> kPageShift] + off, bytes);
        return true;
    }

    /** Write `bytes` (1/4/8) of v, cloning a shared page first. */
    void write(Addr a, uint32_t bytes, uint64_t v)
    {
        panicIf(!validRange(a, bytes), "SimMemory: invalid write");
        const Addr off = a & kPageOffsetMask;
        if (off + bytes > kPageBytes) {
            writeSplit(a, bytes, v);
            return;
        }
        const size_t idx = size_t(a >> kPageShift);
        ensureOwned(idx);
        std::memcpy(raw_[idx] + off, &v, bytes);
    }

    // Convenience element accessors used by data-set builders and
    // golden models.
    uint64_t read64(Addr base, uint64_t idx) const;
    void write64(Addr base, uint64_t idx, uint64_t v);
    uint32_t read32(Addr base, uint64_t idx) const;
    void write32(Addr base, uint64_t idx, uint32_t v);

    size_t capacity() const { return capacity_; }
    Addr brk() const { return brk_; }

    /** Pages backing the allocated (live) address range. */
    size_t livePages() const
    {
        return size_t((brk_ + kPageBytes - 1) >> kPageShift);
    }

    /**
     * Shrink the backing store to the allocated size. Called once a
     * data set is fully built so per-run views only carry live pages;
     * further alloc() calls fail after compaction.
     */
    void compact();

    /**
     * Borrowed fast-access view for interpreter inner loops (the
     * functional core executes one access per memory instruction, and
     * at that rate member reloads dominate). Because accesses go
     * through `uint8_t *`, which may alias anything, the compiler must
     * reload the page-table data pointer and the allocation bound from
     * the SimMemory after every store; FastMem caches both in locals
     * for the lifetime of the view. This is sound because neither
     * moves during execution: the page vectors never resize after
     * construction (clonePage swaps an entry in place) and brk_ only
     * changes in alloc(), which cannot run concurrently with a view.
     * Writes still delegate page cloning to the owner, so CoW
     * semantics are identical to SimMemory::write.
     */
    class FastMem
    {
      public:
        explicit FastMem(SimMemory &m)
            : m_(&m), raw_(m.raw_.data()), pages_(m.pages_.data()),
              brk_(m.brk_)
        {
        }

        uint64_t read(Addr a, uint32_t bytes) const
        {
            panicIf(!valid(a, bytes), "SimMemory: invalid demand read");
            const Addr off = a & kPageOffsetMask;
            if (off + bytes > kPageBytes)
                return m_->readSplit(a, bytes);
            uint64_t v = 0;
            std::memcpy(&v, raw_[a >> kPageShift] + off, bytes);
            return v;
        }

        void write(Addr a, uint32_t bytes, uint64_t v)
        {
            panicIf(!valid(a, bytes), "SimMemory: invalid write");
            const Addr off = a & kPageOffsetMask;
            if (off + bytes > kPageBytes) {
                m_->writeSplit(a, bytes, v);
                return;
            }
            const size_t idx = size_t(a >> kPageShift);
            if (pages_[idx].use_count() != 1)
                m_->clonePage(idx);
            std::memcpy(raw_[idx] + off, &v, bytes);
        }

      private:
        bool valid(Addr a, uint32_t n) const
        {
            return a >= kLineBytes && a + n <= brk_ && a + n >= a;
        }

        SimMemory *m_;
        uint8_t *const *raw_;
        const PagePtr *pages_;
        Addr brk_;
    };

    /** Pages this image shares by reference with `o` (tests/stats). */
    size_t pagesSharedWith(const SimMemory &o) const;

    /** Byte-for-byte equality over the live range (tests). */
    bool sameContent(const SimMemory &o) const;

    /** Snapshot of the process-wide CoW accounting. */
    static CowMemStats cowStats();

  private:
    /** The immutable all-zero page backing untouched address space. */
    static const PagePtr &zeroPage();

    /** Make page `idx` exclusively owned (clone if shared). */
    void ensureOwned(size_t idx)
    {
        // use_count() == 1 proves exclusive ownership: every other
        // holder would keep the count above 1, and no other thread can
        // gain a reference except by copying this image (which this
        // thread owns). Zero-backed pages are null (use_count() == 0)
        // and take the clone path like any shared page. Repeat writes
        // to an owned page take this inline fast path; the first write
        // clones out of line.
        if (pages_[idx].use_count() != 1)
            clonePage(idx);
    }

    /** Clone/materialize slow path of ensureOwned. */
    void clonePage(size_t idx);

    /** Two-page slow paths for accesses straddling a page boundary. */
    uint64_t readSplit(Addr a, uint32_t bytes) const;
    void writeSplit(Addr a, uint32_t bytes, uint64_t v);

    /** Owning refs; null = zero-backed (reads come from zeroPage). */
    std::vector<PagePtr> pages_;
    /** Byte storage per page, cached so reads skip the control block. */
    std::vector<uint8_t *> raw_;
    Addr brk_;
    size_t capacity_;
    /** True for copies: their clones are per-run CoW traffic. */
    bool derived_ = false;
};

} // namespace dvr

#endif // DVR_MEM_SIM_MEMORY_HH
