/**
 * @file
 * Flat functional memory backing the simulated workloads, with a bump
 * allocator for data-set construction and bounds-checked access so
 * speculative (runahead) lanes can fault cleanly.
 */

#ifndef DVR_MEM_SIM_MEMORY_HH
#define DVR_MEM_SIM_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dvr {

/**
 * Byte-addressable functional memory. Address 0 is kept unmapped so a
 * null-ish pointer always faults; allocations start at 64 bytes.
 */
class SimMemory
{
  public:
    explicit SimMemory(size_t bytes);

    /** Bump-allocate a region; alignment must be a power of two. */
    Addr alloc(size_t bytes, size_t align = kLineBytes);

    /** True when [a, a+n) is inside an allocated region. */
    bool validRange(Addr a, uint32_t n) const;

    /**
     * Read `bytes` (1/4/8) zero-extended. Panics on invalid access:
     * the architectural path must never fault.
     */
    uint64_t read(Addr a, uint32_t bytes) const;

    /**
     * Speculative read for runahead lanes: returns false instead of
     * panicking when the range is invalid.
     */
    bool tryRead(Addr a, uint32_t bytes, uint64_t &out) const;

    /** Write `bytes` (1/4/8) of v. */
    void write(Addr a, uint32_t bytes, uint64_t v);

    // Convenience element accessors used by data-set builders and
    // golden models.
    uint64_t read64(Addr base, uint64_t idx) const;
    void write64(Addr base, uint64_t idx, uint64_t v);
    uint32_t read32(Addr base, uint64_t idx) const;
    void write32(Addr base, uint64_t idx, uint32_t v);

    size_t capacity() const { return data_.size(); }
    Addr brk() const { return brk_; }

    /**
     * Shrink the backing store to the allocated size. Called once a
     * data set is fully built so per-run pristine copies only touch
     * live bytes; further alloc() calls fail after compaction.
     */
    void compact();

  private:
    std::vector<uint8_t> data_;
    Addr brk_;
};

} // namespace dvr

#endif // DVR_MEM_SIM_MEMORY_HH
