/**
 * @file
 * Set-associative cache with LRU replacement and time-aware lines.
 * Lines carry their fill time so a prefetch issued by a runahead
 * episode becomes a full hit, a partial (in-flight) hit, or a miss for
 * the main thread depending on when the main thread arrives.
 *
 * Storage is struct-of-arrays on the per-thread arena: the way scan —
 * the per-access hot loop — walks a dense array of 8-byte tags (one
 * host line covers 8 ways), and the per-line metadata is only touched
 * on a hit. An invalid way is encoded as the reserved tag ~0, so the
 * scan is a single compare per way with no separate valid bit.
 */

#ifndef DVR_MEM_CACHE_HH
#define DVR_MEM_CACHE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "mem/dram.hh"

namespace dvr {

/**
 * Per-line metadata, returned by lookup/peek on a hit. The identity
 * (tag) and validity live in the cache's tag array, not here; the
 * all-zero state is the valid empty state (Requester::kMain == 0),
 * which lets the arena hand back zeroed storage byte-identical to the
 * old value-initialized representation.
 */
struct CacheLine
{
    Cycle fillTime = 0;
    uint64_t lruStamp = 0;
    bool dirty = false;
    /** Who brought the line in (demand, runahead, hw prefetch). */
    Requester filledBy = Requester::kMain;
    /** Set on the first demand touch after a prefetch fill. */
    bool demandTouched = false;
};

class Cache
{
  public:
    /** What insert() displaced, for writebacks and stats. */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    Cache(std::string name, uint32_t size_bytes, uint32_t assoc);

    // lookup/peek/insert are the memory system's per-access hot loop
    // (tens of millions of calls per sweep point across three levels),
    // so they are defined inline below the class.

    /** Find a line and update LRU; nullptr on miss. */
    CacheLine *lookup(Addr line_addr);

    /** Find a line without touching LRU state. */
    const CacheLine *peek(Addr line_addr) const;

    /**
     * Prefetch the line's set (tag row plus metadata row) into the
     * host cache. Functional warming (MemorySystem::warmTouchBatch)
     * issues these for a whole batch of touches before probing any of
     * them, so the host misses on the set arrays overlap instead of
     * serializing. No simulated-state effect.
     */
    void prefetchSet(Addr line_addr) const;

    /** Insert (or overwrite) a line; returns the victim if any. */
    Victim insert(Addr line_addr, Cycle fill_time, Requester who,
                  bool dirty);

    /** Drop a line if present (used by eviction propagation). */
    void invalidate(Addr line_addr);

    uint32_t numSets() const { return numSets_; }
    uint32_t assoc() const { return assoc_; }
    const std::string &name() const { return name_; }

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    static constexpr Addr kInvalidTag = ~Addr(0);

    uint32_t
    setIndex(Addr line_addr) const
    {
        return static_cast<uint32_t>((line_addr / kLineBytes) &
                                     (numSets_ - 1));
    }

    std::string name_;
    uint32_t assoc_;
    uint32_t numSets_;
    uint64_t nextStamp_ = 1;
    // numSets_ * assoc_ each, set-major, arena-backed.
    Addr *tags_;        ///< line address per way; kInvalidTag = empty
    CacheLine *meta_;   ///< parallel metadata, touched on hits only
};

inline CacheLine *
Cache::lookup(Addr line_addr)
{
    const size_t base = static_cast<size_t>(setIndex(line_addr)) * assoc_;
    const Addr *tags = tags_ + base;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (tags[w] == line_addr) {
            CacheLine &l = meta_[base + w];
            l.lruStamp = nextStamp_++;
            ++hits;
            return &l;
        }
    }
    ++misses;
    return nullptr;
}

inline const CacheLine *
Cache::peek(Addr line_addr) const
{
    const size_t base = static_cast<size_t>(setIndex(line_addr)) * assoc_;
    const Addr *tags = tags_ + base;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (tags[w] == line_addr)
            return &meta_[base + w];
    }
    return nullptr;
}

inline Cache::Victim
Cache::insert(Addr line_addr, Cycle fill_time, Requester who, bool dirty)
{
    const size_t base = static_cast<size_t>(setIndex(line_addr)) * assoc_;
    Addr *tags = tags_ + base;

    // One pass finds the re-fill way, the first invalid way, and the
    // LRU way (earliest index on stamp ties, matching the old
    // three-scan selection exactly).
    uint32_t way = assoc_;
    uint32_t invalid_way = assoc_;
    uint32_t lru_way = 0;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (tags[w] == line_addr) {
            way = w;
            break;
        }
        if (invalid_way == assoc_ && tags[w] == kInvalidTag)
            invalid_way = w;
        if (meta_[base + w].lruStamp < meta_[base + lru_way].lruStamp)
            lru_way = w;
    }
    const bool refill = way != assoc_;

    Victim victim;
    if (!refill) {
        // Prefer an invalid way; otherwise evict the LRU way.
        if (invalid_way != assoc_) {
            way = invalid_way;
        } else {
            way = lru_way;
            victim.valid = true;
            victim.lineAddr = tags[way];
            victim.dirty = meta_[base + way].dirty;
        }
    }

    CacheLine &l = meta_[base + way];
    tags[way] = line_addr;
    l.fillTime = fill_time;
    l.lruStamp = nextStamp_++;
    l.dirty = refill ? (l.dirty || dirty) : dirty;
    l.filledBy = who;
    l.demandTouched = (who == Requester::kMain);
    return victim;
}

} // namespace dvr

#endif // DVR_MEM_CACHE_HH
