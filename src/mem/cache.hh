/**
 * @file
 * Set-associative cache with LRU replacement and time-aware lines.
 * Lines carry their fill time so a prefetch issued by a runahead
 * episode becomes a full hit, a partial (in-flight) hit, or a miss for
 * the main thread depending on when the main thread arrives.
 */

#ifndef DVR_MEM_CACHE_HH
#define DVR_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/dram.hh"

namespace dvr {

struct CacheLine
{
    Addr lineAddr = 0;
    Cycle fillTime = 0;
    uint64_t lruStamp = 0;
    bool valid = false;
    bool dirty = false;
    /** Who brought the line in (demand, runahead, hw prefetch). */
    Requester filledBy = Requester::kMain;
    /** Set on the first demand touch after a prefetch fill. */
    bool demandTouched = false;
};

class Cache
{
  public:
    /** What insert() displaced, for writebacks and stats. */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        bool dirty = false;
    };

    Cache(std::string name, uint32_t size_bytes, uint32_t assoc);

    /** Find a line and update LRU; nullptr on miss. */
    CacheLine *lookup(Addr line_addr);

    /** Find a line without touching LRU state. */
    const CacheLine *peek(Addr line_addr) const;

    /**
     * Prefetch the line's set (the way array) into the host cache.
     * Functional warming (MemorySystem::warmTouchBatch) issues these
     * for a whole batch of touches before probing any of them, so the
     * host misses on the set arrays overlap instead of serializing.
     * No simulated-state effect.
     */
    void prefetchSet(Addr line_addr) const;

    /** Insert (or overwrite) a line; returns the victim if any. */
    Victim insert(Addr line_addr, Cycle fill_time, Requester who,
                  bool dirty);

    /** Drop a line if present (used by eviction propagation). */
    void invalidate(Addr line_addr);

    uint32_t numSets() const { return numSets_; }
    uint32_t assoc() const { return assoc_; }
    const std::string &name() const { return name_; }

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    uint32_t setIndex(Addr line_addr) const;

    std::string name_;
    uint32_t assoc_;
    uint32_t numSets_;
    uint64_t nextStamp_ = 1;
    std::vector<CacheLine> lines_;  // numSets_ * assoc_, set-major
};

} // namespace dvr

#endif // DVR_MEM_CACHE_HH
