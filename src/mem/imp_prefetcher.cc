#include "mem/imp_prefetcher.hh"

#include "mem/sim_memory.hh"

namespace dvr {

ImpPrefetcher::ImpPrefetcher(const SimMemory &mem, unsigned distance)
    : mem_(mem), distance_(distance),
      streams_(kNumStreams), patterns_(kNumPatterns)
{
}

ImpPrefetcher::IndexStream *
ImpPrefetcher::findStream(InstPc pc)
{
    for (auto &s : streams_) {
        if (s.pc == pc)
            return &s;
    }
    return nullptr;
}

void
ImpPrefetcher::observe(InstPc pc, Addr addr, uint64_t value,
                       uint32_t bytes, bool missed,
                       std::vector<Addr> &out)
{
    IndexStream *s = findStream(pc);
    if (s) {
        // Train the stride of this (potential) index stream.
        const int64_t delta = static_cast<int64_t>(addr) -
                              static_cast<int64_t>(s->lastAddr);
        if (delta != 0) {
            if (delta == s->stride) {
                if (s->confidence < 3)
                    ++s->confidence;
            } else {
                s->stride = delta;
                s->confidence = 0;
            }
            s->lastAddr = addr;
        }
        s->bytes = bytes;
        s->lastValue = value;
        s->hasValue = true;
    } else {
        // Track unseen PCs: replace the least-confident entry.
        IndexStream *victim = &streams_[0];
        for (auto &st : streams_) {
            if (st.pc == kInvalidPc) {
                victim = &st;
                break;
            }
            if (st.confidence < victim->confidence)
                victim = &st;
        }
        if (victim->confidence == 0) {
            *victim = IndexStream();
            victim->pc = pc;
            victim->lastAddr = addr;
            victim->bytes = bytes;
            victim->lastValue = value;
            victim->hasValue = true;
        }
    }

    const bool is_strider = s && s->confidence >= 2 && s->stride != 0;

    if (is_strider) {
        // Prefetch: for each active pattern anchored at this stream,
        // read future index values and prefetch their targets (the
        // hardware IMP reads them from already-prefetched lines).
        for (const auto &p : patterns_) {
            if (p.indexPc != pc || p.confidence < 2)
                continue;
            for (unsigned d = 1; d <= distance_; ++d) {
                Addr idx_addr =
                    addr + static_cast<Addr>(s->stride * int64_t(d));
                uint64_t future = 0;
                if (!mem_.tryRead(idx_addr, bytes, future))
                    break;
                Addr target = p.base + (future << p.shift);
                if (mem_.validRange(target, 1)) {
                    out.push_back(lineAlign(target));
                    ++issued_;
                }
            }
        }
        return;
    }

    // Correlation: this miss may be the indirect target of one of the
    // confident index streams. Test addr == base + (value << shift)
    // for the plausible element sizes; a base seen twice for the same
    // (stream, target PC, shift) becomes an active pattern.
    if (!missed)
        return;
    for (auto &is : streams_) {
        if (is.pc == kInvalidPc || is.pc == pc || !is.hasValue ||
            is.confidence < 2) {
            continue;
        }
        // Candidate element-size shifts: byte, u64, and the padded
        // 64/128-byte records the workloads use.
        for (uint8_t shift : {uint8_t{0}, uint8_t{3}, uint8_t{6},
                              uint8_t{7}}) {
            const Addr base = addr - (is.lastValue << shift);
            if (base > addr)    // underflow: implausible
                continue;
            Pattern *free_slot = nullptr;
            bool matched = false;
            for (auto &p : patterns_) {
                if (p.indexPc == kInvalidPc) {
                    if (!free_slot)
                        free_slot = &p;
                    continue;
                }
                if (p.indexPc == is.pc && p.targetPc == pc &&
                    p.shift == shift && p.base == base) {
                    if (p.confidence < 3) {
                        ++p.confidence;
                        if (p.confidence == 2)
                            ++learned_;
                    }
                    matched = true;
                    break;
                }
            }
            if (!matched && free_slot)
                *free_slot = Pattern{is.pc, pc, base, shift, 1};
        }
    }
}

} // namespace dvr
