#include "mem/stride_prefetcher.hh"

namespace dvr {

StridePrefetcher::StridePrefetcher(unsigned streams, unsigned degree)
    : streams_(streams), degree_(degree)
{
}

void
StridePrefetcher::train(InstPc pc, Addr addr, std::vector<Addr> &out)
{
    // Find the stream for this PC, or the LRU stream to reallocate.
    Stream *s = nullptr;
    Stream *lru = &streams_[0];
    for (auto &st : streams_) {
        if (st.pc == pc) {
            s = &st;
            break;
        }
        if (st.lruStamp < lru->lruStamp)
            lru = &st;
    }
    if (!s) {
        s = lru;
        *s = Stream();
        s->pc = pc;
        s->lastAddr = addr;
        s->lruStamp = nextStamp_++;
        return;
    }
    s->lruStamp = nextStamp_++;

    const int64_t delta = static_cast<int64_t>(addr) -
                          static_cast<int64_t>(s->lastAddr);
    if (delta == 0)
        return;
    if (delta == s->stride) {
        if (s->confidence < 3)
            ++s->confidence;
    } else {
        s->stride = delta;
        s->confidence = s->confidence > 0 ? s->confidence - 1 : 0;
        s->lastAddr = addr;
        return;
    }
    s->lastAddr = addr;

    if (s->confidence < 2)
        return;

    // Prefetch up to `degree_` lines ahead, skipping lines already
    // requested for this stream.
    for (unsigned d = 1; d <= degree_; ++d) {
        Addr target = lineAlign(addr +
                                static_cast<Addr>(s->stride * int64_t(d)));
        if (target == lineAlign(addr) || target == s->lastPrefetched)
            continue;
        out.push_back(target);
        s->lastPrefetched = target;
        ++issued_;
    }
}

} // namespace dvr
