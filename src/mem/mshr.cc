#include "mem/mshr.hh"

#include "common/arena.hh"

namespace dvr {

MshrTracker::MshrTracker(unsigned capacity)
    : capacity_(capacity)
{
    panicIf(capacity == 0, "MshrTracker: zero capacity");
    ends_ = Arena::forCurrentThread().allocArray<Cycle>(capacity);
}

double
MshrTracker::avgOccupancy(Cycle total) const
{
    return total == 0 ? 0.0
                      : busyIntegral_ / static_cast<double>(total);
}

} // namespace dvr
