#include "mem/mshr.hh"

#include <algorithm>

#include "common/log.hh"

namespace dvr {

MshrTracker::MshrTracker(unsigned capacity)
    : capacity_(capacity)
{
    panicIf(capacity == 0, "MshrTracker: zero capacity");
}

void
MshrTracker::expire(Cycle now)
{
    while (!ends_.empty() && ends_.top() <= now)
        ends_.pop();
}

Cycle
MshrTracker::acquire(Cycle want, bool low_priority)
{
    expire(want);
    const unsigned cap =
        low_priority && capacity_ > kDemandReserve
            ? capacity_ - kDemandReserve
            : capacity_;
    Cycle start = want;
    while (ends_.size() >= cap) {
        // MSHRs busy: wait for the earliest outstanding miss to
        // complete. Requests can arrive slightly out of time order in
        // the dependence-based model, so this is an approximation of
        // a strict per-cycle allocator.
        start = std::max(start, ends_.top());
        ends_.pop();
    }
    ++acquires_;
    return start;
}

void
MshrTracker::commit(Cycle start, Cycle end)
{
    panicIf(end < start, "MshrTracker: negative interval");
    ends_.push(end);
    busyIntegral_ += static_cast<double>(end - start);
}

bool
MshrTracker::tryAcquire(Cycle want)
{
    expire(want);
    if (ends_.size() >= capacity_) {
        ++prefetchDrops_;
        return false;
    }
    ++acquires_;
    return true;
}

double
MshrTracker::avgOccupancy(Cycle total) const
{
    return total == 0 ? 0.0
                      : busyIntegral_ / static_cast<double>(total);
}

} // namespace dvr
