#include "mem/mshr.hh"

#include <algorithm>

#include "common/log.hh"

namespace dvr {

MshrTracker::MshrTracker(unsigned capacity)
    : capacity_(capacity)
{
    panicIf(capacity == 0, "MshrTracker: zero capacity");
}

void
MshrTracker::expire(Cycle now)
{
    while (!ends_.empty() && ends_.top() <= now)
        ends_.pop();
}

unsigned
MshrTracker::effectiveCap(bool low_priority) const
{
    return low_priority && capacity_ > kDemandReserve
               ? capacity_ - kDemandReserve
               : capacity_;
}

Cycle
MshrTracker::acquire(Cycle want, bool low_priority)
{
    panicIf(pending_ != 0,
            "MshrTracker: acquire with an uncommitted reservation "
            "(acquire/commit must balance)");
    expire(want);
    const unsigned cap = effectiveCap(low_priority);
    Cycle start = want;
    while (ends_.size() + pending_ >= cap) {
        // MSHRs busy: wait for the earliest outstanding miss to
        // complete. Requests can arrive slightly out of time order in
        // the dependence-based model, so this is an approximation of
        // a strict per-cycle allocator. Each popped entry ends at or
        // before the final start, so it is expired — not leaked — by
        // the time the reservation begins.
        start = std::max(start, ends_.top());
        ends_.pop();
    }
    ++acquires_;
    ++pending_;
    return start;
}

void
MshrTracker::commit(Cycle start, Cycle end)
{
    panicIf(end < start, "MshrTracker: negative interval");
    panicIf(pending_ == 0,
            "MshrTracker: commit without a matching acquire");
    --pending_;
    ends_.push(end);
    busyIntegral_ += static_cast<double>(end - start);
}

bool
MshrTracker::tryAcquire(Cycle want, bool low_priority)
{
    panicIf(pending_ != 0,
            "MshrTracker: tryAcquire with an uncommitted reservation "
            "(acquire/commit must balance)");
    expire(want);
    if (ends_.size() + pending_ >= effectiveCap(low_priority)) {
        ++prefetchDrops_;
        return false;
    }
    ++acquires_;
    ++pending_;
    return true;
}

double
MshrTracker::avgOccupancy(Cycle total) const
{
    return total == 0 ? 0.0
                      : busyIntegral_ / static_cast<double>(total);
}

} // namespace dvr
