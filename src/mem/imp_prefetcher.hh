/**
 * @file
 * Indirect Memory Prefetcher (IMP) baseline, after Yu et al.
 * (MICRO 2015). Detects `A[B[i]]`-style patterns at the L1-D level:
 * it correlates the *values* loaded by a striding (index) stream with
 * the *addresses* of subsequent misses, learning `addr = base +
 * (value << shift)` candidates, then prefetches ahead of the index
 * stream by reading future index values.
 */

#ifndef DVR_MEM_IMP_PREFETCHER_HH
#define DVR_MEM_IMP_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dvr {

class SimMemory;

class ImpPrefetcher
{
  public:
    /**
     * @param mem functional memory, used to read future index values
     *            (hardware IMP reads them from prefetched lines)
     * @param distance how many iterations ahead to prefetch
     */
    ImpPrefetcher(const SimMemory &mem, unsigned distance);

    /**
     * Observe a demand load; may append prefetch line addresses.
     * @param pc static PC of the load
     * @param addr accessed address
     * @param value value the load returned (index candidate)
     * @param bytes access size of the load
     * @param missed true when the access missed in L1-D
     */
    void observe(InstPc pc, Addr addr, uint64_t value, uint32_t bytes,
                 bool missed, std::vector<Addr> &out);

    uint64_t patternsLearned() const { return learned_; }
    uint64_t issued() const { return issued_; }

  private:
    /** Striding index streams (small private RPT). */
    struct IndexStream
    {
        InstPc pc = kInvalidPc;
        Addr lastAddr = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;
        uint32_t bytes = 8;
        uint64_t lastValue = 0;
        bool hasValue = false;
    };

    /** A learned (or candidate) indirect pattern. */
    struct Pattern
    {
        InstPc indexPc = kInvalidPc;  ///< the striding index stream
        InstPc targetPc = kInvalidPc; ///< the indirect load PC
        Addr base = 0;
        uint8_t shift = 0;
        uint8_t confidence = 0;       ///< >=2 means active
    };

    IndexStream *findStream(InstPc pc);

    static constexpr unsigned kNumStreams = 8;
    static constexpr unsigned kNumPatterns = 16;

    const SimMemory &mem_;
    unsigned distance_;
    std::vector<IndexStream> streams_;
    std::vector<Pattern> patterns_;
    uint64_t learned_ = 0;
    uint64_t issued_ = 0;
};

} // namespace dvr

#endif // DVR_MEM_IMP_PREFETCHER_HH
