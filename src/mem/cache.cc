#include "mem/cache.hh"

#include "common/log.hh"

namespace dvr {

Cache::Cache(std::string name, uint32_t size_bytes, uint32_t assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    panicIf(assoc == 0 || size_bytes % (assoc * kLineBytes) != 0,
            "Cache: size must be a multiple of assoc * line size");
    numSets_ = size_bytes / (assoc * kLineBytes);
    panicIf((numSets_ & (numSets_ - 1)) != 0,
            "Cache: number of sets must be a power of two");
    lines_.resize(static_cast<size_t>(numSets_) * assoc_);
}

uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<uint32_t>((line_addr / kLineBytes) &
                                 (numSets_ - 1));
}

CacheLine *
Cache::lookup(Addr line_addr)
{
    CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        CacheLine &l = base[w];
        if (l.valid && l.lineAddr == line_addr) {
            l.lruStamp = nextStamp_++;
            ++hits;
            return &l;
        }
    }
    ++misses;
    return nullptr;
}

const CacheLine *
Cache::peek(Addr line_addr) const
{
    const CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

void
Cache::prefetchSet(Addr line_addr) const
{
    const CacheLine *base =
        &lines_[static_cast<size_t>(setIndex(line_addr)) * assoc_];
    // Only the first host lines of the set are prefetched explicitly:
    // a batch flush issues dozens of these, and touching every way of
    // every set would overflow the host's miss buffers (dropping the
    // prefetches entirely). The set is contiguous, so the hardware
    // streamer covers the remaining ways once the scan starts.
    const char *p = reinterpret_cast<const char *>(base);
    __builtin_prefetch(p, 1 /* rw: lookups stamp LRU */);
    if (sizeof(CacheLine) * assoc_ > 64)
        __builtin_prefetch(p + 64, 1);
}

Cache::Victim
Cache::insert(Addr line_addr, Cycle fill_time, Requester who, bool dirty)
{
    CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) * assoc_];
    CacheLine *slot = nullptr;

    // Hit (re-fill): update in place.
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            slot = &base[w];
            break;
        }
    }

    Victim victim;
    if (!slot) {
        // Prefer an invalid way; otherwise evict the LRU way.
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (!base[w].valid) {
                slot = &base[w];
                break;
            }
        }
        if (!slot) {
            slot = &base[0];
            for (uint32_t w = 1; w < assoc_; ++w) {
                if (base[w].lruStamp < slot->lruStamp)
                    slot = &base[w];
            }
            victim.valid = true;
            victim.lineAddr = slot->lineAddr;
            victim.dirty = slot->dirty;
        }
    }

    const bool refill = slot->valid && slot->lineAddr == line_addr;
    slot->lineAddr = line_addr;
    slot->fillTime = fill_time;
    slot->lruStamp = nextStamp_++;
    slot->valid = true;
    slot->dirty = refill ? (slot->dirty || dirty) : dirty;
    slot->filledBy = who;
    slot->demandTouched = (who == Requester::kMain);
    return victim;
}

void
Cache::invalidate(Addr line_addr)
{
    CacheLine *base = &lines_[static_cast<size_t>(setIndex(line_addr)) * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr) {
            base[w].valid = false;
            return;
        }
    }
}

} // namespace dvr
