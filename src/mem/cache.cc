#include "mem/cache.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/log.hh"

namespace dvr {

Cache::Cache(std::string name, uint32_t size_bytes, uint32_t assoc)
    : name_(std::move(name)), assoc_(assoc)
{
    panicIf(assoc == 0 || size_bytes % (assoc * kLineBytes) != 0,
            "Cache: size must be a multiple of assoc * line size");
    numSets_ = size_bytes / (assoc * kLineBytes);
    panicIf((numSets_ & (numSets_ - 1)) != 0,
            "Cache: number of sets must be a power of two");
    const size_t lines = static_cast<size_t>(numSets_) * assoc_;
    Arena &arena = Arena::forCurrentThread();
    tags_ = arena.allocArray<Addr>(lines);
    std::fill(tags_, tags_ + lines, kInvalidTag);
    meta_ = arena.allocArray<CacheLine>(lines);
}

void
Cache::prefetchSet(Addr line_addr) const
{
    const size_t base = static_cast<size_t>(setIndex(line_addr)) * assoc_;
    // The tag row is what the way scan reads; one host line covers 8
    // ways, so at most two prefetches span any configured assoc. The
    // metadata row is only needed on a hit — fetch its first line too
    // (rw: lookups stamp LRU there).
    const char *t = reinterpret_cast<const char *>(tags_ + base);
    __builtin_prefetch(t, 0);
    if (sizeof(Addr) * assoc_ > 64)
        __builtin_prefetch(t + 64, 0);
    __builtin_prefetch(reinterpret_cast<const char *>(meta_ + base), 1);
}

void
Cache::invalidate(Addr line_addr)
{
    const size_t base = static_cast<size_t>(setIndex(line_addr)) * assoc_;
    Addr *tags = tags_ + base;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (tags[w] == line_addr) {
            tags[w] = kInvalidTag;
            return;
        }
    }
}

} // namespace dvr
