#include "mem/sim_memory.hh"

#include <cstring>

#include "common/log.hh"

namespace dvr {

SimMemory::SimMemory(size_t bytes)
    : data_(bytes, 0), brk_(kLineBytes)
{
    panicIf(bytes < 2 * kLineBytes, "SimMemory: capacity too small");
}

Addr
SimMemory::alloc(size_t bytes, size_t align)
{
    panicIf(align == 0 || (align & (align - 1)) != 0,
            "SimMemory::alloc: alignment not a power of two");
    Addr base = (brk_ + align - 1) & ~static_cast<Addr>(align - 1);
    if (base + bytes > data_.size())
        fatal("SimMemory: out of simulated memory");
    brk_ = base + bytes;
    return base;
}

void
SimMemory::compact()
{
    data_.resize(brk_);
    data_.shrink_to_fit();
}

bool
SimMemory::validRange(Addr a, uint32_t n) const
{
    return a >= kLineBytes && a + n <= brk_ && a + n >= a;
}

uint64_t
SimMemory::read(Addr a, uint32_t bytes) const
{
    panicIf(!validRange(a, bytes), "SimMemory: invalid demand read");
    uint64_t v = 0;
    std::memcpy(&v, data_.data() + a, bytes);
    return v;
}

bool
SimMemory::tryRead(Addr a, uint32_t bytes, uint64_t &out) const
{
    if (!validRange(a, bytes))
        return false;
    out = 0;
    std::memcpy(&out, data_.data() + a, bytes);
    return true;
}

void
SimMemory::write(Addr a, uint32_t bytes, uint64_t v)
{
    panicIf(!validRange(a, bytes), "SimMemory: invalid write");
    std::memcpy(data_.data() + a, &v, bytes);
}

uint64_t
SimMemory::read64(Addr base, uint64_t idx) const
{
    return read(base + idx * 8, 8);
}

void
SimMemory::write64(Addr base, uint64_t idx, uint64_t v)
{
    write(base + idx * 8, 8, v);
}

uint32_t
SimMemory::read32(Addr base, uint64_t idx) const
{
    return static_cast<uint32_t>(read(base + idx * 4, 4));
}

void
SimMemory::write32(Addr base, uint64_t idx, uint32_t v)
{
    write(base + idx * 4, 4, v);
}

} // namespace dvr
