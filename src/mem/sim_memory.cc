#include "mem/sim_memory.hh"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/log.hh"

namespace dvr {

namespace {

// Process-wide CoW accounting. Relaxed is sufficient: the counters
// carry no synchronization duty, they are only aggregated totals read
// after the runner's joins.
std::atomic<uint64_t> gImageCopies{0};
std::atomic<uint64_t> gBytesAvoided{0};
std::atomic<uint64_t> gPagesShared{0};
std::atomic<uint64_t> gPagesCloned{0};
std::atomic<uint64_t> gBytesCloned{0};
std::atomic<uint64_t> gPagesMaterialized{0};

void
bump(std::atomic<uint64_t> &c, uint64_t n)
{
    c.fetch_add(n, std::memory_order_relaxed);
}

} // namespace

const SimMemory::PagePtr &
SimMemory::zeroPage()
{
    // Never stored in pages_ (zero-backed entries are null there), so
    // ensureOwned can never see it as exclusively owned and the zero
    // bytes are immutable by construction.
    static const PagePtr zp = std::make_shared<Page>();
    return zp;
}

SimMemory::SimMemory(size_t bytes)
    : brk_(kLineBytes), capacity_(bytes)
{
    panicIf(bytes < 2 * kLineBytes, "SimMemory: capacity too small");
    const size_t npages = (bytes + kPageBytes - 1) >> kPageShift;
    // Zero-backed pages hold a null PagePtr, not a zeroPage() copy:
    // a fresh image is then two memsets instead of npages atomic
    // refcount bumps (and compact()'s trim of the untouched tail is
    // npages pointer drops instead of refcount releases). Reads never
    // look at pages_ — raw_ aliases the shared zero bytes.
    pages_.assign(npages, nullptr);
    raw_.assign(npages, zeroPage()->bytes);
}

SimMemory::SimMemory(const SimMemory &o)
    : pages_(o.pages_), raw_(o.raw_), brk_(o.brk_),
      capacity_(o.capacity_), derived_(true)
{
    bump(gImageCopies, 1);
    bump(gBytesAvoided, brk_);
    bump(gPagesShared, pages_.size());
}

SimMemory &
SimMemory::operator=(const SimMemory &o)
{
    if (this == &o)
        return *this;
    pages_ = o.pages_;
    raw_ = o.raw_;
    brk_ = o.brk_;
    capacity_ = o.capacity_;
    derived_ = true;
    bump(gImageCopies, 1);
    bump(gBytesAvoided, brk_);
    bump(gPagesShared, pages_.size());
    return *this;
}

void
SimMemory::clonePage(size_t idx)
{
    PagePtr &p = pages_[idx];
    // A write to zero-backed address space (null PagePtr) materializes
    // a fresh zeroed page: no image bytes are copied (the flat
    // representation had to memcpy those zeros up front), so it is not
    // clone traffic.
    const bool zero_backed = !p;
    p = zero_backed ? std::make_shared<Page>()  // dvr-lint: allow(hot-alloc) CoW clone:
                    : std::make_shared<Page>(*p);  // once per shared page, amortized

    raw_[idx] = p->bytes;
    if (derived_ && !zero_backed) {
        bump(gPagesCloned, 1);
        bump(gBytesCloned, kPageBytes);
    } else {
        bump(gPagesMaterialized, 1);
    }
}

Addr
SimMemory::alloc(size_t bytes, size_t align)
{
    panicIf(align == 0 || (align & (align - 1)) != 0,
            "SimMemory::alloc: alignment not a power of two");
    Addr base = (brk_ + align - 1) & ~static_cast<Addr>(align - 1);
    if (base + bytes > capacity_)
        fatal("SimMemory: out of simulated memory");
    brk_ = base + bytes;
    return base;
}

void
SimMemory::compact()
{
    pages_.resize(livePages());
    pages_.shrink_to_fit();
    raw_.resize(pages_.size());
    raw_.shrink_to_fit();
    capacity_ = brk_;
}

uint64_t
SimMemory::readSplit(Addr a, uint32_t bytes) const
{
    uint64_t v = 0;
    auto *dst = reinterpret_cast<uint8_t *>(&v);
    const uint32_t first =
        uint32_t(kPageBytes - (a & kPageOffsetMask));
    std::memcpy(dst, raw_[a >> kPageShift] + (a & kPageOffsetMask),
                first);
    std::memcpy(dst + first, raw_[(a >> kPageShift) + 1],
                bytes - first);
    return v;
}

void
SimMemory::writeSplit(Addr a, uint32_t bytes, uint64_t v)
{
    const auto *src = reinterpret_cast<const uint8_t *>(&v);
    const size_t idx = size_t(a >> kPageShift);
    const uint32_t first =
        uint32_t(kPageBytes - (a & kPageOffsetMask));
    ensureOwned(idx);
    ensureOwned(idx + 1);
    std::memcpy(raw_[idx] + (a & kPageOffsetMask), src, first);
    std::memcpy(raw_[idx + 1], src + first, bytes - first);
}

uint64_t
SimMemory::read64(Addr base, uint64_t idx) const
{
    return read(base + idx * 8, 8);
}

void
SimMemory::write64(Addr base, uint64_t idx, uint64_t v)
{
    write(base + idx * 8, 8, v);
}

uint32_t
SimMemory::read32(Addr base, uint64_t idx) const
{
    return static_cast<uint32_t>(read(base + idx * 4, 4));
}

void
SimMemory::write32(Addr base, uint64_t idx, uint32_t v)
{
    write(base + idx * 4, 4, v);
}

size_t
SimMemory::pagesSharedWith(const SimMemory &o) const
{
    const size_t n = std::min(raw_.size(), o.raw_.size());
    size_t shared = 0;
    for (size_t i = 0; i < n; ++i)
        shared += raw_[i] == o.raw_[i];
    return shared;
}

bool
SimMemory::sameContent(const SimMemory &o) const
{
    if (brk_ != o.brk_)
        return false;
    for (Addr a = 0; a < brk_; a += kPageBytes) {
        const size_t n =
            size_t(std::min<Addr>(kPageBytes, brk_ - a));
        const size_t i = size_t(a >> kPageShift);
        if (raw_[i] != o.raw_[i] &&
            std::memcmp(raw_[i], o.raw_[i], n) != 0) {
            return false;
        }
    }
    return true;
}

CowMemStats
SimMemory::cowStats()
{
    CowMemStats s;
    s.imageCopies = gImageCopies.load(std::memory_order_relaxed);
    s.bytesAvoided = gBytesAvoided.load(std::memory_order_relaxed);
    s.pagesShared = gPagesShared.load(std::memory_order_relaxed);
    s.pagesCloned = gPagesCloned.load(std::memory_order_relaxed);
    s.bytesCloned = gBytesCloned.load(std::memory_order_relaxed);
    s.pagesMaterialized =
        gPagesMaterialized.load(std::memory_order_relaxed);
    return s;
}

} // namespace dvr
