#include "mem/dram.hh"

namespace dvr {

DramModel::DramModel(Cycle min_latency, Cycle cycles_per_line)
    : minLatency_(min_latency), cyclesPerLine_(cycles_per_line)
{
}

Cycle
DramModel::access(Cycle want, Requester who)
{
    // The dependence-based core model can present requests slightly
    // out of time order; the channel simply serializes transfers from
    // the later of (request time, channel free time).
    Cycle start = want > nextFree_ ? want : nextFree_;
    nextFree_ = start + cyclesPerLine_;
    queueDelay_ += static_cast<double>(start - want);
    ++count_[static_cast<int>(who)];
    return start + minLatency_;
}

uint64_t
DramModel::totalAccesses() const
{
    uint64_t t = 0;
    for (auto c : count_)
        t += c;
    return t;
}

double
DramModel::avgQueueDelay() const
{
    const uint64_t n = totalAccesses();
    return n == 0 ? 0.0 : queueDelay_ / static_cast<double>(n);
}

} // namespace dvr
