/**
 * @file
 * The composed memory hierarchy: L1-D / L2 / L3 / DRAM with MSHRs, an
 * always-on stride prefetcher, the optional IMP baseline prefetcher,
 * and the bookkeeping the evaluation figures need (DRAM traffic split
 * by requester, runahead-prefetch timeliness, MSHR occupancy).
 */

#ifndef DVR_MEM_MEMORY_SYSTEM_HH
#define DVR_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/flat_addr_map.hh"
#include "mem/imp_prefetcher.hh"
#include "mem/mshr.hh"
#include "mem/stride_prefetcher.hh"

namespace dvr {

class SimMemory;

/** Memory-hierarchy parameters (Table 1 of the paper by default). */
struct MemConfig
{
    uint32_t l1Size = 32 * 1024;
    uint32_t l1Assoc = 8;
    Cycle l1Lat = 4;
    uint32_t l2Size = 256 * 1024;
    uint32_t l2Assoc = 8;
    Cycle l2Lat = 12;       ///< cumulative from issue
    uint32_t l3Size = 8 * 1024 * 1024;
    uint32_t l3Assoc = 16;
    Cycle l3Lat = 34;       ///< cumulative from issue
    unsigned mshrs = 24;
    Cycle dramLat = 200;    ///< 50 ns at 4 GHz
    Cycle dramCyclesPerLine = 5;    ///< 51.2 GB/s at 4 GHz
    bool stridePrefetcher = true;
    unsigned strideStreams = 16;
    unsigned strideDegree = 4;
    bool impPrefetcher = false;
    unsigned impDistance = 32;
};

/** Which level served a demand access. */
enum class HitLevel : uint8_t { kL1, kL2, kL3, kDram };

/** Result of a timed access. */
struct MemAccess
{
    Cycle done = 0;             ///< cycle the data is available
    HitLevel level = HitLevel::kL1;
    bool inFlightHit = false;   ///< hit on a line still being filled
};

class MemorySystem
{
  public:
    MemorySystem(const MemConfig &cfg, const SimMemory &mem);

    /**
     * Timed demand access (load or store) from the main thread or a
     * runahead episode.
     *
     * @param addr byte address
     * @param bytes access size
     * @param cycle cycle the access is issued
     * @param is_store stores allocate but never stall the requester
     * @param who requester class (main thread vs runahead)
     * @param pc static PC, used for prefetcher training
     * @param load_value functional value returned (IMP training)
     */
    MemAccess access(Addr addr, uint32_t bytes, Cycle cycle,
                     bool is_store, Requester who, InstPc pc,
                     uint64_t load_value);

    /**
     * Full-line prefetch. Best-effort prefetches (hardware stride /
     * IMP) are dropped when no MSHR is available; non-best-effort
     * (the Oracle) queue behind the MSHRs instead.
     * @return cycle the line will be filled, or kCycleNever if dropped
     *         or already present in L1.
     */
    Cycle prefetchLine(Addr line_addr, Cycle cycle, Requester who,
                       bool best_effort = true);

    /** Probe without side effects: is the line in any cache level? */
    bool present(Addr line_addr) const;

    /**
     * Content-only touch for functional cache warming during sampled
     * skips (src/sim/sampling.cc). Updates tag/LRU/dirty state exactly
     * as a demand access would — promoting into upper levels, filling
     * every level on a full miss — but models no latency and charges
     * no MSHR, DRAM, demand, or timeliness accounting. Lines fill at
     * time 0, i.e. they are settled by the time detailed simulation
     * resumes; dirty victims mark the next level dirty (so later real
     * evictions still pay their writeback) but cost nothing now.
     */
    void warmTouch(Addr addr, bool is_store);

    /**
     * Batched warmTouch: `enc` holds `n` touches encoded as
     * (addr << 1) | is_store. All touched sets' way arrays are
     * host-prefetched up front, then the touches are applied in
     * order; the host misses on the (multi-MB) L2/L3 set arrays
     * overlap instead of serializing, which is where nearly all of
     * the warming cost goes on irregular workloads. Semantically
     * identical to calling warmTouch per entry.
     */
    void warmTouchBatch(const uint64_t *enc, size_t n);

    MshrTracker &mshrs() { return mshrs_; }
    const MemConfig &config() const { return cfg_; }
    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }
    ImpPrefetcher *imp() { return imp_.get(); }

    /** Count prefetched-but-never-used lines and export counters. */
    StatSet stats() const;

    // --- public counters (read by figures/tests) --------------------
    uint64_t demandAccesses = 0;
    double demandLatSum = 0;  ///< total demand-load latency (cycles)
    uint64_t demandHitsL1 = 0;
    uint64_t demandHitsL2 = 0;
    uint64_t demandHitsL3 = 0;
    uint64_t demandDram = 0;
    uint64_t llcMisses = 0;     ///< demand LLC misses (for MPKI)
    uint64_t writebacks = 0;
    /** Timeliness of runahead-prefetched lines on first demand use. */
    uint64_t raFoundL1 = 0;
    uint64_t raFoundL2 = 0;
    uint64_t raFoundL3 = 0;
    uint64_t raFoundLate = 0;   ///< in flight or refetched from DRAM

  private:
    /** Fill a line into levels up to L1 and handle writebacks. */
    void fill(Addr line_addr, Cycle fill_time, Requester who,
              bool dirty, Cycle now);

    /** Start a prefetch lifetime record for a DRAM-fetched line. */
    void notePrefetchIssued(Addr line_addr, Cycle issue, Cycle fill_time,
                            Requester who);
    /**
     * First demand touch of a prefetched line: classify its timeliness
     * by the latency the main thread observed (Figure 11's bands:
     * L1/L2/L3, or off-chip when the wait exceeds the LLC), and bucket
     * it into fully-hidden / partially-late / full-latency.
     */
    void noteDemandTouch(Addr line_addr, Cycle observed_latency);
    /** L3 victim: close the lifetime of a never-used prefetch. */
    void noteL3Eviction(Addr line_addr);

    const MemConfig cfg_;
    const SimMemory &mem_;
    Cache l1_;
    Cache l2_;
    Cache l3_;
    MshrTracker mshrs_;
    DramModel dram_;
    std::unique_ptr<StridePrefetcher> stride_;
    std::unique_ptr<ImpPrefetcher> imp_;
    std::vector<Addr> pfQueue_;  ///< scratch for prefetcher output

    /**
     * Lifetime record of a DRAM-fetched prefetch that has not been
     * demand-touched yet. `hw` splits the runahead class (runahead
     * subthreads and runahead-mode demand misses) from the hardware
     * class (stride / IMP / Oracle).
     */
    struct PendingPrefetch
    {
        Cycle issue = 0;        ///< cycle the prefetch was issued
        Cycle fillTime = 0;     ///< cycle the line lands in the caches
        bool hw = false;
    };
    /**
     * Prefetched lines not yet demand-touched. Probed per DRAM fill
     * and L3 eviction; open-addressed so the probe is one contiguous
     * scan instead of a node-pointer chase. Bounded in practice by the
     * lines the L3 can hold.
     */
    FlatAddrMap<PendingPrefetch> pendingPf_;

    // Timeliness classes, indexed by prefetch class (see clsIndex).
    static constexpr int kClsRa = 0;    ///< runahead prefetches
    static constexpr int kClsHw = 1;    ///< stride / IMP / Oracle
    static int clsIndex(Requester who)
    {
        return who == Requester::kRunahead ? kClsRa : kClsHw;
    }
    uint64_t tlFullyHidden_[2] = {};    ///< observed <= L1 latency
    uint64_t tlPartial_[2] = {};        ///< some latency still exposed
    uint64_t tlFullLatency_[2] = {};    ///< hid nothing (useless-late)
    uint64_t tlEvicted_[2] = {};        ///< left L3 before any use
    /**
     * For partially-late runahead prefetches: histogram of the DRAM
     * latency fraction the prefetch did hide (8 equal-width buckets
     * over [0, l3Lat + dramLat)), i.e. Figure 11's "how late" detail.
     */
    static constexpr size_t kHiddenHistBuckets = 8;
    uint64_t raHiddenHist_[kHiddenHistBuckets] = {};
};

} // namespace dvr

#endif // DVR_MEM_MEMORY_SYSTEM_HH
