/**
 * @file
 * Betweenness centrality (Brandes, single source, fixed point): a
 * forward BFS accumulating shortest-path counts (sigma), then a
 * backward sweep over the visit order accumulating dependencies
 * (delta). Both phases chase edges[e] -> per-node metadata chains and
 * branch divergently per edge -- the paper's hardest control-flow
 * case ("there may be much broader divergence").
 */

#include "workloads/gap_common.hh"

#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/registry.hh"

namespace dvr {

namespace {

constexpr uint64_t kUnvisited = ~0ULL;
constexpr int kFixShift = 16;
constexpr uint64_t kOne = 1ULL << kFixShift;

struct BcGolden
{
    std::vector<uint64_t> dist;
    std::vector<uint64_t> sigma;
    std::vector<uint64_t> delta;
};

/** Golden model: the exact schedule of the kernel below. */
BcGolden
goldenBc(const CsrGraph &g, uint64_t source)
{
    BcGolden r;
    const uint64_t n = g.numNodes;
    r.dist.assign(n, kUnvisited);
    r.sigma.assign(n, 0);
    r.delta.assign(n, 0);
    std::vector<uint64_t> wl;
    r.dist[source] = 0;
    r.sigma[source] = 1;
    wl.push_back(source);
    uint64_t head = 0;
    while (head < wl.size()) {
        const uint64_t u = wl[head++];
        const uint64_t du1 = r.dist[u] + 1;
        const uint64_t su = r.sigma[u];
        for (uint64_t e = g.hOffsets[u]; e < g.hOffsets[u + 1]; ++e) {
            const uint64_t v = g.hEdges[e];
            if (r.dist[v] == kUnvisited) {
                r.dist[v] = du1;
                r.sigma[v] = su;
                wl.push_back(v);
            } else if (r.dist[v] == du1) {
                r.sigma[v] += su;
            }
        }
    }
    for (uint64_t i = wl.size(); i-- > 0;) {
        const uint64_t u = wl[i];
        const uint64_t du1 = r.dist[u] + 1;
        const uint64_t su = r.sigma[u];
        uint64_t acc = r.delta[u];
        for (uint64_t e = g.hOffsets[u]; e < g.hOffsets[u + 1]; ++e) {
            const uint64_t v = g.hEdges[e];
            if (r.dist[v] == du1)
                acc += (su * (kOne + r.delta[v])) / r.sigma[v];
        }
        r.delta[u] = acc;
    }
    return r;
}

Program
emitBc(Addr wl, Addr off, Addr edges, Addr dist, Addr sigma,
       Addr delta, uint64_t source)
{
    ProgramBuilder b;
    // Phase 1 registers:
    //   r0 wlBase r1 head r2 tail r3 offBase r4 edgeBase r5 distBase
    //   r6 u r7 e r8 eEnd r9 dst r10 t r11 addr r12 du1
    //   r13 sigmaBase r14 UNVIS r15 su
    b.li(0, int64_t(wl)).li(3, int64_t(off)).li(4, int64_t(edges))
        .li(5, int64_t(dist)).li(13, int64_t(sigma))
        .li(14, int64_t(kUnvisited)).li(1, 0).li(2, 1)
        .li(10, int64_t(source)).st(0, 0, 10);

    b.label("outer")
        .cmpltu(10, 1, 2)
        .beqz(10, "backward_init")
        .shli(11, 1, 3).add(11, 0, 11)
        .ld(6, 11)                      // u = wl[head]
        .addi(1, 1, 1)
        .shli(11, 6, kNodeSlotShift)
        .add(10, 5, 11)
        .ld(12, 10)                     // dist[u]
        .addi(12, 12, 1)                // du1
        .add(10, 13, 11)
        .ld(15, 10)                     // su = sigma[u]
        .shli(11, 6, 3).add(11, 3, 11)
        .ld(7, 11)
        .ld(8, 11, 8)
        .cmpltu(10, 7, 8)
        .beqz(10, "outer");
    b.label("inner")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // dst = edges[e] (strider)
        .shli(11, 9, kNodeSlotShift)
        .add(11, 5, 11)
        .ld(10, 11)                     // dist[dst]      (FLR)
        .cmpeq(10, 10, 14)
        .beqz(10, "check_level")
        .st(11, 0, 12)                  // dist[dst] = du1
        .shli(11, 9, kNodeSlotShift).add(11, 13, 11)
        .st(11, 0, 15)                  // sigma[dst] = su
        .shli(11, 2, 3).add(11, 0, 11)
        .st(11, 0, 9)                   // push dst
        .addi(2, 2, 1)
        .jmp("next_e");
    b.label("check_level")
        .ld(10, 11)                     // dist[dst] again
        .cmpeq(10, 10, 12)              // on the BFS frontier level?
        .beqz(10, "next_e")
        .shli(11, 9, kNodeSlotShift).add(11, 13, 11)
        .ld(10, 11)
        .add(10, 10, 15)
        .st(11, 0, 10);                 // sigma[dst] += su
    b.label("next_e")
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "inner")
        .jmp("outer");

    // Phase 2 registers:
    //   r0 wlBase r1 i r2 deltaBase r3 offBase r4 edgeBase
    //   r5 distBase r6 u r7 e r8 eEnd r9 v r10 t r11 addr
    //   r12 du1 r13 sigmaBase r14 ONE r15 su ; acc kept in delta slot
    b.label("backward_init")
        .mov(1, 2)                      // i = tail
        .li(2, int64_t(delta))
        .li(14, int64_t(kOne));
    b.label("bw_outer")
        .beqz(1, "done")
        .addi(1, 1, -1)
        .shli(11, 1, 3).add(11, 0, 11)
        .ld(6, 11)                      // u = wl[i]
        .shli(11, 6, kNodeSlotShift)
        .add(10, 5, 11)
        .ld(12, 10)
        .addi(12, 12, 1)                // du1
        .add(10, 13, 11)
        .ld(15, 10)                     // su
        .shli(11, 6, 3).add(11, 3, 11)
        .ld(7, 11)
        .ld(8, 11, 8)
        .cmpltu(10, 7, 8)
        .beqz(10, "bw_outer");
    b.label("bw_inner")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // v = edges[e]  (strider)
        .shli(11, 9, kNodeSlotShift)
        .add(11, 5, 11)
        .ld(10, 11)                     // dist[v]       (chain)
        .cmpeq(10, 10, 12)
        .beqz(10, "bw_next")
        .shli(11, 9, kNodeSlotShift)
        .add(11, 2, 11)
        .ld(10, 11)                     // delta[v]
        .add(10, 10, 14)                // ONE + delta[v]
        .mul(10, 15, 10)                // su * (...)
        .shli(11, 9, kNodeSlotShift)
        .add(11, 13, 11)
        .ld(11, 11)                     // sigma[v]
        .divu(10, 10, 11)
        .shli(11, 6, kNodeSlotShift)
        .add(11, 2, 11)
        .ld(9, 11)                      // delta[u] (acc)
        .add(10, 9, 10)
        .st(11, 0, 10)                  // delta[u] = acc
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11);                     // reload v (r9 was clobbered)
    b.label("bw_next")
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "bw_inner")
        .jmp("bw_outer");

    b.label("done").halt();
    return b.build();
}

} // namespace

Workload
makeBc(SimMemory &mem, const WorkloadParams &p)
{
    CsrGraph g = buildInputGraph(mem, p);
    const uint64_t n = g.numNodes;
    const Addr dist = allocNodeArray(mem, n);
    const Addr sigma = allocNodeArray(mem, n);
    const Addr delta = allocNodeArray(mem, n);
    const Addr wl = mem.alloc((n + 1) * 8);
    const uint64_t source = 1 % n;
    for (uint64_t v = 0; v < n; ++v)
        writeNode(mem, dist, v, kUnvisited);
    writeNode(mem, dist, source, 0);
    writeNode(mem, sigma, source, 1);

    auto golden = goldenBc(g, source);

    Workload w;
    w.name = "bc";
    w.description = "GAP betweenness centrality (Brandes, one source)";
    w.program = emitBc(wl, g.offsets, g.edges, dist, sigma, delta,
                       source);
    w.fullRunInsts = 40 * g.numEdges + 40 * n + 16;
    w.verify = [golden = std::move(golden), dist, sigma, delta,
                n](const SimMemory &m) {
        for (uint64_t v = 0; v < n; ++v) {
            if (readNode(m, dist, v) != golden.dist[v] ||
                readNode(m, sigma, v) != golden.sigma[v] ||
                readNode(m, delta, v) != golden.delta[v]) {
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace dvr
