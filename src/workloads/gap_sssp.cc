/**
 * @file
 * Single-source shortest paths (worklist Bellman-Ford, a simplified
 * stand-in for GAP's delta-stepping with the same access pattern):
 * the inner loop strides through edges and weights and relaxes
 * dist[dst] -- two parallel striding streams plus an indirect,
 * divergent chain.
 */

#include "workloads/gap_common.hh"

#include <queue>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"
#include "workloads/registry.hh"

namespace dvr {

namespace {

constexpr uint64_t kInf = ~0ULL >> 1;

/** Golden model: identical worklist schedule as the kernel. */
std::vector<uint64_t>
goldenSssp(const CsrGraph &g, const std::vector<uint64_t> &weights,
           uint64_t source, uint64_t max_pushes)
{
    std::vector<uint64_t> dist(g.numNodes, kInf);
    std::vector<uint64_t> wl;
    wl.reserve(max_pushes);
    dist[source] = 0;
    wl.push_back(source);
    uint64_t head = 0;
    while (head < wl.size() && wl.size() < max_pushes) {
        const uint64_t u = wl[head++];
        const uint64_t du = dist[u];
        for (uint64_t e = g.hOffsets[u]; e < g.hOffsets[u + 1]; ++e) {
            const uint64_t v = g.hEdges[e];
            const uint64_t nd = du + weights[e];
            if (nd < dist[v]) {
                dist[v] = nd;
                if (wl.size() < max_pushes)
                    wl.push_back(v);
            }
        }
    }
    return dist;
}

/**
 * Registers:
 *   r0 wlBase  r1 head    r2 tail    r3 offBase  r4 edgeBase
 *   r5 distBase r6 wBase  r7 e       r8 eEnd     r9 dst
 *   r10 t      r11 addr   r12 du     r13 wlCap   r14 u / nd  r15 w
 */
Program
emitSssp(Addr wl, Addr off, Addr edges, Addr weights, Addr dist,
         uint64_t source, uint64_t wl_cap)
{
    ProgramBuilder b;
    b.li(0, int64_t(wl)).li(3, int64_t(off)).li(4, int64_t(edges))
        .li(5, int64_t(dist)).li(6, int64_t(weights))
        .li(13, int64_t(wl_cap)).li(1, 0).li(2, 1)
        .li(10, int64_t(source)).st(0, 0, 10);

    b.label("outer")
        .cmpltu(10, 1, 2)
        .beqz(10, "done")
        .cmpltu(10, 2, 13)              // worklist full?
        .beqz(10, "done")
        .shli(11, 1, 3).add(11, 0, 11)
        .ld(14, 11)                     // u = wl[head]
        .addi(1, 1, 1)
        .shli(11, 14, kNodeSlotShift).add(11, 5, 11)
        .ld(12, 11)                     // du = dist[u]
        .shli(11, 14, 3).add(11, 3, 11)
        .ld(7, 11)                      // e = offsets[u]
        .ld(8, 11, 8)                   // eEnd
        .cmpltu(10, 7, 8)
        .beqz(10, "outer");

    b.label("inner")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // dst = edges[e] (strider)
        .shli(11, 7, 3).add(11, 6, 11)
        .ld(15, 11)                     // w = weights[e]
        .add(14, 12, 15)                // nd = du + w
        .shli(11, 9, kNodeSlotShift).add(11, 5, 11)
        .ld(10, 11)                     // dist[dst]      (FLR)
        .cmpltu(10, 14, 10)             // nd < dist[dst]?
        .beqz(10, "skip")
        .st(11, 0, 14)                  // dist[dst] = nd
        .cmpltu(10, 2, 13)
        .beqz(10, "skip")
        .shli(11, 2, 3).add(11, 0, 11)
        .st(11, 0, 9)                   // push dst
        .addi(2, 2, 1);
    b.label("skip")
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "inner")
        .jmp("outer");

    b.label("done").halt();
    return b.build();
}

} // namespace

Workload
makeSssp(SimMemory &mem, const WorkloadParams &p)
{
    CsrGraph g = buildInputGraph(mem, p);
    auto wv = randomValues(std::max<uint64_t>(g.numEdges, 1), 255,
                           p.seed ^ 0x55);
    for (auto &x : wv)
        ++x;    // weights in [1, 255]
    SimArray weights = makeArray(mem, wv);

    const Addr dist = allocNodeArray(mem, g.numNodes);
    // The golden model caps worklist pushes exactly like the kernel.
    const uint64_t wl_cap = 4 * g.numNodes;
    const Addr wl = mem.alloc((wl_cap + 1) * 8);
    const uint64_t source = 1 % g.numNodes;
    for (uint64_t v = 0; v < g.numNodes; ++v)
        writeNode(mem, dist, v, kInf);
    writeNode(mem, dist, source, 0);

    auto golden = goldenSssp(g, weights.host, source, wl_cap);

    Workload w;
    w.name = "sssp";
    w.description = "GAP SSSP (worklist Bellman-Ford)";
    w.program = emitSssp(wl, g.offsets, g.edges, weights.base, dist,
                         source, wl_cap);
    w.fullRunInsts = 60 * g.numEdges + 24 * g.numNodes + 16;
    w.verify = [golden = std::move(golden), dist,
                n = g.numNodes](const SimMemory &m) {
        for (uint64_t v = 0; v < n; ++v) {
            if (readNode(m, dist, v) != golden[v])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
