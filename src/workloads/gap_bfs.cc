/**
 * @file
 * Breadth-first search (GAP top-down step; paper Algorithm 1) plus the
 * shared GAP helpers. The inner loop walks a vertex's edge list
 * (striding load), checks the destination's distance (dependent
 * indirect load -> the FLR), and conditionally visits -- the divergent
 * branch DVR's reconvergence stack handles.
 */

#include "workloads/gap_common.hh"

#include <queue>

#include "common/log.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/registry.hh"

namespace dvr {

CsrGraph
buildInputGraph(SimMemory &mem, const WorkloadParams &p)
{
    const GraphInputSpec &spec = graphInput(p.input);
    const uint64_t nodes = inputNodes(spec, p.scaleShift);
    return buildCsr(mem, nodes, makeInputEdges(spec, p.scaleShift));
}

Addr
allocNodeArray(SimMemory &mem, uint64_t num_nodes)
{
    return mem.alloc(num_nodes * kNodeSlotBytes);
}

uint64_t
readNode(const SimMemory &mem, Addr base, uint64_t v)
{
    return mem.read(base + (v << kNodeSlotShift), 8);
}

void
writeNode(SimMemory &mem, Addr base, uint64_t v, uint64_t x)
{
    mem.write(base + (v << kNodeSlotShift), 8, x);
}

namespace {

constexpr uint64_t kUnvisited = ~0ULL;

/** Host-side golden BFS over the CSR mirror. */
std::vector<uint64_t>
goldenBfs(const CsrGraph &g, uint64_t source)
{
    std::vector<uint64_t> dist(g.numNodes, kUnvisited);
    std::queue<uint64_t> q;
    dist[source] = 0;
    q.push(source);
    while (!q.empty()) {
        const uint64_t u = q.front();
        q.pop();
        for (uint64_t e = g.hOffsets[u]; e < g.hOffsets[u + 1]; ++e) {
            const uint64_t v = g.hEdges[e];
            if (dist[v] == kUnvisited) {
                dist[v] = dist[u] + 1;
                q.push(v);
            }
        }
    }
    return dist;
}

/**
 * Emit the BFS kernel. Registers:
 *   r0 wlBase   r1 head   r2 tail     r3 offBase  r4 edgeBase
 *   r5 distBase r6 u      r7 e        r8 eEnd     r9 dst
 *   r10 t       r11 addr  r12 du      r14 UNVISITED
 */
Program
emitBfs(Addr wl, Addr off, Addr edges, Addr dist, uint64_t source)
{
    ProgramBuilder b;
    b.li(0, int64_t(wl)).li(3, int64_t(off)).li(4, int64_t(edges))
        .li(5, int64_t(dist)).li(14, int64_t(kUnvisited))
        .li(1, 0).li(2, 1).li(10, int64_t(source))
        .st(0, 0, 10);  // wl[0] = source

    b.label("outer")
        .cmpltu(10, 1, 2)               // head < tail?
        .beqz(10, "done")
        .shli(11, 1, 3).add(11, 0, 11)
        .ld(6, 11)                      // u = wl[head]
        .addi(1, 1, 1)
        .shli(11, 6, 3).add(11, 3, 11)
        .ld(7, 11)                      // e = offsets[u]
        .ld(8, 11, 8)                   // eEnd = offsets[u+1]
        .shli(11, 6, kNodeSlotShift).add(11, 5, 11)
        .ld(12, 11)                     // du = dist[u]
        .addi(12, 12, 1)
        .cmpltu(10, 7, 8)
        .beqz(10, "outer");             // empty edge list

    b.label("inner")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // dst = edges[e]  (strider)
        .shli(11, 9, kNodeSlotShift).add(11, 5, 11)
        .ld(10, 11)                     // d = dist[dst]   (FLR)
        .cmpeq(10, 10, 14)              // unvisited?
        .beqz(10, "skip")
        .st(11, 0, 12)                  // dist[dst] = du
        .shli(11, 2, 3).add(11, 0, 11)
        .st(11, 0, 9)                   // wl[tail] = dst
        .addi(2, 2, 1);
    b.label("skip")
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "inner")              // backward loop branch
        .jmp("outer");

    b.label("done").halt();
    return b.build();
}

} // namespace

Workload
makeBfsWorkload(SimMemory &mem, CsrGraph g, const std::string &name,
                const std::string &desc)
{
    const Addr dist = allocNodeArray(mem, g.numNodes);
    const Addr wl = mem.alloc((g.numNodes + 1) * 8);
    const uint64_t source = 1 % g.numNodes;

    // dist[] = UNVISITED except the source.
    for (uint64_t v = 0; v < g.numNodes; ++v)
        writeNode(mem, dist, v, kUnvisited);
    writeNode(mem, dist, source, 0);

    auto golden = goldenBfs(g, source);

    Workload w;
    w.name = name;
    w.description = desc;
    w.program = emitBfs(wl, g.offsets, g.edges, dist, source);
    w.fullRunInsts = 18 * g.numEdges + 20 * g.numNodes + 16;
    w.verify = [golden = std::move(golden), dist,
                n = g.numNodes](const SimMemory &m) {
        for (uint64_t v = 0; v < n; ++v) {
            if (readNode(m, dist, v) != golden[v])
                return false;
        }
        return true;
    };
    return w;
}

Workload
makeBfs(SimMemory &mem, const WorkloadParams &p)
{
    return makeBfsWorkload(mem, buildInputGraph(mem, p), "bfs",
                           "GAP top-down breadth-first search");
}

} // namespace dvr
