/**
 * @file
 * Graph500: breadth-first search on a Graph500-style Kronecker graph
 * (the paper's hpc-db set includes it separately from GAP bfs).
 */

#include "workloads/registry.hh"

#include "graph/generators.hh"
#include "workloads/gap_common.hh"

namespace dvr {

Workload
makeGraph500(SimMemory &mem, const WorkloadParams &p)
{
    // Graph500 reference RMAT parameters (a=.57, b=c=.19).
    const unsigned scale = p.scaleShift > 13 ? 4 : 17 - p.scaleShift;
    auto edges =
        rmatEdges(scale, 16, {0.57, 0.19, 0.19}, p.seed ^ 0x500);
    CsrGraph g = buildCsr(mem, 1ULL << scale, edges);
    return makeBfsWorkload(mem, std::move(g), "graph500",
                           "BFS on a Graph500 Kronecker graph");
}

} // namespace dvr
