/**
 * @file
 * Hash join probe kernels (HJ2 / HJ8): a sequential stream of probe
 * keys each traverses a chain of N dependent hash-table lookups
 * (k -> hash -> bucket -> k' -> hash -> ...). HJ8's depth-8 chain is
 * the deep-MLP stress case from the paper's hpc-db set.
 */

#include "workloads/registry.hh"

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;

Workload
makeHashJoin(SimMemory &mem, const WorkloadParams &p, unsigned depth,
             const char *name)
{
    const unsigned s = p.scaleShift > 10 ? 7 : 18 - p.scaleShift;
    const uint64_t slots = 1ULL << s;
    const uint64_t mask = slots - 1;
    const uint64_t n = slots * 4;

    SimArray keys = makeArray(mem, randomValues(n, 0, p.seed ^ 0x12));
    auto table_vals = randomValues(slots, 0, p.seed ^ 0x34);
    const Addr table = mem.alloc(slots << kSlotShift);
    for (uint64_t i = 0; i < slots; ++i)
        mem.write(table + (i << kSlotShift), 8, table_vals[i]);
    const Addr acc_addr = mem.alloc(8);

    // Golden model: depth dependent probes per key, summed.
    uint64_t acc_gold = 0;
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t k = keys.host[i];
        for (unsigned d = 0; d < depth; ++d)
            k = table_vals[kernelHash(k) & mask];
        acc_gold += k;
    }

    // Registers: r0 keys, r1 table, r3 i, r4 n, r6 k, r7 h,
    // r9 acc, r10 t, r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(keys.base)).li(1, int64_t(table)).li(3, 0)
        .li(4, int64_t(n)).li(9, 0).li(12, int64_t(acc_addr));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11);                     // k = keys[i]  (strider)
    for (unsigned d = 0; d < depth; ++d) {
        b.hash(7, 6)
            .andi(7, 7, int64_t(mask))
            .shli(11, 7, kSlotShift).add(11, 1, 11)
            .ld(6, 11);                 // k = table[h] (chain)
    }
    b.add(9, 9, 6)                      // acc += k
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .st(12, 0, 9)
        .halt();

    Workload w;
    w.name = name;
    w.description = "hash-join probe, dependent chain depth " +
                    std::to_string(depth);
    w.program = b.build();
    w.fullRunInsts = (7 + 4 * depth) * n + 10;
    w.verify = [acc_gold, acc_addr](const SimMemory &m) {
        return m.read(acc_addr, 8) == acc_gold;
    };
    return w;
}

} // namespace

Workload
makeHj2(SimMemory &mem, const WorkloadParams &p)
{
    return makeHashJoin(mem, p, 2, "hj2");
}

Workload
makeHj8(SimMemory &mem, const WorkloadParams &p)
{
    return makeHashJoin(mem, p, 8, "hj8");
}

} // namespace dvr
