/**
 * @file
 * Workload abstraction: a benchmark kernel authored in the micro-op
 * ISA, its data set living in simulated memory, and a golden-model
 * verifier computed natively at build time.
 */

#ifndef DVR_WORKLOADS_WORKLOAD_HH
#define DVR_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace dvr {

class SimMemory;

struct WorkloadParams
{
    /**
     * Halve data-set sizes 2^scaleShift times. 0 = evaluation size
     * (working set beyond the LLC); tests use 4-8 so kernels finish
     * quickly and can be verified against the golden model.
     */
    unsigned scaleShift = 0;
    /** GAP graph input name (KR, LJN, ORK, TW, UR). */
    std::string input = "KR";
    uint64_t seed = 42;
};

struct Workload
{
    std::string name;
    std::string description;
    Program program;
    /**
     * Compare simulated-memory results against the natively computed
     * golden model. Only meaningful when the program ran to
     * completion (halted).
     */
    std::function<bool(const SimMemory &)> verify;
    /** Dynamic instructions for a full run (for sizing budgets). */
    uint64_t fullRunInsts = 0;
};

using WorkloadFactory =
    Workload (*)(SimMemory &, const WorkloadParams &);

} // namespace dvr

#endif // DVR_WORKLOADS_WORKLOAD_HH
