/**
 * @file
 * NAS-IS inner kernel: integer-sort bucket counting, count[key[i]]++.
 * A single level of indirection from a striding key stream -- the
 * pattern IMP handles well, included as the simple-indirect contrast.
 */

#include "workloads/registry.hh"

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;

} // namespace

Workload
makeNasIs(SimMemory &mem, const WorkloadParams &p)
{
    const unsigned s = p.scaleShift > 10 ? 7 : 18 - p.scaleShift;
    const uint64_t buckets = 1ULL << s;
    const uint64_t n = buckets * 8;

    SimArray keys =
        makeArray(mem, randomValues(n, buckets, p.seed ^ 0x15));
    const Addr count = mem.alloc(buckets << kSlotShift);

    std::vector<uint64_t> gold(buckets, 0);
    for (uint64_t i = 0; i < n; ++i)
        ++gold[keys.host[i]];

    // Registers: r0 keys, r1 count, r3 i, r4 n, r6 k, r10 t, r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(keys.base)).li(1, int64_t(count)).li(3, 0)
        .li(4, int64_t(n));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11)                      // k = keys[i]   (strider)
        .shli(11, 6, kSlotShift).add(11, 1, 11)
        .ld(10, 11)                     // count[k]      (FLR)
        .addi(10, 10, 1)
        .st(11, 0, 10)                  // count[k]++
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .halt();

    Workload w;
    w.name = "nas_is";
    w.description = "integer-sort bucket counting (NAS IS)";
    w.program = b.build();
    w.fullRunInsts = 10 * n + 6;
    w.verify = [gold = std::move(gold), count,
                buckets](const SimMemory &m) {
        for (uint64_t i = 0; i < buckets; ++i) {
            if (m.read(count + (i << kSlotShift), 8) != gold[i])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
