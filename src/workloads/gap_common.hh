/**
 * @file
 * Shared helpers for the GAP kernels.
 *
 * Footprint note: the paper's graphs have 3-134M nodes, so per-node
 * arrays (dist, comp, ranks, ...) are far larger than the 8 MB LLC.
 * Our scaled graphs have ~128K nodes; to preserve the defining
 * property -- indirect per-node accesses miss the LLC -- per-node
 * arrays use a 128-byte slot per node (a padded node record), giving
 * them the same >LLC footprint at laptop-scale node counts. Edge
 * arrays stay packed u64 (the striding access DVR keys on).
 */

#ifndef DVR_WORKLOADS_GAP_COMMON_HH
#define DVR_WORKLOADS_GAP_COMMON_HH

#include "graph/csr_graph.hh"
#include "graph/generators.hh"
#include "workloads/workload.hh"

namespace dvr {

class SimMemory;

/** log2 bytes per node slot in per-node arrays (128-byte records). */
inline constexpr int kNodeSlotShift = 7;
inline constexpr uint64_t kNodeSlotBytes = 1ULL << kNodeSlotShift;

/** Build the named graph input at the requested scale shift. */
CsrGraph buildInputGraph(SimMemory &mem, const WorkloadParams &p);

/** Allocate a per-node array (one slot per node), zero-initialized. */
Addr allocNodeArray(SimMemory &mem, uint64_t num_nodes);

/** Element access helpers for per-node arrays. */
uint64_t readNode(const SimMemory &mem, Addr base, uint64_t v);
void writeNode(SimMemory &mem, Addr base, uint64_t v, uint64_t x);

/**
 * Wire the BFS kernel onto an existing graph (shared by `bfs` and
 * `graph500`, which is BFS on a Graph500-style Kronecker input).
 */
Workload makeBfsWorkload(SimMemory &mem, CsrGraph g,
                         const std::string &name,
                         const std::string &desc);

} // namespace dvr

#endif // DVR_WORKLOADS_GAP_COMMON_HH
