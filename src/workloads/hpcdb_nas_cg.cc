/**
 * @file
 * NAS-CG inner kernel: CSR sparse matrix-vector product with short,
 * data-dependent row lengths -- the case where loop-bound inference
 * and Nested Vector Runahead matter most (rows are far shorter than
 * the 128-lane target).
 */

#include "workloads/registry.hh"

#include <bit>

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;

} // namespace

Workload
makeNasCg(SimMemory &mem, const WorkloadParams &p)
{
    const unsigned s = p.scaleShift > 10 ? 6 : 17 - p.scaleShift;
    const uint64_t rows = 1ULL << s;
    const uint64_t cols = rows * 2;
    Rng rng(p.seed ^ 0xC6);

    // Row lengths 4..19: short inner loops.
    std::vector<uint64_t> offs(rows + 1, 0);
    for (uint64_t r = 0; r < rows; ++r)
        offs[r + 1] = offs[r] + 4 + rng.nextBelow(16);
    const uint64_t nnz = offs[rows];
    std::vector<uint64_t> col(nnz);
    std::vector<uint64_t> val(nnz);
    for (uint64_t i = 0; i < nnz; ++i) {
        col[i] = rng.nextBelow(cols);
        val[i] = std::bit_cast<uint64_t>(1.0 + double(rng.nextBelow(7)));
    }
    std::vector<uint64_t> xv(cols);
    for (auto &x : xv)
        x = std::bit_cast<uint64_t>(double(rng.nextBelow(100)) * 0.25);

    SimArray offs_a = makeArray(mem, offs);
    SimArray col_a = makeArray(mem, col);
    SimArray val_a = makeArray(mem, val);
    const Addr x_base = mem.alloc(cols << kSlotShift);
    for (uint64_t i = 0; i < cols; ++i)
        mem.write(x_base + (i << kSlotShift), 8, xv[i]);
    const Addr y_base = mem.alloc(rows << kSlotShift);

    // Golden model: identical FP operation order (bit-exact).
    std::vector<uint64_t> y_gold(rows);
    for (uint64_t r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (uint64_t j = offs[r]; j < offs[r + 1]; ++j) {
            sum += std::bit_cast<double>(val[j]) *
                   std::bit_cast<double>(xv[col[j]]);
        }
        y_gold[r] = std::bit_cast<uint64_t>(sum);
    }

    // Registers: r0 offs, r1 cols, r2 vals, r3 x, r5 y, r6 row,
    // r7 j, r8 jEnd, r9 c, r10 t, r11 addr, r12 sum, r13 rows,
    // r14 v, r15 pv.
    ProgramBuilder b;
    b.li(0, int64_t(offs_a.base)).li(1, int64_t(col_a.base))
        .li(2, int64_t(val_a.base)).li(3, int64_t(x_base))
        .li(5, int64_t(y_base)).li(13, int64_t(rows)).li(6, 0);
    b.label("row")
        .shli(11, 6, 3).add(11, 0, 11)
        .ld(7, 11)                      // j = offs[row]
        .ld(8, 11, 8)                   // jEnd
        .li(12, 0)                      // sum = 0.0
        .cmpltu(10, 7, 8)
        .beqz(10, "store");
    b.label("inner")
        .shli(11, 7, 3).add(11, 1, 11)
        .ld(9, 11)                      // c = col[j]  (strider)
        .shli(11, 9, kSlotShift).add(11, 3, 11)
        .ld(14, 11)                     // v = x[c]    (FLR)
        .shli(11, 7, 3).add(11, 2, 11)
        .ld(15, 11)                     // pv = val[j]
        .fmul(14, 15, 14)
        .fadd(12, 12, 14)               // sum += pv * v
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "inner");
    b.label("store")
        .shli(11, 6, kSlotShift).add(11, 5, 11)
        .st(11, 0, 12)                  // y[row] = sum
        .addi(6, 6, 1)
        .cmpltu(10, 6, 13)
        .bnez(10, "row")
        .halt();

    Workload w;
    w.name = "nas_cg";
    w.description = "CSR SpMV with short data-dependent rows (NAS CG)";
    w.program = b.build();
    w.fullRunInsts = 12 * nnz + 12 * rows + 8;
    w.verify = [y_gold = std::move(y_gold), y_base,
                rows](const SimMemory &m) {
        for (uint64_t r = 0; r < rows; ++r) {
            if (m.read(y_base + (r << kSlotShift), 8) != y_gold[r])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
