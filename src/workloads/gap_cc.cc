/**
 * @file
 * Connected components via label propagation (Shiloach-Vishkin style
 * sweeps, as in GAP's cc). Sweeps over all vertices in order (the
 * offsets loads stride), walks each edge list (striding load), and
 * lowers the destination's component label (indirect load + divergent
 * conditional store).
 */

#include "workloads/gap_common.hh"

#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/registry.hh"

namespace dvr {

namespace {

/** Golden model: identical sweep schedule as the kernel. */
std::vector<uint64_t>
goldenCc(const CsrGraph &g, unsigned sweeps)
{
    std::vector<uint64_t> comp(g.numNodes);
    for (uint64_t v = 0; v < g.numNodes; ++v)
        comp[v] = v;
    for (unsigned s = 0; s < sweeps; ++s) {
        for (uint64_t u = 0; u < g.numNodes; ++u) {
            for (uint64_t e = g.hOffsets[u]; e < g.hOffsets[u + 1];
                 ++e) {
                const uint64_t v = g.hEdges[e];
                if (comp[u] < comp[v])
                    comp[v] = comp[u];
                else if (comp[v] < comp[u])
                    comp[u] = comp[v];
            }
        }
    }
    return comp;
}

/**
 * Registers:
 *   r0 sweep   r1 nSweeps r2 u       r3 offBase r4 edgeBase
 *   r5 compBase r6 cu     r7 e       r8 eEnd    r9 dst
 *   r10 t      r11 addr   r12 cv     r13 nNodes r15 addrU
 */
Program
emitCc(Addr off, Addr edges, Addr comp, uint64_t n, unsigned sweeps)
{
    ProgramBuilder b;
    b.li(3, int64_t(off)).li(4, int64_t(edges)).li(5, int64_t(comp))
        .li(13, int64_t(n)).li(0, 0).li(1, int64_t(sweeps));

    b.label("sweep")
        .li(2, 0);
    b.label("vertex")
        .shli(11, 2, 3).add(11, 3, 11)
        .ld(7, 11)                      // e = offsets[u]
        .ld(8, 11, 8)                   // eEnd
        .shli(15, 2, kNodeSlotShift).add(15, 5, 15)
        .ld(6, 15)                      // cu = comp[u]
        .cmpltu(10, 7, 8)
        .beqz(10, "next_vertex");
    b.label("edge")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // dst = edges[e]  (strider)
        .shli(11, 9, kNodeSlotShift).add(11, 5, 11)
        .ld(12, 11)                     // cv = comp[dst]  (FLR)
        .cmpltu(10, 6, 12)              // cu < cv ?
        .beqz(10, "try_up")
        .st(11, 0, 6)                   // comp[dst] = cu
        .jmp("edge_next");
    b.label("try_up")
        .cmpltu(10, 12, 6)              // cv < cu ?
        .beqz(10, "edge_next")
        .mov(6, 12)                     // cu = cv
        .st(15, 0, 6);                  // comp[u] = cu
    b.label("edge_next")
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "edge");
    b.label("next_vertex")
        .addi(2, 2, 1)
        .cmpltu(10, 2, 13)
        .bnez(10, "vertex")
        .addi(0, 0, 1)
        .cmpltu(10, 0, 1)
        .bnez(10, "sweep")
        .halt();
    return b.build();
}

} // namespace

Workload
makeCc(SimMemory &mem, const WorkloadParams &p)
{
    CsrGraph g = buildInputGraph(mem, p);
    const Addr comp = allocNodeArray(mem, g.numNodes);
    for (uint64_t v = 0; v < g.numNodes; ++v)
        writeNode(mem, comp, v, v);

    const unsigned sweeps = 2;
    auto golden = goldenCc(g, sweeps);

    Workload w;
    w.name = "cc";
    w.description = "GAP connected components (label propagation)";
    w.program = emitCc(g.offsets, g.edges, comp, g.numNodes, sweeps);
    w.fullRunInsts =
        sweeps * (14 * g.numEdges + 12 * g.numNodes) + 8;
    w.verify = [golden = std::move(golden), comp,
                n = g.numNodes](const SimMemory &m) {
        for (uint64_t v = 0; v < n; ++v) {
            if (readNode(m, comp, v) != golden[v])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
