/**
 * @file
 * Kangaroo: a three-level index chase with a data-dependent branch on
 * the second hop (odd values take an extra table lookup), exercising
 * per-lane divergence along a deep chain.
 */

#include "workloads/registry.hh"

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;

} // namespace

Workload
makeKangaroo(SimMemory &mem, const WorkloadParams &p)
{
    const unsigned s = p.scaleShift > 10 ? 7 : 18 - p.scaleShift;
    const uint64_t slots = 1ULL << s;
    const uint64_t mask = slots - 1;
    const uint64_t n = slots * 4;

    SimArray a = makeArray(mem, randomValues(n, 0, p.seed ^ 0x71));
    auto bv = randomValues(slots, 0, p.seed ^ 0x72);
    auto cv = randomValues(slots, 0, p.seed ^ 0x73);
    auto dv = randomValues(slots, 0, p.seed ^ 0x74);
    const Addr b_t = mem.alloc(slots << kSlotShift);
    const Addr c_t = mem.alloc(slots << kSlotShift);
    const Addr d_t = mem.alloc(slots << kSlotShift);
    for (uint64_t i = 0; i < slots; ++i) {
        mem.write(b_t + (i << kSlotShift), 8, bv[i]);
        mem.write(c_t + (i << kSlotShift), 8, cv[i]);
        mem.write(d_t + (i << kSlotShift), 8, dv[i]);
    }
    const Addr acc_addr = mem.alloc(8);

    uint64_t acc_gold = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t x = a.host[i];
        const uint64_t y = bv[x & mask];
        const uint64_t z = cv[y & mask];
        acc_gold += (z & 1) ? dv[z & mask] : z;
    }

    // Registers: r0 A, r1 B, r2 C, r5 D, r3 i, r4 n, r6 x,
    // r9 acc, r10 t, r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(a.base)).li(1, int64_t(b_t)).li(2, int64_t(c_t))
        .li(5, int64_t(d_t)).li(3, 0).li(4, int64_t(n)).li(9, 0)
        .li(12, int64_t(acc_addr));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11)                      // x = A[i]   (strider)
        .andi(7, 6, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 1, 11)
        .ld(6, 11)                      // y = B[...]
        .andi(7, 6, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 2, 11)
        .ld(6, 11)                      // z = C[...]
        .andi(10, 6, 1)
        .beqz(10, "even")               // divergent branch
        .andi(7, 6, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 5, 11)
        .ld(6, 11);                     // w = D[...]  (extra hop)
    b.label("even")
        .add(9, 9, 6)                   // acc += value
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .st(12, 0, 9)
        .halt();

    Workload w;
    w.name = "kangaroo";
    w.description = "three-level index chase with divergent extra hop";
    w.program = b.build();
    w.fullRunInsts = 18 * n + 10;
    w.verify = [acc_gold, acc_addr](const SimMemory &m) {
        return m.read(acc_addr, 8) == acc_gold;
    };
    return w;
}

} // namespace dvr
