/**
 * @file
 * PageRank (GAP pr), pull direction, in 16.16 fixed point so the
 * golden model matches bit-exactly. The inner loop gathers neighbour
 * contributions: edges[e] strides, contrib[u] is the dependent
 * indirect load. No divergence inside the inner loop -- pr is the
 * control-regular contrast to bfs/sssp in the evaluation.
 */

#include "workloads/gap_common.hh"

#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/registry.hh"

namespace dvr {

namespace {

constexpr int kFixShift = 16;
constexpr uint64_t kOne = 1ULL << kFixShift;
/** damping = 0.85 in fixed point */
constexpr uint64_t kAlpha = (85 * kOne) / 100;

/** Golden model with the identical fixed-point schedule. */
void
goldenPr(const CsrGraph &g, unsigned iters,
         std::vector<uint64_t> &contrib, std::vector<uint64_t> &rank)
{
    const uint64_t n = g.numNodes;
    const uint64_t base = ((kOne - kAlpha)) / n + 1;
    contrib.assign(n, 0);
    rank.assign(n, 0);
    for (uint64_t v = 0; v < n; ++v) {
        const uint64_t deg = g.degree(v);
        rank[v] = kOne / n + 1;
        contrib[v] = deg ? rank[v] / deg : 0;
    }
    for (unsigned it = 0; it < iters; ++it) {
        for (uint64_t v = 0; v < n; ++v) {
            uint64_t sum = 0;
            for (uint64_t e = g.hOffsets[v]; e < g.hOffsets[v + 1];
                 ++e) {
                sum += contrib[g.hEdges[e]];
            }
            rank[v] = base + ((kAlpha * sum) >> kFixShift);
        }
        for (uint64_t v = 0; v < n; ++v) {
            const uint64_t deg = g.degree(v);
            contrib[v] = deg ? rank[v] / deg : 0;
        }
    }
}

/**
 * Registers:
 *   r0 iter    r1 nIters  r2 v       r3 offBase  r4 edgeBase
 *   r5 contrib r6 rank    r7 e       r8 eEnd     r9 u
 *   r10 t      r11 addr   r12 sum    r13 n       r14 alpha  r15 base
 */
Program
emitPr(Addr off, Addr edges, Addr contrib, Addr rank, uint64_t n,
       unsigned iters, uint64_t base_rank)
{
    ProgramBuilder b;
    b.li(3, int64_t(off)).li(4, int64_t(edges))
        .li(5, int64_t(contrib)).li(6, int64_t(rank))
        .li(13, int64_t(n)).li(14, int64_t(kAlpha))
        .li(15, int64_t(base_rank)).li(0, 0).li(1, int64_t(iters));

    b.label("iter")
        .li(2, 0);
    b.label("vertex")
        .shli(11, 2, 3).add(11, 3, 11)
        .ld(7, 11)                      // e = offsets[v]
        .ld(8, 11, 8)                   // eEnd
        .li(12, 0)                      // sum = 0
        .cmpltu(10, 7, 8)
        .beqz(10, "store_rank");
    b.label("edge")
        .shli(11, 7, 3).add(11, 4, 11)
        .ld(9, 11)                      // u = edges[e]   (strider)
        .shli(11, 9, kNodeSlotShift).add(11, 5, 11)
        .ld(10, 11)                     // contrib[u]     (FLR)
        .add(12, 12, 10)                // sum += contrib[u]
        .addi(7, 7, 1)
        .cmpltu(10, 7, 8)
        .bnez(10, "edge");
    b.label("store_rank")
        .mul(10, 12, 14)
        .shri(10, 10, kFixShift)
        .add(10, 10, 15)                // rank = base + a*sum
        .shli(11, 2, kNodeSlotShift).add(11, 6, 11)
        .st(11, 0, 10)
        .addi(2, 2, 1)
        .cmpltu(10, 2, 13)
        .bnez(10, "vertex");

    // contrib[v] = rank[v] / degree(v)
    b.li(2, 0);
    b.label("contrib_loop")
        .shli(11, 2, 3).add(11, 3, 11)
        .ld(7, 11)
        .ld(8, 11, 8)
        .sub(8, 8, 7)                   // deg
        .shli(11, 2, kNodeSlotShift)
        .add(10, 6, 11)
        .ld(10, 10)                     // rank[v]
        .beqz(8, "zero_deg")
        .divu(10, 10, 8)
        .jmp("store_contrib");
    b.label("zero_deg")
        .li(10, 0);
    b.label("store_contrib")
        .add(11, 5, 11)
        .st(11, 0, 10)
        .addi(2, 2, 1)
        .cmpltu(10, 2, 13)
        .bnez(10, "contrib_loop")
        .addi(0, 0, 1)
        .cmpltu(10, 0, 1)
        .bnez(10, "iter")
        .halt();
    return b.build();
}

} // namespace

Workload
makePr(SimMemory &mem, const WorkloadParams &p)
{
    CsrGraph g = buildInputGraph(mem, p);
    const uint64_t n = g.numNodes;
    const Addr contrib = allocNodeArray(mem, n);
    const Addr rank = allocNodeArray(mem, n);
    const uint64_t base_rank = (kOne - kAlpha) / n + 1;

    // Initial state matches the golden model's first lines.
    for (uint64_t v = 0; v < n; ++v) {
        const uint64_t deg = g.degree(v);
        const uint64_t r0 = kOne / n + 1;
        writeNode(mem, rank, v, r0);
        writeNode(mem, contrib, v, deg ? r0 / deg : 0);
    }

    const unsigned iters = 2;
    std::vector<uint64_t> gold_contrib, gold_rank;
    goldenPr(g, iters, gold_contrib, gold_rank);

    Workload w;
    w.name = "pr";
    w.description = "GAP PageRank (pull, fixed point)";
    w.program = emitPr(g.offsets, g.edges, contrib, rank, n, iters,
                       base_rank);
    w.fullRunInsts = iters * (8 * g.numEdges + 30 * n) + 12;
    w.verify = [gr = std::move(gold_rank), gc = std::move(gold_contrib),
                rank, contrib, n](const SimMemory &m) {
        for (uint64_t v = 0; v < n; ++v) {
            if (readNode(m, rank, v) != gr[v] ||
                readNode(m, contrib, v) != gc[v]) {
                return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace dvr
