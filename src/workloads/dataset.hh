/**
 * @file
 * Shared data-set construction helpers for the hpc-db kernels: arrays
 * of 64-bit values in simulated memory with host-side mirrors.
 */

#ifndef DVR_WORKLOADS_DATASET_HH
#define DVR_WORKLOADS_DATASET_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dvr {

class SimMemory;

/** A u64 array present both in simulated memory and host-side. */
struct SimArray
{
    Addr base = 0;
    std::vector<uint64_t> host;

    uint64_t size() const { return host.size(); }
};

/** Allocate + fill an array from host values. */
SimArray makeArray(SimMemory &mem, std::vector<uint64_t> values);

/** Allocate a zero-filled array of n u64 elements. */
SimArray makeZeroArray(SimMemory &mem, uint64_t n);

/** n uniform random u64 values below `bound` (bound==0: full range). */
std::vector<uint64_t> randomValues(uint64_t n, uint64_t bound,
                                   uint64_t seed);

/** Read back a u64 array from simulated memory. */
std::vector<uint64_t> readArray(const SimMemory &mem, Addr base,
                                uint64_t n);

} // namespace dvr

#endif // DVR_WORKLOADS_DATASET_HH
