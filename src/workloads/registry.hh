/**
 * @file
 * Workload registry: name -> factory for all 13 benchmarks (GAP graph
 * kernels plus the hpc-db set), mirroring the paper's Section 5.
 */

#ifndef DVR_WORKLOADS_REGISTRY_HH
#define DVR_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace dvr {

// GAP kernels (parameterized by graph input).
Workload makeBfs(SimMemory &mem, const WorkloadParams &p);
Workload makeBc(SimMemory &mem, const WorkloadParams &p);
Workload makeCc(SimMemory &mem, const WorkloadParams &p);
Workload makePr(SimMemory &mem, const WorkloadParams &p);
Workload makeSssp(SimMemory &mem, const WorkloadParams &p);

// hpc-db kernels.
Workload makeCamel(SimMemory &mem, const WorkloadParams &p);
Workload makeGraph500(SimMemory &mem, const WorkloadParams &p);
Workload makeHj2(SimMemory &mem, const WorkloadParams &p);
Workload makeHj8(SimMemory &mem, const WorkloadParams &p);
Workload makeKangaroo(SimMemory &mem, const WorkloadParams &p);
Workload makeNasCg(SimMemory &mem, const WorkloadParams &p);
Workload makeNasIs(SimMemory &mem, const WorkloadParams &p);
Workload makeRandomAccess(SimMemory &mem, const WorkloadParams &p);

/** Factory lookup by name (bfs, bc, cc, pr, sssp, camel, ...). */
WorkloadFactory workloadFactory(const std::string &name);

/** Names of the five GAP kernels. */
const std::vector<std::string> &gapKernels();

/** Names of the eight hpc-db kernels. */
const std::vector<std::string> &hpcdbKernels();

/** All 13 kernel names. */
std::vector<std::string> allKernels();

/**
 * All benchmark-input combinations of the evaluation: each GAP kernel
 * on each of the five graphs, plus each hpc-db kernel once. Returns
 * (kernel, input) pairs; input is empty for hpc-db.
 */
std::vector<std::pair<std::string, std::string>> benchmarkMatrix();

} // namespace dvr

#endif // DVR_WORKLOADS_REGISTRY_HH
