/**
 * @file
 * Camel: the paper's Figure-1 pattern, C[hash(B[hash(A[i])])]++ -- a
 * sequential key stream driving a two-level dependent hash chain into
 * tables far larger than the LLC.
 */

#include "workloads/registry.hh"

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;   ///< 64-byte table slots

uint64_t
tableSlots(unsigned scale_shift)
{
    const unsigned s = scale_shift > 10 ? 7 : 18 - scale_shift;
    return 1ULL << s;
}

} // namespace

Workload
makeCamel(SimMemory &mem, const WorkloadParams &p)
{
    const uint64_t slots = tableSlots(p.scaleShift);
    const uint64_t mask = slots - 1;
    const uint64_t n = slots * 8;

    SimArray a = makeArray(mem, randomValues(n, 0, p.seed ^ 0xCA));
    SimArray bt = makeArray(
        mem, randomValues(slots, 0, p.seed ^ 0xCB));
    // Padded 64-byte slots: re-layout B and C at one value per slot.
    const Addr b_base = mem.alloc(slots << kSlotShift);
    const Addr c_base = mem.alloc(slots << kSlotShift);
    for (uint64_t i = 0; i < slots; ++i)
        mem.write(b_base + (i << kSlotShift), 8, bt.host[i]);

    // Golden model.
    std::vector<uint64_t> c_gold(slots, 0);
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t h1 = kernelHash(a.host[i]) & mask;
        const uint64_t h2 = kernelHash(bt.host[h1]) & mask;
        ++c_gold[h2];
    }

    // Registers: r0 A, r1 B, r2 C, r3 i, r4 n, r6 a, r7 h, r8 b,
    // r10 t, r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(a.base)).li(1, int64_t(b_base))
        .li(2, int64_t(c_base)).li(3, 0).li(4, int64_t(n));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11)                      // a = A[i]   (strider)
        .hash(7, 6)
        .andi(7, 7, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 1, 11)
        .ld(8, 11)                      // b = B[h1]
        .hash(7, 8)
        .andi(7, 7, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 2, 11)
        .ld(10, 11)                     // c = C[h2]  (FLR)
        .addi(10, 10, 1)
        .st(11, 0, 10)                  // C[h2]++
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .halt();

    Workload w;
    w.name = "camel";
    w.description = "two-level dependent hash chain (Figure 1)";
    w.program = b.build();
    w.fullRunInsts = 15 * n + 8;
    w.verify = [c_gold = std::move(c_gold), c_base,
                slots](const SimMemory &m) {
        for (uint64_t i = 0; i < slots; ++i) {
            if (m.read(c_base + (i << kSlotShift), 8) != c_gold[i])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
