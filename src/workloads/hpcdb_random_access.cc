/**
 * @file
 * RandomAccess (HPCC GUPS, precomputed-index variant as used by the
 * software-prefetching literature): table[I[i] & mask] ^= I[i].
 */

#include "workloads/registry.hh"

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/sim_memory.hh"
#include "workloads/dataset.hh"

namespace dvr {

namespace {

constexpr int kSlotShift = 6;

} // namespace

Workload
makeRandomAccess(SimMemory &mem, const WorkloadParams &p)
{
    const unsigned s = p.scaleShift > 10 ? 7 : 18 - p.scaleShift;
    const uint64_t slots = 1ULL << s;
    const uint64_t mask = slots - 1;
    const uint64_t n = slots * 4;

    SimArray idx = makeArray(mem, randomValues(n, 0, p.seed ^ 0x6A));
    const Addr table = mem.alloc(slots << kSlotShift);

    std::vector<uint64_t> gold(slots, 0);
    for (uint64_t i = 0; i < n; ++i)
        gold[idx.host[i] & mask] ^= idx.host[i];

    // Registers: r0 I, r1 table, r3 i, r4 n, r6 v, r7 h, r10 t,
    // r11 addr.
    ProgramBuilder b;
    b.li(0, int64_t(idx.base)).li(1, int64_t(table)).li(3, 0)
        .li(4, int64_t(n));
    b.label("loop")
        .shli(11, 3, 3).add(11, 0, 11)
        .ld(6, 11)                      // v = I[i]      (strider)
        .andi(7, 6, int64_t(mask))
        .shli(11, 7, kSlotShift).add(11, 1, 11)
        .ld(10, 11)                     // t = table[h]  (FLR)
        .xor_(10, 10, 6)
        .st(11, 0, 10)                  // table[h] ^= v
        .addi(3, 3, 1)
        .cmpltu(10, 3, 4)
        .bnez(10, "loop")
        .halt();

    Workload w;
    w.name = "random_access";
    w.description = "HPCC RandomAccess (GUPS) with index stream";
    w.program = b.build();
    w.fullRunInsts = 11 * n + 6;
    w.verify = [gold = std::move(gold), table, slots,
                mask](const SimMemory &m) {
        (void)mask;
        for (uint64_t i = 0; i < slots; ++i) {
            if (m.read(table + (i << kSlotShift), 8) != gold[i])
                return false;
        }
        return true;
    };
    return w;
}

} // namespace dvr
