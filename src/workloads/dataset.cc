#include "workloads/dataset.hh"

#include "common/rng.hh"
#include "mem/sim_memory.hh"

namespace dvr {

SimArray
makeArray(SimMemory &mem, std::vector<uint64_t> values)
{
    SimArray a;
    a.host = std::move(values);
    a.base = mem.alloc(std::max<uint64_t>(a.host.size(), 1) * 8);
    for (uint64_t i = 0; i < a.host.size(); ++i)
        mem.write64(a.base, i, a.host[i]);
    return a;
}

SimArray
makeZeroArray(SimMemory &mem, uint64_t n)
{
    SimArray a;
    a.host.assign(n, 0);
    a.base = mem.alloc(std::max<uint64_t>(n, 1) * 8);
    return a;    // simulated memory is zero-initialized
}

std::vector<uint64_t>
randomValues(uint64_t n, uint64_t bound, uint64_t seed)
{
    std::vector<uint64_t> v(n);
    Rng rng(seed);
    for (auto &x : v)
        x = bound == 0 ? rng.next() : rng.nextBelow(bound);
    return v;
}

std::vector<uint64_t>
readArray(const SimMemory &mem, Addr base, uint64_t n)
{
    std::vector<uint64_t> v(n);
    for (uint64_t i = 0; i < n; ++i)
        v[i] = mem.read64(base, i);
    return v;
}

} // namespace dvr
