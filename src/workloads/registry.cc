#include "workloads/registry.hh"

#include "common/log.hh"

namespace dvr {

WorkloadFactory
workloadFactory(const std::string &name)
{
    if (name == "bfs")
        return &makeBfs;
    if (name == "bc")
        return &makeBc;
    if (name == "cc")
        return &makeCc;
    if (name == "pr")
        return &makePr;
    if (name == "sssp")
        return &makeSssp;
    if (name == "camel")
        return &makeCamel;
    if (name == "graph500")
        return &makeGraph500;
    if (name == "hj2")
        return &makeHj2;
    if (name == "hj8")
        return &makeHj8;
    if (name == "kangaroo")
        return &makeKangaroo;
    if (name == "nas_cg")
        return &makeNasCg;
    if (name == "nas_is")
        return &makeNasIs;
    if (name == "random_access")
        return &makeRandomAccess;
    fatal("workloadFactory: unknown workload '" + name + "'");
}

const std::vector<std::string> &
gapKernels()
{
    static const std::vector<std::string> k = {"bc", "bfs", "cc", "pr",
                                               "sssp"};
    return k;
}

const std::vector<std::string> &
hpcdbKernels()
{
    static const std::vector<std::string> k = {
        "camel", "graph500", "hj2", "hj8",
        "kangaroo", "nas_cg", "nas_is", "random_access"};
    return k;
}

std::vector<std::string>
allKernels()
{
    std::vector<std::string> v = gapKernels();
    for (const auto &k : hpcdbKernels())
        v.push_back(k);
    return v;
}

std::vector<std::pair<std::string, std::string>>
benchmarkMatrix()
{
    std::vector<std::pair<std::string, std::string>> m;
    static const char *inputs[] = {"KR", "LJN", "ORK", "TW", "UR"};
    for (const auto &k : gapKernels()) {
        for (const char *in : inputs)
            m.emplace_back(k, in);
    }
    for (const auto &k : hpcdbKernels())
        m.emplace_back(k, "");
    return m;
}

} // namespace dvr
