#include "common/stats.hh"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace dvr {

namespace {

bool
strictDefault()
{
#ifndef NDEBUG
    return true;
#else
    const char *e = std::getenv("DVR_STRICT_STATS");
    return e && (e[0] == '1' || e[0] == 't' || e[0] == 'T');
#endif
}

/** Process-wide strict flag; configured before worker threads run. */
std::atomic<bool> g_strict{strictDefault()};

} // namespace

void
StatSet::setStrict(bool on)
{
    g_strict.store(on, std::memory_order_relaxed);
}

bool
StatSet::strict()
{
    return g_strict.load(std::memory_order_relaxed);
}

void
StatSet::add(const std::string &name, double v)
{
    vals_[name] += v;
}

void
StatSet::set(const std::string &name, double v)
{
    vals_[name] = v;
}

double
StatSet::get(const std::string &name) const
{
    auto it = vals_.find(name);
    if (it == vals_.end()) {
        panicIf(strict(),
                "StatSet: read of unregistered stat '" + name +
                    "' (misspelled? use getOr() for optional stats)");
        return 0.0;
    }
    return it->second;
}

double
StatSet::getOr(const std::string &name, double fallback) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? fallback : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return vals_.count(name) != 0;
}

void
StatSet::merge(const std::string &prefix, const StatSet &other)
{
    for (const auto &[k, v] : other.vals_)
        vals_[prefix + k] = v;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : vals_)
        os << k << " " << v << "\n";
    return os.str();
}

std::string
StatSet::toJson(int indent) const
{
    std::ostringstream os;
    const std::string pad(static_cast<size_t>(indent), ' ');
    os << "{\n";
    bool first = true;
    for (const auto &[k, v] : vals_) {
        if (!first)
            os << ",\n";
        first = false;
        os << pad << "\"" << k << "\": " << v;
    }
    os << "\n}\n";
    return os.str();
}

std::string
StatSet::toCsv() const
{
    std::ostringstream os;
    os << "stat,value\n";
    for (const auto &[k, v] : vals_)
        os << k << "," << v << "\n";
    return os.str();
}

double
harmonicMean(const std::vector<double> &xs)
{
    double inv = 0.0;
    size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            inv += 1.0 / x;
            ++n;
        }
    }
    return n == 0 ? 0.0 : static_cast<double>(n) / inv;
}

double
geometricMean(const std::vector<double> &xs)
{
    double logsum = 0.0;
    size_t n = 0;
    for (double x : xs) {
        if (x > 0.0) {
            logsum += std::log(x);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(logsum / static_cast<double>(n));
}

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

} // namespace dvr
