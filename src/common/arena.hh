/**
 * @file
 * Per-thread bump/arena allocator for per-run simulator state.
 *
 * Every detailed or sampled run allocates a pile of POD arrays whose
 * lifetime is exactly the run: cache tag/metadata arrays, MSHR heaps,
 * ROB/LSQ rings, store-forward tables, predictor tables, subthread
 * lane buffers. Allocating them from the general-purpose heap costs a
 * malloc/free pair plus fresh-page faults per run, multiplied by the
 * hundreds of sweep points a figure reproduction runs. The arena
 * replaces that with bump allocation out of a chain of large blocks
 * that are NEVER returned between runs: a sweep worker thread pays the
 * mmap/fault cost once and every later run reuses the same hot pages.
 *
 * Contract: arena memory is reclaimed wholesale by rewind()/reset()
 * without running destructors, so only trivially-destructible types
 * may live in it (allocArray enforces this at compile time). Blocks
 * are retained across reset() — an epoch bump plus cursor rewind —
 * which is what makes a thousand-point sweep O(1) heap allocations
 * per point after warmup.
 *
 * Two layers of accounting:
 *  - per-instance counters (allocCount / liveBytes / highWater) feed
 *    the per-run `core.arena.*` stats block;
 *  - process-wide relaxed atomics (ArenaProcessStats, snapshot +
 *    since() delta in the CowMemStats idiom) feed the bench-level
 *    "arena" cost-accounting block across all worker threads.
 */

#ifndef DVR_COMMON_ARENA_HH
#define DVR_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace dvr {

/** Process-wide arena counters; snapshot and diff with since(). */
struct ArenaProcessStats {
    uint64_t allocCalls = 0;     ///< alloc() calls, all threads
    uint64_t bytesServed = 0;    ///< sum of requested bytes
    uint64_t blocks = 0;         ///< heap blocks ever allocated
    uint64_t blockBytes = 0;     ///< heap bytes reserved in blocks
    uint64_t resets = 0;         ///< reset() calls (sweep points)
    uint64_t highWater = 0;      ///< max per-arena liveBytes, any thread

    /**
     * Delta of this snapshot relative to an earlier one. Counters
     * subtract; highWater is a watermark, not a counter, so the
     * current (absolute) value carries through.
     */
    ArenaProcessStats since(const ArenaProcessStats &base) const
    {
        ArenaProcessStats d;
        d.allocCalls = allocCalls - base.allocCalls;
        d.bytesServed = bytesServed - base.bytesServed;
        d.blocks = blocks - base.blocks;
        d.blockBytes = blockBytes - base.blockBytes;
        d.resets = resets - base.resets;
        d.highWater = highWater;
        return d;
    }
};

class Arena
{
  public:
    static constexpr std::size_t kDefaultBlockBytes = std::size_t(1) << 20;

    explicit Arena(std::size_t block_bytes = kDefaultBlockBytes);
    ~Arena();
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Bump-allocate `bytes` at the given power-of-two alignment. The
     * returned storage is NOT zeroed; use allocArray for typed,
     * zero-initialized arrays.
     */
    void *alloc(std::size_t bytes, std::size_t align);

    /**
     * Typed, zero-initialized array of `n` elements. Zeroing (rather
     * than default-construction) is deliberate: per-run structures are
     * designed so their value-initialized state IS the all-zero state
     * (Requester::kMain == 0, invalid tags written explicitly), which
     * keeps golden stats byte-identical to the heap representation.
     */
    template <typename T>
    T *allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without running "
                      "destructors; only trivially-destructible types "
                      "may live in it");
        void *p = alloc(n * sizeof(T), alignof(T));
        if (n != 0)
            std::memset(p, 0, n * sizeof(T));
        return static_cast<T *>(p);
    }

    /** Cursor snapshot for LIFO rewind (see ArenaFrame). */
    struct Mark {
        void *block = nullptr;
        std::size_t offset = 0;
        uint64_t liveBytes = 0;
    };

    Mark mark() const { return Mark{cur_, curOff_, liveBytes_}; }

    /** LIFO rewind to a prior mark; blocks are retained for reuse. */
    void rewind(const Mark &m);

    /**
     * Start a new epoch: rewind everything, keep every block. Panics
     * if an ArenaFrame is live — resetting under a frame would let the
     * frame's destructor resurrect a stale cursor.
     */
    void reset();

    uint64_t epoch() const { return epoch_; }
    /** Lifetime alloc() calls on this arena (monotone across resets). */
    uint64_t allocCount() const { return allocCount_; }
    /** Bytes currently live (since the last reset/rewind point). */
    uint64_t liveBytes() const { return liveBytes_; }
    /** Max liveBytes ever observed on this arena. */
    uint64_t highWater() const { return highWater_; }
    std::size_t blockCount() const;
    std::size_t reservedBytes() const;
    int frameDepth() const { return frameDepth_; }

    /** The calling thread's arena (one per worker thread, lazily built). */
    static Arena &forCurrentThread();

    /** Process-wide counters across every thread's arena. */
    static ArenaProcessStats processStats();

  private:
    friend class ArenaFrame;

    struct Block;

    /** Per-allocation accounting (instance + process counters). */
    void book(std::size_t bytes);

    /** Slow path: no live block fits; take a fresh or recycled block. */
    void *grow(std::size_t bytes, std::size_t align);

    Block *head_ = nullptr;      ///< first block of the chain
    Block *tail_ = nullptr;      ///< last block of the chain
    Block *cur_ = nullptr;       ///< block the bump cursor lives in
    std::size_t curOff_ = 0;     ///< bump offset within cur_'s data
    std::size_t blockBytes_;     ///< default block payload size
    uint64_t epoch_ = 0;
    uint64_t allocCount_ = 0;
    uint64_t liveBytes_ = 0;
    uint64_t highWater_ = 0;
    int frameDepth_ = 0;
};

/**
 * RAII mark/rewind scope. A run opens one frame, allocates everything
 * it needs, and the frame's destructor hands all of it back in O(1) —
 * the blocks stay warm for the next run on this thread.
 */
class ArenaFrame
{
  public:
    explicit ArenaFrame(Arena &arena) : arena_(arena), mark_(arena.mark())
    {
        ++arena_.frameDepth_;
    }

    ~ArenaFrame()
    {
        --arena_.frameDepth_;
        arena_.rewind(mark_);
    }

    ArenaFrame(const ArenaFrame &) = delete;
    ArenaFrame &operator=(const ArenaFrame &) = delete;

  private:
    Arena &arena_;
    Arena::Mark mark_;
};

} // namespace dvr

#endif // DVR_COMMON_ARENA_HH
