#include "common/rng.hh"

namespace dvr {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed)
{
    // Seed the four state words via splitmix64 as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    uint64_t sm = seed;
    for (auto &w : s_) {
        sm = splitmix64(sm);
        w = sm;
    }
    s_[0] |= 1;
}

} // namespace dvr
