#include "common/rng.hh"

#include "common/log.hh"

namespace dvr {

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed)
{
    // Seed the four state words via splitmix64 as recommended by the
    // xoshiro authors; guarantees a non-zero state.
    uint64_t sm = seed;
    for (auto &w : s_) {
        sm = splitmix64(sm);
        w = sm;
    }
    s_[0] |= 1;
}

static inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    panicIf(bound == 0, "Rng::nextBelow(0)");
    // Rejection-free multiply-shift reduction; bias is negligible for
    // the bounds we use (<< 2^32) and determinism is what matters.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace dvr
