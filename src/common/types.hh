/**
 * @file
 * Fundamental scalar types shared by every module in the simulator.
 */

#ifndef DVR_COMMON_TYPES_HH
#define DVR_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dvr {

/** Simulated core clock cycle. */
using Cycle = uint64_t;

/** Simulated byte address in the flat functional memory. */
using Addr = uint64_t;

/** Program counter: index of an instruction within a Program. */
using InstPc = uint32_t;

/** Architectural register identifier (0..kNumArchRegs-1). */
using RegId = uint8_t;

/** Number of architectural integer registers (the VTT is 16 bits). */
inline constexpr int kNumArchRegs = 16;

/** Cache-line size in bytes, used throughout the memory hierarchy. */
inline constexpr uint32_t kLineBytes = 64;

/** Sentinel for "no cycle"/"never". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid instruction PC. */
inline constexpr InstPc kInvalidPc = std::numeric_limits<InstPc>::max();

/** Align an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

} // namespace dvr

#endif // DVR_COMMON_TYPES_HH
