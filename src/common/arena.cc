#include "common/arena.hh"

#include <atomic>
#include <new>

#include "common/log.hh"

namespace dvr {

namespace {

// Process-wide accounting, shared by every thread's arena. Relaxed is
// sufficient: these are statistics counters read once per bench report,
// never used for synchronization.
std::atomic<uint64_t> gAllocCalls{0};
std::atomic<uint64_t> gBytesServed{0};
std::atomic<uint64_t> gBlocks{0};
std::atomic<uint64_t> gBlockBytes{0};
std::atomic<uint64_t> gResets{0};
std::atomic<uint64_t> gHighWater{0};

constexpr std::size_t kMaxAlign = alignof(std::max_align_t);

constexpr bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

/**
 * Block header, immediately followed by the payload. operator new
 * guarantees max_align_t alignment for the header, and kHeader is a
 * multiple of max_align, so the payload base is max_align-aligned too;
 * stricter alignments are produced by bumping within the payload.
 */
struct Arena::Block {
    Block *next = nullptr;
    std::size_t cap = 0;

    static constexpr std::size_t kHeader =
        (sizeof(void *) * 2 + kMaxAlign - 1) & ~(kMaxAlign - 1);

    unsigned char *data()
    {
        return reinterpret_cast<unsigned char *>(this) + kHeader;
    }
};

Arena::Arena(std::size_t block_bytes) : blockBytes_(block_bytes)
{
    panicIf(block_bytes == 0, "Arena: zero block size");
}

Arena::~Arena()
{
    Block *b = head_;
    while (b) {
        Block *next = b->next;
        ::operator delete(static_cast<void *>(b));
        b = next;
    }
}

void
Arena::book(std::size_t bytes)
{
    ++allocCount_;
    liveBytes_ += bytes;
    if (liveBytes_ > highWater_) {
        highWater_ = liveBytes_;
        uint64_t cur = gHighWater.load(std::memory_order_relaxed);
        while (cur < highWater_ &&
               !gHighWater.compare_exchange_weak(cur, highWater_,
                                                 std::memory_order_relaxed)) {
        }
    }
    gAllocCalls.fetch_add(1, std::memory_order_relaxed);
    gBytesServed.fetch_add(bytes, std::memory_order_relaxed);
}

void *
Arena::alloc(std::size_t bytes, std::size_t align)
{
    panicIf(!isPow2(align), "Arena::alloc: alignment must be a power of two");
    if (bytes == 0)
        bytes = 1;

    if (cur_) {
        auto base = reinterpret_cast<std::uintptr_t>(cur_->data());
        std::uintptr_t p = base + curOff_;
        std::uintptr_t aligned = (p + (align - 1)) & ~std::uintptr_t(align - 1);
        std::size_t end = static_cast<std::size_t>(aligned - base) + bytes;
        if (end <= cur_->cap) {
            curOff_ = end;
            book(bytes);
            return reinterpret_cast<void *>(aligned);
        }
    }
    return grow(bytes, align);
}

void *
Arena::grow(std::size_t bytes, std::size_t align)
{
    // Walk forward over recycled blocks (retained by an earlier
    // reset/rewind) looking for one that fits before reserving fresh
    // heap. Blocks skipped here stay idle until the next reset.
    Block *b = cur_ ? cur_->next : head_;
    while (b) {
        auto base = reinterpret_cast<std::uintptr_t>(b->data());
        std::uintptr_t aligned = (base + (align - 1)) & ~std::uintptr_t(align - 1);
        std::size_t end = static_cast<std::size_t>(aligned - base) + bytes;
        if (end <= b->cap) {
            cur_ = b;
            curOff_ = end;
            book(bytes);
            return reinterpret_cast<void *>(aligned);
        }
        b = b->next;
    }

    // Nothing recycled fits: append a fresh block at the tail. Payload
    // is padded by `align` so even a worst-case base can be aligned up.
    std::size_t cap = blockBytes_;
    if (bytes + align > cap)
        cap = bytes + align;
    void *raw = ::operator new(Block::kHeader + cap);
    // dvr-lint: allow(naked-new) placement header ctor; the arena owns its block chain and frees it in the destructor
    Block *blk = new (raw) Block;
    blk->cap = cap;
    if (tail_)
        tail_->next = blk;
    else
        head_ = blk;
    tail_ = blk;
    gBlocks.fetch_add(1, std::memory_order_relaxed);
    gBlockBytes.fetch_add(Block::kHeader + cap, std::memory_order_relaxed);

    cur_ = blk;
    auto base = reinterpret_cast<std::uintptr_t>(blk->data());
    std::uintptr_t aligned = (base + (align - 1)) & ~std::uintptr_t(align - 1);
    curOff_ = static_cast<std::size_t>(aligned - base) + bytes;
    book(bytes);
    return reinterpret_cast<void *>(aligned);
}

void
Arena::rewind(const Mark &m)
{
    if (m.block) {
        cur_ = static_cast<Block *>(m.block);
        curOff_ = m.offset;
    } else {
        // Mark predates the first block: recycle the whole chain.
        cur_ = head_;
        curOff_ = 0;
    }
    liveBytes_ = m.liveBytes;
}

void
Arena::reset()
{
    panicIf(frameDepth_ != 0,
            "Arena::reset under a live ArenaFrame: the frame's rewind "
            "would resurrect a stale cursor");
    ++epoch_;
    cur_ = head_;
    curOff_ = 0;
    liveBytes_ = 0;
    gResets.fetch_add(1, std::memory_order_relaxed);
}

std::size_t
Arena::blockCount() const
{
    std::size_t n = 0;
    for (Block *b = head_; b; b = b->next)
        ++n;
    return n;
}

std::size_t
Arena::reservedBytes() const
{
    std::size_t n = 0;
    for (Block *b = head_; b; b = b->next)
        n += b->cap;
    return n;
}

Arena &
Arena::forCurrentThread()
{
    static thread_local Arena arena;
    return arena;
}

ArenaProcessStats
Arena::processStats()
{
    ArenaProcessStats s;
    s.allocCalls = gAllocCalls.load(std::memory_order_relaxed);
    s.bytesServed = gBytesServed.load(std::memory_order_relaxed);
    s.blocks = gBlocks.load(std::memory_order_relaxed);
    s.blockBytes = gBlockBytes.load(std::memory_order_relaxed);
    s.resets = gResets.load(std::memory_order_relaxed);
    s.highWater = gHighWater.load(std::memory_order_relaxed);
    return s;
}

} // namespace dvr
