/**
 * @file
 * Lightweight named-statistics support plus the aggregation helpers
 * (harmonic mean, normalization) the evaluation benches use.
 */

#ifndef DVR_COMMON_STATS_HH
#define DVR_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvr {

/**
 * A flat, ordered collection of named scalar statistics. Components
 * expose their counters through one of these so tests and benches can
 * read any value by name without coupling to component internals.
 */
class StatSet
{
  public:
    /** Add (or create) a named counter. */
    void add(const std::string &name, double v);

    /** Overwrite a named value. */
    void set(const std::string &name, double v);

    /**
     * Read a value. A misspelled name silently reading as 0 has
     * repeatedly hidden broken figures, so in strict mode (tests and
     * debug builds) reading an unregistered stat panics; otherwise it
     * returns 0. Use getOr() for stats that are legitimately optional.
     */
    double get(const std::string &name) const;

    /** Read a value, falling back to `fallback` when absent. */
    double getOr(const std::string &name, double fallback) const;

    /**
     * Toggle strict mode process-wide. Defaults on in debug builds
     * (!NDEBUG) or when DVR_STRICT_STATS=1; the test binary turns it
     * on unconditionally.
     */
    static void setStrict(bool on);
    static bool strict();

    /** RAII strict-mode override (tests). */
    struct ScopedStrict
    {
        explicit ScopedStrict(bool on) : prev_(strict())
        {
            setStrict(on);
        }
        ~ScopedStrict() { setStrict(prev_); }
        ScopedStrict(const ScopedStrict &) = delete;
        ScopedStrict &operator=(const ScopedStrict &) = delete;

      private:
        bool prev_;
    };

    /** True when the stat exists. */
    bool has(const std::string &name) const;

    /** Merge all stats from another set, prefixing their names. */
    void merge(const std::string &prefix, const StatSet &other);

    /** All (name, value) pairs, sorted by name. */
    const std::map<std::string, double> &all() const { return vals_; }

    /** Render as "name value" lines. */
    std::string toString() const;

    /** Render as a flat JSON object (names are valid identifiers). */
    std::string toJson(int indent = 2) const;

    /** Render as a two-column CSV with a header row. */
    std::string toCsv() const;

  private:
    std::map<std::string, double> vals_;
};

/** Harmonic mean; ignores non-positive entries (they would be bugs). */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of positive values. */
double geometricMean(const std::vector<double> &xs);

/** Arithmetic mean. */
double arithmeticMean(const std::vector<double> &xs);

} // namespace dvr

#endif // DVR_COMMON_STATS_HH
