/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) and the
 * hash functions the workloads use. Simulation results must be exactly
 * reproducible across runs, so nothing here depends on global state.
 */

#ifndef DVR_COMMON_RNG_HH
#define DVR_COMMON_RNG_HH

#include <cstdint>

namespace dvr {

/**
 * xoshiro256** 1.0 generator. Small, fast, and deterministic; quality
 * is more than sufficient for synthetic data-set generation.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound), bound > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t s_[4];
};

/** splitmix64: used for seeding and as the workloads' hash function. */
uint64_t splitmix64(uint64_t x);

/**
 * The hash the Figure-1-style kernels (camel, hashjoin) compute in
 * simulated code; kept here so golden models match the ISA kernels.
 */
constexpr uint64_t
kernelHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace dvr

#endif // DVR_COMMON_RNG_HH
