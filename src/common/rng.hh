/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) and the
 * hash functions the workloads use. Simulation results must be exactly
 * reproducible across runs, so nothing here depends on global state.
 */

#ifndef DVR_COMMON_RNG_HH
#define DVR_COMMON_RNG_HH

#include <cstdint>

#include "common/log.hh"

namespace dvr {

/**
 * xoshiro256** 1.0 generator. Small, fast, and deterministic; quality
 * is more than sufficient for synthetic data-set generation. The draw
 * path is inline: data-set generation burns hundreds of millions of
 * draws per sweep and the state transition is a handful of xor/rotls.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound), bound > 0. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        panicIf(bound == 0, "Rng::nextBelow(0)");
        // Rejection-free multiply-shift reduction; bias is negligible
        // for the bounds we use (<< 2^32) and determinism is what
        // matters.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

/** splitmix64: used for seeding and as the workloads' hash function. */
uint64_t splitmix64(uint64_t x);

/**
 * The hash the Figure-1-style kernels (camel, hashjoin) compute in
 * simulated code; kept here so golden models match the ISA kernels.
 */
constexpr uint64_t
kernelHash(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace dvr

#endif // DVR_COMMON_RNG_HH
