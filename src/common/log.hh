/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (clean exit).
 */

#ifndef DVR_COMMON_LOG_HH
#define DVR_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dvr {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Terminate with a message: the user asked for something impossible. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** panic() unless the condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace dvr

#endif // DVR_COMMON_LOG_HH
