/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (clean exit).
 */

#ifndef DVR_COMMON_LOG_HH
#define DVR_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dvr {

/** Abort with a message: something that should never happen happened. */
[[noreturn]] inline void
panic(const char *msg)
{
    std::fprintf(stderr, "panic: %s\n", msg);
    std::abort();
}

[[noreturn]] inline void
panic(const std::string &msg)
{
    panic(msg.c_str());
}

/** Terminate with a message: the user asked for something impossible. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/**
 * panic() unless the condition holds. The const char* overload is the
 * one literal call sites bind to; it matters in hot paths (SimMemory
 * bounds checks run once per simulated memory access), where the
 * std::string overload's eager heap allocation of the message — paid
 * whether or not the check fires — once dominated the access itself.
 */
inline void
panicIf(bool cond, const char *msg)
{
    if (cond) [[unlikely]]
        panic(msg);
}

inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace dvr

#endif // DVR_COMMON_LOG_HH
