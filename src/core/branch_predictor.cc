#include "core/branch_predictor.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace dvr {

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &kind)
{
    if (kind == "tage")
        return std::make_unique<TagePredictor>();
    if (kind == "gshare")
        return std::make_unique<GsharePredictor>();
    if (kind == "taken")
        return std::make_unique<TakenPredictor>();
    fatal("makePredictor: unknown predictor '" + kind + "'");
}

// --- TAGE ------------------------------------------------------------

TagePredictor::TagePredictor()
{
    Arena &arena = Arena::forCurrentThread();
    bimodal_ = arena.allocArray<int8_t>(kBimodalSize);
    for (auto &t : tables_)
        t = arena.allocArray<Entry>(1u << kTableBits);
}

namespace {

uint64_t
foldHistory(uint64_t hist, int len, int bits)
{
    const uint64_t masked =
        len >= 64 ? hist : (hist & ((1ULL << len) - 1));
    uint64_t folded = 0;
    for (int i = 0; i < len; i += bits)
        folded ^= (masked >> i);
    return folded & ((1ULL << bits) - 1);
}

} // namespace

uint32_t
TagePredictor::tableIndex(int t, InstPc pc) const
{
    const uint64_t h = foldHistory(history_, kHistLens[t], kTableBits);
    return static_cast<uint32_t>(
        (pc ^ (pc >> kTableBits) ^ h) & ((1u << kTableBits) - 1));
}

uint16_t
TagePredictor::tableTag(int t, InstPc pc) const
{
    const uint64_t h = foldHistory(history_, kHistLens[t], kTagBits);
    const uint64_t h2 = foldHistory(history_, kHistLens[t], kTagBits - 1);
    return static_cast<uint16_t>(
        (pc ^ h ^ (h2 << 1)) & ((1u << kTagBits) - 1));
}

bool
TagePredictor::predict(InstPc pc)
{
    ++lookups;
    providerTable_ = -1;
    // Bimodal counters are 0..3; >= 2 means taken.
    altPred_ = bimodal_[pc & (kBimodalSize - 1)] >= 2;
    bool pred = altPred_;
    bool have_provider = false;
    for (int t = kNumTables - 1; t >= 0; --t) {
        const uint32_t idx = tableIndex(t, pc);
        const Entry &e = tables_[t][idx];
        if (e.tag == tableTag(t, pc)) {
            if (!have_provider) {
                providerTable_ = t;
                providerIdx_ = idx;
                providerPred_ = e.ctr >= 0;
                pred = providerPred_;
                have_provider = true;
            } else {
                // First match below the provider is the alternate.
                altPred_ = e.ctr >= 0;
                break;
            }
        }
    }
    lastPred_ = pred;
    lastPc_ = pc;
    return pred;
}

void
TagePredictor::update(InstPc pc, bool taken)
{
    // predict() must have been called for this pc immediately before.
    if (pc != lastPc_)
        predict(pc);
    if (lastPred_ != taken)
        ++mispredicts;

    auto bump = [](int8_t &c, bool up, int lo, int hi) {
        if (up && c < hi)
            ++c;
        else if (!up && c > lo)
            --c;
    };

    if (providerTable_ >= 0) {
        Entry &e = tables_[providerTable_][providerIdx_];
        bump(e.ctr, taken, -4, 3);
        if (providerPred_ != altPred_) {
            if (providerPred_ == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
    } else {
        int8_t &c = bimodal_[pc & (kBimodalSize - 1)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
    }

    // Allocate a new entry in a longer-history table on a mispredict.
    if (lastPred_ != taken && providerTable_ < kNumTables - 1) {
        rng_ = splitmix64(rng_);
        const int start = providerTable_ + 1;
        for (int t = start; t < kNumTables; ++t) {
            Entry &e = tables_[t][tableIndex(t, pc)];
            if (e.useful == 0) {
                e.tag = tableTag(t, pc);
                e.ctr = taken ? 0 : -1;
                break;
            }
            // Decay a useful entry occasionally so tables don't clog.
            if ((rng_ & 7) == 0 && e.useful > 0)
                --e.useful;
        }
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
    lastPc_ = kInvalidPc;
}

// --- gshare ------------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned bits)
    : bits_(bits)
{
    const std::size_t n = std::size_t(1) << bits;
    table_ = Arena::forCurrentThread().allocArray<int8_t>(n);
    // Weakly-not-taken counters, as the heap representation had.
    std::fill(table_, table_ + n, int8_t(1));
}

bool
GsharePredictor::predict(InstPc pc)
{
    ++lookups;
    const uint64_t idx = (pc ^ history_) & ((1ULL << bits_) - 1);
    return table_[idx] >= 2;
}

void
GsharePredictor::update(InstPc pc, bool taken)
{
    const uint64_t idx = (pc ^ history_) & ((1ULL << bits_) - 1);
    const bool pred = table_[idx] >= 2;
    if (pred != taken)
        ++mispredicts;
    int8_t &c = table_[idx];
    if (taken && c < 3)
        ++c;
    else if (!taken && c > 0)
        --c;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

} // namespace dvr
