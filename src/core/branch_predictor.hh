/**
 * @file
 * Branch direction predictors. The baseline is a TAGE predictor in the
 * spirit of the 8 KB TAGE-SC-L used by the paper (without the SC/L
 * side predictors, which add ~1% accuracy and no mechanism relevant to
 * runahead). A gshare predictor and a static predictor are provided
 * for ablation.
 */

#ifndef DVR_CORE_BRANCH_PREDICTOR_HH
#define DVR_CORE_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace dvr {

class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the conditional branch at pc. */
    virtual bool predict(InstPc pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(InstPc pc, bool taken) = 0;

    uint64_t lookups = 0;
    uint64_t mispredicts = 0;
};

/** Factory: kind is "tage", "gshare", or "taken". */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &kind);

/** TAGE: bimodal base + geometric-history tagged tables. */
class TagePredictor : public BranchPredictor
{
  public:
    TagePredictor();

    bool predict(InstPc pc) override;
    void update(InstPc pc, bool taken) override;

  private:
    static constexpr int kNumTables = 5;
    static constexpr int kTableBits = 10;       // 1024 entries
    static constexpr int kTagBits = 9;
    static constexpr int kHistLens[kNumTables] = {4, 8, 16, 32, 64};

    struct Entry
    {
        int8_t ctr = 0;         // -4..3 signed counter
        uint16_t tag = 0;
        uint8_t useful = 0;     // 2-bit
    };

    uint32_t tableIndex(int t, InstPc pc) const;
    uint16_t tableTag(int t, InstPc pc) const;

    static constexpr uint32_t kBimodalSize = 1u << 13;

    // Arena-backed tables; the zeroed state is the reset state.
    int8_t *bimodal_;                           // 2-bit counters
    Entry *tables_[kNumTables];
    uint64_t history_ = 0;
    uint64_t rng_ = 0x9e3779b97f4a7c15ULL;      // allocation tiebreak

    // Prediction state carried from predict() to update().
    int providerTable_ = -1;
    uint32_t providerIdx_ = 0;
    bool providerPred_ = false;
    bool altPred_ = false;
    bool lastPred_ = false;
    InstPc lastPc_ = kInvalidPc;
};

/** Classic gshare with 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned bits = 14);

    bool predict(InstPc pc) override;
    void update(InstPc pc, bool taken) override;

  private:
    unsigned bits_;
    int8_t *table_;                             // arena-backed
    uint64_t history_ = 0;
};

/** Static always-taken (worst case for ablation). */
class TakenPredictor : public BranchPredictor
{
  public:
    bool predict(InstPc) override { ++lookups; return true; }
    void update(InstPc, bool taken) override
    {
        if (!taken)
            ++mispredicts;
    }
};

} // namespace dvr

#endif // DVR_CORE_BRANCH_PREDICTOR_HH
