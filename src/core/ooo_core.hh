/**
 * @file
 * Execution-driven, dependence-based out-of-order core timing model
 * (Sniper-lineage). Each dynamic instruction is functionally executed
 * and timed exactly once, in program order; out-of-order behaviour is
 * captured through per-register ready times, per-FU port reservation,
 * ROB/IQ/LSQ occupancy constraints, and in-order width-limited commit.
 *
 * The model exposes the two integration points runahead techniques
 * need: a retire hook observing every dynamic instruction (with
 * functional values and timestamps) and a full-ROB-stall hook fired
 * when dispatch blocks behind a DRAM-bound load at the ROB head.
 */

#ifndef DVR_CORE_OOO_CORE_HH
#define DVR_CORE_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/branch_predictor.hh"
#include "core/iq_calendar.hh"
#include "isa/program.hh"
#include "mem/memory_system.hh"

namespace dvr {

class SimMemory;

/** Core parameters; defaults follow Table 1 of the paper. */
struct CoreConfig
{
    unsigned width = 5;             ///< fetch/dispatch/commit width
    unsigned robSize = 350;
    unsigned iqSize = 128;
    unsigned lqSize = 128;
    unsigned sqSize = 72;
    unsigned frontendDepth = 15;    ///< redirect penalty, cycles
    std::string predictor = "tage";
    unsigned memPorts = 2;          ///< load/store AGU ports
    /**
     * Model issue-queue occupancy as a dispatch constraint. Off by
     * default: the paper's Sniper model is ROB/window-centric, and
     * its full-ROB-stall phenomenology (Figure 2) requires the ROB to
     * be the binding in-flight structure.
     */
    bool modelIqOccupancy = false;

    /** Scale ROB and queue sizes together (core-size sweeps). */
    static CoreConfig withRob(unsigned rob, bool scale_queues = false);
};

/** Architectural register state plus per-register readiness times. */
struct RegState
{
    std::array<uint64_t, kNumArchRegs> value{};
    std::array<Cycle, kNumArchRegs> ready{};
};

/** Everything a retire-stream observer gets per dynamic instruction. */
struct RetireInfo
{
    uint64_t seq = 0;
    InstPc pc = 0;
    const Instruction *inst = nullptr;
    Addr effAddr = 0;           ///< memory ops only
    uint64_t loadValue = 0;     ///< loads only
    uint64_t result = 0;        ///< destination value written
    bool taken = false;         ///< branches only
    Cycle dispatchCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;
    Cycle commitCycle = 0;
    HitLevel level = HitLevel::kL1;     ///< loads only
};

/** Context handed to the full-ROB-stall hook. */
struct StallInfo
{
    uint64_t seq = 0;           ///< instruction blocked at dispatch
    InstPc nextPc = 0;          ///< its PC (start of the future stream)
    Cycle stallStart = 0;       ///< when dispatch would otherwise run
    Cycle headLoadDone = 0;     ///< when the blocking load returns
};

/**
 * Observer/participant interface for runahead techniques. onRetire is
 * called for every dynamic instruction in program order; the stall
 * hook may return a cycle dispatch must additionally wait for
 * (Vector Runahead's delayed termination).
 */
class CoreClient
{
  public:
    virtual ~CoreClient() = default;
    virtual void onRetire(const RetireInfo &) {}
    virtual Cycle onFullRobStall(const StallInfo &) { return 0; }
};

/**
 * CPI-stack component totals (cycle-attribution engine). Every commit
 * slot — the gap between consecutive in-order commits — is attributed
 * wholly to exactly one component, so the components sum to the total
 * cycle count by construction (asserted in tests for every
 * technique). Definitions follow the Sniper/Top-Down methodology the
 * paper's evaluation uses; see docs/OBSERVABILITY.md.
 */
struct CpiStack
{
    Cycle base = 0;             ///< issue/dependence/L1-resident work
    Cycle branchRedirect = 0;   ///< front-end refill after mispredict
    Cycle l1 = 0;               ///< load-latency-bound, L1 hit
    Cycle l2 = 0;               ///< load-latency-bound, L2 hit
    Cycle l3 = 0;               ///< load-latency-bound, L3 hit
    Cycle dram = 0;             ///< load-latency-bound, off-chip
    Cycle fullRob = 0;          ///< dispatch blocked on a full ROB
    Cycle fullIqLsq = 0;        ///< dispatch blocked on IQ/LQ/SQ

    Cycle total() const
    {
        return base + branchRedirect + l1 + l2 + l3 + dram + fullRob +
               fullIqLsq;
    }
};

/** Aggregate run statistics. */
struct CoreStats
{
    uint64_t instructions = 0;
    Cycle cycles = 0;
    CpiStack cpi;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t loadsL1 = 0;
    uint64_t loadsL2 = 0;
    uint64_t loadsL3 = 0;
    uint64_t loadsDram = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    double robStallCycles = 0;      ///< dispatch blocked on full ROB
    double runaheadExtraStall = 0;  ///< VR delayed-termination stall
    uint64_t fullRobStallEvents = 0;
    bool halted = false;

    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : double(instructions) / double(cycles);
    }
    StatSet toStatSet() const;
};

class OooCore
{
  public:
    OooCore(const CoreConfig &cfg, const Program &prog, SimMemory &mem,
            MemorySystem &memsys, CoreClient *client = nullptr);

    /** Execute from entry until halt or max_insts retire. */
    void run(uint64_t max_insts);

    void setEntry(InstPc pc) { pc_ = pc; }

    /**
     * Restore a checkpointed architectural state before run():
     * register values and the resume PC. Readiness times stay zero —
     * the warmed state is available at cycle 0 of the timed run.
     */
    void restoreArchState(const RegState &regs, InstPc pc)
    {
        regs_.value = regs.value;
        regs_.ready.fill(0);
        pc_ = pc;
    }

    /**
     * Resume after an external functional fast-forward, KEEPING
     * microarchitectural warmth. The interval-sampling driver
     * (sim/sampling.cc) alternates functional skips with detailed
     * windows on one persistent core: the branch predictor, the cache
     * hierarchy (via the shared MemorySystem), and the in-flight
     * timing rings survive the skip; only the architectural registers
     * and PC are replaced with the functionally-advanced state.
     *
     * The body is currently identical to restoreArchState — readiness
     * times clear because the skipped instructions' producers have
     * architecturally completed — but the call sites mean different
     * things: restoreArchState starts a cold run from a checkpoint,
     * resumeWarm continues a warm one mid-sample. Keeping them
     * separate lets either evolve without breaking the other's
     * contract (and the sampling tests pin that warmth carries).
     */
    void resumeWarm(const RegState &regs, InstPc pc)
    {
        regs_.value = regs.value;
        regs_.ready.fill(0);
        pc_ = pc;
    }

    /** Next instruction to fetch (the sampled-run handoff point). */
    InstPc pc() const { return pc_; }

    const CoreStats &stats() const { return stats_; }
    const RegState &regs() const { return regs_; }
    const Program &program() const { return prog_; }
    const BranchPredictor &predictor() const { return *bpred_; }
    BranchPredictor &predictor() { return *bpred_; }
    const CoreConfig &config() const { return cfg_; }

    /**
     * Issue-slot tracker for one FU class: a sliding window of
     * per-cycle slot counts, so a younger ready instruction can
     * backfill an earlier free slot (out-of-order issue) instead of
     * queueing behind older instructions' reservations.
     */
    class PortTracker
    {
      public:
        PortTracker(Arena &arena, unsigned slots_per_cycle,
                    Cycle occupancy);

        /** Earliest cycle >= want with a free slot; reserves it. */
        Cycle reserve(Cycle want);

      private:
        static constexpr size_t kWindow = 16384;
        unsigned slots_;
        Cycle occupancy_;       ///< cycles a reservation blocks
        Cycle base_ = 0;        ///< window start
        uint8_t *used_;         ///< kWindow slot counts, arena-backed
    };

  private:
    /** Reserve the earliest slot on a unit of the given class. */
    Cycle reserveFu(FuClass cls, Cycle earliest);

    const CoreConfig cfg_;
    const Program &prog_;
    SimMemory &mem_;
    MemorySystem &memsys_;
    CoreClient *client_;
    std::unique_ptr<BranchPredictor> bpred_;

    RegState regs_;
    InstPc pc_ = 0;
    CoreStats stats_;

    // Occupancy rings (see .cc for the dispatch constraints). The
    // ROB, LQ and SQ free in order (commit), so FIFO rings are exact;
    // the issue queue frees out of order (at issue), so it is tracked
    // with a calendar ring of issue times. The drain horizon is
    // non-decreasing, which makes the calendar's monotone cursor
    // exactly equivalent to the min-heap it replaced (pinned by
    // tests/test_iq_calendar.cc).
    //
    // All per-run arrays below live in the calling thread's Arena
    // (common/arena.hh): POD storage bump-allocated at construction
    // and recycled wholesale across runs, so a sweep point costs no
    // heap traffic for core state after the first run on its worker.
    Cycle *commitRing_;             // robSize
    // uint8_t, not bool: vector<bool> bit-packing puts a shift/mask
    // dependency on the per-commit head probe; byte loads are cheaper.
    uint8_t *robHeadDramLoad_;      // robSize
    IqCalendar iqIssueTimes_;
    Cycle *loadRing_;               // lqSize
    Cycle *storeRing_;              // sqSize
    uint64_t loadCount_ = 0;
    uint64_t storeCount_ = 0;

    // Per-FU-class issue-slot trackers (arena-placed array).
    PortTracker *fu_;

    // Front-end state.
    Cycle nextFetchCycle_ = 0;
    unsigned fetchedThisCycle_ = 0;

    // Commit state.
    Cycle lastCommitCycle_ = 0;
    unsigned committedThisCycle_ = 0;

    // Store-to-load dependence: 8-byte-granule address -> data-ready,
    // in a direct-mapped power-of-two table probed on every load
    // (replaces an unordered_map lookup on the hot path). A conflict
    // evicts the older granule, which at worst forgoes a forwarding
    // delay for a store already far in the past. Struct-of-arrays:
    // the per-load probe reads only the tag lane, so misses (the
    // common case) never pull the ready times into cache.
    static constexpr size_t kStoreFwdSize = 4096;   // power of two
    Addr *storeFwdTag_;     ///< granule address; ~0 = empty
    Cycle *storeFwdReady_;

    // Runahead re-trigger guard.
    Cycle runaheadBusyUntil_ = 0;
    Cycle lastDispatch_ = 0;

    // CPI-stack bookkeeping: the fetch cycle at which the front end
    // resumed after the latest mispredict redirect (the first fetch
    // group after it carries the refill penalty).
    Cycle cpiRedirectFetch_ = kCycleNever;
};

} // namespace dvr

#endif // DVR_CORE_OOO_CORE_HH
