#include "core/ooo_core.hh"

#include <algorithm>
#include <new>

#include "common/log.hh"
#include "mem/sim_memory.hh"

namespace dvr {

namespace {

/** FU counts per class (Table 1). */
constexpr unsigned kFuCount[kNumFuClasses] = {
    4,  // IntAlu
    1,  // IntMul
    1,  // IntDiv
    1,  // FpAdd
    1,  // FpMul
    1,  // FpDiv
    2,  // Mem (AGU/cache ports)
    2,  // Branch
    1,  // None (unused)
};

/** Execution latency per class. */
constexpr Cycle kFuLat[kNumFuClasses] = {
    1,   // IntAlu
    3,   // IntMul
    18,  // IntDiv
    3,   // FpAdd
    5,   // FpMul
    6,   // FpDiv
    1,   // Mem: AGU; cache latency added on top
    1,   // Branch
    1,   // None
};

/** Unpipelined units occupy their port for the full latency. */
constexpr bool kFuUnpipelined[kNumFuClasses] = {
    false, false, true, false, false, true, false, false, false,
};

} // namespace

CoreConfig
CoreConfig::withRob(unsigned rob, bool scale_queues)
{
    CoreConfig c;
    c.robSize = rob;
    if (scale_queues) {
        const double f = static_cast<double>(rob) / 350.0;
        c.iqSize = std::max(16u, static_cast<unsigned>(128 * f));
        c.lqSize = std::max(16u, static_cast<unsigned>(128 * f));
        c.sqSize = std::max(16u, static_cast<unsigned>(72 * f));
    }
    return c;
}

StatSet
CoreStats::toStatSet() const
{
    StatSet s;
    s.set("instructions", static_cast<double>(instructions));
    s.set("cycles", static_cast<double>(cycles));
    s.set("ipc", ipc());
    s.set("loads", static_cast<double>(loads));
    s.set("stores", static_cast<double>(stores));
    s.set("loads_l1", static_cast<double>(loadsL1));
    s.set("loads_l2", static_cast<double>(loadsL2));
    s.set("loads_l3", static_cast<double>(loadsL3));
    s.set("loads_dram", static_cast<double>(loadsDram));
    s.set("branches", static_cast<double>(branches));
    s.set("mispredicts", static_cast<double>(mispredicts));
    s.set("rob_stall_cycles", robStallCycles);
    s.set("runahead_extra_stall", runaheadExtraStall);
    s.set("full_rob_stall_events", static_cast<double>(fullRobStallEvents));
    s.set("cpi.base", static_cast<double>(cpi.base));
    s.set("cpi.branch_redirect",
          static_cast<double>(cpi.branchRedirect));
    s.set("cpi.l1", static_cast<double>(cpi.l1));
    s.set("cpi.l2", static_cast<double>(cpi.l2));
    s.set("cpi.l3", static_cast<double>(cpi.l3));
    s.set("cpi.dram", static_cast<double>(cpi.dram));
    s.set("cpi.full_rob", static_cast<double>(cpi.fullRob));
    s.set("cpi.full_iq_lsq", static_cast<double>(cpi.fullIqLsq));
    return s;
}

OooCore::PortTracker::PortTracker(Arena &arena, unsigned slots_per_cycle,
                                  Cycle occupancy)
    : slots_(slots_per_cycle), occupancy_(occupancy),
      used_(arena.allocArray<uint8_t>(kWindow))
{
}

Cycle
OooCore::PortTracker::reserve(Cycle want)
{
    // Requests before the tracked window are granted immediately:
    // the sliding window follows the latest (memory-delayed) issue
    // times, and slots that far in the past are never saturated.
    if (want < base_)
        return want;
    Cycle c = want;
    while (true) {
        // Slide the window forward when the request is beyond it.
        if (c >= base_ + kWindow) {
            const Cycle new_base = c - kWindow / 2;
            if (new_base - base_ >= kWindow) {
                std::fill(used_, used_ + kWindow, uint8_t(0));
            } else {
                for (Cycle b = base_; b < new_base; ++b)
                    used_[b % kWindow] = 0;
            }
            base_ = new_base;
        }
        if (used_[c % kWindow] < slots_)
            break;
        ++c;
    }
    // An unpipelined unit blocks its slot for the full latency. When
    // the occupancy crosses the window edge, slide the window forward
    // (dropping the oldest cycles, which are granted-immediately
    // territory anyway) instead of silently truncating it — otherwise
    // the tail cycles would alias slots at the window start.
    if (c + occupancy_ > base_ + kWindow) {
        const Cycle new_base = c + occupancy_ - kWindow;
        for (Cycle b = base_; b < new_base; ++b)
            used_[b % kWindow] = 0;
        base_ = new_base;
    }
    for (Cycle o = 0; o < occupancy_; ++o)
        ++used_[(c + o) % kWindow];
    return c;
}

OooCore::OooCore(const CoreConfig &cfg, const Program &prog,
                 SimMemory &mem, MemorySystem &memsys, CoreClient *client)
    : cfg_(cfg), prog_(prog), mem_(mem), memsys_(memsys),
      client_(client), bpred_(makePredictor(cfg.predictor))
{
    // All in-flight state is POD and run-scoped: bump-allocate it from
    // the calling thread's arena so repeated runs (sweep points,
    // sampling windows) recycle the same warm pages.
    Arena &arena = Arena::forCurrentThread();
    commitRing_ = arena.allocArray<Cycle>(cfg.robSize);
    robHeadDramLoad_ = arena.allocArray<uint8_t>(cfg.robSize);
    loadRing_ = arena.allocArray<Cycle>(cfg.lqSize);
    storeRing_ = arena.allocArray<Cycle>(cfg.sqSize);
    storeFwdTag_ = arena.allocArray<Addr>(kStoreFwdSize);
    std::fill(storeFwdTag_, storeFwdTag_ + kStoreFwdSize, ~Addr(0));
    storeFwdReady_ = arena.allocArray<Cycle>(kStoreFwdSize);
    fu_ = static_cast<PortTracker *>(arena.alloc(
        sizeof(PortTracker) * kNumFuClasses, alignof(PortTracker)));
    for (int c = 0; c < kNumFuClasses; ++c) {
        // dvr-lint: allow(naked-new) placement-new into arena storage; PortTracker is trivially destructible
        new (&fu_[c]) PortTracker(arena, kFuCount[c],
                                  kFuUnpipelined[c] ? kFuLat[c] : 1);
    }
}

Cycle
OooCore::reserveFu(FuClass cls, Cycle earliest)
{
    return fu_[static_cast<int>(cls)].reserve(earliest);
}

void
OooCore::run(uint64_t max_insts)
{
    uint64_t seq = stats_.instructions;

    while (seq < max_insts) {
        if (!prog_.valid(pc_))
            panic("OooCore: fell off the end of the program");
        const Instruction &inst = prog_.at(pc_);
        if (inst.op == Opcode::kHalt) {
            stats_.halted = true;
            break;
        }

        // ---- functional execution ---------------------------------
        const uint64_t s1 = regs_.value[inst.rs1];
        const uint64_t s2 = regs_.value[inst.rs2];
        uint64_t result = 0;
        Addr eff_addr = 0;
        uint64_t load_value = 0;
        bool taken = false;
        InstPc next_pc = pc_ + 1;

        if (inst.isLoad()) {
            eff_addr = s1 + static_cast<Addr>(inst.imm);
            load_value = mem_.read(eff_addr, inst.memBytes());
            result = load_value;
        } else if (inst.isStore()) {
            eff_addr = s1 + static_cast<Addr>(inst.imm);
            mem_.write(eff_addr, inst.memBytes(), s2);
        } else if (inst.isBranch()) {
            taken = branchTaken(inst.op, s1);
            if (taken)
                next_pc = inst.target;
        } else if (inst.hasDest()) {
            result = evalOp(inst.op, s1, s2, inst.imm);
        }

        // ---- timing -----------------------------------------------
        // Fetch: width instructions per cycle.
        if (fetchedThisCycle_ >= cfg_.width) {
            ++nextFetchCycle_;
            fetchedThisCycle_ = 0;
        }
        const Cycle fetch = nextFetchCycle_;
        ++fetchedThisCycle_;

        // Dispatch constraints.
        const Cycle frontend = fetch + cfg_.frontendDepth;
        const size_t rob_slot = seq % cfg_.robSize;
        const Cycle rob_free = commitRing_[rob_slot];
        const bool rob_head_dram = robHeadDramLoad_[rob_slot];
        // Issue-queue entries free at issue, in any order: dispatch
        // is constrained by the earliest-issuing in-flight entry only
        // when all iqSize entries are still waiting.
        Cycle iq_free = 0;
        if (cfg_.modelIqOccupancy) {
            const Cycle iq_horizon = std::max(frontend, rob_free);
            iqIssueTimes_.drainThrough(iq_horizon);
            if (iqIssueTimes_.size() >= cfg_.iqSize)
                iq_free = iqIssueTimes_.popMin();
        }
        Cycle lsq_free = 0;
        if (inst.isLoad())
            lsq_free = loadRing_[loadCount_ % cfg_.lqSize];
        else if (inst.isStore())
            lsq_free = storeRing_[storeCount_ % cfg_.sqSize];

        const Cycle others = std::max({frontend, iq_free, lsq_free});
        Cycle dispatch = std::max(others, rob_free);

        if (rob_free > others) {
            // Model time when the ROB actually filled: dispatch was
            // proceeding until the previous instruction, so the stall
            // begins no earlier than that dispatch. Attributing only
            // the increment past that point counts each stalled cycle
            // once (not once per blocked instruction).
            const Cycle stall_start = std::max(others, lastDispatch_);
            if (rob_free > stall_start)
                stats_.robStallCycles +=
                    static_cast<double>(rob_free - stall_start);
            // Full-ROB stall: fire the runahead hook when the ROB
            // head is a DRAM-bound load and no episode is already
            // covering this stall.
            if (client_ && rob_head_dram &&
                stall_start >= runaheadBusyUntil_ &&
                rob_free > stall_start) {
                ++stats_.fullRobStallEvents;
                StallInfo si;
                si.seq = seq;
                si.nextPc = pc_;
                si.stallStart = stall_start;
                si.headLoadDone = rob_free;
                const Cycle extra = client_->onFullRobStall(si);
                // After runahead ends the pipeline refills the window
                // before the next full-ROB stall can begin.
                runaheadBusyUntil_ = std::max(rob_free, extra) +
                                     cfg_.robSize / cfg_.width;
                if (extra > dispatch) {
                    stats_.runaheadExtraStall +=
                        static_cast<double>(extra - dispatch);
                    dispatch = extra;
                }
            }
        }

        // Operand readiness.
        Cycle ready = dispatch + 1;
        const int nsrcs = inst.numSrcs();
        if (nsrcs >= 1)
            ready = std::max(ready, regs_.ready[inst.rs1]);
        if (nsrcs >= 2)
            ready = std::max(ready, regs_.ready[inst.rs2]);
        if (inst.isLoad()) {
            const Addr granule = eff_addr >> 3;
            const size_t slot = granule & (kStoreFwdSize - 1);
            if (storeFwdTag_[slot] == granule)
                ready = std::max(ready, storeFwdReady_[slot]);
        }

        // Issue on a free unit of the right class.
        const FuClass cls = inst.fuClass();
        Cycle issue = ready;
        Cycle complete = ready;
        HitLevel level = HitLevel::kL1;
        if (cls != FuClass::kNone) {
            issue = reserveFu(cls, ready);
            complete = issue + kFuLat[static_cast<int>(cls)];
        }

        if (inst.isLoad()) {
            const MemAccess ma = memsys_.access(
                eff_addr, inst.memBytes(), issue + 1, false,
                Requester::kMain, pc_, load_value);
            complete = ma.done;
            level = ma.level;
            ++stats_.loads;
            switch (level) {
              case HitLevel::kL1: ++stats_.loadsL1; break;
              case HitLevel::kL2: ++stats_.loadsL2; break;
              case HitLevel::kL3: ++stats_.loadsL3; break;
              case HitLevel::kDram: ++stats_.loadsDram; break;
            }
        }

        // Branch resolution and redirect.
        if (inst.isBranch()) {
            ++stats_.branches;
            bool mispredict = false;
            if (inst.isCondBranch()) {
                const bool pred = bpred_->predict(pc_);
                bpred_->update(pc_, taken);
                mispredict = pred != taken;
            }
            if (mispredict) {
                ++stats_.mispredicts;
                // Redirect: correct-path fetch restarts after resolve.
                if (complete + 1 > nextFetchCycle_)
                    cpiRedirectFetch_ = complete + 1;
                nextFetchCycle_ = std::max(nextFetchCycle_, complete + 1);
                fetchedThisCycle_ = 0;
            }
        }

        // In-order, width-limited commit.
        const Cycle prev_commit = lastCommitCycle_;
        Cycle commit = std::max(complete + 1, lastCommitCycle_);
        if (commit == lastCommitCycle_ &&
            committedThisCycle_ >= cfg_.width) {
            ++commit;
        }
        if (commit != lastCommitCycle_) {
            lastCommitCycle_ = commit;
            committedThisCycle_ = 1;
        } else {
            ++committedThisCycle_;
        }

        // Stores access the memory system at commit (traffic only;
        // they never stall the requester).
        if (inst.isStore()) {
            memsys_.access(eff_addr, inst.memBytes(), commit, true,
                           Requester::kMain, pc_, 0);
            const Addr granule = eff_addr >> 3;
            const size_t slot = granule & (kStoreFwdSize - 1);
            storeFwdTag_[slot] = granule;
            storeFwdReady_[slot] = complete + 1;
            storeRing_[storeCount_ % cfg_.sqSize] = commit;
            ++storeCount_;
            ++stats_.stores;
        }
        if (inst.isLoad()) {
            // LQ entries are reclaimed at commit (in order).
            loadRing_[loadCount_ % cfg_.lqSize] = commit;
            ++loadCount_;
        }

        // Update occupancy rings and register state.
        commitRing_[rob_slot] = commit;
        // The runahead trigger needs "the ROB head is blocked on
        // DRAM": either the head is a DRAM-bound load itself, or it
        // is chained behind one (its completion trails dispatch by a
        // DRAM round trip).
        robHeadDramLoad_[rob_slot] =
            (inst.isLoad() && level == HitLevel::kDram) ||
            complete > dispatch + 150;
        if (cfg_.modelIqOccupancy)
            iqIssueTimes_.push(issue);
        if (inst.hasDest()) {
            regs_.value[inst.rd] = result;
            regs_.ready[inst.rd] = complete;
        }

        // CPI stack: commit is monotonically non-decreasing, so the
        // per-instruction commit deltas telescope to the final cycle
        // count. Attribute each whole delta to the constraint that
        // dominated this instruction's lateness; width-bound commits
        // (the pipeline retiring at full speed) are base cycles.
        if (commit > prev_commit) {
            const Cycle delta = commit - prev_commit;
            Cycle *bucket = &stats_.cpi.base;
            if (complete + 1 > prev_commit) {
                // dispatch already includes the ROB constraint and any
                // runahead delayed-termination stall, so its push past
                // the other dispatch gates is the full-ROB component.
                const Cycle rob_push =
                    dispatch > others ? dispatch - others : 0;
                const Cycle iqlsq = std::max(iq_free, lsq_free);
                const Cycle iqlsq_push =
                    iqlsq > frontend ? iqlsq - frontend : 0;
                const Cycle redirect_push =
                    fetch == cpiRedirectFetch_
                        ? Cycle(cfg_.frontendDepth) + 1
                        : 0;
                const Cycle mem_push =
                    inst.isLoad() && complete > issue ? complete - issue
                                                      : 0;
                const Cycle top = std::max(
                    {rob_push, iqlsq_push, redirect_push, mem_push});
                if (top == 0) {
                    bucket = &stats_.cpi.base;
                } else if (top == rob_push) {
                    bucket = &stats_.cpi.fullRob;
                } else if (top == iqlsq_push) {
                    bucket = &stats_.cpi.fullIqLsq;
                } else if (top == redirect_push) {
                    bucket = &stats_.cpi.branchRedirect;
                } else {
                    switch (level) {
                      case HitLevel::kL1: bucket = &stats_.cpi.l1; break;
                      case HitLevel::kL2: bucket = &stats_.cpi.l2; break;
                      case HitLevel::kL3: bucket = &stats_.cpi.l3; break;
                      case HitLevel::kDram:
                        bucket = &stats_.cpi.dram;
                        break;
                    }
                }
            }
            *bucket += delta;
        }

        ++seq;
        stats_.instructions = seq;
        stats_.cycles = std::max(stats_.cycles, commit);

        if (client_) {
            RetireInfo ri;
            ri.seq = seq - 1;
            ri.pc = pc_;
            ri.inst = &inst;
            ri.effAddr = eff_addr;
            ri.loadValue = load_value;
            ri.result = result;
            ri.taken = taken;
            ri.dispatchCycle = dispatch;
            ri.issueCycle = issue;
            ri.completeCycle = complete;
            ri.commitCycle = commit;
            ri.level = level;
            client_->onRetire(ri);
        }

        lastDispatch_ = dispatch;
        pc_ = next_pc;
    }
}

} // namespace dvr
