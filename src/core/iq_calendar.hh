/**
 * @file
 * Calendar/ring tracker for issue-queue occupancy, replacing a
 * per-instruction std::priority_queue of issue times on the dispatch
 * path. The core's drain horizon — max(frontend, rob_free) — is
 * non-decreasing across instructions and every pushed issue time is
 * at least the horizon at push, so a bucketed ring of per-cycle entry
 * counts with a monotone drain cursor reproduces the heap's
 * drain / pop-min / push semantics exactly with amortized O(1) work
 * per cycle instead of O(log n) heap churn per instruction.
 *
 * Entries beyond the ring window (deep DRAM-bound dependence chains
 * can issue hundreds of thousands of cycles past the horizon) spill
 * to a small unordered overflow vector and migrate back into the ring
 * as the cursor advances; the structure is exact for any spread.
 */

#ifndef DVR_CORE_IQ_CALENDAR_HH
#define DVR_CORE_IQ_CALENDAR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dvr {

class IqCalendar
{
  public:
    IqCalendar() : counts_(kWindow, 0) {}

    size_t size() const { return size_; }

    /** Track one in-flight entry issuing at `t`. */
    void push(Cycle t)
    {
        if (t < cursor_) {
            // Issue time at or below the last drain horizon: the next
            // drainThrough (monotone horizon, and it always precedes
            // the next size check) would remove the entry before it
            // could ever constrain dispatch. Drop it now.
            return;
        }
        if (t < base_ + kWindow)
            ++counts_[t % kWindow];
        else
            far_.push_back(t);
        ++size_;
        minHint_ = std::min(minHint_, t);
    }

    /** Remove every entry with issue time <= `horizon` (monotone). */
    void drainThrough(Cycle horizon)
    {
        while (cursor_ <= horizon) {
            if (size_ == 0) {
                // Nothing in flight: jump the cursor (and the window,
                // so pushes land in-ring again) straight to the end.
                cursor_ = horizon + 1;
                base_ = cursor_;
                break;
            }
            if (cursor_ >= base_ + kWindow)
                rebase();
            uint32_t &c = counts_[cursor_ % kWindow];
            size_ -= c;
            c = 0;
            ++cursor_;
        }
        minHint_ = std::max(minHint_, cursor_);
    }

    /** Remove and return the smallest remaining issue time. */
    Cycle popMin()
    {
        panicIf(size_ == 0, "IqCalendar: popMin on empty calendar");
        Cycle t = std::max(cursor_, minHint_);
        for (;; ++t) {
            if (t >= base_ + kWindow) {
                // The ring is empty past the hint: the minimum lives
                // in the overflow list.
                size_t best = 0;
                for (size_t i = 1; i < far_.size(); ++i) {
                    if (far_[i] < far_[best])
                        best = i;
                }
                t = far_[best];
                far_[best] = far_.back();
                far_.pop_back();
                break;
            }
            if (counts_[t % kWindow] > 0) {
                --counts_[t % kWindow];
                break;
            }
        }
        --size_;
        minHint_ = t;
        return t;
    }

  private:
    /** Ring capacity in cycles; must be a power of two. */
    static constexpr size_t kWindow = 16384;

    /**
     * Slide the window start up to the cursor. Only called when the
     * cursor has crossed the whole ring, so every ring slot is behind
     * it and already zeroed; overflow entries that now fit move in.
     */
    void rebase()
    {
        base_ = cursor_;
        size_t kept = 0;
        for (const Cycle t : far_) {
            if (t < base_ + kWindow)
                ++counts_[t % kWindow];
            else
                far_[kept++] = t;
        }
        far_.resize(kept);
    }

    std::vector<uint32_t> counts_;  ///< per-cycle entry counts
    std::vector<Cycle> far_;        ///< entries beyond the ring
    Cycle base_ = 0;                ///< window start (absolute cycle)
    Cycle cursor_ = 0;              ///< all entries < cursor_ drained
    Cycle minHint_ = 0;             ///< lower bound on the minimum
    size_t size_ = 0;
};

} // namespace dvr

#endif // DVR_CORE_IQ_CALENDAR_HH
