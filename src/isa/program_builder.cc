#include "isa/program_builder.hh"

#include "common/log.hh"

namespace dvr {

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("ProgramBuilder: duplicate label '" + name + "'");
    labels_[name] = here();
    return *this;
}

ProgramBuilder &
ProgramBuilder::emit(Instruction inst)
{
    if (inst.rd >= kNumArchRegs || inst.rs1 >= kNumArchRegs ||
        inst.rs2 >= kNumArchRegs) {
        fatal("ProgramBuilder: register id out of range");
    }
    insts_.push_back(inst);
    return *this;
}

ProgramBuilder &
ProgramBuilder::emitRRR(Opcode op, RegId rd, RegId a, RegId b)
{
    return emit({.op = op, .rd = rd, .rs1 = a, .rs2 = b});
}

ProgramBuilder &
ProgramBuilder::emitRRI(Opcode op, RegId rd, RegId a, int64_t imm)
{
    return emit({.op = op, .rd = rd, .rs1 = a, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::emitBranch(Opcode op, RegId rs, const std::string &target)
{
    fixups_.emplace_back(here(), target);
    return emit({.op = op, .rs1 = rs});
}

ProgramBuilder &
ProgramBuilder::li(RegId rd, int64_t imm)
{
    return emit({.op = Opcode::kLoadImm, .rd = rd, .imm = imm});
}

ProgramBuilder &
ProgramBuilder::mov(RegId rd, RegId rs)
{
    return emit({.op = Opcode::kMov, .rd = rd, .rs1 = rs});
}

#define DVR_RRR(NAME, OP) \
    ProgramBuilder &ProgramBuilder::NAME(RegId rd, RegId a, RegId b) \
    { return emitRRR(Opcode::OP, rd, a, b); }

DVR_RRR(add, kAdd)
DVR_RRR(sub, kSub)
DVR_RRR(mul, kMul)
DVR_RRR(divu, kDivU)
DVR_RRR(remu, kRemU)
DVR_RRR(and_, kAnd)
DVR_RRR(or_, kOr)
DVR_RRR(xor_, kXor)
DVR_RRR(shl, kShl)
DVR_RRR(shr, kShr)
DVR_RRR(min, kMin)
DVR_RRR(max, kMax)
DVR_RRR(fadd, kFAdd)
DVR_RRR(fsub, kFSub)
DVR_RRR(fmul, kFMul)
DVR_RRR(fdiv, kFDiv)
DVR_RRR(fcmplt, kFCmpLt)
DVR_RRR(cmplt, kCmpLt)
DVR_RRR(cmpltu, kCmpLtU)
DVR_RRR(cmpeq, kCmpEq)
DVR_RRR(cmpne, kCmpNe)
#undef DVR_RRR

#define DVR_RRI(NAME, OP) \
    ProgramBuilder &ProgramBuilder::NAME(RegId rd, RegId a, int64_t imm) \
    { return emitRRI(Opcode::OP, rd, a, imm); }

DVR_RRI(addi, kAddI)
DVR_RRI(muli, kMulI)
DVR_RRI(andi, kAndI)
DVR_RRI(ori, kOrI)
DVR_RRI(xori, kXorI)
DVR_RRI(shli, kShlI)
DVR_RRI(shri, kShrI)
DVR_RRI(cmplti, kCmpLtI)
DVR_RRI(cmpltui, kCmpLtUI)
DVR_RRI(cmpeqi, kCmpEqI)
#undef DVR_RRI

ProgramBuilder &
ProgramBuilder::hash(RegId rd, RegId a)
{
    return emit({.op = Opcode::kHash, .rd = rd, .rs1 = a});
}

ProgramBuilder &
ProgramBuilder::i2f(RegId rd, RegId a)
{
    return emit({.op = Opcode::kI2F, .rd = rd, .rs1 = a});
}

ProgramBuilder &
ProgramBuilder::f2i(RegId rd, RegId a)
{
    return emit({.op = Opcode::kF2I, .rd = rd, .rs1 = a});
}

ProgramBuilder &
ProgramBuilder::ld(RegId rd, RegId base, int64_t off)
{
    return emit({.op = Opcode::kLoad, .rd = rd, .rs1 = base, .imm = off});
}

ProgramBuilder &
ProgramBuilder::ldw(RegId rd, RegId base, int64_t off)
{
    return emit({.op = Opcode::kLoad32, .rd = rd, .rs1 = base,
                 .imm = off});
}

ProgramBuilder &
ProgramBuilder::ldb(RegId rd, RegId base, int64_t off)
{
    return emit({.op = Opcode::kLoad8, .rd = rd, .rs1 = base, .imm = off});
}

ProgramBuilder &
ProgramBuilder::st(RegId base, int64_t off, RegId src)
{
    return emit({.op = Opcode::kStore, .rs1 = base, .rs2 = src,
                 .imm = off});
}

ProgramBuilder &
ProgramBuilder::stw(RegId base, int64_t off, RegId src)
{
    return emit({.op = Opcode::kStore32, .rs1 = base, .rs2 = src,
                 .imm = off});
}

ProgramBuilder &
ProgramBuilder::stb(RegId base, int64_t off, RegId src)
{
    return emit({.op = Opcode::kStore8, .rs1 = base, .rs2 = src,
                 .imm = off});
}

ProgramBuilder &
ProgramBuilder::beqz(RegId rs, const std::string &target)
{
    return emitBranch(Opcode::kBeqz, rs, target);
}

ProgramBuilder &
ProgramBuilder::bnez(RegId rs, const std::string &target)
{
    return emitBranch(Opcode::kBnez, rs, target);
}

ProgramBuilder &
ProgramBuilder::jmp(const std::string &target)
{
    fixups_.emplace_back(here(), target);
    return emit({.op = Opcode::kJmp});
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({.op = Opcode::kNop});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({.op = Opcode::kHalt});
}

Program
ProgramBuilder::build()
{
    for (const auto &[idx, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            fatal("ProgramBuilder: unresolved label '" + name + "'");
        insts_[idx].target = it->second;
    }
    fixups_.clear();
    return Program(insts_, labels_);
}

} // namespace dvr
