#include "isa/instruction.hh"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"

namespace dvr {

bool
Instruction::isLoad() const
{
    switch (op) {
      case Opcode::kLoad:
      case Opcode::kLoad32:
      case Opcode::kLoad8:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isStore() const
{
    switch (op) {
      case Opcode::kStore:
      case Opcode::kStore32:
      case Opcode::kStore8:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isBranch() const
{
    return op == Opcode::kBeqz || op == Opcode::kBnez ||
           op == Opcode::kJmp;
}

bool
Instruction::isCondBranch() const
{
    return op == Opcode::kBeqz || op == Opcode::kBnez;
}

bool
Instruction::isCompare() const
{
    switch (op) {
      case Opcode::kCmpLt:
      case Opcode::kCmpLtU:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
      case Opcode::kCmpLtI:
      case Opcode::kCmpLtUI:
      case Opcode::kCmpEqI:
      case Opcode::kFCmpLt:
        return true;
      default:
        return false;
    }
}

bool
Instruction::hasDest() const
{
    if (isStore() || isBranch())
        return false;
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        return false;
      default:
        return true;
    }
}

bool
Instruction::readsRs2() const
{
    if (isStore())
        return true;    // rs2 is the store data register
    switch (op) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kDivU: case Opcode::kRemU:
      case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
      case Opcode::kShl: case Opcode::kShr:
      case Opcode::kMin: case Opcode::kMax:
      case Opcode::kFAdd: case Opcode::kFSub:
      case Opcode::kFMul: case Opcode::kFDiv:
      case Opcode::kFCmpLt:
      case Opcode::kCmpLt: case Opcode::kCmpLtU:
      case Opcode::kCmpEq: case Opcode::kCmpNe:
        return true;
      default:
        return false;
    }
}

int
Instruction::numSrcs() const
{
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHalt:
      case Opcode::kLoadImm:
      case Opcode::kJmp:
        return 0;
      default:
        return readsRs2() ? 2 : 1;
    }
}

FuClass
Instruction::fuClass() const
{
    switch (op) {
      case Opcode::kNop:
      case Opcode::kHalt:
        return FuClass::kNone;
      case Opcode::kMul:
      case Opcode::kMulI:
      case Opcode::kHash:
        return FuClass::kIntMul;
      case Opcode::kDivU:
      case Opcode::kRemU:
        return FuClass::kIntDiv;
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kI2F:
      case Opcode::kF2I:
      case Opcode::kFCmpLt:
        return FuClass::kFpAdd;
      case Opcode::kFMul:
        return FuClass::kFpMul;
      case Opcode::kFDiv:
        return FuClass::kFpDiv;
      case Opcode::kLoad:
      case Opcode::kLoad32:
      case Opcode::kLoad8:
      case Opcode::kStore:
      case Opcode::kStore32:
      case Opcode::kStore8:
        return FuClass::kMem;
      case Opcode::kBeqz:
      case Opcode::kBnez:
      case Opcode::kJmp:
        return FuClass::kBranch;
      default:
        return FuClass::kIntAlu;
    }
}

uint32_t
Instruction::memBytes() const
{
    switch (op) {
      case Opcode::kLoad:
      case Opcode::kStore:
        return 8;
      case Opcode::kLoad32:
      case Opcode::kStore32:
        return 4;
      case Opcode::kLoad8:
      case Opcode::kStore8:
        return 1;
      default:
        return 0;
    }
}

namespace {

double
asF(uint64_t x)
{
    return std::bit_cast<double>(x);
}

uint64_t
asU(double x)
{
    return std::bit_cast<uint64_t>(x);
}

} // namespace

uint64_t
evalOp(Opcode op, uint64_t s1, uint64_t s2, int64_t imm)
{
    const auto u = static_cast<uint64_t>(imm);
    switch (op) {
      case Opcode::kLoadImm: return u;
      case Opcode::kMov:     return s1;
      case Opcode::kAdd:     return s1 + s2;
      case Opcode::kSub:     return s1 - s2;
      case Opcode::kMul:     return s1 * s2;
      case Opcode::kDivU:    return s2 == 0 ? ~0ULL : s1 / s2;
      case Opcode::kRemU:    return s2 == 0 ? s1 : s1 % s2;
      case Opcode::kAnd:     return s1 & s2;
      case Opcode::kOr:      return s1 | s2;
      case Opcode::kXor:     return s1 ^ s2;
      case Opcode::kShl:     return s1 << (s2 & 63);
      case Opcode::kShr:     return s1 >> (s2 & 63);
      case Opcode::kMin:     return s1 < s2 ? s1 : s2;
      case Opcode::kMax:     return s1 > s2 ? s1 : s2;
      case Opcode::kAddI:    return s1 + u;
      case Opcode::kMulI:    return s1 * u;
      case Opcode::kAndI:    return s1 & u;
      case Opcode::kOrI:     return s1 | u;
      case Opcode::kXorI:    return s1 ^ u;
      case Opcode::kShlI:    return s1 << (imm & 63);
      case Opcode::kShrI:    return s1 >> (imm & 63);
      case Opcode::kHash:    return kernelHash(s1);
      case Opcode::kFAdd:    return asU(asF(s1) + asF(s2));
      case Opcode::kFSub:    return asU(asF(s1) - asF(s2));
      case Opcode::kFMul:    return asU(asF(s1) * asF(s2));
      case Opcode::kFDiv:    return asU(asF(s1) / asF(s2));
      case Opcode::kI2F:     return asU(static_cast<double>(s1));
      case Opcode::kF2I:
        return static_cast<uint64_t>(static_cast<int64_t>(asF(s1)));
      case Opcode::kFCmpLt:  return asF(s1) < asF(s2) ? 1 : 0;
      case Opcode::kCmpLt:
        return static_cast<int64_t>(s1) < static_cast<int64_t>(s2);
      case Opcode::kCmpLtU:  return s1 < s2 ? 1 : 0;
      case Opcode::kCmpEq:   return s1 == s2 ? 1 : 0;
      case Opcode::kCmpNe:   return s1 != s2 ? 1 : 0;
      case Opcode::kCmpLtI:
        return static_cast<int64_t>(s1) < imm ? 1 : 0;
      case Opcode::kCmpLtUI: return s1 < u ? 1 : 0;
      case Opcode::kCmpEqI:  return s1 == u ? 1 : 0;
      default:
        panic("evalOp: opcode has no ALU semantics");
    }
}

bool
branchTaken(Opcode op, uint64_t v)
{
    switch (op) {
      case Opcode::kBeqz: return v == 0;
      case Opcode::kBnez: return v != 0;
      case Opcode::kJmp:  return true;
      default:
        panic("branchTaken: not a branch");
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNop: return "nop";
      case Opcode::kHalt: return "halt";
      case Opcode::kLoadImm: return "li";
      case Opcode::kMov: return "mov";
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDivU: return "divu";
      case Opcode::kRemU: return "remu";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kMin: return "min";
      case Opcode::kMax: return "max";
      case Opcode::kAddI: return "addi";
      case Opcode::kMulI: return "muli";
      case Opcode::kAndI: return "andi";
      case Opcode::kOrI: return "ori";
      case Opcode::kXorI: return "xori";
      case Opcode::kShlI: return "shli";
      case Opcode::kShrI: return "shri";
      case Opcode::kHash: return "hash";
      case Opcode::kFAdd: return "fadd";
      case Opcode::kFSub: return "fsub";
      case Opcode::kFMul: return "fmul";
      case Opcode::kFDiv: return "fdiv";
      case Opcode::kI2F: return "i2f";
      case Opcode::kF2I: return "f2i";
      case Opcode::kFCmpLt: return "fcmplt";
      case Opcode::kCmpLt: return "cmplt";
      case Opcode::kCmpLtU: return "cmpltu";
      case Opcode::kCmpEq: return "cmpeq";
      case Opcode::kCmpNe: return "cmpne";
      case Opcode::kCmpLtI: return "cmplti";
      case Opcode::kCmpLtUI: return "cmpltui";
      case Opcode::kCmpEqI: return "cmpeqi";
      case Opcode::kLoad: return "ld";
      case Opcode::kLoad32: return "ldw";
      case Opcode::kLoad8: return "ldb";
      case Opcode::kStore: return "st";
      case Opcode::kStore32: return "stw";
      case Opcode::kStore8: return "stb";
      case Opcode::kBeqz: return "beqz";
      case Opcode::kBnez: return "bnez";
      case Opcode::kJmp: return "jmp";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (isLoad()) {
        os << " r" << int(rd) << ", [r" << int(rs1) << " + " << imm << "]";
    } else if (isStore()) {
        os << " [r" << int(rs1) << " + " << imm << "], r" << int(rs2);
    } else if (isCondBranch()) {
        os << " r" << int(rs1) << ", @" << target;
    } else if (op == Opcode::kJmp) {
        os << " @" << target;
    } else if (op == Opcode::kLoadImm) {
        os << " r" << int(rd) << ", " << imm;
    } else if (hasDest()) {
        os << " r" << int(rd) << ", r" << int(rs1);
        if (readsRs2())
            os << ", r" << int(rs2);
        else if (numSrcs() == 1 && imm != 0)
            os << ", " << imm;
    }
    return os.str();
}

} // namespace dvr
