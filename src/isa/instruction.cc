#include "isa/instruction.hh"

#include <sstream>

namespace dvr {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kNop: return "nop";
      case Opcode::kHalt: return "halt";
      case Opcode::kLoadImm: return "li";
      case Opcode::kMov: return "mov";
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDivU: return "divu";
      case Opcode::kRemU: return "remu";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kMin: return "min";
      case Opcode::kMax: return "max";
      case Opcode::kAddI: return "addi";
      case Opcode::kMulI: return "muli";
      case Opcode::kAndI: return "andi";
      case Opcode::kOrI: return "ori";
      case Opcode::kXorI: return "xori";
      case Opcode::kShlI: return "shli";
      case Opcode::kShrI: return "shri";
      case Opcode::kHash: return "hash";
      case Opcode::kFAdd: return "fadd";
      case Opcode::kFSub: return "fsub";
      case Opcode::kFMul: return "fmul";
      case Opcode::kFDiv: return "fdiv";
      case Opcode::kI2F: return "i2f";
      case Opcode::kF2I: return "f2i";
      case Opcode::kFCmpLt: return "fcmplt";
      case Opcode::kCmpLt: return "cmplt";
      case Opcode::kCmpLtU: return "cmpltu";
      case Opcode::kCmpEq: return "cmpeq";
      case Opcode::kCmpNe: return "cmpne";
      case Opcode::kCmpLtI: return "cmplti";
      case Opcode::kCmpLtUI: return "cmpltui";
      case Opcode::kCmpEqI: return "cmpeqi";
      case Opcode::kLoad: return "ld";
      case Opcode::kLoad32: return "ldw";
      case Opcode::kLoad8: return "ldb";
      case Opcode::kStore: return "st";
      case Opcode::kStore32: return "stw";
      case Opcode::kStore8: return "stb";
      case Opcode::kBeqz: return "beqz";
      case Opcode::kBnez: return "bnez";
      case Opcode::kJmp: return "jmp";
    }
    return "?";
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (isLoad()) {
        os << " r" << int(rd) << ", [r" << int(rs1) << " + " << imm << "]";
    } else if (isStore()) {
        os << " [r" << int(rs1) << " + " << imm << "], r" << int(rs2);
    } else if (isCondBranch()) {
        os << " r" << int(rs1) << ", @" << target;
    } else if (op == Opcode::kJmp) {
        os << " @" << target;
    } else if (op == Opcode::kLoadImm) {
        os << " r" << int(rd) << ", " << imm;
    } else if (hasDest()) {
        os << " r" << int(rd) << ", r" << int(rs1);
        if (readsRs2())
            os << ", r" << int(rs2);
        else if (numSrcs() == 1 && imm != 0)
            os << ", " << imm;
    }
    return os.str();
}

} // namespace dvr
