/**
 * @file
 * A Program is an immutable sequence of micro-ops plus debug metadata.
 */

#ifndef DVR_ISA_PROGRAM_HH
#define DVR_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace dvr {

/** An assembled program: instructions addressed by InstPc indices. */
class Program
{
  public:
    Program() = default;
    Program(std::vector<Instruction> insts,
            std::map<std::string, InstPc> labels);

    const Instruction &at(InstPc pc) const { return insts_[pc]; }
    InstPc size() const { return static_cast<InstPc>(insts_.size()); }
    bool valid(InstPc pc) const { return pc < insts_.size(); }

    /** Resolve a label to its PC; fatal() when absent. */
    InstPc label(const std::string &name) const;

    /** Full disassembly with labels, for debugging and docs. */
    std::string disassemble() const;

  private:
    std::vector<Instruction> insts_;
    std::map<std::string, InstPc> labels_;
};

} // namespace dvr

#endif // DVR_ISA_PROGRAM_HH
