/**
 * @file
 * The micro-op ISA the simulated workloads are written in.
 *
 * The ISA is deliberately RISC-like and small: loads/stores with a
 * base-register + immediate addressing mode, three-operand ALU ops,
 * compares that write a register, and conditional branches that read
 * one. This is exactly the shape DVR's hardware analyses expect:
 * striding loads, register dataflow for taint tracking, and compare ->
 * backward-branch pairs for loop-bound inference.
 */

#ifndef DVR_ISA_INSTRUCTION_HH
#define DVR_ISA_INSTRUCTION_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace dvr {

enum class Opcode : uint8_t {
    kNop,
    kHalt,

    // Register moves / immediates.
    kLoadImm,   ///< rd = imm
    kMov,       ///< rd = rs1

    // Integer ALU, register-register.
    kAdd, kSub, kMul, kDivU, kRemU,
    kAnd, kOr, kXor, kShl, kShr,
    kMin, kMax,

    // Integer ALU, register-immediate.
    kAddI, kMulI, kAndI, kOrI, kXorI, kShlI, kShrI,

    // One-cycle-per-stage hash used by the database kernels.
    kHash,      ///< rd = kernelHash(rs1)

    // Floating point on double bit patterns held in integer registers.
    kFAdd, kFSub, kFMul, kFDiv,
    kI2F,       ///< rd = double(rs1 as unsigned)
    kF2I,       ///< rd = uint64(trunc(rs1 as double))
    kFCmpLt,    ///< rd = (rs1 as double) < (rs2 as double)

    // Compares write 0/1 into rd.
    kCmpLt,     ///< signed rs1 < rs2
    kCmpLtU,    ///< unsigned rs1 < rs2
    kCmpEq, kCmpNe,
    kCmpLtI,    ///< signed rs1 < imm
    kCmpLtUI,   ///< unsigned rs1 < imm
    kCmpEqI,

    // Memory. Effective address = rs1 + imm.
    kLoad,      ///< rd = mem64[rs1 + imm]
    kLoad32,    ///< rd = zext(mem32[rs1 + imm])
    kLoad8,     ///< rd = zext(mem8[rs1 + imm])
    kStore,     ///< mem64[rs1 + imm] = rs2
    kStore32,   ///< mem32[rs1 + imm] = low32(rs2)
    kStore8,    ///< mem8[rs1 + imm] = low8(rs2)

    // Control flow. Branch targets are instruction indices.
    kBeqz,      ///< if (rs1 == 0) goto target
    kBnez,      ///< if (rs1 != 0) goto target
    kJmp,       ///< goto target
};

/** Number of opcodes; Opcode values are dense in [0, kNumOpcodes). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kJmp) + 1;

/** Functional-unit classes mirroring Table 1 of the paper. */
enum class FuClass : uint8_t {
    kIntAlu,    ///< 4 units, 1 cycle
    kIntMul,    ///< 1 unit, 3 cycles
    kIntDiv,    ///< 1 unit, 18 cycles
    kFpAdd,     ///< 1 unit, 3 cycles
    kFpMul,     ///< 1 unit, 5 cycles
    kFpDiv,     ///< 1 unit, 6 cycles
    kMem,       ///< load/store pipe
    kBranch,    ///< resolved on an ALU port
    kNone,      ///< nop/halt
};
inline constexpr int kNumFuClasses = 9;

/**
 * A static instruction. Branch targets are resolved to instruction
 * indices by the ProgramBuilder before execution.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    int64_t imm = 0;
    InstPc target = kInvalidPc;

    // The predicates below run in the decode/issue paths of every
    // model (hundreds of millions of calls per sweep), so they are
    // defined inline; the switches compile down to range checks over
    // the dense Opcode encoding.
    bool
    isLoad() const
    {
        switch (op) {
          case Opcode::kLoad:
          case Opcode::kLoad32:
          case Opcode::kLoad8:
            return true;
          default:
            return false;
        }
    }

    bool
    isStore() const
    {
        switch (op) {
          case Opcode::kStore:
          case Opcode::kStore32:
          case Opcode::kStore8:
            return true;
          default:
            return false;
        }
    }

    bool isMem() const { return isLoad() || isStore(); }

    bool
    isBranch() const
    {
        return op == Opcode::kBeqz || op == Opcode::kBnez ||
               op == Opcode::kJmp;
    }

    bool
    isCondBranch() const
    {
        return op == Opcode::kBeqz || op == Opcode::kBnez;
    }

    bool
    isCompare() const
    {
        switch (op) {
          case Opcode::kCmpLt:
          case Opcode::kCmpLtU:
          case Opcode::kCmpEq:
          case Opcode::kCmpNe:
          case Opcode::kCmpLtI:
          case Opcode::kCmpLtUI:
          case Opcode::kCmpEqI:
          case Opcode::kFCmpLt:
            return true;
          default:
            return false;
        }
    }

    bool
    hasDest() const
    {
        if (isStore() || isBranch())
            return false;
        switch (op) {
          case Opcode::kNop:
          case Opcode::kHalt:
            return false;
          default:
            return true;
        }
    }

    /** True when rs2 is a real source (reg-reg forms, stores). */
    bool
    readsRs2() const
    {
        if (isStore())
            return true;    // rs2 is the store data register
        switch (op) {
          case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
          case Opcode::kDivU: case Opcode::kRemU:
          case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
          case Opcode::kShl: case Opcode::kShr:
          case Opcode::kMin: case Opcode::kMax:
          case Opcode::kFAdd: case Opcode::kFSub:
          case Opcode::kFMul: case Opcode::kFDiv:
          case Opcode::kFCmpLt:
          case Opcode::kCmpLt: case Opcode::kCmpLtU:
          case Opcode::kCmpEq: case Opcode::kCmpNe:
            return true;
          default:
            return false;
        }
    }

    /** Number of register sources actually read (0..2). */
    int
    numSrcs() const
    {
        switch (op) {
          case Opcode::kNop:
          case Opcode::kHalt:
          case Opcode::kLoadImm:
          case Opcode::kJmp:
            return 0;
          default:
            return readsRs2() ? 2 : 1;
        }
    }

    FuClass
    fuClass() const
    {
        switch (op) {
          case Opcode::kNop:
          case Opcode::kHalt:
            return FuClass::kNone;
          case Opcode::kMul:
          case Opcode::kMulI:
          case Opcode::kHash:
            return FuClass::kIntMul;
          case Opcode::kDivU:
          case Opcode::kRemU:
            return FuClass::kIntDiv;
          case Opcode::kFAdd:
          case Opcode::kFSub:
          case Opcode::kI2F:
          case Opcode::kF2I:
          case Opcode::kFCmpLt:
            return FuClass::kFpAdd;
          case Opcode::kFMul:
            return FuClass::kFpMul;
          case Opcode::kFDiv:
            return FuClass::kFpDiv;
          case Opcode::kLoad:
          case Opcode::kLoad32:
          case Opcode::kLoad8:
          case Opcode::kStore:
          case Opcode::kStore32:
          case Opcode::kStore8:
            return FuClass::kMem;
          case Opcode::kBeqz:
          case Opcode::kBnez:
          case Opcode::kJmp:
            return FuClass::kBranch;
          default:
            return FuClass::kIntAlu;
        }
    }

    /** Memory access size in bytes (loads/stores only). */
    uint32_t
    memBytes() const
    {
        switch (op) {
          case Opcode::kLoad:
          case Opcode::kStore:
            return 8;
          case Opcode::kLoad32:
          case Opcode::kStore32:
            return 4;
          case Opcode::kLoad8:
          case Opcode::kStore8:
            return 1;
          default:
            return 0;
        }
    }

    std::string toString() const;
};

/**
 * Functionally evaluate a non-memory, non-branch opcode. Shared by the
 * out-of-order core model and the vector-runahead subthread so the two
 * can never diverge in semantics. Inline: this is the execute stage of
 * every model, including the functional fast-forward interpreter.
 */
inline uint64_t
evalOp(Opcode op, uint64_t s1, uint64_t s2, int64_t imm)
{
    const auto asF = [](uint64_t x) { return std::bit_cast<double>(x); };
    const auto asU = [](double x) { return std::bit_cast<uint64_t>(x); };
    const auto u = static_cast<uint64_t>(imm);
    switch (op) {
      case Opcode::kLoadImm: return u;
      case Opcode::kMov:     return s1;
      case Opcode::kAdd:     return s1 + s2;
      case Opcode::kSub:     return s1 - s2;
      case Opcode::kMul:     return s1 * s2;
      case Opcode::kDivU:    return s2 == 0 ? ~0ULL : s1 / s2;
      case Opcode::kRemU:    return s2 == 0 ? s1 : s1 % s2;
      case Opcode::kAnd:     return s1 & s2;
      case Opcode::kOr:      return s1 | s2;
      case Opcode::kXor:     return s1 ^ s2;
      case Opcode::kShl:     return s1 << (s2 & 63);
      case Opcode::kShr:     return s1 >> (s2 & 63);
      case Opcode::kMin:     return s1 < s2 ? s1 : s2;
      case Opcode::kMax:     return s1 > s2 ? s1 : s2;
      case Opcode::kAddI:    return s1 + u;
      case Opcode::kMulI:    return s1 * u;
      case Opcode::kAndI:    return s1 & u;
      case Opcode::kOrI:     return s1 | u;
      case Opcode::kXorI:    return s1 ^ u;
      case Opcode::kShlI:    return s1 << (imm & 63);
      case Opcode::kShrI:    return s1 >> (imm & 63);
      case Opcode::kHash:    return kernelHash(s1);
      case Opcode::kFAdd:    return asU(asF(s1) + asF(s2));
      case Opcode::kFSub:    return asU(asF(s1) - asF(s2));
      case Opcode::kFMul:    return asU(asF(s1) * asF(s2));
      case Opcode::kFDiv:    return asU(asF(s1) / asF(s2));
      case Opcode::kI2F:     return asU(static_cast<double>(s1));
      case Opcode::kF2I:
        return static_cast<uint64_t>(static_cast<int64_t>(asF(s1)));
      case Opcode::kFCmpLt:  return asF(s1) < asF(s2) ? 1 : 0;
      case Opcode::kCmpLt:
        return static_cast<int64_t>(s1) < static_cast<int64_t>(s2);
      case Opcode::kCmpLtU:  return s1 < s2 ? 1 : 0;
      case Opcode::kCmpEq:   return s1 == s2 ? 1 : 0;
      case Opcode::kCmpNe:   return s1 != s2 ? 1 : 0;
      case Opcode::kCmpLtI:
        return static_cast<int64_t>(s1) < imm ? 1 : 0;
      case Opcode::kCmpLtUI: return s1 < u ? 1 : 0;
      case Opcode::kCmpEqI:  return s1 == u ? 1 : 0;
      default:
        panic("evalOp: opcode has no ALU semantics");
    }
}

/** True when the conditional branch with source value v is taken. */
inline bool
branchTaken(Opcode op, uint64_t v)
{
    switch (op) {
      case Opcode::kBeqz: return v == 0;
      case Opcode::kBnez: return v != 0;
      case Opcode::kJmp:  return true;
      default:
        panic("branchTaken: not a branch");
    }
}

const char *opcodeName(Opcode op);

} // namespace dvr

#endif // DVR_ISA_INSTRUCTION_HH
