/**
 * @file
 * The micro-op ISA the simulated workloads are written in.
 *
 * The ISA is deliberately RISC-like and small: loads/stores with a
 * base-register + immediate addressing mode, three-operand ALU ops,
 * compares that write a register, and conditional branches that read
 * one. This is exactly the shape DVR's hardware analyses expect:
 * striding loads, register dataflow for taint tracking, and compare ->
 * backward-branch pairs for loop-bound inference.
 */

#ifndef DVR_ISA_INSTRUCTION_HH
#define DVR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dvr {

enum class Opcode : uint8_t {
    kNop,
    kHalt,

    // Register moves / immediates.
    kLoadImm,   ///< rd = imm
    kMov,       ///< rd = rs1

    // Integer ALU, register-register.
    kAdd, kSub, kMul, kDivU, kRemU,
    kAnd, kOr, kXor, kShl, kShr,
    kMin, kMax,

    // Integer ALU, register-immediate.
    kAddI, kMulI, kAndI, kOrI, kXorI, kShlI, kShrI,

    // One-cycle-per-stage hash used by the database kernels.
    kHash,      ///< rd = kernelHash(rs1)

    // Floating point on double bit patterns held in integer registers.
    kFAdd, kFSub, kFMul, kFDiv,
    kI2F,       ///< rd = double(rs1 as unsigned)
    kF2I,       ///< rd = uint64(trunc(rs1 as double))
    kFCmpLt,    ///< rd = (rs1 as double) < (rs2 as double)

    // Compares write 0/1 into rd.
    kCmpLt,     ///< signed rs1 < rs2
    kCmpLtU,    ///< unsigned rs1 < rs2
    kCmpEq, kCmpNe,
    kCmpLtI,    ///< signed rs1 < imm
    kCmpLtUI,   ///< unsigned rs1 < imm
    kCmpEqI,

    // Memory. Effective address = rs1 + imm.
    kLoad,      ///< rd = mem64[rs1 + imm]
    kLoad32,    ///< rd = zext(mem32[rs1 + imm])
    kLoad8,     ///< rd = zext(mem8[rs1 + imm])
    kStore,     ///< mem64[rs1 + imm] = rs2
    kStore32,   ///< mem32[rs1 + imm] = low32(rs2)
    kStore8,    ///< mem8[rs1 + imm] = low8(rs2)

    // Control flow. Branch targets are instruction indices.
    kBeqz,      ///< if (rs1 == 0) goto target
    kBnez,      ///< if (rs1 != 0) goto target
    kJmp,       ///< goto target
};

/** Number of opcodes; Opcode values are dense in [0, kNumOpcodes). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kJmp) + 1;

/** Functional-unit classes mirroring Table 1 of the paper. */
enum class FuClass : uint8_t {
    kIntAlu,    ///< 4 units, 1 cycle
    kIntMul,    ///< 1 unit, 3 cycles
    kIntDiv,    ///< 1 unit, 18 cycles
    kFpAdd,     ///< 1 unit, 3 cycles
    kFpMul,     ///< 1 unit, 5 cycles
    kFpDiv,     ///< 1 unit, 6 cycles
    kMem,       ///< load/store pipe
    kBranch,    ///< resolved on an ALU port
    kNone,      ///< nop/halt
};
inline constexpr int kNumFuClasses = 9;

/**
 * A static instruction. Branch targets are resolved to instruction
 * indices by the ProgramBuilder before execution.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    int64_t imm = 0;
    InstPc target = kInvalidPc;

    bool isLoad() const;
    bool isStore() const;
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const;
    bool isCondBranch() const;
    bool isCompare() const;
    bool hasDest() const;
    /** Number of register sources actually read (0..2). */
    int numSrcs() const;
    /** True when rs2 is a real source (reg-reg forms, stores). */
    bool readsRs2() const;
    FuClass fuClass() const;
    /** Memory access size in bytes (loads/stores only). */
    uint32_t memBytes() const;

    std::string toString() const;
};

/**
 * Functionally evaluate a non-memory, non-branch opcode. Shared by the
 * out-of-order core model and the vector-runahead subthread so the two
 * can never diverge in semantics.
 */
uint64_t evalOp(Opcode op, uint64_t s1, uint64_t s2, int64_t imm);

/** True when the conditional branch with source value v is taken. */
bool branchTaken(Opcode op, uint64_t v);

const char *opcodeName(Opcode op);

} // namespace dvr

#endif // DVR_ISA_INSTRUCTION_HH
