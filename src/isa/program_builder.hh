/**
 * @file
 * Fluent assembler for the micro-op ISA: labels with forward
 * references, one emit method per opcode family. All workloads are
 * authored through this class.
 */

#ifndef DVR_ISA_PROGRAM_BUILDER_HH
#define DVR_ISA_PROGRAM_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace dvr {

/**
 * Builds a Program. Branch targets may name labels defined later;
 * build() resolves them and fails loudly on dangling references.
 */
class ProgramBuilder
{
  public:
    /** Define a label at the current position. */
    ProgramBuilder &label(const std::string &name);

    // --- moves -----------------------------------------------------
    ProgramBuilder &li(RegId rd, int64_t imm);
    ProgramBuilder &mov(RegId rd, RegId rs);

    // --- integer ALU -----------------------------------------------
    ProgramBuilder &add(RegId rd, RegId a, RegId b);
    ProgramBuilder &sub(RegId rd, RegId a, RegId b);
    ProgramBuilder &mul(RegId rd, RegId a, RegId b);
    ProgramBuilder &divu(RegId rd, RegId a, RegId b);
    ProgramBuilder &remu(RegId rd, RegId a, RegId b);
    ProgramBuilder &and_(RegId rd, RegId a, RegId b);
    ProgramBuilder &or_(RegId rd, RegId a, RegId b);
    ProgramBuilder &xor_(RegId rd, RegId a, RegId b);
    ProgramBuilder &shl(RegId rd, RegId a, RegId b);
    ProgramBuilder &shr(RegId rd, RegId a, RegId b);
    ProgramBuilder &min(RegId rd, RegId a, RegId b);
    ProgramBuilder &max(RegId rd, RegId a, RegId b);
    ProgramBuilder &addi(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &muli(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &andi(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &ori(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &xori(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &shli(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &shri(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &hash(RegId rd, RegId a);

    // --- floating point (double bit patterns) -----------------------
    ProgramBuilder &fadd(RegId rd, RegId a, RegId b);
    ProgramBuilder &fsub(RegId rd, RegId a, RegId b);
    ProgramBuilder &fmul(RegId rd, RegId a, RegId b);
    ProgramBuilder &fdiv(RegId rd, RegId a, RegId b);
    ProgramBuilder &i2f(RegId rd, RegId a);
    ProgramBuilder &f2i(RegId rd, RegId a);
    ProgramBuilder &fcmplt(RegId rd, RegId a, RegId b);

    // --- compares ---------------------------------------------------
    ProgramBuilder &cmplt(RegId rd, RegId a, RegId b);
    ProgramBuilder &cmpltu(RegId rd, RegId a, RegId b);
    ProgramBuilder &cmpeq(RegId rd, RegId a, RegId b);
    ProgramBuilder &cmpne(RegId rd, RegId a, RegId b);
    ProgramBuilder &cmplti(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &cmpltui(RegId rd, RegId a, int64_t imm);
    ProgramBuilder &cmpeqi(RegId rd, RegId a, int64_t imm);

    // --- memory -----------------------------------------------------
    ProgramBuilder &ld(RegId rd, RegId base, int64_t off = 0);
    ProgramBuilder &ldw(RegId rd, RegId base, int64_t off = 0);
    ProgramBuilder &ldb(RegId rd, RegId base, int64_t off = 0);
    ProgramBuilder &st(RegId base, int64_t off, RegId src);
    ProgramBuilder &stw(RegId base, int64_t off, RegId src);
    ProgramBuilder &stb(RegId base, int64_t off, RegId src);

    // --- control ----------------------------------------------------
    ProgramBuilder &beqz(RegId rs, const std::string &target);
    ProgramBuilder &bnez(RegId rs, const std::string &target);
    ProgramBuilder &jmp(const std::string &target);
    ProgramBuilder &nop();
    ProgramBuilder &halt();

    /** Current position (PC the next emitted instruction will get). */
    InstPc here() const { return static_cast<InstPc>(insts_.size()); }

    /** Resolve label references and produce the Program. */
    Program build();

  private:
    ProgramBuilder &emit(Instruction inst);
    ProgramBuilder &emitBranch(Opcode op, RegId rs,
                               const std::string &target);
    ProgramBuilder &emitRRR(Opcode op, RegId rd, RegId a, RegId b);
    ProgramBuilder &emitRRI(Opcode op, RegId rd, RegId a, int64_t imm);

    std::vector<Instruction> insts_;
    std::map<std::string, InstPc> labels_;
    /** (instruction index, label name) pending fixups. */
    std::vector<std::pair<InstPc, std::string>> fixups_;
};

} // namespace dvr

#endif // DVR_ISA_PROGRAM_BUILDER_HH
