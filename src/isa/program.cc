#include "isa/program.hh"

#include <sstream>

#include "common/log.hh"

namespace dvr {

Program::Program(std::vector<Instruction> insts,
                 std::map<std::string, InstPc> labels)
    : insts_(std::move(insts)), labels_(std::move(labels))
{
}

InstPc
Program::label(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("Program: unknown label '" + name + "'");
    return it->second;
}

std::string
Program::disassemble() const
{
    // Invert the label map for printing.
    std::map<InstPc, std::string> by_pc;
    for (const auto &[name, pc] : labels_)
        by_pc[pc] = by_pc.count(pc) ? by_pc[pc] + "," + name : name;

    std::ostringstream os;
    for (InstPc pc = 0; pc < size(); ++pc) {
        auto it = by_pc.find(pc);
        if (it != by_pc.end())
            os << it->second << ":\n";
        os << "  " << pc << ": " << insts_[pc].toString() << "\n";
    }
    return os.str();
}

} // namespace dvr
