/**
 * @file
 * Per-run manifest: a machine-readable record of everything needed to
 * reproduce and audit a bench run — the fully resolved configuration,
 * the git revision the binary was built from, the host, wall time
 * (accumulated across resume segments), and the complete StatSet of
 * every simulation in the run. Written as MANIFEST_<figure>.json next
 * to each BENCH_<figure>.json.
 *
 * Two on-disk shapes share the schema:
 *
 *  - the standard document: one JSON object with a "runs" array;
 *  - the journal-append variant (src/serve/journal.hh): line 1 is a
 *    complete manifest object with "runs": [], each later line is one
 *    appended run ({"label": ..., "stats": {...}}) or daemon event
 *    ({"event": ...}) object. Crash-safe: a torn tail line is the
 *    only possible damage.
 *
 * validateManifestJson() accepts both and is the single checker
 * shared by the unit tests and `dvr_trace --check`, so the schema
 * cannot drift between the emitter and its consumers.
 */

#ifndef DVR_SIM_MANIFEST_HH
#define DVR_SIM_MANIFEST_HH

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace dvr {

struct SimConfig;

/** Manifest JSON format version (bump on layout changes). */
inline constexpr int kManifestVersion = 2;

class RunManifest
{
  public:
    explicit RunManifest(std::string figure);

    /** Record the fully resolved configuration (schema JSON). */
    void setConfig(const SimConfig &cfg);

    /** Record the already-rendered configuration JSON verbatim. */
    void setConfigJson(const std::string &json);

    /** Record one finished simulation's full stat set. */
    void addRun(const std::string &label, const StatSet &stats);

    /**
     * Record one run from its already-rendered stats JSON (the
     * journal path re-emits worker output verbatim so resumed and
     * uninterrupted sweeps stay byte-identical). Invalid JSON is
     * dropped with a warning.
     */
    void addRunJson(const std::string &label,
                    const std::string &statsJson);

    /**
     * Attach an optional extra top-level object (e.g. "cow" memory
     * sharing counters). `rawJson` must be a valid JSON object; extra
     * keys are additive and not part of the required schema.
     */
    void setExtra(const std::string &key, const std::string &rawJson);

    /**
     * Append one wall-clock segment. A one-shot bench has a single
     * segment; a journaled sweep resumed N times has N+1, and
     * "wall_seconds" reports their sum so the manifest accounts the
     * run's total cost, not just the final segment.
     */
    void addWallSegment(double seconds);

    size_t runCount() const { return runs_.size(); }

    /** Render the manifest document. */
    std::string toJson() const;

    /**
     * Render the manifest as a single compact line with an empty runs
     * array: the header line of the journal-append variant.
     */
    std::string toJournalHeaderLine() const;

    /**
     * Write MANIFEST_<figure>.json into `dir` (the bench-report
     * directory). Returns the path on success and "" on I/O failure
     * (stream state is checked after the write); failure also warns,
     * never throws, so a read-only CWD cannot kill a bench — but the
     * caller can surface a nonzero exit status.
     */
    std::string write(const std::string &dir) const;

    /** Git revision baked in at configure time ("unknown" outside git). */
    static const char *gitSha();

    /** Best-effort host name ("unknown" when unavailable). */
    static std::string hostName();

  private:
    std::string figure_;
    std::string configJson_ = "{}";
    std::vector<double> wallSegments_;
    std::vector<std::pair<std::string, std::string>> extras_;
    /** (label, rendered stats JSON), in insertion order. */
    std::vector<std::pair<std::string, std::string>> runs_;
};

/**
 * Validate a manifest document: must parse as JSON and carry every
 * required top-level key with the right type. A document that is not
 * a single JSON object is also accepted in the journal-append shape
 * (header line + run/event lines). Returns "" when valid, else a
 * one-line description of the first problem.
 */
std::string validateManifestJson(const std::string &text);

/**
 * Validate generic JSON syntax (objects, arrays, strings, numbers,
 * booleans, null). Returns "" when valid, else the first error. Used
 * by the schema tests on every emitted stats/bench document.
 */
std::string validateJsonSyntax(const std::string &text);

/**
 * Minify a JSON document: drop all whitespace outside strings. Used
 * to render multi-line documents as single journal lines.
 */
std::string minifyJson(const std::string &text);

} // namespace dvr

#endif // DVR_SIM_MANIFEST_HH
