/**
 * @file
 * Per-run manifest: a machine-readable record of everything needed to
 * reproduce and audit a bench run — the fully resolved configuration,
 * the git revision the binary was built from, the host, wall time,
 * and the complete StatSet of every simulation in the run. Written as
 * MANIFEST_<figure>.json next to each BENCH_<figure>.json.
 *
 * validateManifestJson() is the single checker shared by the unit
 * tests and `dvr_trace --check`, so the schema cannot drift between
 * the emitter and its consumers.
 */

#ifndef DVR_SIM_MANIFEST_HH
#define DVR_SIM_MANIFEST_HH

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace dvr {

struct SimConfig;

/** Manifest JSON format version (bump on layout changes). */
inline constexpr int kManifestVersion = 1;

class RunManifest
{
  public:
    explicit RunManifest(std::string figure);

    /** Record the fully resolved configuration (schema JSON). */
    void setConfig(const SimConfig &cfg);

    /** Record one finished simulation's full stat set. */
    void addRun(const std::string &label, const StatSet &stats);

    /**
     * Attach an optional extra top-level object (e.g. "cow" memory
     * sharing counters). `rawJson` must be a valid JSON object; extra
     * keys are additive and not part of the required schema.
     */
    void setExtra(const std::string &key, const std::string &rawJson);

    size_t runCount() const { return runs_.size(); }

    /** Render the manifest document. */
    std::string toJson(double wall_seconds) const;

    /**
     * Write MANIFEST_<figure>.json into `dir` (the bench-report
     * directory). Returns the path; warns (never throws) on I/O
     * failure so a read-only CWD cannot kill a bench.
     */
    std::string write(const std::string &dir, double wall_seconds) const;

    /** Git revision baked in at configure time ("unknown" outside git). */
    static const char *gitSha();

    /** Best-effort host name ("unknown" when unavailable). */
    static std::string hostName();

  private:
    std::string figure_;
    std::string configJson_ = "{}";
    std::vector<std::pair<std::string, std::string>> extras_;
    std::vector<std::pair<std::string, StatSet>> runs_;
};

/**
 * Validate a manifest document: must parse as JSON and carry every
 * required top-level key with the right type. Returns "" when valid,
 * else a one-line description of the first problem.
 */
std::string validateManifestJson(const std::string &text);

/**
 * Validate generic JSON syntax (objects, arrays, strings, numbers,
 * booleans, null). Returns "" when valid, else the first error. Used
 * by the schema tests on every emitted stats/bench document.
 */
std::string validateJsonSyntax(const std::string &text);

} // namespace dvr

#endif // DVR_SIM_MANIFEST_HH
