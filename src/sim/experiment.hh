/**
 * @file
 * Helpers shared by the figure/table benches: aligned text tables,
 * normalization, and run caching across techniques (one data-set
 * build per benchmark-input, reused for every technique).
 */

#ifndef DVR_SIM_EXPERIMENT_HH
#define DVR_SIM_EXPERIMENT_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "sim/checkpoint.hh"
#include "sim/manifest.hh"
#include "sim/simulator.hh"

namespace dvr {

class PredecodedProgram;

/** One printed row: a label and one value per column. */
struct TableRow
{
    std::string label;
    std::vector<double> values;
};

/** Print an aligned text table with a title and column headers. */
void printTable(std::ostream &os, const std::string &title,
                const std::vector<std::string> &columns,
                const std::vector<TableRow> &rows, int precision = 3);

/**
 * A benchmark-input with its data set built once, reusable across
 * techniques and core configurations.
 */
class PreparedWorkload
{
  public:
    PreparedWorkload(const std::string &kernel,
                     const std::string &input,
                     const WorkloadParams &params,
                     uint64_t memory_bytes);

    /**
     * Wrap an already-built workload (e.g. one loaded from an edge
     * list) so it can be submitted to the Runner. Takes ownership of
     * the memory image; the caller should have compact()ed it.
     */
    PreparedWorkload(std::string label, SimMemory memory,
                     Workload workload);

    /**
     * Run one simulation. With cfg.warmup.insts > 0 the run restores
     * from an architectural checkpoint; with cfg.warmup.share (the
     * default) one checkpoint is fast-forwarded lazily and shared —
     * CoW, thread-safely — by every subsequent run of this workload.
     */
    SimResult run(const SimConfig &cfg) const;

    /** "bfs_KR" for GAP kernels, plain kernel name for hpc-db. */
    const std::string &label() const { return label_; }
    const Workload &workload() const { return workload_; }
    /** The prepared (compacted) data-set image runs copy from. */
    const SimMemory &memory() const { return memory_; }

    /**
     * The program pre-decoded once at preparation time (see
     * sim/functional_core.hh); checkpoint fast-forward and sampled
     * runs of this workload share it instead of re-decoding per run.
     */
    const PredecodedProgram &predecoded() const { return *pre_; }

  private:
    std::string label_;
    SimMemory memory_;
    Workload workload_;
    std::shared_ptr<const PredecodedProgram> pre_;

    // Shared-checkpoint cache (sim.warmup.share), keyed by the
    // requested warmup length; guarded for concurrent Runner jobs.
    mutable std::mutex ckptMutex_;
    // dvr-guarded-by(ckptMutex_)
    mutable std::shared_ptr<const Checkpoint> ckpt_;
    // dvr-guarded-by(ckptMutex_)
    mutable uint64_t ckptInsts_ = 0;
};

/** Instruction budget and scale shift banner for bench headers. */
void printBenchHeader(std::ostream &os, const std::string &figure,
                      const std::string &what);

/**
 * Echo a sweep's memory-sharing shape: how many simulations ran
 * against how many copy-on-write memory images. The byte-level
 * accounting (bytes avoided vs cloned, copy_reduction) is written by
 * BenchReport::write into the BENCH json "cow" block.
 */
void printSweepSharing(std::ostream &os, size_t runs, size_t images);

/**
 * Wall-clock and throughput accounting for one bench run, written as
 * machine-readable JSON (BENCH_<figure>.json) so the performance
 * trajectory of the harness is tracked across PRs. The clock starts
 * at construction.
 *
 * Every report also carries a RunManifest: setConfig() records the
 * resolved configuration, the labeled addResult() overload records
 * each simulation's full stat set, and write() emits
 * MANIFEST_<figure>.json next to the bench JSON.
 */
class BenchReport
{
  public:
    /** `figure` is a short id like "fig07"; threads = worker count. */
    BenchReport(std::string figure, unsigned threads);

    /** Record the resolved configuration in the manifest. */
    void setConfig(const SimConfig &cfg) { manifest_.setConfig(cfg); }

    /** Account a finished simulation's dynamic instructions. */
    void addResult(const SimResult &r);
    /** As above, and record the run's stats in the manifest. */
    void addResult(const std::string &label, const SimResult &r);
    void addInstructions(uint64_t n) { instructions_ += n; }

    /**
     * Record a run from its already-rendered stats JSON (the serve
     * path replays journaled runs it never executed in-process).
     */
    void addRunJson(const std::string &label, const std::string &json)
    {
        manifest_.addRunJson(label, json);
    }

    /**
     * Attach an extra JSON block (pre-rendered object) emitted into
     * both BENCH_<figure>.json and the manifest under `key` — e.g.
     * the sampling bench's "sampling" accuracy/speedup block. A
     * repeated key replaces the earlier value.
     */
    void setExtra(const std::string &key, const std::string &json);

    /**
     * Record a wall-clock segment spent before this process (a
     * resumed/journaled sweep). write() reports wall_seconds as the
     * sum of all prior segments plus this process's own span, and
     * lists the segments, so a resumed sweep accounts its total cost
     * instead of just the final segment's.
     */
    void addWallSegment(double seconds);

    /**
     * Write BENCH_<figure>.json and MANIFEST_<figure>.json into
     * DVR_BENCH_DIR (default: the current directory) and echo a
     * one-line summary. Returns the bench-report file path, or "" if
     * either document could not be written (the bench's nonzero-exit
     * path; a warning names the failing file).
     */
    std::string write(std::ostream &echo) const;

  private:
    std::string figure_;
    unsigned threads_;
    uint64_t instructions_ = 0;
    /** Wall-clock segments of earlier resume segments, in order. */
    std::vector<double> priorWall_;
    /** Extra (key, pre-rendered JSON) blocks, in insertion order. */
    std::vector<std::pair<std::string, std::string>> extras_;
    /** mutable: write() const attaches the CoW delta at write time. */
    mutable RunManifest manifest_;
    // dvr-lint: allow(wall-clock) bench wall-time report only; never feeds simulated state
    std::chrono::steady_clock::time_point start_;
    /** Process-wide CoW counters at construction (delta = this bench). */
    CowMemStats cowStart_;
    /** Process-wide arena counters at construction (delta = this bench). */
    ArenaProcessStats arenaStart_;
};

} // namespace dvr

#endif // DVR_SIM_EXPERIMENT_HH
