/**
 * @file
 * Helpers shared by the figure/table benches: aligned text tables,
 * normalization, and run caching across techniques (one data-set
 * build per benchmark-input, reused for every technique).
 */

#ifndef DVR_SIM_EXPERIMENT_HH
#define DVR_SIM_EXPERIMENT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace dvr {

/** One printed row: a label and one value per column. */
struct TableRow
{
    std::string label;
    std::vector<double> values;
};

/** Print an aligned text table with a title and column headers. */
void printTable(std::ostream &os, const std::string &title,
                const std::vector<std::string> &columns,
                const std::vector<TableRow> &rows, int precision = 3);

/**
 * A benchmark-input with its data set built once, reusable across
 * techniques and core configurations.
 */
class PreparedWorkload
{
  public:
    PreparedWorkload(const std::string &kernel,
                     const std::string &input,
                     const WorkloadParams &params,
                     uint64_t memory_bytes);

    SimResult run(const SimConfig &cfg) const;

    /** "bfs_KR" for GAP kernels, plain kernel name for hpc-db. */
    const std::string &label() const { return label_; }
    const Workload &workload() const { return workload_; }

  private:
    std::string label_;
    SimMemory memory_;
    Workload workload_;
};

/** Instruction budget and scale shift banner for bench headers. */
void printBenchHeader(std::ostream &os, const std::string &figure,
                      const std::string &what);

} // namespace dvr

#endif // DVR_SIM_EXPERIMENT_HH
