#include "sim/checkpoint.hh"

#include "isa/program.hh"
#include "sim/functional_core.hh"

namespace dvr {

Checkpoint
makeCheckpoint(const PredecodedProgram &pre, const SimMemory &pristine,
               uint64_t warmup_insts)
{
    // The copy is a CoW page-table share; only pages the warmup
    // stores to get cloned, so the checkpoint owns exactly its dirty
    // footprint.
    Checkpoint ckpt{pristine, RegState{}, 0, 0, false};
    FunctionalState st;
    ckpt.insts =
        FunctionalCore(pre, ckpt.memory).run(st, warmup_insts);
    ckpt.regs.value = st.regs;
    ckpt.pc = st.pc;
    ckpt.halted = st.halted;
    return ckpt;
}

Checkpoint
makeCheckpoint(const Program &prog, const SimMemory &pristine,
               uint64_t warmup_insts)
{
    return makeCheckpoint(PredecodedProgram(prog), pristine,
                          warmup_insts);
}

} // namespace dvr
