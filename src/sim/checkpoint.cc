#include "sim/checkpoint.hh"

#include "common/log.hh"
#include "isa/program.hh"

namespace dvr {

Checkpoint
makeCheckpoint(const Program &prog, const SimMemory &pristine,
               uint64_t warmup_insts)
{
    // The copy is a CoW page-table share; only pages the warmup
    // stores to get cloned, so the checkpoint owns exactly its dirty
    // footprint.
    Checkpoint ckpt{pristine, RegState{}, 0, 0, false};
    std::array<uint64_t, kNumArchRegs> &r = ckpt.regs.value;
    InstPc pc = 0;
    uint64_t n = 0;
    for (; n < warmup_insts && prog.valid(pc); ++n) {
        const Instruction &inst = prog.at(pc);
        if (inst.op == Opcode::kHalt) {
            ckpt.halted = true;
            break;
        }
        InstPc next = pc + 1;
        if (inst.isLoad()) {
            const Addr a = r[inst.rs1] + static_cast<Addr>(inst.imm);
            r[inst.rd] = ckpt.memory.read(a, inst.memBytes());
        } else if (inst.isStore()) {
            ckpt.memory.write(r[inst.rs1] + static_cast<Addr>(inst.imm),
                              inst.memBytes(), r[inst.rs2]);
        } else if (inst.isBranch()) {
            if (branchTaken(inst.op, r[inst.rs1]))
                next = inst.target;
        } else if (inst.hasDest()) {
            r[inst.rd] = evalOp(inst.op, r[inst.rs1], r[inst.rs2],
                                inst.imm);
        }
        pc = next;
    }
    if (!prog.valid(pc))
        ckpt.halted = true;
    ckpt.pc = pc;
    ckpt.insts = n;
    return ckpt;
}

} // namespace dvr
