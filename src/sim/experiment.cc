#include "sim/experiment.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "sim/env.hh"

namespace dvr {

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<std::string> &columns,
           const std::vector<TableRow> &rows, int precision)
{
    os << "\n== " << title << " ==\n";
    size_t label_w = 10;
    for (const auto &r : rows)
        label_w = std::max(label_w, r.label.size());
    os << std::left << std::setw(int(label_w) + 2) << "benchmark";
    for (const auto &c : columns)
        os << std::right << std::setw(std::max<int>(12, int(c.size()) + 2))
           << c;
    os << "\n";
    os << std::fixed << std::setprecision(precision);
    for (const auto &r : rows) {
        os << std::left << std::setw(int(label_w) + 2) << r.label;
        for (size_t i = 0; i < columns.size(); ++i) {
            const int w =
                std::max<int>(12, int(columns[i].size()) + 2);
            if (i < r.values.size())
                os << std::right << std::setw(w) << r.values[i];
            else
                os << std::right << std::setw(w) << "-";
        }
        os << "\n";
    }
    os.flush();
}

PreparedWorkload::PreparedWorkload(const std::string &kernel,
                                   const std::string &input,
                                   const WorkloadParams &params,
                                   uint64_t memory_bytes)
    : memory_(memory_bytes)
{
    WorkloadParams wp = params;
    if (!input.empty())
        wp.input = input;
    workload_ = workloadFactory(kernel)(memory_, wp);
    memory_.compact();  // per-run copies only touch live bytes
    label_ = input.empty() ? kernel : kernel + "_" + input;
}

PreparedWorkload::PreparedWorkload(std::string label, SimMemory memory,
                                   Workload workload)
    : label_(std::move(label)), memory_(std::move(memory)),
      workload_(std::move(workload))
{
}

SimResult
PreparedWorkload::run(const SimConfig &cfg) const
{
    return Simulator::runOn(cfg, workload_, memory_);
}

void
printBenchHeader(std::ostream &os, const std::string &figure,
                 const std::string &what)
{
    os << "\n########################################################\n"
       << "# " << figure << ": " << what << "\n"
       << "# core: 5-wide OoO, 350-entry ROB, TAGE, L1D 32KB /\n"
       << "#       L2 256KB / L3 8MB, 24 MSHRs, stride prefetcher\n"
       << "# budget: " << SimConfig::defaultMaxInstructions()
       << " instructions/run (DVR_INSTS), scale shift "
       << SimConfig::defaultScaleShift() << " (DVR_SCALE_SHIFT)\n"
       << "########################################################\n";
    os.flush();
}

BenchReport::BenchReport(std::string figure, unsigned threads)
    : figure_(std::move(figure)), threads_(threads),
      manifest_(figure_), start_(std::chrono::steady_clock::now())
{
}

void
BenchReport::addResult(const SimResult &r)
{
    instructions_ += r.core.instructions;
}

void
BenchReport::addResult(const std::string &label, const SimResult &r)
{
    addResult(r);
    manifest_.addRun(label, r.stats);
}

std::string
BenchReport::write(std::ostream &echo) const
{
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double mips =
        wall > 0.0 ? double(instructions_) / wall / 1e6 : 0.0;

    const std::string dir = env::benchDir().value_or(".");
    const std::string path = dir + "/BENCH_" + figure_ + ".json";

    std::ostringstream json;
    json << std::fixed << std::setprecision(3) << "{\n"
         << "  \"figure\": \"" << figure_ << "\",\n"
         << "  \"threads\": " << threads_ << ",\n"
         << "  \"wall_seconds\": " << wall << ",\n"
         << "  \"simulated_instructions\": " << instructions_ << ",\n"
         << "  \"simulated_mips\": " << mips << "\n"
         << "}\n";
    std::ofstream out(path);
    out << json.str();
    out.flush();
    if (!out) {
        warn("BenchReport: cannot write " + path +
             " (does DVR_BENCH_DIR exist?)");
    }
    manifest_.write(dir, wall);

    echo << "\n[" << path << "] wall " << std::fixed
         << std::setprecision(1) << wall << " s, "
         << std::setprecision(1) << mips << " simulated MIPS, "
         << threads_ << (threads_ == 1 ? " thread" : " threads")
         << "\n";
    echo.flush();
    return path;
}

} // namespace dvr
