#include "sim/experiment.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "sim/env.hh"
#include "sim/functional_core.hh"
#include "sim/sampling.hh"

namespace dvr {

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<std::string> &columns,
           const std::vector<TableRow> &rows, int precision)
{
    os << "\n== " << title << " ==\n";
    size_t label_w = 10;
    for (const auto &r : rows)
        label_w = std::max(label_w, r.label.size());
    os << std::left << std::setw(int(label_w) + 2) << "benchmark";
    for (const auto &c : columns)
        os << std::right << std::setw(std::max<int>(12, int(c.size()) + 2))
           << c;
    os << "\n";
    os << std::fixed << std::setprecision(precision);
    for (const auto &r : rows) {
        os << std::left << std::setw(int(label_w) + 2) << r.label;
        for (size_t i = 0; i < columns.size(); ++i) {
            const int w =
                std::max<int>(12, int(columns[i].size()) + 2);
            if (i < r.values.size())
                os << std::right << std::setw(w) << r.values[i];
            else
                os << std::right << std::setw(w) << "-";
        }
        os << "\n";
    }
    os.flush();
}

PreparedWorkload::PreparedWorkload(const std::string &kernel,
                                   const std::string &input,
                                   const WorkloadParams &params,
                                   uint64_t memory_bytes)
    : memory_(memory_bytes)
{
    WorkloadParams wp = params;
    if (!input.empty())
        wp.input = input;
    workload_ = workloadFactory(kernel)(memory_, wp);
    memory_.compact();  // per-run copies only touch live bytes
    label_ = input.empty() ? kernel : kernel + "_" + input;
    pre_ = std::make_shared<const PredecodedProgram>(workload_.program);
}

PreparedWorkload::PreparedWorkload(std::string label, SimMemory memory,
                                   Workload workload)
    : label_(std::move(label)), memory_(std::move(memory)),
      workload_(std::move(workload)),
      pre_(std::make_shared<const PredecodedProgram>(workload_.program))
{
}

SimResult
PreparedWorkload::run(const SimConfig &cfg) const
{
    // Fresh arena epoch per sweep point: the run's frames rewind over
    // blocks recycled from earlier points on this worker thread, so
    // after each thread's first run a sweep point costs O(1) heap
    // allocations.
    Arena::forCurrentThread().reset();
    // Sampled runs get the cached pre-decode; the exact paths fall
    // through to Simulator::runOn unchanged.
    const bool sampled = cfg.sample.interval > 0;
    if (cfg.warmup.insts == 0) {
        if (sampled) {
            return runSampled(cfg, workload_, memory_, nullptr, 0,
                              pre_.get());
        }
        return Simulator::runOn(cfg, workload_, memory_);
    }
    if (!cfg.warmup.share) {
        const Checkpoint ckpt =
            makeCheckpoint(*pre_, memory_, cfg.warmup.insts);
        if (sampled) {
            return runSampled(cfg, workload_, ckpt.memory, &ckpt.regs,
                              ckpt.pc, pre_.get());
        }
        return Simulator::runOn(cfg, workload_, ckpt);
    }
    // Shared checkpoint: fast-forward once, lazily, and hand every run
    // a CoW view of the warmed state. shared_ptr keeps a stale
    // checkpoint alive for runs already holding it if a different
    // warmup length replaces the cache mid-sweep.
    std::shared_ptr<const Checkpoint> ckpt;
    {
        std::lock_guard<std::mutex> lock(ckptMutex_);
        if (!ckpt_ || ckptInsts_ != cfg.warmup.insts) {
            ckpt_ = std::make_shared<const Checkpoint>(makeCheckpoint(
                *pre_, memory_, cfg.warmup.insts));
            ckptInsts_ = cfg.warmup.insts;
        }
        ckpt = ckpt_;
    }
    if (sampled) {
        return runSampled(cfg, workload_, ckpt->memory, &ckpt->regs,
                          ckpt->pc, pre_.get());
    }
    return Simulator::runOn(cfg, workload_, *ckpt);
}

void
printBenchHeader(std::ostream &os, const std::string &figure,
                 const std::string &what)
{
    os << "\n########################################################\n"
       << "# " << figure << ": " << what << "\n"
       << "# core: 5-wide OoO, 350-entry ROB, TAGE, L1D 32KB /\n"
       << "#       L2 256KB / L3 8MB, 24 MSHRs, stride prefetcher\n"
       << "# budget: " << SimConfig::defaultMaxInstructions()
       << " instructions/run (DVR_INSTS), scale shift "
       << SimConfig::defaultScaleShift() << " (DVR_SCALE_SHIFT)\n"
       << "########################################################\n";
    os.flush();
}

void
printSweepSharing(std::ostream &os, size_t runs, size_t images)
{
    os << "\n" << runs << " runs shared " << images
       << " copy-on-write memory image" << (images == 1 ? "" : "s")
       << " (clone traffic: BENCH json \"cow\" block)\n";
}

BenchReport::BenchReport(std::string figure, unsigned threads)
    : figure_(std::move(figure)), threads_(threads),
      // dvr-lint: allow(wall-clock) bench wall-time report only; never feeds simulated state
      manifest_(figure_), start_(std::chrono::steady_clock::now()),
      cowStart_(SimMemory::cowStats()),
      arenaStart_(Arena::processStats())
{
}

void
BenchReport::addResult(const SimResult &r)
{
    instructions_ += r.core.instructions;
}

void
BenchReport::addResult(const std::string &label, const SimResult &r)
{
    addResult(r);
    manifest_.addRun(label, r.stats);
}

void
BenchReport::setExtra(const std::string &key, const std::string &json)
{
    for (auto &[k, v] : extras_) {
        if (k == key) {
            v = json;
            return;
        }
    }
    extras_.emplace_back(key, json);
}

void
BenchReport::addWallSegment(double seconds)
{
    priorWall_.push_back(seconds);
}

std::string
BenchReport::write(std::ostream &echo) const
{
    const double segment =
        // dvr-lint: allow(wall-clock) bench wall-time report only; never feeds simulated state
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Total cost across resume segments: the prior segments a resumed
    // sweep carried over, plus this process's own span.
    std::vector<double> segments = priorWall_;
    segments.push_back(segment);
    double wall = 0.0;
    for (double s : segments)
        wall += s;
    const double mips =
        wall > 0.0 ? double(instructions_) / wall / 1e6 : 0.0;

    const std::string dir = env::benchDir().value_or(".");
    const std::string path = dir + "/BENCH_" + figure_ + ".json";

    // This bench's CoW memory-sharing delta: how many image copies it
    // made, how many bytes page sharing avoided copying, and how many
    // bytes first-writes actually cloned. copy_reduction is the
    // headline win: copied-bytes avoided per byte still cloned.
    const CowMemStats cow =
        SimMemory::cowStats().since(cowStart_);
    const double reduction =
        double(cow.bytesAvoided) /
        double(cow.bytesCloned > 0 ? cow.bytesCloned : 1);
    std::ostringstream cowJson;
    cowJson << "{\n"
            << "    \"image_copies\": " << cow.imageCopies << ",\n"
            << "    \"bytes_avoided\": " << cow.bytesAvoided << ",\n"
            << "    \"pages_shared\": " << cow.pagesShared << ",\n"
            << "    \"pages_cloned\": " << cow.pagesCloned << ",\n"
            << "    \"bytes_cloned\": " << cow.bytesCloned << ",\n"
            << "    \"pages_materialized\": " << cow.pagesMaterialized
            << ",\n"
            << "    \"copy_reduction\": " << std::fixed
            << std::setprecision(1) << reduction << "\n  }";

    // Per-run cost accounting for the arena allocator: how many heap
    // allocations and bytes the bench's simulations actually paid for,
    // and the headline allocs-per-kilo-instruction figure the CI
    // throughput gate budgets (tools/check_throughput.py).
    const ArenaProcessStats arena =
        Arena::processStats().since(arenaStart_);
    const double kinsts = double(instructions_) / 1e3;
    const double allocsPerKinst =
        kinsts > 0.0 ? double(arena.allocCalls) / kinsts : 0.0;
    std::ostringstream arenaJson;
    arenaJson << "{\n"
              << "    \"allocs\": " << arena.allocCalls << ",\n"
              << "    \"bytes\": " << arena.bytesServed << ",\n"
              << "    \"blocks\": " << arena.blocks << ",\n"
              << "    \"block_bytes\": " << arena.blockBytes << ",\n"
              << "    \"resets\": " << arena.resets << ",\n"
              << "    \"high_water\": " << arena.highWater << ",\n"
              << "    \"allocs_per_kinst\": " << std::fixed
              << std::setprecision(3) << allocsPerKinst << "\n  }";

    std::ostringstream json;
    json << std::fixed << std::setprecision(3) << "{\n"
         << "  \"figure\": \"" << figure_ << "\",\n"
         << "  \"threads\": " << threads_ << ",\n"
         << "  \"wall_seconds\": " << wall << ",\n"
         << "  \"wall_segments\": [";
    for (size_t i = 0; i < segments.size(); ++i)
        json << (i ? ", " : "") << segments[i];
    json << "],\n"
         << "  \"simulated_instructions\": " << instructions_ << ",\n"
         << "  \"simulated_mips\": " << mips << ",\n"
         << "  \"cow\": " << cowJson.str() << ",\n"
         << "  \"arena\": " << arenaJson.str();
    for (const auto &[key, extra] : extras_)
        json << ",\n  \"" << key << "\": " << extra;
    json << "\n}\n";
    std::ofstream out(path);
    out << json.str();
    out.flush();
    bool ok = true;
    if (!out) {
        warn("BenchReport: cannot write " + path +
             " (does DVR_BENCH_DIR exist?)");
        ok = false;
    }
    manifest_.setExtra("cow", cowJson.str());
    manifest_.setExtra("arena", arenaJson.str());
    for (const auto &[key, extra] : extras_)
        manifest_.setExtra(key, extra);
    for (double s : segments)
        manifest_.addWallSegment(s);
    if (manifest_.write(dir).empty())
        ok = false;

    echo << "\n[" << path << "] wall " << std::fixed
         << std::setprecision(1) << wall << " s, "
         << std::setprecision(1) << mips << " simulated MIPS, "
         << threads_ << (threads_ == 1 ? " thread" : " threads")
         << "\n";
    const double mib = 1024.0 * 1024.0;
    echo << "[cow] " << cow.imageCopies << " image copies: "
         << std::setprecision(1) << double(cow.bytesAvoided) / mib
         << " MiB share-avoided vs "
         << double(cow.bytesCloned) / mib << " MiB cloned ("
         << reduction << "x copy reduction)\n";
    echo << "[arena] " << arena.allocCalls << " allocs over "
         << arena.resets << " epochs, " << std::setprecision(1)
         << double(arena.highWater) / mib << " MiB high water ("
         << std::setprecision(3) << allocsPerKinst
         << " allocs/kinst)\n";
    echo.flush();
    return ok ? path : "";
}

} // namespace dvr
