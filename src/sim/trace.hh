/**
 * @file
 * Zero-overhead-when-off event trace. Components emit typed events
 * (discovery, spawn, divergence, reconvergence, NDM, mshr-stall) into
 * a fixed-size ring buffer that drains to a binary sink, a JSONL
 * sink, or both. With every category masked off — the default — the
 * only cost on any hot path is one relaxed atomic load and a
 * predictable branch, so tracing never perturbs timing results
 * (golden parity is byte-identical with tracing off).
 *
 * The emit side is thread-safe: the category mask is configured once
 * by the driver before worker threads start, and the ring/sinks are
 * mutex-protected. Categories are selected with `--trace=<cats>` in
 * dvr_run (a comma list or "all"); the binary sink is decoded by
 * tools/dvr_trace.
 */

#ifndef DVR_SIM_TRACE_HH
#define DVR_SIM_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dvr {

/** Event categories; bit positions in the enable mask. */
enum class TraceCat : uint8_t {
    kDiscovery,     ///< Discovery Mode begin/done/switch/abort
    kSpawn,         ///< runahead episode spawned
    kDivergence,    ///< lane group split (or VR-style invalidation)
    kReconvergence, ///< deferred lane group resumed
    kNdm,           ///< Nested Discovery Mode phase transitions
    kMshrStall,     ///< request delayed waiting for a free MSHR
};
inline constexpr unsigned kNumTraceCats = 6;

/**
 * One trace record. Fixed 32-byte POD layout; written verbatim to the
 * binary sink, so changing it bumps the format version in trace.cc.
 */
struct TraceEvent
{
    Cycle cycle;
    uint64_t a;     ///< category-specific payload (see dvr_trace)
    uint64_t b;     ///< second payload
    InstPc pc;
    uint8_t cat;
    uint8_t pad[3];
};
static_assert(sizeof(TraceEvent) == 32, "binary trace format drifted");

class Trace
{
  public:
    /** Hot-path gate: one relaxed load + branch when tracing is off. */
    static bool enabled(TraceCat c)
    {
        return (mask_.load(std::memory_order_relaxed) >>
                static_cast<unsigned>(c)) &
               1u;
    }

    /** Record an event; no-op unless the category is enabled. */
    static void emit(TraceCat c, Cycle cycle, InstPc pc, uint64_t a = 0,
                     uint64_t b = 0);

    /**
     * Parse a category spec: a comma-separated list of category
     * names, "all", or "" / "none" for nothing. fatal()s on an
     * unknown name, listing the valid ones.
     */
    static uint32_t parseCategories(const std::string &spec);

    /** Parse `spec` and install the resulting enable mask. */
    static void configure(const std::string &spec);

    static uint32_t mask()
    {
        return mask_.load(std::memory_order_relaxed);
    }

    /** Attach a JSONL sink (one JSON object per event, per line). */
    static void setJsonlSink(const std::string &path);

    /** Attach a binary sink (header + raw TraceEvent records). */
    static void setBinarySink(const std::string &path);

    /** Drain the ring buffer into the attached sinks. */
    static void flush();

    /** Flush, close sinks, and mask all categories off. */
    static void shutdown();

    /** Total events recorded since the last reset. */
    static uint64_t emitted();

    /** Buffered (not yet flushed) events; for tests. */
    static std::vector<TraceEvent> buffered();

    /** Drop all state: mask off, sinks closed, ring cleared. */
    static void reset();

    static const char *categoryName(TraceCat c);
    /** All category names, comma-separated (help/error text). */
    static std::string categoryList();

    /** Ring capacity before an implicit flush (binary/JSONL sinks). */
    static constexpr size_t kRingSize = 4096;

  private:
    static std::atomic<uint32_t> mask_;
};

} // namespace dvr

#endif // DVR_SIM_TRACE_HH
