#include "sim/manifest.hh"

#include <unistd.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hh"
#include "sim/config_schema.hh"

namespace dvr {

namespace {

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/**
 * Recursive-descent JSON syntax checker (objects, arrays, strings,
 * numbers, true/false/null). Also records the root object's keys and
 * each value's kind: 'o'bject, 'a'rray, 's'tring, 'n'umber, 'b'ool,
 * 'z' (null).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    /** "" when the document is valid JSON, else the first error. */
    std::string
    check()
    {
        skipWs();
        char kind = 0;
        if (!value(kind, /*atRoot=*/true))
            return err_;
        skipWs();
        if (i_ != s_.size())
            return at("trailing characters after document");
        return "";
    }

    const std::map<std::string, char> &
    topKeys() const
    {
        return top_;
    }

  private:
    std::string
    at(const std::string &what) const
    {
        return what + " (offset " + std::to_string(i_) + ")";
    }

    bool
    fail(const std::string &what)
    {
        if (err_.empty())
            err_ = at(what);
        return false;
    }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r' ||
                s_[i_] == '\n')) {
            ++i_;
        }
    }

    char
    peek() const
    {
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (i_ >= s_.size() || s_[i_] != *p)
                return fail(std::string("bad literal (expected '") +
                            word + "')");
            ++i_;
        }
        return true;
    }

    bool
    string(std::string &out)
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++i_;
        out.clear();
        while (i_ < s_.size()) {
            const char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (i_ >= s_.size())
                    break;
                out += s_[i_++];
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const size_t start = i_;
        if (peek() == '-')
            ++i_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++i_;
        if (peek() == '.') {
            ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (i_ == start || (i_ == start + 1 && s_[start] == '-'))
            return fail("expected a value");
        return true;
    }

    bool
    value(char &kind, bool atRoot = false)
    {
        skipWs();
        const char c = peek();
        if (c == '{') {
            kind = 'o';
            return object(atRoot);
        }
        if (c == '[') {
            kind = 'a';
            return array();
        }
        if (c == '"') {
            kind = 's';
            std::string s;
            return string(s);
        }
        if (c == 't') {
            kind = 'b';
            return literal("true");
        }
        if (c == 'f') {
            kind = 'b';
            return literal("false");
        }
        if (c == 'n') {
            kind = 'z';
            return literal("null");
        }
        kind = 'n';
        return number();
    }

    bool
    object(bool atRoot)
    {
        ++i_;   // '{'
        skipWs();
        if (peek() == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':'");
            ++i_;
            char kind = 0;
            if (!value(kind))
                return false;
            if (atRoot)
                top_[key] = kind;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == '}') {
                ++i_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++i_;   // '['
        skipWs();
        if (peek() == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            char kind = 0;
            if (!value(kind))
                return false;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == ']') {
                ++i_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &s_;
    size_t i_ = 0;
    std::string err_;
    std::map<std::string, char> top_;
};

/** Strip a trailing newline so embedded documents compose cleanly. */
std::string
chomp(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

} // namespace

RunManifest::RunManifest(std::string figure)
    : figure_(std::move(figure))
{
}

void
RunManifest::setConfig(const SimConfig &cfg)
{
    configJson_ = chomp(ConfigSchema::instance().toJson(cfg));
}

void
RunManifest::addRun(const std::string &label, const StatSet &stats)
{
    runs_.emplace_back(label, stats);
}

void
RunManifest::setExtra(const std::string &key, const std::string &rawJson)
{
    const std::string err = validateJsonSyntax(rawJson);
    if (!err.empty()) {
        warn("RunManifest: dropping invalid extra \"" + key +
             "\": " + err);
        return;
    }
    for (auto &[k, v] : extras_) {
        if (k == key) {
            v = chomp(rawJson);
            return;
        }
    }
    extras_.emplace_back(key, chomp(rawJson));
}

std::string
RunManifest::toJson(double wall_seconds) const
{
    std::ostringstream os;
    os << "{\n"
       << "  \"manifest_version\": " << kManifestVersion << ",\n"
       << "  \"figure\": " << quote(figure_) << ",\n"
       << "  \"git_sha\": " << quote(gitSha()) << ",\n"
       << "  \"host\": " << quote(hostName()) << ",\n";
    os << "  \"wall_seconds\": ";
    os.setf(std::ios::fixed);
    os.precision(3);
    os << wall_seconds << ",\n"
       << "  \"config\": " << configJson_ << ",\n";
    for (const auto &[key, json] : extras_)
        os << "  " << quote(key) << ": " << json << ",\n";
    os << "  \"runs\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
        os << (i ? ",\n" : "\n") << "    {\"label\": "
           << quote(runs_[i].first)
           << ", \"stats\": " << chomp(runs_[i].second.toJson(6)) << "}";
    }
    os << (runs_.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return os.str();
}

std::string
RunManifest::write(const std::string &dir, double wall_seconds) const
{
    const std::string path = dir + "/MANIFEST_" + figure_ + ".json";
    std::ofstream out(path);
    out << toJson(wall_seconds);
    out.flush();
    if (!out)
        warn("RunManifest: cannot write " + path);
    return path;
}

const char *
RunManifest::gitSha()
{
#ifdef DVR_GIT_SHA
    return DVR_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
RunManifest::hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf[0] ? buf : "unknown";
}

std::string
validateJsonSyntax(const std::string &text)
{
    return JsonChecker(text).check();
}

std::string
validateManifestJson(const std::string &text)
{
    JsonChecker checker(text);
    const std::string err = checker.check();
    if (!err.empty())
        return err;
    static const std::pair<const char *, char> kRequired[] = {
        {"manifest_version", 'n'}, {"figure", 's'},
        {"git_sha", 's'},          {"host", 's'},
        {"wall_seconds", 'n'},     {"config", 'o'},
        {"runs", 'a'},
    };
    const auto &keys = checker.topKeys();
    for (const auto &[name, kind] : kRequired) {
        const auto it = keys.find(name);
        if (it == keys.end())
            return std::string("missing required key \"") + name + "\"";
        if (it->second != kind)
            return std::string("key \"") + name + "\" has wrong type";
    }
    return "";
}

} // namespace dvr
