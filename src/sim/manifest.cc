#include "sim/manifest.hh"

#include <unistd.h>

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hh"
#include "sim/config_schema.hh"

namespace dvr {

namespace {

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/**
 * Recursive-descent JSON syntax checker (objects, arrays, strings,
 * numbers, true/false/null). Also records the root object's keys and
 * each value's kind: 'o'bject, 'a'rray, 's'tring, 'n'umber, 'b'ool,
 * 'z' (null).
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    /** "" when the document is valid JSON, else the first error. */
    std::string
    check()
    {
        skipWs();
        char kind = 0;
        if (!value(kind, /*atRoot=*/true))
            return err_;
        skipWs();
        if (i_ != s_.size())
            return at("trailing characters after document");
        return "";
    }

    const std::map<std::string, char> &
    topKeys() const
    {
        return top_;
    }

  private:
    std::string
    at(const std::string &what) const
    {
        return what + " (offset " + std::to_string(i_) + ")";
    }

    bool
    fail(const std::string &what)
    {
        if (err_.empty())
            err_ = at(what);
        return false;
    }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r' ||
                s_[i_] == '\n')) {
            ++i_;
        }
    }

    char
    peek() const
    {
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (i_ >= s_.size() || s_[i_] != *p)
                return fail(std::string("bad literal (expected '") +
                            word + "')");
            ++i_;
        }
        return true;
    }

    bool
    string(std::string &out)
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++i_;
        out.clear();
        while (i_ < s_.size()) {
            const char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (i_ >= s_.size())
                    break;
                out += s_[i_++];
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const size_t start = i_;
        if (peek() == '-')
            ++i_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++i_;
        if (peek() == '.') {
            ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (i_ == start || (i_ == start + 1 && s_[start] == '-'))
            return fail("expected a value");
        return true;
    }

    bool
    value(char &kind, bool atRoot = false)
    {
        skipWs();
        const char c = peek();
        if (c == '{') {
            kind = 'o';
            return object(atRoot);
        }
        if (c == '[') {
            kind = 'a';
            return array();
        }
        if (c == '"') {
            kind = 's';
            std::string s;
            return string(s);
        }
        if (c == 't') {
            kind = 'b';
            return literal("true");
        }
        if (c == 'f') {
            kind = 'b';
            return literal("false");
        }
        if (c == 'n') {
            kind = 'z';
            return literal("null");
        }
        kind = 'n';
        return number();
    }

    bool
    object(bool atRoot)
    {
        ++i_;   // '{'
        skipWs();
        if (peek() == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':'");
            ++i_;
            char kind = 0;
            if (!value(kind))
                return false;
            if (atRoot)
                top_[key] = kind;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == '}') {
                ++i_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++i_;   // '['
        skipWs();
        if (peek() == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            char kind = 0;
            if (!value(kind))
                return false;
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == ']') {
                ++i_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &s_;
    size_t i_ = 0;
    std::string err_;
    std::map<std::string, char> top_;
};

/** Strip a trailing newline so embedded documents compose cleanly. */
std::string
chomp(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

} // namespace

RunManifest::RunManifest(std::string figure)
    : figure_(std::move(figure))
{
}

void
RunManifest::setConfig(const SimConfig &cfg)
{
    configJson_ = chomp(ConfigSchema::instance().toJson(cfg));
}

void
RunManifest::setConfigJson(const std::string &json)
{
    const std::string err = validateJsonSyntax(json);
    if (!err.empty()) {
        warn("RunManifest: ignoring invalid config JSON: " + err);
        return;
    }
    configJson_ = chomp(json);
}

void
RunManifest::addRun(const std::string &label, const StatSet &stats)
{
    runs_.emplace_back(label, chomp(stats.toJson(6)));
}

void
RunManifest::addRunJson(const std::string &label,
                        const std::string &statsJson)
{
    const std::string err = validateJsonSyntax(statsJson);
    if (!err.empty()) {
        warn("RunManifest: dropping run \"" + label +
             "\" with invalid stats JSON: " + err);
        return;
    }
    runs_.emplace_back(label, chomp(statsJson));
}

void
RunManifest::addWallSegment(double seconds)
{
    wallSegments_.push_back(seconds);
}

void
RunManifest::setExtra(const std::string &key, const std::string &rawJson)
{
    const std::string err = validateJsonSyntax(rawJson);
    if (!err.empty()) {
        warn("RunManifest: dropping invalid extra \"" + key +
             "\": " + err);
        return;
    }
    for (auto &[k, v] : extras_) {
        if (k == key) {
            v = chomp(rawJson);
            return;
        }
    }
    extras_.emplace_back(key, chomp(rawJson));
}

std::string
RunManifest::toJson() const
{
    double total = 0.0;
    for (double s : wallSegments_)
        total += s;
    std::ostringstream os;
    os << "{\n"
       << "  \"manifest_version\": " << kManifestVersion << ",\n"
       << "  \"figure\": " << quote(figure_) << ",\n"
       << "  \"git_sha\": " << quote(gitSha()) << ",\n"
       << "  \"host\": " << quote(hostName()) << ",\n";
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "  \"wall_seconds\": " << total << ",\n"
       << "  \"wall_segments\": [";
    for (size_t i = 0; i < wallSegments_.size(); ++i)
        os << (i ? ", " : "") << wallSegments_[i];
    os << "],\n"
       << "  \"config\": " << configJson_ << ",\n";
    for (const auto &[key, json] : extras_)
        os << "  " << quote(key) << ": " << json << ",\n";
    os << "  \"runs\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
        os << (i ? ",\n" : "\n") << "    {\"label\": "
           << quote(runs_[i].first)
           << ", \"stats\": " << runs_[i].second << "}";
    }
    os << (runs_.empty() ? "]\n" : "\n  ]\n") << "}\n";
    return os.str();
}

std::string
RunManifest::toJournalHeaderLine() const
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "{\"manifest_version\": " << kManifestVersion
       << ", \"figure\": " << quote(figure_)
       << ", \"git_sha\": " << quote(gitSha())
       << ", \"host\": " << quote(hostName())
       << ", \"wall_seconds\": 0.000, \"wall_segments\": []"
       << ", \"config\": " << minifyJson(configJson_)
       << ", \"runs\": []}";
    return minifyJson(os.str());
}

std::string
RunManifest::write(const std::string &dir) const
{
    const std::string path = dir + "/MANIFEST_" + figure_ + ".json";
    std::ofstream out(path);
    out << toJson();
    out.flush();
    if (!out) {
        warn("RunManifest: cannot write " + path);
        return "";
    }
    return path;
}

const char *
RunManifest::gitSha()
{
#ifdef DVR_GIT_SHA
    return DVR_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
RunManifest::hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf[0] ? buf : "unknown";
}

std::string
validateJsonSyntax(const std::string &text)
{
    return JsonChecker(text).check();
}

std::string
minifyJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    bool inString = false;
    bool escaped = false;
    for (char c : text) {
        if (inString) {
            out += c;
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n')
            continue;
        out += c;
        if (c == '"')
            inString = true;
    }
    return out;
}

namespace {

/** Required-key check over an already syntax-valid root object. */
std::string
checkManifestKeys(const std::map<std::string, char> &keys)
{
    static const std::pair<const char *, char> kRequired[] = {
        {"manifest_version", 'n'}, {"figure", 's'},
        {"git_sha", 's'},          {"host", 's'},
        {"wall_seconds", 'n'},     {"wall_segments", 'a'},
        {"config", 'o'},           {"runs", 'a'},
    };
    for (const auto &[name, kind] : kRequired) {
        const auto it = keys.find(name);
        if (it == keys.end())
            return std::string("missing required key \"") + name + "\"";
        if (it->second != kind)
            return std::string("key \"") + name + "\" has wrong type";
    }
    return "";
}

/**
 * The journal-append shape: line 1 is a complete manifest object,
 * each later non-empty line is one run ({"label", "stats"}) or event
 * ({"event", ...}) object (src/serve/journal.hh).
 */
std::string
validateManifestJournal(const std::string &text)
{
    const size_t eol = text.find('\n');
    const std::string header = text.substr(0, eol);
    JsonChecker hc(header);
    const std::string herr = hc.check();
    if (!herr.empty())
        return "journal header: " + herr;
    if (const std::string kerr = checkManifestKeys(hc.topKeys());
        !kerr.empty()) {
        return "journal header: " + kerr;
    }
    size_t lineNo = 1;
    size_t pos = eol == std::string::npos ? text.size() : eol + 1;
    while (pos < text.size()) {
        ++lineNo;
        const size_t end = text.find('\n', pos);
        const std::string line = text.substr(
            pos, end == std::string::npos ? std::string::npos
                                          : end - pos);
        pos = end == std::string::npos ? text.size() : end + 1;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonChecker lc(line);
        const std::string lerr = lc.check();
        if (!lerr.empty()) {
            return "journal line " + std::to_string(lineNo) + ": " +
                   lerr;
        }
        const auto &keys = lc.topKeys();
        if (keys.count("event"))
            continue;
        const auto label = keys.find("label");
        const auto stats = keys.find("stats");
        if (label == keys.end() || label->second != 's' ||
            stats == keys.end() || stats->second != 'o') {
            return "journal line " + std::to_string(lineNo) +
                   ": expected {\"label\": ..., \"stats\": {...}} or "
                   "an {\"event\": ...} object";
        }
    }
    return "";
}

} // namespace

std::string
validateManifestJson(const std::string &text)
{
    JsonChecker checker(text);
    const std::string err = checker.check();
    if (err.empty())
        return checkManifestKeys(checker.topKeys());
    // Not a single JSON document: try the journal-append variant
    // (which only helps if the first line alone is a valid header).
    const std::string jerr = validateManifestJournal(text);
    if (jerr.empty())
        return "";
    // Prefer the whole-document error unless the header parsed,
    // in which case the journal diagnosis is the useful one.
    return jerr.rfind("journal header:", 0) == 0 ? err : jerr;
}

} // namespace dvr
