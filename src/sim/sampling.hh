/**
 * @file
 * Interval-sampled simulation (SMARTS-style).
 *
 * Detailed out-of-order simulation costs ~1000x functional execution;
 * sampling recovers whole-run CPI from short detailed windows. Each
 * interval of `sim.sample.interval` instructions runs three phases on
 * ONE persistent core + memory system:
 *
 *   1. detailed warmup  (`sim.sample.warmup` insts) — the timing model
 *      runs but its stats are discarded; caches, branch predictor and
 *      store-forwarding state warm up after the functional skip;
 *   2. measured window  (`sim.sample.window` insts) — the stats delta
 *      over this phase is one CPI observation;
 *   3. functional skip  (the interval remainder) — the pre-decoded
 *      FunctionalCore (functional_core.hh) advances architectural
 *      state only. The core keeps its microarchitectural warmth
 *      across the skip (OooCore::resumeWarm).
 *
 * Whole-run CPI is the mean of the window observations; the
 * per-window variance gives a Student-t 95% confidence interval
 * (reported as sample.cpi_ci95). Extrapolated core.{instructions,
 * cycles,ipc} replace the exact values in the result so downstream
 * figures keep working; all sample.* diagnostics ride alongside.
 *
 * Bias sources (see DESIGN.md §"Sampled simulation"): windows shorter
 * than the ROB drain see partial warmup; periodic intervals can alias
 * program phase boundaries; stats other than CPI remain raw measured
 * values over the detailed phases only.
 */

#ifndef DVR_SIM_SAMPLING_HH
#define DVR_SIM_SAMPLING_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.hh"

namespace dvr {

class PredecodedProgram;

/**
 * Summary of the measured-window CPI observations: the extrapolation
 * estimate and its confidence interval. Pure math, unit-tested on
 * deterministic fixtures in tests/test_sampling.cc.
 */
struct SampleSummary
{
    uint64_t windows = 0;
    double mean = 0;        ///< mean per-window CPI (the estimate)
    double variance = 0;    ///< unbiased sample variance across windows
    double ci95 = 0;        ///< 95% CI half-width on the mean
    double relCi95 = 0;     ///< ci95 / mean (0 when mean is 0)
};

/**
 * Two-sided 95% Student-t critical value for `dof` degrees of
 * freedom (exact table through 30, 1.96 asymptote beyond). Window
 * counts are small at CI smoke scale, so the normal approximation
 * would understate the interval exactly when it matters most.
 */
double tCritical95(uint64_t dof);

/** Mean/variance/CI over per-window CPI observations. */
SampleSummary summarizeWindows(const std::vector<double> &window_cpis);

/**
 * Adaptive interval for a run of `budget` instructions when the user
 * enables sampling without picking one (dvr_run --sample, the
 * sampling bench): budget/200 targets ~200 windows, floored at 50k so
 * tiny runs keep enough windows per interval-geometry defaults. The
 * window count matters more than the per-window length for phased
 * workloads: at a 20M budget the hash join's CPI swings by 5x between
 * build and probe phases, and 50 windows leave a +/-27% confidence
 * interval where 200 windows bring both the CI and the CPI error
 * under 5%. The floor gives >= 10 windows at the 500k CI smoke
 * budget, where the measured CPI error stays under 5% on the fig02
 * subset.
 */
inline uint64_t
defaultSampleInterval(uint64_t budget)
{
    return std::max<uint64_t>(50'000, budget / 200);
}

/**
 * Run `w` under interval sampling (cfg.sample.interval > 0) from the
 * given architectural start state (null regs = program entry).
 * `pre` is an optional already-built pre-decode of w.program; when
 * null one is built for the run (PreparedWorkload passes its cached
 * copy so sweeps decode once).
 */
SimResult runSampled(const SimConfig &cfg, const Workload &w,
                     const SimMemory &image,
                     const RegState *start_regs = nullptr,
                     InstPc start_pc = 0,
                     const PredecodedProgram *pre = nullptr);

} // namespace dvr

#endif // DVR_SIM_SAMPLING_HH
