/**
 * @file
 * A fixed-size pool of persistent worker threads executing indexed
 * tasks. This is the scheduling core the parallel experiment Runner
 * (sim/runner.hh) is built on, factored out so other batch consumers
 * — notably dvr-lint's parallel per-file analysis — share one
 * deterministic execution discipline instead of growing their own.
 *
 * Determinism contract: run(n, fn) invokes fn(i) exactly once for
 * every i in [0, n). Tasks are claimed by index in submission order
 * (no work stealing), results are whatever fn writes into
 * caller-owned, per-index slots, so the output of a batch is a pure
 * function of the task list and never of the thread count or the OS
 * schedule. fn must not throw — callers capture exceptions into
 * per-index slots and rethrow in index order after the batch drains
 * (see Runner::runAll for the pattern).
 *
 * Header-only and dependency-free beyond <thread>: tools that must
 * not link the simulator (dvr-lint) can include just this file.
 */

#ifndef DVR_SIM_TASK_POOL_HH
#define DVR_SIM_TASK_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvr {

class TaskPool
{
  public:
    explicit TaskPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~TaskPool()
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        work_.notify_all();
        for (auto &t : workers_)
            t.join();
    }

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * Execute fn(0) .. fn(n-1) across the pool and block until every
     * task has finished. Not reentrant: one batch at a time. fn must
     * not throw (capture into per-index slots instead).
     */
    void run(size_t n, const std::function<void(size_t)> &fn)
    {
        if (n == 0)
            return;
        std::unique_lock<std::mutex> lk(mutex_);
        active_ = true;
        fn_ = &fn;
        count_ = n;
        next_ = 0;
        done_ = 0;
        work_.notify_all();
        batchDone_.wait(lk, [this] { return !active_; });
        fn_ = nullptr;
    }

    unsigned threads() const { return unsigned(workers_.size()); }

  private:
    void workerLoop()
    {
        for (;;) {
            size_t idx;
            const std::function<void(size_t)> *fn;
            {
                std::unique_lock<std::mutex> lk(mutex_);
                work_.wait(lk, [this] {
                    return stop_ || (active_ && next_ < count_);
                });
                if (stop_)
                    return;
                idx = next_++;
                fn = fn_;
            }
            (*fn)(idx);
            {
                std::lock_guard<std::mutex> lk(mutex_);
                if (++done_ == count_) {
                    active_ = false;
                    batchDone_.notify_all();
                }
            }
        }
    }

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_;
    std::condition_variable batchDone_;
    // dvr-guarded-by(mutex_)
    bool stop_ = false;
    // Current batch (valid while active_).
    // dvr-guarded-by(mutex_)
    bool active_ = false;
    // dvr-guarded-by(mutex_)
    const std::function<void(size_t)> *fn_ = nullptr;
    // dvr-guarded-by(mutex_)
    size_t count_ = 0;
    // dvr-guarded-by(mutex_)
    size_t next_ = 0;
    // dvr-guarded-by(mutex_)
    size_t done_ = 0;
};

} // namespace dvr

#endif // DVR_SIM_TASK_POOL_HH
