/**
 * @file
 * Typed, hierarchical key schema over SimConfig. Every tunable knob
 * has a dotted key ("core.robSize", "dvr.lanes", "mem.l1dMshrs",
 * "sim.maxInstructions", ...) with a type, a description, and
 * string-based get/set accessors, so drivers and benches can expose
 * generic `--set key=value` overrides, `--config file.json` loads,
 * and `--dump-config` saves without naming any knob themselves.
 *
 * Resolution precedence, applied by resolveConfig and the drivers:
 *
 *     CLI (--set / sugar flags) > env (DVR_*) > --config file
 *         > Table-1 defaults
 *
 * The JSON format is a flat object of dotted keys; dump -> load ->
 * dump is a fixed point. Unknown keys and malformed values are
 * rejected with fatal() (a std::runtime_error the drivers catch).
 */

#ifndef DVR_SIM_CONFIG_SCHEMA_HH
#define DVR_SIM_CONFIG_SCHEMA_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace dvr {

class ConfigSchema
{
  public:
    struct Key
    {
        std::string name;        ///< dotted, e.g. "core.robSize"
        const char *type;        ///< "uint" | "bool" | "string"
        std::string describe;
        std::function<std::string(const SimConfig &)> get;
        std::function<void(SimConfig &, const std::string &)> set;
    };

    static const ConfigSchema &instance();

    /** All keys, in schema (dump/application) order. */
    const std::vector<Key> &keys() const { return keys_; }

    /** Find a key; null when unknown. */
    const Key *find(const std::string &name) const;

    /** Set one key from its string form; fatal() on unknown/bad. */
    void set(SimConfig &cfg, const std::string &key,
             const std::string &value) const;

    /** Apply a "key=value" override (the --set argument form). */
    void setFromArg(SimConfig &cfg, const std::string &keyEqVal) const;

    /** Canonical string form of one key's current value. */
    std::string get(const SimConfig &cfg,
                    const std::string &key) const;

    /** Full config as a flat JSON object, keys in schema order. */
    std::string toJson(const SimConfig &cfg) const;

    /**
     * Apply a flat JSON object of dotted keys. Keys are applied in
     * schema order (so files produced by toJson round-trip exactly);
     * unknown keys and malformed JSON are fatal().
     */
    void applyJson(SimConfig &cfg, const std::string &text) const;

    /** applyJson on a file's contents; fatal() when unreadable. */
    void applyFile(SimConfig &cfg, const std::string &path) const;

  private:
    ConfigSchema();

    std::vector<Key> keys_;
};

/**
 * Build a run configuration with the documented precedence:
 * `SimConfig::baseline(technique)` defaults, then every `--config
 * FILE` in argv (in order), then the DVR_* env knobs, then every
 * `--set key=value` in argv (in order). Arguments the config layer
 * does not own are ignored, so benches can pass argv through
 * unfiltered. Both `--opt value` and `--opt=value` spellings work.
 */
SimConfig resolveConfig(const std::string &technique, int argc = 0,
                        char **argv = nullptr);

/**
 * resolveConfig for bench mains: on a bad --set / --config the error
 * is printed to stderr and the process exits with status 2 instead of
 * propagating the exception out of main().
 */
SimConfig resolveConfigOrExit(const std::string &technique,
                              int argc = 0, char **argv = nullptr);

} // namespace dvr

#endif // DVR_SIM_CONFIG_SCHEMA_HH
