#include "sim/trace.hh"

#include <fstream>
#include <mutex>

#include "common/log.hh"

namespace dvr {

std::atomic<uint32_t> Trace::mask_{0};

namespace {

constexpr const char *kCatNames[kNumTraceCats] = {
    "discovery", "spawn",   "divergence",
    "reconvergence", "ndm", "mshr-stall",
};

/** Binary sink header: magic + format version. */
constexpr char kBinaryMagic[8] = {'D', 'V', 'R', 'T', 'R', 'C', '0', '1'};

// Ring buffer + sink state, all guarded by g_mu. The enable mask is
// the only state touched on hot paths; everything here is cold.
std::mutex g_mu;
// dvr-guarded-by(g_mu)
std::vector<TraceEvent> g_ring;
// dvr-guarded-by(g_mu)
uint64_t g_emitted = 0;
std::ofstream g_jsonl;
std::ofstream g_binary;

/** Drain the ring to the open sinks. Caller holds g_mu. */
void
drainLocked()
{
    // dvr-lint: allow(guarded-by) -Locked suffix: every caller holds g_mu
    if (g_ring.empty())
        return;
    if (g_binary.is_open()) {
        g_binary.write(reinterpret_cast<const char *>(g_ring.data()),
                       static_cast<std::streamsize>(g_ring.size() *
                                                    sizeof(TraceEvent)));
    }
    if (g_jsonl.is_open()) {
        for (const TraceEvent &e : g_ring) {
            g_jsonl << "{\"cat\":\"" << kCatNames[e.cat]
                    << "\",\"cycle\":" << e.cycle << ",\"pc\":" << e.pc
                    << ",\"a\":" << e.a << ",\"b\":" << e.b << "}\n";
        }
    }
    g_ring.clear();
}

} // namespace

void
Trace::emit(TraceCat c, Cycle cycle, InstPc pc, uint64_t a, uint64_t b)
{
    if (!enabled(c))
        return;
    TraceEvent e;
    e.cycle = cycle;
    e.a = a;
    e.b = b;
    e.pc = pc;
    e.cat = static_cast<uint8_t>(c);
    e.pad[0] = e.pad[1] = e.pad[2] = 0;
    std::lock_guard<std::mutex> lock(g_mu);
    g_ring.push_back(e);
    ++g_emitted;
    if (g_ring.size() >= kRingSize &&
        (g_binary.is_open() || g_jsonl.is_open()))
        drainLocked();
}

uint32_t
Trace::parseCategories(const std::string &spec)
{
    if (spec.empty() || spec == "none")
        return 0;
    if (spec == "all")
        return (1u << kNumTraceCats) - 1u;
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string name = spec.substr(pos, comma - pos);
        bool found = false;
        for (unsigned i = 0; i < kNumTraceCats; ++i) {
            if (name == kCatNames[i]) {
                mask |= 1u << i;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace category '" + name + "' (valid: all, " +
                  categoryList() + ")");
        pos = comma + 1;
    }
    return mask;
}

void
Trace::configure(const std::string &spec)
{
    mask_.store(parseCategories(spec), std::memory_order_relaxed);
}

void
Trace::setJsonlSink(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_jsonl.open(path, std::ios::trunc);
    if (!g_jsonl)
        fatal("trace: cannot open JSONL sink '" + path + "'");
}

void
Trace::setBinarySink(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_mu);
    g_binary.open(path, std::ios::trunc | std::ios::binary);
    if (!g_binary)
        fatal("trace: cannot open binary sink '" + path + "'");
    g_binary.write(kBinaryMagic, sizeof(kBinaryMagic));
}

void
Trace::flush()
{
    std::lock_guard<std::mutex> lock(g_mu);
    drainLocked();
    if (g_binary.is_open())
        g_binary.flush();
    if (g_jsonl.is_open())
        g_jsonl.flush();
}

void
Trace::shutdown()
{
    mask_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(g_mu);
    drainLocked();
    if (g_binary.is_open())
        g_binary.close();
    if (g_jsonl.is_open())
        g_jsonl.close();
}

uint64_t
Trace::emitted()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_emitted;
}

std::vector<TraceEvent>
Trace::buffered()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_ring;
}

void
Trace::reset()
{
    mask_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(g_mu);
    g_ring.clear();
    g_emitted = 0;
    if (g_binary.is_open())
        g_binary.close();
    if (g_jsonl.is_open())
        g_jsonl.close();
}

const char *
Trace::categoryName(TraceCat c)
{
    return kCatNames[static_cast<unsigned>(c)];
}

std::string
Trace::categoryList()
{
    std::string out;
    for (unsigned i = 0; i < kNumTraceCats; ++i) {
        if (i)
            out += ", ";
        out += kCatNames[i];
    }
    return out;
}

} // namespace dvr
