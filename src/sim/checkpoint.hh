/**
 * @file
 * Architectural checkpoints: the functional machine state (registers,
 * PC, and the copy-on-write memory image with its dirty pages) after
 * data-set construction plus an optional functional fast-forward.
 *
 * A sweep prepares a checkpoint once and every technique/config run
 * restores from it instead of recopying the pristine image and
 * re-executing the warmup — the restore is a CoW page-table copy, so
 * the warmed state is shared byte-for-byte across concurrent runs.
 */

#ifndef DVR_SIM_CHECKPOINT_HH
#define DVR_SIM_CHECKPOINT_HH

#include <cstdint>

#include "core/ooo_core.hh"
#include "mem/sim_memory.hh"

namespace dvr {

class Program;
class PredecodedProgram;

struct Checkpoint
{
    /** CoW view of the image at the checkpoint (dirty pages owned). */
    SimMemory memory;
    /** Architectural registers (ready times cleared on restore). */
    RegState regs;
    /** Next instruction to execute. */
    InstPc pc = 0;
    /** Functional instructions actually fast-forwarded. */
    uint64_t insts = 0;
    /** The program halted during warmup (the timed run is a no-op). */
    bool halted = false;
};

/**
 * Fast-forward `warmup_insts` instructions functionally (no timing)
 * from the program entry over a CoW copy of `pristine`, and snapshot
 * the resulting architectural state. `warmup_insts` of 0 snapshots
 * the pristine state itself. Executes on the pre-decoded
 * FunctionalCore (sim/functional_core.hh); the Program overload
 * decodes first, callers that already hold a PredecodedProgram skip
 * that.
 */
Checkpoint makeCheckpoint(const PredecodedProgram &pre,
                          const SimMemory &pristine,
                          uint64_t warmup_insts);
Checkpoint makeCheckpoint(const Program &prog,
                          const SimMemory &pristine,
                          uint64_t warmup_insts);

} // namespace dvr

#endif // DVR_SIM_CHECKPOINT_HH
