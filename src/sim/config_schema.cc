#include "sim/config_schema.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/log.hh"
#include "sim/env.hh"

namespace dvr {

namespace {

uint64_t
parseU64(const std::string &v, const std::string &key)
{
    if (v.empty())
        fatal("config: empty value for '" + key + "'");
    char *end = nullptr;
    const uint64_t u = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size())
        fatal("config: '" + key + "' expects an unsigned integer, got '" +
              v + "'");
    return u;
}

bool
parseBool(const std::string &v, const std::string &key)
{
    if (v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    fatal("config: '" + key + "' expects true/false, got '" + v + "'");
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/** An integer-typed key: `ref` maps a SimConfig to the field. */
template <class Ref>
ConfigSchema::Key
uintKey(const char *name, const char *desc, Ref ref)
{
    using T = std::remove_reference_t<decltype(ref(
        std::declval<SimConfig &>()))>;
    return {name, "uint", desc,
            [ref](const SimConfig &c) {
                return std::to_string(ref(const_cast<SimConfig &>(c)));
            },
            [ref, key = std::string(name)](SimConfig &c,
                                           const std::string &v) {
                const uint64_t u = parseU64(v, key);
                if (u > uint64_t(std::numeric_limits<T>::max()))
                    fatal("config: '" + key + "' value " + v +
                          " out of range");
                ref(c) = T(u);
            }};
}

template <class Ref>
ConfigSchema::Key
boolKey(const char *name, const char *desc, Ref ref)
{
    return {name, "bool", desc,
            [ref](const SimConfig &c) -> std::string {
                return ref(const_cast<SimConfig &>(c)) ? "true"
                                                       : "false";
            },
            [ref, key = std::string(name)](SimConfig &c,
                                           const std::string &v) {
                ref(c) = parseBool(v, key);
            }};
}

/**
 * Minimal parser for the flat JSON objects toJson emits: string keys,
 * values that are unsigned numbers, true/false, or strings.
 */
class FlatJsonParser
{
  public:
    explicit FlatJsonParser(const std::string &text) : s_(text) {}

    std::vector<std::pair<std::string, std::string>>
    parse()
    {
        std::vector<std::pair<std::string, std::string>> out;
        skipWs();
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++i_;
            return out;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            out.emplace_back(std::move(key), parseValue());
            skipWs();
            const char c = next();
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}'");
        }
        skipWs();
        if (i_ != s_.size())
            fail("trailing characters after object");
        return out;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("config JSON (offset " + std::to_string(i_) + "): " +
              what);
    }

    char
    peek() const
    {
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    char
    next()
    {
        if (i_ >= s_.size())
            fail("unexpected end of input");
        return s_[i_++];
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }

    void
    skipWs()
    {
        while (i_ < s_.size() && std::strchr(" \t\r\n", s_[i_]))
            ++i_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            char c = next();
            if (c == '"')
                return out;
            if (c == '\\')
                c = next();
            out += c;
        }
    }

    std::string
    parseValue()
    {
        if (peek() == '"')
            return parseString();
        std::string out;
        while (i_ < s_.size() && !std::strchr(",}\n\r\t ", s_[i_]))
            out += next();
        if (out.empty())
            fail("expected a value");
        return out;
    }

    const std::string &s_;
    size_t i_ = 0;
};

} // namespace

const ConfigSchema &
ConfigSchema::instance()
{
    static const ConfigSchema s;
    return s;
}

ConfigSchema::ConfigSchema()
{
    auto add = [this](Key k) { keys_.push_back(std::move(k)); };

    // sim.* — run-level knobs.
    add({"sim.technique", "string",
         "technique under evaluation (" + techniqueNameList() + ")",
         [](const SimConfig &c) {
             return std::string(techniqueName(c.technique));
         },
         [](SimConfig &c, const std::string &v) {
             c.technique = parseTechnique(v);
         }});
    add(uintKey("sim.maxInstructions",
                "dynamic instruction budget per run",
                [](SimConfig &c) -> uint64_t & {
                    return c.maxInstructions;
                }));
    add(uintKey("sim.memoryBytes", "simulated flat memory size",
                [](SimConfig &c) -> uint64_t & {
                    return c.memoryBytes;
                }));
    add({"sim.trace", "string",
         "trace categories: comma list, 'all', or '' for off (see "
         "src/sim/trace.hh)",
         [](const SimConfig &c) { return c.trace; },
         [](SimConfig &c, const std::string &v) { c.trace = v; }});
    add({"sim.traceFile", "string",
         "JSONL trace sink path ('' = <bench dir>/dvr_trace.jsonl)",
         [](const SimConfig &c) { return c.traceFile; },
         [](SimConfig &c, const std::string &v) { c.traceFile = v; }});
    add(uintKey("sim.warmup.insts",
                "functional fast-forward instructions before the "
                "timed run (0 = off)",
                [](SimConfig &c) -> uint64_t & {
                    return c.warmup.insts;
                }));
    add(boolKey("sim.warmup.share",
                "share one architectural checkpoint across every run "
                "of a prepared workload",
                [](SimConfig &c) -> bool & { return c.warmup.share; }));
    add(uintKey("sim.sample.interval",
                "interval sampling: instructions per interval "
                "(0 = exact simulation)",
                [](SimConfig &c) -> uint64_t & {
                    return c.sample.interval;
                }));
    add(uintKey("sim.sample.warmup",
                "detailed-warmup instructions per interval "
                "(stats discarded)",
                [](SimConfig &c) -> uint64_t & {
                    return c.sample.warmup;
                }));
    add(uintKey("sim.sample.window",
                "measured-window instructions per interval",
                [](SimConfig &c) -> uint64_t & {
                    return c.sample.window;
                }));
    add(uintKey("sim.sample.warm",
                "max functionally cache-warmed instructions at the "
                "tail of each skip (0 = warm the whole skip)",
                [](SimConfig &c) -> uint64_t & {
                    return c.sample.warm;
                }));

    // serve.* — the dvr_serve job daemon (scheduling only; serve
    // keys never change simulated results).
    add(uintKey("serve.workers",
                "worker processes per job (0 = hardware concurrency)",
                [](SimConfig &c) -> unsigned & {
                    return c.serve.workers;
                }));
    add(uintKey("serve.maxAttempts",
                "attempts per sweep point before the job is failed",
                [](SimConfig &c) -> unsigned & {
                    return c.serve.maxAttempts;
                }));
    add(uintKey("serve.backoffMs",
                "base worker-retry backoff in ms (doubles per attempt)",
                [](SimConfig &c) -> unsigned & {
                    return c.serve.backoffMs;
                }));
    add(uintKey("serve.pollMs",
                "daemon queue-poll period in ms",
                [](SimConfig &c) -> unsigned & {
                    return c.serve.pollMs;
                }));

    // core.* — the Table 1 out-of-order core.
    add(uintKey("core.width", "fetch/dispatch/commit width",
                [](SimConfig &c) -> unsigned & { return c.core.width; }));
    add(uintKey("core.robSize", "reorder buffer entries",
                [](SimConfig &c) -> unsigned & {
                    return c.core.robSize;
                }));
    add(uintKey("core.iqSize", "issue queue entries",
                [](SimConfig &c) -> unsigned & { return c.core.iqSize; }));
    add(uintKey("core.lqSize", "load queue entries",
                [](SimConfig &c) -> unsigned & { return c.core.lqSize; }));
    add(uintKey("core.sqSize", "store queue entries",
                [](SimConfig &c) -> unsigned & { return c.core.sqSize; }));
    add(uintKey("core.frontendDepth", "redirect penalty, cycles",
                [](SimConfig &c) -> unsigned & {
                    return c.core.frontendDepth;
                }));
    add({"core.predictor", "string",
         "branch predictor: tage|gshare|taken",
         [](const SimConfig &c) { return c.core.predictor; },
         [](SimConfig &c, const std::string &v) {
             c.core.predictor = v;
         }});
    add(uintKey("core.memPorts", "load/store AGU ports",
                [](SimConfig &c) -> unsigned & {
                    return c.core.memPorts;
                }));
    add(boolKey("core.modelIqOccupancy",
                "model IQ occupancy as a dispatch constraint",
                [](SimConfig &c) -> bool & {
                    return c.core.modelIqOccupancy;
                }));

    // mem.* — cache hierarchy, DRAM, and hardware prefetchers.
    add(uintKey("mem.l1Size", "L1-D bytes",
                [](SimConfig &c) -> uint32_t & { return c.mem.l1Size; }));
    add(uintKey("mem.l1Assoc", "L1-D associativity",
                [](SimConfig &c) -> uint32_t & { return c.mem.l1Assoc; }));
    add(uintKey("mem.l1Lat", "L1-D hit latency, cycles",
                [](SimConfig &c) -> Cycle & { return c.mem.l1Lat; }));
    add(uintKey("mem.l2Size", "L2 bytes",
                [](SimConfig &c) -> uint32_t & { return c.mem.l2Size; }));
    add(uintKey("mem.l2Assoc", "L2 associativity",
                [](SimConfig &c) -> uint32_t & { return c.mem.l2Assoc; }));
    add(uintKey("mem.l2Lat", "L2 hit latency, cumulative cycles",
                [](SimConfig &c) -> Cycle & { return c.mem.l2Lat; }));
    add(uintKey("mem.l3Size", "L3 bytes",
                [](SimConfig &c) -> uint32_t & { return c.mem.l3Size; }));
    add(uintKey("mem.l3Assoc", "L3 associativity",
                [](SimConfig &c) -> uint32_t & { return c.mem.l3Assoc; }));
    add(uintKey("mem.l3Lat", "L3 hit latency, cumulative cycles",
                [](SimConfig &c) -> Cycle & { return c.mem.l3Lat; }));
    add(uintKey("mem.l1dMshrs", "L1-D MSHR count",
                [](SimConfig &c) -> unsigned & { return c.mem.mshrs; }));
    add(uintKey("mem.dramLat", "DRAM minimum latency, cycles",
                [](SimConfig &c) -> Cycle & { return c.mem.dramLat; }));
    add(uintKey("mem.dramCyclesPerLine",
                "DRAM channel occupancy per line, cycles",
                [](SimConfig &c) -> Cycle & {
                    return c.mem.dramCyclesPerLine;
                }));
    add(boolKey("mem.stridePrefetcher", "L1-D stride prefetcher",
                [](SimConfig &c) -> bool & {
                    return c.mem.stridePrefetcher;
                }));
    add(uintKey("mem.strideStreams", "stride prefetcher streams",
                [](SimConfig &c) -> unsigned & {
                    return c.mem.strideStreams;
                }));
    add(uintKey("mem.strideDegree", "stride prefetcher degree",
                [](SimConfig &c) -> unsigned & {
                    return c.mem.strideDegree;
                }));
    add(boolKey("mem.impPrefetcher",
                "indirect memory prefetcher (the 'imp' technique "
                "enables this itself)",
                [](SimConfig &c) -> bool & {
                    return c.mem.impPrefetcher;
                }));
    add(uintKey("mem.impDistance", "IMP prefetch distance",
                [](SimConfig &c) -> unsigned & {
                    return c.mem.impDistance;
                }));

    // dvr.* — Decoupled Vector Runahead.
    add({"dvr.lanes", "uint",
         "DVR scalar-equivalent lanes (also sets dvr.vecPhysFree)",
         [](const SimConfig &c) {
             return std::to_string(c.dvr.subthread.maxLanes);
         },
         [](SimConfig &c, const std::string &v) {
             const uint64_t u = parseU64(v, "dvr.lanes");
             c.dvr.subthread.maxLanes = unsigned(u);
             c.dvr.subthread.vecPhysFree = unsigned(u);
         }});
    add(uintKey("dvr.vectorWidth", "lanes per vector register",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.vectorWidth;
                }));
    add(uintKey("dvr.vectorPorts", "vector uops issued per cycle",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.vectorPorts;
                }));
    add(uintKey("dvr.timeoutInsts", "per-episode instruction cap",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.timeoutInsts;
                }));
    add(uintKey("dvr.reconvDepth", "reconvergence stack depth",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.reconvDepth;
                }));
    add(uintKey("dvr.vecPhysFree", "vector phys regs available",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.vecPhysFree;
                }));
    add(uintKey("dvr.intPhysFree", "spare integer phys regs",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.intPhysFree;
                }));
    add(boolKey("dvr.gpuReconvergence",
                "GPU-style reconvergence (false: VR-style "
                "lane invalidation)",
                [](SimConfig &c) -> bool & {
                    return c.dvr.subthread.gpuReconvergence;
                }));
    add(uintKey("dvr.spawnOverhead", "episode spawn overhead, cycles",
                [](SimConfig &c) -> Cycle & {
                    return c.dvr.subthread.spawnOverhead;
                }));
    add(uintKey("dvr.ndmTimeout", "NDM outer-stride hunt budget",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.ndmTimeout;
                }));
    add(uintKey("dvr.nestedOuterLanes", "NDM outer lanes",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.subthread.nestedOuterLanes;
                }));
    add(boolKey("dvr.discovery", "Discovery Mode enabled",
                [](SimConfig &c) -> bool & {
                    return c.dvr.discoveryEnabled;
                }));
    add(boolKey("dvr.nested", "Nested Vector Runahead enabled",
                [](SimConfig &c) -> bool & {
                    return c.dvr.nestedEnabled;
                }));
    add(uintKey("dvr.nestedThreshold",
                "loop bound below which NDM engages",
                [](SimConfig &c) -> unsigned & {
                    return c.dvr.nestedThreshold;
                }));
    add(uintKey("dvr.rejectCooldown",
                "retire-count cooldown after a chain-less discovery",
                [](SimConfig &c) -> uint64_t & {
                    return c.dvr.rejectCooldown;
                }));

    // vr.* — the Vector Runahead baseline.
    add({"vr.lanes", "uint",
         "VR scalar-equivalent lanes (also sets vr.vecPhysFree)",
         [](const SimConfig &c) {
             return std::to_string(c.vr.subthread.maxLanes);
         },
         [](SimConfig &c, const std::string &v) {
             const uint64_t u = parseU64(v, "vr.lanes");
             c.vr.subthread.maxLanes = unsigned(u);
             c.vr.subthread.vecPhysFree = unsigned(u);
         }});
    add(uintKey("vr.vecPhysFree", "VR vector phys regs available",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.vecPhysFree;
                }));
    add(uintKey("vr.timeoutInsts", "VR per-episode instruction cap",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.timeoutInsts;
                }));
    add(uintKey("vr.vectorWidth", "VR lanes per vector register",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.vectorWidth;
                }));
    add(uintKey("vr.vectorPorts", "VR vector uops issued per cycle",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.vectorPorts;
                }));
    add(uintKey("vr.reconvDepth", "VR reconvergence stack depth",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.reconvDepth;
                }));
    add(uintKey("vr.intPhysFree", "VR spare integer phys regs",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.intPhysFree;
                }));
    add(boolKey("vr.gpuReconvergence",
                "GPU-style reconvergence for VR (default false: "
                "lane invalidation, as in the VR paper)",
                [](SimConfig &c) -> bool & {
                    return c.vr.subthread.gpuReconvergence;
                }));
    add(uintKey("vr.spawnOverhead", "VR episode spawn overhead, cycles",
                [](SimConfig &c) -> Cycle & {
                    return c.vr.subthread.spawnOverhead;
                }));
    add(uintKey("vr.ndmTimeout", "VR NDM outer-stride hunt budget "
                "(unused by plain VR; kept schema-complete)",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.ndmTimeout;
                }));
    add(uintKey("vr.nestedOuterLanes", "VR NDM outer lanes (unused by "
                "plain VR; kept schema-complete)",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.subthread.nestedOuterLanes;
                }));
    add(uintKey("vr.scalarBudget",
                "scalar instructions VR walks to find a strider",
                [](SimConfig &c) -> unsigned & {
                    return c.vr.scalarBudget;
                }));

    // pre.* — Precise Runahead Execution.
    add(uintKey("pre.walkWidth", "instructions walked per cycle",
                [](SimConfig &c) -> unsigned & {
                    return c.pre.walkWidth;
                }));
    add(uintKey("pre.maxWalkInsts", "per-episode walk cap",
                [](SimConfig &c) -> unsigned & {
                    return c.pre.maxWalkInsts;
                }));

    // oracle.*
    add(uintKey("oracle.lookaheadLoads",
                "loads prefetched ahead of the main thread",
                [](SimConfig &c) -> unsigned & {
                    return c.oracle.lookaheadLoads;
                }));
}

const ConfigSchema::Key *
ConfigSchema::find(const std::string &name) const
{
    for (const Key &k : keys_) {
        if (k.name == name)
            return &k;
    }
    return nullptr;
}

void
ConfigSchema::set(SimConfig &cfg, const std::string &key,
                  const std::string &value) const
{
    const Key *k = find(key);
    if (!k)
        fatal("config: unknown key '" + key +
              "' (see --list-keys for the schema)");
    k->set(cfg, value);
}

void
ConfigSchema::setFromArg(SimConfig &cfg,
                         const std::string &keyEqVal) const
{
    const size_t eq = keyEqVal.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal("config: --set expects key=value, got '" + keyEqVal +
              "'");
    set(cfg, keyEqVal.substr(0, eq), keyEqVal.substr(eq + 1));
}

std::string
ConfigSchema::get(const SimConfig &cfg, const std::string &key) const
{
    const Key *k = find(key);
    if (!k)
        fatal("config: unknown key '" + key + "'");
    return k->get(cfg);
}

std::string
ConfigSchema::toJson(const SimConfig &cfg) const
{
    std::ostringstream os;
    os << "{\n";
    for (size_t i = 0; i < keys_.size(); ++i) {
        const Key &k = keys_[i];
        const std::string v = k.get(cfg);
        os << "  " << quote(k.name) << ": "
           << (std::strcmp(k.type, "string") == 0 ? quote(v) : v)
           << (i + 1 < keys_.size() ? "," : "") << "\n";
    }
    os << "}\n";
    return os.str();
}

void
ConfigSchema::applyJson(SimConfig &cfg, const std::string &text) const
{
    const auto entries = FlatJsonParser(text).parse();
    std::map<std::string, std::string> byKey;
    for (const auto &[key, value] : entries) {
        if (!find(key))
            fatal("config: unknown key '" + key + "'");
        byKey[key] = value;     // last occurrence wins
    }
    // Apply in schema order: compound keys (dvr.lanes) come before
    // the fields they shadow, so dumped files round-trip exactly.
    for (const Key &k : keys_) {
        const auto it = byKey.find(k.name);
        if (it != byKey.end())
            k.set(cfg, it->second);
    }
}

void
ConfigSchema::applyFile(SimConfig &cfg, const std::string &path) const
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot read '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    applyJson(cfg, text.str());
}

SimConfig
resolveConfig(const std::string &technique, int argc, char **argv)
{
    const ConfigSchema &schema = ConfigSchema::instance();
    SimConfig cfg = SimConfig::baseline(technique);

    // An option's value: "--opt=v" inline or the next argument.
    auto valueOf = [&](int &i, const char *opt,
                       std::string &out) -> bool {
        const std::string a = argv[i];
        const std::string pfx = std::string(opt) + "=";
        if (a == opt) {
            if (i + 1 >= argc)
                fatal(std::string("config: missing value for ") + opt);
            out = argv[++i];
            return true;
        }
        if (a.rfind(pfx, 0) == 0) {
            out = a.substr(pfx.size());
            return true;
        }
        return false;
    };

    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (valueOf(i, "--config", v))
            schema.applyFile(cfg, v);
    }
    // Env beats the file (documented precedence: CLI > env > file >
    // defaults). Only DVR_INSTS targets SimConfig; DVR_SCALE_SHIFT,
    // DVR_JOBS, and DVR_BENCH_DIR act on the workload, runner, and
    // report layers respectively (see sim/env.hh).
    if (const auto insts = env::maxInstructions())
        cfg.maxInstructions = *insts;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (valueOf(i, "--set", v))
            schema.setFromArg(cfg, v);
    }
    return cfg;
}

SimConfig
resolveConfigOrExit(const std::string &technique, int argc,
                    char **argv)
{
    try {
        return resolveConfig(technique, argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
}

} // namespace dvr
