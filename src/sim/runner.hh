/**
 * @file
 * Parallel experiment runner: a fixed-size thread pool executing
 * independent simulations (SimJob) and returning their results in
 * deterministic submission order, so every results table is
 * bit-identical regardless of thread count.
 *
 * Safe because each Simulator::runOn takes a private copy-on-write
 * view of the pristine SimMemory (pages are refcounted with atomic
 * counts; a writer clones before its first store to a shared page)
 * and builds a private MemorySystem/OooCore/controller stack; the
 * PreparedWorkload (program + pristine data set) is shared strictly
 * read-only, and its lazily built shared warmup checkpoint
 * (sim.warmup.share) is created under a mutex and handed out as a
 * const CoW view. There is no global mutable simulator state
 * (audited: all file/function statics in src/ are const tables or
 * relaxed atomic counters, workload verify lambdas capture by value
 * and only read).
 */

#ifndef DVR_SIM_RUNNER_HH
#define DVR_SIM_RUNNER_HH

#include <exception>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/task_pool.hh"

namespace dvr {

/**
 * One simulation to execute: a prepared workload under a config.
 * The workload must stay alive and unmodified until runAll returns.
 */
struct SimJob
{
    const PreparedWorkload *workload = nullptr;
    SimConfig cfg;
    /** For error messages and progress; not otherwise interpreted. */
    std::string label;
};

/**
 * Fixed-size thread pool over SimJobs, built on sim/task_pool.hh.
 * Jobs are claimed by index from the submitted batch, so scheduling
 * is work-stealing-free and the result vector is always ordered by
 * submission, never by completion: output tables do not depend on
 * the thread count.
 */
class Runner
{
  public:
    explicit Runner(unsigned threads = defaultJobs());
    ~Runner();
    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /**
     * Execute every job and return results in submission order.
     * If any job threw, the first exception (again in submission
     * order, independent of thread interleaving) is rethrown after
     * the whole batch has drained.
     */
    std::vector<SimResult> runAll(const std::vector<SimJob> &jobs);

    unsigned threads() const { return pool_.threads(); }

    /** DVR_JOBS env var if positive, else hardware_concurrency. */
    static unsigned defaultJobs();

    /**
     * Parse `--jobs N` / `--jobs=N` from argv (overriding DVR_JOBS);
     * falls back to defaultJobs(). Unrelated arguments are ignored so
     * benches can pass their argv through unfiltered.
     */
    static unsigned jobsFromArgs(int argc, char **argv);

  private:
    TaskPool pool_;
};

} // namespace dvr

#endif // DVR_SIM_RUNNER_HH
