#include "sim/sampling.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "common/arena.hh"
#include "common/log.hh"
#include "runahead/technique.hh"
#include "sim/functional_core.hh"

namespace dvr {

double
tCritical95(uint64_t dof)
{
    // Two-sided 95% Student-t critical values, dof 1..30.
    static constexpr double kT[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (dof == 0)
        return 0.0;
    if (dof <= 30)
        return kT[dof - 1];
    return 1.960;
}

SampleSummary
summarizeWindows(const std::vector<double> &window_cpis)
{
    SampleSummary s;
    s.windows = window_cpis.size();
    if (s.windows == 0)
        return s;
    double sum = 0;
    for (double x : window_cpis)
        sum += x;
    s.mean = sum / double(s.windows);
    if (s.windows >= 2) {
        double sq = 0;
        for (double x : window_cpis)
            sq += (x - s.mean) * (x - s.mean);
        s.variance = sq / double(s.windows - 1);
        s.ci95 = tCritical95(s.windows - 1) *
                 std::sqrt(s.variance / double(s.windows));
    }
    s.relCi95 = s.mean > 0 ? s.ci95 / s.mean : 0.0;
    return s;
}

SimResult
runSampled(const SimConfig &cfgIn, const Workload &w,
           const SimMemory &image, const RegState *start_regs,
           InstPc start_pc, const PredecodedProgram *pre)
{
    panicIf(cfgIn.sample.interval == 0,
            "runSampled: sampling is disabled (sim.sample.interval=0)");
    panicIf(cfgIn.sample.window == 0,
            "runSampled: sim.sample.window must be > 0");
    panicIf(cfgIn.sample.warmup + cfgIn.sample.window >
                cfgIn.sample.interval,
            "runSampled: sim.sample.warmup + sim.sample.window must "
            "not exceed sim.sample.interval");

    // Technique wiring, identical to the exact path (simulator.cc).
    const TechniqueInfo *info = TechniqueRegistry::instance().find(
        techniqueName(cfgIn.technique));
    if (!info)
        fatal(std::string("runSampled: technique '") +
              techniqueName(cfgIn.technique) + "' is not registered");
    SimConfig cfg = cfgIn;
    if (info->prepare)
        info->prepare(cfg);

    std::unique_ptr<PredecodedProgram> owned_pre;
    if (!pre) {
        owned_pre = std::make_unique<PredecodedProgram>(w.program);
        pre = owned_pre.get();
    }

    // Per-run arena frame, as in the exact path (simulator.cc): all
    // simulation state borrowed below is handed back at return.
    ArenaFrame arenaFrame(Arena::forCurrentThread());

    SimMemory mem = image;      // CoW share, as in the exact path
    MemorySystem memsys(cfg.mem, mem);
    const TechniqueContext ctx{cfg,    w.program, mem,
                               image,  memsys,    start_regs,
                               start_pc};
    std::unique_ptr<RunaheadTechnique> tech =
        info->create ? info->create(ctx) : nullptr;

    OooCore core(cfg.core, w.program, mem, memsys, tech.get());
    if (start_regs)
        core.restoreArchState(*start_regs, start_pc);
    if (tech)
        tech->attach(core);

    // The functional interpreters share the core's working memory, so
    // skipped stores land exactly where the detailed phases read them.
    // Functional warming keeps the cache hierarchy's tag/LRU content
    // moving through skips: without it, working sets built over long
    // horizons (an L3 that takes millions of instructions to fill) go
    // stale across every skip and the measured windows are biased
    // cache-cold. Warming costs a host cache miss per distinct line
    // touched, so sim.sample.warm bounds it to the skip's tail: the
    // head of a long skip runs on the unwarmed interpreter at full
    // speed, and the warmed tail — sized to the hierarchy's fill
    // horizon — rebuilds the content the next windows will see.
    FunctionalCore fc_fast(*pre, mem);
    FunctionalCore fc_warm(*pre, mem);
    fc_warm.setWarming(&memsys);

    const uint64_t interval = cfg.sample.interval;
    const uint64_t warm_n = cfg.sample.warmup;
    const uint64_t win_n = cfg.sample.window;
    const uint64_t warm_limit = cfg.sample.warm;

    uint64_t remaining = cfg.maxInstructions;
    uint64_t insts_warmup = 0;
    uint64_t insts_measured = 0;
    uint64_t insts_functional = 0;
    uint64_t measured_cycles = 0;
    double functional_secs = 0;
    std::vector<double> window_cpis;
    bool halted = false;

    // Runs the detailed core for up to `n` more instructions and
    // returns {insts, cycles} deltas (run() targets are cumulative).
    auto detailed = [&core](uint64_t n) {
        const uint64_t i0 = core.stats().instructions;
        const Cycle c0 = core.stats().cycles;
        core.run(i0 + n);
        return std::pair<uint64_t, Cycle>(
            core.stats().instructions - i0, core.stats().cycles - c0);
    };

    while (remaining > 0 && !halted) {
        // Phase 1: detailed warmup, stats discarded.
        const uint64_t want_warm = std::min(warm_n, remaining);
        if (want_warm > 0) {
            const auto [wi, wc] = detailed(want_warm);
            (void)wc;
            insts_warmup += wi;
            remaining -= wi;
            if (core.stats().halted) {
                halted = true;
                break;
            }
        }
        if (remaining == 0)
            break;

        // Phase 2: measured window — one CPI observation.
        const uint64_t want_win = std::min(win_n, remaining);
        const auto [mi, mc] = detailed(want_win);
        insts_measured += mi;
        measured_cycles += mc;
        remaining -= mi;
        if (mi > 0)
            window_cpis.push_back(double(mc) / double(mi));
        if (core.stats().halted) {
            halted = true;
            break;
        }
        if (remaining == 0)
            break;

        // Phase 3: functional skip on the pre-decoded core.
        const uint64_t want_skip =
            std::min(interval - want_warm - want_win, remaining);
        if (want_skip > 0) {
            FunctionalState st;
            st.regs = core.regs().value;
            st.pc = core.pc();
            const uint64_t warm_part =
                warm_limit > 0 ? std::min(warm_limit, want_skip)
                               : want_skip;
            const uint64_t fast_part = want_skip - warm_part;
            // dvr-lint: allow(wall-clock) times the functional whoosh for sample.functional_mips only
            const auto t0 = std::chrono::steady_clock::now();
            uint64_t done = 0;
            if (fast_part > 0)
                done = fc_fast.run(st, fast_part);
            if (!st.halted)
                done += fc_warm.run(st, want_skip - done);
            functional_secs +=
                std::chrono::duration<double>(
                    // dvr-lint: allow(wall-clock) times the functional whoosh for sample.functional_mips only
                    std::chrono::steady_clock::now() - t0)
                    .count();
            insts_functional += done;
            remaining -= done;
            RegState rs;
            rs.value = st.regs;
            core.resumeWarm(rs, st.pc);
            if (st.halted) {
                halted = true;
                break;
            }
        }
    }
    halted = halted || core.stats().halted;

    const uint64_t total_insts =
        insts_warmup + insts_measured + insts_functional;
    const SampleSummary sum = summarizeWindows(window_cpis);

    // Extrapolate: total cycles = mean window CPI x every instruction
    // covered (functionally skipped ones included). When no window
    // completed (budget below warmup+window), fall back to the exact
    // detailed CPI — the run degenerates to exact simulation.
    const CoreStats &cs = core.stats();
    double cpi_hat = sum.mean;
    if (sum.windows == 0) {
        cpi_hat = cs.instructions > 0
                      ? double(cs.cycles) / double(cs.instructions)
                      : 0.0;
    }
    const uint64_t extrap_cycles =
        uint64_t(std::llround(cpi_hat * double(total_insts)));

    SimResult r;
    r.core = cs;
    r.core.instructions = total_insts;
    r.core.cycles = extrap_cycles;
    r.core.halted = halted;
    r.halted = halted;
    r.verified = halted && w.verify && w.verify(mem);

    StatSet core_stats = cs.toStatSet();
    core_stats.set("instructions", double(total_insts));
    core_stats.set("cycles", double(extrap_cycles));
    core_stats.set("ipc", r.core.ipc());
    // Scale the CPI-stack buckets to the extrapolated cycle count so
    // they keep summing to core.cycles; rounding residue lands in the
    // base bucket.
    if (cs.cycles > 0) {
        const double f = double(extrap_cycles) / double(cs.cycles);
        static const char *const kBuckets[] = {
            "cpi.branch_redirect", "cpi.l1",       "cpi.l2",
            "cpi.l3",              "cpi.dram",     "cpi.full_rob",
            "cpi.full_iq_lsq",
        };
        double others = 0;
        for (const char *b : kBuckets) {
            const double v = core_stats.get(b) * f;
            core_stats.set(b, v);
            others += v;
        }
        core_stats.set("cpi.base", double(extrap_cycles) - others);
    }
    r.stats.merge("core.", core_stats);

    StatSet ms = memsys.stats();
    ms.set("mshr_occupancy", memsys.mshrs().avgOccupancy(cs.cycles));
    r.stats.merge("mem.", ms);
    StatSet bp;
    bp.set("lookups", double(core.predictor().lookups));
    bp.set("mispredicts", double(core.predictor().mispredicts));
    r.stats.merge("bpred.", bp);
    if (tech)
        tech->finalizeStats(r.stats);

    StatSet sample;
    sample.set("windows", double(sum.windows));
    sample.set("cpi", cpi_hat);
    sample.set("cpi_var", sum.variance);
    sample.set("cpi_ci95", sum.ci95);
    sample.set("cpi_rel_ci95", sum.relCi95);
    sample.set("insts_total", double(total_insts));
    sample.set("insts_functional", double(insts_functional));
    sample.set("insts_warmup", double(insts_warmup));
    sample.set("insts_measured", double(insts_measured));
    sample.set("measured_cycles", double(measured_cycles));
    sample.set("functional_mips",
               functional_secs > 0
                   ? double(insts_functional) / functional_secs / 1e6
                   : 0.0);
    r.stats.merge("sample.", sample);
    return r;
}

} // namespace dvr
