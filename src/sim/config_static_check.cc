/**
 * @file
 * Compile-time schema-drift guard.
 *
 * Every config struct is mirrored field-for-field from
 * config_fields.def and the mirror's size is static_asserted against
 * the real struct. Adding, removing, or re-typing a field without
 * updating the manifest therefore fails the build — long before the
 * `schema-drift` lint rule (which checks the names and the registered
 * dotted keys) gets a chance to run. The asserts say exactly what to
 * update.
 *
 * The mirrors share declaration order with the real structs, so equal
 * size implies equal layout for the field lists we maintain; this is
 * a tripwire, not a layout proof.
 */

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/config.hh"

namespace dvr {
namespace {

#define DVR_DRIFT_HELP \
    "config struct drifted from src/sim/config_fields.def: add the " \
    "field there and register its key in config_schema.cc"

struct CoreMirror
{
#define DVR_CORE_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_CORE_FIELD
};
static_assert(sizeof(CoreMirror) == sizeof(CoreConfig), DVR_DRIFT_HELP);

struct MemMirror
{
#define DVR_MEM_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_MEM_FIELD
};
static_assert(sizeof(MemMirror) == sizeof(MemConfig), DVR_DRIFT_HELP);

struct SubthreadMirror
{
#define DVR_SUBTHREAD_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_SUBTHREAD_FIELD
};
static_assert(sizeof(SubthreadMirror) == sizeof(SubthreadConfig),
              DVR_DRIFT_HELP);

struct DvrMirror
{
#define DVR_DVRC_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_DVRC_FIELD
};
static_assert(sizeof(DvrMirror) == sizeof(DvrConfig), DVR_DRIFT_HELP);

struct VrMirror
{
#define DVR_VR_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_VR_FIELD
};
static_assert(sizeof(VrMirror) == sizeof(VrConfig), DVR_DRIFT_HELP);

struct PreMirror
{
#define DVR_PRE_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_PRE_FIELD
};
static_assert(sizeof(PreMirror) == sizeof(PreConfig), DVR_DRIFT_HELP);

struct OracleMirror
{
#define DVR_ORACLE_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_ORACLE_FIELD
};
static_assert(sizeof(OracleMirror) == sizeof(OracleConfig),
              DVR_DRIFT_HELP);

struct WarmupMirror
{
#define DVR_WARMUP_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_WARMUP_FIELD
};
static_assert(sizeof(WarmupMirror) == sizeof(WarmupConfig),
              DVR_DRIFT_HELP);

struct SampleMirror
{
#define DVR_SAMPLE_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_SAMPLE_FIELD
};
static_assert(sizeof(SampleMirror) == sizeof(SampleConfig),
              DVR_DRIFT_HELP);

struct ServeMirror
{
#define DVR_SERVE_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_SERVE_FIELD
};
static_assert(sizeof(ServeMirror) == sizeof(ServeConfig),
              DVR_DRIFT_HELP);

struct SimMirror
{
#define DVR_SIM_FIELD(field, type, key) type field;
#include "sim/config_fields.def"
#undef DVR_SIM_FIELD
};
static_assert(sizeof(SimMirror) == sizeof(SimConfig), DVR_DRIFT_HELP);

} // namespace

/** Anchors the translation unit so the asserts always compile. */
void configStaticCheckAnchor();
void
configStaticCheckAnchor()
{
}

} // namespace dvr
