/**
 * @file
 * Fast functional (no-timing) execution over a pre-decoded program.
 *
 * The functional interpreter is the hot path of interval-sampled
 * simulation (src/sim/sampling.hh) and of checkpoint fast-forward
 * (src/sim/checkpoint.hh): with sampling on, >90% of all simulated
 * instructions execute here. The legacy loop stepped the un-decoded
 * Program — a bounds check (`prog.valid`), an indexed load
 * (`prog.at`), and a chain of out-of-line classification calls
 * (`isLoad`/`isStore`/`isBranch`/`hasDest`/`memBytes`/`evalOp`) per
 * instruction. PredecodedProgram flattens each instruction once —
 * operands, immediate, memory size, branch target — and appends a
 * halt sentinel so the interpreter runs a single dense dispatch per
 * step with no validity check and no per-step function calls.
 *
 * Dispatch is a dense switch by default; configuring with
 * -DDVR_COMPUTED_GOTO=ON (feature macro DVR_COMPUTED_GOTO) selects a
 * GNU computed-goto label table instead, which removes the switch
 * bounds check and gives each opcode its own indirect branch. Both
 * variants share one X-macro of opcode semantics, so they cannot
 * diverge.
 *
 * The legacy loop is kept verbatim as referenceFunctionalRun: it is
 * the differential-test baseline and the denominator of the measured
 * functional-throughput gain reported by the sampling bench.
 */

#ifndef DVR_SIM_FUNCTIONAL_CORE_HH
#define DVR_SIM_FUNCTIONAL_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "mem/sim_memory.hh"

namespace dvr {

class MemorySystem;

/**
 * One flattened instruction: everything a functional step needs, with
 * no method calls and no indirection. 16 bytes — four insts per cache
 * line. Memory access sizes are implied by the opcode (kLoad32 reads
 * 4 bytes, ...), so no size field is carried.
 */
struct DecodedInst
{
    Opcode op = Opcode::kNop;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    InstPc target = kInvalidPc; ///< branch target
    int64_t imm = 0;
};

/**
 * A Program decoded once into a dense DecodedInst array with a kHalt
 * sentinel at index size(), so falling off the end lands on a halt
 * instead of needing a per-step bounds check. Build one per prepared
 * workload and share it across runs (it is immutable).
 */
class PredecodedProgram
{
  public:
    explicit PredecodedProgram(const Program &prog);

    const DecodedInst *insts() const { return insts_.data(); }
    /** Original program size; the sentinel lives at this index. */
    InstPc size() const { return size_; }

  private:
    std::vector<DecodedInst> insts_;
    InstPc size_ = 0;
};

/** Architectural state advanced by functional execution. */
struct FunctionalState
{
    std::array<uint64_t, kNumArchRegs> regs{};
    InstPc pc = 0;
    /** Halt executed, or the PC fell off the end of the program. */
    bool halted = false;
};

/**
 * The fast functional interpreter: executes pre-decoded instructions
 * against a SimMemory, updating a FunctionalState. Stateless between
 * run() calls apart from what FunctionalState carries, so one core
 * can alternate with detailed timing windows (interval sampling) or
 * run once (checkpoint fast-forward).
 */
class FunctionalCore
{
  public:
    FunctionalCore(const PredecodedProgram &prog, SimMemory &mem)
        : prog_(&prog), mem_(&mem)
    {
    }

    /**
     * Execute up to `n` instructions from st.pc. Returns the count
     * actually executed; fewer than `n` means the program halted
     * (st.halted). A halt instruction is not consumed: st.pc stays on
     * it, matching the legacy loop.
     */
    uint64_t run(FunctionalState &st, uint64_t n) const;

    /**
     * Enable functional cache warming: every load/store executed by
     * run() additionally touches `ms` via MemorySystem::warmTouch, so
     * the tag/LRU content the detailed phases see after a sampled skip
     * matches what an exact run would have built. Without this, long-
     * horizon cache warmth (L3 working sets built over millions of
     * instructions) is lost across skips and sampled CPI is biased
     * cold. nullptr disables warming (the default; checkpoint
     * fast-forward and throughput measurement run unwarmed).
     *
     * A direct-mapped filter of recently warmed lines caps the cost:
     * a touch that hits the filter skips the cache model entirely —
     * such a line is already resident and near-MRU, so the only loss
     * is slightly coarser LRU recency. Stores upgrade a clean filter
     * entry so dirty state always reaches the caches.
     */
    void setWarming(MemorySystem *ms);

  private:
    /** Warming-filter entries: (line << 1) | dirty; 0 = empty (line 0
     *  is unmapped by construction, so no valid entry encodes to 0). */
    static constexpr size_t kWarmFilterSize = 4096;
    /** Filter-missing touches queue this deep before flushing through
     *  MemorySystem::warmTouchBatch (prefetch-then-probe). Big enough
     *  to expose host memory-level parallelism, small enough to live
     *  on the stack. */
    static constexpr unsigned kWarmBatch = 64;

    const PredecodedProgram *prog_;
    SimMemory *mem_;
    MemorySystem *warm_ = nullptr;
    /** mutable: the filter is a performance cache, not run() state. */
    mutable std::vector<uint64_t> warmFilter_;
};

/**
 * The pre-refactor interpreter loop (the one makeCheckpoint inlined
 * before PR 6), stepping the un-decoded Program. Kept as the
 * bit-exact reference: the FunctionalCore differential tests compare
 * against it, and the sampling bench reports the fast core's
 * throughput gain over it. Semantics are identical to
 * FunctionalCore::run, including the halt/budget edge cases.
 */
uint64_t referenceFunctionalRun(const Program &prog, SimMemory &mem,
                                FunctionalState &st, uint64_t n);

/** Wall-clock functional throughput of both interpreters. */
struct FunctionalThroughput
{
    double fastMips = 0;        ///< pre-decoded FunctionalCore
    double referenceMips = 0;   ///< legacy Program-stepping loop
    /** fastMips / referenceMips: the headline speedup. */
    double gain = 0;
    uint64_t insts = 0;         ///< instructions timed per interpreter
};

/**
 * Measure both interpreters over `insts` instructions of `prog`
 * against CoW copies of `image` (each interpreter gets its own copy;
 * a program that halts early is restarted on fresh state until the
 * budget is spent). Wall-clock, so only meaningful in optimized
 * builds; the sampling bench reports it and CI enforces a floor.
 */
FunctionalThroughput measureFunctionalThroughput(const Program &prog,
                                                 const SimMemory &image,
                                                 uint64_t insts);

/**
 * The dispatch microbench: a tight loop mixing ALU ops, compares,
 * L1-resident loads/stores and a back branch, with its tiny image.
 * On real workloads both interpreters stall on the same host cache
 * misses against multi-hundred-MB images, which masks the dispatch
 * machinery the pre-decode refactor actually changed; this program's
 * working set stays host-cache resident, so
 * measureFunctionalThroughput over it isolates interpreter speed.
 * The sampling bench reports its gain and CI floors on it.
 */
struct DispatchMicrobench
{
    Program program;
    SimMemory image;
};
DispatchMicrobench makeDispatchMicrobench();

} // namespace dvr

#endif // DVR_SIM_FUNCTIONAL_CORE_HH
