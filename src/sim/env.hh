/**
 * @file
 * The single home for DVR_* environment variables. Every component
 * that honours an env knob reads it through these typed accessors, so
 * the full set of recognized variables — and how they slot into the
 * configuration precedence (CLI > env > config file > defaults) — is
 * auditable in one place.
 *
 * Values are re-read on every call (no caching): tests and drivers
 * may setenv() between runs.
 *
 * Malformed values are never silently coerced: a value that does not
 * parse as a full decimal integer, or that falls outside its
 * documented range, triggers a one-time warning naming the variable
 * and the offending text. Unparseable or below-minimum values are
 * ignored (the accessor returns nullopt, i.e. the default applies);
 * values above the documented maximum are clamped to it.
 */

#ifndef DVR_SIM_ENV_HH
#define DVR_SIM_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

namespace dvr {
namespace env {

/** DVR_INSTS: per-run dynamic instruction budget (must be > 0). */
std::optional<uint64_t> maxInstructions();

/** DVR_SCALE_SHIFT: halve the data sets this many times (0..30). */
std::optional<unsigned> scaleShift();

/** DVR_JOBS: parallel runner thread count (1..1024). */
std::optional<unsigned> jobs();

/** DVR_BENCH_DIR: directory BENCH_<figure>.json reports go to. */
std::optional<std::string> benchDir();

/**
 * Forget which variables have already warned, so tests can observe
 * the warn-once behaviour deterministically.
 */
void resetWarnings();

} // namespace env
} // namespace dvr

#endif // DVR_SIM_ENV_HH
