#include "sim/functional_core.hh"

#include <bit>
#include <chrono>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "mem/memory_system.hh"

namespace dvr {

namespace {

double
asF(uint64_t x)
{
    return std::bit_cast<double>(x);
}

uint64_t
asU(double x)
{
    return std::bit_cast<uint64_t>(x);
}

} // namespace

PredecodedProgram::PredecodedProgram(const Program &prog)
    : size_(prog.size())
{
    insts_.reserve(size_t(size_) + 1);
    for (InstPc pc = 0; pc < size_; ++pc) {
        const Instruction &i = prog.at(pc);
        DecodedInst d;
        d.op = i.op;
        d.rd = i.rd;
        d.rs1 = i.rs1;
        d.rs2 = i.rs2;
        d.target = i.target;
        d.imm = i.imm;
        // The interpreter has no per-step bounds check, so an
        // out-of-range target must be impossible by construction.
        // `target == size` is fine: it lands on the halt sentinel.
        panicIf(i.isBranch() && i.target > size_,
                "PredecodedProgram: branch target out of range");
        insts_.push_back(d);
    }
    DecodedInst halt;
    halt.op = Opcode::kHalt;
    insts_.push_back(halt);
}

/*
 * Functional cache warming (sampled skips only, see setWarming): feed
 * the access through the cache model's tag/LRU state, filtered by the
 * direct-mapped recently-warmed-lines table. A filter hit means the
 * line is resident and near-MRU already, so the full probe (which
 * costs a host cache miss per simulated cache level on the big L3
 * arrays) is skipped. An entry is (line << 1) | dirty; a store against
 * a clean entry falls through so the dirty bit reaches the caches.
 *
 * Filter misses are not probed inline: they queue in a small batch
 * buffer and flush through MemorySystem::warmTouchBatch, which
 * host-prefetches every queued set before probing any — the dominant
 * cost (host misses on the multi-MB L2/L3 way arrays) overlaps across
 * the batch instead of serializing per access. Deferring is sound
 * because warming only mutates cache metadata, which nothing reads
 * until run() returns (flushing on every exit path).
 * `warm`, `wfilt`, `wbuf` and `wn` are locals of run().
 */
#define DVR_FC_WARM(a, is_store) \
    do { \
        if (warm) { \
            const uint64_t ln_ = (a) / kLineBytes; \
            uint64_t &fe_ = \
                wfilt[ln_ & (FunctionalCore::kWarmFilterSize - 1)]; \
            /* Skip when the entry is this line and already at least \
             * as dirty: loads accept either dirty state (|1 masks \
             * the bit), stores require the dirty bit set. */ \
            if ((fe_ | uint64_t(!(is_store))) != ((ln_ << 1) | 1)) { \
                fe_ = (ln_ << 1) | uint64_t(is_store); \
                wbuf[wn++] = ((a) << 1) | uint64_t(is_store); \
                if (wn == FunctionalCore::kWarmBatch) { \
                    warm->warmTouchBatch(wbuf, wn); \
                    wn = 0; \
                } \
            } \
        } \
    } while (0)

/* Drain the warm batch buffer; required before every return. */
#define DVR_FC_WARM_FLUSH() \
    do { \
        if (warm && wn > 0) { \
            warm->warmTouchBatch(wbuf, wn); \
            wn = 0; \
        } \
    } while (0)

/*
 * One entry per opcode: `d` is the decoded instruction, `regs` the
 * register file, `mem` the functional memory, `pc` the program
 * counter. Every body advances `pc` itself (branches assign it).
 * kHalt is handled outside the macro — it terminates the run loop.
 *
 * Semantics mirror evalOp/branchTaken in src/isa/instruction.cc
 * exactly; the differential tests (fast vs referenceFunctionalRun,
 * which calls those functions) pin the equivalence per opcode.
 */
#define DVR_FC_SEMANTICS(X) \
    X(kNop,     { ++pc; }) \
    X(kLoadImm, { regs[d->rd] = static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kMov,     { regs[d->rd] = regs[d->rs1]; ++pc; }) \
    X(kAdd,     { regs[d->rd] = regs[d->rs1] + regs[d->rs2]; ++pc; }) \
    X(kSub,     { regs[d->rd] = regs[d->rs1] - regs[d->rs2]; ++pc; }) \
    X(kMul,     { regs[d->rd] = regs[d->rs1] * regs[d->rs2]; ++pc; }) \
    X(kDivU,    { const uint64_t s2 = regs[d->rs2]; \
                  regs[d->rd] = s2 == 0 ? ~0ULL : regs[d->rs1] / s2; \
                  ++pc; }) \
    X(kRemU,    { const uint64_t s2 = regs[d->rs2]; \
                  regs[d->rd] = s2 == 0 ? regs[d->rs1] \
                                        : regs[d->rs1] % s2; \
                  ++pc; }) \
    X(kAnd,     { regs[d->rd] = regs[d->rs1] & regs[d->rs2]; ++pc; }) \
    X(kOr,      { regs[d->rd] = regs[d->rs1] | regs[d->rs2]; ++pc; }) \
    X(kXor,     { regs[d->rd] = regs[d->rs1] ^ regs[d->rs2]; ++pc; }) \
    X(kShl,     { regs[d->rd] = regs[d->rs1] << (regs[d->rs2] & 63); \
                  ++pc; }) \
    X(kShr,     { regs[d->rd] = regs[d->rs1] >> (regs[d->rs2] & 63); \
                  ++pc; }) \
    X(kMin,     { regs[d->rd] = regs[d->rs1] < regs[d->rs2] \
                                    ? regs[d->rs1] : regs[d->rs2]; \
                  ++pc; }) \
    X(kMax,     { regs[d->rd] = regs[d->rs1] > regs[d->rs2] \
                                    ? regs[d->rs1] : regs[d->rs2]; \
                  ++pc; }) \
    X(kAddI,    { regs[d->rd] = regs[d->rs1] + \
                                static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kMulI,    { regs[d->rd] = regs[d->rs1] * \
                                static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kAndI,    { regs[d->rd] = regs[d->rs1] & \
                                static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kOrI,     { regs[d->rd] = regs[d->rs1] | \
                                static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kXorI,    { regs[d->rd] = regs[d->rs1] ^ \
                                static_cast<uint64_t>(d->imm); ++pc; }) \
    X(kShlI,    { regs[d->rd] = regs[d->rs1] << (d->imm & 63); ++pc; }) \
    X(kShrI,    { regs[d->rd] = regs[d->rs1] >> (d->imm & 63); ++pc; }) \
    X(kHash,    { regs[d->rd] = kernelHash(regs[d->rs1]); ++pc; }) \
    X(kFAdd,    { regs[d->rd] = asU(asF(regs[d->rs1]) + \
                                    asF(regs[d->rs2])); ++pc; }) \
    X(kFSub,    { regs[d->rd] = asU(asF(regs[d->rs1]) - \
                                    asF(regs[d->rs2])); ++pc; }) \
    X(kFMul,    { regs[d->rd] = asU(asF(regs[d->rs1]) * \
                                    asF(regs[d->rs2])); ++pc; }) \
    X(kFDiv,    { regs[d->rd] = asU(asF(regs[d->rs1]) / \
                                    asF(regs[d->rs2])); ++pc; }) \
    X(kI2F,     { regs[d->rd] = asU(static_cast<double>(regs[d->rs1])); \
                  ++pc; }) \
    X(kF2I,     { regs[d->rd] = static_cast<uint64_t>( \
                      static_cast<int64_t>(asF(regs[d->rs1]))); ++pc; }) \
    X(kFCmpLt,  { regs[d->rd] = \
                      asF(regs[d->rs1]) < asF(regs[d->rs2]) ? 1 : 0; \
                  ++pc; }) \
    X(kCmpLt,   { regs[d->rd] = static_cast<int64_t>(regs[d->rs1]) < \
                                static_cast<int64_t>(regs[d->rs2]); \
                  ++pc; }) \
    X(kCmpLtU,  { regs[d->rd] = regs[d->rs1] < regs[d->rs2] ? 1 : 0; \
                  ++pc; }) \
    X(kCmpEq,   { regs[d->rd] = regs[d->rs1] == regs[d->rs2] ? 1 : 0; \
                  ++pc; }) \
    X(kCmpNe,   { regs[d->rd] = regs[d->rs1] != regs[d->rs2] ? 1 : 0; \
                  ++pc; }) \
    X(kCmpLtI,  { regs[d->rd] = \
                      static_cast<int64_t>(regs[d->rs1]) < d->imm ? 1 \
                                                                  : 0; \
                  ++pc; }) \
    X(kCmpLtUI, { regs[d->rd] = \
                      regs[d->rs1] < static_cast<uint64_t>(d->imm) \
                          ? 1 : 0; \
                  ++pc; }) \
    X(kCmpEqI,  { regs[d->rd] = \
                      regs[d->rs1] == static_cast<uint64_t>(d->imm) \
                          ? 1 : 0; \
                  ++pc; }) \
    X(kLoad,    { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, false); \
                  regs[d->rd] = mem.read(a, 8); ++pc; }) \
    X(kLoad32,  { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, false); \
                  regs[d->rd] = mem.read(a, 4); ++pc; }) \
    X(kLoad8,   { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, false); \
                  regs[d->rd] = mem.read(a, 1); ++pc; }) \
    X(kStore,   { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, true); \
                  mem.write(a, 8, regs[d->rs2]); ++pc; }) \
    X(kStore32, { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, true); \
                  mem.write(a, 4, regs[d->rs2]); ++pc; }) \
    X(kStore8,  { const Addr a = \
                      regs[d->rs1] + static_cast<Addr>(d->imm); \
                  DVR_FC_WARM(a, true); \
                  mem.write(a, 1, regs[d->rs2]); ++pc; }) \
    X(kBeqz,    { pc = regs[d->rs1] == 0 ? d->target : pc + 1; }) \
    X(kBnez,    { pc = regs[d->rs1] != 0 ? d->target : pc + 1; }) \
    X(kJmp,     { pc = d->target; })

void
FunctionalCore::setWarming(MemorySystem *ms)
{
    warm_ = ms;
    if (ms)
        warmFilter_.assign(kWarmFilterSize, 0);
    else
        warmFilter_.clear();
}

uint64_t
FunctionalCore::run(FunctionalState &st, uint64_t n) const
{
    if (st.halted || n == 0)
        return 0;

    const DecodedInst *const insts = prog_->insts();
    const InstPc sz = prog_->size();
    uint64_t *const regs = st.regs.data();
    SimMemory::FastMem mem(*mem_);
    MemorySystem *const warm = warm_;   // null: warming disabled
    uint64_t *const wfilt = warmFilter_.data();
    uint64_t wbuf[kWarmBatch];          // deferred warm touches
    unsigned wn = 0;
    InstPc pc = st.pc;
    uint64_t executed = 0;

#if defined(DVR_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
    // Label table indexed by Opcode, in enum declaration order.
    static const void *const kTable[kNumOpcodes] = {
        &&L_kNop,     &&L_kHalt,    &&L_kLoadImm, &&L_kMov,
        &&L_kAdd,     &&L_kSub,     &&L_kMul,     &&L_kDivU,
        &&L_kRemU,    &&L_kAnd,     &&L_kOr,      &&L_kXor,
        &&L_kShl,     &&L_kShr,     &&L_kMin,     &&L_kMax,
        &&L_kAddI,    &&L_kMulI,    &&L_kAndI,    &&L_kOrI,
        &&L_kXorI,    &&L_kShlI,    &&L_kShrI,    &&L_kHash,
        &&L_kFAdd,    &&L_kFSub,    &&L_kFMul,    &&L_kFDiv,
        &&L_kI2F,     &&L_kF2I,     &&L_kFCmpLt,  &&L_kCmpLt,
        &&L_kCmpLtU,  &&L_kCmpEq,   &&L_kCmpNe,   &&L_kCmpLtI,
        &&L_kCmpLtUI, &&L_kCmpEqI,  &&L_kLoad,    &&L_kLoad32,
        &&L_kLoad8,   &&L_kStore,   &&L_kStore32, &&L_kStore8,
        &&L_kBeqz,    &&L_kBnez,    &&L_kJmp,
    };

    const DecodedInst *d = &insts[pc];
#define DVR_FC_NEXT() \
    do { \
        if (++executed >= n) { \
            st.pc = pc; \
            if (pc >= sz) \
                st.halted = true; \
            DVR_FC_WARM_FLUSH(); \
            return executed; \
        } \
        d = &insts[pc]; \
        goto *kTable[static_cast<size_t>(d->op)]; \
    } while (0)

    goto *kTable[static_cast<size_t>(d->op)];

#define DVR_FC_LABEL(opname, body) \
    L_##opname: body DVR_FC_NEXT();
    DVR_FC_SEMANTICS(DVR_FC_LABEL)
#undef DVR_FC_LABEL
#undef DVR_FC_NEXT

L_kHalt:
    st.halted = true;
    st.pc = pc;
    DVR_FC_WARM_FLUSH();
    return executed;
#else
    while (executed < n) {
        const DecodedInst *const d = &insts[pc];
        switch (d->op) {
#define DVR_FC_CASE(opname, body) \
  case Opcode::opname: \
    body break;
            DVR_FC_SEMANTICS(DVR_FC_CASE)
#undef DVR_FC_CASE
          case Opcode::kHalt:
            // Not consumed: st.pc stays on the halt, matching the
            // legacy loop.
            st.halted = true;
            st.pc = pc;
            DVR_FC_WARM_FLUSH();
            return executed;
        }
        ++executed;
    }
    st.pc = pc;
    // Budget exhausted exactly as the PC fell off the end: the legacy
    // loop reports that as halted, so we do too.
    if (pc >= sz)
        st.halted = true;
    DVR_FC_WARM_FLUSH();
    return executed;
#endif
}

uint64_t
referenceFunctionalRun(const Program &prog, SimMemory &mem,
                       FunctionalState &st, uint64_t n)
{
    if (st.halted)
        return 0;
    std::array<uint64_t, kNumArchRegs> &r = st.regs;
    InstPc pc = st.pc;
    uint64_t done = 0;
    for (; done < n && prog.valid(pc); ++done) {
        const Instruction &inst = prog.at(pc);
        if (inst.op == Opcode::kHalt) {
            st.halted = true;
            break;
        }
        InstPc next = pc + 1;
        if (inst.isLoad()) {
            const Addr a = r[inst.rs1] + static_cast<Addr>(inst.imm);
            r[inst.rd] = mem.read(a, inst.memBytes());
        } else if (inst.isStore()) {
            mem.write(r[inst.rs1] + static_cast<Addr>(inst.imm),
                      inst.memBytes(), r[inst.rs2]);
        } else if (inst.isBranch()) {
            if (branchTaken(inst.op, r[inst.rs1]))
                next = inst.target;
        } else if (inst.hasDest()) {
            r[inst.rd] = evalOp(inst.op, r[inst.rs1], r[inst.rs2],
                                inst.imm);
        }
        pc = next;
    }
    if (!prog.valid(pc))
        st.halted = true;
    st.pc = pc;
    return done;
}

namespace {

/** Run `run` for `insts` total, restarting on halt; returns MIPS. */
template <class RunFn>
double
timeInterpreter(const SimMemory &image, uint64_t insts, RunFn run)
{
    SimMemory mem = image;      // CoW view, like a simulation run
    FunctionalState st;
    uint64_t left = insts;
    // dvr-lint: allow(wall-clock) MIPS calibration diagnostic; not a simulation input
    const auto t0 = std::chrono::steady_clock::now();
    while (left > 0) {
        left -= run(st, mem, left);
        if (st.halted) {
            mem = image;        // restart on fresh state
            st = FunctionalState{};
        }
    }
    const double secs =
        // dvr-lint: allow(wall-clock) MIPS calibration diagnostic; not a simulation input
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return secs > 0 ? double(insts) / secs / 1e6 : 0.0;
}

} // namespace

FunctionalThroughput
measureFunctionalThroughput(const Program &prog, const SimMemory &image,
                            uint64_t insts)
{
    const PredecodedProgram pre(prog);

    FunctionalThroughput t;
    t.insts = insts;
    t.referenceMips = timeInterpreter(
        image, insts,
        [&prog](FunctionalState &st, SimMemory &mem, uint64_t n) {
            return referenceFunctionalRun(prog, mem, st, n);
        });
    t.fastMips = timeInterpreter(
        image, insts,
        [&pre](FunctionalState &st, SimMemory &mem, uint64_t n) {
            return FunctionalCore(pre, mem).run(st, n);
        });
    t.gain = t.referenceMips > 0 ? t.fastMips / t.referenceMips : 0.0;
    return t;
}

DispatchMicrobench
makeDispatchMicrobench()
{
    // ~14 insts per iteration: 7 ALU/compare, 1 load + 1 store over a
    // 4 KiB scratch buffer (L1-resident on any host), 2 loop-control
    // ALU ops and a taken back branch — roughly the fig02 subset's
    // instruction mix with the memory footprint shrunk to nothing.
    ProgramBuilder b;
    b.li(1, 0).li(2, 1'000'000'000);
    for (RegId r = 3; r <= 9; ++r)
        b.li(r, int64_t(0x9E37 + int64_t(r) * 77));
    b.li(0, 64);            // scratch buffer base (alloc below)
    b.label("loop");
    b.add(3, 3, 4).xor_(4, 3, 5).muli(5, 4, 3).shri(6, 5, 7);
    b.and_(7, 6, 3).cmplt(8, 7, 4);
    b.andi(11, 3, 4088).add(11, 11, 0);
    b.ld(12, 11).add(3, 3, 12).st(11, 0, 7);
    b.addi(1, 1, 1).cmplt(10, 1, 2).bnez(10, "loop");
    b.halt();

    SimMemory image(1 << 20);
    image.alloc(8192);
    return DispatchMicrobench{b.build(), std::move(image)};
}

} // namespace dvr
