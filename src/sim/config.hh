/**
 * @file
 * Top-level simulation configuration: the Table 1 baseline core and
 * memory hierarchy plus the runahead technique under evaluation.
 */

#ifndef DVR_SIM_CONFIG_HH
#define DVR_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runahead/dvr_controller.hh"
#include "runahead/oracle.hh"
#include "runahead/pre_controller.hh"
#include "runahead/vr_controller.hh"

namespace dvr {

/** The techniques evaluated in Section 6. */
enum class Technique : uint8_t {
    kBase,          ///< OoO baseline (stride prefetcher always on)
    kPre,           ///< Precise Runahead Execution
    kImp,           ///< Indirect Memory Prefetcher
    kVr,            ///< Vector Runahead
    kDvr,           ///< Decoupled Vector Runahead (full)
    kDvrOffload,    ///< Fig 8: offload only (no discovery/nested)
    kDvrDiscovery,  ///< Fig 8: + discovery, no nested
    kOracle,        ///< perfect-knowledge prefetcher
};

const char *techniqueName(Technique t);

/** Parse a technique name; std::nullopt when unknown. */
std::optional<Technique> tryParseTechnique(const std::string &name);

/** Parse a technique name; fatal() listing the valid names. */
Technique parseTechnique(const std::string &name);

/** All valid technique names, comma-separated (error messages). */
std::string techniqueNameList();

/**
 * Functional warmup and architectural-checkpoint reuse. Off by
 * default: with insts == 0 every run starts cold from the pristine
 * image and behaviour is byte-identical to the pre-checkpoint
 * simulator (pinned by the golden-parity tests).
 */
struct WarmupConfig
{
    /** Instructions to fast-forward functionally before timing. */
    uint64_t insts = 0;
    /**
     * Share one architectural checkpoint (registers + dirty pages)
     * across every run of a prepared workload instead of re-executing
     * the fast-forward per run.
     */
    bool share = true;
};

struct SimConfig
{
    CoreConfig core;
    MemConfig mem;
    Technique technique = Technique::kBase;
    DvrConfig dvr;
    VrConfig vr;
    PreConfig pre;
    OracleConfig oracle;
    uint64_t maxInstructions = defaultMaxInstructions();
    uint64_t memoryBytes = 192ULL << 20;
    /**
     * Trace categories to enable ("" = off; see src/sim/trace.hh).
     * Tracing is observability-only: it never changes timing.
     */
    std::string trace;
    /** JSONL trace sink path ("" = derive from the run context). */
    std::string traceFile;
    WarmupConfig warmup;

    /** Table 1 baseline with the given technique. */
    static SimConfig baseline(Technique t = Technique::kBase);

    /** String-keyed baseline: fatal() on an unknown technique name. */
    static SimConfig baseline(const std::string &technique);

    /**
     * Default per-run dynamic instruction budget: the DVR_INSTS
     * environment variable, or 500k (the paper simulates 500M per run;
     * our data sets are scaled ~100-500x smaller).
     */
    static uint64_t defaultMaxInstructions();

    /** Data-set scale shift: DVR_SCALE_SHIFT env var, default 0. */
    static unsigned defaultScaleShift();
};

} // namespace dvr

#endif // DVR_SIM_CONFIG_HH
