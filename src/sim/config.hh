/**
 * @file
 * Top-level simulation configuration: the Table 1 baseline core and
 * memory hierarchy plus the runahead technique under evaluation.
 */

#ifndef DVR_SIM_CONFIG_HH
#define DVR_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/ooo_core.hh"
#include "mem/memory_system.hh"
#include "runahead/dvr_controller.hh"
#include "runahead/oracle.hh"
#include "runahead/pre_controller.hh"
#include "runahead/vr_controller.hh"

namespace dvr {

/** The techniques evaluated in Section 6. */
enum class Technique : uint8_t {
    kBase,          ///< OoO baseline (stride prefetcher always on)
    kPre,           ///< Precise Runahead Execution
    kImp,           ///< Indirect Memory Prefetcher
    kVr,            ///< Vector Runahead
    kDvr,           ///< Decoupled Vector Runahead (full)
    kDvrOffload,    ///< Fig 8: offload only (no discovery/nested)
    kDvrDiscovery,  ///< Fig 8: + discovery, no nested
    kOracle,        ///< perfect-knowledge prefetcher
};

const char *techniqueName(Technique t);

/** Parse a technique name; std::nullopt when unknown. */
std::optional<Technique> tryParseTechnique(const std::string &name);

/** Parse a technique name; fatal() listing the valid names. */
Technique parseTechnique(const std::string &name);

/** All valid technique names, comma-separated (error messages). */
std::string techniqueNameList();

/**
 * Functional warmup and architectural-checkpoint reuse. Off by
 * default: with insts == 0 every run starts cold from the pristine
 * image and behaviour is byte-identical to the pre-checkpoint
 * simulator (pinned by the golden-parity tests).
 */
struct WarmupConfig
{
    /** Instructions to fast-forward functionally before timing. */
    uint64_t insts = 0;
    /**
     * Share one architectural checkpoint (registers + dirty pages)
     * across every run of a prepared workload instead of re-executing
     * the fast-forward per run.
     */
    bool share = true;
};

/**
 * Interval sampling (SMARTS-style). Off by default (interval == 0):
 * every instruction is simulated in detail and behaviour is
 * byte-identical to the exact simulator (pinned by the golden-parity
 * tests). With interval > 0, each interval functionally fast-forwards
 * (interval - warmup - window) instructions on the pre-decoded
 * FunctionalCore, runs `warmup` instructions in detail with stats
 * discarded (caches/predictor/store-forwarding warm up), then measures
 * `window` instructions; CPI is extrapolated from the measured windows
 * with a per-window-variance confidence interval (sample.* stats).
 */
struct SampleConfig
{
    /** Interval length in instructions; 0 disables sampling. */
    uint64_t interval = 0;
    /** Detailed-warmup instructions per interval (stats discarded). */
    uint64_t warmup = 4000;
    /**
     * Measured-window instructions per interval. Many short windows
     * beat few long ones: phased workloads (hash join build/probe)
     * need enough observations to cover every phase, and the window
     * CPI stabilizes within ~2k instructions after warmup.
     */
    uint64_t window = 2000;
    /**
     * Functional cache warming limit: at most this many trailing
     * instructions of each functional skip feed the cache model
     * (MemorySystem::warmTouch); the rest run unwarmed at full
     * interpreter speed. 0 warms the entire skip. Warming costs a
     * host cache miss per distinct line touched, so it bounds the
     * sampled run's throughput; a tail long enough to rebuild the
     * L3's recency (its fill horizon is a few hundred k instructions)
     * keeps the bias negligible while long skips stay cheap.
     */
    uint64_t warm = 0;
};

/**
 * The dvr_serve job daemon (src/serve/): worker sharding, crash
 * retries, and queue polling. Serve keys only affect how a sweep is
 * scheduled across processes, never the simulated results.
 */
struct ServeConfig
{
    /** Worker processes per job; 0 = hardware concurrency. */
    unsigned workers = 0;
    /** Attempts per point before the job is failed (>= 1). */
    unsigned maxAttempts = 3;
    /** Base retry backoff in milliseconds (doubles per attempt). */
    unsigned backoffMs = 200;
    /** Daemon queue-poll period in milliseconds. */
    unsigned pollMs = 500;
};

struct SimConfig
{
    CoreConfig core;
    MemConfig mem;
    Technique technique = Technique::kBase;
    DvrConfig dvr;
    VrConfig vr;
    PreConfig pre;
    OracleConfig oracle;
    uint64_t maxInstructions = defaultMaxInstructions();
    uint64_t memoryBytes = 192ULL << 20;
    /**
     * Trace categories to enable ("" = off; see src/sim/trace.hh).
     * Tracing is observability-only: it never changes timing.
     */
    std::string trace;
    /** JSONL trace sink path ("" = derive from the run context). */
    std::string traceFile;
    WarmupConfig warmup;
    SampleConfig sample;
    ServeConfig serve;

    /** Table 1 baseline with the given technique. */
    static SimConfig baseline(Technique t = Technique::kBase);

    /** String-keyed baseline: fatal() on an unknown technique name. */
    static SimConfig baseline(const std::string &technique);

    /**
     * Default per-run dynamic instruction budget: the DVR_INSTS
     * environment variable, or 500k (the paper simulates 500M per run;
     * our data sets are scaled ~100-500x smaller).
     */
    static uint64_t defaultMaxInstructions();

    /** Data-set scale shift: DVR_SCALE_SHIFT env var, default 0. */
    static unsigned defaultScaleShift();
};

} // namespace dvr

#endif // DVR_SIM_CONFIG_HH
