#include "sim/simulator.hh"

#include <memory>

#include "common/arena.hh"
#include "common/log.hh"
#include "runahead/technique.hh"
#include "sim/checkpoint.hh"
#include "sim/sampling.hh"

namespace dvr {

namespace {

SimResult
runImpl(const SimConfig &cfgIn, const Workload &w,
        const SimMemory &image, const RegState *start_regs,
        InstPc start_pc)
{
    // Wire the selected technique through the registry: normalize the
    // configuration with the technique's own hook, then let its
    // factory build the core client (null for base-style techniques).
    const TechniqueInfo *info = TechniqueRegistry::instance().find(
        techniqueName(cfgIn.technique));
    if (!info)
        fatal(std::string("Simulator: technique '") +
              techniqueName(cfgIn.technique) + "' is not registered");

    SimConfig cfg = cfgIn;
    if (info->prepare)
        info->prepare(cfg);

    // All per-run simulation state (cache tag/meta arrays, MSHR heap,
    // core rings, predictor tables, subthread lane buffers) comes off
    // the per-thread arena; the frame hands the storage back when the
    // run ends, so the next run on this thread reuses it in place.
    ArenaFrame arenaFrame(Arena::forCurrentThread());

    SimMemory mem = image;      // CoW share: techniques reuse the image
    MemorySystem memsys(cfg.mem, mem);

    const TechniqueContext ctx{cfg,    w.program, mem,
                               image,  memsys,    start_regs,
                               start_pc};
    std::unique_ptr<RunaheadTechnique> tech =
        info->create ? info->create(ctx) : nullptr;

    OooCore core(cfg.core, w.program, mem, memsys, tech.get());
    if (start_regs)
        core.restoreArchState(*start_regs, start_pc);
    if (tech)
        tech->attach(core);

    core.run(cfg.maxInstructions);

    SimResult r;
    r.core = core.stats();
    r.halted = core.stats().halted;
    r.verified = r.halted && w.verify && w.verify(mem);

    r.stats.merge("core.", core.stats().toStatSet());
    StatSet ms = memsys.stats();
    ms.set("mshr_occupancy",
           memsys.mshrs().avgOccupancy(core.stats().cycles));
    r.stats.merge("mem.", ms);
    StatSet bp;
    bp.set("lookups", double(core.predictor().lookups));
    bp.set("mispredicts", double(core.predictor().mispredicts));
    r.stats.merge("bpred.", bp);
    if (tech)
        tech->finalizeStats(r.stats);
    return r;
}

} // namespace

SimResult
Simulator::run(const SimConfig &cfg, const std::string &workload,
               const WorkloadParams &wp)
{
    SimMemory mem(cfg.memoryBytes);
    Workload w = workloadFactory(workload)(mem, wp);
    return runOn(cfg, w, mem);
}

SimResult
Simulator::runOn(const SimConfig &cfg, const Workload &w,
                 const SimMemory &pristine)
{
    if (cfg.warmup.insts > 0) {
        const Checkpoint ckpt =
            makeCheckpoint(w.program, pristine, cfg.warmup.insts);
        return runOn(cfg, w, ckpt);
    }
    if (cfg.sample.interval > 0)
        return runSampled(cfg, w, pristine);
    return runImpl(cfg, w, pristine, nullptr, 0);
}

SimResult
Simulator::runOn(const SimConfig &cfg, const Workload &w,
                 const Checkpoint &ckpt)
{
    if (cfg.sample.interval > 0)
        return runSampled(cfg, w, ckpt.memory, &ckpt.regs, ckpt.pc);
    return runImpl(cfg, w, ckpt.memory, &ckpt.regs, ckpt.pc);
}

} // namespace dvr
