#include "sim/simulator.hh"

#include <memory>

#include "common/log.hh"

namespace dvr {

SimResult
Simulator::run(const SimConfig &cfg, const std::string &workload,
               const WorkloadParams &wp)
{
    SimMemory mem(cfg.memoryBytes);
    Workload w = workloadFactory(workload)(mem, wp);
    return runOn(cfg, w, mem);
}

SimResult
Simulator::runOn(const SimConfig &cfg, const Workload &w,
                 const SimMemory &pristine)
{
    SimMemory mem = pristine;   // techniques share the data set
    MemorySystem memsys(cfg.mem, mem);

    // Wire the selected technique.
    std::unique_ptr<DvrController> dvr;
    std::unique_ptr<VrController> vr;
    std::unique_ptr<PreController> pre;
    std::unique_ptr<OracleController> oracle;
    CoreClient *client = nullptr;

    switch (cfg.technique) {
      case Technique::kBase:
      case Technique::kImp:
        break;
      case Technique::kPre:
        pre = std::make_unique<PreController>(cfg.pre, w.program, mem,
                                              memsys);
        client = pre.get();
        break;
      case Technique::kVr:
        vr = std::make_unique<VrController>(cfg.vr, w.program, mem,
                                            memsys);
        client = vr.get();
        break;
      case Technique::kDvr:
      case Technique::kDvrOffload:
      case Technique::kDvrDiscovery: {
        DvrConfig dc = cfg.dvr;
        if (cfg.technique == Technique::kDvrOffload) {
            dc.discoveryEnabled = false;
            dc.nestedEnabled = false;
            dc.subthread.gpuReconvergence = false;
        } else if (cfg.technique == Technique::kDvrDiscovery) {
            dc.nestedEnabled = false;
        }
        dvr = std::make_unique<DvrController>(dc, w.program, mem,
                                              memsys);
        client = dvr.get();
        break;
      }
      case Technique::kOracle: {
        SimMemory scratch = pristine;
        auto trace = recordLoadTrace(w.program, scratch,
                                     cfg.maxInstructions);
        oracle = std::make_unique<OracleController>(
            cfg.oracle, memsys, std::move(trace));
        client = oracle.get();
        break;
      }
    }

    OooCore core(cfg.core, w.program, mem, memsys, client);
    if (dvr)
        dvr->attachCore(core);
    if (vr)
        vr->attachCore(core);
    if (pre)
        pre->attachCore(core);

    core.run(cfg.maxInstructions);

    SimResult r;
    r.core = core.stats();
    r.halted = core.stats().halted;
    r.verified = r.halted && w.verify && w.verify(mem);

    r.stats.merge("core.", core.stats().toStatSet());
    StatSet ms = memsys.stats();
    ms.set("mshr_occupancy",
           memsys.mshrs().avgOccupancy(core.stats().cycles));
    r.stats.merge("mem.", ms);
    StatSet bp;
    bp.set("lookups", double(core.predictor().lookups));
    bp.set("mispredicts", double(core.predictor().mispredicts));
    r.stats.merge("bpred.", bp);
    if (dvr)
        r.stats.merge("dvr.", dvr->stats().toStatSet());
    if (vr)
        r.stats.merge("vr.", vr->toStatSet());
    if (pre)
        r.stats.merge("pre.", pre->toStatSet());
    if (oracle)
        r.stats.merge("oracle.", oracle->toStatSet());
    return r;
}

} // namespace dvr
