#include "sim/env.hh"

#include <cstdlib>

namespace dvr {
namespace env {

namespace {

std::optional<uint64_t>
positiveU64(const char *name)
{
    if (const char *e = std::getenv(name)) {
        const uint64_t v = std::strtoull(e, nullptr, 10);
        if (v > 0)
            return v;
    }
    return std::nullopt;
}

} // namespace

std::optional<uint64_t>
maxInstructions()
{
    return positiveU64("DVR_INSTS");
}

std::optional<unsigned>
scaleShift()
{
    if (const char *e = std::getenv("DVR_SCALE_SHIFT"))
        return unsigned(std::strtoul(e, nullptr, 10));
    return std::nullopt;
}

std::optional<unsigned>
jobs()
{
    if (const auto v = positiveU64("DVR_JOBS"))
        return unsigned(*v);
    return std::nullopt;
}

std::optional<std::string>
benchDir()
{
    if (const char *e = std::getenv("DVR_BENCH_DIR"))
        return std::string(e);
    return std::nullopt;
}

} // namespace env
} // namespace dvr
