#include "sim/env.hh"

#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <set>

#include "common/log.hh"

namespace dvr {
namespace env {

namespace {

// Warn-once bookkeeping: a bad value is reported the first time the
// variable is read, not on every one of the hundreds of reads a sweep
// makes. Keyed by variable name; resetWarnings() clears it for tests.
std::mutex warnMutex;
std::set<std::string> &
warnedVars()
{
    static std::set<std::string> vars;
    return vars;
}

void
warnOnce(const std::string &name, const std::string &message)
{
    std::lock_guard<std::mutex> lock(warnMutex);
    if (warnedVars().insert(name).second)
        warn(name + ": " + message);
}

/**
 * Parse the full string as an unsigned decimal integer. Rejects empty
 * strings, leading signs, trailing garbage ("8x"), and out-of-range
 * values — strtoull's permissive prefix parsing is exactly the bug
 * this replaces.
 */
std::optional<uint64_t>
parseU64(const char *text)
{
    if (!text || !*text)
        return std::nullopt;
    // strtoull accepts "-1" (wrapping) and leading whitespace; a
    // strict decimal knob wants neither.
    if (*text == '-' || *text == '+' || *text == ' ' || *text == '\t')
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || end == text || *end != '\0')
        return std::nullopt;
    return uint64_t(v);
}

/**
 * Read an integer env knob with a documented [min, max] range.
 * Unparseable or below-minimum values warn once and are ignored
 * (default applies); above-maximum values warn once and clamp.
 */
std::optional<uint64_t>
rangedU64(const char *name, uint64_t min, uint64_t max)
{
    const char *e = std::getenv(name);
    if (!e)
        return std::nullopt;
    const auto v = parseU64(e);
    if (!v || *v < min) {
        warnOnce(name, "ignoring invalid value \"" + std::string(e) +
                           "\" (want an integer >= " +
                           std::to_string(min) + ")");
        return std::nullopt;
    }
    if (*v > max) {
        warnOnce(name, "clamping " + std::string(e) + " to maximum " +
                           std::to_string(max));
        return max;
    }
    return v;
}

} // namespace

std::optional<uint64_t>
maxInstructions()
{
    return rangedU64("DVR_INSTS", 1, UINT64_MAX);
}

std::optional<unsigned>
scaleShift()
{
    // > 30 would shift data sets to nothing (and shifts past the
    // word width are UB downstream): clamp.
    if (const auto v = rangedU64("DVR_SCALE_SHIFT", 0, 30))
        return unsigned(*v);
    return std::nullopt;
}

std::optional<unsigned>
jobs()
{
    // 0 threads cannot make progress; four-digit thread counts are
    // always a typo on this simulator.
    if (const auto v = rangedU64("DVR_JOBS", 1, 1024))
        return unsigned(*v);
    return std::nullopt;
}

std::optional<std::string>
benchDir()
{
    if (const char *e = std::getenv("DVR_BENCH_DIR")) {
        if (!*e) {
            warnOnce("DVR_BENCH_DIR",
                     "ignoring empty value (want a directory path)");
            return std::nullopt;
        }
        return std::string(e);
    }
    return std::nullopt;
}

void
resetWarnings()
{
    std::lock_guard<std::mutex> lock(warnMutex);
    warnedVars().clear();
}

} // namespace env
} // namespace dvr
