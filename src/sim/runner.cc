#include "sim/runner.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "sim/env.hh"

namespace dvr {

Runner::Runner(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    work_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
Runner::workerLoop()
{
    for (;;) {
        size_t idx;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            work_.wait(lk, [this] {
                return stop_ || (active_ && next_ < jobs_->size());
            });
            if (stop_)
                return;
            idx = next_++;
        }
        const SimJob &job = (*jobs_)[idx];
        try {
            if (!job.workload)
                fatal("Runner: job '" + job.label + "' has no workload");
            (*results_)[idx] = job.workload->run(job.cfg);
        } catch (...) {
            (*errors_)[idx] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (++done_ == jobs_->size()) {
                active_ = false;
                batchDone_.notify_all();
            }
        }
    }
}

std::vector<SimResult>
Runner::runAll(const std::vector<SimJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;
    std::vector<std::exception_ptr> errors(jobs.size());
    {
        std::unique_lock<std::mutex> lk(mutex_);
        panicIf(active_, "Runner::runAll is not reentrant");
        jobs_ = &jobs;
        results_ = &results;
        errors_ = &errors;
        next_ = 0;
        done_ = 0;
        active_ = true;
        work_.notify_all();
        batchDone_.wait(lk, [this] { return !active_; });
        jobs_ = nullptr;
        results_ = nullptr;
        errors_ = nullptr;
    }
    // Deterministic propagation: the first failed job by submission
    // order, regardless of which thread hit it first.
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

unsigned
Runner::defaultJobs()
{
    if (const auto v = env::jobs())
        return *v;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
Runner::jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            const unsigned v =
                unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            if (v > 0)
                return v;
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            const unsigned v =
                unsigned(std::strtoul(argv[i] + 7, nullptr, 10));
            if (v > 0)
                return v;
        }
    }
    return defaultJobs();
}

} // namespace dvr
