#include "sim/runner.hh"

#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "sim/env.hh"

namespace dvr {

Runner::Runner(unsigned threads) : pool_(threads) {}

Runner::~Runner() = default;

std::vector<SimResult>
Runner::runAll(const std::vector<SimJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    if (jobs.empty())
        return results;
    std::vector<std::exception_ptr> errors(jobs.size());

    pool_.run(jobs.size(), [&](size_t idx) {
        const SimJob &job = jobs[idx];
        try {
            if (!job.workload)
                fatal("Runner: job '" + job.label + "' has no workload");
            results[idx] = job.workload->run(job.cfg);
        } catch (...) {
            errors[idx] = std::current_exception();
        }
    });

    // Deterministic propagation: the first failed job by submission
    // order, regardless of which thread hit it first.
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

unsigned
Runner::defaultJobs()
{
    if (const auto v = env::jobs())
        return *v;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
Runner::jobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            const unsigned v =
                unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            if (v > 0)
                return v;
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            const unsigned v =
                unsigned(std::strtoul(argv[i] + 7, nullptr, 10));
            if (v > 0)
                return v;
        }
    }
    return defaultJobs();
}

} // namespace dvr
