#include "sim/config.hh"

#include "common/log.hh"
#include "runahead/technique.hh"
#include "sim/env.hh"

namespace dvr {

namespace {

constexpr Technique kAllTechniques[] = {
    Technique::kBase,        Technique::kPre,
    Technique::kImp,         Technique::kVr,
    Technique::kDvr,         Technique::kDvrOffload,
    Technique::kDvrDiscovery, Technique::kOracle,
};

} // namespace

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::kBase: return "base";
      case Technique::kPre: return "pre";
      case Technique::kImp: return "imp";
      case Technique::kVr: return "vr";
      case Technique::kDvr: return "dvr";
      case Technique::kDvrOffload: return "dvr-offload";
      case Technique::kDvrDiscovery: return "dvr-discovery";
      case Technique::kOracle: return "oracle";
    }
    return "?";
}

std::optional<Technique>
tryParseTechnique(const std::string &name)
{
    for (Technique t : kAllTechniques) {
        if (name == techniqueName(t))
            return t;
    }
    return std::nullopt;
}

std::string
techniqueNameList()
{
    std::string out;
    for (Technique t : kAllTechniques) {
        if (!out.empty())
            out += ", ";
        out += techniqueName(t);
    }
    return out;
}

Technique
parseTechnique(const std::string &name)
{
    if (const auto t = tryParseTechnique(name))
        return *t;
    fatal("parseTechnique: unknown technique '" + name +
          "' (valid: " + techniqueNameList() + ")");
}

SimConfig
SimConfig::baseline(Technique t)
{
    SimConfig c;
    c.technique = t;
    // Technique-specific knobs (imp's prefetcher, the Figure 8 DVR
    // feature strips) live with the technique in the registry; the
    // same hooks run again in Simulator::runOn, so a config that only
    // had its `technique` field stamped behaves identically.
    const TechniqueInfo *info =
        TechniqueRegistry::instance().find(techniqueName(t));
    if (info && info->prepare)
        info->prepare(c);
    return c;
}

SimConfig
SimConfig::baseline(const std::string &technique)
{
    return baseline(parseTechnique(technique));
}

uint64_t
SimConfig::defaultMaxInstructions()
{
    return env::maxInstructions().value_or(500'000);
}

unsigned
SimConfig::defaultScaleShift()
{
    return env::scaleShift().value_or(0);
}

} // namespace dvr
