#include "sim/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace dvr {

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::kBase: return "base";
      case Technique::kPre: return "pre";
      case Technique::kImp: return "imp";
      case Technique::kVr: return "vr";
      case Technique::kDvr: return "dvr";
      case Technique::kDvrOffload: return "dvr-offload";
      case Technique::kDvrDiscovery: return "dvr-discovery";
      case Technique::kOracle: return "oracle";
    }
    return "?";
}

Technique
parseTechnique(const std::string &name)
{
    for (Technique t :
         {Technique::kBase, Technique::kPre, Technique::kImp,
          Technique::kVr, Technique::kDvr, Technique::kDvrOffload,
          Technique::kDvrDiscovery, Technique::kOracle}) {
        if (name == techniqueName(t))
            return t;
    }
    fatal("parseTechnique: unknown technique '" + name + "'");
}

SimConfig
SimConfig::baseline(Technique t)
{
    SimConfig c;
    c.technique = t;
    if (t == Technique::kImp)
        c.mem.impPrefetcher = true;
    if (t == Technique::kDvrOffload) {
        c.dvr.discoveryEnabled = false;
        c.dvr.nestedEnabled = false;
        // "Offload" is Vector Runahead moved onto the subthread:
        // first-lane control flow with lane invalidation; the GPU
        // reconvergence stack arrives with the full DVR feature set.
        c.dvr.subthread.gpuReconvergence = false;
    } else if (t == Technique::kDvrDiscovery) {
        c.dvr.nestedEnabled = false;
    }
    return c;
}

uint64_t
SimConfig::defaultMaxInstructions()
{
    if (const char *e = std::getenv("DVR_INSTS")) {
        const uint64_t v = std::strtoull(e, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 500'000;
}

unsigned
SimConfig::defaultScaleShift()
{
    if (const char *e = std::getenv("DVR_SCALE_SHIFT"))
        return unsigned(std::strtoul(e, nullptr, 10));
    return 0;
}

} // namespace dvr
