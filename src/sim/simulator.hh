/**
 * @file
 * Simulator facade: builds (or reuses) a workload, wires the selected
 * runahead technique onto the core, runs, verifies against the golden
 * model when the program completed, and collects every statistic the
 * evaluation figures need.
 */

#ifndef DVR_SIM_SIMULATOR_HH
#define DVR_SIM_SIMULATOR_HH

#include <string>

#include "common/stats.hh"
#include "core/ooo_core.hh"
#include "mem/sim_memory.hh"
#include "sim/config.hh"
#include "workloads/registry.hh"

namespace dvr {

struct Checkpoint;

struct SimResult
{
    CoreStats core;
    /** All component stats, prefixed (mem., dvr., vr., pre., ...). */
    StatSet stats;
    bool halted = false;
    /** Golden-model check; only meaningful when halted. */
    bool verified = false;

    double ipc() const { return core.ipc(); }
    /** MSHR occupancy per cycle averaged over the run (Figure 9). */
    double mshrOccupancy() const
    {
        return stats.get("mem.mshr_occupancy");
    }
    /** Demand LLC misses per kilo-instruction (Table 2). */
    double llcMpki() const
    {
        return core.instructions == 0
                   ? 0.0
                   : 1000.0 * stats.get("mem.llc_misses") /
                         double(core.instructions);
    }
};

class Simulator
{
  public:
    /** Build the named workload into fresh memory and run it. */
    static SimResult run(const SimConfig &cfg,
                         const std::string &workload,
                         const WorkloadParams &wp);

    /**
     * Run on a pre-built workload; `pristine` is copied (a CoW
     * page-table share) so the same data set can be reused across
     * techniques. With cfg.warmup.insts > 0 a throwaway checkpoint is
     * fast-forwarded first; sweeps that want to amortize the warmup
     * go through PreparedWorkload, which caches the checkpoint.
     */
    static SimResult runOn(const SimConfig &cfg, const Workload &w,
                           const SimMemory &pristine);

    /**
     * Run on a pre-built workload from a checkpointed architectural
     * state. The timed run copies ckpt.memory (CoW), restores
     * registers and PC, and still gets cfg.maxInstructions of budget.
     */
    static SimResult runOn(const SimConfig &cfg, const Workload &w,
                           const Checkpoint &ckpt);
};

} // namespace dvr

#endif // DVR_SIM_SIMULATOR_HH
