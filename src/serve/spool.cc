#include "serve/spool.hh"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hh"

namespace fs = std::filesystem;

namespace dvr {
namespace serve {

Spool::Spool(std::string root) : root_(std::move(root))
{
}

bool
Spool::init() const
{
    std::error_code ec;
    for (const std::string &d :
         {queueDir(), runningDir(), doneDir(), failedDir(),
          journalDir(), cacheDir(), tmpDir()}) {
        fs::create_directories(d, ec);
        if (ec) {
            warn("spool: cannot create " + d + ": " + ec.message());
            return false;
        }
    }
    return true;
}

std::string
Spool::jobPath(const std::string &dir, const std::string &name) const
{
    return dir + "/" + name + ".json";
}

std::string
Spool::submit(const std::string &name,
              const std::string &jobText) const
{
    for (const std::string &dir : {queueDir(), runningDir()}) {
        if (fs::exists(jobPath(dir, name))) {
            warn("spool: job \"" + name + "\" already in " + dir);
            return "";
        }
    }
    const std::string dst = jobPath(queueDir(), name);
    if (!writeAtomic(dst, jobText))
        return "";
    return dst;
}

std::vector<std::string>
Spool::list(const std::string &dir) const
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string file = entry.path().filename().string();
        if (file.size() > 5 &&
            file.compare(file.size() - 5, 5, ".json") == 0)
            names.push_back(file.substr(0, file.size() - 5));
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
Spool::claim(const std::string &name) const
{
    // rename(2) is atomic within a filesystem: exactly one claimer
    // can win, and a crash leaves the job in precisely one directory.
    return std::rename(jobPath(queueDir(), name).c_str(),
                       jobPath(runningDir(), name).c_str()) == 0;
}

bool
Spool::finish(const std::string &name, bool ok) const
{
    const std::string dst =
        jobPath(ok ? doneDir() : failedDir(), name);
    if (std::rename(jobPath(runningDir(), name).c_str(),
                    dst.c_str()) != 0) {
        warn("spool: cannot move job \"" + name + "\" to " + dst +
             ": " + std::strerror(errno));
        return false;
    }
    return true;
}

bool
Spool::writeAtomic(const std::string &path,
                   const std::string &text) const
{
    // Stage under tmp/ with the writer's pid in the name: two worker
    // processes storing the same cache key must not share a staging
    // file, or truncate-while-writing could tear it.
    const std::string stage =
        tmpDir() + "/" + fs::path(path).filename().string() + "." +
        std::to_string(::getpid()) + ".tmp";
    {
        std::ofstream out(stage, std::ios::trunc);
        out << text;
        out.flush();
        if (!out) {
            warn("spool: cannot write " + stage);
            return false;
        }
    }
    if (std::rename(stage.c_str(), path.c_str()) != 0) {
        warn("spool: cannot rename " + stage + " -> " + path + ": " +
             std::strerror(errno));
        std::remove(stage.c_str());
        return false;
    }
    return true;
}

bool
Spool::readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
Spool::drainRequested() const
{
    return fs::exists(root_ + "/drain");
}

void
Spool::requestDrain() const
{
    std::ofstream(root_ + "/drain") << "drain\n";
}

std::string
Spool::jobNameOf(const std::string &path)
{
    std::string name = fs::path(path).filename().string();
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0)
        name.resize(name.size() - 5);
    return name;
}

} // namespace serve
} // namespace dvr
