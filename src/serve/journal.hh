/**
 * @file
 * Append-only run journal: the crash-safety backbone of dvr_serve.
 *
 * A job's journal is the journal-append manifest variant described in
 * sim/manifest.hh: line 1 is a complete manifest object with
 * "runs": [], and every later line is one of
 *
 *     {"point": N, "label": "...", "key": "...",
 *      "t": S, "stats": {...}}                               a run
 *     {"event": "resume", "prior_wall_seconds": S}           restart
 *     {"event": "retry", "point": N, "attempt": K}           respawn
 *
 * "key" is the point's cache-key digest (ResultCache::keyDigest):
 * the daemon compares it (and the label) against the job as resolved
 * at resume time, so a journal left by an edited job re-submitted
 * under the same name, or by a different simulator build (the git
 * sha is part of the key), is discarded instead of serving stale
 * runs.
 *
 * The daemon appends a run line the moment a point's result is known
 * and fsync-free appends are the only writes, so a `kill -9` can at
 * worst tear the final line — which load() detects and drops. On
 * restart, journaled points are never re-executed: the journal is
 * loaded, a "resume" event (carrying the dead segment's wall-clock
 * estimate, the largest "t" seen since the previous resume) is
 * appended, and only the missing points run.
 *
 * The final MANIFEST_<job>.json is rendered from the journal's run
 * lines ordered by point index, re-emitting each stats object
 * verbatim — so an interrupted-and-resumed sweep produces the same
 * manifest bytes as an uninterrupted one (modulo wall/host fields).
 */

#ifndef DVR_SERVE_JOURNAL_HH
#define DVR_SERVE_JOURNAL_HH

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace dvr {
namespace serve {

struct JournalRun
{
    size_t point = 0;
    std::string label;
    /** Cache-key digest of the point (empty in pre-digest journals). */
    std::string key;
    /** The run's stats object, verbatim from the journal line. */
    std::string statsJson;
    /** Seconds into its segment when the run was journaled. */
    double t = 0.0;
};

class Journal
{
  public:
    explicit Journal(std::string path);

    const std::string &path() const { return path_; }
    bool exists() const;

    /**
     * Parse the journal from disk. A torn (unparseable) tail line is
     * dropped with a warning; any earlier damage fails the replay.
     */
    bool replay();

    /**
     * Truncate to a fresh journal (discarding any replayed state) and
     * write the header line.
     */
    bool start(const std::string &headerLine);

    bool appendRun(size_t point, const std::string &label,
                   const std::string &key,
                   const std::string &statsJson, double t);
    /** Append a `{"event": ...}` line (rendered by the caller). */
    bool appendEvent(const std::string &eventJson);

    const std::vector<JournalRun> &runs() const { return runs_; }
    bool hasPoint(size_t point) const { return points_.count(point); }
    size_t runCount() const { return runs_.size(); }

    /** Wall-clock of segments closed by "resume" events, in order. */
    const std::vector<double> &priorSegments() const
    {
        return priorSegments_;
    }

    /**
     * Largest run "t" since the last resume event: the best available
     * estimate of how long a killed segment ran before dying.
     */
    double tailSegmentSeconds() const { return tailSeconds_; }

  private:
    bool append(const std::string &line);

    std::string path_;
    std::vector<JournalRun> runs_;
    std::set<size_t> points_;
    std::vector<double> priorSegments_;
    double tailSeconds_ = 0.0;
};

} // namespace serve
} // namespace dvr

#endif // DVR_SERVE_JOURNAL_HH
