#include "serve/result_cache.hh"

#include <cstdio>

#include "serve/json.hh"
#include "serve/spool.hh"
#include "sim/manifest.hh"

namespace dvr {
namespace serve {

ResultCache::ResultCache(const Spool &spool) : spool_(spool)
{
}

std::string
ResultCache::makeKey(const std::string &configJson,
                     const std::string &workload,
                     const std::string &input, unsigned scaleShift,
                     const std::string &gitSha)
{
    // '|' cannot appear in the minified config dump's structure or in
    // workload names, so the fields cannot alias each other.
    return minifyJson(configJson) + "|" + workload + "|" + input +
           "|" + std::to_string(scaleShift) + "|" + gitSha;
}

uint64_t
ResultCache::fnv1a64(const std::string &s)
{
    uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
ResultCache::keyDigest(const std::string &key)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return hex;
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return spool_.cacheDir() + "/" + keyDigest(key) + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &key) const
{
    std::string text;
    if (!Spool::readFile(entryPath(key), text))
        return std::nullopt;
    JsonValue entry;
    if (!parseJson(text, entry) || !entry.isObject())
        return std::nullopt;   // torn or foreign file: treat as miss
    if (entry.getString("key") != key)
        return std::nullopt;   // hash collision: correctness first
    const JsonValue *stats = entry.find("stats");
    if (!stats || !stats->isObject())
        return std::nullopt;
    return stats->raw;
}

bool
ResultCache::store(const std::string &key,
                   const std::string &statsJson) const
{
    const std::string entry = "{\"key\": " + jsonQuote(key) +
                              ", \"stats\": " +
                              minifyJson(statsJson) + "}\n";
    return spool_.writeAtomic(entryPath(key), entry);
}

} // namespace serve
} // namespace dvr
