#include "serve/daemon.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/log.hh"
#include "serve/journal.hh"
#include "serve/json.hh"
#include "sim/config_schema.hh"
#include "sim/experiment.hh"
#include "sim/manifest.hh"

namespace dvr {
namespace serve {

namespace {

// dvr-lint: allow(wall-clock) daemon scheduling/wall accounting only; never feeds simulated state
using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

std::string
fixed3(double v)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << v;
    return os.str();
}

/** Parse a {"key": "value", ...} object into ordered string pairs. */
bool
stringPairs(const JsonValue &obj,
            std::vector<std::pair<std::string, std::string>> &out,
            std::string *err)
{
    for (const auto &[key, val] : obj.members) {
        if (val.kind != JsonValue::Kind::kString) {
            if (err)
                *err = "value of \"" + key +
                       "\" must be a string (schema values are "
                       "applied like --set " +
                       key + "=value)";
            return false;
        }
        out.emplace_back(key, val.str);
    }
    return true;
}

/**
 * Strip serve.* keys from a flat config dump and minify: the
 * canonical config half of a cache key.
 */
std::string
canonicalConfigForKey(const std::string &configJson)
{
    JsonValue dump;
    if (!parseJson(configJson, dump) || !dump.isObject())
        return minifyJson(configJson);
    std::string out = "{";
    bool first = true;
    for (const auto &[key, val] : dump.members) {
        if (key.rfind("serve.", 0) == 0)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += jsonQuote(key) + ":" + minifyJson(val.raw);
    }
    return out + "}";
}

} // namespace

void
ServeCounters::merge(const ServeCounters &o)
{
    pointsTotal += o.pointsTotal;
    pointsRun += o.pointsRun;
    pointsDeduped += o.pointsDeduped;
    cacheHits += o.cacheHits;
    cacheMisses += o.cacheMisses;
    journalResumed += o.journalResumed;
    retries += o.retries;
}

std::string
ServeCounters::toJson(int indent) const
{
    const std::string pad(size_t(indent), ' ');
    const std::string in = pad + "  ";
    std::ostringstream os;
    os << "{\n"
       << in << "\"points_total\": " << pointsTotal << ",\n"
       << in << "\"points_run\": " << pointsRun << ",\n"
       << in << "\"points_deduped\": " << pointsDeduped << ",\n"
       << in << "\"cache_hits\": " << cacheHits << ",\n"
       << in << "\"cache_misses\": " << cacheMisses << ",\n"
       << in << "\"journal_resumed\": " << journalResumed << ",\n"
       << in << "\"retries\": " << retries << "\n"
       << pad << "}";
    return os.str();
}

bool
JobSpec::parse(const std::string &name, const std::string &text,
               JobSpec &out, std::string *err)
{
    out = JobSpec();
    out.name = name;
    JsonValue root;
    std::string jerr;
    if (!parseJson(text, root, &jerr) || !root.isObject()) {
        if (err)
            *err = jerr.empty() ? "job is not a JSON object" : jerr;
        return false;
    }
    const std::string workload = root.getString("workload");
    const std::string input = root.getString("input");
    out.scaleShift = unsigned(root.getNumber(
        "scale_shift", double(SimConfig::defaultScaleShift())));
    if (const JsonValue *config = root.find("config")) {
        if (!config->isObject() ||
            !stringPairs(*config, out.config, err))
            return false;
    }
    const JsonValue *points = root.find("points");
    if (!points || !points->isArray() || points->items.empty()) {
        if (err)
            *err = "job needs a non-empty \"points\" array";
        return false;
    }
    std::vector<std::string> labels;
    for (const JsonValue &p : points->items) {
        if (!p.isObject()) {
            if (err)
                *err = "each point must be an object";
            return false;
        }
        JobPoint point;
        point.label = p.getString("label");
        point.workload = p.getString("workload", workload);
        point.input = p.getString("input", input);
        if (point.label.empty() || point.workload.empty()) {
            if (err)
                *err = "each point needs a \"label\" and a workload "
                       "(its own or the job default)";
            return false;
        }
        if (const JsonValue *sets = p.find("set")) {
            if (!sets->isObject() ||
                !stringPairs(*sets, point.sets, err))
                return false;
        }
        labels.push_back(point.label);
        out.points.push_back(std::move(point));
    }
    std::sort(labels.begin(), labels.end());
    const auto dup = std::adjacent_find(labels.begin(), labels.end());
    if (dup != labels.end()) {
        // Labels become manifest run labels; a duplicate would make
        // the final sweep ambiguous and break resume bookkeeping.
        if (err)
            *err = "duplicate point label \"" + *dup + "\"";
        return false;
    }
    return true;
}

std::string
JobSpec::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"job\": " << jsonQuote(name) << ",\n"
       << "  \"scale_shift\": " << scaleShift << ",\n"
       << "  \"config\": {";
    for (size_t i = 0; i < config.size(); ++i) {
        os << (i ? ", " : "") << jsonQuote(config[i].first) << ": "
           << jsonQuote(config[i].second);
    }
    os << "},\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const JobPoint &p = points[i];
        os << "    {\"label\": " << jsonQuote(p.label)
           << ", \"workload\": " << jsonQuote(p.workload)
           << ", \"input\": " << jsonQuote(p.input) << ", \"set\": {";
        for (size_t j = 0; j < p.sets.size(); ++j) {
            os << (j ? ", " : "") << jsonQuote(p.sets[j].first)
               << ": " << jsonQuote(p.sets[j].second);
        }
        os << "}}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

SimConfig
JobSpec::baseConfig() const
{
    SimConfig cfg = SimConfig::baseline("base");
    const ConfigSchema &schema = ConfigSchema::instance();
    for (const auto &[key, value] : config)
        schema.set(cfg, key, value);
    return cfg;
}

SimConfig
JobSpec::pointConfig(size_t i) const
{
    SimConfig cfg = baseConfig();
    const ConfigSchema &schema = ConfigSchema::instance();
    for (const auto &[key, value] : points.at(i).sets)
        schema.set(cfg, key, value);
    return cfg;
}

std::string
JobSpec::pointKey(size_t i) const
{
    const JobPoint &p = points.at(i);
    const std::string dump =
        ConfigSchema::instance().toJson(pointConfig(i));
    return ResultCache::makeKey(canonicalConfigForKey(dump),
                                p.workload, p.input, scaleShift,
                                RunManifest::gitSha());
}

Daemon::Daemon(Options opt)
    : opt_(std::move(opt)), spool_(opt_.spoolRoot), cache_(spool_)
{
    if (opt_.serve.maxAttempts == 0)
        opt_.serve.maxAttempts = 1;
}

bool
Daemon::init() const
{
    return spool_.init();
}

unsigned
Daemon::workerCount(size_t pts) const
{
    unsigned n = opt_.serve.workers;
    if (n == 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    return unsigned(std::min<size_t>(n, std::max<size_t>(pts, 1)));
}

int
Daemon::runOnce()
{
    int failed = 0;
    // Adopt jobs a killed daemon left in running/ before taking new
    // work: their journals make resumption cheap and exactly-once.
    for (const std::string &name : spool_.list(spool_.runningDir()))
        failed += processJob(name) != 0;
    for (;;) {
        const std::vector<std::string> queued =
            spool_.list(spool_.queueDir());
        if (queued.empty())
            break;
        for (const std::string &name : queued) {
            if (!spool_.claim(name))
                continue;   // raced with another daemon
            failed += processJob(name) != 0;
        }
    }
    return failed;
}

int
Daemon::serveLoop()
{
    int failed = 0;
    for (;;) {
        failed += runOnce();
        if (spool_.drainRequested() &&
            spool_.list(spool_.queueDir()).empty() &&
            spool_.list(spool_.runningDir()).empty())
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max(1u, opt_.serve.pollMs)));
    }
    return failed;
}

int
Daemon::processJob(const std::string &name)
{
    const std::string jobPath =
        spool_.jobPath(spool_.runningDir(), name);

    // Mutual exclusion between daemons sharing one spool: claim()'s
    // rename makes queue/ -> running/ atomic, but running/ jobs are
    // adoptable by every daemon. flock(2) on the job file — held for
    // the whole job and released by the kernel on any process death,
    // kill -9 included — makes the processor unique without leaving
    // stale lock files behind.
    const int lockFd = ::open(jobPath.c_str(), O_RDONLY | O_CLOEXEC);
    if (lockFd < 0)
        return 0;   // vanished: another daemon already finished it
    if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) {
        ::close(lockFd);
        return 0;   // another daemon is processing this job
    }
    // Finishers rename the job out of running/ before unlocking, so
    // if the path is gone now the job completed under a lock we only
    // acquired after its owner was done with it.
    std::error_code ec;
    if (!std::filesystem::exists(jobPath, ec)) {
        ::close(lockFd);
        return 0;
    }

    last_ = ServeCounters();
    lastPrior_.clear();

    std::string text;
    std::string failReason;
    JobSpec job;
    bool ok = Spool::readFile(jobPath, text);
    if (!ok)
        failReason = "cannot read job file";
    if (ok && !JobSpec::parse(name, text, job, &failReason))
        ok = false;
    if (ok)
        ok = runJob(job, jobPath, last_, lastPrior_, failReason);

    totals_.merge(last_);
    const std::string counters =
        "{\n  \"job\": " + jsonQuote(name) + ",\n  \"serve\": " +
        last_.toJson(2) + ",\n  \"failed\": " +
        (ok ? "false" : "true") +
        (failReason.empty()
             ? std::string()
             : ",\n  \"reason\": " + jsonQuote(failReason)) +
        "\n}\n";
    spool_.writeAtomic(
        (ok ? spool_.doneDir() : spool_.failedDir()) + "/" + name +
            ".serve.json",
        counters);
    spool_.finish(name, ok);
    ::close(lockFd);
    if (!ok)
        warn("serve: job \"" + name + "\" failed: " + failReason);
    return ok ? 0 : 1;
}

bool
Daemon::runJob(const JobSpec &job, const std::string &jobPath,
               ServeCounters &c, std::vector<double> &priorSegments,
               std::string &failReason)
{
    const SteadyClock::time_point segStart = SteadyClock::now();
    c.pointsTotal = job.points.size();

    std::string configDump;
    std::vector<std::string> keys(job.points.size());
    std::vector<std::string> digests(job.points.size());
    try {
        configDump = ConfigSchema::instance().toJson(job.baseConfig());
        for (size_t i = 0; i < job.points.size(); ++i) {
            keys[i] = job.pointKey(i);
            digests[i] = ResultCache::keyDigest(keys[i]);
        }
    } catch (const std::exception &e) {
        failReason = e.what();
        return false;
    }

    Journal journal(spool_.journalDir() + "/" + job.name +
                    ".manifest.json");
    RunManifest header(job.name);
    header.setConfigJson(configDump);
    if (journal.exists()) {
        if (!journal.replay()) {
            failReason = "corrupt journal " + journal.path();
            return false;
        }
        // A journaled run is only adoptable if it matches the job as
        // resolved *now*: same label and same cache-key digest
        // (config dump, workload, input, scale, git sha) for its
        // point index. An edited job re-submitted under the same
        // name, or a journal written by a different simulator build,
        // fails this — the journal restarts from scratch instead of
        // serving stale results.
        bool stale = false;
        for (const JournalRun &run : journal.runs()) {
            if (run.point >= job.points.size() ||
                run.label != job.points[run.point].label ||
                run.key != digests[run.point]) {
                stale = true;
                break;
            }
        }
        if (stale) {
            warn("serve: journal " + journal.path() +
                 " does not match the current job/binary; "
                 "restarting it");
            if (!journal.start(header.toJournalHeaderLine())) {
                failReason = "cannot start journal " + journal.path();
                return false;
            }
        } else {
            c.journalResumed = journal.runCount();
            priorSegments = journal.priorSegments();
            const double tail = journal.tailSegmentSeconds();
            priorSegments.push_back(tail);
            journal.appendEvent(
                "{\"event\": \"resume\", \"prior_wall_seconds\": " +
                fixed3(tail) + "}");
        }
    } else if (!journal.start(header.toJournalHeaderLine())) {
        failReason = "cannot start journal " + journal.path();
        return false;
    }

    // First pass: dedup against the cache. Identical points (same
    // canonical key) and re-submitted sweeps complete here without
    // running anything.
    std::vector<size_t> remain;
    for (size_t i = 0; i < job.points.size(); ++i) {
        if (journal.hasPoint(i))
            continue;
        if (const auto hit = cache_.lookup(keys[i])) {
            if (!journal.appendRun(i, job.points[i].label, digests[i],
                                   *hit, secondsSince(segStart))) {
                failReason =
                    "cannot append to journal " + journal.path();
                return false;
            }
            ++c.cacheHits;
        } else {
            remain.push_back(i);
        }
    }
    c.cacheMisses = remain.size();

    bool journalOk = true;
    for (unsigned attempt = 1; !remain.empty(); ++attempt) {
        // Identical points (same canonical key) execute once: only
        // one representative per key runs, and the duplicates are
        // served from its cache entry by the adopt pass.
        std::vector<size_t> reps;
        std::set<std::string> seenKeys;
        for (size_t i : remain)
            if (seenKeys.insert(keys[i]).second)
                reps.push_back(i);
        const std::set<size_t> ran(reps.begin(), reps.end());

        // Journal each point the moment its result reaches the cache
        // — NOT after the whole attempt — so a kill -9 mid-attempt
        // loses at most the points actually in flight.
        auto adopt = [&] {
            std::vector<size_t> still;
            for (size_t i : remain) {
                const auto hit = cache_.lookup(keys[i]);
                if (!hit) {
                    still.push_back(i);
                    continue;
                }
                // A failed journal append keeps the point pending:
                // finishing the job without its run line would drop
                // the run from the final manifest silently.
                if (journal.appendRun(i, job.points[i].label,
                                      digests[i], *hit,
                                      secondsSince(segStart))) {
                    ++(ran.count(i) ? c.pointsRun : c.pointsDeduped);
                } else {
                    journalOk = false;
                    still.push_back(i);
                }
            }
            remain = std::move(still);
        };
        const auto tick = std::chrono::milliseconds(50);

        if (opt_.inProcess) {
            std::mutex doneMutex;
            bool done = false;
            std::thread pool([&] {
                runPointsInProcess(job, reps);
                std::lock_guard<std::mutex> lock(doneMutex);
                done = true;
            });
            for (;;) {
                adopt();
                {
                    std::lock_guard<std::mutex> lock(doneMutex);
                    if (done)
                        break;
                }
                std::this_thread::sleep_for(tick);
            }
            pool.join();
        } else {
            std::vector<pid_t> pids =
                spawnWorkers(job, jobPath, reps);
            while (!pids.empty()) {
                adopt();
                std::vector<pid_t> alive;
                for (const pid_t pid : pids) {
                    int status = 0;
                    if (::waitpid(pid, &status, WNOHANG) == 0)
                        alive.push_back(pid);
                    // Exit status is advisory only: the adopt pass
                    // decides what actually completed.
                }
                pids = std::move(alive);
                if (!pids.empty())
                    std::this_thread::sleep_for(tick);
            }
        }
        adopt();
        if (!journalOk) {
            // The journal is the job's source of truth; a broken one
            // (disk full, unwritable spool) is fatal, not retryable.
            failReason = "cannot append to journal " + journal.path();
            return false;
        }
        if (remain.empty())
            break;
        if (attempt >= opt_.serve.maxAttempts) {
            failReason = std::to_string(remain.size()) +
                         " point(s) still missing after " +
                         std::to_string(attempt) + " attempt(s)";
            return false;
        }
        c.retries += remain.size();
        for (size_t i : remain) {
            journal.appendEvent(
                "{\"event\": \"retry\", \"point\": " +
                std::to_string(i) + ", \"attempt\": " +
                std::to_string(attempt + 1) + "}");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            uint64_t(opt_.serve.backoffMs) << (attempt - 1)));
    }

    // Finalize: the manifest is rendered from the journal (stats
    // verbatim, ordered by point index), so an interrupted-and-
    // resumed job emits the same bytes as an uninterrupted one
    // modulo the wall_seconds/wall_segments/host fields.
    RunManifest manifest(job.name);
    manifest.setConfigJson(configDump);
    std::vector<JournalRun> runs = journal.runs();
    std::sort(runs.begin(), runs.end(),
              [](const JournalRun &a, const JournalRun &b) {
                  return a.point < b.point;
              });
    for (const JournalRun &run : runs)
        manifest.addRunJson(run.label, run.statsJson);
    for (double s : priorSegments)
        manifest.addWallSegment(s);
    manifest.addWallSegment(secondsSince(segStart));
    if (manifest.write(spool_.doneDir()).empty()) {
        failReason = "cannot write final manifest";
        return false;
    }
    return true;
}

void
Daemon::runPointsInProcess(const JobSpec &job,
                           const std::vector<size_t> &pts) const
{
    // Build each distinct (workload, input) image once, up front, so
    // the worker threads share read-only PreparedWorkloads exactly
    // like Runner jobs do.
    std::map<std::string, std::unique_ptr<PreparedWorkload>> prepared;
    const SimConfig base = [&] {
        try {
            return job.baseConfig();
        } catch (const std::exception &) {
            return SimConfig::baseline("base");
        }
    }();
    for (size_t i : pts) {
        const JobPoint &p = job.points[i];
        const std::string id = p.workload + "\n" + p.input;
        if (prepared.count(id))
            continue;
        try {
            WorkloadParams wp;
            wp.scaleShift = job.scaleShift;
            prepared.emplace(id, std::make_unique<PreparedWorkload>(
                                     p.workload, p.input, wp,
                                     base.memoryBytes));
        } catch (const std::exception &e) {
            warn("serve: cannot prepare workload \"" + p.workload +
                 "\": " + e.what());
        }
    }

    std::mutex nextMutex;
    size_t next = 0;
    auto work = [&] {
        for (;;) {
            size_t slot;
            {
                std::lock_guard<std::mutex> lock(nextMutex);
                if (next >= pts.size())
                    return;
                slot = next++;
            }
            const size_t i = pts[slot];
            const JobPoint &p = job.points[i];
            const auto it = prepared.find(p.workload + "\n" + p.input);
            if (it == prepared.end())
                continue;   // preparation failed; point stays missing
            try {
                const SimConfig cfg = job.pointConfig(i);
                const SimResult r = it->second->run(cfg);
                cache_.store(job.pointKey(i), r.stats.toJson());
            } catch (const std::exception &e) {
                warn("serve: point \"" + p.label +
                     "\" failed: " + e.what());
            }
        }
    };
    std::vector<std::thread> threads;
    const unsigned n = workerCount(pts.size());
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back(work);
    for (std::thread &t : threads)
        t.join();
}

std::vector<pid_t>
Daemon::spawnWorkers(const JobSpec &job, const std::string &jobPath,
                     const std::vector<size_t> &pts) const
{
    (void)job;
    const unsigned n = workerCount(pts.size());
    // Round-robin sharding: contiguous label runs usually share a
    // workload image, so striping spreads preparation cost evenly.
    std::vector<std::string> shards(n);
    for (size_t s = 0; s < pts.size(); ++s) {
        std::string &csv = shards[s % n];
        if (!csv.empty())
            csv += ",";
        csv += std::to_string(pts[s]);
    }
    const std::string exe =
        opt_.workerExe.empty() ? "/proc/self/exe" : opt_.workerExe;

    std::vector<pid_t> pids;
    for (const std::string &csv : shards) {
        if (csv.empty())
            continue;
        const pid_t pid = ::fork();
        if (pid < 0) {
            warn("serve: fork failed; points retried next attempt");
            continue;
        }
        if (pid == 0) {
            ::execl(exe.c_str(), "dvr_serve", "--worker", "--spool",
                    spool_.root().c_str(), "--job", jobPath.c_str(),
                    "--points", csv.c_str(),
                    static_cast<char *>(nullptr));
            _exit(127);   // exec failed; parent sees a crashed worker
        }
        pids.push_back(pid);
    }
    return pids;
}

int
Daemon::workerMain(const std::string &spoolRoot,
                   const std::string &jobPath,
                   const std::string &pointsCsv)
{
    Spool spool(spoolRoot);
    ResultCache cache(spool);
    std::string text;
    if (!Spool::readFile(jobPath, text)) {
        warn("worker: cannot read " + jobPath);
        return 0;
    }
    JobSpec job;
    std::string err;
    if (!JobSpec::parse(Spool::jobNameOf(jobPath), text, job, &err)) {
        warn("worker: bad job: " + err);
        return 0;
    }

    std::vector<size_t> pts;
    std::istringstream csv(pointsCsv);
    std::string tok;
    while (std::getline(csv, tok, ',')) {
        if (tok.empty())
            continue;
        // Malformed tokens are skipped, not thrown on: a worker must
        // always reach its graceful advisory exit. 18 digits bounds
        // the value below stoull's overflow throw.
        if (tok.size() > 18 ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
            warn("worker: ignoring bad --points token \"" + tok +
                 "\"");
            continue;
        }
        pts.push_back(size_t(std::stoull(tok)));
    }

    // One process, sequential points: process-level parallelism comes
    // from the daemon's sharding, so each worker stays single-
    // threaded and deterministic.
    std::map<std::string, std::unique_ptr<PreparedWorkload>> prepared;
    for (size_t i : pts) {
        if (i >= job.points.size())
            continue;
        const JobPoint &p = job.points[i];
        try {
            const std::string key = job.pointKey(i);
            if (cache.lookup(key))
                continue;   // another worker/attempt got here first
            const std::string id = p.workload + "\n" + p.input;
            auto it = prepared.find(id);
            if (it == prepared.end()) {
                WorkloadParams wp;
                wp.scaleShift = job.scaleShift;
                it = prepared
                         .emplace(id,
                                  std::make_unique<PreparedWorkload>(
                                      p.workload, p.input, wp,
                                      job.baseConfig().memoryBytes))
                         .first;
            }
            const SimConfig cfg = job.pointConfig(i);
            const SimResult r = it->second->run(cfg);
            cache.store(key, r.stats.toJson());
        } catch (const std::exception &e) {
            warn("worker: point \"" + p.label +
                 "\" failed: " + e.what());
        }
    }
    return 0;
}

} // namespace serve
} // namespace dvr
