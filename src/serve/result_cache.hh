/**
 * @file
 * Content-addressed result cache for sweep points.
 *
 * A point's identity is its canonical key: the fully resolved
 * configuration dump (ConfigSchema::toJson, minified — the schema
 * emits keys in a fixed order, so equal configs render identically),
 * the workload kernel and input, the data-set scale shift, and the
 * git revision of the simulator binary. Two points with the same key
 * are the same deterministic simulation, whatever their labels, so
 * one cached result serves both — that is what dedupes a re-submitted
 * sweep (and the fig02 base-350 point against its own reference run).
 *
 * Entries are one-line JSON files named by the FNV-1a 64-bit hash of
 * the key, written atomically (tmp + rename). The full key is stored
 * in the entry and compared on lookup, so a hash collision degrades
 * to a miss, never to a wrong result.
 */

#ifndef DVR_SERVE_RESULT_CACHE_HH
#define DVR_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace dvr {
namespace serve {

class Spool;

class ResultCache
{
  public:
    /** `spool` must outlive the cache; entries live in its cache/. */
    explicit ResultCache(const Spool &spool);

    /**
     * The canonical point key. `configJson` must be the resolved
     * schema dump of the point's full SimConfig.
     */
    static std::string makeKey(const std::string &configJson,
                               const std::string &workload,
                               const std::string &input,
                               unsigned scaleShift,
                               const std::string &gitSha);

    /**
     * The stored stats JSON for `key`, or nullopt on miss (absent
     * entry, unreadable entry, or stored-key mismatch = collision).
     */
    std::optional<std::string> lookup(const std::string &key) const;

    /** Store a point's stats JSON under `key`; false on I/O failure. */
    bool store(const std::string &key,
               const std::string &statsJson) const;

    /** FNV-1a 64-bit (the entry file name is the hex digest). */
    static uint64_t fnv1a64(const std::string &s);

    /**
     * The 16-hex-digit fnv1a64 digest of a key: the entry file's
     * basename, and the per-run identity the journal records so a
     * resumed job can prove its journaled runs match the job (and
     * binary) as resolved now.
     */
    static std::string keyDigest(const std::string &key);

  private:
    std::string entryPath(const std::string &key) const;

    const Spool &spool_;
};

} // namespace serve
} // namespace dvr

#endif // DVR_SERVE_RESULT_CACHE_HH
