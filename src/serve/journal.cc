#include "serve/journal.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "serve/json.hh"
#include "sim/manifest.hh"

namespace dvr {
namespace serve {

Journal::Journal(std::string path) : path_(std::move(path))
{
}

bool
Journal::exists() const
{
    std::error_code ec;
    return std::filesystem::exists(path_, ec);
}

bool
Journal::replay()
{
    runs_.clear();
    points_.clear();
    priorSegments_.clear();
    tailSeconds_ = 0.0;

    std::ifstream in(path_);
    if (!in) {
        warn("journal: cannot read " + path_);
        return false;
    }
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, &err) || !v.isObject()) {
            // Only the final line can legitimately be damaged (a
            // crash mid-append); anything earlier is corruption.
            if (in.peek() == std::ifstream::traits_type::eof()) {
                warn("journal: dropping torn tail line " +
                     std::to_string(lineNo) + " of " + path_);
                break;
            }
            warn("journal: " + path_ + " line " +
                 std::to_string(lineNo) + ": " + err);
            return false;
        }
        if (lineNo == 1)
            continue;   // the manifest header
        if (const JsonValue *event = v.find("event")) {
            if (event->str == "resume") {
                priorSegments_.push_back(
                    v.getNumber("prior_wall_seconds", tailSeconds_));
                tailSeconds_ = 0.0;
            }
            continue;   // retry and future events carry no runs
        }
        JournalRun run;
        run.point = size_t(v.getNumber("point", 0.0));
        run.label = v.getString("label");
        run.key = v.getString("key");
        run.t = v.getNumber("t", 0.0);
        const JsonValue *stats = v.find("stats");
        if (run.label.empty() || !stats || !stats->isObject()) {
            warn("journal: " + path_ + " line " +
                 std::to_string(lineNo) + ": not a run object");
            return false;
        }
        run.statsJson = stats->raw;
        if (tailSeconds_ < run.t)
            tailSeconds_ = run.t;
        if (!points_.insert(run.point).second) {
            // A duplicate can only mean the daemon double-journaled;
            // keep the first occurrence so replays are idempotent.
            continue;
        }
        runs_.push_back(std::move(run));
    }
    return true;
}

bool
Journal::start(const std::string &headerLine)
{
    runs_.clear();
    points_.clear();
    priorSegments_.clear();
    tailSeconds_ = 0.0;
    std::ofstream out(path_, std::ios::trunc);
    out << headerLine << "\n";
    out.flush();
    if (!out) {
        warn("journal: cannot write " + path_);
        return false;
    }
    return true;
}

bool
Journal::append(const std::string &line)
{
    std::ofstream out(path_, std::ios::app);
    out << line << "\n";
    out.flush();
    if (!out) {
        warn("journal: cannot append to " + path_);
        return false;
    }
    return true;
}

bool
Journal::appendRun(size_t point, const std::string &label,
                   const std::string &key,
                   const std::string &statsJson, double t)
{
    if (points_.count(point))
        return true;   // idempotent: resumed cache hits re-offer runs
    std::ostringstream line;
    line.setf(std::ios::fixed);
    line.precision(3);
    line << "{\"point\": " << point
         << ", \"label\": " << jsonQuote(label)
         << ", \"key\": " << jsonQuote(key) << ", \"t\": " << t
         << ", \"stats\": " << minifyJson(statsJson) << "}";
    if (!append(line.str()))
        return false;
    points_.insert(point);
    runs_.push_back({point, label, key, minifyJson(statsJson), t});
    if (tailSeconds_ < t)
        tailSeconds_ = t;
    return true;
}

bool
Journal::appendEvent(const std::string &eventJson)
{
    return append(eventJson);
}

} // namespace serve
} // namespace dvr
