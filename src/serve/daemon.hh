/**
 * @file
 * The dvr_serve daemon: drains the spool queue, shards each job's
 * sweep points across worker processes (or an in-process thread pool
 * for embedded use — see the fig02 --serve path), dedupes points
 * against the content-addressed result cache, journals every
 * completed run append-only (kill -9 safe), retries crashed workers
 * with bounded exponential backoff, and finalizes each job into a
 * standard MANIFEST_<job>.json plus a <job>.serve.json counter block.
 *
 * Job spec (one JSON object):
 *
 *     {
 *       "workload": "bfs",          // default kernel for points
 *       "input": "KR",              // default input ("" for none)
 *       "scale_shift": 4,           // data-set scale (optional)
 *       "config": {"core.width": "5", ...},   // job-wide overrides
 *       "points": [
 *         {"label": "bfs_KR/ref", "set": {}},
 *         {"label": "bfs_KR/vr-128",
 *          "set": {"sim.technique": "vr", "core.robSize": "128"}},
 *         {"label": "camel/ref", "workload": "camel", "input": ""}
 *       ]
 *     }
 *
 * Every dotted key goes through ConfigSchema, so job files reject
 * typos exactly like --set does. Point labels must be unique: they
 * become the manifest run labels.
 */

#ifndef DVR_SERVE_DAEMON_HH
#define DVR_SERVE_DAEMON_HH

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/result_cache.hh"
#include "serve/spool.hh"
#include "sim/config.hh"

namespace dvr {
namespace serve {

/**
 * Scheduling counters for one job (and, summed, for a daemon run).
 * Emitted as the "serve" JSON block (<job>.serve.json, BENCH json);
 * deliberately kept out of the final manifest so resumed and
 * uninterrupted sweeps stay byte-comparable.
 */
struct ServeCounters
{
    uint64_t pointsTotal = 0;     ///< points in the job spec
    uint64_t pointsRun = 0;       ///< simulations executed this run
    uint64_t pointsDeduped = 0;   ///< duplicates served by a sibling's run
    uint64_t cacheHits = 0;       ///< points served from the cache
    uint64_t cacheMisses = 0;     ///< points that had to execute
    uint64_t journalResumed = 0;  ///< runs adopted from the journal
    uint64_t retries = 0;         ///< worker respawns after crashes

    void merge(const ServeCounters &o);
    /** Rendered as the serve.* snake_case JSON block. */
    std::string toJson(int indent = 2) const;
};

/** One sweep point: a label plus dotted-key overrides. */
struct JobPoint
{
    std::string label;
    std::string workload;
    std::string input;
    /** (dotted key, value) overrides, applied in order. */
    std::vector<std::pair<std::string, std::string>> sets;
};

struct JobSpec
{
    std::string name;
    unsigned scaleShift = 0;
    /** Job-wide (dotted key, value) overrides. */
    std::vector<std::pair<std::string, std::string>> config;
    std::vector<JobPoint> points;

    /**
     * Parse and validate a job file. Checks shape, unique non-empty
     * labels, and known workload kernels; dotted keys are validated
     * later, against the schema, when the point config is built.
     */
    static bool parse(const std::string &name, const std::string &text,
                      JobSpec &out, std::string *err);

    /** Render the spec as a job file (what `submit` writes). */
    std::string toJson() const;

    /** Baseline + job-wide overrides; throws on a bad key/value. */
    SimConfig baseConfig() const;

    /** baseConfig + the point's overrides; throws on a bad key. */
    SimConfig pointConfig(size_t i) const;

    /**
     * The point's content-address (see result_cache.hh). serve.* keys
     * are stripped from the config dump first: scheduling knobs never
     * change simulated results, so they must not split the cache.
     */
    std::string pointKey(size_t i) const;
};

class Daemon
{
  public:
    struct Options
    {
        std::string spoolRoot;
        ServeConfig serve;
        /**
         * Run points on an in-process thread pool instead of forked
         * worker processes. Embedded mode for benches: a bench binary
         * cannot re-exec itself as a worker.
         */
        bool inProcess = false;
        /** Worker executable; "" = /proc/self/exe (dvr_serve). */
        std::string workerExe;
    };

    explicit Daemon(Options opt);

    /** Create the spool tree; false on error. */
    bool init() const;

    /**
     * Adopt any running/ jobs a killed daemon left behind, then drain
     * the current queue. Returns the number of failed jobs.
     */
    int runOnce();

    /**
     * runOnce in a poll loop (serve.pollMs) until a drain is
     * requested and the queue is empty. Returns failed-job count.
     */
    int serveLoop();

    /** Process one claimed job (already in running/). 0 on success. */
    int processJob(const std::string &name);

    /** Counters summed over every job this daemon processed. */
    const ServeCounters &totals() const { return totals_; }
    /** Per-job counters of the most recent processJob call. */
    const ServeCounters &lastJob() const { return last_; }
    /** Prior wall segments of the most recent (resumed) job. */
    const std::vector<double> &lastPriorSegments() const
    {
        return lastPrior_;
    }

    const Spool &spool() const { return spool_; }

    /**
     * Worker-mode entry (`dvr_serve --worker`): run the given points
     * of a job file sequentially and store each result in the cache.
     * Points already cached are skipped. Always returns 0 — the
     * parent judges completion by cache presence, so a worker that
     * dies mid-point is indistinguishable from (and handled like) a
     * crash.
     */
    static int workerMain(const std::string &spoolRoot,
                          const std::string &jobPath,
                          const std::string &pointsCsv);

  private:
    bool runJob(const JobSpec &job, const std::string &jobPath,
                ServeCounters &c, std::vector<double> &priorSegments,
                std::string &failReason);
    void runPointsInProcess(const JobSpec &job,
                            const std::vector<size_t> &pts) const;
    /** Fork the sharded workers; returns their pids (no waiting). */
    std::vector<pid_t> spawnWorkers(const JobSpec &job,
                                    const std::string &jobPath,
                                    const std::vector<size_t> &pts)
        const;
    unsigned workerCount(size_t pts) const;

    Options opt_;
    Spool spool_;
    ResultCache cache_;
    ServeCounters totals_;
    ServeCounters last_;
    std::vector<double> lastPrior_;
};

} // namespace serve
} // namespace dvr

#endif // DVR_SERVE_DAEMON_HH
