#include "serve/json.hh"

#include <cctype>
#include <cstdlib>

namespace dvr {
namespace serve {

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &s) : s_(s) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        skipWs();
        if (!value(out)) {
            err = err_;
            return false;
        }
        skipWs();
        if (i_ != s_.size()) {
            err = at("trailing characters after document");
            return false;
        }
        return true;
    }

  private:
    std::string
    at(const std::string &what) const
    {
        return what + " (offset " + std::to_string(i_) + ")";
    }

    bool
    fail(const std::string &what)
    {
        if (err_.empty())
            err_ = at(what);
        return false;
    }

    void
    skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r' ||
                s_[i_] == '\n')) {
            ++i_;
        }
    }

    char
    peek() const
    {
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (i_ >= s_.size() || s_[i_] != *p)
                return fail(std::string("bad literal (expected '") +
                            word + "')");
            ++i_;
        }
        return true;
    }

    bool
    hex4(unsigned &out)
    {
        out = 0;
        for (int k = 0; k < 4; ++k) {
            if (i_ >= s_.size())
                return fail("truncated \\u escape");
            const char c = s_[i_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xC0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += char(0xE0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        } else {
            out += char(0xF0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3F));
            out += char(0x80 | ((cp >> 6) & 0x3F));
            out += char(0x80 | (cp & 0x3F));
        }
    }

    /** Decode one escape (the '\\' is already consumed). */
    bool
    escape(std::string &out)
    {
        if (i_ >= s_.size())
            return fail("unterminated string");
        const char e = s_[i_++];
        switch (e) {
        case '"':
        case '\\':
        case '/':
            out += e;
            return true;
        case 'b':
            out += '\b';
            return true;
        case 'f':
            out += '\f';
            return true;
        case 'n':
            out += '\n';
            return true;
        case 'r':
            out += '\r';
            return true;
        case 't':
            out += '\t';
            return true;
        case 'u': {
            unsigned cp = 0;
            if (!hex4(cp))
                return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
                // High surrogate: only valid as the first half of a
                // \uD800-\uDBFF + \uDC00-\uDFFF pair.
                unsigned lo = 0;
                if (i_ + 1 >= s_.size() || s_[i_] != '\\' ||
                    s_[i_ + 1] != 'u')
                    return fail("unpaired surrogate");
                i_ += 2;
                if (!hex4(lo))
                    return false;
                if (lo < 0xDC00 || lo > 0xDFFF)
                    return fail("unpaired surrogate");
                appendUtf8(out, 0x10000 + ((cp - 0xD800) << 10) +
                                    (lo - 0xDC00));
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                return fail("unpaired surrogate");
            } else {
                appendUtf8(out, cp);
            }
            return true;
        }
        default:
            return fail(std::string("unsupported escape '\\") + e +
                        "'");
        }
    }

    bool
    string(std::string &out)
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++i_;
        out.clear();
        while (i_ < s_.size()) {
            const char c = s_[i_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (!escape(out))
                    return false;
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        const size_t start = i_;
        bool ok = false;
        const char c = peek();
        if (c == '{') {
            out.kind = JsonValue::Kind::kObject;
            ok = object(out);
        } else if (c == '[') {
            out.kind = JsonValue::Kind::kArray;
            ok = array(out);
        } else if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            ok = string(out.str);
        } else if (c == 't') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            ok = literal("true");
        } else if (c == 'f') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            ok = literal("false");
        } else if (c == 'n') {
            out.kind = JsonValue::Kind::kNull;
            ok = literal("null");
        } else {
            out.kind = JsonValue::Kind::kNumber;
            ok = number(out.number);
        }
        if (ok)
            out.raw = s_.substr(start, i_ - start);
        return ok;
    }

    bool
    number(double &out)
    {
        const size_t start = i_;
        if (peek() == '-')
            ++i_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++i_;
        if (peek() == '.') {
            ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++i_;
            if (peek() == '+' || peek() == '-')
                ++i_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++i_;
        }
        if (i_ == start || (i_ == start + 1 && s_[start] == '-'))
            return fail("expected a value");
        out = std::strtod(s_.substr(start, i_ - start).c_str(),
                          nullptr);
        return true;
    }

    bool
    object(JsonValue &out)
    {
        ++i_;   // '{'
        skipWs();
        if (peek() == '}') {
            ++i_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':'");
            ++i_;
            JsonValue member;
            if (!value(member))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(member));
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == '}') {
                ++i_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        ++i_;   // '['
        skipWs();
        if (peek() == ']') {
            ++i_;
            return true;
        }
        for (;;) {
            JsonValue item;
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++i_;
                continue;
            }
            if (c == ']') {
                ++i_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &s_;
    size_t i_ = 0;
    std::string err_;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::getString(const std::string &key,
                     const std::string &def) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::kString ? v->str : def;
}

double
JsonValue::getNumber(const std::string &key, double def) const
{
    const JsonValue *v = find(key);
    return v && v->kind == Kind::kNumber ? v->number : def;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    std::string e;
    if (Parser(text).parse(out, e))
        return true;
    if (err)
        *err = e;
    return false;
}

std::string
jsonQuote(const std::string &s)
{
    static const char *kHex = "0123456789abcdef";
    std::string out = "\"";
    for (const char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            // Bare control characters are invalid inside JSON
            // strings; everything else (UTF-8 included) passes
            // through so parse() inverts quote() exactly.
            if (static_cast<unsigned char>(ch) < 0x20) {
                out += "\\u00";
                out += kHex[static_cast<unsigned char>(ch) >> 4];
                out += kHex[static_cast<unsigned char>(ch) & 0xF];
            } else {
                out += ch;
            }
        }
    }
    return out + "\"";
}

} // namespace serve
} // namespace dvr
