/**
 * @file
 * Minimal JSON value tree for the serve subsystem: job specs, journal
 * lines, and cache entries are small documents that need real value
 * extraction, not just the syntax/schema checking sim/manifest.hh
 * provides. Object member order is preserved (job points execute in
 * declaration order) and every value remembers its raw source slice,
 * so nested documents (a run's stats object) can be re-emitted
 * byte-for-byte instead of being re-rendered.
 */

#ifndef DVR_SERVE_JSON_HH
#define DVR_SERVE_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace dvr {
namespace serve {

struct JsonValue
{
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    /** Object members in source order. */
    std::vector<std::pair<std::string, JsonValue>> members;
    /** Exact source slice of this value (verbatim re-emission). */
    std::string raw;

    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }

    /** Member lookup on an object; nullptr when absent or not one. */
    const JsonValue *find(const std::string &key) const;

    /** Typed member getters with defaults (absent or wrong kind). */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    double getNumber(const std::string &key, double def = 0.0) const;
};

/**
 * Parse a complete JSON document. Returns false and sets `err` on any
 * syntax error (including trailing characters).
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/**
 * Render a string as a JSON string literal: `"` and `\` are escaped,
 * control characters become `\n`/`\t`/... or `\u00XX`. parseJson
 * decodes exactly this set (plus `\/` and `\uXXXX` surrogate pairs),
 * so quote -> parse round-trips any byte string.
 */
std::string jsonQuote(const std::string &s);

} // namespace serve
} // namespace dvr

#endif // DVR_SERVE_JSON_HH
