/**
 * @file
 * The dvr_serve spool: a directory-per-state job queue driven purely
 * by atomic rename(2), so clients and the daemon never need locks and
 * a `kill -9` at any instant leaves every job in exactly one state.
 *
 *     <root>/queue/<job>.json     submitted, not yet claimed
 *     <root>/running/<job>.json   claimed by the daemon
 *     <root>/done/<job>.json      finished (manifest + counters beside it)
 *     <root>/failed/<job>.json    gave up after serve.maxAttempts
 *     <root>/journal/             append-only per-job run journals
 *     <root>/cache/               content-addressed result cache
 *     <root>/tmp/                 staging for atomic writes
 *     <root>/drain                flag: exit once the queue is empty
 *
 * Submission writes the job into tmp/ first and renames it into
 * queue/, so a reader can never observe a half-written job file.
 */

#ifndef DVR_SERVE_SPOOL_HH
#define DVR_SERVE_SPOOL_HH

#include <string>
#include <vector>

namespace dvr {
namespace serve {

class Spool
{
  public:
    explicit Spool(std::string root);

    /** Create the spool directory tree; false (with warning) on error. */
    bool init() const;

    const std::string &root() const { return root_; }
    std::string queueDir() const { return root_ + "/queue"; }
    std::string runningDir() const { return root_ + "/running"; }
    std::string doneDir() const { return root_ + "/done"; }
    std::string failedDir() const { return root_ + "/failed"; }
    std::string journalDir() const { return root_ + "/journal"; }
    std::string cacheDir() const { return root_ + "/cache"; }
    std::string tmpDir() const { return root_ + "/tmp"; }

    /** Path of job `name` in the given state directory. */
    std::string jobPath(const std::string &dir,
                        const std::string &name) const;

    /**
     * Atomically enqueue a job: write into tmp/, rename into queue/.
     * Returns the queued path, or "" (with a warning) on failure —
     * including a job of the same name already queued or running.
     */
    std::string submit(const std::string &name,
                       const std::string &jobText) const;

    /** Job names (sans .json) in a state directory, sorted. */
    std::vector<std::string> list(const std::string &dir) const;

    /** queue/ -> running/; false if the job vanished (raced). */
    bool claim(const std::string &name) const;

    /** running/ -> done/ or failed/. */
    bool finish(const std::string &name, bool ok) const;

    /** Write a file atomically via tmp/ + rename; false on failure. */
    bool writeAtomic(const std::string &path,
                     const std::string &text) const;

    /** Whole-file read; false when unreadable. */
    static bool readFile(const std::string &path, std::string &out);

    bool drainRequested() const;
    void requestDrain() const;

    /** "<dir>/foo.json" -> "foo". */
    static std::string jobNameOf(const std::string &path);

  private:
    std::string root_;
};

} // namespace serve
} // namespace dvr

#endif // DVR_SERVE_SPOOL_HH
