/**
 * @file
 * Discovery Mode (paper Section 4.1): follows one iteration of the
 * main thread's loop after a confident striding load triggers, to
 * (i) switch to the innermost striding load when one is found,
 * (ii) find the dependent-load chain via the taint tracker (FLR),
 * (iii) infer the loop bound, and (iv) capture everything the
 * subthread needs to spawn when the striding load comes around again.
 */

#ifndef DVR_RUNAHEAD_DISCOVERY_HH
#define DVR_RUNAHEAD_DISCOVERY_HH

#include <cstdint>

#include "common/types.hh"
#include "core/ooo_core.hh"
#include "runahead/loop_bound.hh"
#include "runahead/stride_detector.hh"
#include "runahead/taint_tracker.hh"

namespace dvr {

/** Everything learned by a completed Discovery Mode pass. */
struct DiscoveryResult
{
    InstPc stridePc = kInvalidPc;
    int64_t stride = 0;
    RegId strideDest = 0;
    uint32_t strideBytes = 8;
    Addr spawnAddr = 0;     ///< stride-load address at the spawn point
    InstPc flr = kInvalidPc;
    bool divergentChain = false;
    uint16_t taintMask = 0;
    LoopBoundResult bound;
    LcrInfo lcr;
    InstPc backwardBranchPc = kInvalidPc;
};

class DiscoveryMode
{
  public:
    enum class Status : uint8_t {
        kInactive,
        kRunning,
        kDone,      ///< result() is valid; spawn the subthread now
        kSwitched,  ///< restarted on a more-inner striding load
        kAborted,   ///< timed out without closing the loop
    };

    explicit DiscoveryMode(StrideDetector &detector);

    /** Arm on the just-retired confident striding load. */
    void begin(const StrideEntry &entry, const Instruction &inst,
               const RegState &regs);

    /**
     * Feed the next retired instruction. `regs` must be the core's
     * register state after this retire (used for the exit checkpoint
     * and the spawn copy).
     */
    Status observe(const RetireInfo &ri, const RegState &regs);

    bool active() const { return active_; }
    void abort() { active_ = false; }
    const DiscoveryResult &result() const { return result_; }

    /** Instruction budget before an unclosed loop aborts discovery. */
    static constexpr unsigned kTimeout = 512;

  private:
    StrideDetector &detector_;
    TaintTracker taint_;
    LoopBoundDetector loopBound_;
    DiscoveryResult result_;
    bool active_ = false;
    unsigned observed_ = 0;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_DISCOVERY_HH
