#include "runahead/stride_detector.hh"

namespace dvr {

StrideDetector::StrideDetector(unsigned entries)
    : table_(entries)
{
}

const StrideEntry *
StrideDetector::observe(InstPc pc, Addr addr)
{
    StrideEntry *e = nullptr;
    StrideEntry *lru = &table_[0];
    for (auto &ent : table_) {
        if (ent.pc == pc) {
            e = &ent;
            break;
        }
        if (ent.lruStamp < lru->lruStamp)
            lru = &ent;
    }
    if (!e) {
        e = lru;
        *e = StrideEntry();
        e->pc = pc;
        e->lastAddr = addr;
        e->lruStamp = nextStamp_++;
        return nullptr;
    }
    e->lruStamp = nextStamp_++;

    const int64_t delta = static_cast<int64_t>(addr) -
                          static_cast<int64_t>(e->lastAddr);
    e->lastAddr = addr;
    if (delta == e->stride && delta != 0) {
        if (e->confidence < 3)
            ++e->confidence;
    } else if (e->confidence > 0) {
        // Hysteresis: a single outlier does not clobber a stable
        // stride (classic RPT 2-bit behaviour).
        --e->confidence;
    } else {
        e->stride = delta;
    }
    return e->confident() ? e : nullptr;
}

const StrideEntry *
StrideDetector::find(InstPc pc) const
{
    for (const auto &ent : table_) {
        if (ent.pc == pc)
            return &ent;
    }
    return nullptr;
}

void
StrideDetector::clearDiscoveryBits()
{
    for (auto &ent : table_)
        ent.seenInDiscovery = false;
}

bool
StrideDetector::markSeenInDiscovery(InstPc pc)
{
    for (auto &ent : table_) {
        if (ent.pc == pc) {
            const bool seen = ent.seenInDiscovery;
            ent.seenInDiscovery = true;
            return seen;
        }
    }
    return false;
}

} // namespace dvr
