#include "runahead/pre_controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/sim_memory.hh"

namespace dvr {

PreController::PreController(const PreConfig &cfg, const Program &prog,
                             const SimMemory &mem, MemorySystem &memsys)
    : cfg_(cfg), prog_(prog), mem_(mem), memsys_(memsys)
{
}

Cycle
PreController::onFullRobStall(const StallInfo &si)
{
    panicIf(core_ == nullptr, "PreController: core not attached");
    ++episodes_;

    // Runahead register state: architectural values, with anything
    // still in flight at the stall marked invalid.
    struct RaReg
    {
        uint64_t v = 0;
        bool valid = true;
        Cycle ready = 0;
    };
    std::array<RaReg, kNumArchRegs> r;
    const RegState &regs = core_->regs();
    for (int i = 0; i < kNumArchRegs; ++i) {
        r[i].v = regs.value[i];
        // Usable when the value arrives shortly after the stall
        // begins; only DRAM-bound producers stay invalid.
        r[i].valid = regs.ready[i] <= si.stallStart + 30;
        r[i].ready =
            r[i].valid ? std::max(si.stallStart, regs.ready[i])
                       : si.stallStart;
    }

    InstPc pc = si.nextPc;
    const Cycle interval_end = si.headLoadDone;
    Cycle walk_cycle = si.stallStart;
    unsigned in_cycle = 0;
    unsigned steps = 0;

    while (walk_cycle < interval_end && steps < cfg_.maxWalkInsts &&
           prog_.valid(pc)) {
        const Instruction &inst = prog_.at(pc);
        if (inst.op == Opcode::kHalt)
            break;
        ++steps;
        ++walkInsts_;
        if (++in_cycle >= cfg_.walkWidth) {
            in_cycle = 0;
            ++walk_cycle;
        }

        const int nsrcs = inst.numSrcs();
        const bool s1_ok = nsrcs < 1 || r[inst.rs1].valid;
        const bool s2_ok = nsrcs < 2 || r[inst.rs2].valid;
        Cycle ready = walk_cycle;
        if (nsrcs >= 1)
            ready = std::max(ready, r[inst.rs1].ready);
        if (nsrcs >= 2)
            ready = std::max(ready, r[inst.rs2].ready);
        InstPc next_pc = pc + 1;

        if (inst.isLoad()) {
            if (!s1_ok) {
                // Address depends on an unreturned load: this is the
                // first-level-of-indirection wall PRE hits.
                ++invalidLoadSkips_;
                r[inst.rd] = {0, false, walk_cycle};
            } else {
                const Addr a = r[inst.rs1].v +
                               static_cast<Addr>(inst.imm);
                uint64_t v = 0;
                if (!mem_.tryRead(a, inst.memBytes(), v)) {
                    r[inst.rd] = {0, false, walk_cycle};
                } else {
                    const MemAccess ma = memsys_.access(
                        a, inst.memBytes(), std::max(ready, walk_cycle),
                        false, Requester::kRunahead, pc, v);
                    ++prefetches_;
                    // Data back within the interval can feed further
                    // runahead work; otherwise the dest is invalid.
                    const bool in_time = ma.done < interval_end;
                    r[inst.rd] = {v, in_time, ma.done};
                }
            }
        } else if (inst.isStore()) {
            // Dropped in runahead.
        } else if (inst.isBranch()) {
            if (inst.op == Opcode::kJmp) {
                next_pc = inst.target;
            } else if (r[inst.rs1].valid) {
                if (branchTaken(inst.op, r[inst.rs1].v))
                    next_pc = inst.target;
            } else {
                // Branch on invalid data: runahead would follow the
                // predictor; further prefetches are as likely to be
                // wrong-path, so stop the walk.
                break;
            }
        } else if (inst.hasDest()) {
            const bool ok = s1_ok && s2_ok;
            const uint64_t v =
                ok ? evalOp(inst.op, r[inst.rs1].v, r[inst.rs2].v,
                            inst.imm)
                   : 0;
            r[inst.rd] = {v, ok, ready + 1};
        }
        pc = next_pc;
    }

    // PRE exits runahead as soon as the blocking load returns; no
    // extra stall beyond the interval.
    return 0;
}

StatSet
PreController::toStatSet() const
{
    StatSet s;
    s.set("episodes", double(episodes_));
    s.set("prefetches", double(prefetches_));
    s.set("invalid_load_skips", double(invalidLoadSkips_));
    s.set("walk_insts", double(walkInsts_));
    return s;
}

} // namespace dvr
