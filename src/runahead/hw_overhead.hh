/**
 * @file
 * Hardware-overhead accounting for every DVR structure (paper Section
 * 4.4). Computes per-structure storage from the same parameters the
 * simulator uses, and reproduces the paper's 1139-byte total with the
 * default configuration.
 */

#ifndef DVR_RUNAHEAD_HW_OVERHEAD_HH
#define DVR_RUNAHEAD_HW_OVERHEAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dvr {

struct HwOverheadParams
{
    unsigned strideEntries = 32;
    unsigned pcBits = 48;
    unsigned addrBits = 48;
    unsigned strideBits = 16;
    unsigned confBits = 2;
    unsigned vratEntries = 16;      ///< architectural registers
    unsigned vratCopies = 16;       ///< phys regs per vectorized reg
    unsigned physRegIdBits = 9;     ///< 128 vector + 256 int phys regs
    unsigned lanes = 128;
    unsigned virCopies = 16;
    unsigned frontendUops = 8;
    unsigned frontendUopBytes = 8;
    unsigned reconvDepth = 8;
    unsigned reconvPcBytes = 6;
    unsigned archRegs = 16;
    unsigned regIdBits = 8;         ///< checkpointed mapping id width
};

struct HwOverheadItem
{
    std::string name;
    unsigned bytes;
};

/** Per-structure byte costs; sums to 1139 with the defaults. */
std::vector<HwOverheadItem> computeHwOverhead(
    const HwOverheadParams &p = HwOverheadParams());

/** Total bytes across all structures. */
unsigned totalHwOverheadBytes(
    const HwOverheadParams &p = HwOverheadParams());

} // namespace dvr

#endif // DVR_RUNAHEAD_HW_OVERHEAD_HH
