#include "runahead/technique.hh"

#include "common/log.hh"
#include "mem/sim_memory.hh"
#include "runahead/dvr_controller.hh"
#include "runahead/oracle.hh"
#include "runahead/pre_controller.hh"
#include "runahead/vr_controller.hh"
#include "sim/config.hh"

namespace dvr {

TechniqueRegistry &
TechniqueRegistry::instance()
{
    static TechniqueRegistry r;
    return r;
}

void
TechniqueRegistry::add(TechniqueInfo info)
{
    if (find(info.name))
        fatal("TechniqueRegistry: duplicate technique '" + info.name +
              "'");
    entries_.push_back(std::move(info));
}

const TechniqueInfo *
TechniqueRegistry::find(const std::string &name) const
{
    for (const TechniqueInfo &e : entries_) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

std::vector<std::string>
TechniqueRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const TechniqueInfo &e : entries_)
        out.push_back(e.name);
    return out;
}

// The builtin techniques register here, in the registry's own
// translation unit: every binary that can run a simulation references
// the registry, so the registrations can never be dropped as an
// unreferenced archive member. Out-of-tree techniques register from
// their own translation units with the same TechniqueRegistrar.
namespace {

const TechniqueRegistrar regBase({
    "base",
    "OoO baseline (stride prefetcher always on)",
    nullptr,
    nullptr,
});

const TechniqueRegistrar regPre({
    "pre",
    "Precise Runahead Execution (HPCA 2020)",
    nullptr,
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        return std::make_unique<PreController>(ctx.cfg.pre, ctx.prog,
                                               ctx.mem, ctx.memsys);
    },
});

const TechniqueRegistrar regImp({
    "imp",
    "Indirect Memory Prefetcher (L1-D level)",
    [](SimConfig &c) { c.mem.impPrefetcher = true; },
    nullptr,
});

const TechniqueRegistrar regVr({
    "vr",
    "Vector Runahead (ISCA 2021)",
    nullptr,
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        return std::make_unique<VrController>(ctx.cfg.vr, ctx.prog,
                                              ctx.mem, ctx.memsys);
    },
});

std::unique_ptr<RunaheadTechnique>
makeDvr(const TechniqueContext &ctx, const char *name)
{
    return std::make_unique<DvrController>(ctx.cfg.dvr, ctx.prog,
                                           ctx.mem, ctx.memsys, name);
}

const TechniqueRegistrar regDvr({
    "dvr",
    "Decoupled Vector Runahead (full)",
    nullptr,
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        return makeDvr(ctx, "dvr");
    },
});

const TechniqueRegistrar regDvrOffload({
    "dvr-offload",
    "DVR feature breakdown: offload only (Figure 8)",
    [](SimConfig &c) {
        c.dvr.discoveryEnabled = false;
        c.dvr.nestedEnabled = false;
        // "Offload" is Vector Runahead moved onto the subthread:
        // first-lane control flow with lane invalidation; the GPU
        // reconvergence stack arrives with the full DVR feature set.
        c.dvr.subthread.gpuReconvergence = false;
    },
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        return makeDvr(ctx, "dvr-offload");
    },
});

const TechniqueRegistrar regDvrDiscovery({
    "dvr-discovery",
    "DVR feature breakdown: + discovery, no nested (Figure 8)",
    [](SimConfig &c) { c.dvr.nestedEnabled = false; },
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        return makeDvr(ctx, "dvr-discovery");
    },
});

const TechniqueRegistrar regOracle({
    "oracle",
    "perfect-knowledge prefetcher (recorded load trace)",
    nullptr,
    [](const TechniqueContext &ctx)
        -> std::unique_ptr<RunaheadTechnique> {
        SimMemory scratch = ctx.pristine;
        auto trace = recordLoadTrace(ctx.prog, scratch,
                                     ctx.cfg.maxInstructions,
                                     ctx.startRegs, ctx.startPc);
        return std::make_unique<OracleController>(
            ctx.cfg.oracle, ctx.memsys, std::move(trace));
    },
});

} // namespace

} // namespace dvr
