#include "runahead/dvr_controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/trace.hh"

namespace {
// kDiscovery event payload `a`: which discovery transition happened.
constexpr uint64_t kEvDiscBegin = 0;
constexpr uint64_t kEvDiscDone = 1;
constexpr uint64_t kEvDiscSwitched = 2;
constexpr uint64_t kEvDiscAborted = 3;
constexpr uint64_t kEvDiscNoChain = 4;
} // namespace

namespace dvr {

StatSet
DvrStats::toStatSet() const
{
    StatSet s;
    s.set("discoveries", double(discoveries));
    s.set("discovery_switches", double(discoverySwitches));
    s.set("discovery_aborts", double(discoveryAborts));
    s.set("no_chain_skips", double(noChainSkips));
    s.set("episodes", double(episodes));
    s.set("nested_episodes", double(nestedEpisodes));
    s.set("vector_ops", double(vectorOps));
    s.set("lane_loads", double(laneLoads));
    s.set("lanes_spawned", double(lanesSpawned));
    s.set("lanes_faulted", double(lanesFaulted));
    s.set("lanes_dropped", double(lanesDropped));
    s.set("reconv_pushes", double(reconvPushes));
    s.set("vrat_exhausts", double(vratExhausts));
    s.set("timeouts", double(timeouts));
    if (episodes > 0) {
        s.set("avg_lanes", double(lanesSpawned) / double(episodes));
        s.set("avg_lane_loads",
              double(laneLoads) / double(episodes));
    }
    return s;
}

DvrController::DvrController(const DvrConfig &cfg, const Program &prog,
                             const SimMemory &mem, MemorySystem &memsys,
                             const char *name)
    : cfg_(cfg), name_(name), detector_(32), discovery_(detector_),
      subthread_(cfg.subthread, prog, mem, memsys)
{
}

void
DvrController::accumulate(const EpisodeStats &ep)
{
    ++stats_.episodes;
    if (ep.nested)
        ++stats_.nestedEpisodes;
    stats_.vectorOps += ep.vectorOps;
    stats_.laneLoads += ep.laneLoads;
    stats_.lanesSpawned += ep.lanesSpawned;
    stats_.lanesFaulted += ep.lanesFaulted;
    stats_.lanesDropped += ep.lanesDropped;
    stats_.reconvPushes += ep.reconvPushes;
    if (ep.vratExhausted)
        ++stats_.vratExhausts;
    if (ep.timedOut)
        ++stats_.timeouts;
    episodeEndCycle_ = std::max(episodeEndCycle_, ep.issueEnd);
}

void
DvrController::spawnEpisode(const DiscoveryResult &d,
                            const RetireInfo &ri)
{
    const Cycle spawn = ri.issueCycle;
    EpisodeStats ep;
    const bool short_loop =
        d.bound.valid &&
        d.bound.remaining < int64_t(cfg_.nestedThreshold);
    if (cfg_.nestedEnabled && short_loop) {
        ep = subthread_.runNested(d, core_->regs(), spawn, detector_,
                                  &coverageOuter_[d.stridePc]);
    } else {
        const unsigned lanes =
            d.bound.valid
                ? unsigned(std::clamp<int64_t>(
                      d.bound.remaining, 1,
                      cfg_.subthread.maxLanes))
                : cfg_.subthread.maxLanes;
        ep = subthread_.runVectorized(d, core_->regs(), spawn, lanes,
                                      &coverageInner_[d.stridePc]);
    }
    if (!ep.ran) {
        // Frontier already covered: pause briefly before re-checking.
        episodeEndCycle_ = std::max(episodeEndCycle_, spawn + 64);
        return;
    }
    Trace::emit(TraceCat::kSpawn, spawn, d.stridePc, ep.lanesSpawned,
                ep.nested ? 1 : 0);
    accumulate(ep);
}

void
DvrController::spawnOffloadEpisode(const StrideEntry &e,
                                   const RetireInfo &ri)
{
    // Offload-only mode (Figure 8 "Offload"): no Discovery Mode, so
    // vectorize 128 lanes immediately and run one trip through the
    // loop body (termination at the next stride-PC occurrence).
    DiscoveryResult d;
    d.stridePc = ri.pc;
    d.stride = e.stride;
    d.strideDest = ri.inst->rd;
    d.strideBytes = ri.inst->memBytes();
    d.spawnAddr = ri.effAddr;
    EpisodeStats ep = subthread_.runVectorized(
        d, core_->regs(), ri.issueCycle, cfg_.subthread.maxLanes,
        &coverageInner_[d.stridePc]);
    if (!ep.ran) {
        episodeEndCycle_ =
            std::max(episodeEndCycle_, ri.issueCycle + 64);
        return;
    }
    Trace::emit(TraceCat::kSpawn, ri.issueCycle, d.stridePc,
                ep.lanesSpawned, 0);
    accumulate(ep);
}

void
DvrController::onRetire(const RetireInfo &ri)
{
    panicIf(core_ == nullptr, "DvrController: core not attached");

    const StrideEntry *strider = nullptr;
    if (ri.inst->isLoad())
        strider = detector_.observe(ri.pc, ri.effAddr);

    if (inDiscovery_) {
        switch (discovery_.observe(ri, core_->regs())) {
          case DiscoveryMode::Status::kDone: {
            inDiscovery_ = false;
            const DiscoveryResult &d = discovery_.result();
            if (d.flr == kInvalidPc) {
                // No dependent chain: the plain stride prefetcher
                // already covers this load; don't waste an episode.
                ++stats_.noChainSkips;
                Trace::emit(TraceCat::kDiscovery, ri.commitCycle,
                            d.stridePc, kEvDiscNoChain);
                cooldown_[d.stridePc] = ri.seq + cfg_.rejectCooldown;
                return;
            }
            Trace::emit(TraceCat::kDiscovery, ri.commitCycle,
                        d.stridePc, kEvDiscDone, d.flr);
            spawnEpisode(d, ri);
            return;
          }
          case DiscoveryMode::Status::kSwitched:
            ++stats_.discoverySwitches;
            Trace::emit(TraceCat::kDiscovery, ri.commitCycle, ri.pc,
                        kEvDiscSwitched);
            return;
          case DiscoveryMode::Status::kAborted:
            ++stats_.discoveryAborts;
            inDiscovery_ = false;
            Trace::emit(TraceCat::kDiscovery, ri.commitCycle, ri.pc,
                        kEvDiscAborted);
            return;
          default:
            return;
        }
    }

    if (!strider)
        return;
    // One episode at a time: re-arm once the subthread terminated.
    if (ri.commitCycle < episodeEndCycle_)
        return;
    auto cd = cooldown_.find(ri.pc);
    if (cd != cooldown_.end() && ri.seq < cd->second)
        return;

    if (cfg_.discoveryEnabled) {
        discovery_.begin(*strider, *ri.inst, core_->regs());
        inDiscovery_ = true;
        ++stats_.discoveries;
        Trace::emit(TraceCat::kDiscovery, ri.commitCycle, ri.pc,
                    kEvDiscBegin);
    } else {
        spawnOffloadEpisode(*strider, ri);
    }
}

} // namespace dvr
