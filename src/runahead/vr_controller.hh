/**
 * @file
 * Vector Runahead baseline (Naithani et al., ISCA 2021), modelled per
 * the paper's description: triggered by a full-ROB stall behind a
 * DRAM-bound load, it walks the future stream to the first striding
 * load, vectorizes the dependent chain across 128 lanes following the
 * first lane's control flow (divergent lanes invalidated), and only
 * returns to normal mode when the whole chain has generated its
 * prefetches (delayed termination, which can stall commit).
 */

#ifndef DVR_RUNAHEAD_VR_CONTROLLER_HH
#define DVR_RUNAHEAD_VR_CONTROLLER_HH

#include "common/stats.hh"
#include "core/ooo_core.hh"
#include "runahead/stride_detector.hh"
#include "runahead/subthread.hh"
#include "runahead/technique.hh"

namespace dvr {

struct VrConfig
{
    SubthreadConfig subthread;
    /** Scalar instructions VR may walk before finding a strider. */
    unsigned scalarBudget = 64;

    VrConfig()
    {
        subthread.gpuReconvergence = false;
    }
};

class VrController : public RunaheadTechnique
{
  public:
    VrController(const VrConfig &cfg, const Program &prog,
                 const SimMemory &mem, MemorySystem &memsys);

    void attachCore(const OooCore &core) { core_ = &core; }

    const char *name() const override { return "vr"; }
    const char *statPrefix() const override { return "vr."; }
    void attach(OooCore &core) override { attachCore(core); }
    void finalizeStats(StatSet &out) const override
    {
        out.merge(statPrefix(), toStatSet());
    }

    void onRetire(const RetireInfo &ri) override;
    Cycle onFullRobStall(const StallInfo &si) override;

    uint64_t episodes() const { return episodes_; }
    uint64_t laneLoads() const { return laneLoads_; }
    uint64_t lanesInvalidated() const { return lanesInvalidated_; }
    StatSet toStatSet() const;

  private:
    const VrConfig cfg_;
    const OooCore *core_ = nullptr;
    StrideDetector detector_;
    VectorSubthread subthread_;
    uint64_t episodes_ = 0;
    uint64_t triggersWithoutStride_ = 0;
    uint64_t huntExitCounts_[7] = {};
    uint64_t laneLoads_ = 0;
    uint64_t lanesInvalidated_ = 0;
    double delayedTerminationCycles_ = 0;
};

} // namespace dvr

#endif // DVR_RUNAHEAD_VR_CONTROLLER_HH
