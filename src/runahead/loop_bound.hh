/**
 * @file
 * Loop-bound inference for Discovery Mode (paper Section 4.1.3).
 *
 * Tracks the Final-Load Register (FLR: last load whose address depends
 * on the striding load), the Last-Compare Register (LCR) and the
 * Seen-Branch Bit (SBB) to identify the loop-closing compare/branch
 * pair, snapshots the architectural registers at Discovery entry and
 * exit, and infers the remaining iteration count and the loop
 * increment. Falls back to the 128-element maximum when inference
 * fails (runahead is transient; heuristics only bound over/underfetch).
 */

#ifndef DVR_RUNAHEAD_LOOP_BOUND_HH
#define DVR_RUNAHEAD_LOOP_BOUND_HH

#include <cstdint>

#include "common/types.hh"
#include "core/ooo_core.hh"
#include "isa/instruction.hh"

namespace dvr {

/** The identified loop-closing compare (contents of the LCR). */
struct LcrInfo
{
    bool valid = false;
    Opcode cmpOp = Opcode::kNop;
    RegId rs1 = 0;
    RegId rs2 = 0;
    RegId rd = 0;
    int64_t imm = 0;            ///< bound for immediate compares
    bool isImmCompare = false;
    Opcode branchOp = Opcode::kNop; ///< the backward branch consuming rd
};

/** Outcome of loop-bound inference at Discovery exit. */
struct LoopBoundResult
{
    bool valid = false;
    int64_t remaining = 0;      ///< future iterations incl. the current
    int64_t increment = 0;      ///< induction-variable step per iter
    RegId inductionReg = 0;     ///< the changing LCR input
    uint64_t boundValue = 0;    ///< the constant LCR input's value
};

class LoopBoundDetector
{
  public:
    /** Arm at Discovery entry; snapshots the register file. */
    void begin(InstPc stride_pc, const RegState &regs);

    /** The chain's final dependent load moved: zero LCR and SBB. */
    void noteFinalLoad(InstPc load_pc);

    /** Feed one retired instruction (compares and branches matter). */
    void observe(InstPc pc, const Instruction &inst);

    /** Infer the bound from the exit register snapshot. */
    LoopBoundResult finish(const RegState &exit_regs) const;

    /** Final-Load Register; kInvalidPc when no dependent load seen. */
    InstPc flr() const { return flr_; }
    bool hasChain() const { return flr_ != kInvalidPc; }

    /**
     * True when other conditional branches were seen between the FLR
     * and the loop-closing branch: per the paper's footnote, lanes
     * then run to the next stride-PC occurrence instead of stopping
     * at the FLR, to explore divergent paths.
     */
    bool divergentChain() const { return divergentChain_; }

    /** PC of the identified backward branch (for Nested mode). */
    InstPc backwardBranchPc() const { return backwardBranchPc_; }
    const LcrInfo &lcr() const { return lcr_; }
    bool seenBackwardBranch() const { return sbb_; }

  private:
    InstPc stridePc_ = kInvalidPc;
    InstPc flr_ = kInvalidPc;
    LcrInfo lcr_;
    bool sbb_ = false;
    bool divergentChain_ = false;
    InstPc backwardBranchPc_ = kInvalidPc;
    RegState entry_;
};

/**
 * Compute the number of future loop iterations from the loop-closing
 * compare semantics. Shared with Nested Discovery Mode, which applies
 * it per outer lane.
 *
 * @param lcr the loop-closing compare/branch pair
 * @param induction current value of the induction input
 * @param bound current value of the constant input
 * @param increment per-iteration step of the induction input
 * @return iteration count, or -1 when the shape is unsupported
 */
int64_t remainingIterations(const LcrInfo &lcr, uint64_t induction,
                            uint64_t bound, int64_t increment);

} // namespace dvr

#endif // DVR_RUNAHEAD_LOOP_BOUND_HH
